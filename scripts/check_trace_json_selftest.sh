#!/bin/sh
# check_trace_json_selftest.sh — negative tests for check_trace_json.sh.
#
# The validator guards the trace_json_check ctest lane, so its failure
# branches must actually fire: a validator that silently passes garbage
# would let a broken exporter ship. Each case feeds a crafted fixture and
# asserts BOTH the exit code and the named verdict on the output.
#
# usage: check_trace_json_selftest.sh [REPO_ROOT]

set -u

ROOT=${1:-$(dirname "$0")/..}
CHECK="$ROOT/scripts/check_trace_json.sh"
TMP=$(mktemp -d) || exit 2
trap 'rm -rf "$TMP"' EXIT INT TERM

if [ ! -r "$CHECK" ]; then
  echo "selftest: cannot find $CHECK" >&2
  exit 2
fi

FAILURES=0
CASE=0

# run_case NAME EXPECTED_EXIT EXPECTED_PATTERN FILE
run_case() {
  CASE=$((CASE + 1))
  NAME=$1
  WANT_EXIT=$2
  WANT_PAT=$3
  FILE=$4
  OUT=$(sh "$CHECK" "$FILE" 2>&1)
  GOT_EXIT=$?
  if [ "$GOT_EXIT" -ne "$WANT_EXIT" ]; then
    echo "selftest case $CASE ($NAME): expected exit $WANT_EXIT, got $GOT_EXIT" >&2
    echo "$OUT" | sed 's/^/    /' >&2
    FAILURES=$((FAILURES + 1))
    return
  fi
  if ! echo "$OUT" | grep -q "$WANT_PAT"; then
    echo "selftest case $CASE ($NAME): output missing /$WANT_PAT/" >&2
    echo "$OUT" | sed 's/^/    /' >&2
    FAILURES=$((FAILURES + 1))
    return
  fi
  echo "selftest case $CASE ($NAME): ok"
}

# A valid two-tid trace in exactly the exporter's line shape.
cat > "$TMP/good.json" <<'EOF'
{"traceEvents": [
{"name": "daig.cell_eval", "ph": "X", "ts": 1.000, "dur": 5.000, "pid": 1, "tid": 1, "args": {"a0": 3, "a1": 0}},
{"name": "memo.hit", "ph": "i", "s": "t", "ts": 2.500, "pid": 1, "tid": 1, "args": {"a0": 4, "a1": 0}},
{"name": "taskpool.task", "ph": "X", "ts": 0.250, "dur": 9.000, "pid": 1, "tid": 2, "args": {"a0": 1, "a1": 0}}
]}
EOF
run_case valid-trace 0 "OK \[trace-json\]" "$TMP/good.json"

run_case missing-file 2 "FAIL \[trace-json\].*missing or unreadable" \
  "$TMP/does_not_exist.json"

sed 's/"ts": 2.500, //' "$TMP/good.json" > "$TMP/missing_ts.json"
run_case missing-ts-key 1 'missing required key "ts"' "$TMP/missing_ts.json"

sed 's/"ts": 2.500/"ts": 0.100/' "$TMP/good.json" > "$TMP/nonmono.json"
run_case non-monotone-ts 1 "ts not monotone per tid" "$TMP/nonmono.json"

sed '$d' "$TMP/good.json" > "$TMP/truncated.json"
run_case truncated-file 1 "missing \]} footer" "$TMP/truncated.json"

sed 's/"ts": 1.000/"ts": fast/' "$TMP/good.json" > "$TMP/nonnum.json"
run_case non-numeric-ts 1 "ts is not a plain non-negative number" \
  "$TMP/nonnum.json"

sed 's/"dur": 5.000, //' "$TMP/good.json" > "$TMP/nodur.json"
run_case span-missing-dur 1 'complete ("X") event missing "dur"' \
  "$TMP/nodur.json"

sed 's/"ph": "i"/"ph": "Q"/' "$TMP/good.json" > "$TMP/badph.json"
run_case bad-phase 1 'ph is "Q"' "$TMP/badph.json"

printf '{"traceEvents": [\n]}\n' > "$TMP/empty.json"
run_case empty-trace 1 "contains no events" "$TMP/empty.json"

printf 'not a trace\n' > "$TMP/noheader.json"
run_case missing-header 1 "missing {\"traceEvents\": \[ header" \
  "$TMP/noheader.json"

if [ "$FAILURES" -gt 0 ]; then
  echo "selftest: $FAILURES of $CASE cases failed" >&2
  exit 1
fi
echo "selftest: all $CASE cases passed"
