#!/bin/sh
# check_trace_json.sh — schema validator for the Chrome trace_event JSON
# that support/observe.h's writeChromeTrace / DAI_TRACE emit.
#
# The exporter writes a FIXED line-oriented shape (one event object per
# line inside {"traceEvents": [...]}), so the validation is plain POSIX
# sh + awk — no JSON library, runs in any CI image. Checks:
#   - the file exists, starts with the {"traceEvents": [ header, and ends
#     with the ]} footer (a truncated export fails here);
#   - every event line carries the required keys: name, ph, ts, pid, tid;
#   - ph is "X" (complete span, must also carry dur) or "i" (instant);
#   - ts is a plain non-negative number;
#   - ts is monotone non-decreasing PER TID — the exporter sorts by
#     (tid, start, depth), and chrome://tracing/Perfetto rely on it;
#   - at least one event was recorded (an empty trace means the run the
#     file was supposed to capture was not traced).
#
# usage: check_trace_json.sh TRACE.json
# exit:  0 valid, 1 schema violation (named FAIL verdict), 2 usage/missing
#        file. Negative-tested by scripts/check_trace_json_selftest.sh.

set -u

if [ "$#" -ne 1 ]; then
  echo "usage: $0 TRACE.json" >&2
  exit 2
fi
TRACE=$1

if [ ! -r "$TRACE" ]; then
  echo "FAIL [trace-json]: $TRACE is missing or unreadable — the traced run that should have produced it failed" >&2
  exit 2
fi

awk -v file="$TRACE" '
  function fail(msg) {
    printf "FAIL [trace-json]: %s (%s line %d)\n", msg, file, NR | "cat >&2"
    bad = 1
    exit 1
  }
  # Extracts the value following "key": on the current line; returns the
  # sentinel "?" when the key is absent.
  function val(key,    s) {
    s = $0
    if (!sub(".*\"" key "\":[ \t]*", "", s)) return "?"
    sub(/[,}].*/, "", s)
    gsub(/[ \t"]/, "", s)
    return s
  }
  NR == 1 {
    if ($0 != "{\"traceEvents\": [")
      fail("missing {\"traceEvents\": [ header")
    next
  }
  /^\]\}[ \t]*$/ { saw_footer = 1; next }
  saw_footer { fail("content after the ]} footer") }
  /^[ \t]*$/ { next }
  {
    line = $0
    sub(/,[ \t]*$/, "", line)
    if (line !~ /^\{.*\}$/)
      fail("event line is not a {...} object")
    for (i = split("name ph ts pid tid", req, " "); i >= 1; i--)
      if (index($0, "\"" req[i] "\":") == 0)
        fail("event missing required key \"" req[i] "\"")
    ph = val("ph")
    if (ph != "X" && ph != "i")
      fail("ph is \"" ph "\" (expected \"X\" or \"i\")")
    if (ph == "X" && index($0, "\"dur\":") == 0)
      fail("complete (\"X\") event missing \"dur\"")
    ts = val("ts")
    if (ts !~ /^[0-9]+(\.[0-9]+)?$/)
      fail("ts is not a plain non-negative number: \"" ts "\"")
    tid = val("tid")
    if (tid !~ /^[0-9]+$/)
      fail("tid is not a plain non-negative integer: \"" tid "\"")
    if (tid in last_ts && ts + 0 < last_ts[tid] + 0)
      fail("ts not monotone per tid: tid " tid " goes " last_ts[tid] " -> " ts)
    last_ts[tid] = ts
    events++
    if (!(tid in seen)) { seen[tid] = 1; tids++ }
  }
  END {
    if (bad) exit 1
    if (!saw_footer) {
      printf "FAIL [trace-json]: missing ]} footer — %s is truncated\n", file | "cat >&2"
      exit 1
    }
    if (events == 0) {
      printf "FAIL [trace-json]: %s contains no events — the run it should have captured was not traced\n", file | "cat >&2"
      exit 1
    }
    printf "OK [trace-json]: %d events across %d thread(s), ts monotone per tid\n", events, tids
  }
' "$TRACE"
