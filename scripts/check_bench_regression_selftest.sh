#!/bin/sh
# check_bench_regression_selftest.sh — negative tests for the fig10 gate.
#
# Feeds scripts/check_bench_regression.sh deliberately missing, truncated,
# and malformed inputs and asserts that every degraded branch produces its
# NAMED verdict and exit code — never a silent pass and never an unhandled
# shell/awk error. Registered in ctest as bench_gate_selftest.
#
# usage: check_bench_regression_selftest.sh [REPO_ROOT]

set -u

ROOT=${1:-$(dirname "$0")/..}
GATE="$ROOT/scripts/check_bench_regression.sh"
TMP=$(mktemp -d) || exit 2
trap 'rm -rf "$TMP"' EXIT INT TERM

FAILURES=0

# run_case NAME EXPECTED_EXIT EXPECTED_PATTERN BASELINE FRESH [VB VF]
# Runs the gate and checks both the exit code and that the named verdict
# appears on stdout+stderr. Extra args exercise the optional checker-gate
# pair (verify baseline + fresh verify results).
run_case() {
  NAME=$1 WANT_EXIT=$2 WANT_PAT=$3 B=$4 F=$5
  if [ $# -ge 7 ]; then
    OUT=$(sh "$GATE" "$B" "$F" 5 "$6" "$7" 2>&1)
  else
    OUT=$(sh "$GATE" "$B" "$F" 2>&1)
  fi
  GOT_EXIT=$?
  if [ "$GOT_EXIT" -ne "$WANT_EXIT" ]; then
    echo "selftest FAIL [$NAME]: exit $GOT_EXIT, expected $WANT_EXIT" >&2
    echo "$OUT" | sed 's/^/    | /' >&2
    FAILURES=$((FAILURES + 1))
    return
  fi
  if ! printf '%s\n' "$OUT" | grep -q "$WANT_PAT"; then
    echo "selftest FAIL [$NAME]: output lacks expected pattern: $WANT_PAT" >&2
    echo "$OUT" | sed 's/^/    | /' >&2
    FAILURES=$((FAILURES + 1))
    return
  fi
  echo "selftest ok [$NAME]"
}

# A minimal well-formed result set (the one-row-per-line shape the bench
# emits; only the fields the gate reads).
good_json() {
  cat <<'EOF'
{"domain": "octagon", "vars": 8, "wall_ms": 10.5, "dbm_cells_touched": 1000}
{"domain": "octagon", "vars": 16, "wall_ms": 22.5, "dbm_cells_touched": 2000}
{"domain": "zone", "vars": 16, "wall_ms": 4.5, "zone_closure_vertices_visited": 300}
{"domain": "staged", "vars": 16, "wall_ms": 6.0, "staged_escalated_transfers": 120, "staged_sum_mismatches": 0, "staged_budget_exhaustions": 0, "staged_degraded_cells": 0, "staged_cancellations_honored": 0}
{"domain": "dis_interval", "vars": 16, "wall_ms": 5.0, "dis_interval_partitions_collapsed": 40, "dis_interval_partition_splits": 12, "dis_interval_disjunctive_joins": 90}
EOF
}

good_json > "$TMP/base.json"
good_json > "$TMP/fresh.json"

# 1. Clean pass on identical baseline and fresh.
run_case identical-pass 0 '^OK$' "$TMP/base.json" "$TMP/fresh.json"

# 2. Missing baseline: named SKIP, exit 0 — not a shell error.
run_case missing-baseline 0 'SKIP \[gate\]: baseline' \
  "$TMP/no_such_baseline.json" "$TMP/fresh.json"

# 3. Missing fresh file: named FAIL, exit 2.
run_case missing-fresh 2 'FAIL \[gate\]: fresh results' \
  "$TMP/base.json" "$TMP/no_such_fresh.json"

# 4. Baseline predating a domain: named per-domain SKIP, still exit 0.
grep -v '"domain": "staged"' "$TMP/base.json" > "$TMP/base_nostaged.json"
run_case pre-domain-baseline 0 'SKIP \[staged\]: baseline has no' \
  "$TMP/base_nostaged.json" "$TMP/fresh.json"

# 5. Fresh run dropping a domain the baseline gates: named FAIL.
grep -v '"domain": "zone"' "$TMP/fresh.json" > "$TMP/fresh_nozone.json"
run_case fresh-drops-domain 1 'FAIL \[zone\]: baseline carries' \
  "$TMP/base.json" "$TMP/fresh_nozone.json"

# 6. Non-numeric counter field: named malformed FAIL, not an awk error.
sed 's/"dbm_cells_touched": 2000/"dbm_cells_touched": "lots"/' \
  "$TMP/fresh.json" > "$TMP/fresh_garbage.json"
run_case malformed-counter 1 'FAIL \[octagon\]: malformed' \
  "$TMP/base.json" "$TMP/fresh_garbage.json"

# 7. Regression beyond the 5% threshold: named FAIL.
sed 's/"dbm_cells_touched": 2000/"dbm_cells_touched": 2200/' \
  "$TMP/fresh.json" > "$TMP/fresh_regressed.json"
run_case regression-detected 1 'FAIL \[octagon\]: dbm_cells_touched regression' \
  "$TMP/base.json" "$TMP/fresh_regressed.json"

# 8. Sum-constraint mismatches in the fresh run: named FAIL.
sed 's/"staged_sum_mismatches": 0/"staged_sum_mismatches": 3/' \
  "$TMP/fresh.json" > "$TMP/fresh_mismatch.json"
run_case sum-mismatch 1 'FAIL \[staged\]: 3 sum-constraint' \
  "$TMP/base.json" "$TMP/fresh_mismatch.json"

# 9. Budget exhaustion on the un-budgeted default workload: named FAIL.
sed 's/"staged_budget_exhaustions": 0/"staged_budget_exhaustions": 2/' \
  "$TMP/fresh.json" > "$TMP/fresh_budget.json"
run_case budget-nonzero 1 'FAIL \[budget\]: staged_budget_exhaustions is 2' \
  "$TMP/base.json" "$TMP/fresh_budget.json"

# 10. Degraded cells reported on the default workload: named FAIL.
sed 's/"staged_degraded_cells": 0/"staged_degraded_cells": 7/' \
  "$TMP/fresh.json" > "$TMP/fresh_degraded.json"
run_case degraded-nonzero 1 'FAIL \[budget\]: staged_degraded_cells is 7' \
  "$TMP/base.json" "$TMP/fresh_degraded.json"

# 10a. Baseline predating the domain registry (no dis_interval rows at
# all): named per-domain SKIP, still exit 0 — pre-registry baselines must
# not arm the disjunctive gate.
grep -v '"domain": "dis_interval"' "$TMP/base.json" \
  > "$TMP/base_preregistry.json"
run_case pre-registry-baseline 0 'SKIP \[dis_interval\]: baseline has no' \
  "$TMP/base_preregistry.json" "$TMP/fresh.json"

# 10b. Partition-collapse churn beyond the 5% threshold: named FAIL (the
# counter is deterministic — K and the workload seed are fixed).
sed 's/"dis_interval_partitions_collapsed": 40/"dis_interval_partitions_collapsed": 60/' \
  "$TMP/fresh.json" > "$TMP/fresh_dis_regressed.json"
run_case dis-interval-regression 1 \
  'FAIL \[dis_interval\]: dis_interval_partitions_collapsed regression' \
  "$TMP/base.json" "$TMP/fresh_dis_regressed.json"

# 10c. Malformed dis_interval counter: named FAIL, not an awk error.
sed 's/"dis_interval_partitions_collapsed": 40/"dis_interval_partitions_collapsed": "many"/' \
  "$TMP/fresh.json" > "$TMP/fresh_dis_garbage.json"
run_case dis-interval-malformed 1 'FAIL \[dis_interval\]: malformed' \
  "$TMP/base.json" "$TMP/fresh_dis_garbage.json"

# A minimal well-formed verify result set (bench_batch_verify's row shape;
# only the fields the checker gate reads).
verify_json() {
  cat <<'EOF'
{"domain": "interval", "vars": 8, "wall_ms": 12.0, "checks_rechecked": 1500, "verdict_mismatches": 0}
{"domain": "interval", "vars": 16, "wall_ms": 40.0, "checks_rechecked": 2000, "verdict_mismatches": 0}
EOF
}

verify_json > "$TMP/vbase.json"
verify_json > "$TMP/vfresh.json"

# 11. Clean checker-gate pass on identical verify baseline and fresh.
run_case checker-pass 0 'verify gate \[checker\]: 0 incremental-vs-batch' \
  "$TMP/base.json" "$TMP/fresh.json" "$TMP/vbase.json" "$TMP/vfresh.json"

# 12. checks_rechecked regression beyond 5%: named FAIL.
sed 's/"checks_rechecked": 2000/"checks_rechecked": 2200/' \
  "$TMP/vfresh.json" > "$TMP/vfresh_regressed.json"
run_case checker-regression 1 'FAIL \[checker\]: checks_rechecked regression' \
  "$TMP/base.json" "$TMP/fresh.json" "$TMP/vbase.json" "$TMP/vfresh_regressed.json"

# 13. Incremental-vs-batch verdict mismatch: named FAIL even though the
# counter gate passes (baseline-independent correctness assert).
sed 's/"checks_rechecked": 2000, "verdict_mismatches": 0/"checks_rechecked": 2000, "verdict_mismatches": 4/' \
  "$TMP/vfresh.json" > "$TMP/vfresh_mismatch.json"
run_case checker-verdict-mismatch 1 \
  'FAIL \[checker\]: 4 incremental-vs-batch verdict mismatches' \
  "$TMP/base.json" "$TMP/fresh.json" "$TMP/vbase.json" "$TMP/vfresh_mismatch.json"

# 14. Missing verify baseline: named SKIP for the counter gate, exit 0,
# and the mismatch assert still runs.
run_case checker-missing-baseline 0 'SKIP \[checker\]: verify baseline' \
  "$TMP/base.json" "$TMP/fresh.json" "$TMP/no_such_vbase.json" "$TMP/vfresh.json"

# 15. Missing fresh verify results: named FAIL — the bench run that should
# have produced them failed.
run_case checker-missing-fresh 1 'FAIL \[checker\]: fresh verify results' \
  "$TMP/base.json" "$TMP/fresh.json" "$TMP/vbase.json" "$TMP/no_such_vfresh.json"

# 16. Malformed verdict_mismatches field: named FAIL, not an awk error.
sed 's/"verdict_mismatches": 0/"verdict_mismatches": "none"/' \
  "$TMP/vfresh.json" > "$TMP/vfresh_garbage.json"
run_case checker-malformed-mismatches 1 \
  'FAIL \[checker\]: malformed verdict_mismatches' \
  "$TMP/base.json" "$TMP/fresh.json" "$TMP/vbase.json" "$TMP/vfresh_garbage.json"

# A fresh fig10 result set carrying the parallel cross-check rows the
# --threads axis emits (the sizes rows plus per-thread-count rows keyed on
# "threads" rather than "vars", so the per-size gates never read them).
{
  good_json
  cat <<'EOF'
{"phase": "batch_reanalysis", "domain": "octagon", "threads": 1, "instances": 4, "wall_ms": 0.5, "speedup": 1.0, "parallel_result_mismatches": 0}
{"phase": "batch_reanalysis", "domain": "octagon", "threads": 4, "instances": 4, "wall_ms": 0.9, "speedup": 0.55, "parallel_result_mismatches": 0}
EOF
} > "$TMP/fresh_parallel.json"

# 17. Fresh json without threads rows (bench ran without --threads): named
# per-bench SKIP, still exit 0.
run_case parallel-skip-no-rows 0 'SKIP \[parallel-fig10\]: fresh' \
  "$TMP/base.json" "$TMP/fresh.json"

# 18. Fresh carries parallel rows but the committed baseline predates them:
# baseline SKIP note plus the baseline-independent mismatch check passing.
run_case parallel-pre-parallel-baseline 0 \
  'parallel gate \[fig10\]: 0 serial-vs-parallel' \
  "$TMP/base.json" "$TMP/fresh_parallel.json"
run_case parallel-baseline-skip-note 0 \
  'SKIP \[parallel-fig10\]: baseline' \
  "$TMP/base.json" "$TMP/fresh_parallel.json"

# 19. Serial-vs-parallel result mismatches in the fresh run: named FAIL
# regardless of the baseline.
sed 's/"speedup": 0.55, "parallel_result_mismatches": 0/"speedup": 0.55, "parallel_result_mismatches": 5/' \
  "$TMP/fresh_parallel.json" > "$TMP/fresh_parallel_mismatch.json"
run_case parallel-mismatch 1 \
  'FAIL \[parallel-fig10\]: 5 serial-vs-parallel result mismatches' \
  "$TMP/base.json" "$TMP/fresh_parallel_mismatch.json"

# 20. Malformed parallel_result_mismatches field: named FAIL, not an awk
# error.
sed 's/"parallel_result_mismatches": 0/"parallel_result_mismatches": "??"/' \
  "$TMP/fresh_parallel.json" > "$TMP/fresh_parallel_garbage.json"
run_case parallel-malformed 1 \
  'FAIL \[parallel-fig10\]: malformed parallel_result_mismatches' \
  "$TMP/base.json" "$TMP/fresh_parallel_garbage.json"

# 21. The verify json gets the same cross-check: mismatches in its parallel
# corpus rows are a named FAIL even when every other checker gate passes.
{
  verify_json
  echo '{"phase": "corpus", "threads": 2, "wall_ms": 30.0, "programs_per_sec": 7000.0, "speedup": 0.9, "parallel_result_mismatches": 2}'
} > "$TMP/vfresh_parallel_mismatch.json"
run_case parallel-checker-mismatch 1 \
  'FAIL \[parallel-checker\]: 2 serial-vs-parallel result mismatches' \
  "$TMP/base.json" "$TMP/fresh.json" "$TMP/vbase.json" "$TMP/vfresh_parallel_mismatch.json"

# 22. Fresh json without dai_trace_* fields (bench predates the
# observability layer): named SKIP, still exit 0.
run_case trace-skip-no-fields 0 'SKIP \[trace-fig10\]:' \
  "$TMP/base.json" "$TMP/fresh.json"

# 23. Trace fields present and zero: the hygiene gate passes by name.
{
  good_json
  echo '{"trace": {"dai_trace_events_dropped": 0, "dai_trace_events_recorded": 0}}'
} > "$TMP/fresh_trace_zero.json"
run_case trace-zero-pass 0 'trace gate \[fig10\]: un-traced run' \
  "$TMP/base.json" "$TMP/fresh_trace_zero.json"

# 24. Nonzero trace counter on the un-traced gate run: named FAIL — a hook
# recorded events on the measured counter paths.
sed 's/"dai_trace_events_recorded": 0/"dai_trace_events_recorded": 42/' \
  "$TMP/fresh_trace_zero.json" > "$TMP/fresh_trace_nonzero.json"
run_case trace-nonzero 1 \
  'FAIL \[trace-fig10\]: dai_trace_events_recorded is 42' \
  "$TMP/base.json" "$TMP/fresh_trace_nonzero.json"

# 25. Malformed trace counter: named FAIL, not an awk error.
sed 's/"dai_trace_events_dropped": 0/"dai_trace_events_dropped": "no"/' \
  "$TMP/fresh_trace_zero.json" > "$TMP/fresh_trace_garbage.json"
run_case trace-malformed 1 'FAIL \[trace-fig10\]: malformed' \
  "$TMP/base.json" "$TMP/fresh_trace_garbage.json"

# 26. The verify json's trace fields are gated too.
{
  verify_json
  echo '{"trace": {"dai_trace_events_dropped": 3, "dai_trace_events_recorded": 0}}'
} > "$TMP/vfresh_trace_nonzero.json"
run_case trace-checker-nonzero 1 \
  'FAIL \[trace-checker\]: dai_trace_events_dropped is 3' \
  "$TMP/base.json" "$TMP/fresh.json" "$TMP/vbase.json" "$TMP/vfresh_trace_nonzero.json"

if [ "$FAILURES" -gt 0 ]; then
  echo "check_bench_regression_selftest: $FAILURES case(s) failed" >&2
  exit 1
fi
echo "check_bench_regression_selftest: all cases passed"
