#!/bin/sh
# check_bench_regression.sh — per-size perf gate for the Fig. 10 bench.
#
# Compares a freshly generated BENCH_fig10.json against the committed
# baseline and FAILS (exit 1) when DBM closure cells touched at the LARGEST
# sweep size regressed by more than the threshold (default 5%).
#
# Cells touched — not wall time — is the gate metric: the workload is
# seeded and the closure kernels are deterministic, so the counter is
# load-independent and reproducible run-to-run, where wall time on loaded
# CI runners can swing past any usable threshold. An algorithmic regression
# in the closure pipeline (the dominant cost of the workload) shows up in
# this counter directly; wall time is still recorded in the JSON and
# printed here for context.
#
# usage: check_bench_regression.sh BASELINE.json FRESH.json [THRESHOLD_PCT]
#
# Plain POSIX sh + awk so it runs in any CI image; the JSON it parses is
# the fixed shape bench_fig10_octagon_workload emits (one sizes-entry per
# line with "vars", "wall_ms", and "dbm_cells_touched" fields).

set -eu

if [ "$#" -lt 2 ]; then
  echo "usage: $0 BASELINE.json FRESH.json [THRESHOLD_PCT]" >&2
  exit 2
fi

BASELINE=$1
FRESH=$2
THRESHOLD=${3:-5}

for F in "$BASELINE" "$FRESH"; do
  if [ ! -r "$F" ]; then
    echo "check_bench_regression: cannot read $F" >&2
    exit 2
  fi
done

# Prints "<vars> <dbm_cells_touched> <wall_ms>" for the largest-vars entry
# of the sizes array.
largest_size() {
  awk '
    /"vars":/ && /"dbm_cells_touched":/ {
      v = $0; sub(/.*"vars":[ \t]*/, "", v); sub(/[^0-9].*/, "", v)
      c = $0; sub(/.*"dbm_cells_touched":[ \t]*/, "", c); sub(/[^0-9].*/, "", c)
      w = $0; sub(/.*"wall_ms":[ \t]*/, "", w); sub(/[^0-9.].*/, "", w)
      if (v + 0 >= maxv + 0) { maxv = v; cells = c; wall = w }
    }
    END {
      if (maxv == "") exit 3
      print maxv, cells, wall
    }
  ' "$1"
}

BASE_ROW=$(largest_size "$BASELINE") || {
  echo "check_bench_regression: no sizes entries with dbm_cells_touched in $BASELINE" >&2
  exit 2
}
FRESH_ROW=$(largest_size "$FRESH") || {
  echo "check_bench_regression: no sizes entries with dbm_cells_touched in $FRESH" >&2
  exit 2
}

set -- $BASE_ROW
BASE_VARS=$1 BASE_CELLS=$2 BASE_WALL=$3
set -- $FRESH_ROW
FRESH_VARS=$1 FRESH_CELLS=$2 FRESH_WALL=$3

if [ "$BASE_VARS" != "$FRESH_VARS" ]; then
  echo "check_bench_regression: sweep-size mismatch (baseline vars=$BASE_VARS, fresh vars=$FRESH_VARS)" >&2
  exit 2
fi

awk -v base="$BASE_CELLS" -v fresh="$FRESH_CELLS" -v pct="$THRESHOLD" \
    -v vars="$BASE_VARS" -v bwall="$BASE_WALL" -v fwall="$FRESH_WALL" '
  BEGIN {
    limit = base * (1 + pct / 100)
    delta = base > 0 ? (fresh / base - 1) * 100 : 0
    printf "fig10 gate @ %s vars: closure cells touched baseline %d, fresh %d (%+.2f%%), limit %d (+%s%%)\n",
           vars, base, fresh, delta, limit, pct
    printf "fig10 gate @ %s vars: wall (informational) baseline %.1f ms, fresh %.1f ms\n",
           vars, bwall, fwall
    if (fresh > limit) {
      printf "FAIL: closure-cells-touched regression exceeds %s%% at the largest sweep size\n", pct
      exit 1
    }
    print "OK"
  }
'
