#!/bin/sh
# check_bench_regression.sh — per-size perf gate for the Fig. 10 bench.
#
# Compares a freshly generated BENCH_fig10.json against the committed
# baseline and FAILS (exit 1) when wall time at the LARGEST sweep size
# regressed by more than the threshold (default 20%).
#
# usage: check_bench_regression.sh BASELINE.json FRESH.json [THRESHOLD_PCT]
#
# Plain POSIX sh + awk so it runs in any CI image; the JSON it parses is
# the fixed shape bench_fig10_octagon_workload emits (one sizes-entry per
# line with "vars" and "wall_ms" fields).

set -eu

if [ "$#" -lt 2 ]; then
  echo "usage: $0 BASELINE.json FRESH.json [THRESHOLD_PCT]" >&2
  exit 2
fi

BASELINE=$1
FRESH=$2
THRESHOLD=${3:-20}

for F in "$BASELINE" "$FRESH"; do
  if [ ! -r "$F" ]; then
    echo "check_bench_regression: cannot read $F" >&2
    exit 2
  fi
done

# Prints "<vars> <wall_ms>" for the largest-vars entry of the sizes array.
largest_size() {
  awk '
    /"vars":/ && /"wall_ms":/ {
      v = $0; sub(/.*"vars":[ \t]*/, "", v); sub(/[^0-9].*/, "", v)
      w = $0; sub(/.*"wall_ms":[ \t]*/, "", w); sub(/[^0-9.].*/, "", w)
      if (v + 0 >= maxv + 0) { maxv = v; wall = w }
    }
    END {
      if (maxv == "") exit 3
      print maxv, wall
    }
  ' "$1"
}

BASE_ROW=$(largest_size "$BASELINE") || {
  echo "check_bench_regression: no sizes entries in $BASELINE" >&2
  exit 2
}
FRESH_ROW=$(largest_size "$FRESH") || {
  echo "check_bench_regression: no sizes entries in $FRESH" >&2
  exit 2
}

BASE_VARS=${BASE_ROW% *}
BASE_WALL=${BASE_ROW#* }
FRESH_VARS=${FRESH_ROW% *}
FRESH_WALL=${FRESH_ROW#* }

if [ "$BASE_VARS" != "$FRESH_VARS" ]; then
  echo "check_bench_regression: sweep-size mismatch (baseline vars=$BASE_VARS, fresh vars=$FRESH_VARS)" >&2
  exit 2
fi

awk -v base="$BASE_WALL" -v fresh="$FRESH_WALL" -v pct="$THRESHOLD" \
    -v vars="$BASE_VARS" '
  BEGIN {
    limit = base * (1 + pct / 100)
    delta = base > 0 ? (fresh / base - 1) * 100 : 0
    printf "fig10 gate @ %s vars: baseline %.1f ms, fresh %.1f ms (%+.1f%%), limit %.1f ms (+%s%%)\n",
           vars, base, fresh, delta, limit, pct
    if (fresh > limit) {
      printf "FAIL: wall-time regression exceeds %s%% at the largest sweep size\n", pct
      exit 1
    }
    print "OK"
  }
'
