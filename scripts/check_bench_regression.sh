#!/bin/sh
# check_bench_regression.sh — per-size perf gate for the Fig. 10 bench.
#
# Compares a freshly generated BENCH_fig10.json against the committed
# baseline and FAILS (exit 1) when, at the LARGEST sweep size, any
# relational domain's closure-work counter regressed by more than the
# threshold (default 5%):
#   - octagon: dbm_cells_touched   (dense half-matrix cells tightened)
#   - zone:    zone_closure_vertices_visited (sparse-graph vertices scanned)
#   - staged:  staged_escalated_transfers (dual-tier transfer evaluations —
#     the octagon work the staged analysis actually paid; an escalation
#     regression means more of the program runs the dense tier)
#
# Counters — not wall time — are the gate metrics: the workload is seeded
# and the closure kernels are deterministic, so the counters are
# load-independent and reproducible run-to-run, where wall time on loaded
# CI runners can swing past any usable threshold. An algorithmic regression
# in either closure pipeline shows up in its counter directly; wall time is
# still recorded in the JSON and printed here for context.
#
# usage: check_bench_regression.sh BASELINE.json FRESH.json [THRESHOLD_PCT]
#
# Plain POSIX sh + awk so it runs in any CI image; the JSON it parses is
# the fixed shape bench_fig10_octagon_workload emits (one sizes-entry per
# line, octagon entries carrying "dbm_cells_touched", zone entries
# "zone_closure_vertices_visited", and staged entries
# "staged_escalated_transfers"). A baseline predating a domain simply
# skips that domain's gate.

set -eu

if [ "$#" -lt 2 ]; then
  echo "usage: $0 BASELINE.json FRESH.json [THRESHOLD_PCT]" >&2
  exit 2
fi

BASELINE=$1
FRESH=$2
THRESHOLD=${3:-5}

for F in "$BASELINE" "$FRESH"; do
  if [ ! -r "$F" ]; then
    echo "check_bench_regression: cannot read $F" >&2
    exit 2
  fi
done

# Prints "<vars> <counter> <wall_ms>" for the largest-vars sizes-entry
# carrying the given counter field, or nothing when no entry has it.
largest_size() {
  awk -v field="\"$2\":" '
    /"vars":/ && index($0, field) {
      v = $0; sub(/.*"vars":[ \t]*/, "", v); sub(/[^0-9].*/, "", v)
      c = $0; sub(".*" field "[ \t]*", "", c); sub(/[^0-9].*/, "", c)
      w = $0; sub(/.*"wall_ms":[ \t]*/, "", w); sub(/[^0-9.].*/, "", w)
      if (v + 0 >= maxv + 0) { maxv = v; cells = c; wall = w }
    }
    END {
      if (maxv == "") exit 3
      print maxv, cells, wall
    }
  ' "$1"
}

# gate LABEL FIELD — compares baseline vs fresh on FIELD at the largest
# sweep size; returns 1 on regression beyond the threshold.
gate() {
  LABEL=$1
  FIELD=$2
  BASE_ROW=$(largest_size "$BASELINE" "$FIELD") || {
    echo "fig10 gate [$LABEL]: baseline has no $FIELD entries; skipping"
    return 0
  }
  FRESH_ROW=$(largest_size "$FRESH" "$FIELD") || {
    echo "FAIL [$LABEL]: baseline carries $FIELD but the fresh run emits none" >&2
    return 1
  }
  set -- $BASE_ROW
  BASE_VARS=$1 BASE_CELLS=$2 BASE_WALL=$3
  set -- $FRESH_ROW
  FRESH_VARS=$1 FRESH_CELLS=$2 FRESH_WALL=$3

  if [ "$BASE_VARS" != "$FRESH_VARS" ]; then
    echo "check_bench_regression [$LABEL]: sweep-size mismatch (baseline vars=$BASE_VARS, fresh vars=$FRESH_VARS)" >&2
    return 2
  fi

  awk -v base="$BASE_CELLS" -v fresh="$FRESH_CELLS" -v pct="$THRESHOLD" \
      -v vars="$BASE_VARS" -v bwall="$BASE_WALL" -v fwall="$FRESH_WALL" \
      -v label="$LABEL" -v field="$FIELD" '
    BEGIN {
      limit = base * (1 + pct / 100)
      delta = base > 0 ? (fresh / base - 1) * 100 : 0
      printf "fig10 gate [%s] @ %s vars: %s baseline %d, fresh %d (%+.2f%%), limit %d (+%s%%)\n",
             label, vars, field, base, fresh, delta, limit, pct
      printf "fig10 gate [%s] @ %s vars: wall (informational) baseline %.1f ms, fresh %.1f ms\n",
             label, vars, bwall, fwall
      if (fresh > limit) {
        printf "FAIL [%s]: %s regression exceeds %s%% at the largest sweep size\n", label, field, pct
        exit 1
      }
      print "OK"
    }
  '
}

STATUS=0
gate octagon dbm_cells_touched || STATUS=1
gate zone zone_closure_vertices_visited || STATUS=1
gate staged staged_escalated_transfers || STATUS=1

# The staged rows also carry a built-in correctness verdict: the bench
# lockstep-compares every escalated sum-constraint answer against a pure
# octagon run, so a non-zero mismatch count in the FRESH json is an
# exactness bug regardless of the baseline.
MISMATCHES=$(awk '/"staged_sum_mismatches":/ {
  m = $0; sub(/.*"staged_sum_mismatches":[ \t]*/, "", m); sub(/[^0-9].*/, "", m)
  total += m + 0
} END { print total + 0 }' "$FRESH")
if [ "$MISMATCHES" -gt 0 ]; then
  echo "FAIL [staged]: $MISMATCHES sum-constraint answers diverged from the pure-octagon run" >&2
  STATUS=1
else
  echo "fig10 gate [staged]: 0 sum-constraint mismatches vs the pure-octagon run"
fi
exit $STATUS
