#!/bin/sh
# check_bench_regression.sh — per-size perf gate for the Fig. 10 bench.
#
# Compares a freshly generated BENCH_fig10.json against the committed
# baseline and FAILS (exit 1) when, at the LARGEST sweep size, any
# relational domain's closure-work counter regressed by more than the
# threshold (default 5%):
#   - octagon: dbm_cells_touched   (dense half-matrix cells tightened)
#   - zone:    zone_closure_vertices_visited (sparse-graph vertices scanned)
#   - staged:  staged_escalated_transfers (dual-tier transfer evaluations —
#     the octagon work the staged analysis actually paid; an escalation
#     regression means more of the program runs the dense tier)
#   - dis_interval: dis_interval_partitions_collapsed (partition lists
#     force-merged back under the K bound; a regression means the
#     disjunctive domain is churning partitions it immediately loses —
#     deterministic like the closure counters, since K and the workload
#     seed are fixed). Baselines predating the domain registry carry no
#     dis_interval rows and get the standard named SKIP.
#
# Counters — not wall time — are the gate metrics: the workload is seeded
# and the closure kernels are deterministic, so the counters are
# load-independent and reproducible run-to-run, where wall time on loaded
# CI runners can swing past any usable threshold. An algorithmic regression
# in either closure pipeline shows up in its counter directly; wall time is
# still recorded in the JSON and printed here for context.
#
# usage: check_bench_regression.sh BASELINE.json FRESH.json [THRESHOLD_PCT]
#                                  [VERIFY_BASELINE.json VERIFY_FRESH.json]
#
# With the optional 4th/5th args, the checker bench's JSON
# (bench_batch_verify → BENCH_verify.json) is gated too, same policy:
#   - checker: checks_rechecked (incremental re-check slice size at the
#     largest sweep size — a regression means edits re-verify more of the
#     assertion set than they should)
#   - baseline-independent hard-fail on any non-zero verdict_mismatches in
#     the fresh verify JSON (incremental and batch verdicts must be
#     bit-identical after every edit).
#
# Parallel cross-check (benches run with --threads): any non-zero
# parallel_result_mismatches in a FRESH json is a baseline-independent
# hard-fail — parallel analysis must be bit-identical to serial. A json
# without threads rows gets a named SKIP (bench ran without --threads, or
# a pre-parallel baseline); speedup is wall-clock and never gated.
#
# Plain POSIX sh + awk so it runs in any CI image; the JSON it parses is
# the fixed shape bench_fig10_octagon_workload emits (one sizes-entry per
# line, octagon entries carrying "dbm_cells_touched", zone entries
# "zone_closure_vertices_visited", and staged entries
# "staged_escalated_transfers"); bench_batch_verify rows carry
# "checks_rechecked" and "verdict_mismatches".
#
# Degraded-input policy (every branch prints a NAMED verdict — the gate
# never silently passes and never dies on a bare shell error):
#   - BASELINE absent/unreadable  → "SKIP [gate]" + exit 0 (fresh checkout
#     or intentionally dropped baseline: nothing to compare against).
#   - FRESH absent/unreadable     → "FAIL [gate]" + exit 2 (the bench that
#     was supposed to produce it did not run).
#   - a domain absent from the baseline → "SKIP [domain]" (pre-domain
#     baseline), absent from FRESH while the baseline has it → FAIL.
#   - non-numeric vars/counter/wall fields → "FAIL [domain]: malformed".
# Negative-tested by scripts/check_bench_regression_selftest.sh.

set -u

if [ "$#" -lt 2 ]; then
  echo "usage: $0 BASELINE.json FRESH.json [THRESHOLD_PCT] [VERIFY_BASELINE.json VERIFY_FRESH.json]" >&2
  exit 2
fi

BASELINE=$1
FRESH=$2
THRESHOLD=${3:-5}
VERIFY_BASELINE=${4:-}
VERIFY_FRESH=${5:-}

if [ ! -r "$BASELINE" ]; then
  echo "SKIP [gate]: baseline $BASELINE is missing or unreadable — no regression gate run (regenerate and commit a baseline to re-arm it)"
  exit 0
fi
if [ ! -r "$FRESH" ]; then
  echo "FAIL [gate]: fresh results $FRESH are missing or unreadable — the bench run that should have produced them failed" >&2
  exit 2
fi

# Non-negative integer or decimal, nothing else (rejects empty strings,
# signs, exponents, and the residue awk extraction leaves on garbage).
is_num() {
  case "$1" in
    '' | *[!0-9.]* | . | *.*.*) return 1 ;;
  esac
  return 0
}

# Prints "<vars> <counter> <wall_ms>" for the largest-vars sizes-entry
# carrying the given counter field (exit 3 when no entry has it). Fields
# that are not cleanly numeric are emitted as the sentinel "?" so the
# caller can name the malformation instead of tripping over word-splitting.
largest_size() {
  awk -v field="\"$2\":" '
    function grab(line, key,    s) {
      s = line
      if (!sub(".*" key "[ \t]*", "", s)) return "?"
      sub(/[,}].*/, "", s)
      gsub(/[ \t]/, "", s)
      if (s !~ /^[0-9]+(\.[0-9]+)?$/) return "?"
      return s
    }
    /"vars":/ && index($0, field) {
      v = grab($0, "\"vars\":")
      c = grab($0, field)
      w = grab($0, "\"wall_ms\":")
      if (v == "?" || v + 0 >= maxv + 0) { maxv = v; cells = c; wall = w }
      if (v == "?") { bad = 1; exit }
    }
    END {
      if (bad) { print "? ? ?"; exit 0 }
      if (maxv == "") exit 3
      print maxv, cells, wall
    }
  ' "$1"
}

# gate LABEL FIELD [BASELINE_FILE FRESH_FILE] — compares baseline vs fresh
# on FIELD at the largest sweep size (defaulting to the fig10 pair);
# returns 1 on regression beyond the threshold or on malformed rows, 0 on
# pass or named skip.
gate() {
  LABEL=$1
  FIELD=$2
  GATE_BASE=${3:-$BASELINE}
  GATE_FRESH=${4:-$FRESH}
  BASE_ROW=$(largest_size "$GATE_BASE" "$FIELD") || {
    echo "SKIP [$LABEL]: baseline has no $FIELD entries (pre-$LABEL baseline); gate not run for this domain"
    return 0
  }
  FRESH_ROW=$(largest_size "$GATE_FRESH" "$FIELD") || {
    echo "FAIL [$LABEL]: baseline carries $FIELD but the fresh run emits none" >&2
    return 1
  }
  set -- $BASE_ROW
  BASE_VARS=$1 BASE_CELLS=$2 BASE_WALL=$3
  set -- $FRESH_ROW
  FRESH_VARS=$1 FRESH_CELLS=$2 FRESH_WALL=$3

  for PAIR in \
    "baseline:$GATE_BASE:$BASE_VARS:$BASE_CELLS:$BASE_WALL" \
    "fresh:$GATE_FRESH:$FRESH_VARS:$FRESH_CELLS:$FRESH_WALL"; do
    WHICH=${PAIR%%:*}
    REST=${PAIR#*:}
    FILE=${REST%%:*}
    NUMS=${REST#*:}
    V=${NUMS%%:*}; NUMS=${NUMS#*:}
    C=${NUMS%%:*}
    W=${NUMS#*:}
    if ! is_num "$V" || ! is_num "$C" || ! is_num "$W"; then
      echo "FAIL [$LABEL]: malformed $FIELD row in $WHICH $FILE (vars='$V' counter='$C' wall_ms='$W' — expected plain non-negative numbers)" >&2
      return 1
    fi
  done

  if [ "$BASE_VARS" != "$FRESH_VARS" ]; then
    echo "FAIL [$LABEL]: sweep-size mismatch (baseline vars=$BASE_VARS, fresh vars=$FRESH_VARS)" >&2
    return 1
  fi

  awk -v base="$BASE_CELLS" -v fresh="$FRESH_CELLS" -v pct="$THRESHOLD" \
      -v vars="$BASE_VARS" -v bwall="$BASE_WALL" -v fwall="$FRESH_WALL" \
      -v label="$LABEL" -v field="$FIELD" '
    BEGIN {
      limit = base * (1 + pct / 100)
      delta = base > 0 ? (fresh / base - 1) * 100 : 0
      printf "fig10 gate [%s] @ %s vars: %s baseline %d, fresh %d (%+.2f%%), limit %d (+%s%%)\n",
             label, vars, field, base, fresh, delta, limit, pct
      printf "fig10 gate [%s] @ %s vars: wall (informational) baseline %.1f ms, fresh %.1f ms\n",
             label, vars, bwall, fwall
      if (fresh > limit) {
        printf "FAIL [%s]: %s regression exceeds %s%% at the largest sweep size\n", label, field, pct
        exit 1
      }
      print "OK"
    }
  '
}

# Sums a per-line numeric field across a fresh-results file (FIELD [FILE],
# default the fig10 fresh JSON); non-numeric occurrences count as a parse
# error (prints "NaN").
sum_fresh_field() {
  SUM_FILE=${2:-$FRESH}
  awk -v field="\"$1\":" '
    index($0, field) {
      m = $0
      sub(".*" field "[ \t]*", "", m)
      sub(/[,}].*/, "", m)
      gsub(/[ \t]/, "", m)
      if (m !~ /^[0-9]+$/) { bad = 1; exit }
      total += m + 0
    }
    END { print bad ? "NaN" : total + 0 }
  ' "$SUM_FILE"
}

STATUS=0
gate octagon dbm_cells_touched || STATUS=1
gate zone zone_closure_vertices_visited || STATUS=1
gate staged staged_escalated_transfers || STATUS=1
gate dis_interval dis_interval_partitions_collapsed || STATUS=1

# The staged rows also carry a built-in correctness verdict: the bench
# lockstep-compares every escalated sum-constraint answer against a pure
# octagon run, so a non-zero mismatch count in the FRESH json is an
# exactness bug regardless of the baseline.
MISMATCHES=$(sum_fresh_field staged_sum_mismatches)
if ! is_num "$MISMATCHES"; then
  echo "FAIL [staged]: malformed staged_sum_mismatches field in $FRESH" >&2
  STATUS=1
elif [ "$MISMATCHES" -gt 0 ]; then
  echo "FAIL [staged]: $MISMATCHES sum-constraint answers diverged from the pure-octagon run" >&2
  STATUS=1
else
  echo "fig10 gate [staged]: 0 sum-constraint mismatches vs the pure-octagon run"
fi

# Budget hygiene: the default bench runs UN-budgeted, so any budget
# exhaustion / degraded cell / honored cancellation in the fresh JSON means
# the resource-governance layer degraded an unbudgeted analysis — a
# correctness bug, gated regardless of the baseline.
for BFIELD in zone_budget_exhaustions zone_degraded_cells \
              zone_cancellations_honored staged_budget_exhaustions \
              staged_degraded_cells staged_cancellations_honored; do
  TOTAL=$(sum_fresh_field "$BFIELD")
  if ! is_num "$TOTAL"; then
    echo "FAIL [budget]: malformed $BFIELD field in $FRESH" >&2
    STATUS=1
  elif [ "$TOTAL" -gt 0 ]; then
    echo "FAIL [budget]: $BFIELD is $TOTAL on the un-budgeted default workload (expected 0)" >&2
    STATUS=1
  fi
done
echo "fig10 gate [budget]: un-budgeted run shows zero budget exhaustions / degraded cells / honored cancellations"

# Tracing hygiene: the default gate runs are UN-TRACED, and a disabled
# trace hook must cost one branch — never a recorded (or dropped) event.
# Any nonzero dai_trace_* counter in a fresh JSON means a hook fired on the
# measured counter paths (tracing left enabled, or a hook missing its
# gate), which would also invalidate the wall-clock columns. Fresh JSONs
# without the fields get a named SKIP (bench predates the observability
# layer); this check is baseline-independent.
trace_gate() {
  TLABEL=$1
  TFILE=$2
  if ! grep -q '"dai_trace_events_recorded":' "$TFILE" 2>/dev/null; then
    echo "SKIP [trace-$TLABEL]: $TFILE carries no dai_trace_* fields (bench predates the observability layer); trace hygiene not checked"
    return 0
  fi
  for TF in dai_trace_events_recorded dai_trace_events_dropped; do
    TTOTAL=$(sum_fresh_field "$TF" "$TFILE")
    if ! is_num "$TTOTAL"; then
      echo "FAIL [trace-$TLABEL]: malformed $TF field in $TFILE" >&2
      return 1
    fi
    if [ "$TTOTAL" -gt 0 ]; then
      echo "FAIL [trace-$TLABEL]: $TF is $TTOTAL on the un-traced gate run (expected 0 — a tracing hook recorded events on the measured counter paths)" >&2
      return 1
    fi
  done
  echo "trace gate [$TLABEL]: un-traced run recorded and dropped 0 trace events"
}

trace_gate fig10 "$FRESH" || STATUS=1
if [ -n "$VERIFY_FRESH" ] && [ -r "$VERIFY_FRESH" ]; then
  trace_gate checker "$VERIFY_FRESH" || STATUS=1
fi

# parallel_gate LABEL FRESH_FILE BASELINE_FILE — the serial-vs-parallel
# cross-check: mismatches in the FRESH json fail regardless of the
# baseline; files without threads rows get a named SKIP (the baseline one
# is informational — speedup is wall-clock and never compared).
parallel_gate() {
  PLABEL=$1
  PFRESH=$2
  PBASE=$3
  if ! grep -q '"threads":' "$PFRESH" 2>/dev/null; then
    echo "SKIP [parallel-$PLABEL]: fresh $PFRESH carries no threads/parallel rows (bench ran without --threads or predates the parallel phase)"
    return 0
  fi
  if [ -r "$PBASE" ] && ! grep -q '"threads":' "$PBASE" 2>/dev/null; then
    echo "SKIP [parallel-$PLABEL]: baseline $PBASE predates the parallel fields — threads/speedup not compared (the mismatch check below is baseline-independent)"
  fi
  PMIS=$(sum_fresh_field parallel_result_mismatches "$PFRESH")
  if ! is_num "$PMIS"; then
    echo "FAIL [parallel-$PLABEL]: malformed parallel_result_mismatches field in $PFRESH" >&2
    return 1
  fi
  if [ "$PMIS" -gt 0 ]; then
    echo "FAIL [parallel-$PLABEL]: $PMIS serial-vs-parallel result mismatches (parallel analysis must be bit-identical to serial)" >&2
    return 1
  fi
  echo "parallel gate [$PLABEL]: 0 serial-vs-parallel result mismatches"
}

parallel_gate fig10 "$FRESH" "$BASELINE" || STATUS=1
if [ -n "$VERIFY_FRESH" ] && [ -r "$VERIFY_FRESH" ]; then
  parallel_gate checker "$VERIFY_FRESH" "$VERIFY_BASELINE" || STATUS=1
fi

# Checker bench gate (optional args 4/5): the incremental re-check slice
# size is deterministic like the closure counters, so it gets the same
# threshold gate; the incremental-vs-batch verdict comparison is a
# baseline-independent correctness condition like staged_sum_mismatches.
if [ -n "$VERIFY_FRESH" ]; then
  if [ ! -r "$VERIFY_FRESH" ]; then
    echo "FAIL [checker]: fresh verify results $VERIFY_FRESH are missing or unreadable — the bench run that should have produced them failed" >&2
    STATUS=1
  else
    if [ ! -r "$VERIFY_BASELINE" ]; then
      echo "SKIP [checker]: verify baseline $VERIFY_BASELINE is missing or unreadable — checks_rechecked gate not run (regenerate and commit a baseline to re-arm it)"
    else
      gate checker checks_rechecked "$VERIFY_BASELINE" "$VERIFY_FRESH" || STATUS=1
    fi

    # Baseline-independent: bit-identical verdicts are a correctness
    # invariant of the fresh run, gated even without a committed baseline.
    VMISMATCHES=$(sum_fresh_field verdict_mismatches "$VERIFY_FRESH")
    if ! is_num "$VMISMATCHES"; then
      echo "FAIL [checker]: malformed verdict_mismatches field in $VERIFY_FRESH" >&2
      STATUS=1
    elif [ "$VMISMATCHES" -gt 0 ]; then
      echo "FAIL [checker]: $VMISMATCHES incremental-vs-batch verdict mismatches (re-checked verdicts must be bit-identical to a full re-verification)" >&2
      STATUS=1
    else
      echo "verify gate [checker]: 0 incremental-vs-batch verdict mismatches"
    fi
  fi
fi

exit $STATUS
