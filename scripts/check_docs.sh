#!/bin/sh
# check_docs.sh — the docs-check lane: fails (exit 1) when the README's
# build/verify/bench instructions drift from what the repo actually builds.
#
# usage: check_docs.sh REPO_ROOT
#
# Checks, all derived from the committed sources rather than a hand-kept
# list so they cannot themselves go stale:
#   1. README.md, docs/architecture.md, docs/benchmarking.md, and
#      docs/observability.md exist.
#   2. The README documents the tier-1 verify flow (cmake -B build /
#      cmake --build build / ctest) — the exact commands CI runs.
#   3. Every bench_*/example_* executable name the docs mention has a
#      corresponding source file under bench/ or examples/ (those targets
#      are CMake globs over the source trees, so the file IS the target).
#   4. Every `--target NAME` the docs mention is either a globbed
#      executable (rule 3 / tests/NAME.cpp) or a named custom target in
#      CMakeLists.txt.
#   5. Every scripts/*.sh path the docs mention exists.
#   6. Every --domain value the docs promise is accepted by the bench's
#      argument parser.

set -u

ROOT=${1:-.}
README="$ROOT/README.md"
CML="$ROOT/CMakeLists.txt"
BENCH_SRC="$ROOT/bench/fig10_octagon_workload.cpp"
STATUS=0

fail() {
  echo "docs-check: $1" >&2
  STATUS=1
}

[ -r "$README" ] || { echo "docs-check: README.md missing" >&2; exit 1; }
DOCS="$README"
for D in architecture benchmarking observability; do
  if [ -r "$ROOT/docs/$D.md" ]; then
    DOCS="$DOCS $ROOT/docs/$D.md"
  else
    fail "docs/$D.md missing"
  fi
done

# 2. Tier-1 verify flow.
grep -q -- "cmake -B build" "$README" ||
  fail "README lost the 'cmake -B build' configure step"
grep -q -- "cmake --build build" "$README" ||
  fail "README lost the 'cmake --build build' step"
grep -q "ctest" "$README" || fail "README lost the ctest verify step"

# 3. Globbed executables named in the docs must have sources. -w so a
#    mention inside a longer identifier (check_bench_regression) does not
#    count; ctest-registered names (add_test NAME ...) are not executables
#    and resolve through CMakeLists.txt instead.
for T in $(grep -ohEw 'bench_[a-z0-9_]+' $DOCS | sort -u); do
  grep -q "NAME $T" "$CML" && continue
  [ -r "$ROOT/bench/${T#bench_}.cpp" ] ||
    fail "docs reference $T but bench/${T#bench_}.cpp does not exist"
done
for T in $(grep -ohEw 'example_[a-z0-9_]+' $DOCS | sort -u); do
  [ -r "$ROOT/examples/${T#example_}.cpp" ] ||
    fail "docs reference $T but examples/${T#example_}.cpp does not exist"
done

# 4. Explicit --target names must resolve.
for T in $(grep -ohE -- '--target +[A-Za-z0-9_]+' $DOCS |
           awk '{print $2}' | sort -u); do
  case "$T" in
  bench_*) [ -r "$ROOT/bench/${T#bench_}.cpp" ] ||
    fail "--target $T has no bench source" ;;
  example_*) [ -r "$ROOT/examples/${T#example_}.cpp" ] ||
    fail "--target $T has no example source" ;;
  *_test) [ -r "$ROOT/tests/$T.cpp" ] ||
    fail "--target $T has no test source" ;;
  *) grep -Eq "add_(library|executable|custom_target)\( *$T\b|NAME +$T\b" \
       "$CML" ||
    fail "--target $T is not a target in CMakeLists.txt" ;;
  esac
done

# 5. Referenced scripts must exist.
for S in $(grep -ohE 'scripts/[a-z0-9_]+\.sh' $DOCS | sort -u); do
  [ -r "$ROOT/$S" ] || fail "docs reference $S which does not exist"
done

# 6. The --domain axis the docs promise must match the bench parser.
for V in octagon zone staged dis_interval arr_interval arr_zone both; do
  grep -q "\"$V\"" "$BENCH_SRC" ||
    fail "bench no longer accepts --domain $V promised by the docs"
done

if [ "$STATUS" -eq 0 ]; then
  echo "docs-check: OK"
fi
exit $STATUS
