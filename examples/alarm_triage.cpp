//===-- examples/alarm_triage.cpp - The paper's introduction scenario -----===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The deployment scenario motivating the paper (Section 1): batch analysis
/// in CI raises an alarm; the developer edits locally and wants to know
/// *immediately* whether the change silences the alarm — without waiting for
/// a batch re-run. Demanded abstract interpretation answers the single
/// alarm-site query incrementally, at a tiny fraction of batch cost.
///
/// Build & run:  ./build/examples/alarm_triage
///
//===----------------------------------------------------------------------===//

#include "cfg/lowering.h"
#include "daig/daig.h"
#include "domain/interval.h"

#include <cstdio>

using namespace dai;

namespace {

/// Finds the unique edge whose statement prints as \p Text.
EdgeId edgeOf(const Cfg &G, const char *Text) {
  for (const auto &[Id, E] : G.edges())
    if (E.Label.toString() == Text)
      return Id;
  return InvalidEdgeId;
}

/// Re-checks the alarm: is the buffer access at the alarm site provably in
/// bounds under the current program?
bool alarmSilenced(Daig<IntervalDomain> &G, const Cfg &C, EdgeId AlarmEdge) {
  const CfgEdge *E = C.findEdge(AlarmEdge);
  IntervalState Pre = G.queryLocation(E->Src);
  ObligationSummary Sum = checkArrayObligations(Pre, E->Label);
  return Sum.Verified == Sum.Total;
}

} // namespace

int main() {
  // A processing routine: CI's batch analysis flags `buf[cursor]` because
  // cursor can run one past the end.
  const char *Source = R"(
    function main(msgcount) {
      var buf = [0, 0, 0, 0, 0, 0, 0, 0];
      var cursor = 0;
      var received = 0;
      while (received < msgcount) {
        if (cursor <= buf.length) {
          buf[cursor] = received;
          cursor = cursor + 1;
        }
        received = received + 1;
      }
      return cursor;
    }
  )";
  LowerResult LR = frontend(Source);
  if (!LR.ok()) {
    std::fprintf(stderr, "frontend error: %s\n", LR.Error.c_str());
    return 1;
  }
  Function &Main = *LR.Prog.find("main");
  Statistics Stats;
  Daig<IntervalDomain> Graph(&Main.Body,
                             IntervalDomain::initialEntry(Main.Params),
                             &Stats);

  EdgeId AlarmEdge = edgeOf(Main.Body, "buf[cursor] = received");
  std::printf("== CI alarm: possible out-of-bounds write at "
              "`buf[cursor] = received` ==\n\n");
  bool Ok = alarmSilenced(Graph, Main.Body, AlarmEdge);
  uint64_t BatchCost = Stats.Transfers;
  std::printf("initial check: %s  (%llu transfers — the 'batch' cost)\n",
              Ok ? "SAFE" : "ALARM CONFIRMED",
              (unsigned long long)BatchCost);

  // The developer tries a fix: tighten the guard from <= to <.
  EdgeId Guard = edgeOf(Main.Body, "assume cursor <= buf.length");
  Graph.applyStatementEdit(
      Guard, Stmt::mkAssume(Expr::mkBinary(
                 BinaryOp::Lt, Expr::mkVar("cursor"),
                 Expr::mkField(Expr::mkVar("buf"), "length"))));
  // Its negation on the other branch must be kept consistent.
  EdgeId NotGuard = edgeOf(Main.Body, "assume cursor > buf.length");
  Graph.applyStatementEdit(
      NotGuard, Stmt::mkAssume(Expr::mkBinary(
                    BinaryOp::Ge, Expr::mkVar("cursor"),
                    Expr::mkField(Expr::mkVar("buf"), "length"))));

  uint64_t Before = Stats.Transfers;
  Ok = alarmSilenced(Graph, Main.Body, AlarmEdge);
  std::printf("after local fix (<= became <): %s  (%llu transfers — "
              "incremental re-check)\n",
              Ok ? "ALARM SILENCED" : "still unsafe",
              (unsigned long long)(Stats.Transfers - Before));
  std::printf("\nincremental re-check cost vs batch: %llu vs %llu "
              "transfers\n",
              (unsigned long long)(Stats.Transfers - Before),
              (unsigned long long)BatchCost);
  return Ok ? 0 : 1;
}
