//===-- examples/alarm_triage.cpp - The paper's introduction scenario -----===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The deployment scenario motivating the paper (Section 1): batch analysis
/// in CI raises an alarm; the developer edits locally and wants to know
/// *immediately* whether the change silences the alarm — without waiting for
/// a batch re-run. Demanded abstract interpretation answers the alarm-site
/// queries incrementally, at a tiny fraction of batch cost.
///
/// This is the checker subsystem's walkthrough client: obligations are
/// derived by analysis/checker.h (the implicit array-bounds check at
/// `buf[cursor] = received` plus the developer's own `assert`), verdicts
/// land in a ChecksDb, and IncrementalChecker re-checks only the demanded
/// slice after each edit.
///
/// Build & run:  ./build/examples/alarm_triage
///
//===----------------------------------------------------------------------===//

#include "analysis/checker.h"
#include "cfg/lowering.h"
#include "daig/daig.h"
#include "domain/interval.h"

#include <cstdio>

using namespace dai;

namespace {

/// Finds the unique edge whose statement prints as \p Text.
EdgeId edgeOf(const Cfg &G, const char *Text) {
  for (const auto &[Id, E] : G.edges())
    if (E.Label.toString() == Text)
      return Id;
  return InvalidEdgeId;
}

} // namespace

int main() {
  // A processing routine: CI's batch verification flags `buf[cursor]`
  // because cursor can run one past the end. The developer also wrote an
  // explicit postcondition with the `assert` statement.
  const char *Source = R"(
    function main(msgcount) {
      var buf = [0, 0, 0, 0, 0, 0, 0, 0];
      var cursor = 0;
      var received = 0;
      while (received < msgcount) {
        if (cursor <= buf.length) {
          buf[cursor] = received;
          cursor = cursor + 1;
        }
        received = received + 1;
      }
      assert(cursor >= 0);
      return cursor;
    }
  )";
  LowerResult LR = frontend(Source);
  if (!LR.ok()) {
    std::fprintf(stderr, "frontend error: %s\n", LR.Error.c_str());
    return 1;
  }
  Function &Main = *LR.Prog.find("main");
  Statistics Stats;
  Daig<IntervalDomain> Graph(&Main.Body,
                             IntervalDomain::initialEntry(Main.Params),
                             &Stats);

  // Bounds checks + user assertions; overflow checking is off here to keep
  // the triage report focused on the CI alarm.
  const uint32_t Mask =
      checkMask(CheckKind::ArrayBounds) | checkMask(CheckKind::UserAssertion);
  IncrementalChecker<IntervalDomain> Checker(Graph, Main.Body, &Stats, Mask);

  std::printf("== CI batch verification ==\n\n");
  VerdictCounts Initial = Checker.recheck();
  uint64_t BatchCost = Stats.Transfers;
  std::printf("%s\n", Checker.db().report().c_str());
  std::printf("(%llu transfers — the 'batch' cost)\n\n",
              (unsigned long long)BatchCost);

  // The developer tries a fix: tighten the guard from <= to <.
  std::printf("== local fix: guard `<=` becomes `<` ==\n\n");
  EdgeId Guard = edgeOf(Main.Body, "assume cursor <= buf.length");
  Graph.applyStatementEdit(
      Guard, Stmt::mkAssume(Expr::mkBinary(
                 BinaryOp::Lt, Expr::mkVar("cursor"),
                 Expr::mkField(Expr::mkVar("buf"), "length"))));
  // Its negation on the other branch must be kept consistent.
  EdgeId NotGuard = edgeOf(Main.Body, "assume cursor > buf.length");
  Graph.applyStatementEdit(
      NotGuard, Stmt::mkAssume(Expr::mkBinary(
                    BinaryOp::Ge, Expr::mkVar("cursor"),
                    Expr::mkField(Expr::mkVar("buf"), "length"))));

  uint64_t Before = Stats.Transfers;
  VerdictCounts After = Checker.recheck();
  std::printf("%s\n", Checker.db().report().c_str());
  std::printf("(%llu transfers — incremental re-check; %llu of %llu "
              "obligations re-evaluated)\n\n",
              (unsigned long long)(Stats.Transfers - Before),
              (unsigned long long)Stats.ChecksRechecked,
              (unsigned long long)Checker.obligationCount());

  bool Triaged = Initial.alarms() > 0 && After.alarms() == 0;
  std::printf("verdict: %s\n",
              Triaged ? "ALARM SILENCED by the local fix"
                      : "triage failed — unexpected verdict drift");
  return Triaged ? 0 : 1;
}
