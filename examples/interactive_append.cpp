//===-- examples/interactive_append.cpp - The paper's Section 2 session ---===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays the paper's running example (Sections 1–2) as an interactive
/// session: shape analysis of the linked-list `append` procedure of Fig. 1,
/// a demand query for the early-return branch (Fig. 4a), the logging-
/// statement edit (Fig. 4b), and the demanded fixed point of the traversal
/// loop (Fig. 4c) — verifying memory safety and list well-formedness
/// throughout, at interactive cost.
///
/// Build & run:  ./build/examples/interactive_append
///
//===----------------------------------------------------------------------===//

#include "cfg/edits.h"
#include "cfg/lowering.h"
#include "daig/daig.h"
#include "domain/shape.h"

#include <cstdio>

using namespace dai;

namespace {

void report(const char *What, const ShapeState &S) {
  std::printf("%-34s %s\n", What, ShapeDomain::toString(S).c_str());
}

} // namespace

int main() {
  // Fig. 1: append two well-formed (null-terminated, acyclic) lists.
  const char *Source = R"(
    function append(p, q) {
      if (p == null) {
        return q;
      }
      var r = p;
      while (r.next != null) {
        r = r.next;
      }
      r.next = q;
      return p;
    }
  )";
  LowerResult LR = frontend(Source);
  if (!LR.ok()) {
    std::fprintf(stderr, "frontend error: %s\n", LR.Error.c_str());
    return 1;
  }
  Function &Append = *LR.Prog.find("append");

  Statistics Stats;
  Daig<ShapeDomain> Graph(&Append.Body,
                          ShapeDomain::initialEntry(Append.Params), &Stats);
  std::printf("== demanded shape analysis of append(p, q) ==\n");
  std::printf("entry: lseg(p, nil) * lseg(q, nil)\n\n");

  // Fig. 4a: demand the early-return branch only. Only the two transfers on
  // that path run; the loop is never analyzed.
  Loc EarlyReturnSrc = InvalidLoc;
  for (const auto &[Id, E] : Append.Body.edges())
    if (E.Label.Kind == StmtKind::Assign && E.Label.Lhs == RetVar &&
        E.Label.Rhs && E.Label.Rhs->Kind == ExprKind::Var &&
        E.Label.Rhs->Name == "q")
      EarlyReturnSrc = E.Src;
  ShapeState Branch = Graph.queryLocation(EarlyReturnSrc);
  report("after `assume p == null`:", Branch);
  std::printf("  (demand-driven: %llu transfers, %llu unrollings so far)\n\n",
              (unsigned long long)Stats.Transfers,
              (unsigned long long)Stats.Unrollings);

  // Fig. 4c: demand the exit — the traversal loop's fixed point is computed
  // by demanded unrolling.
  ShapeState Exit = Graph.queryLocation(Append.Body.exit());
  report("exit state:", Exit);
  std::printf("  memory safe: %s\n",
              ShapeDomain::provesMemorySafety(Exit) ? "yes" : "NO");
  std::printf("  returns well-formed list: %s\n",
              ShapeDomain::provesListInvariant(Exit, RetVar) ? "yes" : "NO");
  std::printf("  loop converged after %llu demanded unrolling(s) "
              "(paper: one)\n\n",
              (unsigned long long)Stats.Unrollings);

  // Fig. 4b: the edit — insert `print("p is null")` before the early
  // return. Only the edited branch is dirtied; the loop fixed point is
  // untouched.
  uint64_t WidensBefore = Stats.Widens;
  InsertResult R = insertStmtAt(Append.Body, EarlyReturnSrc,
                                Stmt::mkPrint(Expr::mkInt(0)));
  Graph.applyInsertedStatement(EarlyReturnSrc, R);
  std::printf("edit: inserted print() before `return q` — %llu cells "
              "dirtied\n",
              (unsigned long long)Stats.CellsDirtied);

  Exit = Graph.queryLocation(Append.Body.exit());
  report("exit state after edit:", Exit);
  std::printf("  loop fixed point recomputed: %s (paper: no)\n",
              Stats.Widens == WidensBefore ? "no" : "yes");
  std::printf("  still memory safe & well-formed: %s\n",
              ShapeDomain::provesMemorySafety(Exit) &&
                      ShapeDomain::provesListInvariant(Exit, RetVar)
                  ? "yes"
                  : "NO");
  return 0;
}
