//===-- examples/quickstart.cpp - Five-minute tour ------------------------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: parse a program, build a DAIG over the interval domain, issue
/// demand queries, make an incremental edit, and re-query — watching the
/// statistics to see how little work the re-query does.
///
/// Build & run:  ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "cfg/lowering.h"
#include "daig/daig.h"
#include "domain/interval.h"

#include <cstdio>

using namespace dai;

int main() {
  // 1. Parse and lower a program to a control-flow graph.
  const char *Source = R"(
    function main(n) {
      var i = 0;
      var total = 0;
      while (i < n) {
        total = total + i;
        i = i + 1;
      }
      return total;
    }
  )";
  LowerResult LR = frontend(Source);
  if (!LR.ok()) {
    std::fprintf(stderr, "frontend error: %s\n", LR.Error.c_str());
    return 1;
  }
  Function &Main = *LR.Prog.find("main");
  std::printf("== CFG ==\n%s\n", Main.Body.toString().c_str());

  // 2. Build a demanded abstract interpretation graph over intervals.
  Statistics Stats;
  MemoTable<IntervalDomain> Memo;
  Daig<IntervalDomain> Graph(&Main.Body,
                             IntervalDomain::initialEntry(Main.Params),
                             &Stats, &Memo);
  std::printf("DAIG built: %zu cells, %zu computations\n\n",
              Graph.cellCount(), Graph.compCount());

  // 3. Demand the abstract state at the exit — this unrolls the loop's
  //    fixed point on demand (Q-Loop-Unroll) and memoizes every step.
  IntervalState Exit = Graph.queryLocation(Main.Body.exit());
  std::printf("exit state: %s\n", IntervalDomain::toString(Exit).c_str());
  std::printf("work: %llu transfers, %llu widens, %llu demanded unrollings\n\n",
              (unsigned long long)Stats.Transfers,
              (unsigned long long)Stats.Widens,
              (unsigned long long)Stats.Unrollings);

  // 4. Querying again is free: every cell is already filled (Q-Reuse).
  uint64_t TransfersBefore = Stats.Transfers;
  (void)Graph.queryLocation(Main.Body.exit());
  std::printf("re-query cost: %llu transfers (all reuse)\n\n",
              (unsigned long long)(Stats.Transfers - TransfersBefore));

  // 5. Edit the program: change `i = 0` to `i = 5`. Dirtying is minimal and
  //    eager; recomputation is lazy and demand-driven.
  EdgeId InitEdge = InvalidEdgeId;
  for (const auto &[Id, E] : Main.Body.edges())
    if (E.Label.toString() == "i = 0")
      InitEdge = Id;
  Graph.applyStatementEdit(InitEdge, Stmt::mkAssign("i", Expr::mkInt(5)));
  std::printf("after edit `i = 0` -> `i = 5`: %llu cells dirtied\n",
              (unsigned long long)Stats.CellsDirtied);

  TransfersBefore = Stats.Transfers;
  Exit = Graph.queryLocation(Main.Body.exit());
  std::printf("new exit state: %s\n", IntervalDomain::toString(Exit).c_str());
  std::printf("re-analysis cost: %llu transfers (vs %llu from scratch)\n",
              (unsigned long long)(Stats.Transfers - TransfersBefore),
              (unsigned long long)TransfersBefore);
  return 0;
}
