//===-- examples/trace_explain.cpp - Observability walkthrough ------------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Observability walkthrough: trace a demanded analysis, explain a query's
/// demand provenance, and snapshot the metrics registry.
///
///  1. Enable structured tracing, run interval queries over a small
///     program, and export both Chrome trace_event JSON (load it in
///     Perfetto / chrome://tracing) and collapsed-stack text (pipe it
///     through flamegraph.pl).
///  2. Ask the DAIG to EXPLAIN a query: Daig::explainQuery records the
///     demand tree — which cells the query traversed and whether each was
///     reused, evaluated fresh, answered by the memo table, or
///     ⊤-substituted by the budget — as text and Graphviz DOT.
///  3. Publish the run's counters onto the MetricsRegistry under the bench
///     JSON field names and print the deterministic snapshot.
///
/// Build & run:  ./build/example_trace_explain
/// The DAI_TRACE=<file> environment variable (honored by every dai-cpp
/// binary, not just this one) writes the same Chrome JSON at process exit.
///
//===----------------------------------------------------------------------===//

#include "cfg/lowering.h"
#include "daig/daig.h"
#include "domain/interval.h"
#include "support/observe.h"

#include <cstdio>
#include <cstdlib>

using namespace dai;

int main() {
  const char *Source = R"(
    function main(n) {
      var i = 0;
      var total = 0;
      while (i < n) {
        total = total + i;
        i = i + 1;
      }
      return total;
    }
  )";
  LowerResult LR = frontend(Source);
  if (!LR.ok()) {
    std::fprintf(stderr, "frontend error: %s\n", LR.Error.c_str());
    return 1;
  }
  Function &Main = *LR.Prog.find("main");

  // 1. Trace a demanded analysis. Tracing is off by default (each hook is
  //    one thread_local branch); flip it on around the region of interest.
  setTracingEnabled(true);
  Statistics Stats;
  MemoTable<IntervalDomain> Memo;
  Daig<IntervalDomain> Graph(&Main.Body,
                             IntervalDomain::initialEntry(Main.Params),
                             &Stats, &Memo);
  IntervalState Exit = Graph.queryLocation(Main.Body.exit());
  std::printf("exit state: %s\n", IntervalDomain::toString(Exit).c_str());
  setTracingEnabled(false);

  TraceStats TS = traceStats();
  std::printf("trace: %llu events recorded, %llu dropped\n",
              (unsigned long long)TS.EventsRecorded,
              (unsigned long long)TS.EventsDropped);
  if (TS.EventsRecorded == 0) {
    std::fprintf(stderr, "expected the traced query to record events\n");
    return 1;
  }
  if (!writeChromeTrace("trace_explain.trace.json") ||
      !writeCollapsedStack("trace_explain.folded.txt")) {
    std::fprintf(stderr, "trace export failed\n");
    return 1;
  }
  std::printf("wrote trace_explain.trace.json (chrome://tracing) and "
              "trace_explain.folded.txt (flamegraph.pl)\n\n");

  // 2. Explain a query. The first explain runs against the already-filled
  //    DAIG, so the tree is pure reuse; after an edit, the same explain
  //    shows exactly the slice the edit forced back through evaluation.
  DemandTree Steady = Graph.explainQuery(Main.Body.exit());
  std::printf("== steady-state demand tree (all reuse) ==\n%s\n",
              Steady.text().c_str());
  if (Steady.size() == 0)
    return 1;

  EdgeId InitEdge = InvalidEdgeId;
  for (const auto &[Id, E] : Main.Body.edges())
    if (E.Label.toString() == "i = 0")
      InitEdge = Id;
  Graph.applyStatementEdit(InitEdge, Stmt::mkAssign("i", Expr::mkInt(3)));
  DemandTree AfterEdit = Graph.explainQuery(Main.Body.exit());
  std::printf("== demand tree after editing `i = 0` -> `i = 3` ==\n%s\n",
              AfterEdit.text().c_str());

  std::FILE *Dot = std::fopen("trace_explain.demand.dot", "w");
  if (!Dot)
    return 1;
  std::fputs(AfterEdit.dot().c_str(), Dot);
  std::fclose(Dot);
  std::printf("wrote trace_explain.demand.dot (render with `dot -Tsvg`)\n\n");

  // 3. Metrics snapshot under the established bench field names.
  MetricsRegistry Reg;
  exportStatistics(Stats, Reg);
  exportDomainCounters(Reg);
  exportTraceStats(Reg);
  std::printf("== metrics snapshot ==\n%s\n", Reg.toJson().c_str());
  return 0;
}
