//===-- examples/array_safety.cpp - Interprocedural bounds checking -------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 7.2 client as an application: context-sensitive
/// interprocedural interval analysis verifying array-bounds safety, showing
/// how the verdict depends on the context policy (k-call-strings) and how an
/// edit is re-verified incrementally.
///
/// Build & run:  ./build/examples/array_safety
///
//===----------------------------------------------------------------------===//

#include "cfg/lowering.h"
#include "domain/interval.h"
#include "interproc/engine.h"

#include <cstdio>

using namespace dai;

namespace {

/// Checks every array access of every analyzed instance.
void verify(InterprocEngine<IntervalDomain> &Engine, const char *Label) {
  Engine.analyzeAllFromMain();
  unsigned Total = 0, Verified = 0;
  Engine.forEachInstance([&](const auto &Key, Daig<IntervalDomain> &G) {
    const Cfg *C = Engine.cfgOf(Key.Fn);
    for (const auto &[Id, E] : C->edges()) {
      if (!G.info().Reachable[E.Src])
        continue;
      IntervalState Pre = G.queryLocation(E.Src);
      ObligationSummary Sum = checkArrayObligations(Pre, E.Label);
      Total += Sum.Total;
      Verified += Sum.Verified;
      if (Sum.Verified < Sum.Total)
        std::printf("  UNPROVEN: %s in %s, pre-state %s\n",
                    E.Label.toString().c_str(), Key.toString().c_str(),
                    IntervalDomain::toString(Pre).c_str());
    }
  });
  std::printf("%s: %u/%u accesses verified\n", Label, Verified, Total);
}

} // namespace

int main() {
  const char *Source = R"(
    function get(a, i) {
      return a[i];
    }
    function sumPrefix(a, n) {
      var i = 0;
      var s = 0;
      while (i < n) {
        var v = get(a, i);
        s = s + v;
        i = i + 1;
      }
      return s;
    }
    function main() {
      var data = [3, 1, 4, 1, 5, 9];
      var r = sumPrefix(data, 6);
      return r;
    }
  )";

  std::printf("== context-insensitive (k=0) ==\n");
  {
    LowerResult LR = frontend(Source);
    InterprocEngine<IntervalDomain> Engine(std::move(LR.Prog), "main", 0);
    verify(Engine, "k=0");
  }

  std::printf("\n== 1-call-site sensitive (k=1) ==\n");
  {
    LowerResult LR = frontend(Source);
    InterprocEngine<IntervalDomain> Engine(std::move(LR.Prog), "main", 1);
    verify(Engine, "k=1");
  }

  std::printf("\n== 2-call-site sensitive (k=2), then an incremental edit "
              "==\n");
  {
    LowerResult LR = frontend(Source);
    InterprocEngine<IntervalDomain> Engine(std::move(LR.Prog), "main", 2);
    verify(Engine, "k=2 before edit");

    // The developer changes the prefix length to an out-of-bounds 7 — the
    // incremental re-verification must catch it.
    EdgeId CallEdge = InvalidEdgeId;
    for (const auto &[Id, E] : Engine.cfgOf("main")->edges())
      if (E.Label.Kind == StmtKind::Call && E.Label.Callee == "sumPrefix")
        CallEdge = Id;
    Engine.applyStatementEdit(
        "main", CallEdge,
        Stmt::mkCall("r", "sumPrefix",
                     {Expr::mkVar("data"), Expr::mkInt(7)}));
    std::printf("\nedit: sumPrefix(data, 6) -> sumPrefix(data, 7)\n");
    verify(Engine, "k=2 after bad edit");

    Engine.applyStatementEdit(
        "main", CallEdge,
        Stmt::mkCall("r", "sumPrefix",
                     {Expr::mkVar("data"), Expr::mkInt(5)}));
    std::printf("\nedit: sumPrefix(data, 7) -> sumPrefix(data, 5)\n");
    verify(Engine, "k=2 after fix");
  }
  return 0;
}
