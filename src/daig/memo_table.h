//===-- daig/memo_table.h - Auxiliary memoization table ---------*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The auxiliary memo table M of the Fig. 8 operational semantics: a finite
/// map from names of the form f·(v1···vk) to abstract states, enabling reuse
/// of analysis computations *independent of program location* (the paper
/// realizes this with adapton.ocaml; see DESIGN.md substitutions). Entries
/// are keyed by the function symbol and hashes of the input values — as the
/// paper puts it, names are "hashes, essentially".
///
/// Dropping entries is always sound (Section 2.2): eviction trades reuse for
/// memory, so the table exposes a size cap with FIFO eviction.
///
//===----------------------------------------------------------------------===//

#ifndef DAI_DAIG_MEMO_TABLE_H
#define DAI_DAIG_MEMO_TABLE_H

#include "daig/name.h"
#include "domain/abstract_domain.h"

#include <deque>
#include <optional>
#include <unordered_map>

namespace dai {

/// Location-independent memoization of analysis function applications.
template <typename D>
  requires AbstractDomain<D>
class MemoTable {
public:
  using Elem = typename D::Elem;

  explicit MemoTable(size_t MaxEntries = 1u << 20) : MaxEntries(MaxEntries) {}

  /// Returns the memoized result for \p Key, if present.
  std::optional<Elem> lookup(const Name &Key) const {
    auto It = Table.find(Key);
    if (It == Table.end())
      return std::nullopt;
    return It->second;
  }

  /// Records \p Key ↦ \p Value, evicting the oldest entry beyond the cap.
  void store(const Name &Key, Elem Value) {
    // Find-then-assign: emplace may consume the moved argument even when
    // insertion fails, which would overwrite with a moved-from value.
    auto It = Table.find(Key);
    if (It != Table.end()) {
      It->second = std::move(Value);
      return;
    }
    Table.emplace(Key, std::move(Value));
    InsertionOrder.push_back(Key);
    while (Table.size() > MaxEntries && !InsertionOrder.empty()) {
      Table.erase(InsertionOrder.front());
      InsertionOrder.pop_front();
    }
  }

  void clear() {
    Table.clear();
    InsertionOrder.clear();
  }

  size_t size() const { return Table.size(); }

private:
  size_t MaxEntries;
  std::unordered_map<Name, Elem, NameHash> Table;
  std::deque<Name> InsertionOrder;
};

} // namespace dai

#endif // DAI_DAIG_MEMO_TABLE_H
