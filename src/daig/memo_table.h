//===-- daig/memo_table.h - Auxiliary memoization table ---------*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The auxiliary memo table M of the Fig. 8 operational semantics: a finite
/// map from names of the form f·(v1···vk) to abstract states, enabling reuse
/// of analysis computations *independent of program location* (the paper
/// realizes this with adapton.ocaml; see DESIGN.md substitutions). Entries
/// are keyed by the function symbol and hashes of the input values — as the
/// paper puts it, names are "hashes, essentially".
///
/// Dropping entries is always sound (Section 2.2): eviction trades reuse for
/// memory, so the table exposes a size cap with LRU eviction — lookups
/// refresh recency, so hot transfer/join results survive long edit sessions
/// that a FIFO policy would churn through. Recency is an intrusive list
/// woven through the map (list nodes point at the map's own keys; no
/// duplicate key storage).
///
/// Hit/miss/eviction counts are reported through an attached Statistics
/// (attachStatistics). Attachment is the table OWNER's responsibility —
/// the sink must outlive the table — so InterprocEngine attaches its own
/// Statistics, and standalone users (benches, tests) attach explicitly;
/// the Daig never attaches on its callers' behalf.
///
//===----------------------------------------------------------------------===//

#ifndef DAI_DAIG_MEMO_TABLE_H
#define DAI_DAIG_MEMO_TABLE_H

#include "daig/name.h"
#include "domain/abstract_domain.h"
#include "support/statistics.h"

#include <list>
#include <optional>
#include <unordered_map>

namespace dai {

/// Location-independent memoization of analysis function applications.
template <typename D>
  requires AbstractDomain<D>
class MemoTable {
public:
  using Elem = typename D::Elem;

  explicit MemoTable(size_t MaxEntries = 1u << 20) : MaxEntries(MaxEntries) {}

  /// Routes hit/miss/eviction counts into \p S (MemoHits, MemoMisses,
  /// MemoEvictions). Pass nullptr to detach. With several sinks attaching
  /// to a shared table, the last attach wins.
  void attachStatistics(Statistics *S) { Stats = S; }

  /// Detaches \p S if it is the current sink (no-op otherwise) — callers
  /// whose Statistics dies before a shared table MUST call this, or the
  /// table would keep counting into freed memory.
  void detachStatistics(Statistics *S) {
    if (Stats == S)
      Stats = nullptr;
  }

  /// Returns the memoized result for \p Key, if present, marking the entry
  /// most-recently-used.
  std::optional<Elem> lookup(const Name &Key) {
    auto It = Table.find(Key);
    if (It == Table.end()) {
      if (Stats)
        ++Stats->MemoMisses;
      return std::nullopt;
    }
    touch(It->second.LruIt);
    if (Stats)
      ++Stats->MemoHits;
    return It->second.Value;
  }

  /// Records \p Key ↦ \p Value, evicting least-recently-used entries beyond
  /// the cap.
  void store(const Name &Key, Elem Value) {
    // Find-then-assign: emplace may consume the moved argument even when
    // insertion fails, which would overwrite with a moved-from value.
    auto It = Table.find(Key);
    if (It != Table.end()) {
      It->second.Value = std::move(Value);
      touch(It->second.LruIt);
      return;
    }
    It = Table.emplace(Key, Entry{std::move(Value), {}}).first;
    Lru.push_front(&It->first); // unordered_map keys are address-stable
    It->second.LruIt = Lru.begin();
    while (Table.size() > MaxEntries && !Lru.empty()) {
      Table.erase(*Lru.back());
      Lru.pop_back();
      if (Stats)
        ++Stats->MemoEvictions;
    }
  }

  void clear() {
    Table.clear();
    Lru.clear();
  }

  size_t size() const { return Table.size(); }

private:
  struct Entry {
    Elem Value;
    typename std::list<const Name *>::iterator LruIt;
  };

  /// Moves an entry's recency node to the front (most recently used).
  void touch(typename std::list<const Name *>::iterator It) {
    Lru.splice(Lru.begin(), Lru, It);
  }

  size_t MaxEntries;
  Statistics *Stats = nullptr;
  std::unordered_map<Name, Entry, NameHash> Table;
  std::list<const Name *> Lru; ///< Front = most recent; back is evicted.
};

} // namespace dai

#endif // DAI_DAIG_MEMO_TABLE_H
