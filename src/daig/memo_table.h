//===-- daig/memo_table.h - Auxiliary memoization table ---------*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The auxiliary memo table M of the Fig. 8 operational semantics: a finite
/// map from names of the form f·(v1···vk) to abstract states, enabling reuse
/// of analysis computations *independent of program location* (the paper
/// realizes this with adapton.ocaml; see DESIGN.md substitutions). Entries
/// are keyed by the function symbol and hashes of the input values — as the
/// paper puts it, names are "hashes, essentially".
///
/// Names are hash-consed (daig/name.h), so the table keys on the dense
/// 32-bit NameId directly: probing hashes one integer instead of a name
/// tree, and the LRU recency list holds plain ids — no back-pointers into
/// the map's key storage to keep alive across rehashes.
///
/// Dropping entries is always sound (Section 2.2): eviction trades reuse for
/// memory, so the table exposes a size cap with LRU eviction — lookups
/// refresh recency, so hot transfer/join results survive long edit sessions
/// that a FIFO policy would churn through.
///
/// Hit/miss/eviction counts are reported through an attached Statistics
/// (attachStatistics). Attachment is the table OWNER's responsibility —
/// the sink must outlive the table — so InterprocEngine attaches its own
/// Statistics, and standalone users (benches, tests) attach explicitly;
/// the Daig never attaches on its callers' behalf.
///
//===----------------------------------------------------------------------===//

#ifndef DAI_DAIG_MEMO_TABLE_H
#define DAI_DAIG_MEMO_TABLE_H

#include "daig/name.h"
#include "domain/abstract_domain.h"
#include "support/fault_injection.h"
#include "support/observe.h"
#include "support/statistics.h"

#include <list>
#include <optional>
#include <unordered_map>

namespace dai {

/// Location-independent memoization of analysis function applications.
template <typename D>
  requires AbstractDomain<D>
class MemoTable {
public:
  using Elem = typename D::Elem;

  explicit MemoTable(size_t MaxEntries = 1u << 20) : MaxEntries(MaxEntries) {}

  /// Routes hit/miss/eviction counts into \p S (MemoHits, MemoMisses,
  /// MemoEvictions). Pass nullptr to detach. With several sinks attaching
  /// to a shared table, the last attach wins.
  void attachStatistics(Statistics *S) { Stats = S; }

  /// Detaches \p S if it is the current sink (no-op otherwise) — callers
  /// whose Statistics dies before a shared table MUST call this, or the
  /// table would keep counting into freed memory.
  void detachStatistics(Statistics *S) {
    if (Stats == S)
      Stats = nullptr;
  }

  /// While bypassed, lookup() always misses (without counting) and store()
  /// is a no-op — the table behaves as if absent, which is always sound
  /// (dropping entries is sound, Section 2.2). The parallel engine bypasses
  /// its shared table for the duration of a parallel pass: the LRU list is
  /// not safe for concurrent mutation, and a locked shared LRU would make
  /// hit/miss counts (and hence which evaluations are skipped) depend on
  /// thread schedule — bypassing keeps every parallel pass deterministic.
  void setBypassed(bool On) { Bypassed = On; }

  /// Returns the memoized result for \p Key, if present, marking the entry
  /// most-recently-used.
  std::optional<Elem> lookup(Name Key) {
    if (Bypassed)
      return std::nullopt;
    DAI_FAULT_POINT(Memo); // at entry: an aborted lookup mutates nothing
    auto It = Table.find(Key.id());
    if (It == Table.end()) {
      if (Stats)
        ++Stats->MemoMisses;
      traceInstant("memo.miss", Key.id());
      return std::nullopt;
    }
    touch(It->second.LruIt);
    if (Stats)
      ++Stats->MemoHits;
    traceInstant("memo.hit", Key.id());
    return It->second.Value;
  }

  /// Records \p Key ↦ \p Value, evicting least-recently-used entries beyond
  /// the cap.
  void store(Name Key, Elem Value) {
    if (Bypassed)
      return;
    DAI_FAULT_POINT(Memo); // at entry: an aborted store leaves the LRU and
                           // table untouched (entries are pure, keyed by
                           // value hashes, so skipping a store is sound)
    // Find-then-assign: emplace may consume the moved argument even when
    // insertion fails, which would overwrite with a moved-from value.
    auto It = Table.find(Key.id());
    if (It != Table.end()) {
      It->second.Value = std::move(Value);
      touch(It->second.LruIt);
      return;
    }
    It = Table.emplace(Key.id(), Entry{std::move(Value), {}}).first;
    Lru.push_front(Key.id());
    It->second.LruIt = Lru.begin();
    while (Table.size() > MaxEntries && !Lru.empty()) {
      traceInstant("memo.evict", Lru.back());
      Table.erase(Lru.back());
      Lru.pop_back();
      if (Stats)
        ++Stats->MemoEvictions;
    }
  }

  void clear() {
    Table.clear();
    Lru.clear();
  }

  size_t size() const { return Table.size(); }

private:
  struct Entry {
    Elem Value;
    std::list<NameId>::iterator LruIt;
  };

  /// Spreads the dense, low-entropy ids across buckets (ids are sequential
  /// intern order; identity hashing would cluster the hot tail).
  struct IdHash {
    size_t operator()(NameId Id) const {
      uint64_t X = Id;
      X *= 0x9e3779b97f4a7c15ULL;
      X ^= X >> 32;
      return static_cast<size_t>(X);
    }
  };

  /// Moves an entry's recency node to the front (most recently used).
  void touch(std::list<NameId>::iterator It) {
    Lru.splice(Lru.begin(), Lru, It);
  }

  size_t MaxEntries;
  bool Bypassed = false;
  Statistics *Stats = nullptr;
  std::unordered_map<NameId, Entry, IdHash> Table;
  std::list<NameId> Lru; ///< Front = most recent; back is evicted.
};

} // namespace dai

#endif // DAI_DAIG_MEMO_TABLE_H
