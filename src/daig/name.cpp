//===-- daig/name.cpp - DAIG name algebra ---------------------------------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "daig/name.h"

#include "support/hashing.h"
#include "support/statistics.h"

#include <cassert>
#include <sstream>

using namespace dai;

const char *dai::fnKindName(FnKind F) {
  switch (F) {
  case FnKind::Transfer: return "transfer";
  case FnKind::Join: return "join";
  case FnKind::Widen: return "widen";
  case FnKind::Fix: return "fix";
  }
  assert(false && "unknown function kind");
  return "?";
}

namespace {

uint64_t leafHash(Name::Kind K, uint64_t A) {
  return hashValues(static_cast<uint64_t>(K) + 0x51ULL, A);
}

} // namespace

//===----------------------------------------------------------------------===//
// NameTable
//===----------------------------------------------------------------------===//

NameTable::NameTable()
    : Chunks(new std::atomic<Node *>[kMaxChunks]()) {}

NameTable::~NameTable() {
  for (size_t I = 0; I < kMaxChunks; ++I)
    delete[] Chunks[I].load(std::memory_order_acquire);
}

void NameTable::growShard(Shard &S) {
  size_t NewCap = S.Slots.empty() ? 512 : S.Slots.size() * 2;
  std::vector<std::pair<uint64_t, NameId>> Old = std::move(S.Slots);
  S.Slots.assign(NewCap, {0, kNoName});
  S.SlotMask = NewCap - 1;
  SlotBytes.fetch_add((NewCap - Old.size()) * sizeof(S.Slots[0]),
                      std::memory_order_relaxed);
  for (const auto &[H, Id] : Old) {
    if (Id == kNoName)
      continue;
    size_t Idx = H & S.SlotMask;
    while (S.Slots[Idx].second != kNoName)
      Idx = (Idx + 1) & S.SlotMask;
    S.Slots[Idx] = {H, Id};
  }
}

NameTable::Node *NameTable::chunkFor(NameId Id) {
  size_t CI = Id >> kChunkShift;
  assert(CI < kMaxChunks && "name table overflow");
  std::atomic<Node *> &Slot = Chunks[CI];
  Node *P = Slot.load(std::memory_order_acquire);
  if (P)
    return P;
  Node *Fresh = new Node[kChunkSize];
  Node *Expected = nullptr;
  if (Slot.compare_exchange_strong(Expected, Fresh,
                                   std::memory_order_acq_rel,
                                   std::memory_order_acquire)) {
    ChunkCount.fetch_add(1, std::memory_order_relaxed);
    return Fresh;
  }
  // Another thread published this chunk first; use theirs.
  delete[] Fresh;
  return Expected;
}

NameId NameTable::intern(Name::Kind K, uint64_t A, NameId L, NameId R,
                         uint64_t Hash) {
  AtomicNameTableCounters &C = nameTableCountersAtomic();
  // The structural hash doubles as the probe hash: it is a deterministic
  // function of (K, A, L, R) because the children are themselves interned.
  // Equal tuples always land in the same shard and probe chain; hash
  // collisions between distinct tuples are resolved by the field compare.
  Shard &S = Shards[(Hash >> 60) & (kNumShards - 1)];
  std::lock_guard<std::mutex> G(S.M);
  if (S.Slots.empty())
    growShard(S);
  size_t Idx = Hash & S.SlotMask;
  for (;;) {
    const auto &[SlotHash, SlotId] = S.Slots[Idx];
    if (SlotId == kNoName)
      break;
    if (SlotHash == Hash) {
      const Node &N = node(SlotId);
      if (N.K == K && N.A == A && N.L == L && N.R == R) {
        C.InternHits.fetch_add(1, std::memory_order_relaxed);
        return SlotId;
      }
    }
    Idx = (Idx + 1) & S.SlotMask;
  }
  // Miss: draw a fresh dense id from the global counter and write the node
  // into its (never-relocating) chunk slot. The id becomes visible to other
  // threads only through synchronizing channels — this shard's slot array
  // (below, under S.M), the returned value, or a cross-thread handoff —
  // each of which orders the field writes before any node() read.
  NameId Id = NextId.fetch_add(1, std::memory_order_relaxed);
  assert(Id < kNoName && "name table overflow");
  Node &N = chunkFor(Id)[Id & kChunkMask];
  N.K = K;
  N.A = A;
  N.L = L;
  N.R = R;
  N.Hash = Hash;
  S.Slots[Idx] = {Hash, Id};
  ++S.Count;
  C.NamesInterned.fetch_add(1, std::memory_order_relaxed);
  if ((S.Count + 1) * 10 > S.Slots.size() * 7)
    growShard(S);
  // Footprint gauge: allocated chunks plus the dedup slot arrays.
  C.NameTableBytes.store(ChunkCount.load(std::memory_order_relaxed) *
                                 kChunkSize * sizeof(Node) +
                             SlotBytes.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  return Id;
}

//===----------------------------------------------------------------------===//
// Constructors
//===----------------------------------------------------------------------===//

Name Name::loc(Loc L) {
  uint64_t H = leafHash(Kind::Loc, L);
  return Name(NameTable::global().intern(Kind::Loc, L, kNoName, kNoName, H),
              H);
}

Name Name::fn(FnKind F) {
  // A handful of values total, each (re)built on every memo-key
  // construction: worth a one-time cache instead of an intern probe per
  // call.
  struct FnNames {
    Name N[kNumFnKinds];
    FnNames() {
      for (uint64_t A = 0; A < kNumFnKinds; ++A) {
        uint64_t H = leafHash(Kind::Fn, A);
        N[A] = Name(NameTable::global().intern(Kind::Fn, A, kNoName, kNoName,
                                               H),
                    H);
      }
    }
  };
  static const FnNames Cache;
  return Cache.N[static_cast<uint64_t>(F)];
}

Name Name::num(uint64_t V) {
  uint64_t H = leafHash(Kind::Num, V);
  return Name(NameTable::global().intern(Kind::Num, V, kNoName, kNoName, H),
              H);
}

Name Name::valHash(uint64_t V) {
  uint64_t H = leafHash(Kind::ValHash, V);
  return Name(NameTable::global().intern(Kind::ValHash, V, kNoName, kNoName,
                                         H),
              H);
}

Name Name::pair(const Name &L, const Name &R) {
  assert(L.valid() && R.valid() && "pair requires valid components");
  uint64_t H = hashCombine(hashCombine(0x9a17ULL, L.hash()), R.hash());
  return Name(NameTable::global().intern(Kind::Pair, 0, L.Id, R.Id, H), H);
}

Name Name::iter(const Name &Base, uint32_t Count) {
  assert(Base.valid() && "iter requires a valid base");
  uint64_t H = hashCombine(hashCombine(0x17e8ULL, Base.hash()), Count);
  return Name(NameTable::global().intern(Kind::Iter, Count, Base.Id, kNoName,
                                         H),
              H);
}

//===----------------------------------------------------------------------===//
// Accessors
//===----------------------------------------------------------------------===//

namespace {

const NameTable::Node &nodeOf(NameId Id) {
  assert(Id != kNoName && "accessor on an invalid Name");
  return NameTable::global().node(Id);
}

} // namespace

Loc Name::locId() const {
  const NameTable::Node &N = nodeOf(Id);
  assert(N.K == Kind::Loc && "not a location name");
  return static_cast<Loc>(N.A);
}

FnKind Name::fnKind() const {
  const NameTable::Node &N = nodeOf(Id);
  assert(N.K == Kind::Fn && "not a function-symbol name");
  return static_cast<FnKind>(N.A);
}

uint64_t Name::numValue() const {
  const NameTable::Node &N = nodeOf(Id);
  assert(N.K == Kind::Num && "not a numeric name");
  return N.A;
}

uint64_t Name::hashValue() const {
  const NameTable::Node &N = nodeOf(Id);
  assert(N.K == Kind::ValHash && "not a value-hash name");
  return N.A;
}

Name Name::left() const {
  const NameTable::Node &N = nodeOf(Id);
  assert(N.K == Kind::Pair && "not a product name");
  return Name(N.L, NameTable::global().node(N.L).Hash);
}

Name Name::right() const {
  const NameTable::Node &N = nodeOf(Id);
  assert(N.K == Kind::Pair && "not a product name");
  return Name(N.R, NameTable::global().node(N.R).Hash);
}

Name Name::iterBase() const {
  const NameTable::Node &N = nodeOf(Id);
  assert(N.K == Kind::Iter && "not an iteration name");
  return Name(N.L, NameTable::global().node(N.L).Hash);
}

uint32_t Name::iterCount() const {
  const NameTable::Node &N = nodeOf(Id);
  assert(N.K == Kind::Iter && "not an iteration name");
  return static_cast<uint32_t>(N.A);
}

//===----------------------------------------------------------------------===//
// Ordering and printing
//===----------------------------------------------------------------------===//

namespace {

/// Structural comparison over interned ids — the pre-interning nodeCompare
/// verbatim, with the pointer-identity fast path replaced by id identity
/// (hash-consing makes them equivalent: equal ids iff equal trees).
int nodeCompare(NameId A, NameId B) {
  if (A == B)
    return 0;
  if (A == kNoName)
    return -1;
  if (B == kNoName)
    return 1;
  const NameTable &T = NameTable::global();
  const NameTable::Node &NA = T.node(A);
  const NameTable::Node &NB = T.node(B);
  if (NA.K != NB.K)
    return NA.K < NB.K ? -1 : 1;
  if (NA.A != NB.A)
    return NA.A < NB.A ? -1 : 1;
  if (int C = nodeCompare(NA.L, NB.L))
    return C;
  return nodeCompare(NA.R, NB.R);
}

std::string nodeToString(NameId Id) {
  if (Id == kNoName)
    return "<invalid>";
  const NameTable::Node &N = NameTable::global().node(Id);
  std::ostringstream OS;
  switch (N.K) {
  case Name::Kind::Loc:
    OS << "l" << N.A;
    break;
  case Name::Kind::Fn:
    OS << fnKindName(static_cast<FnKind>(N.A));
    break;
  case Name::Kind::Num:
    OS << N.A;
    break;
  case Name::Kind::ValHash:
    OS << "#" << std::hex << N.A;
    break;
  case Name::Kind::Pair:
    OS << nodeToString(N.L) << "." << nodeToString(N.R);
    break;
  case Name::Kind::Iter:
    OS << nodeToString(N.L) << "(" << N.A << ")";
    break;
  case Name::Kind::Invalid: // interned nodes are never Invalid
    break;
  }
  return OS.str();
}

} // namespace

bool Name::operator<(const Name &O) const {
  if (Id == O.Id)
    return false;
  uint64_t HA = hash(), HB = O.hash();
  if (HA != HB)
    return HA < HB;
  return nodeCompare(Id, O.Id) < 0;
}

std::string Name::toString() const { return nodeToString(Id); }
