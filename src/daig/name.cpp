//===-- daig/name.cpp - DAIG name algebra ---------------------------------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "daig/name.h"

#include "support/hashing.h"

#include <cassert>
#include <sstream>

using namespace dai;

const char *dai::fnKindName(FnKind F) {
  switch (F) {
  case FnKind::Transfer: return "transfer";
  case FnKind::Join: return "join";
  case FnKind::Widen: return "widen";
  case FnKind::Fix: return "fix";
  }
  assert(false && "unknown function kind");
  return "?";
}

namespace {

uint64_t leafHash(Name::Kind K, uint64_t A) {
  return hashValues(static_cast<uint64_t>(K) + 0x51ULL, A);
}

} // namespace

Name Name::loc(Loc L) {
  auto N = std::make_shared<NameNode>();
  N->K = Kind::Loc;
  N->A = L;
  N->Hash = leafHash(Kind::Loc, L);
  return Name(std::move(N));
}

Name Name::fn(FnKind F) {
  auto N = std::make_shared<NameNode>();
  N->K = Kind::Fn;
  N->A = static_cast<uint64_t>(F);
  N->Hash = leafHash(Kind::Fn, N->A);
  return Name(std::move(N));
}

Name Name::num(uint64_t V) {
  auto N = std::make_shared<NameNode>();
  N->K = Kind::Num;
  N->A = V;
  N->Hash = leafHash(Kind::Num, V);
  return Name(std::move(N));
}

Name Name::valHash(uint64_t H) {
  auto N = std::make_shared<NameNode>();
  N->K = Kind::ValHash;
  N->A = H;
  N->Hash = leafHash(Kind::ValHash, H);
  return Name(std::move(N));
}

Name Name::pair(const Name &L, const Name &R) {
  assert(L.valid() && R.valid() && "pair requires valid components");
  auto N = std::make_shared<NameNode>();
  N->K = Kind::Pair;
  N->L = L.Node;
  N->R = R.Node;
  N->Hash = hashCombine(hashCombine(0x9a17ULL, L.hash()), R.hash());
  return Name(std::move(N));
}

Name Name::iter(const Name &Base, uint32_t Count) {
  assert(Base.valid() && "iter requires a valid base");
  auto N = std::make_shared<NameNode>();
  N->K = Kind::Iter;
  N->A = Count;
  N->L = Base.Node;
  N->Hash = hashCombine(hashCombine(0x17e8ULL, Base.hash()), Count);
  return Name(std::move(N));
}

Loc Name::locId() const {
  assert(kind() == Kind::Loc && "not a location name");
  return static_cast<Loc>(Node->A);
}

FnKind Name::fnKind() const {
  assert(kind() == Kind::Fn && "not a function-symbol name");
  return static_cast<FnKind>(Node->A);
}

uint64_t Name::numValue() const {
  assert(kind() == Kind::Num && "not a numeric name");
  return Node->A;
}

uint64_t Name::hashValue() const {
  assert(kind() == Kind::ValHash && "not a value-hash name");
  return Node->A;
}

Name Name::left() const {
  assert(kind() == Kind::Pair && "not a product name");
  return Name(Node->L);
}

Name Name::right() const {
  assert(kind() == Kind::Pair && "not a product name");
  return Name(Node->R);
}

Name Name::iterBase() const {
  assert(kind() == Kind::Iter && "not an iteration name");
  return Name(Node->L);
}

uint32_t Name::iterCount() const {
  assert(kind() == Kind::Iter && "not an iteration name");
  return static_cast<uint32_t>(Node->A);
}

bool Name::nodeEquals(const NameNode *A, const NameNode *B) {
  if (A == B)
    return true;
  if (!A || !B)
    return false;
  if (A->Hash != B->Hash || A->K != B->K || A->A != B->A)
    return false;
  return nodeEquals(A->L.get(), B->L.get()) &&
         nodeEquals(A->R.get(), B->R.get());
}

int Name::nodeCompare(const NameNode *A, const NameNode *B) {
  if (A == B)
    return 0;
  if (!A)
    return -1;
  if (!B)
    return 1;
  if (A->K != B->K)
    return A->K < B->K ? -1 : 1;
  if (A->A != B->A)
    return A->A < B->A ? -1 : 1;
  if (int C = nodeCompare(A->L.get(), B->L.get()))
    return C;
  return nodeCompare(A->R.get(), B->R.get());
}

bool Name::operator==(const Name &O) const {
  return nodeEquals(Node.get(), O.Node.get());
}

bool Name::operator<(const Name &O) const {
  uint64_t HA = hash(), HB = O.hash();
  if (HA != HB)
    return HA < HB;
  return nodeCompare(Node.get(), O.Node.get()) < 0;
}

std::string Name::nodeToString(const NameNode *N) {
  if (!N)
    return "<invalid>";
  std::ostringstream OS;
  switch (N->K) {
  case Kind::Loc:
    OS << "l" << N->A;
    break;
  case Kind::Fn:
    OS << fnKindName(static_cast<FnKind>(N->A));
    break;
  case Kind::Num:
    OS << N->A;
    break;
  case Kind::ValHash:
    OS << "#" << std::hex << N->A;
    break;
  case Kind::Pair:
    OS << nodeToString(N->L.get()) << "." << nodeToString(N->R.get());
    break;
  case Kind::Iter:
    OS << nodeToString(N->L.get()) << "(" << N->A << ")";
    break;
  }
  return OS.str();
}

std::string Name::toString() const { return nodeToString(Node.get()); }
