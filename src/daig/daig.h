//===-- daig/daig.h - Demanded abstract interpretation graphs --*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The demanded abstract interpretation graph (DAIG) of Sections 4–5: a
/// directed acyclic hypergraph whose vertices are named reference cells
/// (program statements and abstract states) and whose edges are analysis
/// computations (⟦·⟧♯, ⊔, ∇, fix). Queries evaluate cells on demand with
/// maximal reuse (rules Q-Reuse / Q-Match / Q-Miss / Q-Loop-Converge /
/// Q-Loop-Unroll of Fig. 8); edits dirty minimal state (rules E-Commit /
/// E-Propagate / E-Loop of Fig. 9).
///
/// Loop handling follows the paper's demanded-unrolling scheme, generalized
/// to nested loops via per-loop iteration counts in names (daig/name.h):
/// each loop instance carries a fix edge over its two greatest abstract
/// iterates; unrolling builds the next abstract iteration of the loop body
/// (resetting directly nested loops to their initial two iterates) and
/// slides the fix edge forward; dirtying an iterate rolls the fix edge back
/// to iterates (0, 1) and deletes the unrolled region (a semantically
/// equivalent, memory-friendlier variant of E-Loop; see DESIGN.md).
///
/// Two kinds of program edits are supported:
///  - applyStatementEdit: in-place statement replacement — surgical dirtying
///    with no structural change;
///  - rebuild(): after arbitrary structural CFG edits — reconstructs the
///    DAIG skeleton, salvages every cell value whose name and defining
///    computation are unchanged (incremental computation with names),
///    re-adopts demanded unrollings of structurally untouched loops, and
///    then dirties forward from every changed cell.
///
//===----------------------------------------------------------------------===//

#ifndef DAI_DAIG_DAIG_H
#define DAI_DAIG_DAIG_H

#include "cfg/cfg_analysis.h"
#include "cfg/edits.h"
#include "daig/memo_table.h"
#include "daig/name.h"
#include "domain/abstract_domain.h"
#include "support/budget.h"
#include "support/fault_injection.h"
#include "support/observe.h"
#include "support/statistics.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <variant>

namespace dai {

/// How one demanded cell was resolved in a recorded query (see
/// Daig::explainQuery): the direct observables of the Fig. 8 rules —
/// Q-Reuse (Reused / DegradedReuse), Q-Match (MemoHit), Q-Miss
/// (Evaluated) — plus the budget layer's ⊤-substitution.
enum class DemandOutcome : uint8_t {
  Reused,        ///< Q-Reuse: the cell already held a value.
  Evaluated,     ///< Q-Miss: computed fresh by its defining computation.
  MemoHit,       ///< Q-Match: demand-miss answered by the memo table.
  TopBudget,     ///< ⊤-substituted by hard budget exhaustion.
  DegradedReuse, ///< Q-Reuse of a budget-degraded value.
};

inline const char *demandOutcomeName(DemandOutcome O) {
  switch (O) {
  case DemandOutcome::Reused:
    return "reused";
  case DemandOutcome::Evaluated:
    return "evaluated";
  case DemandOutcome::MemoHit:
    return "memo-hit";
  case DemandOutcome::TopBudget:
    return "top-budget";
  case DemandOutcome::DegradedReuse:
    return "degraded-reuse";
  }
  return "?";
}

/// The demand tree one explainQuery call records: which cells the query
/// traversed, in traversal order, and how each was resolved. Deterministic
/// for a fixed DAIG state: demand traversal follows the (deterministic)
/// computation-source order, so two runs over equal DAIG states record
/// equal trees.
struct DemandTree {
  static constexpr uint8_t kNoFn = 0xff;

  struct Node {
    Name N;
    DemandOutcome O = DemandOutcome::Evaluated;
    uint8_t FK = kNoFn; ///< FnKind of the defining computation; kNoFn = none
                        ///< (e.g. the entry cell).
    std::vector<size_t> Children;
  };

  std::vector<Node> Nodes;   ///< Preorder (record order).
  std::vector<size_t> Roots; ///< Top-level demands, in query order.

  size_t size() const { return Nodes.size(); }

  /// Indented text rendering, one cell per line:
  ///   <name> [<- <fn>] [outcome]
  std::string text() const {
    std::string Out;
    auto render = [&](auto &&Self, size_t Idx, unsigned Ind) -> void {
      const Node &Nd = Nodes[Idx];
      Out.append(size_t(Ind) * 2, ' ');
      Out += Nd.N.toString();
      if (Nd.FK != kNoFn) {
        Out += " <- ";
        Out += fnKindName(FnKind(Nd.FK));
      }
      Out += " [";
      Out += demandOutcomeName(Nd.O);
      Out += "]\n";
      for (size_t C : Nd.Children)
        Self(Self, C, Ind + 1);
    };
    for (size_t R : Roots)
      render(render, R, 0);
    return Out;
  }

  /// Graphviz DOT rendering; outcome encoded as node color.
  std::string dot() const {
    auto escape = [](const std::string &S) {
      std::string E;
      for (char C : S) {
        if (C == '"' || C == '\\')
          E += '\\';
        E += C;
      }
      return E;
    };
    auto color = [](DemandOutcome O) {
      switch (O) {
      case DemandOutcome::Reused:
        return "gray60";
      case DemandOutcome::Evaluated:
        return "black";
      case DemandOutcome::MemoHit:
        return "blue";
      case DemandOutcome::TopBudget:
        return "red";
      case DemandOutcome::DegradedReuse:
        return "orange";
      }
      return "black";
    };
    std::string Out = "digraph demand {\n"
                      "  node [shape=box, fontname=\"monospace\"];\n";
    for (size_t I = 0; I < Nodes.size(); ++I) {
      const Node &Nd = Nodes[I];
      Out += "  n" + std::to_string(I) + " [label=\"" +
             escape(Nd.N.toString()) + "\\n" + demandOutcomeName(Nd.O) +
             "\", color=" + color(Nd.O) + "];\n";
    }
    for (size_t I = 0; I < Nodes.size(); ++I)
      for (size_t C : Nodes[I].Children)
        Out += "  n" + std::to_string(I) + " -> n" + std::to_string(C) +
               ";\n";
    Out += "}\n";
    return Out;
  }
};

/// A DAIG over abstract domain \p D for a single control-flow graph.
template <typename D>
  requires AbstractDomain<D>
class Daig {
public:
  using Elem = typename D::Elem;
  /// Statement interpretation override used by the interprocedural engine to
  /// resolve Call statements by demanding callee summaries.
  using TransferFn = std::function<Elem(const Stmt &, const Elem &)>;
  /// Invalidation callback: fired for every cell emptied by an edit, letting
  /// the engine propagate dirtying across function DAIGs.
  using EmptiedFn = std::function<void(Name)>;

  /// Reference cell types (Fig. 6): τ ∈ {Stmt, Σ♯}.
  enum class CellType : uint8_t { StmtTy, StateTy };

  struct Cell {
    CellType T;
    std::optional<std::variant<Stmt, Elem>> V;

    bool hasValue() const { return V.has_value(); }
  };

  /// A computation edge n ← f(n1, ..., nk).
  struct Comp {
    FnKind F;
    std::vector<Name> Srcs;

    bool operator==(const Comp &O) const { return F == O.F && Srcs == O.Srcs; }
  };

  /// Note: the memo table counts its own hits/misses/evictions into the
  /// Statistics attached to IT (MemoTable::attachStatistics) — attachment
  /// is the table owner's decision, since the sink must outlive the table
  /// (this DAIG may be a short-lived rebuild temporary sharing the table).
  Daig(Cfg *G, Elem EntryValue, Statistics *Stats = nullptr,
       MemoTable<D> *Memo = nullptr)
      : G(G), EntryValue(std::move(EntryValue)), Stats(Stats), Memo(Memo) {
    construct();
  }

  void setTransferHook(TransferFn Fn) { Hook = std::move(Fn); }
  void setOnCellEmptied(EmptiedFn Fn) { OnCellEmptied = std::move(Fn); }

  /// Redirects work counters to \p S (nullptr detaches). The parallel
  /// engine points each instance's DAIG at a private per-pass sink so
  /// concurrent instances never share a Statistics struct, then merges the
  /// sinks at the pass barrier in deterministic order. Does NOT re-attach
  /// the memo table's sink (see the constructor note: memo attachment is
  /// the table owner's decision).
  void setStatistics(Statistics *S) { Stats = S; }

  const CfgInfo &info() const { return *Info; }
  bool valid() const { return Info->valid(); }

  //===--------------------------------------------------------------------===//
  // Names of interest
  //===--------------------------------------------------------------------===//

  /// The cell holding the final (post-fixed-point) abstract state at \p L.
  /// For loop heads this is the fix cell; for loop-body locations it is the
  /// body cell of the *converged* iteration, so it requires the enclosing
  /// fixed points to have been computed (queryLocation does this).
  Name exitCellName() const { return resultNameFor(G->exit()); }

  //===--------------------------------------------------------------------===//
  // Queries (Fig. 8)
  //===--------------------------------------------------------------------===//

  /// Demands the abstract state at location \p L, computing enclosing loop
  /// fixed points as needed. Returns ⊥ for unreachable locations.
  Elem queryLocation(Loc L) {
    if (L >= Info->Reachable.size() || !Info->Reachable[L])
      return D::bottom();
    CountCtx Ctx;
    for (Loc H : Info->LoopNestOf[L]) {
      if (H == L)
        break;
      Name FixDest = fixCellName(H, Ctx);
      Elem FV = queryState(FixDest);
      if (!Degraded.empty() && Degraded.count(FixDest)) {
        // The enclosing fixpoint was ⊤-degraded by a budget: its iterate
        // cells are intermediate (pre-convergence) states, NOT sound final
        // answers for body locations. The degraded fix value (⊤) is the
        // only sound answer for anything inside the loop.
        budgetState().TaintPending = true;
        return FV;
      }
      Ctx[H] = Loops.at(FixDest).K - 1;
    }
    if (Info->isLoopHead(L))
      return queryState(fixCellName(L, Ctx));
    return queryState(stateCellName(L, Ctx));
  }

  /// Demands every reachable location (the eager, incremental-only mode).
  void queryAllLocations() {
    for (Loc L : Info->Rpo)
      (void)queryLocation(L);
  }

  /// Low-level query by cell name (Fig. 8 semantics), plus the resource
  /// governance of support/budget.h: the demand-miss path is the analysis's
  /// unit of work, so it checkpoints the budget (which may throw
  /// AnalysisCancelled — before any mutation, so unwinding is clean),
  /// resolves to ⊤ under hard exhaustion, and tracks degraded provenance
  /// through a per-evaluation taint frame.
  Elem queryState(Name N) {
    auto It = Cells.find(N);
    assert(It != Cells.end() && "query for a name outside the DAIG");
    assert(It->second.T == CellType::StateTy && "queryState on a Stmt cell");
    if (It->second.hasValue()) {
      if (Stats)
        ++Stats->CellReuses; // Q-Reuse
      bool Deg = !Degraded.empty() && Degraded.count(N);
      if (Deg)
        budgetState().TaintPending = true; // consumer inherits the flag
      if (Prov)
        provEnter(N, Deg ? DemandOutcome::DegradedReuse
                         : DemandOutcome::Reused);
      return std::get<Elem>(*It->second.V);
    }
    ProvFrame PF(*this, N);
    TraceSpan Sp("daig.cell_eval", N.id());
    budgetCheckpoint("DAIG cell evaluation");
    DAI_FAULT_POINT(CellEval);
    if (budgetExhausted())
      return degradeToTop(N);
    auto CompIt = CompOf.find(N);
    assert(CompIt != CompOf.end() &&
           "empty cell without a computation (wf condition 5)");
    BudgetTaintScope Taint;
    Elem Result;
    if (CompIt->second.F == FnKind::Fix) {
      Result = queryFix(N); // stores internally
    } else {
      Comp C = CompIt->second; // copy: recursive queries may rehash maps
      Result = evaluateComp(C);
      storeValue(N, Result);
    }
    if (Taint.consumed())
      markDegraded(N);
    return Result;
  }

  /// Runs queryLocation(\p L) with demand-provenance recording enabled and
  /// returns the recorded demand tree: every cell the query traversed,
  /// tagged reused / evaluated / memo-hit / ⊤-substituted-by-budget. The
  /// query itself is a REAL query (values computed are stored, counters
  /// count), so a second explainQuery of the same location shows the
  /// from-scratch-consistent steady state: all reuses. Deterministic: for
  /// equal DAIG states the tree is bit-identical across runs.
  DemandTree explainQuery(Loc L) {
    assert(!Prov && "explainQuery does not nest");
    ProvRecorder Rec;
    Prov = &Rec;
    try {
      (void)queryLocation(L);
    } catch (...) {
      Prov = nullptr;
      throw;
    }
    Prov = nullptr;
    return std::move(Rec.T);
  }

  //===--------------------------------------------------------------------===//
  // Edits (Fig. 9)
  //===--------------------------------------------------------------------===//

  /// In-place statement replacement on edge \p Id: updates the CFG and the
  /// statement cell, then dirties forward. Structural shape is unchanged.
  bool applyStatementEdit(EdgeId Id, Stmt NewStmt) {
    const CfgEdge *E = G->findEdge(Id);
    if (!E)
      return false;
    Name SC = stmtCellName(Id);
    auto It = Cells.find(SC);
    assert(It != Cells.end() && "statement cell missing for live edge");
    if (std::get<Stmt>(*It->second.V) == NewStmt)
      return true; // no-op edit
    G->replaceStmt(Id, NewStmt);
    It->second.V = std::variant<Stmt, Elem>(std::move(NewStmt));
    dirtyDependentsOf(SC);
    return true;
  }

  /// Surgically splices an inserted statement into the DAIG — the common
  /// 85% case of the paper's edit workload — in O(out-degree · iteration
  /// copies) structural work plus forward dirtying, with NO reconstruction.
  ///
  /// Preconditions: the CFG already contains the insertion performed by
  /// cfg/edits.h insertStmtAt(L, S), whose result is \p R, and this DAIG
  /// still reflects the *pre-edit* CFG. Two shapes exist (see edits.cpp):
  ///  - after-splice (L not a loop header): L's old out-edges now originate
  ///    at the fresh location M = R.HammockExit; the statement runs L → M;
  ///  - before-splice (L a loop header, R.HammockExit == L): L's forward
  ///    in-edges now target a fresh predecessor M; the statement runs M → L.
  ///
  /// Falls back to rebuild() (returning false) when the local patch does not
  /// apply (e.g. the edit made previously unreachable code reachable).
  bool applyInsertedStatement(Loc L, const InsertResult &R) {
    const CfgEdge *NewEdge = G->findEdge(R.FirstNewEdge);
    assert(NewEdge && "insertion must have created an edge");
    bool BeforeHeader = R.HammockExit == L;
    Loc M = BeforeHeader ? NewEdge->Src : R.HammockExit;
    if (L >= Info->Reachable.size() || !Info->Reachable[L]) {
      rebuild();
      return false;
    }

    // Enumerate this DAIG's state cells at L across all iteration copies
    // (and, for the before-header shape, only the 0th own-iterates).
    std::vector<std::pair<Name, std::vector<uint32_t>>> LCells;
    {
      Loc DL;
      std::vector<uint32_t> Counts;
      for (const auto &[N, C] : Cells) {
        if (C.T != CellType::StateTy)
          continue;
        if (!decodeState(N, DL, Counts) || DL != L)
          continue;
        if (BeforeHeader &&
            (Counts.size() != Info->LoopNestOf[L].size() ||
             Counts.back() != 0))
          continue; // only full entry iterates (own count 0) are re-sourced
        LCells.emplace_back(N, Counts);
      }
    }

    Name NewStmtCell = BeforeHeader
                           ? Name::pair(Name::loc(M), Name::loc(L))
                           : Name::pair(Name::loc(L), Name::loc(M));
    addStmtCell(NewStmtCell, NewEdge->Label);

    std::vector<Name> DirtySeeds;
    std::vector<Name> StmtCellsToDrop;

    auto renameStmtSrc = [&](Name Old, Loc From, Loc To) -> Name {
      // pair(a,b) → pair(a',b') with From ↦ To on the changed side; the
      // join-indexed form wraps the plain pair in pair(num i, ·).
      if (Old.kind() == Name::Kind::Pair &&
          Old.left().kind() == Name::Kind::Num) {
        Name Inner = Old.right();
        Name NewInner =
            Name::pair(Inner.left().locId() == From ? Name::loc(To)
                                                    : Inner.left(),
                       Inner.right().locId() == From ? Name::loc(To)
                                                     : Inner.right());
        return Name::pair(Old.left(), NewInner);
      }
      return Name::pair(Old.left().kind() == Name::Kind::Loc &&
                                Old.left().locId() == From
                            ? Name::loc(To)
                            : Old.left(),
                        Old.right().kind() == Name::Kind::Loc &&
                                Old.right().locId() == From
                            ? Name::loc(To)
                            : Old.right());
    };

    if (!BeforeHeader) {
      // After-splice: for each iteration copy SL of L's state, introduce
      // M's state cell fed by the new statement, and re-source every
      // consumer transfer from M with a renamed statement cell.
      for (const auto &[SL, Counts] : LCells) {
        Name NM = SL; // same counts: M inherits L's loop nest exactly
        {
          Name Base = Name::loc(M);
          for (uint32_t C : Counts)
            Base = Name::iter(Base, C);
          NM = Base;
        }
        addStateCell(NM);
        addComp(NM, FnKind::Transfer, {NewStmtCell, SL});
        auto DepIt = Dependents.find(SL);
        std::vector<Name> Consumers;
        if (DepIt != Dependents.end())
          Consumers.assign(DepIt->second.begin(), DepIt->second.end());
        for (Name Dest : Consumers) {
          if (Dest == NM)
            continue;
          auto CIt = CompOf.find(Dest);
          if (CIt == CompOf.end() || CIt->second.F != FnKind::Transfer)
            return rebuildFallback();
          Comp C = CIt->second;
          if (!(C.Srcs[1] == SL))
            return rebuildFallback();
          Name OldStmt = C.Srcs[0];
          Name NewStmt = renameStmtSrc(OldStmt, L, M);
          auto OldStmtIt = Cells.find(OldStmt);
          if (OldStmtIt == Cells.end())
            return rebuildFallback();
          addStmtCell(NewStmt, std::get<Stmt>(*OldStmtIt->second.V));
          StmtCellsToDrop.push_back(OldStmt);
          addComp(Dest, FnKind::Transfer, {NewStmt, NM});
          DirtySeeds.push_back(Dest);
        }
      }
    } else {
      // Before-splice: L's entry iterates S0 now read the new statement
      // from M, whose cell takes over S0's former computation with the
      // entry edges re-targeted.
      for (const auto &[S0, Counts] : LCells) {
        Name NM;
        {
          Name Base = Name::loc(M);
          for (size_t I = 0; I + 1 < Counts.size(); ++I)
            Base = Name::iter(Base, Counts[I]); // M sits outside L's loop
          NM = Base;
        }
        addStateCell(NM);
        auto CIt = CompOf.find(S0);
        if (CIt == CompOf.end())
          return rebuildFallback();
        Comp C = CIt->second;
        if (C.F == FnKind::Transfer) {
          Name NewStmt = renameStmtSrc(C.Srcs[0], L, M);
          auto OldStmtIt = Cells.find(C.Srcs[0]);
          if (OldStmtIt == Cells.end())
            return rebuildFallback();
          addStmtCell(NewStmt, std::get<Stmt>(*OldStmtIt->second.V));
          StmtCellsToDrop.push_back(C.Srcs[0]);
          addComp(NM, FnKind::Transfer, {NewStmt, C.Srcs[1]});
        } else if (C.F == FnKind::Join) {
          std::vector<Name> NewPreJoins;
          for (Name PJ : C.Srcs) {
            auto PJComp = CompOf.find(PJ);
            if (PJComp == CompOf.end() ||
                PJComp->second.F != FnKind::Transfer)
              return rebuildFallback();
            Name NewPJ = Name::pair(PJ.left(), NM);
            Name NewStmt = renameStmtSrc(PJComp->second.Srcs[0], L, M);
            auto OldStmtIt = Cells.find(PJComp->second.Srcs[0]);
            if (OldStmtIt == Cells.end())
              return rebuildFallback();
            addStmtCell(NewStmt, std::get<Stmt>(*OldStmtIt->second.V));
            StmtCellsToDrop.push_back(PJComp->second.Srcs[0]);
            addStateCell(NewPJ);
            addComp(NewPJ, FnKind::Transfer,
                    {NewStmt, PJComp->second.Srcs[1]});
            NewPreJoins.push_back(NewPJ);
            removeCell(PJ);
          }
          addComp(NM, FnKind::Join, std::move(NewPreJoins));
        } else {
          return rebuildFallback();
        }
        addComp(S0, FnKind::Transfer, {NewStmtCell, NM});
        DirtySeeds.push_back(S0);
      }
    }

    for (Name SC : StmtCellsToDrop)
      if (!Dependents.count(SC) || Dependents[SC].empty())
        Cells.erase(SC);

    // Refresh structural facts (the CFG gained a location) and dirty
    // forward from every re-sourced consumer.
    Info = G->infoShared();
    assert(Info->valid() && "insertion must preserve well-formedness");
    std::set<Name> Visited;
    std::vector<Name> Work;
    for (Name Seed : DirtySeeds)
      Work.push_back(Seed);
    propagateDirty(Work, Visited);
    return true;
  }

  /// Reconstructs the DAIG after structural CFG edits, salvaging values by
  /// name and re-adopting unrollings of untouched loops, then dirtying
  /// forward from every changed cell.
  void rebuild() {
    Daig Fresh(G, EntryValue, Stats, Memo);
    Fresh.Hook = Hook;
    Fresh.OnCellEmptied = OnCellEmptied;

    // Pass 1 — salvage: copy values into fresh cells whose defining
    // computation is unchanged (incremental computation with names).
    for (auto &[N, FreshCell] : Fresh.Cells) {
      auto OldIt = Cells.find(N);
      if (OldIt == Cells.end() || FreshCell.T != OldIt->second.T ||
          FreshCell.T != CellType::StateTy)
        continue;
      auto FreshComp = Fresh.CompOf.find(N);
      auto OldComp = CompOf.find(N);
      bool FreshHas = FreshComp != Fresh.CompOf.end();
      bool OldHas = OldComp != CompOf.end();
      if (FreshHas != OldHas ||
          (FreshHas && !(FreshComp->second == OldComp->second)))
        continue;
      if (OldIt->second.hasValue() && !FreshCell.hasValue())
        FreshCell.V = OldIt->second.V;
    }

    // Pass 2 — re-adopt demanded unrollings for loop instances whose
    // iteration-0 structure (cells, computations, statements) is unchanged.
    // Cells are bucketed by instance once so this pass is O(cells · depth)
    // rather than O(cells · loops).
    bool AnyUnrolled = false;
    for (const auto &[FixDest, Inst] : Loops)
      if (Inst.K > 1)
        AnyUnrolled = true;
    if (AnyUnrolled) {
      InstanceBuckets FreshBuckets = Fresh.groupCellsByInstance();
      InstanceBuckets OldBuckets = groupCellsByInstance();
      static const std::vector<std::pair<Name, uint32_t>> Empty;
      for (const auto &[FixDest, Inst] : Loops) {
        if (Inst.K <= 1)
          continue;
        if (!Fresh.Loops.count(FixDest))
          continue;
        auto FB = FreshBuckets.find(FixDest);
        if (FB == FreshBuckets.end())
          continue;
        if (!iterationZeroUnchanged(Fresh, Inst, FB->second))
          continue;
        auto OB = OldBuckets.find(FixDest);
        adoptUnrollings(Fresh, FixDest, Inst,
                        OB == OldBuckets.end() ? Empty : OB->second);
      }
    }

    // Pass 3 — change detection against the post-adoption structure, then
    // forward dirtying from every changed cell.
    std::vector<Name> Changed;
    for (auto &[N, FreshCell] : Fresh.Cells) {
      auto OldIt = Cells.find(N);
      if (OldIt == Cells.end()) {
        Changed.push_back(N);
        continue;
      }
      const Cell &Old = OldIt->second;
      if (FreshCell.T != Old.T) {
        Changed.push_back(N);
        continue;
      }
      if (FreshCell.T == CellType::StmtTy) {
        if (!(std::get<Stmt>(*FreshCell.V) == std::get<Stmt>(*Old.V)))
          Changed.push_back(N);
        continue;
      }
      auto FreshComp = Fresh.CompOf.find(N);
      auto OldComp = CompOf.find(N);
      bool FreshHas = FreshComp != Fresh.CompOf.end();
      bool OldHas = OldComp != CompOf.end();
      if (FreshHas != OldHas ||
          (FreshHas && !(FreshComp->second == OldComp->second)))
        Changed.push_back(N);
    }
    for (Name N : Changed)
      Fresh.dirtyDependentsOf(N);

    swapWith(Fresh);
  }

  /// Empties every abstract-state cell and resets all loops (the
  /// demand-driven-only configuration: "dirty the full DAIG").
  void dirtyEverything() {
    Daig Fresh(G, EntryValue, Stats, Memo);
    Fresh.Hook = Hook;
    Fresh.OnCellEmptied = OnCellEmptied;
    swapWith(Fresh);
  }

  /// Replaces the entry abstract state φ0 (used by the interprocedural
  /// engine when callee entry contributions change) and dirties forward.
  void updateEntry(Elem NewEntry) {
    EntryValue = std::move(NewEntry);
    CountCtx Ctx;
    Name N = stateCellName(G->entry(), Ctx);
    auto It = Cells.find(N);
    assert(It != Cells.end() && "entry cell must exist");
    It->second.V = std::variant<Stmt, Elem>(EntryValue);
    Degraded.erase(N); // a fresh entry value clears entry provenance
    dirtyDependentsOf(N);
  }

  /// Marks the entry cell degraded (interprocedural engine: the entry was
  /// coarsened by a budget-tightened widening, so everything computed from
  /// it carries degraded provenance via the taint frames).
  void markEntryDegraded() {
    CountCtx Ctx;
    markDegraded(stateCellName(G->entry(), Ctx));
  }

  /// Current entry abstract state.
  const Elem &entryValue() const { return EntryValue; }

  /// Dirties every cell computed from edge \p Id's statement (used by the
  /// engine when a callee summary feeding this edge changes).
  void invalidateEdgeOutputs(EdgeId Id) { dirtyDependentsOf(stmtCellName(Id)); }

  /// Externally-driven invalidation (interprocedural engine): empties the
  /// cell named \p N (if present and non-empty) and dirties forward.
  void invalidateCell(Name N) {
    auto It = Cells.find(N);
    if (It == Cells.end() || It->second.T != CellType::StateTy)
      return;
    std::set<Name> Visited;
    std::vector<Name> Work = {N};
    propagateDirty(Work, Visited);
  }

  //===--------------------------------------------------------------------===//
  // Introspection (tests, statistics, debugging)
  //===--------------------------------------------------------------------===//

  size_t cellCount() const { return Cells.size(); }
  size_t compCount() const { return CompOf.size(); }
  size_t unrolledLoopCount() const {
    size_t N = 0;
    for (const auto &[Dest, Inst] : Loops)
      if (Inst.K > 1)
        ++N;
    return N;
  }

  bool hasCell(Name N) const { return Cells.count(N) != 0; }
  bool cellHasValue(Name N) const {
    auto It = Cells.find(N);
    return It != Cells.end() && It->second.hasValue();
  }

  /// True when queryLocation(\p L) would be answered entirely from filled
  /// cells — no evaluation, no fills. This is the incremental checker's
  /// reuse test (analysis/checker.h): an edit dirties exactly the cells of
  /// the affected slice (Fig. 9), so a location whose answer is still
  /// materialized was provably untouched and its cached verdicts stand.
  /// Conservative in one direction only: a false result may merely mean the
  /// location was never demanded.
  bool locationValueReady(Loc L) const {
    if (L >= Info->Reachable.size() || !Info->Reachable[L])
      return true; // unreachable: queryLocation answers ⊥ without evaluation
    CountCtx Ctx;
    for (Loc H : Info->LoopNestOf[L]) {
      if (H == L)
        break;
      Name FixDest = fixCellName(H, Ctx);
      if (!cellHasValue(FixDest))
        return false;
      if (!Degraded.empty() && Degraded.count(FixDest))
        return true; // queryLocation answers with the (filled) fix value
      auto LIt = Loops.find(FixDest);
      Ctx[H] = LIt == Loops.end() ? 0u : LIt->second.K - 1;
    }
    Name N = Info->isLoopHead(L) ? fixCellName(L, Ctx)
                                 : stateCellName(L, Ctx);
    return cellHasValue(N);
  }

  /// The materialized answer queryLocation(\p L) would return, WITHOUT
  /// evaluating anything: nullopt unless the answer is entirely present in
  /// filled cells (the locationValueReady condition). The parallel engine
  /// uses this to freeze a read-only snapshot of callee exit summaries
  /// before a parallel pass: peeking never mutates the DAIG, so it is safe
  /// against the same instance being observed from the merge loop while no
  /// worker owns it.
  std::optional<Elem> peekLocation(Loc L) const {
    if (L >= Info->Reachable.size() || !Info->Reachable[L])
      return D::bottom(); // matches queryLocation: unreachable answers ⊥
    CountCtx Ctx;
    for (Loc H : Info->LoopNestOf[L]) {
      if (H == L)
        break;
      Name FixDest = fixCellName(H, Ctx);
      auto FixIt = Cells.find(FixDest);
      if (FixIt == Cells.end() || !FixIt->second.hasValue())
        return std::nullopt;
      if (!Degraded.empty() && Degraded.count(FixDest))
        return std::get<Elem>(*FixIt->second.V); // degraded fix answers
      auto LIt = Loops.find(FixDest);
      Ctx[H] = LIt == Loops.end() ? 0u : LIt->second.K - 1;
    }
    Name N = Info->isLoopHead(L) ? fixCellName(L, Ctx)
                                 : stateCellName(L, Ctx);
    auto It = Cells.find(N);
    if (It == Cells.end() || !It->second.hasValue())
      return std::nullopt;
    return std::get<Elem>(*It->second.V);
  }

  //===--------------------------------------------------------------------===//
  // Degraded provenance (support/budget.h)
  //===--------------------------------------------------------------------===//

  /// True when cell \p N holds a budget-degraded value (⊤-substituted, or
  /// computed from a degraded input).
  bool cellDegraded(Name N) const {
    return !Degraded.empty() && Degraded.count(N) != 0;
  }

  /// True when the answer queryLocation(\p L) returns carries degraded
  /// provenance. Meaningful once \p L has been demanded: the flags are
  /// recorded during evaluation.
  bool locationDegraded(Loc L) const {
    if (Degraded.empty())
      return false;
    if (L >= Info->Reachable.size() || !Info->Reachable[L])
      return false;
    CountCtx Ctx;
    for (Loc H : Info->LoopNestOf[L]) {
      if (H == L)
        break;
      Name FixDest = fixCellName(H, Ctx);
      if (Degraded.count(FixDest))
        return true; // queryLocation answers with the degraded fix value
      auto LIt = Loops.find(FixDest);
      Ctx[H] = LIt == Loops.end() ? 0u : LIt->second.K - 1;
    }
    Name N = Info->isLoopHead(L) ? fixCellName(L, Ctx)
                                 : stateCellName(L, Ctx);
    return Degraded.count(N) != 0;
  }

  size_t degradedCellCount() const { return Degraded.size(); }

  /// Empties every degraded cell (and its transitive dependents), clearing
  /// all provenance marks — re-demanding afterwards, outside the exhausted
  /// budget, restores full precision. Returns the number of cells that
  /// carried marks.
  size_t invalidateDegraded() {
    if (Degraded.empty())
      return 0;
    size_t Count = Degraded.size();
    CountCtx Ctx;
    Name Entry = stateCellName(G->entry(), Ctx);
    std::vector<Name> Work;
    for (const Name &N : Degraded) {
      if (N == Entry) {
        // The entry cell always holds φ0 and has no computation; dirty its
        // consumers instead (the engine re-refreshes coarsened entries).
        auto DIt = Dependents.find(N);
        if (DIt != Dependents.end())
          Work.insert(Work.end(), DIt->second.begin(), DIt->second.end());
        continue;
      }
      Work.push_back(N);
    }
    std::set<Name> Visited;
    propagateDirty(Work, Visited); // also erases each emptied cell's mark
    Degraded.clear();              // incl. the (unemptied) entry mark
    return Count;
  }

  /// Structural self-audit beyond Definition 4.1: checkWellFormed plus
  /// Dependents↔CompOf index consistency, loop-instance metadata sanity,
  /// and degraded-set honesty. Cheap (no domain operations) — safe to run
  /// on a mid-cancelled DAIG. Returns "" when clean.
  std::string auditInvariants() const {
    std::string W = checkWellFormed();
    if (!W.empty())
      return W;
    // Dependents must be exactly the inverse of CompOf's source lists.
    for (const auto &[Dest, C] : CompOf)
      for (const Name &S : C.Srcs) {
        auto DIt = Dependents.find(S);
        if (DIt == Dependents.end() || !DIt->second.count(Dest))
          return "missing dependent edge " + S.toString() + " → " +
                 Dest.toString();
      }
    for (const auto &[S, Deps] : Dependents) {
      if (Deps.empty())
        return "empty dependent set retained for " + S.toString();
      for (const Name &Dest : Deps) {
        auto CIt = CompOf.find(Dest);
        if (CIt == CompOf.end())
          return "dangling dependent " + Dest.toString() + " of " +
                 S.toString();
        if (std::find(CIt->second.Srcs.begin(), CIt->second.Srcs.end(), S) ==
            CIt->second.Srcs.end())
          return "dependent " + Dest.toString() +
                 " does not list source " + S.toString();
      }
    }
    // Loop metadata: every instance's fix edge exists with two iterate
    // sources of its head at counts (K−1, K).
    for (const auto &[FixDest, Inst] : Loops) {
      auto CIt = CompOf.find(FixDest);
      if (CIt == CompOf.end() || CIt->second.F != FnKind::Fix)
        return "loop instance without a fix edge: " + FixDest.toString();
      if (CIt->second.Srcs.size() != 2)
        return "fix edge arity violated: " + FixDest.toString();
      Loc L;
      std::vector<uint32_t> Counts;
      for (unsigned I = 0; I < 2; ++I) {
        if (!decodeState(CIt->second.Srcs[I], L, Counts) || L != Inst.Head ||
            Counts.empty() || Counts.back() != Inst.K - 1 + I)
          return "fix sources disagree with instance metadata: " +
                 FixDest.toString();
      }
    }
    // Degraded honesty: every mark names a live, filled state cell (marks
    // are erased whenever a cell is emptied or removed).
    for (const Name &N : Degraded) {
      auto It = Cells.find(N);
      if (It == Cells.end())
        return "degraded mark on a missing cell: " + N.toString();
      if (It->second.T != CellType::StateTy || !It->second.hasValue())
        return "degraded mark on an empty/statement cell: " + N.toString();
    }
    return "";
  }

  /// Name of the statement cell for edge \p Id (depends on join indexing).
  Name stmtCellName(EdgeId Id) const {
    const CfgEdge *E = G->findEdge(Id);
    assert(E && "no such edge");
    Name Plain = Name::pair(Name::loc(E->Src), Name::loc(E->Dst));
    unsigned Idx = Info->fwdIndexOf(*G, Id);
    if (Idx == 0 || Info->FwdEdgesTo.at(E->Dst).size() < 2)
      return Plain; // back edge or unique forward edge
    return Name::pair(Name::num(Idx), Plain);
  }

  /// Checks Definition 4.1 well-formedness plus internal index consistency.
  /// Returns an empty string when everything holds.
  std::string checkWellFormed() const;

  /// Checks Definition 4.3 (DAIG–AI consistency): every filled cell agrees
  /// with re-evaluating its computation from filled inputs. Expensive;
  /// intended for tests. Returns an empty string when consistent.
  std::string checkAiConsistency();

private:
  //===--------------------------------------------------------------------===//
  // Core state
  //===--------------------------------------------------------------------===//

  Cfg *G;
  std::shared_ptr<const CfgInfo> Info; ///< Pinned snapshot (see Cfg::infoShared).
  Elem EntryValue;
  Statistics *Stats;
  MemoTable<D> *Memo;
  TransferFn Hook;
  EmptiedFn OnCellEmptied;

  std::unordered_map<Name, Cell, NameHash> Cells;
  std::unordered_map<Name, Comp, NameHash> CompOf; ///< Keyed by destination.
  /// Source name → set of computation destinations depending on it.
  std::unordered_map<Name, std::set<Name>, NameHash> Dependents;
  /// Cells holding budget-degraded values (support/budget.h): ⊤-substituted
  /// on hard exhaustion, or computed from a degraded input (taint). Marks
  /// are erased whenever the cell is emptied or removed — a mark always
  /// describes the value currently stored.
  std::unordered_set<Name, NameHash> Degraded;

  /// Iteration-count context: loop head → current iteration index.
  using CountCtx = std::map<Loc, uint32_t>;

  /// Live metadata per loop instance, keyed by fix-cell name.
  struct LoopInstance {
    Loc Head;
    std::vector<std::pair<Loc, uint32_t>> Ctx; ///< Enclosing counts, outer-first.
    uint32_t K; ///< Fix sources are iterates (K−1, K); K = 1 initially.
  };
  std::unordered_map<Name, LoopInstance, NameHash> Loops;

  /// rebuild() wrapped for use in surgical fallbacks (returns false so the
  /// caller can report that the fast path did not apply).
  bool rebuildFallback() {
    rebuild();
    return false;
  }

  void swapWith(Daig &O) {
    std::swap(Info, O.Info);
    std::swap(Cells, O.Cells);
    std::swap(CompOf, O.CompOf);
    std::swap(Dependents, O.Dependents);
    std::swap(Loops, O.Loops);
    std::swap(Degraded, O.Degraded);
  }

  //===--------------------------------------------------------------------===//
  // Naming
  //===--------------------------------------------------------------------===//

  /// State-cell name for \p L under iteration context \p Ctx: the location
  /// wrapped by one iteration count per enclosing loop, outermost first
  /// (for a loop head, the final count is its own iterate index).
  Name stateCellName(Loc L, const CountCtx &Ctx) const {
    Name N = Name::loc(L);
    for (Loc H : Info->LoopNestOf[L]) {
      auto It = Ctx.find(H);
      N = Name::iter(N, It == Ctx.end() ? 0u : It->second);
    }
    return N;
  }

  /// Fix-cell (fixed point) name for head \p H: the location wrapped by the
  /// counts of strictly enclosing loops only.
  Name fixCellName(Loc H, const CountCtx &Ctx) const {
    Name N = Name::loc(H);
    const auto &Nest = Info->LoopNestOf[H];
    for (size_t I = 0; I + 1 < Nest.size(); ++I) {
      auto It = Ctx.find(Nest[I]);
      N = Name::iter(N, It == Ctx.end() ? 0u : It->second);
    }
    return N;
  }

  /// Pre-join cell i·n for join input \p Idx at \p L.
  Name preJoinCellName(Loc L, const CountCtx &Ctx, unsigned Idx) const {
    return Name::pair(Name::num(Idx), stateCellName(L, Ctx));
  }

  /// Decodes a state-like name into (location, counts). Returns false for
  /// product/statement names.
  static bool decodeState(Name N, Loc &L, std::vector<uint32_t> &Counts) {
    Counts.clear();
    Name Cur = N;
    while (Cur.valid() && Cur.kind() == Name::Kind::Iter) {
      Counts.push_back(Cur.iterCount());
      Cur = Cur.iterBase();
    }
    if (!Cur.valid() || Cur.kind() != Name::Kind::Loc)
      return false;
    std::reverse(Counts.begin(), Counts.end()); // outermost first
    L = Cur.locId();
    return true;
  }

  /// Extracts the "state part" of any cell name (pre-join and pre-widen
  /// names wrap state names). Returns false for statement cells.
  static bool decodeCellState(Name N, Loc &L,
                              std::vector<uint32_t> &Counts) {
    if (decodeState(N, L, Counts))
      return true;
    if (N.kind() == Name::Kind::Pair) {
      Name Left = N.left();
      if (Left.kind() == Name::Kind::Num)
        return decodeState(N.right(), L, Counts); // pre-join i·n
      if (Left.kind() == Name::Kind::Iter)
        return decodeState(Left, L, Counts); // pre-widen (it_k, it_{k+1})
    }
    return false;
  }

  //===--------------------------------------------------------------------===//
  // Structure mutation helpers
  //===--------------------------------------------------------------------===//

  void addStateCell(Name N) {
    Cells.emplace(N, Cell{CellType::StateTy, std::nullopt});
  }

  void addStmtCell(Name N, const Stmt &S) {
    auto [It, Inserted] = Cells.emplace(
        N, Cell{CellType::StmtTy, std::variant<Stmt, Elem>(S)});
    if (!Inserted)
      It->second.V = std::variant<Stmt, Elem>(S);
  }

  void addComp(Name Dest, FnKind F, std::vector<Name> Srcs) {
    removeComp(Dest);
    for (Name S : Srcs)
      Dependents[S].insert(Dest);
    CompOf[Dest] = Comp{F, std::move(Srcs)};
  }

  void removeComp(Name Dest) {
    auto It = CompOf.find(Dest);
    if (It == CompOf.end())
      return;
    for (Name S : It->second.Srcs) {
      auto DIt = Dependents.find(S);
      if (DIt != Dependents.end()) {
        DIt->second.erase(Dest);
        if (DIt->second.empty())
          Dependents.erase(DIt);
      }
    }
    CompOf.erase(It);
  }

  void removeCell(Name N) {
    removeComp(N);
    Cells.erase(N);
    Loops.erase(N);
    if (!Degraded.empty())
      Degraded.erase(N);
  }

  //===--------------------------------------------------------------------===//
  // Construction (Definition A.2, generalized to nested loops)
  //===--------------------------------------------------------------------===//

  void construct() {
    Cells.clear();
    CompOf.clear();
    Dependents.clear();
    Loops.clear();
    Info = G->infoShared();
    if (!Info->valid())
      return;
    // The entry cell holds φ0 and must have no forward in-edges.
    assert(Info->FwdEdgesTo.count(G->entry()) == 0 &&
           "the entry location cannot be a forward-edge target");
    CountCtx Ctx;
    Name EntryName = stateCellName(G->entry(), Ctx);
    addStateCell(EntryName);
    Cells.at(EntryName).V = std::variant<Stmt, Elem>(EntryValue);

    for (Loc L : Info->Rpo) {
      if (L == G->entry())
        continue;
      if (Info->inAnyLoop(L)) {
        const auto &Nest = Info->LoopNestOf[L];
        if (Nest.size() == 1 && Nest[0] == L) {
          // Outermost loop head: entry edges target iterate 0.
          buildEdgesInto(L, Ctx);
          buildIteration(L, Ctx, 0);
        }
        continue; // body locations are built inside buildIteration
      }
      buildEdgesInto(L, Ctx);
    }
  }

  /// Builds the state cell for \p L under \p Ctx plus the transfer (and, at
  /// join points, pre-join and join) computations over its forward in-edges.
  void buildEdgesInto(Loc L, const CountCtx &Ctx) {
    Name Dest = stateCellName(L, Ctx);
    addStateCell(Dest);
    auto It = Info->FwdEdgesTo.find(L);
    if (It == Info->FwdEdgesTo.end())
      return; // head reachable only through its back edge: entry via loop
    const std::vector<EdgeId> &Ids = It->second;
    if (Ids.size() == 1) {
      const CfgEdge *E = G->findEdge(Ids[0]);
      Name SC = Name::pair(Name::loc(E->Src), Name::loc(E->Dst));
      addStmtCell(SC, E->Label);
      addComp(Dest, FnKind::Transfer, {SC, srcStateName(E->Src, L, Ctx)});
      return;
    }
    std::vector<Name> PreJoins;
    for (unsigned I = 0; I < Ids.size(); ++I) {
      const CfgEdge *E = G->findEdge(Ids[I]);
      Name Plain = Name::pair(Name::loc(E->Src), Name::loc(E->Dst));
      Name SC = Name::pair(Name::num(I + 1), Plain);
      addStmtCell(SC, E->Label);
      Name PJ = preJoinCellName(L, Ctx, I + 1);
      addStateCell(PJ);
      addComp(PJ, FnKind::Transfer, {SC, srcStateName(E->Src, L, Ctx)});
      PreJoins.push_back(PJ);
    }
    addComp(Dest, FnKind::Join, std::move(PreJoins));
  }

  /// Source cell for the edge Src→DstLoc: a loop head's *fixed point* when
  /// the edge leaves its loop, else the head's current iterate / the plain
  /// state cell (footnote 5 of the paper).
  Name srcStateName(Loc Src, Loc DstLoc, const CountCtx &Ctx) const {
    if (Info->isLoopHead(Src) && !Info->NaturalLoops.at(Src).count(DstLoc))
      return fixCellName(Src, Ctx);
    return stateCellName(Src, Ctx);
  }

  /// Builds abstract iteration \p I of the loop headed at \p L: the body
  /// cells under count I, nested loops reset to their initial iterates, the
  /// back-edge transfer into the pre-widen cell, the widen into iterate I+1,
  /// and the fix edge over (I, I+1). Idempotent per (L, Ctx, I).
  void buildIteration(Loc L, CountCtx Ctx, uint32_t I) {
    Ctx[L] = I;
    Name ItI = stateCellName(L, Ctx);
    if (!Cells.count(ItI))
      addStateCell(ItI);
    Ctx[L] = I + 1;
    Name ItNext = stateCellName(L, Ctx);
    addStateCell(ItNext);
    Ctx[L] = I;
    Name PreWiden = Name::pair(ItI, ItNext);
    addStateCell(PreWiden);
    addComp(ItNext, FnKind::Widen, {ItI, PreWiden});
    Name FixDest = fixCellName(L, Ctx);
    if (!Cells.count(FixDest))
      addStateCell(FixDest);
    addComp(FixDest, FnKind::Fix, {ItI, ItNext});
    std::vector<std::pair<Loc, uint32_t>> EnclosingCtx;
    for (Loc H : Info->LoopNestOf[L])
      if (H != L)
        EnclosingCtx.emplace_back(H, Ctx.count(H) ? Ctx.at(H) : 0u);
    Loops[FixDest] = LoopInstance{L, std::move(EnclosingCtx), I + 1};

    // Body cells and computations under count I.
    const std::set<Loc> &Body = Info->NaturalLoops.at(L);
    for (Loc B : Info->Rpo) {
      if (B == L || !Body.count(B))
        continue;
      const auto &Nest = Info->LoopNestOf[B];
      if (Nest.back() == B && Nest.size() >= 2 &&
          Nest[Nest.size() - 2] == L) {
        // Directly nested loop: entry edges, then its initial iteration.
        buildEdgesInto(B, Ctx);
        buildIteration(B, Ctx, 0);
        continue;
      }
      if (Nest.back() == L)
        buildEdgesInto(B, Ctx);
      // Deeper locations are built by the nested buildIteration.
    }

    // Back edge: transfer from the latch state into the pre-widen cell.
    const CfgEdge *Back = G->findEdge(Info->LoopBackEdge.at(L));
    Name SC = Name::pair(Name::loc(Back->Src), Name::loc(Back->Dst));
    addStmtCell(SC, Back->Label);
    addComp(PreWiden, FnKind::Transfer, {SC, stateCellName(Back->Src, Ctx)});
  }

  //===--------------------------------------------------------------------===//
  // Query evaluation
  //===--------------------------------------------------------------------===//

  //===--------------------------------------------------------------------===//
  // Demand-provenance recording (explainQuery)
  //===--------------------------------------------------------------------===//

  /// Recorder state: non-null only inside explainQuery, so the recording
  /// hooks on the query paths cost one pointer test when inactive.
  struct ProvRecorder {
    DemandTree T;
    std::vector<size_t> Stack; ///< Indices of open demand-miss frames.
  };
  ProvRecorder *Prov = nullptr;

  /// Records a node for \p N under the current frame (or as a root) and
  /// returns its index. Caller has checked Prov.
  size_t provEnter(Name N, DemandOutcome O) {
    size_t Idx = Prov->T.Nodes.size();
    typename DemandTree::Node Nd;
    Nd.N = N;
    Nd.O = O;
    auto CIt = CompOf.find(N);
    Nd.FK = CIt == CompOf.end() ? DemandTree::kNoFn : uint8_t(CIt->second.F);
    Prov->T.Nodes.push_back(std::move(Nd));
    if (Prov->Stack.empty())
      Prov->T.Roots.push_back(Idx);
    else
      Prov->T.Nodes[Prov->Stack.back()].Children.push_back(Idx);
    return Idx;
  }

  /// Retags the open frame (the cell currently being evaluated) — used by
  /// the memo-hit returns and ⊤-degradation.
  void provMarkTop(DemandOutcome O) {
    if (Prov && !Prov->Stack.empty())
      Prov->T.Nodes[Prov->Stack.back()].O = O;
  }

  /// RAII demand-miss frame: records the node and keeps it open (children
  /// attach to it) for the evaluation's dynamic extent — including across
  /// exception unwinds, so a cancelled query still leaves a well-formed
  /// tree.
  class ProvFrame {
  public:
    ProvFrame(Daig &G, Name N) : P(G.Prov) {
      if (!P)
        return;
      P->Stack.push_back(G.provEnter(N, DemandOutcome::Evaluated));
    }
    ~ProvFrame() {
      if (P)
        P->Stack.pop_back();
    }
    ProvFrame(const ProvFrame &) = delete;
    ProvFrame &operator=(const ProvFrame &) = delete;

  private:
    ProvRecorder *P;
  };

  void storeValue(Name N, const Elem &V) {
    auto It = Cells.find(N);
    assert(It != Cells.end() && "storing into a missing cell");
    It->second.V = std::variant<Stmt, Elem>(V);
  }

  void markDegraded(Name N) {
    if (Degraded.insert(N).second) {
      recordDegradedCell();
      if (Stats)
        ++Stats->CellsDegraded;
    }
  }

  /// Hard budget exhaustion: resolve cell \p N to ⊤ — D::initialEntry({})
  /// over-approximates every reachable state of every variable, so the
  /// substitution is sound — mark it degraded, and taint the consuming
  /// evaluation. No memo store: the value was never computed.
  Elem degradeToTop(Name N) {
    Elem Top = D::initialEntry({});
    storeValue(N, Top);
    markDegraded(N);
    budgetState().TaintPending = true;
    provMarkTop(DemandOutcome::TopBudget);
    traceInstant("daig.degrade_top", N.id());
    return Top;
  }

  const Stmt &stmtOf(Name N) const {
    auto It = Cells.find(N);
    assert(It != Cells.end() && It->second.T == CellType::StmtTy &&
           "transfer source 0 must be a statement cell");
    return std::get<Stmt>(*It->second.V);
  }

  /// Q-Loop-Converge / Q-Loop-Unroll, bounded: every iteration checkpoints
  /// the budget, a hard-exhausted budget degrades the fixpoint to ⊤, and
  /// an un-budgeted loop that outruns the iteration ceiling (a widening
  /// that does not stabilize) throws AnalysisDivergence instead of hanging.
  Elem queryFix(Name N) {
    const AnalysisLimits &Limits = analysisLimits();
    uint64_t Iter = 0;
    for (;;) {
      TraceSpan Sp("daig.fix_iter", N.id(), Iter);
      budgetCheckpoint("DAIG fix iteration");
      DAI_FAULT_POINT(Fix);
      if (budgetExhausted())
        return degradeToTop(N);
      Comp C = CompOf.at(N); // copy: unroll rewrites it
      Elem V1 = queryState(C.Srcs[0]);
      Elem V2 = queryState(C.Srcs[1]);
      if (Stats)
        ++Stats->FixChecks;
      if (D::equal(V1, V2)) {
        storeValue(N, V1);
        return V1;
      }
      uint64_t Ceiling = budgetDegraded()
                             ? std::min(Limits.MaxFixUnrollings,
                                        Limits.DegradedFixUnrollings)
                             : Limits.MaxFixUnrollings;
      if (++Iter >= Ceiling) {
        if (budgetActive())
          return degradeToTop(N); // budgeted: degrade, don't diagnose
        throw AnalysisDivergence("fix cell " + N.toString(), Iter);
      }
      if (Stats)
        ++Stats->Unrollings;
      unrollLoop(N);
    }
  }

  /// Demanded unrolling: builds the next abstract iteration and slides the
  /// fix edge forward (the unroll helper of Section 5.2).
  void unrollLoop(Name FixDest) {
    LoopInstance &Inst = Loops.at(FixDest);
    CountCtx Ctx;
    for (const auto &[H, C] : Inst.Ctx)
      Ctx[H] = C;
    uint32_t NextIter = Inst.K;
    buildIteration(Inst.Head, Ctx, NextIter);
    // buildIteration refreshed Loops[FixDest].K to NextIter + 1.
    assert(Loops.at(FixDest).K == NextIter + 1 && "unroll bookkeeping");
  }

  /// Q-Match / Q-Miss evaluation of a non-fix computation.
  ///
  /// Memo keys embed D::hash(In), and a hit returns the stored Elem as-is,
  /// so correctness requires hash() to be a pure function of the value and
  /// equal() to be reflexive on copies (pinned per-domain by the registry
  /// conformance suite). For the type-erased AnyDomain, hash() is
  /// additionally type-tagged with the domain's registry key: values of
  /// different concrete domains can never collide into one memo key, and
  /// because the tag remap is injective per domain, a mixed-domain run
  /// preserves each domain's Q-Match hit/miss pattern exactly.
  Elem evaluateComp(const Comp &C) {
    switch (C.F) {
    case FnKind::Transfer: {
      const Stmt S = stmtOf(C.Srcs[0]); // copy: map may rehash during query
      Elem In = queryState(C.Srcs[1]);
      bool IsCall = S.Kind == StmtKind::Call;
      Name Key = Name::pair(
          Name::fn(FnKind::Transfer),
          Name::pair(Name::valHash(S.hash()), Name::valHash(D::hash(In))));
      if (!IsCall && Memo) {
        if (auto Hit = Memo->lookup(Key)) {
          provMarkTop(DemandOutcome::MemoHit);
          return *Hit;
        }
      }
      if (Stats)
        ++Stats->Transfers;
      Elem Out = (IsCall && Hook) ? Hook(S, In) : D::transfer(S, In);
      if (!IsCall && Memo)
        Memo->store(Key, Out);
      return Out;
    }
    case FnKind::Join: {
      std::vector<Elem> Ins;
      Ins.reserve(C.Srcs.size());
      Name Key = Name::fn(FnKind::Join);
      for (Name S : C.Srcs) {
        Ins.push_back(queryState(S));
        Key = Name::pair(Key, Name::valHash(D::hash(Ins.back())));
      }
      if (Memo) {
        if (auto Hit = Memo->lookup(Key)) {
          provMarkTop(DemandOutcome::MemoHit);
          return *Hit;
        }
      }
      assert(!Ins.empty() && "join with no inputs");
      Elem Acc = Ins[0];
      for (size_t I = 1; I < Ins.size(); ++I) {
        if (Stats)
          ++Stats->Joins;
        Acc = D::join(Acc, Ins[I]);
      }
      if (Memo)
        Memo->store(Key, Acc);
      return Acc;
    }
    case FnKind::Widen: {
      Elem Prev = queryState(C.Srcs[0]);
      Elem Next = queryState(C.Srcs[1]);
      Name Key = Name::pair(
          Name::fn(FnKind::Widen),
          Name::pair(Name::valHash(D::hash(Prev)), Name::valHash(D::hash(Next))));
      if (Memo) {
        if (auto Hit = Memo->lookup(Key)) {
          provMarkTop(DemandOutcome::MemoHit);
          return *Hit;
        }
      }
      if (Stats)
        ++Stats->Widens;
      Elem Out = D::widen(Prev, Next);
      if (Memo)
        Memo->store(Key, Out);
      return Out;
    }
    case FnKind::Fix:
      assert(false && "fix computations are handled by queryFix");
      return D::bottom();
    }
    return D::bottom();
  }

  //===--------------------------------------------------------------------===//
  // Dirtying (Fig. 9) and loop rollback
  //===--------------------------------------------------------------------===//

  void dirtyDependentsOf(Name N) {
    std::set<Name> Visited;
    std::vector<Name> Work;
    auto DIt = Dependents.find(N);
    if (DIt != Dependents.end())
      Work.assign(DIt->second.begin(), DIt->second.end());
    propagateDirty(Work, Visited);
  }

  /// E-Propagate with the E-Loop special case: before emptying a loop
  /// head's first iterate, roll its loop back to the initial fix sources.
  void propagateDirty(std::vector<Name> &Work, std::set<Name> &Visited) {
    while (!Work.empty()) {
      Name N = Work.back();
      Work.pop_back();
      if (!Visited.insert(N).second)
        continue;
      auto It = Cells.find(N);
      if (It == Cells.end())
        continue; // deleted by a rollback while enqueued
      if (It->second.T == CellType::StmtTy)
        continue; // statements are never dirtied by propagation
      maybeRollbackAt(N);
      It = Cells.find(N); // rollback may rehash
      if (It != Cells.end() && It->second.hasValue()) {
        It->second.V.reset();
        if (!Degraded.empty())
          Degraded.erase(N); // an emptied cell carries no provenance
        if (Stats)
          ++Stats->CellsDirtied;
        if (OnCellEmptied)
          OnCellEmptied(N);
      }
      auto DIt = Dependents.find(N);
      if (DIt != Dependents.end())
        for (Name Dep : DIt->second)
          Work.push_back(Dep);
    }
  }

  /// If \p N is the first iterate of an unrolled loop instance, deletes the
  /// unrolled iterations (≥ 1) and resets the fix edge to (0, 1).
  void maybeRollbackAt(Name N) {
    Loc L;
    std::vector<uint32_t> Counts;
    if (!decodeState(N, L, Counts))
      return;
    if (!Info->isLoopHead(L) || L >= Info->LoopNestOf.size())
      return;
    const auto &Nest = Info->LoopNestOf[L];
    if (Counts.size() != Nest.size() || Counts.empty() || Counts.back() != 1)
      return;
    // Reconstruct the fix-cell name from the enclosing counts.
    CountCtx Ctx;
    for (size_t I = 0; I + 1 < Nest.size(); ++I)
      Ctx[Nest[I]] = Counts[I];
    Name FixDest = fixCellName(L, Ctx);
    auto LIt = Loops.find(FixDest);
    if (LIt == Loops.end() || LIt->second.K <= 1)
      return;
    rollbackLoop(FixDest, LIt->second);
  }

  /// Deletes every cell belonging to iterations ≥ 1 of the given instance
  /// (except the first iterate itself, which is kept empty) and resets the
  /// fix computation to the initial iterates.
  void rollbackLoop(Name FixDest, LoopInstance &Inst) {
    Loc L = Inst.Head;
    const auto &HeadNest = Info->LoopNestOf[L];
    size_t Pos = HeadNest.size() - 1; // L's index within its own nest
    CountCtx Ctx;
    for (const auto &[H, C] : Inst.Ctx)
      Ctx[H] = C;

    Name It0 = [&] {
      CountCtx C2 = Ctx;
      C2[L] = 0;
      return stateCellName(L, C2);
    }();
    Name It1 = [&] {
      CountCtx C2 = Ctx;
      C2[L] = 1;
      return stateCellName(L, C2);
    }();
    Name PreWiden01 = Name::pair(It0, It1);

    std::vector<Name> ToDelete;
    for (const auto &[N, CellV] : Cells) {
      (void)CellV;
      if (N == It1 || N == PreWiden01)
        continue;
      Loc CL;
      std::vector<uint32_t> Counts;
      if (!decodeCellState(N, CL, Counts))
        continue; // statement cells survive rollback
      const auto &CNest = Info->LoopNestOf[CL];
      // Find L's position within this cell's nest; fix cells have one fewer
      // count than their head's nest, which the position check tolerates.
      size_t P = 0;
      for (; P < CNest.size(); ++P)
        if (CNest[P] == L)
          break;
      if (P >= CNest.size() || P >= Counts.size())
        continue; // not inside this loop (or a shallower fix cell)
      if (Counts[P] < 1)
        continue;
      // Enclosing counts must match this instance's context.
      bool CtxMatch = true;
      for (size_t Q = 0; Q < P && CtxMatch; ++Q)
        CtxMatch = Q < Counts.size() && Counts[Q] == (Ctx.count(CNest[Q])
                                                          ? Ctx.at(CNest[Q])
                                                          : 0u);
      if (!CtxMatch)
        continue;
      ToDelete.push_back(N);
    }
    (void)Pos;
    for (Name N : ToDelete)
      removeCell(N);

    addComp(FixDest, FnKind::Fix, {It0, It1});
    Inst.K = 1;
    // The first iterate survives but its value is stale: E-Loop empties it
    // (the caller's propagation continues from it).
    auto It = Cells.find(It1);
    if (It != Cells.end() && It->second.hasValue()) {
      It->second.V.reset();
      if (!Degraded.empty())
        Degraded.erase(It1);
      if (Stats)
        ++Stats->CellsDirtied;
      if (OnCellEmptied)
        OnCellEmptied(It1);
    }
  }

  //===--------------------------------------------------------------------===//
  // Rebuild helpers
  //===--------------------------------------------------------------------===//

  /// The "result" cell name for \p L assuming all enclosing loops are at
  /// their initial iterates (used only for exitCellName where the exit is
  /// never inside a loop).
  Name resultNameFor(Loc L) const {
    CountCtx Ctx;
    if (Info->isLoopHead(L))
      return fixCellName(L, Ctx);
    return stateCellName(L, Ctx);
  }

  /// Precomputed instance membership: fix-cell name → (cell, iteration
  /// count at that instance's loop position), for every cell inside any
  /// loop. One O(cells · depth) pass replaces per-instance scans.
  using InstanceBuckets =
      std::unordered_map<Name, std::vector<std::pair<Name, uint32_t>>,
                         NameHash>;

  InstanceBuckets groupCellsByInstance() const {
    InstanceBuckets B;
    Loc L;
    std::vector<uint32_t> Counts;
    for (const auto &[N, CellV] : Cells) {
      (void)CellV;
      if (!decodeCellState(N, L, Counts))
        continue;
      if (L >= Info->LoopNestOf.size())
        continue;
      const auto &Nest = Info->LoopNestOf[L];
      CountCtx Ctx;
      for (size_t P = 0; P < Nest.size() && P < Counts.size(); ++P) {
        B[fixCellName(Nest[P], Ctx)].emplace_back(N, Counts[P]);
        Ctx[Nest[P]] = Counts[P];
      }
    }
    return B;
  }

  /// True when iteration 0 of \p Inst has identical structure (cells,
  /// computations, statement contents) in \p Fresh — the condition for
  /// re-adopting its demanded unrollings across a structural edit.
  /// \p FreshBucket lists Fresh's cells belonging to this instance.
  bool iterationZeroUnchanged(
      const Daig &Fresh, const LoopInstance &Inst,
      const std::vector<std::pair<Name, uint32_t>> &FreshBucket) {
    Loc L = Inst.Head;
    if (L >= Fresh.Info->LoopNestOf.size() || !Fresh.Info->isLoopHead(L))
      return false;
    if (Fresh.Info->LoopNestOf[L] != Info->LoopNestOf[L])
      return false;
    auto FreshLoop = Fresh.Info->NaturalLoops.find(L);
    auto OldLoop = Info->NaturalLoops.find(L);
    if (FreshLoop == Fresh.Info->NaturalLoops.end() ||
        OldLoop == Info->NaturalLoops.end() ||
        FreshLoop->second != OldLoop->second)
      return false;
    // Every fresh cell belonging to this instance must exist unchanged in
    // the old DAIG (computations equal).
    for (const auto &[N, CountAtL] : FreshBucket) {
      (void)CountAtL;
      auto FreshIt = Fresh.Cells.find(N);
      auto OldIt = Cells.find(N);
      if (OldIt == Cells.end() ||
          OldIt->second.T != FreshIt->second.T)
        return false;
      auto FreshComp = Fresh.CompOf.find(N);
      auto OldComp = CompOf.find(N);
      bool FH = FreshComp != Fresh.CompOf.end();
      bool OH = OldComp != CompOf.end();
      if (FH != OH)
        return false;
      if (FH && FreshComp->second.F != FnKind::Fix &&
          !(FreshComp->second == OldComp->second))
        return false;
    }
    // Statement cells used inside the loop (incl. the back edge and entry
    // edges) must be unchanged.
    for (const auto &[Id, E] : G->edges()) {
      if (!OldLoop->second.count(E.Src) && !OldLoop->second.count(E.Dst))
        continue;
      Name SC = Fresh.stmtCellName(Id);
      auto OldIt = Cells.find(SC);
      if (OldIt == Cells.end() ||
          !(std::get<Stmt>(*OldIt->second.V) == E.Label))
        return false;
    }
    return true;
  }

  /// True when cell \p N (in \p Ref's naming) belongs to the body/iterates
  /// of loop instance \p Inst (any iteration count).
  static bool belongsToInstance(const Daig &Ref, Name N,
                                const LoopInstance &Inst) {
    Loc CL;
    std::vector<uint32_t> Counts;
    if (!decodeCellState(N, CL, Counts))
      return false;
    if (CL >= Ref.Info->LoopNestOf.size())
      return false;
    const auto &CNest = Ref.Info->LoopNestOf[CL];
    size_t P = 0;
    for (; P < CNest.size(); ++P)
      if (CNest[P] == Inst.Head)
        break;
    if (P >= CNest.size() || P >= Counts.size())
      return false;
    for (size_t Q = 0; Q < P; ++Q) {
      uint32_t Expected = 0;
      for (const auto &[H, C] : Inst.Ctx)
        if (H == CNest[Q])
          Expected = C;
      if (Counts[Q] != Expected)
        return false;
    }
    return true;
  }

  /// Copies this DAIG's unrolled iterations (≥ 1) of \p Inst into \p Fresh,
  /// including values, computations, nested instances, and the fix edge.
  /// \p OldBucket lists this DAIG's cells belonging to the instance.
  void adoptUnrollings(Daig &Fresh, Name FixDest,
                       const LoopInstance &Inst,
                       const std::vector<std::pair<Name, uint32_t>> &OldBucket) {
    for (const auto &[N, CountAtL] : OldBucket) {
      (void)CountAtL;
      auto CellIt = Cells.find(N);
      if (CellIt == Cells.end())
        continue;
      const Cell &CellV = CellIt->second;
      auto FreshIt = Fresh.Cells.find(N);
      if (FreshIt == Fresh.Cells.end())
        Fresh.Cells.emplace(N, CellV);
      else if (CellV.hasValue() && !FreshIt->second.hasValue())
        FreshIt->second.V = CellV.V;
      auto CIt = CompOf.find(N);
      if (CIt != CompOf.end()) {
        auto FreshCIt = Fresh.CompOf.find(N);
        if (FreshCIt == Fresh.CompOf.end() ||
            !(FreshCIt->second == CIt->second))
          Fresh.addComp(N, CIt->second.F, CIt->second.Srcs);
      }
    }
    // Fix edge position and metadata (incl. nested instances).
    auto FIt = CompOf.find(FixDest);
    assert(FIt != CompOf.end() && "unrolled loop must retain its fix edge");
    Fresh.addComp(FixDest, FnKind::Fix, FIt->second.Srcs);
    Fresh.Loops[FixDest] = Inst;
    for (const auto &[NestedDest, NestedInst] : Loops) {
      if (NestedDest == FixDest)
        continue;
      if (belongsToInstance(*this, NestedDest, Inst)) {
        auto NFIt = CompOf.find(NestedDest);
        if (NFIt != CompOf.end())
          Fresh.addComp(NestedDest, FnKind::Fix, NFIt->second.Srcs);
        Fresh.Loops[NestedDest] = NestedInst;
      }
    }
    // Values of the fix cell itself.
    auto ValIt = Cells.find(FixDest);
    if (ValIt != Cells.end() && ValIt->second.hasValue())
      Fresh.Cells.at(FixDest).V = ValIt->second.V;
  }
};

//===----------------------------------------------------------------------===//
// Well-formedness and consistency checking (Definitions 4.1 / 4.3)
//===----------------------------------------------------------------------===//

template <typename D>
  requires AbstractDomain<D>
std::string Daig<D>::checkWellFormed() const {
  // (2) unique destinations and (1) unique names hold by container keys;
  // validate the remaining conditions.
  for (const auto &[Dest, C] : CompOf) {
    auto DIt = Cells.find(Dest);
    if (DIt == Cells.end())
      return "computation destination missing: " + Dest.toString();
    if (DIt->second.T != CellType::StateTy)
      return "computation writes a statement cell: " + Dest.toString();
    for (size_t I = 0; I < C.Srcs.size(); ++I) {
      auto SIt = Cells.find(C.Srcs[I]);
      if (SIt == Cells.end())
        return "computation source missing: " + C.Srcs[I].toString() +
               " (dest " + Dest.toString() + ")";
      // (4) typing: transfer source 0 is a statement; all others are states.
      bool ExpectStmt = (C.F == FnKind::Transfer && I == 0);
      if (ExpectStmt && SIt->second.T != CellType::StmtTy)
        return "transfer source 0 is not a statement: " + Dest.toString();
      if (!ExpectStmt && SIt->second.T != CellType::StateTy)
        return "state source is not a state cell: " + C.Srcs[I].toString();
      if (ExpectStmt && !SIt->second.hasValue())
        return "statement cell is empty: " + C.Srcs[I].toString();
    }
    if (C.F == FnKind::Fix && C.Srcs.size() != 2)
      return "fix edge without exactly two sources: " + Dest.toString();
    if (C.F == FnKind::Widen && C.Srcs.size() != 2)
      return "widen edge without exactly two sources: " + Dest.toString();
  }
  // (5) empty references have dependencies.
  for (const auto &[N, C] : Cells) {
    if (C.T == CellType::StateTy && !C.hasValue() && !CompOf.count(N))
      return "empty cell without a computation: " + N.toString();
    if (C.T == CellType::StmtTy && !C.hasValue())
      return "statement cell without content: " + N.toString();
  }
  // (3) acyclicity via Kahn's algorithm over computation edges.
  std::unordered_map<Name, unsigned, NameHash> InDeg;
  for (const auto &[Dest, C] : CompOf)
    InDeg[Dest] = static_cast<unsigned>(C.Srcs.size());
  std::vector<Name> Ready;
  for (const auto &[N, C] : Cells)
    if (!InDeg.count(N))
      Ready.push_back(N);
  size_t Processed = Ready.size();
  while (!Ready.empty()) {
    Name N = Ready.back();
    Ready.pop_back();
    auto DIt = Dependents.find(N);
    if (DIt == Dependents.end())
      continue;
    for (Name Dep : DIt->second) {
      auto IIt = InDeg.find(Dep);
      if (IIt == InDeg.end())
        continue;
      if (--IIt->second == 0) {
        Ready.push_back(Dep);
        ++Processed;
      }
    }
  }
  if (Processed != Cells.size())
    return "dependency cycle detected (acyclicity violated)";
  return "";
}

template <typename D>
  requires AbstractDomain<D>
std::string Daig<D>::checkAiConsistency() {
  for (const auto &[N, C] : Cells) {
    if (C.T != CellType::StateTy || !C.hasValue())
      continue;
    if (!Degraded.empty() && Degraded.count(N))
      continue; // ⊤-substituted/tainted by a budget: deliberately not the
                // value its computation produces (sound by construction)
    auto CIt = CompOf.find(N);
    if (CIt == CompOf.end())
      continue; // φ0 cell
    const Comp &Comp = CIt->second;
    bool AllFilled = true;
    for (Name S : Comp.Srcs) {
      auto SIt = Cells.find(S);
      if (SIt == Cells.end() || !SIt->second.hasValue()) {
        AllFilled = false;
        break;
      }
    }
    if (!AllFilled)
      return "filled cell " + N.toString() + " depends on an empty cell";
    const Elem &Stored = std::get<Elem>(*C.V);
    if (Comp.F == FnKind::Fix) {
      const Elem &V1 = std::get<Elem>(*Cells.at(Comp.Srcs[0]).V);
      const Elem &V2 = std::get<Elem>(*Cells.at(Comp.Srcs[1]).V);
      if (!D::equal(V1, V2) || !D::equal(Stored, V1))
        return "fix cell " + N.toString() + " inconsistent with its iterates";
      continue;
    }
    Elem Recomputed = [&] {
      switch (Comp.F) {
      case FnKind::Transfer: {
        const Stmt &S = std::get<Stmt>(*Cells.at(Comp.Srcs[0]).V);
        const Elem &In = std::get<Elem>(*Cells.at(Comp.Srcs[1]).V);
        return (S.Kind == StmtKind::Call && Hook) ? Hook(S, In)
                                                  : D::transfer(S, In);
      }
      case FnKind::Join: {
        Elem Acc = std::get<Elem>(*Cells.at(Comp.Srcs[0]).V);
        for (size_t I = 1; I < Comp.Srcs.size(); ++I)
          Acc = D::join(Acc, std::get<Elem>(*Cells.at(Comp.Srcs[I]).V));
        return Acc;
      }
      case FnKind::Widen:
        return D::widen(std::get<Elem>(*Cells.at(Comp.Srcs[0]).V),
                        std::get<Elem>(*Cells.at(Comp.Srcs[1]).V));
      case FnKind::Fix:
        break;
      }
      return D::bottom();
    }();
    if (!D::equal(Stored, Recomputed))
      return "cell " + N.toString() + " disagrees with its computation";
  }
  return "";
}

} // namespace dai

#endif // DAI_DAIG_DAIG_H
