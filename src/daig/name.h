//===-- daig/name.h - DAIG name algebra -------------------------*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The name algebra of Fig. 6: names identify DAIG reference cells and
/// memo-table entries for reuse across edits and queries. Names are
///
///   n ::= ℓ | f | i | v | n1·n2 | n^(i)
///
/// i.e. locations, analysis-function symbols, integers, value hashes,
/// products, and iteration-primed names. We generalize the paper's single
/// iteration count to *nested* counts (an n^(i) wrapper per enclosing loop,
/// outermost-first) so that demanded unrolling of nested loops never
/// collides: the k-th unrolling of an outer loop resets inner loops to their
/// initial two iterates under the outer count k.
///
/// Names are hash-consed through a process-global NameTable: every
/// constructor canonicalizes its node in an intern table, so each
/// structurally distinct name exists exactly once and a Name is a
/// trivially-copyable id wrapper (the 32-bit NameId plus the precomputed
/// structural hash carried inline, so the equality/hash hot path of every
/// DAIG map probe touches no table memory at all). Equality is an integer
/// compare and nodes live in slab storage (fixed-size chunks of plain
/// structs — no shared_ptr, no per-node refcounting, no per-name heap
/// allocation after first intern).
///
/// NameTable contract (lifetime / thread-safety):
///  - The table is a process-global singleton with process lifetime; interned
///    nodes are never freed or reused, so a NameId (and hence a Name) stays
///    valid forever once created. Ids are dense in first-intern order.
///  - Like SymbolTable (domain/symbol.h), the table accepts CONCURRENT
///    interning: the dedup index is sharded by structural hash (per-shard
///    mutex + open addressing), ids come from one global atomic counter
///    (keeping them dense), and nodes live in fixed-size chunks published
///    via CAS so a chunk pointer never relocates — node() reads are
///    lock-free. A thread that legitimately holds a NameId (returned from
///    its own intern(), read from a shard under the shard lock, or received
///    through any synchronizing channel such as a TaskPool batch barrier)
///    observes the node fully written, transitively through those
///    happens-before edges.
///  - The table only grows, bounded by the set of structurally distinct
///    names an analysis constructs (program shape × loop unrolling depth ×
///    distinct value hashes); intern statistics are exposed through
///    nameTableCounters() in support/statistics.h (an atomic sink, so
///    worker-thread interning is counted).
///
/// Name equality, the hash/structural total order, and toString are
/// bit-identical to the structural tree semantics they replace (the
/// name_intern_test suite drives the interned implementation in lockstep
/// against a structural reference oracle).
///
//===----------------------------------------------------------------------===//

#ifndef DAI_DAIG_NAME_H
#define DAI_DAIG_NAME_H

#include "cfg/cfg.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dai {

/// Analysis-function symbols labelling computation edges (Fig. 6).
enum class FnKind : uint8_t {
  Transfer, ///< ⟦·⟧♯
  Join,     ///< ⊔
  Widen,    ///< ∇
  Fix,      ///< fix — demanded fixed-point marker
};

/// Number of FnKind enumerators — keep in sync with the enum (sizes the
/// one-time Name::fn cache; fnKindName's exhaustive switch catches drift).
inline constexpr unsigned kNumFnKinds = 4;

const char *fnKindName(FnKind F);

/// A dense id for an interned name node; doubles as an index into the
/// NameTable's slab. kNoName encodes the invalid (default-constructed) Name.
using NameId = uint32_t;
constexpr NameId kNoName = static_cast<NameId>(-1);

/// An immutable, interned DAIG name: a trivially-copyable id into the
/// global NameTable with O(1) equality and precomputed structural hash.
class Name {
public:
  /// Invalid is the documented sentinel returned by kind() on an invalid
  /// (default-constructed) Name — a well-defined query, unlike the other
  /// accessors below, which require a valid receiver of the right kind.
  /// Keep Invalid LAST: the structural total order compares the pre-existing
  /// enumerator values.
  enum class Kind : uint8_t { Loc, Fn, Num, ValHash, Pair, Iter, Invalid };

  Name() = default; ///< Invalid name; valid() is false.

  static Name loc(Loc L);
  static Name fn(FnKind F);
  static Name num(uint64_t N);
  static Name valHash(uint64_t H);
  static Name pair(const Name &L, const Name &R);
  /// n^(Count): one iteration wrapper (innermost loop is the outermost
  /// wrapper; see mkStateName in the DAIG builder).
  static Name iter(const Name &Base, uint32_t Count);

  bool valid() const { return Id != kNoName; }
  /// Kind of this name; Kind::Invalid for an invalid Name (well-defined —
  /// regression-tested, since the pre-interning implementation dereferenced
  /// a null node here).
  Kind kind() const;
  /// Precomputed structural hash (carried inline); 0 for an invalid Name.
  uint64_t hash() const { return H; }
  /// The interned id (dense, first-intern order); kNoName when invalid.
  NameId id() const { return Id; }

  Loc locId() const;
  FnKind fnKind() const;
  uint64_t numValue() const;
  uint64_t hashValue() const;
  Name left() const;
  Name right() const;
  Name iterBase() const;
  uint32_t iterCount() const;

  /// Hash-consing makes structural equality pointer (id) equality.
  bool operator==(const Name &O) const { return Id == O.Id; }
  bool operator!=(const Name &O) const { return Id != O.Id; }
  /// Total order: by hash, tie-broken structurally (deterministic, and
  /// identical to the pre-interning structural order).
  bool operator<(const Name &O) const;

  std::string toString() const;

private:
  NameId Id = kNoName;
  uint64_t H = 0; ///< The id's structural hash, mirrored out of the table.

  Name(NameId I, uint64_t H) : Id(I), H(H) {}
  friend class NameTable;
};

/// The process-global hash-consing table backing Name (see the file header
/// for the lifetime/thread-safety contract).
class NameTable {
public:
  /// One interned node: slab-resident plain data. L/R are child ids
  /// (kNoName when absent); A is the leaf payload / iteration count.
  struct Node {
    Name::Kind K;
    uint64_t A = 0; ///< Loc id / fn kind / integer / value hash / iter count.
    NameId L = kNoName, R = kNoName;
    uint64_t Hash = 0; ///< Precomputed structural hash.
  };

  /// Slab geometry: nodes live in fixed 64Ki-node chunks that are CAS-
  /// published once and never relocated, so node() needs no lock even while
  /// other threads intern. 2^14 chunk pointers bound the table at 2^30
  /// names (the dense-id space is 32-bit anyway).
  static constexpr unsigned kChunkShift = 16;
  static constexpr size_t kChunkSize = size_t(1) << kChunkShift;
  static constexpr size_t kChunkMask = kChunkSize - 1;
  static constexpr size_t kMaxChunks = size_t(1) << 14;
  /// Dedup-index shards, selected by the high bits of the structural hash
  /// (the low bits drive the in-shard probe sequence).
  static constexpr unsigned kNumShards = 16;

  static NameTable &global() {
    static NameTable Table;
    return Table;
  }

  /// Canonicalizes (K, A, L, R): returns the existing id when the node was
  /// seen before, otherwise appends a node with structural hash \p Hash.
  /// Safe to call concurrently; equal tuples hash equal, land in the same
  /// shard, and serialize on its mutex, so each distinct tuple gets exactly
  /// one id.
  NameId intern(Name::Kind K, uint64_t A, NameId L, NameId R, uint64_t Hash);

  /// Slab access; \p Id must be a valid id obtained from intern().
  /// Lock-free: the chunk pointer is an acquire load and chunks never move.
  const Node &node(NameId Id) const {
    return Chunks[Id >> kChunkShift].load(std::memory_order_acquire)
        [Id & kChunkMask];
  }

  /// Number of distinct names interned so far (monotone; under concurrent
  /// interning this counts ids HANDED OUT, some of which may still be
  /// mid-publication in another thread — use it as a count, not as an
  /// iteration bound).
  size_t size() const { return NextId.load(std::memory_order_acquire); }

private:
  NameTable();
  ~NameTable();

  /// One dedup-index shard: open-addressing (linear probing) over
  /// (structural hash, id) pairs, power-of-two capacity, ≤ 70% load.
  /// Interning sits on the hot path of every query/edit, and a node-based
  /// unordered_map pays two dependent cache misses plus a heap allocation
  /// per unique name where this flat table pays one line per probe and
  /// none — measured as the difference between the interned name layer
  /// beating the shared_ptr trees and losing to them. kNoName marks an
  /// empty slot. Sharding by hash keeps concurrent interning of unrelated
  /// names uncontended while serializing equal tuples.
  struct Shard {
    std::mutex M;
    std::vector<std::pair<uint64_t, NameId>> Slots;
    size_t SlotMask = 0;
    size_t Count = 0; ///< Occupied slots (drives the load-factor rehash).
  };

  /// Rehash \p S to the next capacity; caller holds S.M.
  void growShard(Shard &S);
  /// Returns the chunk holding \p Id, allocating and CAS-publishing it on
  /// first use (the losing allocator frees its copy).
  Node *chunkFor(NameId Id);

  /// Segmented slab storage, indexed by NameId via (chunk, offset).
  std::unique_ptr<std::atomic<Node *>[]> Chunks;
  std::atomic<uint32_t> NextId{0};
  std::array<Shard, kNumShards> Shards;
  /// Footprint bookkeeping for the NameTableBytes gauge.
  std::atomic<uint64_t> ChunkCount{0};
  std::atomic<uint64_t> SlotBytes{0};
};

struct NameHash {
  size_t operator()(const Name &N) const { return N.hash(); }
};

inline Name::Kind Name::kind() const {
  return Id == kNoName ? Kind::Invalid : NameTable::global().node(Id).K;
}

} // namespace dai

#endif // DAI_DAIG_NAME_H
