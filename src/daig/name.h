//===-- daig/name.h - DAIG name algebra -------------------------*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The name algebra of Fig. 6: names identify DAIG reference cells and
/// memo-table entries for reuse across edits and queries. Names are
///
///   n ::= ℓ | f | i | v | n1·n2 | n^(i)
///
/// i.e. locations, analysis-function symbols, integers, value hashes,
/// products, and iteration-primed names. We generalize the paper's single
/// iteration count to *nested* counts (an n^(i) wrapper per enclosing loop,
/// outermost-first) so that demanded unrolling of nested loops never
/// collides: the k-th unrolling of an outer loop resets inner loops to their
/// initial two iterates under the outer count k.
///
/// Names are immutable hash-consed-style trees with precomputed hashes,
/// structural equality, and a total order (for deterministic iteration).
///
//===----------------------------------------------------------------------===//

#ifndef DAI_DAIG_NAME_H
#define DAI_DAIG_NAME_H

#include "cfg/cfg.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dai {

/// Analysis-function symbols labelling computation edges (Fig. 6).
enum class FnKind : uint8_t {
  Transfer, ///< ⟦·⟧♯
  Join,     ///< ⊔
  Widen,    ///< ∇
  Fix,      ///< fix — demanded fixed-point marker
};

const char *fnKindName(FnKind F);

/// An immutable, structurally hashed DAIG name.
class Name {
public:
  enum class Kind : uint8_t { Loc, Fn, Num, ValHash, Pair, Iter };

  Name() = default; ///< Invalid name; valid() is false.

  static Name loc(Loc L);
  static Name fn(FnKind F);
  static Name num(uint64_t N);
  static Name valHash(uint64_t H);
  static Name pair(const Name &L, const Name &R);
  /// n^(Count): one iteration wrapper (innermost loop is the outermost
  /// wrapper; see mkStateName in the DAIG builder).
  static Name iter(const Name &Base, uint32_t Count);

  bool valid() const { return Node != nullptr; }
  Kind kind() const { return Node->K; }
  uint64_t hash() const { return Node ? Node->Hash : 0; }

  Loc locId() const;
  FnKind fnKind() const;
  uint64_t numValue() const;
  uint64_t hashValue() const;
  Name left() const;
  Name right() const;
  Name iterBase() const;
  uint32_t iterCount() const;

  bool operator==(const Name &O) const;
  bool operator!=(const Name &O) const { return !(*this == O); }
  /// Total order: by hash, tie-broken structurally (deterministic).
  bool operator<(const Name &O) const;

  std::string toString() const;

private:
  struct NameNode {
    Kind K;
    uint64_t A = 0; ///< Loc id / fn kind / integer / value hash / iter count.
    std::shared_ptr<const NameNode> L, R;
    uint64_t Hash = 0;
  };
  std::shared_ptr<const NameNode> Node;

  explicit Name(std::shared_ptr<const NameNode> N) : Node(std::move(N)) {}
  static bool nodeEquals(const NameNode *A, const NameNode *B);
  static int nodeCompare(const NameNode *A, const NameNode *B);
  static std::string nodeToString(const NameNode *N);
};

struct NameHash {
  size_t operator()(const Name &N) const { return N.hash(); }
};

} // namespace dai

#endif // DAI_DAIG_NAME_H
