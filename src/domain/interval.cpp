//===-- domain/interval.cpp - Interval abstract domain --------------------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "domain/interval.h"

#include "cfg/program.h"
#include "support/hashing.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace dai;

namespace {

constexpr int64_t NegInf = Interval::kNegInf;
constexpr int64_t PosInf = Interval::kPosInf;

bool isInf(int64_t V) { return V == NegInf || V == PosInf; }

/// Saturating addition with ±∞ absorption. Callers never add opposite
/// infinities (bounds of the same kind are combined).
int64_t boundAdd(int64_t A, int64_t B) {
  if (A == NegInf || B == NegInf)
    return NegInf;
  if (A == PosInf || B == PosInf)
    return PosInf;
  int64_t R;
  if (__builtin_add_overflow(A, B, &R))
    return (A > 0) ? PosInf : NegInf;
  return R;
}

int64_t boundNeg(int64_t A) {
  if (A == NegInf)
    return PosInf;
  if (A == PosInf)
    return NegInf;
  return A == INT64_MIN ? PosInf : -A;
}

/// Bound multiplication with the standard 0·∞ = 0 convention (sound for
/// corner-product interval multiplication).
int64_t boundMul(int64_t A, int64_t B) {
  if (A == 0 || B == 0)
    return 0;
  if (isInf(A) || isInf(B)) {
    bool Negative = (A < 0) != (B < 0);
    return Negative ? NegInf : PosInf;
  }
  int64_t R;
  if (__builtin_mul_overflow(A, B, &R))
    return ((A < 0) != (B < 0)) ? NegInf : PosInf;
  return R;
}

int64_t boundDiv(int64_t A, int64_t B) {
  assert(B != 0 && "divisor corner must be nonzero");
  if (isInf(A)) {
    bool Negative = (A < 0) != (B < 0);
    return Negative ? NegInf : PosInf;
  }
  if (isInf(B))
    return 0; // finite / ±∞ truncates toward 0
  return A / B;
}

} // namespace

bool Interval::subsumes(const Interval &O) const {
  if (O.Empty)
    return true;
  if (Empty)
    return false;
  return Lo <= O.Lo && O.Hi <= Hi;
}

Interval Interval::join(const Interval &O) const {
  if (Empty)
    return O;
  if (O.Empty)
    return *this;
  return range(std::min(Lo, O.Lo), std::max(Hi, O.Hi));
}

Interval Interval::meet(const Interval &O) const {
  if (Empty || O.Empty)
    return empty();
  return range(std::max(Lo, O.Lo), std::min(Hi, O.Hi));
}

Interval Interval::widen(const Interval &Next) const {
  if (Empty)
    return Next;
  if (Next.Empty)
    return *this;
  int64_t L = Next.Lo < Lo ? NegInf : Lo;
  int64_t H = Next.Hi > Hi ? PosInf : Hi;
  return range(L, H);
}

Interval Interval::add(const Interval &O) const {
  if (Empty || O.Empty)
    return empty();
  return range(boundAdd(Lo, O.Lo), boundAdd(Hi, O.Hi));
}

Interval Interval::sub(const Interval &O) const { return add(O.neg()); }

Interval Interval::neg() const {
  if (Empty)
    return empty();
  return range(boundNeg(Hi), boundNeg(Lo));
}

Interval Interval::mul(const Interval &O) const {
  if (Empty || O.Empty)
    return empty();
  int64_t C[4] = {boundMul(Lo, O.Lo), boundMul(Lo, O.Hi), boundMul(Hi, O.Lo),
                  boundMul(Hi, O.Hi)};
  return range(*std::min_element(C, C + 4), *std::max_element(C, C + 4));
}

Interval Interval::div(const Interval &O) const {
  if (Empty || O.Empty)
    return empty();
  // Only handle divisors of a definite sign precisely; a divisor interval
  // containing 0 is split into its negative and positive parts.
  if (O.contains(0)) {
    Interval NegPart = O.meet(atMost(-1));
    Interval PosPart = O.meet(atLeast(1));
    Interval R = empty();
    if (!NegPart.isEmpty())
      R = R.join(div(NegPart));
    if (!PosPart.isEmpty())
      R = R.join(div(PosPart));
    // Division by exactly zero has no defined result; over-approximate the
    // all-zero divisor case as ⊤ only when nothing else constrains it.
    return R.isEmpty() ? top() : R;
  }
  int64_t C[4] = {boundDiv(Lo, O.Lo), boundDiv(Lo, O.Hi), boundDiv(Hi, O.Lo),
                  boundDiv(Hi, O.Hi)};
  return range(*std::min_element(C, C + 4), *std::max_element(C, C + 4));
}

Interval Interval::mod(const Interval &O) const {
  if (Empty || O.Empty)
    return empty();
  // |a % b| < |b| with the sign of the dividend (C semantics).
  int64_t MaxMag;
  if (isInf(O.Lo) || isInf(O.Hi))
    MaxMag = PosInf;
  else
    MaxMag = std::max(O.Lo == INT64_MIN ? PosInf : std::abs(O.Lo),
                      std::abs(O.Hi)) -
             1;
  Interval R = range(boundNeg(MaxMag), MaxMag);
  if (Lo >= 0)
    R = R.meet(atLeast(0));
  if (Hi <= 0)
    R = R.meet(atMost(0));
  return R;
}

TriBool Interval::cmpLt(const Interval &O) const {
  if (Empty || O.Empty)
    return TriBool::Unknown;
  // The sentinel encoding makes plain comparisons sound: kPosInf is never
  // strictly below anything, and kNegInf is never strictly above anything.
  if (Hi < O.Lo)
    return TriBool::True;
  if (Lo >= O.Hi)
    return TriBool::False;
  return TriBool::Unknown;
}

TriBool Interval::cmpLe(const Interval &O) const {
  // a <= b  ⟺  !(b < a)
  return triNot(O.cmpLt(*this));
}

TriBool Interval::cmpEq(const Interval &O) const {
  if (Empty || O.Empty)
    return TriBool::Unknown;
  if (isConstant() && O.isConstant() && Lo == O.Lo)
    return TriBool::True;
  if (meet(O).isEmpty())
    return TriBool::False;
  return TriBool::Unknown;
}

Interval Interval::clampLt(int64_t Bound) const {
  if (Bound == PosInf)
    return *this; // x < (unbounded) imposes nothing
  if (Bound == NegInf)
    return empty();
  return meet(atMost(Bound - 1));
}

Interval Interval::clampGt(int64_t Bound) const {
  if (Bound == NegInf)
    return *this;
  if (Bound == PosInf)
    return empty();
  return meet(atLeast(Bound + 1));
}

Interval Interval::clampNe(int64_t V) const {
  if (Empty || isInf(V))
    return *this;
  if (Lo == V && Hi == V)
    return empty();
  if (Lo == V)
    return range(V + 1, Hi);
  if (Hi == V)
    return range(Lo, V - 1);
  return *this;
}

uint64_t Interval::hash() const {
  if (Empty)
    return 0x9d5f3c1bULL;
  return hashValues(static_cast<uint64_t>(Lo), static_cast<uint64_t>(Hi));
}

std::string Interval::toString() const {
  if (Empty)
    return "⊥";
  std::ostringstream OS;
  OS << "[";
  if (Lo == NegInf)
    OS << "-oo";
  else
    OS << Lo;
  OS << ", ";
  if (Hi == PosInf)
    OS << "+oo";
  else
    OS << Hi;
  OS << "]";
  return OS.str();
}

//===----------------------------------------------------------------------===//
// IntervalDomain
//===----------------------------------------------------------------------===//

namespace {

IntervalState bottomState() {
  IntervalState S;
  S.Bottom = true;
  return S;
}

VarAbs joinVar(const VarAbs &A, const VarAbs &B) {
  VarAbs R;
  R.Num = A.Num.join(B.Num);
  R.Len = A.Len.join(B.Len);
  R.Elems = A.Elems.join(B.Elems);
  return R;
}

VarAbs widenVar(const VarAbs &A, const VarAbs &B) {
  VarAbs R;
  R.Num = A.Num.widen(B.Num);
  R.Len = A.Len.widen(B.Len);
  R.Elems = A.Elems.widen(B.Elems);
  return R;
}

bool leqVar(const VarAbs &A, const VarAbs &B) {
  return B.Num.subsumes(A.Num) && B.Len.subsumes(A.Len) &&
         B.Elems.subsumes(A.Elems);
}

TriBool truth(const ExprPtr &E, const IntervalState &S);

/// Converts a three-valued truth to a 0/1 interval.
Interval triToInterval(TriBool T) {
  switch (T) {
  case TriBool::False: return Interval::constant(0);
  case TriBool::True: return Interval::constant(1);
  case TriBool::Unknown: return Interval::range(0, 1);
  }
  return Interval::range(0, 1);
}

VarAbs evalImpl(const ExprPtr &E, const IntervalState &S) {
  if (!E)
    return VarAbs::top();
  switch (E->Kind) {
  case ExprKind::IntLit:
    return VarAbs::numeric(Interval::constant(E->IntVal));
  case ExprKind::BoolLit:
    return VarAbs::numeric(Interval::constant(E->BoolVal ? 1 : 0));
  case ExprKind::NullLit:
    return VarAbs::top(); // null carries no numeric information
  case ExprKind::Var:
    return S.get(E->Name);
  case ExprKind::Unary: {
    if (E->UOp == UnaryOp::Neg)
      return VarAbs::numeric(evalImpl(E->Lhs, S).Num.neg());
    return VarAbs::numeric(triToInterval(triNot(truth(E->Lhs, S))));
  }
  case ExprKind::Binary: {
    switch (E->BOp) {
    case BinaryOp::Add:
      return VarAbs::numeric(evalImpl(E->Lhs, S).Num.add(evalImpl(E->Rhs, S).Num));
    case BinaryOp::Sub:
      return VarAbs::numeric(evalImpl(E->Lhs, S).Num.sub(evalImpl(E->Rhs, S).Num));
    case BinaryOp::Mul:
      return VarAbs::numeric(evalImpl(E->Lhs, S).Num.mul(evalImpl(E->Rhs, S).Num));
    case BinaryOp::Div:
      return VarAbs::numeric(evalImpl(E->Lhs, S).Num.div(evalImpl(E->Rhs, S).Num));
    case BinaryOp::Mod:
      return VarAbs::numeric(evalImpl(E->Lhs, S).Num.mod(evalImpl(E->Rhs, S).Num));
    default:
      return VarAbs::numeric(triToInterval(truth(E, S)));
    }
  }
  case ExprKind::ArrayLit: {
    VarAbs V;
    V.Num = Interval::top();
    V.Len = Interval::constant(static_cast<int64_t>(E->Elems.size()));
    Interval Summary = Interval::empty();
    for (const auto &Elem : E->Elems)
      Summary = Summary.join(evalImpl(Elem, S).Num);
    V.Elems = Summary;
    return V;
  }
  case ExprKind::Index:
    return VarAbs::numeric(evalImpl(E->Lhs, S).Elems);
  case ExprKind::FieldRead:
    if (E->Name == "length")
      return VarAbs::numeric(evalImpl(E->Lhs, S).Len);
    return VarAbs::top(); // .next et al.: not numeric
  }
  return VarAbs::top();
}

TriBool truth(const ExprPtr &E, const IntervalState &S) {
  if (!E)
    return TriBool::Unknown;
  switch (E->Kind) {
  case ExprKind::BoolLit:
    return E->BoolVal ? TriBool::True : TriBool::False;
  case ExprKind::IntLit:
    return E->IntVal != 0 ? TriBool::True : TriBool::False;
  case ExprKind::NullLit:
    return TriBool::False;
  case ExprKind::Var: {
    Interval I = S.get(E->Name).Num;
    if (I.isConstant())
      return I.contains(0) ? TriBool::False : TriBool::True;
    if (!I.contains(0) && !I.isEmpty() && !I.isTop())
      return TriBool::True;
    return TriBool::Unknown;
  }
  case ExprKind::Unary:
    if (E->UOp == UnaryOp::Not)
      return triNot(truth(E->Lhs, S));
    return TriBool::Unknown;
  case ExprKind::Binary: {
    // Null comparisons carry no interval information.
    if ((E->Lhs && E->Lhs->Kind == ExprKind::NullLit) ||
        (E->Rhs && E->Rhs->Kind == ExprKind::NullLit))
      return TriBool::Unknown;
    Interval L = evalImpl(E->Lhs, S).Num;
    Interval R = evalImpl(E->Rhs, S).Num;
    switch (E->BOp) {
    case BinaryOp::Lt: return L.cmpLt(R);
    case BinaryOp::Le: return L.cmpLe(R);
    case BinaryOp::Gt: return R.cmpLt(L);
    case BinaryOp::Ge: return R.cmpLe(L);
    case BinaryOp::Eq: return L.cmpEq(R);
    case BinaryOp::Ne: return triNot(L.cmpEq(R));
    case BinaryOp::And: return triAnd(truth(E->Lhs, S), truth(E->Rhs, S));
    case BinaryOp::Or: return triOr(truth(E->Lhs, S), truth(E->Rhs, S));
    default: return TriBool::Unknown;
    }
  }
  default:
    return TriBool::Unknown;
  }
}

/// Clamps the numeric abstraction of the *refinable* expression \p Target
/// (a variable or `a.length`) against bound interval \p Other under
/// comparison \p Op (Target Op Other). Returns false if the refinement
/// empties the value (state becomes ⊥).
bool refineSide(IntervalState &S, BinaryOp Op, const ExprPtr &Target,
                const Interval &Other) {
  if (!Target)
    return true;
  // Identify what we are refining: a variable's Num, or a variable's Len.
  std::string Var;
  bool IsLen = false;
  if (Target->Kind == ExprKind::Var) {
    Var = Target->Name;
  } else if (Target->Kind == ExprKind::FieldRead && Target->Name == "length" &&
             Target->Lhs && Target->Lhs->Kind == ExprKind::Var) {
    Var = Target->Lhs->Name;
    IsLen = true;
  } else {
    return true; // Not a refinable atom.
  }
  VarAbs V = S.get(Var);
  Interval &I = IsLen ? V.Len : V.Num;
  switch (Op) {
  case BinaryOp::Lt: I = I.clampLt(Other.hi()); break;
  case BinaryOp::Le: I = I.clampLe(Other.hi()); break;
  case BinaryOp::Gt: I = I.clampGt(Other.lo()); break;
  case BinaryOp::Ge: I = I.clampGe(Other.lo()); break;
  case BinaryOp::Eq: I = I.meet(Other); break;
  case BinaryOp::Ne:
    if (Other.isConstant())
      I = I.clampNe(Other.lo());
    break;
  default:
    return true;
  }
  if (I.isEmpty())
    return false;
  S.set(Var, V);
  return true;
}

BinaryOp flipCmp(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Lt: return BinaryOp::Gt;
  case BinaryOp::Le: return BinaryOp::Ge;
  case BinaryOp::Gt: return BinaryOp::Lt;
  case BinaryOp::Ge: return BinaryOp::Le;
  default: return Op; // Eq/Ne are symmetric
  }
}

} // namespace

IntervalState IntervalDomain::bottom() { return bottomState(); }

IntervalState
IntervalDomain::initialEntry(const std::vector<std::string> &Params) {
  (void)Params; // Parameters are unknown (⊤) at an uncalled entry.
  return IntervalState();
}

VarAbs IntervalDomain::eval(const ExprPtr &E, const IntervalState &S) {
  if (S.Bottom)
    return VarAbs::numeric(Interval::empty());
  return evalImpl(E, S);
}

IntervalState IntervalDomain::assume(const IntervalState &In,
                                     const ExprPtr &Cond) {
  if (In.Bottom || !Cond)
    return In;
  switch (Cond->Kind) {
  case ExprKind::BoolLit:
    return Cond->BoolVal ? In : bottomState();
  case ExprKind::IntLit:
    return Cond->IntVal != 0 ? In : bottomState();
  case ExprKind::Unary:
    if (Cond->UOp == UnaryOp::Not)
      return assume(In, negate(Cond->Lhs));
    return In;
  case ExprKind::Var:
    // Truthiness: x != 0.
    return assume(In, Expr::mkBinary(BinaryOp::Ne, Cond, Expr::mkInt(0)));
  case ExprKind::Binary: {
    if (Cond->BOp == BinaryOp::And)
      return assume(assume(In, Cond->Lhs), Cond->Rhs);
    if (Cond->BOp == BinaryOp::Or)
      return join(assume(In, Cond->Lhs), assume(In, Cond->Rhs));
    if (!isComparison(Cond->BOp))
      return In;
    if (truth(Cond, In) == TriBool::False)
      return bottomState();
    // Null comparisons carry no interval information.
    if ((Cond->Lhs && Cond->Lhs->Kind == ExprKind::NullLit) ||
        (Cond->Rhs && Cond->Rhs->Kind == ExprKind::NullLit))
      return In;
    IntervalState Out = In;
    Interval L = evalImpl(Cond->Lhs, In).Num;
    Interval R = evalImpl(Cond->Rhs, In).Num;
    if (!refineSide(Out, Cond->BOp, Cond->Lhs, R))
      return bottomState();
    if (!refineSide(Out, flipCmp(Cond->BOp), Cond->Rhs, L))
      return bottomState();
    return Out;
  }
  default:
    return In;
  }
}

IntervalState IntervalDomain::transfer(const Stmt &S, const IntervalState &In) {
  if (In.Bottom)
    return In;
  IntervalState Out = In;
  switch (S.Kind) {
  case StmtKind::Skip:
  case StmtKind::Print:
  case StmtKind::FieldWrite: // Heap mutation: no numeric effect.
    return Out;
  case StmtKind::Alloc:
    Out.set(S.Lhs, VarAbs::top());
    return Out;
  case StmtKind::Assign:
    Out.set(S.Lhs, evalImpl(S.Rhs, In));
    return Out;
  case StmtKind::Assume:
  case StmtKind::Assert: // Execution aborts on failure, so e holds after.
    return assume(In, S.Rhs);
  case StmtKind::ArrayWrite: {
    VarAbs A = In.get(S.Lhs);
    A.Elems = A.Elems.join(evalImpl(S.Rhs, In).Num);
    Out.set(S.Lhs, A);
    return Out;
  }
  case StmtKind::Call:
    // Intraprocedural default: havoc the result. The interprocedural engine
    // replaces this with a demanded callee summary (Section 7.1).
    Out.set(S.Lhs, VarAbs::top());
    return Out;
  }
  return Out;
}

IntervalState IntervalDomain::join(const IntervalState &A,
                                   const IntervalState &B) {
  if (A.Bottom)
    return B;
  if (B.Bottom)
    return A;
  IntervalState R;
  // Absent = ⊤, so only variables bound in both sides stay bound.
  for (const auto &[Var, VA] : A.Env) {
    auto It = B.Env.find(Var);
    if (It != B.Env.end())
      R.set(Var, joinVar(VA, It->second));
  }
  return R;
}

IntervalState IntervalDomain::widen(const IntervalState &Prev,
                                    const IntervalState &Next) {
  if (Prev.Bottom)
    return Next;
  if (Next.Bottom)
    return Prev;
  IntervalState R;
  for (const auto &[Var, VP] : Prev.Env) {
    auto It = Next.Env.find(Var);
    if (It != Next.Env.end())
      R.set(Var, widenVar(VP, It->second));
  }
  return R;
}

bool IntervalDomain::leq(const IntervalState &A, const IntervalState &B) {
  if (A.Bottom)
    return true;
  if (B.Bottom)
    return false;
  for (const auto &[Var, VB] : B.Env)
    if (!leqVar(A.get(Var), VB))
      return false;
  return true;
}

bool IntervalDomain::equal(const IntervalState &A, const IntervalState &B) {
  if (A.Bottom || B.Bottom)
    return A.Bottom == B.Bottom;
  return A.Env == B.Env;
}

uint64_t IntervalDomain::hash(const IntervalState &A) {
  if (A.Bottom)
    return 0x707ea1b2c3d4e5f6ULL;
  uint64_t H = 0x1234abcd5678ef01ULL;
  for (const auto &[Var, V] : A.Env) {
    H = hashCombine(H, static_cast<uint64_t>(Var));
    H = hashCombine(H, V.Num.hash());
    H = hashCombine(H, V.Len.hash());
    H = hashCombine(H, V.Elems.hash());
  }
  return H;
}

std::string IntervalDomain::toString(const IntervalState &A) {
  if (A.Bottom)
    return "⊥";
  std::ostringstream OS;
  OS << "{";
  bool First = true;
  for (const auto &[Var, V] : A.Env) {
    if (!First)
      OS << ", ";
    First = false;
    OS << symbolName(Var) << ": " << V.Num.toString();
    if (!V.Len.isTop())
      OS << " len" << V.Len.toString();
    if (!V.Elems.isTop())
      OS << " elems" << V.Elems.toString();
  }
  OS << "}";
  return OS.str();
}

IntervalState
IntervalDomain::enterCall(const IntervalState &Caller, const Stmt &CallSite,
                          const std::vector<std::string> &CalleeParams) {
  if (Caller.Bottom)
    return Caller;
  assert(CallSite.Kind == StmtKind::Call && "enterCall requires a call site");
  IntervalState Entry;
  for (size_t I = 0, E = CalleeParams.size(); I != E; ++I) {
    if (I < CallSite.Args.size())
      Entry.set(CalleeParams[I], evalImpl(CallSite.Args[I], Caller));
  }
  return Entry;
}

IntervalState IntervalDomain::exitCall(const IntervalState &Caller,
                                       const IntervalState &CalleeExit,
                                       const Stmt &CallSite) {
  if (Caller.Bottom)
    return Caller;
  if (CalleeExit.Bottom)
    return bottomState(); // The call never returns.
  assert(CallSite.Kind == StmtKind::Call && "exitCall requires a call site");
  IntervalState Out = Caller;
  // Arrays are passed by reference: the callee may have written elements,
  // but can never change a length (the statement language has no resize).
  for (const auto &Arg : CallSite.Args) {
    if (Arg && Arg->Kind == ExprKind::Var) {
      VarAbs V = Out.get(Arg->Name);
      if (!V.Elems.isTop()) {
        V.Elems = Interval::top();
        Out.set(Arg->Name, V);
      }
    }
  }
  Out.set(CallSite.Lhs, CalleeExit.get(RetVar));
  return Out;
}

//===----------------------------------------------------------------------===//
// Array-bounds verification client
//===----------------------------------------------------------------------===//

namespace {

void checkExprAccesses(const ExprPtr &E, const IntervalState &Pre,
                       ObligationSummary &Sum) {
  if (!E)
    return;
  if (E->Kind == ExprKind::Index) {
    ++Sum.Total;
    Interval Idx = evalImpl(E->Rhs, Pre).Num;
    Interval Len = evalImpl(E->Lhs, Pre).Len;
    bool InBounds = !Idx.isEmpty() && Idx.lo() >= 0 &&
                    Len.lo() != Interval::kNegInf && Len.lo() >= 1 &&
                    Idx.hi() != Interval::kPosInf && Idx.hi() <= Len.lo() - 1;
    if (InBounds)
      ++Sum.Verified;
  }
  checkExprAccesses(E->Lhs, Pre, Sum);
  checkExprAccesses(E->Rhs, Pre, Sum);
  for (const auto &Elem : E->Elems)
    checkExprAccesses(Elem, Pre, Sum);
}

} // namespace

ObligationSummary dai::checkArrayObligations(const IntervalState &Pre,
                                             const Stmt &S) {
  ObligationSummary Sum;
  if (Pre.Bottom) {
    // Unreachable code: obligations hold vacuously. Count accesses so totals
    // are stable across context policies.
    IntervalState Top;
    ObligationSummary Counted;
    checkExprAccesses(S.Index, Top, Counted);
    checkExprAccesses(S.Rhs, Top, Counted);
    for (const auto &A : S.Args)
      checkExprAccesses(A, Top, Counted);
    if (S.Kind == StmtKind::ArrayWrite)
      ++Counted.Total;
    Counted.Verified = Counted.Total;
    return Counted;
  }
  checkExprAccesses(S.Index, Pre, Sum);
  checkExprAccesses(S.Rhs, Pre, Sum);
  for (const auto &A : S.Args)
    checkExprAccesses(A, Pre, Sum);
  if (S.Kind == StmtKind::ArrayWrite) {
    ++Sum.Total;
    Interval Idx = IntervalDomain::eval(S.Index, Pre).Num;
    Interval Len = Pre.get(S.Lhs).Len;
    bool InBounds = !Idx.isEmpty() && Idx.lo() >= 0 &&
                    Len.lo() != Interval::kNegInf && Len.lo() >= 1 &&
                    Idx.hi() != Interval::kPosInf && Idx.hi() <= Len.lo() - 1;
    if (InBounds)
      ++Sum.Verified;
  }
  return Sum;
}
