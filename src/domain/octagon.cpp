//===-- domain/octagon.cpp - Octagon abstract domain ----------------------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "domain/octagon.h"

#include "cfg/program.h"
#include "domain/linear.h"
#include "support/fault_injection.h"
#include "support/hashing.h"
#include "support/observe.h"
#include "support/statistics.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <sstream>

using namespace dai;

namespace {

constexpr int64_t Inf = Octagon::kPosInf;
constexpr size_t npos = static_cast<size_t>(-1);

/// Bound addition with +∞ absorption. Negative overflow is clamped to a
/// large negative value; with the small constants our statement language
/// produces this is unreachable, and the clamp errs toward ⊥ detection.
int64_t bAdd(int64_t A, int64_t B) {
  if (A == Inf || B == Inf)
    return Inf;
  int64_t R;
  if (__builtin_add_overflow(A, B, &R))
    return (A > 0) ? Inf : INT64_MIN / 4;
  return R;
}

int64_t floorDiv2(int64_t A) {
  if (A == Inf)
    return Inf;
  return A >= 0 ? A / 2 : (A - 1) / 2;
}

} // namespace

namespace {

/// Marks which variables carry at least one constraint — the shared
/// predicate of normalize() (which drops the unconstrained dimensions) and
/// hashNormalized() (which must hash exactly the dimensions normalize would
/// keep). One sweep over the stored cells suffices: every logical non-⊤
/// off-diagonal entry has a stored representative over the same variable
/// pair.
std::vector<bool> constrainedVars(const Octagon &O) {
  size_t Dim = 2 * O.numVars();
  std::vector<bool> Constrained(O.numVars(), false);
  for (size_t I = 0; I < Dim; ++I)
    for (size_t J = 0, JMax = I | 1; J <= JMax; ++J)
      if (I != J && O.at(I, J) != Inf) {
        Constrained[I / 2] = true;
        Constrained[J / 2] = true;
      }
  return Constrained;
}

/// A symbol guaranteed absent from \p O, derived from \p Base. The common
/// case interns nothing new; each collision step interns one more
/// candidate, and candidates are reused process-wide, so the table stays
/// bounded by the worst simultaneous collision depth. The '$' in fallback
/// names cannot appear in a source identifier (see lang/lexer.cpp), so
/// generated names never collide with program variables.
SymbolId freshSymbol(const Octagon &O, const std::string &Base) {
  SymbolId S = internSymbol(Base);
  for (unsigned K = 0; O.varIndex(S) != npos; ++K)
    S = internSymbol(Base + "$" + std::to_string(K));
  return S;
}

} // namespace

size_t Octagon::varIndex(SymbolId Sym) const {
  auto It = std::lower_bound(varList().begin(), varList().end(), Sym);
  if (It == varList().end() || *It != Sym)
    return npos;
  return static_cast<size_t>(It - varList().begin());
}

size_t Octagon::varIndex(const std::string &Var) const {
  SymbolId Sym = lookupSymbol(Var);
  return Sym == kNoSymbol ? npos : varIndex(Sym);
}

void Octagon::setMat(std::vector<int64_t> V) {
  recordDbmAlloc(V.size());
  MPtr = std::make_shared<MatBuf>();
  MPtr->M = std::move(V);
}

void Octagon::resizeFor(size_t NewN, const std::vector<size_t> &OldIndexOfNew) {
  assert(OldIndexOfNew.size() == NewN && "index map must cover new vars");
  // No invalidateDerived() here: the old buffer is only read (sharers keep
  // it, caches intact) and setMat() installs a fresh cache-free buffer.
  const std::vector<int64_t> &OldM = mat();
  size_t NewDim = 2 * NewN;
  std::vector<int64_t> NewM(matSize(NewDim), Inf);
  for (size_t I = 0; I < NewDim; ++I) {
    size_t OldA = OldIndexOfNew[I / 2];
    size_t JMax = I | 1;
    size_t RowBase = matPos(I, 0);
    for (size_t J = 0; J <= JMax; ++J) {
      if (I == J) {
        // Copy a surviving dimension's self-loop rather than forcing 0: a
        // raw-set negative diagonal is pending ⊥ evidence that the next
        // closure must still see (the dense layout preserved it too).
        size_t D = 2 * OldA + (I & 1);
        NewM[RowBase + J] = (OldA == npos) ? 0 : OldM[matPos2(D, D)];
        continue;
      }
      size_t OldB = OldIndexOfNew[J / 2];
      if (OldA == npos || OldB == npos)
        continue; // fresh dimension: stays unconstrained
      NewM[RowBase + J] =
          OldM[matPos2(2 * OldA + (I & 1), 2 * OldB + (J & 1))];
    }
  }
  setMat(std::move(NewM));
}

void Octagon::addVar(SymbolId Sym) {
  if (varIndex(Sym) != npos)
    return;
  std::vector<SymbolId> NewVars = varList();
  NewVars.insert(std::lower_bound(NewVars.begin(), NewVars.end(), Sym), Sym);
  std::vector<size_t> OldIdx(NewVars.size());
  for (size_t K = 0; K < NewVars.size(); ++K)
    OldIdx[K] = (NewVars[K] == Sym) ? npos : varIndex(NewVars[K]);
  resizeFor(NewVars.size(), OldIdx);
  setVars(std::move(NewVars));
  // A fresh unconstrained dimension keeps closedness.
}

void Octagon::forgetAndRemove(SymbolId Sym) {
  size_t Idx = varIndex(Sym);
  if (Idx == npos)
    return;
  // Precision requires propagating Sym's constraints first.
  close();
  if (Bottom)
    return;
  std::vector<SymbolId> NewVars;
  std::vector<size_t> OldIdx;
  for (size_t K = 0; K < numVars(); ++K) {
    if (K == Idx)
      continue;
    NewVars.push_back(varList()[K]);
    OldIdx.push_back(K);
  }
  resizeFor(NewVars.size(), OldIdx);
  setVars(std::move(NewVars));
}

void Octagon::forgetAndRemove(const std::string &Var) {
  // Probing only: forgetting a never-interned name is a no-op and must not
  // grow the intern table.
  SymbolId Sym = lookupSymbol(Var);
  if (Sym != kNoSymbol)
    forgetAndRemove(Sym);
}

void Octagon::forgetInPlace(size_t Idx) {
  assert(Idx < numVars() && "forget index out of range");
  // Propagate Idx's constraints before dropping them (precision), exactly
  // as forgetAndRemove does.
  close();
  if (Bottom)
    return;
  invalidateDerived();
  size_t Dim = 2 * numVars();
  std::vector<int64_t> &MM = matMut();
  // Every stored cell incident to the doubled indices of Idx: the two rows
  // (columns 0..(I|1)) and the two columns (rows with J ≤ (A|1)).
  for (int S = 0; S < 2; ++S) {
    size_t I = 2 * Idx + S;
    size_t RowBase = matPos(I, 0);
    for (size_t J = 0, JMax = I | 1; J <= JMax; ++J)
      MM[RowBase + J] = Inf;
    for (size_t A = 0; A < Dim; ++A)
      if (I <= (A | 1))
        MM[matPos(A, I)] = Inf;
    MM[matPos(I, I)] = 0;
  }
  // Removing constraints from a closed matrix cannot break the closure
  // axioms (every bound on the right of them only grows), so Closed holds.
}

void Octagon::restrictTo(const std::vector<SymbolId> &Keep) {
  std::vector<SymbolId> NewVars;
  std::vector<size_t> OldIdx;
  for (size_t K = 0; K < numVars(); ++K) {
    if (std::find(Keep.begin(), Keep.end(), varList()[K]) == Keep.end())
      continue;
    NewVars.push_back(varList()[K]);
    OldIdx.push_back(K);
  }
  if (NewVars.size() == numVars())
    return; // nothing dropped: projection is the identity
  // Precision requires propagating the dropped variables' constraints first.
  // close() never reindexes, so the kept-index map stays valid unless the
  // value collapses to ⊥ (in which case there is nothing left to project).
  close();
  if (Bottom)
    return;
  resizeFor(NewVars.size(), OldIdx);
  setVars(std::move(NewVars));
}

void Octagon::projectRawTo(const std::vector<SymbolId> &Keep) {
  if (Bottom)
    return;
  std::vector<SymbolId> NewVars;
  std::vector<size_t> OldIdx;
  for (size_t K = 0; K < numVars(); ++K) {
    if (std::find(Keep.begin(), Keep.end(), varList()[K]) == Keep.end())
      continue;
    NewVars.push_back(varList()[K]);
    OldIdx.push_back(K);
  }
  if (NewVars.size() == numVars())
    return;
  resizeFor(NewVars.size(), OldIdx);
  setVars(std::move(NewVars));
}

void Octagon::rename(SymbolId From, SymbolId To) {
  size_t FromIdx = varIndex(From);
  assert(FromIdx != npos && "rename source must exist");
  assert(varIndex(To) == npos && "rename target must be absent");
  std::vector<SymbolId> NewVars = varList();
  NewVars[FromIdx] = To;
  std::sort(NewVars.begin(), NewVars.end());
  std::vector<size_t> OldIdx(NewVars.size());
  for (size_t K = 0; K < NewVars.size(); ++K)
    OldIdx[K] = (NewVars[K] == To) ? FromIdx : varIndex(NewVars[K]);
  resizeFor(NewVars.size(), OldIdx);
  setVars(std::move(NewVars));
}

void Octagon::set(size_t I, size_t J, int64_t V) {
  assert(I < 2 * numVars() && J < 2 * numVars() && "set index out of range");
  size_t Pos = matPos2(I, J);
  if (mat()[Pos] == V)
    return; // no-op write: matrix, caches, and Closed all stay valid
  invalidateDerived();
  matMut()[Pos] = V;
  // Any change breaks the canonical form: a raised entry is looser than
  // what the rest of the matrix implies, a tightened one is unpropagated
  // (and could even hide ⊥), so the flag survives only no-op writes.
  Closed = false;
}

void Octagon::addConstraint(size_t XIdx, bool PosX, size_t YIdx, bool PosY,
                            int64_t C) {
  assert(XIdx < numVars() && "constraint variable out of range");
  invalidateDerived();
  std::vector<int64_t> &MM = matMut();
  auto tighten = [&](size_t I, size_t J, int64_t Bound) {
    int64_t &Slot = MM[matPos2(I, J)];
    if (Bound < Slot)
      Slot = Bound;
  };
  if (YIdx == npos) {
    // ±x ≤ C  ⟺  (±x) − (∓x) ≤ 2C.
    size_t Pos = 2 * XIdx, Neg = 2 * XIdx + 1;
    if (C >= Inf / 2) {
      Closed = false;
      return;
    }
    if (PosX)
      tighten(Neg, Pos, 2 * C);
    else
      tighten(Pos, Neg, 2 * C);
    Closed = false;
    return;
  }
  assert(YIdx < numVars() && "constraint variable out of range");
  assert(XIdx != YIdx && "binary constraints need distinct variables");
  // (±x) + (±y) ≤ C  ⟺  V_a − V_b ≤ C with V_a = ±x and V_b = ∓y. The
  // coherent mirror (ā, b̄) is the same stored cell, so one write covers
  // both orientations.
  size_t A = 2 * XIdx + (PosX ? 0 : 1);
  size_t B = 2 * YIdx + (PosY ? 1 : 0);
  tighten(B, A, C);
  Closed = false;
}

void Octagon::elementwiseMax(const Octagon &O) {
  assert(varList() == O.varList() && "elementwiseMax requires equal vars");
  invalidateDerived();
  std::vector<int64_t> &MM = matMut();
  const std::vector<int64_t> &Theirs = O.mat();
  for (size_t I = 0, E = MM.size(); I < E; ++I)
    if (Theirs[I] > MM[I])
      MM[I] = Theirs[I];
}

void Octagon::widenWith(const Octagon &O) {
  assert(varList() == O.varList() && "widenWith requires equal vars");
  invalidateDerived();
  size_t Dim = 2 * numVars();
  std::vector<int64_t> &MM = matMut();
  const std::vector<int64_t> &Theirs = O.mat();
  for (size_t I = 0, E = MM.size(); I < E; ++I)
    if (Theirs[I] > MM[I])
      MM[I] = Inf;
  // Pin the diagonal (both diagonals are 0 in well-formed inputs; this
  // guards against raw-edited values).
  for (size_t I = 0; I < Dim; ++I)
    MM[matPos(I, I)] = 0;
  Closed = false;
}

void Octagon::pairPivot(size_t VarK, uint64_t &CellsTouched) {
  size_t Dim = 2 * numVars();
  std::vector<int64_t> &MM = matMut();
  const size_t K = 2 * VarK, K1 = K + 1;
  // Snapshot the two pivot rows (the textbook D_{k-1} reads). The four
  // Miné path candidates below include the K↔K1 compositions explicitly,
  // which is what makes the PAIR step correct on a coherent half-matrix: a
  // single-index sweep would apply the pivot to only one orientation of
  // each stored cell. Coherence turns the pivot *columns* into these same
  // rows: m[I][K] = m[K̄][Ī] = RowK1[Ī], and m[I][K1] = RowK[Ī].
  // Scratch rows are thread_local (single-threaded engine per thread, like
  // closureCounters): the pivot kernels run thousands of times per analysis
  // and must not pay a heap allocation each.
  static thread_local std::vector<int64_t> RowK, RowK1;
  RowK.resize(Dim);
  RowK1.resize(Dim);
  for (size_t J = 0; J < Dim; ++J) {
    RowK[J] = MM[matPos2(K, J)];
    RowK1[J] = MM[matPos2(K1, J)];
  }
  const int64_t KK1 = RowK[K1]; // m[K][K+1]
  const int64_t K1K = RowK1[K]; // m[K+1][K]
  for (size_t I = 0; I < Dim; ++I) {
    const int64_t IK = RowK1[I ^ 1];
    const int64_t IK1 = RowK[I ^ 1];
    // Cheapest way from I into each pivot, allowing the K↔K1 hop; combined
    // with the pivot rows below this realizes all four candidates
    // I→K→J, I→K1→J, I→K→K1→J, I→K1→K→J.
    const int64_t BestIK = std::min(IK, bAdd(IK1, K1K));
    const int64_t BestIK1 = std::min(IK1, bAdd(IK, KK1));
    if (BestIK == Inf && BestIK1 == Inf)
      continue;
    const size_t JMax = I | 1;
    const size_t RowBase = matPos(I, 0);
    for (size_t J = 0; J <= JMax; ++J) {
      const int64_t Cand =
          std::min(bAdd(BestIK, RowK[J]), bAdd(BestIK1, RowK1[J]));
      int64_t &Slot = MM[RowBase + J];
      if (Cand < Slot) {
        Slot = Cand;
        ++CellsTouched;
      }
    }
  }
}

bool Octagon::strengthenAndCheckEmpty(uint64_t &CellsTouched) {
  size_t Dim = 2 * numVars();
  std::vector<int64_t> &MM = matMut();
  // Strengthening: combine the two unary constraints through i and j̄.
  // Snapshotting ⌊m[i][ī]/2⌋ up front matches the in-place dense sweep
  // exactly: strengthening a unary cell rewrites it to 2·⌊·/2⌋, which is a
  // fixed point of floorDiv2, so pre- and post-update reads agree.
  static thread_local std::vector<int64_t> Unary; // see pairPivot's scratch
  Unary.resize(Dim);
  for (size_t I = 0; I < Dim; ++I)
    Unary[I] = floorDiv2(MM[matPos2(I, I ^ 1)]);
  for (size_t I = 0; I < Dim; ++I) {
    const int64_t HalfI = Unary[I];
    if (HalfI == Inf)
      continue; // every candidate in this row is +∞
    const size_t JMax = I | 1;
    const size_t RowBase = matPos(I, 0);
    for (size_t J = 0; J <= JMax; ++J) {
      int64_t Cand = bAdd(HalfI, Unary[J ^ 1]);
      int64_t &Slot = MM[RowBase + J];
      if (Cand < Slot) {
        Slot = Cand;
        ++CellsTouched;
      }
    }
  }
  // Emptiness: a negative self-loop.
  for (size_t I = 0; I < Dim; ++I) {
    int64_t &D = MM[matPos(I, I)];
    if (D < 0) {
      *this = bottomValue();
      return false;
    }
    D = 0;
  }
  return true;
}

void Octagon::close() {
  DAI_FAULT_POINT(Closure); // at entry: matrix and Closed flag untouched
  if (Bottom)
    return;
  if (Closed) {
    ++closureCounters().ClosesSkipped;
    return;
  }
  if (MPtr && MPtr->ClosedCache) {
    // Another consumer already closed this matrix: adopt its result.
    std::shared_ptr<const Octagon> Cache = MPtr->ClosedCache; // keep alive
    ++closureCounters().CachedCloses;
    *this = *Cache;
    return;
  }
  size_t N = numVars();
  if (N == 0) {
    Closed = true;
    return;
  }
  ++closureCounters().FullCloses;
  TraceSpan Sp("oct.close_full", N);
  uint64_t Touched = 0;
  for (size_t V = 0; V < N; ++V)
    pairPivot(V, Touched);
  bool NonEmpty = strengthenAndCheckEmpty(Touched);
  closureCounters().CellsTouched += Touched;
  if (!NonEmpty)
    return;
  Closed = true;
}

void Octagon::closeIncremental(size_t XIdx, size_t YIdx) {
  DAI_FAULT_POINT(Closure); // at entry: matrix and Closed flag untouched
  if (Bottom)
    return;
  if (Closed) {
    // addConstraint always clears the flag, so this only happens when a
    // caller re-closes defensively; count it with the other skips.
    ++closureCounters().ClosesSkipped;
    return;
  }
  if (numVars() == 0) {
    Closed = true;
    return;
  }
  assert(XIdx < numVars() && "pivot variable out of range");
  invalidateDerived(); // the pivot sweeps below write M directly
  ++closureCounters().IncrementalCloses;
  TraceSpan Sp("oct.close_incr", numVars());
  uint64_t Touched = 0;
  // Every tightened edge is incident to the doubled indices of x (and y),
  // so any path improved by the new constraints decomposes into old
  // shortest-path segments joined at those ≤4 vertices: running the pair
  // pivot step for just these variables restores exact shortest paths in
  // O(n²) (each pair is processed once; order is irrelevant).
  pairPivot(XIdx, Touched);
  if (YIdx != npos) {
    assert(YIdx < numVars() && "pivot variable out of range");
    pairPivot(YIdx, Touched);
  }
  bool NonEmpty = strengthenAndCheckEmpty(Touched);
  closureCounters().CellsTouched += Touched;
  if (!NonEmpty)
    return;
  Closed = true;
}

void Octagon::closeIncrementalMulti(const std::vector<size_t> &Idxs) {
  DAI_FAULT_POINT(Closure); // at entry: matrix and Closed flag untouched
  if (Bottom)
    return;
  if (Closed) {
    ++closureCounters().ClosesSkipped;
    return;
  }
  if (numVars() == 0) {
    Closed = true;
    return;
  }
  // Deduplicate: pivoting a variable twice in one pass is wasted work (the
  // second sweep finds nothing to tighten). Sorting keeps the pivot order
  // deterministic regardless of the caller's collection order.
  static thread_local std::vector<size_t> Pivots; // scratch, see pairPivot
  Pivots.assign(Idxs.begin(), Idxs.end());
  std::sort(Pivots.begin(), Pivots.end());
  Pivots.erase(std::unique(Pivots.begin(), Pivots.end()), Pivots.end());
  if (Pivots.empty())
    return; // no touched variables: nothing this closure could restore
  invalidateDerived(); // the pivot sweeps below write M directly
  ++closureCounters().IncrementalCloses;
  TraceSpan Sp("oct.close_incr", numVars(), Pivots.size());
  uint64_t Touched = 0;
  for (size_t Idx : Pivots) {
    assert(Idx < numVars() && "pivot variable out of range");
    pairPivot(Idx, Touched);
  }
  bool NonEmpty = strengthenAndCheckEmpty(Touched);
  closureCounters().CellsTouched += Touched;
  if (!NonEmpty)
    return;
  Closed = true;
}

const Octagon &Octagon::closedView() const {
  if (Bottom || Closed)
    return *this;
  if (numVars() == 0) {
    // Unclosed but zero-variable: the closure is the empty ⊤. Handled
    // before touching MPtr — caching a copy here would let close()'s
    // zero-dimension early-return keep sharing this buffer and form a
    // MatBuf→Octagon→MatBuf cycle (a leak).
    static const Octagon EmptyClosed;
    return EmptyClosed;
  }
  if (!MPtr->ClosedCache) {
    auto C = std::make_shared<Octagon>(*this); // close() un-shares C's buffer
    C->close();
    MPtr->ClosedCache = std::move(C);
  } else {
    ++closureCounters().CachedCloses;
  }
  return *MPtr->ClosedCache;
}

Interval Octagon::boundsOf(SymbolId Sym) const {
  assert(!Bottom && "boundsOf on ⊥");
  size_t Idx = varIndex(Sym);
  if (Idx == npos)
    return Interval::top();
  int64_t UpperRaw = mat()[matPos2(2 * Idx + 1, 2 * Idx)]; // 2x ≤ UpperRaw
  int64_t LowerRaw = mat()[matPos2(2 * Idx, 2 * Idx + 1)]; // −2x ≤ LowerRaw
  int64_t Hi = (UpperRaw == Inf) ? Interval::kPosInf : floorDiv2(UpperRaw);
  int64_t Lo = (LowerRaw == Inf) ? Interval::kNegInf : -floorDiv2(LowerRaw);
  return Interval::range(Lo, Hi);
}

Interval Octagon::boundsOf(const std::string &Var) const {
  SymbolId Sym = lookupSymbol(Var);
  return Sym == kNoSymbol ? Interval::top() : boundsOf(Sym);
}

Interval Octagon::sumBounds(SymbolId X, SymbolId Y) const {
  assert(!Bottom && "sumBounds on ⊥");
  assert(Closed && "sumBounds requires a closed receiver");
  if (X == Y) {
    Interval B = boundsOf(X);
    return B.add(B); // 2x
  }
  size_t I = varIndex(X), J = varIndex(Y);
  if (I == npos || J == npos)
    return boundsOf(X).add(boundsOf(Y)); // at least one operand is ⊤
  // (+x) − (−y) = x + y ≤ at(2j+1, 2i); (−x) − (+y) = −x − y ≤ at(2j, 2i+1).
  int64_t Up = at(2 * J + 1, 2 * I);
  int64_t Dn = at(2 * J, 2 * I + 1);
  return Interval::range(Dn == Inf ? Interval::kNegInf : -Dn,
                         Up == Inf ? Interval::kPosInf : Up);
}

Interval Octagon::diffBounds(SymbolId X, SymbolId Y) const {
  assert(!Bottom && "diffBounds on ⊥");
  assert(Closed && "diffBounds requires a closed receiver");
  if (X == Y)
    return Interval::constant(0);
  size_t I = varIndex(X), J = varIndex(Y);
  if (I == npos || J == npos)
    return boundsOf(X).sub(boundsOf(Y));
  // (+x) − (+y) = x − y ≤ at(2j, 2i); (−x) − (−y) = y − x ≤ at(2j+1, 2i+1).
  int64_t Up = at(2 * J, 2 * I);
  int64_t Dn = at(2 * J + 1, 2 * I + 1);
  return Interval::range(Dn == Inf ? Interval::kNegInf : -Dn,
                         Up == Inf ? Interval::kPosInf : Up);
}

bool Octagon::entailsEntrywise(const Octagon &O) const {
  // "this" must be closed; checks closed(this) ⊑ O entrywise over O's vars.
  // Sweeping O's STORED cells covers every logical entry: both matrices are
  // coherent, and the coherence involution maps stored cells onto the
  // mirrored logical half.
  size_t ODim = 2 * O.numVars();
  const std::vector<int64_t> &TheirM = O.mat();
  // Hoist the symbol→index translation out of the quadratic loop.
  std::vector<size_t> MyIdx(O.numVars());
  for (size_t A = 0; A < O.numVars(); ++A)
    MyIdx[A] = varIndex(O.varList()[A]);
  for (size_t OI = 0; OI < ODim; ++OI) {
    size_t MyA = MyIdx[OI / 2];
    size_t JMax = OI | 1;
    size_t RowBase = matPos(OI, 0);
    for (size_t OJ = 0; OJ <= JMax; ++OJ) {
      int64_t Theirs = TheirM[RowBase + OJ];
      if (Theirs == Inf)
        continue;
      int64_t Mine;
      if (OI == OJ)
        Mine = 0;
      else if (MyA != npos && MyIdx[OJ / 2] != npos)
        Mine = mat()[matPos2(2 * MyA + (OI & 1),
                             2 * MyIdx[OJ / 2] + (OJ & 1))];
      else
        Mine = Inf;
      if (Mine > Theirs)
        return false;
    }
  }
  return true;
}

uint64_t Octagon::hash() const {
  if (Bottom)
    return 0x0c7a60b07700ULL;
  uint64_t H = 0x8f1bbcdc12345678ULL;
  for (SymbolId V : varList())
    H = hashCombine(H, static_cast<uint64_t>(V));
  for (int64_t E : mat())
    H = hashCombine(H, static_cast<uint64_t>(E));
  return H;
}

uint64_t Octagon::hashNormalized() const {
  assert((Bottom || Closed) && "hashNormalized requires a closed receiver");
  if (Bottom)
    return 0x0c7a60b07700ULL;
  if (MPtr && MPtr->NormHashValid)
    return MPtr->NormHash;
  // Kept = dimensions with at least one constraint (normalize()'s
  // predicate, shared via constrainedVars so the two can't drift apart).
  std::vector<bool> Constrained = constrainedVars(*this);
  std::vector<size_t> Kept;
  for (size_t K = 0; K < numVars(); ++K)
    if (Constrained[K])
      Kept.push_back(K);
  // Identical traversal order to hash() over the restricted half-matrix
  // (kept ids ascending, then the restricted storage in row-major order).
  uint64_t H = 0x8f1bbcdc12345678ULL;
  for (size_t K : Kept)
    H = hashCombine(H, static_cast<uint64_t>(varList()[K]));
  size_t KDim = 2 * Kept.size();
  for (size_t NI = 0; NI < KDim; ++NI) {
    size_t OldI = 2 * Kept[NI / 2] + (NI & 1);
    for (size_t NJ = 0, JMax = NI | 1; NJ <= JMax; ++NJ) {
      size_t OldJ = 2 * Kept[NJ / 2] + (NJ & 1);
      H = hashCombine(H, static_cast<uint64_t>(mat()[matPos2(OldI, OldJ)]));
    }
  }
  if (MPtr) {
    MPtr->NormHash = H;
    MPtr->NormHashValid = true;
  }
  return H;
}

std::string Octagon::toString() const {
  if (Bottom)
    return "⊥";
  std::ostringstream OS;
  OS << "{";
  bool First = true;
  auto emit = [&](const std::string &Text) {
    if (!First)
      OS << ", ";
    First = false;
    OS << Text;
  };
  for (size_t I = 0; I < numVars(); ++I) {
    const std::string &NameI = symbolName(varList()[I]);
    Interval B = boundsOf(varList()[I]);
    if (!B.isTop())
      emit(NameI + " in " + B.toString());
    for (size_t J = I + 1; J < numVars(); ++J) {
      const std::string &NameJ = symbolName(varList()[J]);
      // x_J − x_I ≤ c and x_I + x_J ≤ c forms, both signs.
      int64_t Diff = at(2 * I, 2 * J);
      if (Diff != Inf)
        emit(NameJ + " - " + NameI + " <= " + std::to_string(Diff));
      int64_t RevDiff = at(2 * J, 2 * I);
      if (RevDiff != Inf)
        emit(NameI + " - " + NameJ + " <= " + std::to_string(RevDiff));
      int64_t Sum = at(2 * I + 1, 2 * J);
      if (Sum != Inf)
        emit(NameI + " + " + NameJ + " <= " + std::to_string(Sum));
      int64_t NegSum = at(2 * I, 2 * J + 1);
      if (NegSum != Inf)
        emit("-" + NameI + " - " + NameJ + " <= " + std::to_string(NegSum));
    }
  }
  OS << "}";
  return OS.str();
}

//===----------------------------------------------------------------------===//
// OctagonDomain
//===----------------------------------------------------------------------===//

namespace {

/// Projects the octagon onto per-variable intervals (for the interval
/// fallback on non-octagonal expressions). Requires \p O closed. Both
/// sides of this interface are SymbolId-keyed, so no strings are touched.
IntervalState toIntervalState(const Octagon &O) {
  IntervalState S;
  if (O.isBottom()) {
    S.Bottom = true;
    return S;
  }
  for (SymbolId V : O.vars())
    S.set(V, VarAbs::numeric(O.boundsOf(V)));
  return S;
}

/// Drops unconstrained dimensions so structurally distinct but equal values
/// share a representation (helps memo-table reuse; equality itself is
/// semantic). Requires closedness for meaningful results.
void normalize(Octagon &O) {
  O.close();
  if (O.isBottom())
    return;
  std::vector<bool> Constrained = constrainedVars(O);
  std::vector<SymbolId> Keep;
  for (size_t K = 0; K < O.numVars(); ++K)
    if (Constrained[K])
      Keep.push_back(O.vars()[K]);
  if (Keep.size() != O.numVars())
    O.restrictTo(Keep);
}

/// Assigns x := e precisely for octagonal right-hand sides, with an interval
/// fallback otherwise. \p O must be closed on entry; closed on exit.
void evalAssign(Octagon &O, SymbolId X, const ExprPtr &E) {
  LinForm F = linearize(E);
  bool Octagonal = F.Ok && F.Coeffs.size() <= 1 &&
                   (F.Coeffs.empty() || std::abs(F.Coeffs.begin()->second) == 1);
  auto havocOrAdd = [&O](SymbolId V) {
    size_t Idx = O.varIndex(V);
    if (Idx == npos) {
      O.addVar(V);
      return O.varIndex(V);
    }
    O.forgetInPlace(Idx); // in place: no dimension resize
    return Idx;
  };
  if (Octagonal && F.Coeffs.empty()) {
    // x := c. havoc/addVar keep the value closed, so the two unary
    // constraints on x re-close incrementally.
    size_t XI = havocOrAdd(X);
    O.addConstraint(XI, /*PosX=*/true, npos, true, F.Const);
    O.addConstraint(XI, /*PosX=*/false, npos, true, -F.Const);
    O.closeIncremental(XI);
    return;
  }
  if (Octagonal) {
    SymbolId Y = F.Coeffs.begin()->first;
    bool PosY = F.Coeffs.begin()->second > 0;
    if (Y != X) {
      if (O.varIndex(Y) == npos)
        O.addVar(Y);
      size_t XI = havocOrAdd(X), YI = O.varIndex(Y);
      // x − (±y) ≤ c and −x + (±y) ≤ −c.
      O.addConstraint(XI, true, YI, !PosY, F.Const);
      O.addConstraint(XI, false, YI, PosY, -F.Const);
      O.closeIncremental(XI, YI);
      return;
    }
    // x := ±x + c via a temporary dimension whose symbol is guaranteed not
    // to collide with a program variable (a variable literally named
    // "__oct_tmp" must survive this path unscathed).
    if (O.varIndex(X) == npos)
      O.addVar(X); // untracked x: npos would read as a UNARY constraint on
                   // tmp below, pinning x := x + c to the constant c
    SymbolId Tmp = freshSymbol(O, "__oct_tmp");
    O.addVar(Tmp);
    size_t TI = O.varIndex(Tmp), XI = O.varIndex(X);
    O.addConstraint(TI, true, XI, !PosY, F.Const);
    O.addConstraint(TI, false, XI, PosY, -F.Const);
    O.closeIncremental(TI, XI);
    O.forgetAndRemove(X);
    O.rename(Tmp, X);
    return;
  }
  // Interval fallback: bound x by the interval of e.
  Interval I = IntervalDomain::eval(E, toIntervalState(O)).Num;
  if (I.isEmpty()) {
    // e has NO possible value (e.g. a division by exactly zero): the
    // assignment cannot execute, so the whole state is unreachable — the
    // opposite of havocking x.
    O = Octagon::bottomValue();
    return;
  }
  if (!I.isTop()) {
    size_t XI = havocOrAdd(X);
    if (I.hi() != Interval::kPosInf)
      O.addConstraint(XI, true, npos, true, I.hi());
    if (I.lo() != Interval::kNegInf)
      O.addConstraint(XI, false, npos, true, -I.lo());
    O.closeIncremental(XI);
  } else {
    O.forgetAndRemove(X); // unconstrained: drop the dimension entirely
  }
}

/// Adds the linear inequality F ≤ 0 when it is octagonal; returns false if
/// the form is not representable (caller falls back to intervals).
bool addLinearLeqZero(Octagon &O, const LinForm &F) {
  if (!F.Ok || F.Coeffs.size() > 2)
    return false;
  for (const auto &[V, C] : F.Coeffs)
    if (C != 1 && C != -1)
      return false;
  int64_t Bound = -F.Const; // Σ ±v ≤ −Const.
  if (F.Coeffs.empty()) {
    if (0 > Bound)
      O = Octagon::bottomValue();
    return true;
  }
  for (const auto &[V, C] : F.Coeffs) {
    (void)C;
    if (O.varIndex(V) == npos)
      O.addVar(V);
  }
  // O is closed on entry (assume() closes its input; addVar preserves
  // closure), so one incremental re-closure suffices.
  auto It = F.Coeffs.begin();
  if (F.Coeffs.size() == 1) {
    size_t XI = O.varIndex(It->first);
    O.addConstraint(XI, It->second > 0, npos, true, Bound);
    O.closeIncremental(XI);
  } else {
    auto It2 = std::next(It);
    size_t XI = O.varIndex(It->first), YI = O.varIndex(It2->first);
    O.addConstraint(XI, It->second > 0, YI, It2->second > 0, Bound);
    O.closeIncremental(XI, YI);
  }
  return true;
}

} // namespace

bool OctagonDomain::isBottom(const Elem &A) {
  if (A.Bottom)
    return true;
  if (A.isClosed())
    return false;
  return A.closedView().isBottom();
}

Octagon OctagonDomain::initialEntry(const std::vector<std::string> &) {
  return Octagon::top();
}

Octagon OctagonDomain::assume(const Elem &In, const ExprPtr &Cond) {
  if (In.Bottom || !Cond)
    return In;
  switch (Cond->Kind) {
  case ExprKind::BoolLit:
    return Cond->BoolVal ? In : bottom();
  case ExprKind::IntLit:
    return Cond->IntVal != 0 ? In : bottom();
  case ExprKind::Unary:
    if (Cond->UOp == UnaryOp::Not)
      return assume(In, negate(Cond->Lhs));
    return In;
  case ExprKind::Var:
    return assume(In, Expr::mkBinary(BinaryOp::Ne, Cond, Expr::mkInt(0)));
  case ExprKind::Binary: {
    if (Cond->BOp == BinaryOp::And)
      return assume(assume(In, Cond->Lhs), Cond->Rhs);
    if (Cond->BOp == BinaryOp::Or)
      return join(assume(In, Cond->Lhs), assume(In, Cond->Rhs));
    if (!isComparison(Cond->BOp))
      return In;
    Octagon Out = In.closedView();
    if (Out.isBottom())
      return Out;
    // Null comparisons carry no octagonal content.
    if ((Cond->Lhs && Cond->Lhs->Kind == ExprKind::NullLit) ||
        (Cond->Rhs && Cond->Rhs->Kind == ExprKind::NullLit))
      return Out;
    LinForm L = linearize(Cond->Lhs), R = linearize(Cond->Rhs);
    if (L.Ok && R.Ok) {
      LinForm Diff = L.plus(R, -1); // L − R
      bool Handled = true;
      switch (Cond->BOp) {
      case BinaryOp::Le:
        Handled = addLinearLeqZero(Out, Diff);
        break;
      case BinaryOp::Lt:
        Handled = addLinearLeqZero(Out, Diff.plus(LinForm::constant(1), 1));
        break;
      case BinaryOp::Ge:
        Handled = addLinearLeqZero(Out, Diff.scaled(-1));
        break;
      case BinaryOp::Gt:
        Handled = addLinearLeqZero(
            Out, Diff.scaled(-1).plus(LinForm::constant(1), 1));
        break;
      case BinaryOp::Eq:
        Handled = addLinearLeqZero(Out, Diff) &&
                  (Out.isBottom() || addLinearLeqZero(Out, Diff.scaled(-1)));
        break;
      case BinaryOp::Ne:
        Handled = false; // disequality: fall through to interval check
        break;
      default:
        Handled = false;
      }
      if (Handled)
        return Out;
    }
    // Fallback: consult the interval projection; import refined unary
    // bounds and detect definite falsity.
    IntervalState Proj = toIntervalState(Out);
    IntervalState Refined = IntervalDomain::assume(Proj, Cond);
    if (Refined.Bottom)
      return bottom();
    // Import every refined unary bound into the (closed) receiver first,
    // then restore closure with ONE k-pivot sweep over the touched
    // variables: an assume chain refining k variables pays a single
    // O(k·n²) pass instead of k separate re-closures.
    std::vector<size_t> TouchedIdxs;
    for (const auto &[Var, V] : Refined.Env) {
      size_t Idx = Out.varIndex(Var);
      if (Idx == npos)
        continue;
      bool Tightened = false;
      if (V.Num.hi() != Interval::kPosInf) {
        Out.addConstraint(Idx, true, npos, true, V.Num.hi());
        Tightened = true;
      }
      if (V.Num.lo() != Interval::kNegInf) {
        Out.addConstraint(Idx, false, npos, true, -V.Num.lo());
        Tightened = true;
      }
      if (Tightened)
        TouchedIdxs.push_back(Idx);
    }
    if (!TouchedIdxs.empty())
      Out.closeIncrementalMulti(TouchedIdxs);
    return Out;
  }
  default:
    return In;
  }
}

Octagon OctagonDomain::transfer(const Stmt &S, const Elem &In) {
  if (In.Bottom)
    return In;
  Octagon Out = In.closedView();
  if (Out.isBottom())
    return Out;
  switch (S.Kind) {
  case StmtKind::Skip:
  case StmtKind::Print:
  case StmtKind::FieldWrite:
  case StmtKind::ArrayWrite: // array contents are not tracked relationally
    return Out;
  case StmtKind::Alloc:
  case StmtKind::Call:
    Out.forgetAndRemove(S.Lhs);
    normalize(Out);
    return Out;
  case StmtKind::Assign:
    evalAssign(Out, internSymbol(S.Lhs), S.Rhs);
    normalize(Out);
    return Out;
  case StmtKind::Assume:
  case StmtKind::Assert: { // Aborts on failure: the condition holds after.
    Octagon R = assume(Out, S.Rhs);
    normalize(R);
    return R;
  }
  }
  return Out;
}

Octagon OctagonDomain::join(const Elem &A, const Elem &B) {
  // Close each input exactly once (the old path closed twice: once inside
  // the isBottom probe and again on the local copy).
  Octagon CA = A.closedView();
  if (CA.isBottom())
    return B;
  const Octagon &CB = B.closedView();
  if (CB.isBottom())
    return CA;
  // Fast path: identical variable sets (the steady state under normalize)
  // need no projection and can tighten CA in place against CB directly.
  if (CA.vars() == CB.vars()) {
    CA.elementwiseMax(CB);
    CA.Closed = true; // elementwise max of two closed DBMs remains closed
    normalize(CA);
    return CA;
  }
  // Join over the common variable set (absent = unconstrained).
  std::vector<SymbolId> Common;
  for (SymbolId V : CA.vars())
    if (CB.varIndex(V) != npos)
      Common.push_back(V);
  CA.restrictTo(Common);
  Octagon CBR = CB;
  CBR.restrictTo(Common);
  CA.elementwiseMax(CBR);
  // Elementwise max of two closed DBMs remains closed.
  CA.Closed = true;
  normalize(CA);
  return CA;
}

Octagon OctagonDomain::widen(const Elem &Prev, const Elem &Next) {
  if (Prev.Bottom)
    return Next;
  Octagon NC = Next.closedView();
  if (NC.isBottom())
    return Prev;
  // The previous iterate must stay UNCLOSED on the left of ∇ for
  // convergence; projectRawTo drops dimensions without closing (dropping
  // is sound for widening).
  Octagon P = Prev;
  std::vector<SymbolId> Common;
  for (SymbolId V : P.vars())
    if (NC.varIndex(V) != npos)
      Common.push_back(V);
  P.projectRawTo(Common);
  NC.restrictTo(Common);
  P.widenWith(NC);
  return P;
}

bool OctagonDomain::leq(const Elem &A, const Elem &B) {
  // Close A exactly once, copying only when it is an (unclosed) widening
  // iterate; the old path copied and closed once for the ⊥ probe and a
  // second time for the entailment check.
  const Octagon &CA = A.closedView();
  if (CA.isBottom())
    return true;
  if (isBottom(B))
    return false;
  return CA.entailsEntrywise(B);
}

bool OctagonDomain::equal(const Elem &A, const Elem &B) {
  return leq(A, B) && leq(B, A);
}

uint64_t OctagonDomain::hash(const Elem &A) {
  // Equivalent to normalize-then-hash, but without copying the matrix:
  // closedView() shares the cached closure and hashNormalized() skips
  // unconstrained dimensions in place.
  return A.closedView().hashNormalized();
}

std::string OctagonDomain::toString(const Elem &A) {
  return A.closedView().toString();
}

Octagon OctagonDomain::enterCall(const Elem &Caller, const Stmt &CallSite,
                                 const std::vector<std::string> &CalleeParams) {
  if (isBottom(Caller))
    return bottom();
  assert(CallSite.Kind == StmtKind::Call && "enterCall requires a call site");
  // Bind temporaries to the actuals inside the caller state, project onto
  // them, then rename to the formals — this preserves relations *among*
  // parameters (e.g. f(i, i+1) enters with p1 − p0 = 1).
  Octagon Tmp = Caller.closedView();
  if (Tmp.isBottom())
    return bottom();
  // The temporaries use '$' names (unspellable as source identifiers), so a
  // program variable named "__arg0" in the caller — or among the actuals
  // still to be evaluated — can never be clobbered by them; freshSymbol
  // additionally guards against any other occupant of the dimension.
  std::vector<SymbolId> TmpSyms;
  for (size_t I = 0, E = CalleeParams.size(); I != E; ++I) {
    SymbolId TmpSym = freshSymbol(Tmp, "__arg$" + std::to_string(I));
    TmpSyms.push_back(TmpSym);
    if (I < CallSite.Args.size())
      evalAssign(Tmp, TmpSym, CallSite.Args[I]);
  }
  Tmp.restrictTo(TmpSyms);
  for (size_t I = 0, E = CalleeParams.size(); I != E; ++I)
    if (Tmp.varIndex(TmpSyms[I]) != npos)
      Tmp.rename(TmpSyms[I], internSymbol(CalleeParams[I]));
  normalize(Tmp);
  return Tmp;
}

Octagon OctagonDomain::exitCall(const Elem &Caller, const Elem &CalleeExit,
                                const Stmt &CallSite) {
  if (isBottom(Caller))
    return bottom();
  if (isBottom(CalleeExit))
    return bottom(); // The call never returns.
  assert(CallSite.Kind == StmtKind::Call && "exitCall requires a call site");
  Octagon Out = Caller.closedView();
  const Octagon &CE = CalleeExit.closedView();
  // Import the return value's interval (relations between callee locals and
  // caller locals are not representable without a combined frame).
  Interval Ret = CE.boundsOf(RetVar);
  Out.forgetAndRemove(CallSite.Lhs);
  if (!Ret.isTop() && !Ret.isEmpty()) {
    Out.addVar(CallSite.Lhs);
    size_t Idx = Out.varIndex(CallSite.Lhs);
    if (Ret.hi() != Interval::kPosInf)
      Out.addConstraint(Idx, true, npos, true, Ret.hi());
    if (Ret.lo() != Interval::kNegInf)
      Out.addConstraint(Idx, false, npos, true, -Ret.lo());
    Out.closeIncremental(Idx);
  }
  normalize(Out);
  return Out;
}
