//===-- domain/constprop.h - Flat constant-propagation domain ---*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Flat constant propagation: each variable maps to ⊥ < c < ⊤ in the flat
/// lattice of integer constants. Finite height, so join doubles as a valid
/// widening. This domain exists primarily to exercise the framework's
/// no-widening-needed path in tests and to serve as a cheap reference domain
/// in property tests (from-scratch consistency over random programs).
///
//===----------------------------------------------------------------------===//

#ifndef DAI_DOMAIN_CONSTPROP_H
#define DAI_DOMAIN_CONSTPROP_H

#include "domain/abstract_domain.h"
#include "domain/symbol.h"
#include "cfg/program.h"
#include "support/hashing.h"

#include <map>
#include <optional>
#include <sstream>
#include <string>

namespace dai {

/// ⊥ or a finite map var → constant (absent = ⊤). Keyed by interned
/// SymbolIds like the other domain-state maps (see domain/symbol.h); the
/// string overloads intern on writes and probe without interning on reads.
struct ConstState {
  bool Bottom = false;
  std::map<SymbolId, int64_t> Env;

  std::optional<int64_t> get(SymbolId Sym) const {
    auto It = Env.find(Sym);
    if (It == Env.end())
      return std::nullopt;
    return It->second;
  }
  std::optional<int64_t> get(const std::string &Var) const {
    SymbolId Sym = lookupSymbol(Var);
    return Sym == kNoSymbol ? std::nullopt : get(Sym);
  }
  void setVar(const std::string &Var, int64_t V) {
    Env[internSymbol(Var)] = V;
  }
  void eraseVar(const std::string &Var) {
    SymbolId Sym = lookupSymbol(Var);
    if (Sym != kNoSymbol)
      Env.erase(Sym);
  }
};

/// The flat constants domain policy (satisfies AbstractDomain).
struct ConstPropDomain {
  using Elem = ConstState;

  static Elem bottom() {
    Elem E;
    E.Bottom = true;
    return E;
  }

  static Elem initialEntry(const std::vector<std::string> &) { return Elem(); }

  static bool isBottom(const Elem &A) { return A.Bottom; }

  /// Evaluates \p E to a constant if possible.
  static std::optional<int64_t> eval(const ExprPtr &E, const Elem &S) {
    if (!E)
      return std::nullopt;
    switch (E->Kind) {
    case ExprKind::IntLit:
      return E->IntVal;
    case ExprKind::BoolLit:
      return E->BoolVal ? 1 : 0;
    case ExprKind::Var:
      return S.get(E->Name);
    case ExprKind::Unary: {
      auto V = eval(E->Lhs, S);
      if (!V)
        return std::nullopt;
      return E->UOp == UnaryOp::Neg ? -*V : (*V == 0 ? 1 : 0);
    }
    case ExprKind::Binary: {
      auto L = eval(E->Lhs, S), R = eval(E->Rhs, S);
      if (!L || !R)
        return std::nullopt;
      switch (E->BOp) {
      case BinaryOp::Add: return *L + *R;
      case BinaryOp::Sub: return *L - *R;
      case BinaryOp::Mul: return *L * *R;
      case BinaryOp::Div: return *R == 0 ? std::nullopt : std::optional(*L / *R);
      case BinaryOp::Mod: return *R == 0 ? std::nullopt : std::optional(*L % *R);
      case BinaryOp::Lt: return *L < *R ? 1 : 0;
      case BinaryOp::Le: return *L <= *R ? 1 : 0;
      case BinaryOp::Gt: return *L > *R ? 1 : 0;
      case BinaryOp::Ge: return *L >= *R ? 1 : 0;
      case BinaryOp::Eq: return *L == *R ? 1 : 0;
      case BinaryOp::Ne: return *L != *R ? 1 : 0;
      case BinaryOp::And: return (*L != 0 && *R != 0) ? 1 : 0;
      case BinaryOp::Or: return (*L != 0 || *R != 0) ? 1 : 0;
      }
      return std::nullopt;
    }
    default:
      return std::nullopt; // arrays / heap: not tracked
    }
  }

  static Elem transfer(const Stmt &S, const Elem &In) {
    if (In.Bottom)
      return In;
    Elem Out = In;
    switch (S.Kind) {
    case StmtKind::Skip:
    case StmtKind::Print:
    case StmtKind::FieldWrite:
    case StmtKind::ArrayWrite:
      return Out;
    case StmtKind::Alloc:
    case StmtKind::Call:
      Out.eraseVar(S.Lhs);
      return Out;
    case StmtKind::Assign: {
      if (auto V = eval(S.Rhs, In))
        Out.setVar(S.Lhs, *V);
      else
        Out.eraseVar(S.Lhs);
      return Out;
    }
    case StmtKind::Assume:
    case StmtKind::Assert: { // Aborts on failure: the condition holds after.
      auto V = eval(S.Rhs, In);
      if (V && *V == 0)
        return bottom();
      // Refine equalities `x == c` / truthy conjunctions.
      refine(Out, S.Rhs);
      return Out;
    }
    }
    return Out;
  }

  static Elem join(const Elem &A, const Elem &B) {
    if (A.Bottom)
      return B;
    if (B.Bottom)
      return A;
    Elem R;
    for (const auto &[Var, VA] : A.Env) {
      auto It = B.Env.find(Var);
      if (It != B.Env.end() && It->second == VA)
        R.Env[Var] = VA;
    }
    return R;
  }

  // Finite height: join is a valid widening.
  static Elem widen(const Elem &Prev, const Elem &Next) {
    return join(Prev, Next);
  }

  static bool leq(const Elem &A, const Elem &B) {
    if (A.Bottom)
      return true;
    if (B.Bottom)
      return false;
    for (const auto &[Var, VB] : B.Env) {
      auto VA = A.get(Var);
      if (!VA || *VA != VB)
        return false;
    }
    return true;
  }

  static bool equal(const Elem &A, const Elem &B) {
    if (A.Bottom || B.Bottom)
      return A.Bottom == B.Bottom;
    return A.Env == B.Env;
  }

  static uint64_t hash(const Elem &A) {
    if (A.Bottom)
      return 0xb0770f000000ULL;
    uint64_t H = 0x5bd1e995cb1ab31fULL;
    for (const auto &[Var, V] : A.Env) {
      H = hashCombine(H, static_cast<uint64_t>(Var));
      H = hashCombine(H, static_cast<uint64_t>(V));
    }
    return H;
  }

  static std::string toString(const Elem &A) {
    if (A.Bottom)
      return "⊥";
    std::ostringstream OS;
    OS << "{";
    bool First = true;
    for (const auto &[Var, V] : A.Env) {
      if (!First)
        OS << ", ";
      First = false;
      OS << symbolName(Var) << "=" << V;
    }
    OS << "}";
    return OS.str();
  }

  static const char *name() { return "constprop"; }

  static Elem enterCall(const Elem &Caller, const Stmt &CallSite,
                        const std::vector<std::string> &CalleeParams) {
    if (Caller.Bottom)
      return Caller;
    Elem Entry;
    for (size_t I = 0, E = CalleeParams.size(); I != E; ++I) {
      if (I < CallSite.Args.size())
        if (auto V = eval(CallSite.Args[I], Caller))
          Entry.setVar(CalleeParams[I], *V);
    }
    return Entry;
  }

  static Elem exitCall(const Elem &Caller, const Elem &CalleeExit,
                       const Stmt &CallSite) {
    if (Caller.Bottom)
      return Caller;
    if (CalleeExit.Bottom)
      return bottom();
    Elem Out = Caller;
    if (auto V = CalleeExit.get(RetVar))
      Out.setVar(CallSite.Lhs, *V);
    else
      Out.eraseVar(CallSite.Lhs);
    return Out;
  }

private:
  /// Refines \p S under a true condition: learns `x == c` bindings through
  /// conjunctions.
  static void refine(Elem &S, const ExprPtr &Cond) {
    if (!Cond || Cond->Kind != ExprKind::Binary)
      return;
    if (Cond->BOp == BinaryOp::And) {
      refine(S, Cond->Lhs);
      refine(S, Cond->Rhs);
      return;
    }
    if (Cond->BOp != BinaryOp::Eq)
      return;
    auto Learn = [&](const ExprPtr &VarSide, const ExprPtr &ValSide) {
      if (VarSide && VarSide->Kind == ExprKind::Var)
        if (auto V = eval(ValSide, S))
          S.setVar(VarSide->Name, *V);
    };
    Learn(Cond->Lhs, Cond->Rhs);
    Learn(Cond->Rhs, Cond->Lhs);
  }
};

} // namespace dai

#endif // DAI_DOMAIN_CONSTPROP_H
