//===-- domain/dis_interval.h - Disjunctive interval domain -----*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The disjunctive-interval abstract domain (crab's `dis_intervals` lineage):
/// each variable is abstracted by a bounded finite union of disjoint,
/// non-adjacent intervals instead of a single convex hull. Branch joins that
/// a plain interval collapses ("x == 0 or x == 10" becomes [0, 10]) stay
/// exact here as {[0,0], [10,10]} — the path-sensitivity win — and a later
/// `assume x >= 2` prunes whole partitions instead of trimming one bound.
///
/// Precision is paid for with a per-variable partition bound K
/// (disIntervalMaxPartitions(), runtime-configurable): normalization merges
/// the closest pair of partitions whenever a list would exceed K, and each
/// forced merge is counted in DisIntervalCounters::PartitionsCollapsed — the
/// deterministic CI gate metric for this domain's bench rows. At K = 1 the
/// domain degenerates to exactly the interval domain (the differential
/// lockstep oracle in tests/dis_interval_test.cpp pins this).
///
//===----------------------------------------------------------------------===//

#ifndef DAI_DOMAIN_DIS_INTERVAL_H
#define DAI_DOMAIN_DIS_INTERVAL_H

#include "domain/interval.h"

#include <atomic>
#include <vector>

namespace dai {

/// The per-variable partition bound K (≥ 1). Process-global and read with
/// relaxed atomics: benches and tests set it once before running analysis;
/// parallel engine workers only ever read it.
unsigned disIntervalMaxPartitions();
void setDisIntervalMaxPartitions(unsigned K);

/// RAII partition-bound override for tests (restores the previous K).
class DisIntervalPartitionScope {
public:
  explicit DisIntervalPartitionScope(unsigned K)
      : Saved(disIntervalMaxPartitions()) {
    setDisIntervalMaxPartitions(K);
  }
  ~DisIntervalPartitionScope() { setDisIntervalMaxPartitions(Saved); }
  DisIntervalPartitionScope(const DisIntervalPartitionScope &) = delete;
  DisIntervalPartitionScope &operator=(const DisIntervalPartitionScope &) =
      delete;

private:
  unsigned Saved;
};

/// A bounded finite union of disjoint, non-adjacent, non-empty intervals,
/// kept sorted by lower bound. The empty union is the empty set; a single
/// [−∞, +∞] partition is ⊤. All operations re-normalize (sort, merge
/// overlapping/adjacent parts, enforce the partition bound K).
class DisInterval {
public:
  /// Constructs ⊤.
  DisInterval() : Parts{Interval::top()} {}

  static DisInterval top() { return DisInterval(); }
  static DisInterval empty() {
    DisInterval D;
    D.Parts.clear();
    return D;
  }
  static DisInterval fromInterval(const Interval &I) {
    DisInterval D;
    D.Parts.clear();
    if (!I.isEmpty())
      D.Parts.push_back(I);
    return D;
  }
  static DisInterval constant(int64_t C) {
    return fromInterval(Interval::constant(C));
  }

  bool isEmpty() const { return Parts.empty(); }
  bool isTop() const { return Parts.size() == 1 && Parts.front().isTop(); }
  bool isConstant() const {
    return Parts.size() == 1 && Parts.front().isConstant();
  }
  bool contains(int64_t V) const;
  size_t numParts() const { return Parts.size(); }
  const std::vector<Interval> &parts() const { return Parts; }

  /// The convex hull (the plain-interval over-approximation).
  Interval hull() const;

  bool operator==(const DisInterval &O) const { return Parts == O.Parts; }
  bool operator!=(const DisInterval &O) const { return !(*this == O); }

  /// O ⊑ this: every partition of O lies inside a single partition of this
  /// (exact for normalized partition lists).
  bool subsumes(const DisInterval &O) const;

  DisInterval join(const DisInterval &O) const;
  DisInterval meet(const DisInterval &O) const;
  /// Widening: pairwise interval widening when the partition counts line up,
  /// clamped by the hull widening (so the result never exceeds what a plain
  /// interval would report); hull widening otherwise. Terminates because
  /// bounds only ever move toward the (stabilizing) hull-widened bounds.
  DisInterval widen(const DisInterval &Next) const;

  DisInterval add(const DisInterval &O) const;
  DisInterval sub(const DisInterval &O) const;
  DisInterval mul(const DisInterval &O) const;
  DisInterval div(const DisInterval &O) const;
  DisInterval mod(const DisInterval &O) const;
  DisInterval neg() const;

  // Truth of comparisons, three-valued. Lt/Le mirror the interval domain's
  // hull-based tests exactly; Eq is sharper (a gap can refute equality the
  // hull cannot).
  TriBool cmpLt(const DisInterval &O) const;
  TriBool cmpLe(const DisInterval &O) const;
  TriBool cmpEq(const DisInterval &O) const;

  // Refinements: the largest sub-union satisfying the constraint.
  DisInterval clampLe(int64_t Bound) const;
  DisInterval clampGe(int64_t Bound) const;
  DisInterval clampLt(int64_t Bound) const;
  DisInterval clampGt(int64_t Bound) const;
  /// ≠ V splits the partition containing V in its interior — the refinement
  /// a convex interval can only apply at its endpoints.
  DisInterval clampNe(int64_t V) const;

  uint64_t hash() const;
  std::string toString() const;

private:
  static DisInterval normalized(std::vector<Interval> Raw);

  std::vector<Interval> Parts;
};

/// Per-variable abstraction: disjunctive numeric value plus the same array
/// length/element summaries as the interval domain (kept convex — array
/// metadata never benefits from partitioning on this workload).
struct DisVarAbs {
  DisInterval Num;
  Interval Len;
  Interval Elems;

  static DisVarAbs top() { return DisVarAbs(); }
  static DisVarAbs numeric(DisInterval D) {
    DisVarAbs V;
    V.Num = std::move(D);
    return V;
  }
  bool isTop() const { return Num.isTop() && Len.isTop() && Elems.isTop(); }
  bool operator==(const DisVarAbs &O) const {
    return Num == O.Num && Len == O.Len && Elems == O.Elems;
  }
};

/// An abstract state: ⊥ or a finite map from interned variable symbols to
/// DisVarAbs (absent variables are ⊤, ⊤ bindings are erased — the same
/// normalization as IntervalState).
struct DisIntervalState {
  bool Bottom = false;
  std::map<SymbolId, DisVarAbs> Env;

  DisVarAbs get(SymbolId Sym) const {
    auto It = Env.find(Sym);
    return It == Env.end() ? DisVarAbs::top() : It->second;
  }
  DisVarAbs get(const std::string &Var) const {
    SymbolId Sym = lookupSymbol(Var);
    return Sym == kNoSymbol ? DisVarAbs::top() : get(Sym);
  }
  void set(SymbolId Sym, DisVarAbs V) {
    if (V.isTop())
      Env.erase(Sym);
    else
      Env[Sym] = std::move(V);
  }
  void set(const std::string &Var, DisVarAbs V) {
    if (V.isTop()) {
      SymbolId Sym = lookupSymbol(Var);
      if (Sym != kNoSymbol)
        Env.erase(Sym);
      return;
    }
    set(internSymbol(Var), std::move(V));
  }

  /// The convex-hull projection (used by the registry's cross-domain
  /// conversion and the lockstep oracle).
  IntervalState hullState() const;
};

/// The disjunctive-interval abstract domain policy (satisfies
/// AbstractDomain).
struct DisIntervalDomain {
  using Elem = DisIntervalState;

  static Elem bottom();
  static Elem initialEntry(const std::vector<std::string> &Params);
  static Elem transfer(const Stmt &S, const Elem &In);
  static Elem join(const Elem &A, const Elem &B);
  static Elem widen(const Elem &Prev, const Elem &Next);
  static bool leq(const Elem &A, const Elem &B);
  static bool equal(const Elem &A, const Elem &B);
  static uint64_t hash(const Elem &A);
  static std::string toString(const Elem &A);
  static const char *name() { return "dis_interval"; }
  static bool isBottom(const Elem &A) { return A.Bottom; }

  static Elem enterCall(const Elem &Caller, const Stmt &CallSite,
                        const std::vector<std::string> &CalleeParams);
  static Elem exitCall(const Elem &Caller, const Elem &CalleeExit,
                       const Stmt &CallSite);

  /// Abstract evaluation of an expression in \p State.
  static DisVarAbs eval(const ExprPtr &E, const Elem &State);

  /// Refines \p State under the assumption that \p Cond holds.
  static Elem assume(const Elem &State, const ExprPtr &Cond);
};

} // namespace dai

#endif // DAI_DOMAIN_DIS_INTERVAL_H
