//===-- domain/interval.h - Interval abstract domain ------------*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interval abstract domain (Section 7.2 of the paper): the textbook
/// infinite-height lattice requiring widening for convergence. The paper
/// instantiates its framework with APRON's box domain; APRON is unavailable
/// offline, so this is a from-scratch implementation of the same lattice and
/// transformers (see DESIGN.md, substitutions).
///
/// Abstract states map variables to a per-variable abstraction carrying a
/// numeric interval plus, for arrays, a length interval and an element
/// summary interval — enough to discharge the paper's array-bounds
/// verification client (`0 <= i < a.length`).
///
//===----------------------------------------------------------------------===//

#ifndef DAI_DOMAIN_INTERVAL_H
#define DAI_DOMAIN_INTERVAL_H

#include "domain/abstract_domain.h"
#include "domain/symbol.h"
#include "lang/stmt.h"

#include <cstdint>
#include <map>
#include <string>

namespace dai {

/// A (possibly empty) integer interval with −∞/+∞ sentinels.
///
/// Representation: Empty, or [Lo, Hi] with Lo ≤ Hi where Lo = kNegInf means
/// unbounded below and Hi = kPosInf unbounded above. All arithmetic is
/// over-approximating and saturating.
class Interval {
public:
  static constexpr int64_t kNegInf = INT64_MIN;
  static constexpr int64_t kPosInf = INT64_MAX;

  /// Constructs ⊤ = [−∞, +∞].
  Interval() : Lo(kNegInf), Hi(kPosInf), Empty(false) {}

  static Interval top() { return Interval(); }
  static Interval empty() {
    Interval I;
    I.Empty = true;
    I.Lo = 1;
    I.Hi = 0;
    return I;
  }
  static Interval constant(int64_t C) { return range(C, C); }
  static Interval range(int64_t Lo, int64_t Hi) {
    if (Lo > Hi)
      return empty();
    Interval I;
    I.Lo = Lo;
    I.Hi = Hi;
    I.Empty = false;
    return I;
  }
  /// [Lo, +∞].
  static Interval atLeast(int64_t Lo) { return range(Lo, kPosInf); }
  /// [−∞, Hi].
  static Interval atMost(int64_t Hi) { return range(kNegInf, Hi); }

  bool isEmpty() const { return Empty; }
  bool isTop() const { return !Empty && Lo == kNegInf && Hi == kPosInf; }
  int64_t lo() const { return Lo; }
  int64_t hi() const { return Hi; }
  bool isConstant() const { return !Empty && Lo == Hi; }

  bool operator==(const Interval &O) const {
    if (Empty || O.Empty)
      return Empty == O.Empty;
    return Lo == O.Lo && Hi == O.Hi;
  }
  bool operator!=(const Interval &O) const { return !(*this == O); }

  bool contains(int64_t V) const { return !Empty && Lo <= V && V <= Hi; }
  bool subsumes(const Interval &O) const; ///< O ⊑ this.

  Interval join(const Interval &O) const;
  Interval meet(const Interval &O) const;
  /// Standard interval widening: unstable bounds jump to ±∞.
  Interval widen(const Interval &Next) const;

  Interval add(const Interval &O) const;
  Interval sub(const Interval &O) const;
  Interval mul(const Interval &O) const;
  Interval div(const Interval &O) const;
  Interval mod(const Interval &O) const;
  Interval neg() const;

  // Truth of comparisons, three-valued.
  TriBool cmpLt(const Interval &O) const;
  TriBool cmpLe(const Interval &O) const;
  TriBool cmpEq(const Interval &O) const;

  // Refinements: the largest sub-interval satisfying the constraint.
  Interval clampLe(int64_t Bound) const { return meet(atMost(Bound)); }
  Interval clampGe(int64_t Bound) const { return meet(atLeast(Bound)); }
  Interval clampLt(int64_t Bound) const;
  Interval clampGt(int64_t Bound) const;
  Interval clampNe(int64_t V) const;

  uint64_t hash() const;
  std::string toString() const;

private:
  int64_t Lo, Hi;
  bool Empty;
};

/// Per-variable abstraction: numeric interval plus array length/element
/// summaries (all ⊤ for plain unknown values).
struct VarAbs {
  Interval Num;   ///< Numeric value (booleans as 0/1).
  Interval Len;   ///< Array length if this holds an array.
  Interval Elems; ///< Summary of all array elements (weakly updated).

  static VarAbs top() { return VarAbs(); }
  static VarAbs numeric(Interval I) {
    VarAbs V;
    V.Num = I;
    return V;
  }
  bool isTop() const {
    return Num.isTop() && Len.isTop() && Elems.isTop();
  }
  bool operator==(const VarAbs &O) const {
    return Num == O.Num && Len == O.Len && Elems == O.Elems;
  }
};

/// An abstract state: ⊥ or a finite map from interned variable symbols to
/// VarAbs (absent variables are ⊤). Kept normalized: ⊤ bindings are erased.
/// Keys are SymbolIds (domain/symbol.h) so map operations compare integers
/// and the octagon domain's interval fallback crosses the interface without
/// touching strings; the string overloads intern (set) or probe without
/// interning (get — reading a never-seen variable must not grow the table).
struct IntervalState {
  bool Bottom = false;
  std::map<SymbolId, VarAbs> Env;

  /// Lookup with the absent-means-top convention.
  VarAbs get(SymbolId Sym) const {
    auto It = Env.find(Sym);
    return It == Env.end() ? VarAbs::top() : It->second;
  }
  VarAbs get(const std::string &Var) const {
    SymbolId Sym = lookupSymbol(Var);
    return Sym == kNoSymbol ? VarAbs::top() : get(Sym);
  }
  void set(SymbolId Sym, VarAbs V) {
    if (V.isTop())
      Env.erase(Sym);
    else
      Env[Sym] = std::move(V);
  }
  void set(const std::string &Var, VarAbs V) {
    if (V.isTop()) {
      // Erasing a never-interned name is a no-op; don't intern for it.
      SymbolId Sym = lookupSymbol(Var);
      if (Sym != kNoSymbol)
        Env.erase(Sym);
      return;
    }
    set(internSymbol(Var), std::move(V));
  }
};

/// The interval abstract domain policy (satisfies AbstractDomain).
struct IntervalDomain {
  using Elem = IntervalState;

  static Elem bottom();
  static Elem initialEntry(const std::vector<std::string> &Params);
  static Elem transfer(const Stmt &S, const Elem &In);
  static Elem join(const Elem &A, const Elem &B);
  static Elem widen(const Elem &Prev, const Elem &Next);
  static bool leq(const Elem &A, const Elem &B);
  static bool equal(const Elem &A, const Elem &B);
  static uint64_t hash(const Elem &A);
  static std::string toString(const Elem &A);
  static const char *name() { return "interval"; }
  static bool isBottom(const Elem &A) { return A.Bottom; }

  static Elem enterCall(const Elem &Caller, const Stmt &CallSite,
                        const std::vector<std::string> &CalleeParams);
  static Elem exitCall(const Elem &Caller, const Elem &CalleeExit,
                       const Stmt &CallSite);

  /// Abstract evaluation of an expression in \p State.
  static VarAbs eval(const ExprPtr &E, const Elem &State);

  /// Refines \p State under the assumption that \p Cond holds.
  static Elem assume(const Elem &State, const ExprPtr &Cond);
};

/// Array-bounds verification client (the paper's Section 7.2 study).
struct ObligationSummary {
  unsigned Total = 0;    ///< Array accesses in the statement.
  unsigned Verified = 0; ///< Accesses proven in-bounds in the given state.
};

/// Counts and discharges `0 <= i < a.length` obligations for every array
/// access in \p S, evaluated against the abstract pre-state \p Pre.
ObligationSummary checkArrayObligations(const IntervalState &Pre,
                                        const Stmt &S);

} // namespace dai

#endif // DAI_DOMAIN_INTERVAL_H
