//===-- domain/symbol.h - Interned dimension symbols ------------*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-global intern table mapping variable names to dense integer
/// SymbolIds. Abstract-domain states historically keyed dimensions by
/// std::string, so every varIndex was a string binary search and every
/// copied variable list reallocated n strings. Interning makes symbol
/// equality an integer compare, turns domain-state maps into integer-keyed
/// maps, and lets copy-on-write variable lists hold trivially-copyable ids.
///
/// Ids are dense (0, 1, 2, …) in first-intern order, so they double as
/// vector indices. The table only grows — analyses run over a fixed program
/// vocabulary plus a bounded set of internal temporaries, so unbounded
/// growth would indicate a bug upstream (e.g., gensym'd names leaking into
/// states; see freshSymbol's contract in octagon.cpp).
///
/// Thread-safety (mirrors NameTable in daig/name.h): the table accepts
/// CONCURRENT interning. The dedup side is sharded by string hash — a
/// per-shard mutex guards that shard's map and spelling storage, and equal
/// strings always land in the same shard, so each distinct spelling gets
/// exactly one id (drawn from a global atomic counter, keeping ids dense).
/// The id → spelling direction is a chunked array of atomic pointers,
/// release-published and never relocated, so name() is lock-free. lookup()
/// keeps the probe-without-interning contract: a query for a never-assigned
/// variable takes the shard lock but does not grow the table.
///
//===----------------------------------------------------------------------===//

#ifndef DAI_DOMAIN_SYMBOL_H
#define DAI_DOMAIN_SYMBOL_H

#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace dai {

/// A dense id for an interned variable name. Ordering of ids follows
/// first-intern order, not lexicographic order of the names; all that the
/// domain layer requires is that the order is total and consistent across
/// every value in the process.
using SymbolId = uint32_t;

constexpr SymbolId kNoSymbol = static_cast<SymbolId>(-1);

/// The global string → SymbolId intern table (see the file header for the
/// concurrency contract).
class SymbolTable {
public:
  /// Dedup-index shards, selected by the high bits of the string hash.
  static constexpr unsigned kNumShards = 16;
  /// id → spelling chunk geometry: 4Ki-entry chunks, 4Ki chunk pointers
  /// (16.7M symbols — far beyond any program vocabulary; the analysis
  /// asserts before overflow).
  static constexpr unsigned kChunkShift = 12;
  static constexpr size_t kChunkSize = size_t(1) << kChunkShift;
  static constexpr size_t kChunkMask = kChunkSize - 1;
  static constexpr size_t kMaxChunks = size_t(1) << 12;

  static SymbolTable &global() {
    static SymbolTable Table;
    return Table;
  }

  /// Returns the id of \p Name, interning it on first sight. Safe to call
  /// concurrently: equal spellings serialize on their shard's mutex.
  SymbolId intern(std::string_view Name) {
    Shard &S = shardFor(Name);
    std::lock_guard<std::mutex> G(S.M);
    auto It = S.Map.find(Name);
    if (It != S.Map.end())
      return It->second;
    SymbolId Id = NextId.fetch_add(1, std::memory_order_relaxed);
    // Deque storage never relocates, so the string_view key in Map and the
    // pointer published for name() stay valid as the shard grows.
    S.Names.emplace_back(Name);
    const std::string &Stored = S.Names.back();
    publish(Id, &Stored);
    S.Map.emplace(Stored, Id);
    return Id;
  }

  /// Returns the id of \p Name if it has been interned, else kNoSymbol.
  /// Lookups on behalf of absent-means-top reads must NOT intern: a query
  /// for a never-assigned variable should not grow the table.
  SymbolId lookup(std::string_view Name) const {
    const Shard &S = shardFor(Name);
    std::lock_guard<std::mutex> G(S.M);
    auto It = S.Map.find(Name);
    return It == S.Map.end() ? kNoSymbol : It->second;
  }

  /// The interned spelling of \p Id. Valid for the process lifetime.
  /// Lock-free: the chunk pointer and entry are acquire loads, published
  /// with release order by intern(), so the string is fully constructed
  /// before any reader can reach it.
  const std::string &name(SymbolId Id) const {
    const Slot *Chunk =
        ById[Id >> kChunkShift].load(std::memory_order_acquire);
    const std::string *P = Chunk[Id & kChunkMask].load(
        std::memory_order_acquire);
    return *P;
  }

  /// Number of ids handed out so far (monotone; under concurrent interning
  /// some of the newest ids may still be mid-publication on other threads —
  /// use this as a count, not as an iteration bound).
  size_t size() const { return NextId.load(std::memory_order_acquire); }

private:
  // Heterogeneous lookup so intern/lookup accept string_view without an
  // allocation on the hit path.
  struct Hash {
    using is_transparent = void;
    size_t operator()(std::string_view S) const {
      return std::hash<std::string_view>{}(S);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view A, std::string_view B) const {
      return A == B;
    }
  };

  struct Shard {
    mutable std::mutex M;
    /// Stable storage for the spellings: deque never relocates elements.
    std::deque<std::string> Names;
    std::unordered_map<std::string_view, SymbolId, Hash, Eq> Map;
  };

  using Slot = std::atomic<const std::string *>;

  SymbolTable() : ById(new std::atomic<Slot *>[kMaxChunks]()) {}
  ~SymbolTable() {
    for (size_t I = 0; I < kMaxChunks; ++I)
      delete[] ById[I].load(std::memory_order_acquire);
  }

  Shard &shardFor(std::string_view Name) {
    return Shards[(Hash{}(Name) >> 60) & (kNumShards - 1)];
  }
  const Shard &shardFor(std::string_view Name) const {
    return Shards[(Hash{}(Name) >> 60) & (kNumShards - 1)];
  }

  /// Makes name(Id) return \p P: CAS-publishes the chunk on first use
  /// (the losing allocator frees its copy), then release-stores the entry.
  void publish(SymbolId Id, const std::string *P) {
    size_t CI = Id >> kChunkShift;
    assert(CI < kMaxChunks && "symbol table overflow");
    std::atomic<Slot *> &CSlot = ById[CI];
    Slot *Chunk = CSlot.load(std::memory_order_acquire);
    if (!Chunk) {
      Slot *Fresh = new Slot[kChunkSize]();
      Slot *Expected = nullptr;
      if (CSlot.compare_exchange_strong(Expected, Fresh,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire))
        Chunk = Fresh;
      else {
        delete[] Fresh;
        Chunk = Expected;
      }
    }
    Chunk[Id & kChunkMask].store(P, std::memory_order_release);
  }

  std::array<Shard, kNumShards> Shards;
  std::atomic<SymbolId> NextId{0};
  /// id → spelling: chunked atomic pointer array (see publish()).
  std::unique_ptr<std::atomic<Slot *>[]> ById;
};

inline SymbolId internSymbol(std::string_view Name) {
  return SymbolTable::global().intern(Name);
}

inline SymbolId lookupSymbol(std::string_view Name) {
  return SymbolTable::global().lookup(Name);
}

inline const std::string &symbolName(SymbolId Id) {
  return SymbolTable::global().name(Id);
}

} // namespace dai

#endif // DAI_DOMAIN_SYMBOL_H
