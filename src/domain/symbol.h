//===-- domain/symbol.h - Interned dimension symbols ------------*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-global intern table mapping variable names to dense integer
/// SymbolIds. Abstract-domain states historically keyed dimensions by
/// std::string, so every varIndex was a string binary search and every
/// copied variable list reallocated n strings. Interning makes symbol
/// equality an integer compare, turns domain-state maps into integer-keyed
/// maps, and lets copy-on-write variable lists hold trivially-copyable ids.
///
/// Ids are dense (0, 1, 2, …) in first-intern order, so they double as
/// vector indices. The table only grows — analyses run over a fixed program
/// vocabulary plus a bounded set of internal temporaries, so unbounded
/// growth would indicate a bug upstream (e.g., gensym'd names leaking into
/// states; see freshSymbol's contract in octagon.cpp).
///
/// Single-threaded by design, like the rest of the domain layer (the
/// closure counters in support/statistics.h are thread_local for the same
/// reason: one analysis engine per thread, no shared mutable state).
///
//===----------------------------------------------------------------------===//

#ifndef DAI_DOMAIN_SYMBOL_H
#define DAI_DOMAIN_SYMBOL_H

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace dai {

/// A dense id for an interned variable name. Ordering of ids follows
/// first-intern order, not lexicographic order of the names; all that the
/// domain layer requires is that the order is total and consistent across
/// every value in the process.
using SymbolId = uint32_t;

constexpr SymbolId kNoSymbol = static_cast<SymbolId>(-1);

/// The global string → SymbolId intern table.
class SymbolTable {
public:
  static SymbolTable &global() {
    static SymbolTable Table;
    return Table;
  }

  /// Returns the id of \p Name, interning it on first sight.
  SymbolId intern(std::string_view Name) {
    auto It = Map.find(Name);
    if (It != Map.end())
      return It->second;
    SymbolId Id = static_cast<SymbolId>(Names.size());
    Names.emplace_back(Name);
    Map.emplace(Names.back(), Id);
    return Id;
  }

  /// Returns the id of \p Name if it has been interned, else kNoSymbol.
  /// Lookups on behalf of absent-means-top reads must NOT intern: a query
  /// for a never-assigned variable should not grow the table.
  SymbolId lookup(std::string_view Name) const {
    auto It = Map.find(Name);
    return It == Map.end() ? kNoSymbol : It->second;
  }

  /// The interned spelling of \p Id. Valid for the process lifetime.
  const std::string &name(SymbolId Id) const { return Names[Id]; }

  size_t size() const { return Names.size(); }

private:
  SymbolTable() = default;

  // Heterogeneous lookup so intern/lookup accept string_view without an
  // allocation on the hit path.
  struct Hash {
    using is_transparent = void;
    size_t operator()(std::string_view S) const {
      return std::hash<std::string_view>{}(S);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view A, std::string_view B) const {
      return A == B;
    }
  };

  /// Stable storage for the spellings: deque never relocates elements, so
  /// the string_view keys in Map (and name() references handed out) stay
  /// valid as the table grows.
  std::deque<std::string> Names;
  std::unordered_map<std::string_view, SymbolId, Hash, Eq> Map;
};

inline SymbolId internSymbol(std::string_view Name) {
  return SymbolTable::global().intern(Name);
}

inline SymbolId lookupSymbol(std::string_view Name) {
  return SymbolTable::global().lookup(Name);
}

inline const std::string &symbolName(SymbolId Id) {
  return SymbolTable::global().name(Id);
}

} // namespace dai

#endif // DAI_DOMAIN_SYMBOL_H
