//===-- domain/registry.cpp - Type-erased domain registry -----------------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "domain/registry.h"

#include "domain/array_smash.h"
#include "domain/constprop.h"
#include "domain/dis_interval.h"
#include "domain/octagon.h"
#include "domain/shape.h"
#include "domain/staged.h"
#include "domain/zone.h"
#include "support/hashing.h"

#include <cassert>

using namespace dai;

namespace {

using Ptr = DomainVTable::Ptr;

uint64_t hashKey(const char *Key) {
  // FNV-1a: stable across runs (unlike pointer identity), so type-tagged
  // memo hashes are deterministic and reproducible.
  uint64_t H = 0xcbf29ce484222325ULL;
  for (const char *P = Key; *P; ++P) {
    H ^= static_cast<unsigned char>(*P);
    H *= 0x100000001b3ULL;
  }
  return H;
}

template <typename D>
const typename D::Elem &un(const Ptr &P) {
  return *static_cast<const typename D::Elem *>(P.get());
}

template <typename D>
Ptr wrapElem(typename D::Elem E) {
  return std::make_shared<typename D::Elem>(std::move(E));
}

//===----------------------------------------------------------------------===//
// Box conversions (IntervalState is the cross-domain interchange format)
//===----------------------------------------------------------------------===//

// ToBox: overloads on the concrete Elem type. Functor domains that reuse a
// base Elem (ArraySmashDomain<B>::Elem == B::Elem) share the base overload,
// which is exactly right: ghost variables are ordinary dimensions, and the
// ghost naming convention is uniform across the arr_* family.

IntervalState toBoxImpl(const IntervalState &S) { return S; }

IntervalState toBoxImpl(const DisIntervalState &S) { return S.hullState(); }

IntervalState toBoxImpl(const ConstState &S) {
  IntervalState R;
  if (S.Bottom) {
    R.Bottom = true;
    return R;
  }
  for (const auto &[Var, V] : S.Env)
    R.set(Var, VarAbs::numeric(Interval::constant(V)));
  return R;
}

IntervalState toBoxImpl(const Zone &Z) {
  IntervalState R;
  if (Z.isBottom()) {
    R.Bottom = true;
    return R;
  }
  const Zone &C = Z.closedView();
  if (C.isBottom()) {
    R.Bottom = true;
    return R;
  }
  for (SymbolId V : C.constrainedVars()) {
    Interval I = C.boundsOf(V);
    if (!I.isTop())
      R.set(V, VarAbs::numeric(I));
  }
  return R;
}

IntervalState toBoxImpl(const Octagon &O) {
  IntervalState R;
  if (O.isBottom()) {
    R.Bottom = true;
    return R;
  }
  const Octagon &C = O.closedView();
  if (C.isBottom()) {
    R.Bottom = true;
    return R;
  }
  for (SymbolId V : C.vars()) {
    Interval I = C.boundsOf(V);
    if (!I.isTop())
      R.set(V, VarAbs::numeric(I));
  }
  return R;
}

IntervalState toBoxImpl(const Staged &S) {
  // The zone tier is always on and always sound; the octagon tier only adds
  // ±x±y relations, whose variable projections the zone already covers.
  return toBoxImpl(S.Z);
}

IntervalState toBoxImpl(const ShapeState &S) {
  IntervalState R;
  if (S.isBottom()) {
    R.Bottom = true;
    return R;
  }
  return R; // Heap shapes carry no numeric bounds: ⊤ box.
}

/// Generic sound embedding: start from the domain's ⊤-like entry state and
/// replay the box's bounds as assume-refinements. Domains that cannot
/// represent a bound simply keep ⊤ for it (still ⊒ the box).
template <typename D>
typename D::Elem fromBoxGeneric(const IntervalState &Box) {
  if (Box.Bottom)
    return D::bottom();
  typename D::Elem S = D::initialEntry({});
  for (const auto &[Sym, V] : Box.Env) {
    const Interval &I = V.Num;
    if (I.isTop())
      continue;
    if (I.isEmpty()) // An empty projection means the state is unreachable.
      return D::bottom();
    const std::string &Name = symbolName(Sym);
    if (I.isConstant()) {
      S = D::transfer(Stmt::mkAssume(Expr::mkBinary(
                          BinaryOp::Eq, Expr::mkVar(Name), Expr::mkInt(I.lo()))),
                      S);
      continue;
    }
    if (I.lo() != Interval::kNegInf)
      S = D::transfer(Stmt::mkAssume(Expr::mkBinary(
                          BinaryOp::Ge, Expr::mkVar(Name), Expr::mkInt(I.lo()))),
                      S);
    if (I.hi() != Interval::kPosInf)
      S = D::transfer(Stmt::mkAssume(Expr::mkBinary(
                          BinaryOp::Le, Expr::mkVar(Name), Expr::mkInt(I.hi()))),
                      S);
  }
  return S;
}

DisIntervalState disFromBox(const IntervalState &Box) {
  DisIntervalState S;
  S.Bottom = Box.Bottom;
  if (Box.Bottom)
    return S;
  for (const auto &[Var, V] : Box.Env) {
    DisVarAbs D;
    D.Num = DisInterval::fromInterval(V.Num);
    D.Len = V.Len;
    D.Elems = V.Elems;
    S.set(Var, D);
  }
  return S;
}

template <typename D>
typename D::Elem fromBoxFor(const IntervalState &Box) {
  // The interval-shaped domains embed the box exactly (including array
  // length/element summaries); everything else replays numeric bounds.
  if constexpr (std::is_same_v<typename D::Elem, IntervalState>)
    return Box;
  else if constexpr (std::is_same_v<typename D::Elem, DisIntervalState>)
    return disFromBox(Box);
  else
    return fromBoxGeneric<D>(Box);
}

//===----------------------------------------------------------------------===//
// VTable adapter
//===----------------------------------------------------------------------===//

template <typename D>
  requires AbstractDomain<D>
const DomainVTable *makeVTable(const char *Key) {
  static const DomainVTable VT = {
      Key,
      D::name(),
      hashKey(Key),
      +[]() -> Ptr { return wrapElem<D>(D::bottom()); },
      +[](const std::vector<std::string> &Params) -> Ptr {
        return wrapElem<D>(D::initialEntry(Params));
      },
      +[](const Stmt &S, const Ptr &In) -> Ptr {
        return wrapElem<D>(D::transfer(S, un<D>(In)));
      },
      +[](const Ptr &A, const Ptr &B) -> Ptr {
        return wrapElem<D>(D::join(un<D>(A), un<D>(B)));
      },
      +[](const Ptr &A, const Ptr &B) -> Ptr {
        return wrapElem<D>(D::widen(un<D>(A), un<D>(B)));
      },
      +[](const Ptr &A, const Ptr &B) { return D::leq(un<D>(A), un<D>(B)); },
      +[](const Ptr &A, const Ptr &B) { return D::equal(un<D>(A), un<D>(B)); },
      +[](const Ptr &A) { return D::hash(un<D>(A)); },
      +[](const Ptr &A) { return D::toString(un<D>(A)); },
      +[](const Ptr &A) { return D::isBottom(un<D>(A)); },
      +[](const Ptr &Caller, const Stmt &CS,
          const std::vector<std::string> &Params) -> Ptr {
        return wrapElem<D>(D::enterCall(un<D>(Caller), CS, Params));
      },
      +[](const Ptr &Caller, const Ptr &Exit, const Stmt &CS) -> Ptr {
        return wrapElem<D>(D::exitCall(un<D>(Caller), un<D>(Exit), CS));
      },
      +[](const Ptr &A) { return toBoxImpl(un<D>(A)); },
      +[](const IntervalState &Box) -> Ptr {
        return wrapElem<D>(fromBoxFor<D>(Box));
      },
  };
  return &VT;
}

} // namespace

//===----------------------------------------------------------------------===//
// DomainRegistry
//===----------------------------------------------------------------------===//

DomainRegistry::DomainRegistry() {
  auto Add = [this](const DomainVTable *VT) { Table.emplace(VT->Key, VT); };
  Add(makeVTable<IntervalDomain>("interval"));
  Add(makeVTable<DisIntervalDomain>("dis_interval"));
  Add(makeVTable<ConstPropDomain>("constprop"));
  Add(makeVTable<ZoneDomain>("zone"));
  Add(makeVTable<OctagonDomain>("octagon"));
  Add(makeVTable<StagedDomain>("staged"));
  Add(makeVTable<ShapeDomain>("shape"));
  Add(makeVTable<ArraySmashDomain<IntervalDomain>>("arr_interval"));
  Add(makeVTable<ArraySmashDomain<ZoneDomain>>("arr_zone"));
  Add(makeVTable<ArraySmashDomain<DisIntervalDomain>>("arr_dis_interval"));
}

DomainRegistry &DomainRegistry::instance() {
  static DomainRegistry R;
  return R;
}

const DomainVTable *DomainRegistry::find(const std::string &Key) const {
  auto It = Table.find(Key);
  return It == Table.end() ? nullptr : It->second;
}

std::vector<std::string> DomainRegistry::keys() const {
  std::vector<std::string> Keys;
  Keys.reserve(Table.size());
  for (const auto &[Key, VT] : Table)
    Keys.push_back(Key);
  return Keys; // std::map iteration: already sorted.
}

//===----------------------------------------------------------------------===//
// FunctionDomainPolicy
//===----------------------------------------------------------------------===//

bool FunctionDomainPolicy::set(const std::string &Fn, const std::string &Key) {
  const DomainVTable *VT = DomainRegistry::instance().find(Key);
  if (!VT)
    return false;
  PerFn[internSymbol(Fn)] = VT;
  return true;
}

bool FunctionDomainPolicy::setDefault(const std::string &Key) {
  const DomainVTable *VT = DomainRegistry::instance().find(Key);
  if (!VT)
    return false;
  Default = VT;
  return true;
}

const DomainVTable *
FunctionDomainPolicy::resolve(SymbolId Fn,
                              const DomainVTable *Fallback) const {
  auto It = PerFn.find(Fn);
  if (It != PerFn.end())
    return It->second;
  return Default ? Default : Fallback;
}

namespace {
// Plain pointers, not atomics: both are configuration written before
// analysis threads start and only read afterwards (data-race-free by
// happens-before at thread creation).
const FunctionDomainPolicy *GlobalPolicy = nullptr;
const DomainVTable *DefaultSlot = nullptr;
} // namespace

void dai::installFunctionDomainPolicy(const FunctionDomainPolicy *P) {
  GlobalPolicy = P;
}

const FunctionDomainPolicy *dai::installedFunctionDomainPolicy() {
  return GlobalPolicy;
}

//===----------------------------------------------------------------------===//
// AnyDomain
//===----------------------------------------------------------------------===//

namespace {

/// Normalizes a default-constructed (vtable-less) value into a typed ⊥ of
/// the bound default domain; typed values pass through untouched.
AnyVal norm(const AnyVal &A) {
  if (A.Ops)
    return A;
  const DomainVTable *VT = AnyDomain::boundDefault();
  return {VT, VT->MakeBottom()};
}

/// Converts \p A into domain \p To through the box (identity if already
/// there). Over-approximating, hence sound in join/widen/leq positions.
AnyVal convertTo(const DomainVTable *To, const AnyVal &A) {
  if (A.Ops == To)
    return A;
  return {To, To->FromBox(A.Ops->ToBox(A.V))};
}

/// The domain the callee at \p CallSite runs in: the installed policy's
/// answer, else the caller's own domain (homogeneous analysis).
const DomainVTable *calleeVT(const Stmt &CallSite,
                             const DomainVTable *CallerVT) {
  const FunctionDomainPolicy *P = installedFunctionDomainPolicy();
  if (!P)
    return CallerVT;
  return P->resolve(internSymbol(CallSite.Callee), CallerVT);
}

} // namespace

const DomainVTable *AnyDomain::boundDefault() {
  if (DefaultSlot)
    return DefaultSlot;
  const DomainVTable *VT = DomainRegistry::instance().find("interval");
  assert(VT && "interval is always registered");
  return VT;
}

bool AnyDomain::bindDefault(const std::string &Key) {
  const DomainVTable *VT = DomainRegistry::instance().find(Key);
  if (!VT)
    return false;
  DefaultSlot = VT;
  return true;
}

AnyVal AnyDomain::bottom() {
  const DomainVTable *VT = boundDefault();
  return {VT, VT->MakeBottom()};
}

AnyVal AnyDomain::initialEntry(const std::vector<std::string> &Params) {
  const DomainVTable *VT = boundDefault();
  return {VT, VT->MakeInitialEntry(Params)};
}

AnyVal AnyDomain::initialEntryFor(SymbolId Fn,
                                  const std::vector<std::string> &Params) {
  const DomainVTable *VT = boundDefault();
  if (const FunctionDomainPolicy *P = installedFunctionDomainPolicy())
    VT = P->resolve(Fn, VT);
  return {VT, VT->MakeInitialEntry(Params)};
}

AnyVal AnyDomain::transfer(const Stmt &S, const AnyVal &In) {
  AnyVal N = norm(In);
  return {N.Ops, N.Ops->Transfer(S, N.V)};
}

AnyVal AnyDomain::join(const AnyVal &A, const AnyVal &B) {
  AnyVal NA = norm(A), NB = norm(B);
  // ⊥ of ANY domain is a join identity — checked first so a default-typed
  // bottom seed never drags a differently-typed operand through the box.
  if (NA.Ops->IsBottom(NA.V))
    return NB;
  if (NB.Ops->IsBottom(NB.V))
    return NA;
  AnyVal RB = convertTo(NA.Ops, NB);
  return {NA.Ops, NA.Ops->Join(NA.V, RB.V)};
}

AnyVal AnyDomain::widen(const AnyVal &Prev, const AnyVal &Next) {
  AnyVal NP = norm(Prev), NN = norm(Next);
  if (NP.Ops->IsBottom(NP.V))
    return NN;
  if (NN.Ops->IsBottom(NN.V))
    return NP;
  AnyVal RN = convertTo(NP.Ops, NN);
  return {NP.Ops, NP.Ops->Widen(NP.V, RN.V)};
}

bool AnyDomain::leq(const AnyVal &A, const AnyVal &B) {
  AnyVal NA = norm(A), NB = norm(B);
  if (NA.Ops->IsBottom(NA.V))
    return true;
  if (NB.Ops->IsBottom(NB.V))
    return false;
  if (NA.Ops == NB.Ops)
    return NA.Ops->Leq(NA.V, NB.V);
  // over(A) ⊑ B implies A ⊑ B; the converse may be lost (conservative).
  AnyVal RA = convertTo(NB.Ops, NA);
  return NB.Ops->Leq(RA.V, NB.V);
}

bool AnyDomain::equal(const AnyVal &A, const AnyVal &B) {
  AnyVal NA = norm(A), NB = norm(B);
  // The pinned erasure contract: values of different concrete domains are
  // UNEQUAL — even two bottoms — and never UB. Convergence checks only
  // compare values produced by the same instance (same domain), so the
  // type tag never costs an extra fixpoint iteration in practice.
  if (NA.Ops != NB.Ops)
    return false;
  return NA.Ops->Equal(NA.V, NB.V);
}

uint64_t AnyDomain::hash(const AnyVal &A) {
  AnyVal N = norm(A);
  // Type-tagged (the satellite-4 fix): memo keys from different concrete
  // domains cannot collide into each other's Q-Match entries. hashCombine
  // with a fixed first argument is injective in the second, so the per-
  // domain remap preserves hit/miss patterns bit-for-bit.
  return hashCombine(N.Ops->KeyHash, N.Ops->Hash(N.V));
}

std::string AnyDomain::toString(const AnyVal &A) {
  AnyVal N = norm(A);
  return N.Ops->ToString(N.V);
}

const char *AnyDomain::name() { return boundDefault()->Key; }

bool AnyDomain::isBottom(const AnyVal &A) {
  AnyVal N = norm(A);
  return N.Ops->IsBottom(N.V);
}

AnyVal AnyDomain::enterCall(const AnyVal &Caller, const Stmt &CallSite,
                            const std::vector<std::string> &CalleeParams) {
  AnyVal NC = norm(Caller);
  const DomainVTable *CV = calleeVT(CallSite, NC.Ops);
  // Actuals are evaluated in the CALLER's domain (that is where their
  // constraints live); a cross-domain callee then receives the boxed entry.
  AnyVal Entry = {NC.Ops, NC.Ops->EnterCall(NC.V, CallSite, CalleeParams)};
  return convertTo(CV, Entry);
}

AnyVal AnyDomain::exitCall(const AnyVal &Caller, const AnyVal &CalleeExit,
                           const Stmt &CallSite) {
  AnyVal NC = norm(Caller);
  AnyVal NE = convertTo(NC.Ops, norm(CalleeExit));
  return {NC.Ops, NC.Ops->ExitCall(NC.V, NE.V, CallSite)};
}

static_assert(AbstractDomain<AnyDomain>,
              "AnyDomain must satisfy the same concept as the concrete "
              "domain policies it erases");
