//===-- domain/linear.h - Linear forms over interned symbols ----*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Linearization of expressions into Σ coeff·var + const form, shared by the
/// relational domains (octagon, zone): each domain pattern-matches the
/// resulting LinForm against the constraint shapes it can represent exactly
/// (±x ± y ≤ c for octagons, x − y ≤ c / ±x ≤ c for zones) and falls back
/// to interval reasoning otherwise. Variables are interned at linearization,
/// so everything downstream works over integer symbol ids.
///
//===----------------------------------------------------------------------===//

#ifndef DAI_DOMAIN_LINEAR_H
#define DAI_DOMAIN_LINEAR_H

#include "domain/symbol.h"
#include "lang/expr.h"

#include <cstdint>
#include <map>

namespace dai {

/// Linear form Σ coeff·var + Const; Ok is false for non-linear expressions.
struct LinForm {
  bool Ok = false;
  std::map<SymbolId, int64_t> Coeffs;
  int64_t Const = 0;

  static LinForm fail() { return LinForm(); }
  static LinForm constant(int64_t C) {
    LinForm F;
    F.Ok = true;
    F.Const = C;
    return F;
  }
  LinForm scaled(int64_t K) const {
    LinForm F = *this;
    F.Const *= K;
    for (auto &[V, C] : F.Coeffs)
      C *= K;
    std::erase_if(F.Coeffs, [](const auto &P) { return P.second == 0; });
    return F;
  }
  LinForm plus(const LinForm &O, int64_t Sign) const {
    LinForm F = *this;
    F.Const += Sign * O.Const;
    for (const auto &[V, C] : O.Coeffs) {
      F.Coeffs[V] += Sign * C;
      if (F.Coeffs[V] == 0)
        F.Coeffs.erase(V);
    }
    return F;
  }
};

inline LinForm linearize(const ExprPtr &E) {
  if (!E)
    return LinForm::fail();
  switch (E->Kind) {
  case ExprKind::IntLit:
    return LinForm::constant(E->IntVal);
  case ExprKind::BoolLit:
    return LinForm::constant(E->BoolVal ? 1 : 0);
  case ExprKind::Var: {
    LinForm F;
    F.Ok = true;
    F.Coeffs[internSymbol(E->Name)] = 1;
    return F;
  }
  case ExprKind::Unary: {
    if (E->UOp != UnaryOp::Neg)
      return LinForm::fail();
    LinForm Sub = linearize(E->Lhs);
    return Sub.Ok ? Sub.scaled(-1) : LinForm::fail();
  }
  case ExprKind::Binary: {
    if (E->BOp == BinaryOp::Add || E->BOp == BinaryOp::Sub) {
      LinForm L = linearize(E->Lhs), R = linearize(E->Rhs);
      if (!L.Ok || !R.Ok)
        return LinForm::fail();
      return L.plus(R, E->BOp == BinaryOp::Add ? 1 : -1);
    }
    if (E->BOp == BinaryOp::Mul) {
      LinForm L = linearize(E->Lhs), R = linearize(E->Rhs);
      if (L.Ok && L.Coeffs.empty() && R.Ok)
        return R.scaled(L.Const);
      if (R.Ok && R.Coeffs.empty() && L.Ok)
        return L.scaled(R.Const);
      return LinForm::fail();
    }
    return LinForm::fail();
  }
  default:
    return LinForm::fail();
  }
}

} // namespace dai

#endif // DAI_DOMAIN_LINEAR_H
