//===-- domain/dis_interval.cpp - Disjunctive interval domain -------------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "domain/dis_interval.h"

#include "cfg/program.h"
#include "support/hashing.h"
#include "support/statistics.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace dai;

namespace {

constexpr int64_t NegInf = Interval::kNegInf;
constexpr int64_t PosInf = Interval::kPosInf;

bool isInf(int64_t V) { return V == NegInf || V == PosInf; }

std::atomic<unsigned> MaxPartitions{4};

} // namespace

unsigned dai::disIntervalMaxPartitions() {
  return MaxPartitions.load(std::memory_order_relaxed);
}

void dai::setDisIntervalMaxPartitions(unsigned K) {
  MaxPartitions.store(K < 1 ? 1 : K, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// DisInterval
//===----------------------------------------------------------------------===//

DisInterval DisInterval::normalized(std::vector<Interval> Raw) {
  std::vector<Interval> Sorted;
  Sorted.reserve(Raw.size());
  for (const Interval &I : Raw)
    if (!I.isEmpty())
      Sorted.push_back(I);
  std::sort(Sorted.begin(), Sorted.end(),
            [](const Interval &A, const Interval &B) {
              return A.lo() != B.lo() ? A.lo() < B.lo() : A.hi() < B.hi();
            });
  // Merge overlapping and adjacent parts ({[0,1],[2,3]} has the same
  // concretization as [0,3]; canonical form keeps the gap-only invariant).
  std::vector<Interval> Out;
  for (const Interval &I : Sorted) {
    if (!Out.empty()) {
      Interval &Last = Out.back();
      // Last.lo <= I.lo by the sort; mergeable iff no gap of width >= 1.
      bool Mergeable =
          Last.hi() == PosInf || I.lo() <= Last.hi() ||
          (I.lo() != NegInf && I.lo() == Last.hi() + 1);
      if (Mergeable) {
        Last = Interval::range(Last.lo(), std::max(Last.hi(), I.hi()));
        continue;
      }
    }
    Out.push_back(I);
  }
  // Enforce the partition bound: merge the closest pair until within K.
  // Each forced merge is real precision lost to the bound — the gate metric.
  const unsigned K = disIntervalMaxPartitions();
  while (Out.size() > K) {
    size_t Best = 0;
    uint64_t BestGap = UINT64_MAX;
    for (size_t I = 0; I + 1 < Out.size(); ++I) {
      // Interior bounds are finite (only the first part may reach -oo and
      // only the last +oo), and Out[I+1].lo > Out[I].hi by disjointness, so
      // the unsigned difference is the true gap width.
      uint64_t Gap = static_cast<uint64_t>(Out[I + 1].lo()) -
                     static_cast<uint64_t>(Out[I].hi());
      if (Gap < BestGap) {
        BestGap = Gap;
        Best = I;
      }
    }
    Out[Best] =
        Interval::range(Out[Best].lo(), std::max(Out[Best].hi(), Out[Best + 1].hi()));
    Out.erase(Out.begin() + static_cast<ptrdiff_t>(Best) + 1);
    ++disIntervalCounters().PartitionsCollapsed;
  }
  DisInterval D;
  D.Parts = std::move(Out);
  return D;
}

bool DisInterval::contains(int64_t V) const {
  for (const Interval &P : Parts)
    if (P.contains(V))
      return true;
  return false;
}

Interval DisInterval::hull() const {
  if (Parts.empty())
    return Interval::empty();
  return Interval::range(Parts.front().lo(), Parts.back().hi());
}

bool DisInterval::subsumes(const DisInterval &O) const {
  // Every O-part must fit inside a single part here: parts are disjoint and
  // non-adjacent, so a convex O-part can never be covered by two of ours.
  for (const Interval &P : O.Parts) {
    bool Covered = false;
    for (const Interval &Q : Parts)
      if (Q.subsumes(P)) {
        Covered = true;
        break;
      }
    if (!Covered)
      return false;
  }
  return true;
}

DisInterval DisInterval::join(const DisInterval &O) const {
  std::vector<Interval> Raw = Parts;
  Raw.insert(Raw.end(), O.Parts.begin(), O.Parts.end());
  DisInterval R = normalized(std::move(Raw));
  if (R.Parts.size() >= 2)
    ++disIntervalCounters().DisjunctiveJoins;
  return R;
}

DisInterval DisInterval::meet(const DisInterval &O) const {
  std::vector<Interval> Raw;
  for (const Interval &A : Parts)
    for (const Interval &B : O.Parts) {
      Interval M = A.meet(B);
      if (!M.isEmpty())
        Raw.push_back(M);
    }
  return normalized(std::move(Raw));
}

DisInterval DisInterval::widen(const DisInterval &Next) const {
  if (Parts.empty())
    return Next;
  if (Next.Parts.empty())
    return *this;
  Interval HullW = hull().widen(Next.hull());
  if (Parts.size() != Next.Parts.size())
    return fromInterval(HullW);
  // Matched partition counts: widen pairwise, clamped by the hull widening
  // so the result never escapes what a plain interval would report. Covers
  // both arguments (pairwise interval widening does; the clamp is an upper
  // bound of both hulls) and terminates: once the hull widening stabilizes,
  // every bound either stays put or jumps to a hull-widened bound.
  std::vector<Interval> Raw;
  Raw.reserve(Parts.size());
  for (size_t I = 0, E = Parts.size(); I != E; ++I)
    Raw.push_back(Parts[I].widen(Next.Parts[I]).meet(HullW));
  return normalized(std::move(Raw));
}

DisInterval DisInterval::add(const DisInterval &O) const {
  std::vector<Interval> Raw;
  for (const Interval &A : Parts)
    for (const Interval &B : O.Parts)
      Raw.push_back(A.add(B));
  return normalized(std::move(Raw));
}

DisInterval DisInterval::sub(const DisInterval &O) const {
  return add(O.neg());
}

DisInterval DisInterval::neg() const {
  std::vector<Interval> Raw;
  for (const Interval &A : Parts)
    Raw.push_back(A.neg());
  return normalized(std::move(Raw));
}

DisInterval DisInterval::mul(const DisInterval &O) const {
  std::vector<Interval> Raw;
  for (const Interval &A : Parts)
    for (const Interval &B : O.Parts)
      Raw.push_back(A.mul(B));
  return normalized(std::move(Raw));
}

DisInterval DisInterval::div(const DisInterval &O) const {
  std::vector<Interval> Raw;
  for (const Interval &A : Parts)
    for (const Interval &B : O.Parts)
      Raw.push_back(A.div(B));
  return normalized(std::move(Raw));
}

DisInterval DisInterval::mod(const DisInterval &O) const {
  std::vector<Interval> Raw;
  for (const Interval &A : Parts)
    for (const Interval &B : O.Parts)
      Raw.push_back(A.mod(B));
  return normalized(std::move(Raw));
}

TriBool DisInterval::cmpLt(const DisInterval &O) const {
  // Hull-based, mirroring Interval::cmpLt exactly (gaps cannot sharpen a
  // strict order test beyond the hull bounds).
  if (Parts.empty() || O.Parts.empty())
    return TriBool::Unknown;
  return hull().cmpLt(O.hull());
}

TriBool DisInterval::cmpLe(const DisInterval &O) const {
  return triNot(O.cmpLt(*this));
}

TriBool DisInterval::cmpEq(const DisInterval &O) const {
  if (Parts.empty() || O.Parts.empty())
    return TriBool::Unknown;
  if (isConstant() && O.isConstant() &&
      Parts.front().lo() == O.Parts.front().lo())
    return TriBool::True;
  if (meet(O).isEmpty()) // Sharper than the hull: a gap refutes equality.
    return TriBool::False;
  return TriBool::Unknown;
}

DisInterval DisInterval::clampLe(int64_t Bound) const {
  std::vector<Interval> Raw;
  for (const Interval &P : Parts) {
    Interval C = P.clampLe(Bound);
    if (!C.isEmpty())
      Raw.push_back(C);
  }
  return normalized(std::move(Raw));
}

DisInterval DisInterval::clampGe(int64_t Bound) const {
  std::vector<Interval> Raw;
  for (const Interval &P : Parts) {
    Interval C = P.clampGe(Bound);
    if (!C.isEmpty())
      Raw.push_back(C);
  }
  return normalized(std::move(Raw));
}

DisInterval DisInterval::clampLt(int64_t Bound) const {
  if (Bound == PosInf)
    return *this;
  if (Bound == NegInf)
    return empty();
  return clampLe(Bound - 1);
}

DisInterval DisInterval::clampGt(int64_t Bound) const {
  if (Bound == NegInf)
    return *this;
  if (Bound == PosInf)
    return empty();
  return clampGe(Bound + 1);
}

DisInterval DisInterval::clampNe(int64_t V) const {
  if (Parts.empty() || isInf(V))
    return *this;
  std::vector<Interval> Raw;
  bool DidSplit = false;
  for (const Interval &P : Parts) {
    if (!P.contains(V)) {
      Raw.push_back(P);
      continue;
    }
    if (P.isConstant())
      continue; // {V} \ {V} = empty
    if (P.lo() == V) {
      Raw.push_back(Interval::range(V + 1, P.hi()));
    } else if (P.hi() == V) {
      Raw.push_back(Interval::range(P.lo(), V - 1));
    } else {
      // V strictly inside: split — the refinement a convex interval cannot
      // make (it would return the part unchanged).
      Raw.push_back(Interval::range(P.lo(), V - 1));
      Raw.push_back(Interval::range(V + 1, P.hi()));
      DidSplit = true;
    }
  }
  if (DidSplit)
    ++disIntervalCounters().PartitionSplits;
  return normalized(std::move(Raw));
}

uint64_t DisInterval::hash() const {
  uint64_t H = 0xd15a17e6b7c8d9e0ULL;
  for (const Interval &P : Parts)
    H = hashCombine(H, P.hash());
  return H;
}

std::string DisInterval::toString() const {
  if (Parts.empty())
    return "⊥";
  std::ostringstream OS;
  bool First = true;
  for (const Interval &P : Parts) {
    if (!First)
      OS << " ∪ ";
    First = false;
    OS << P.toString();
  }
  return OS.str();
}

//===----------------------------------------------------------------------===//
// DisIntervalDomain
//===----------------------------------------------------------------------===//

namespace {

DisIntervalState disBottomState() {
  DisIntervalState S;
  S.Bottom = true;
  return S;
}

DisVarAbs joinVar(const DisVarAbs &A, const DisVarAbs &B) {
  DisVarAbs R;
  R.Num = A.Num.join(B.Num);
  R.Len = A.Len.join(B.Len);
  R.Elems = A.Elems.join(B.Elems);
  return R;
}

DisVarAbs widenVar(const DisVarAbs &A, const DisVarAbs &B) {
  DisVarAbs R;
  R.Num = A.Num.widen(B.Num);
  R.Len = A.Len.widen(B.Len);
  R.Elems = A.Elems.widen(B.Elems);
  return R;
}

bool leqVar(const DisVarAbs &A, const DisVarAbs &B) {
  return B.Num.subsumes(A.Num) && B.Len.subsumes(A.Len) &&
         B.Elems.subsumes(A.Elems);
}

TriBool truth(const ExprPtr &E, const DisIntervalState &S);

DisInterval triToDis(TriBool T) {
  switch (T) {
  case TriBool::False: return DisInterval::constant(0);
  case TriBool::True: return DisInterval::constant(1);
  case TriBool::Unknown: return DisInterval::fromInterval(Interval::range(0, 1));
  }
  return DisInterval::fromInterval(Interval::range(0, 1));
}

DisVarAbs evalImpl(const ExprPtr &E, const DisIntervalState &S) {
  if (!E)
    return DisVarAbs::top();
  switch (E->Kind) {
  case ExprKind::IntLit:
    return DisVarAbs::numeric(DisInterval::constant(E->IntVal));
  case ExprKind::BoolLit:
    return DisVarAbs::numeric(DisInterval::constant(E->BoolVal ? 1 : 0));
  case ExprKind::NullLit:
    return DisVarAbs::top();
  case ExprKind::Var:
    return S.get(E->Name);
  case ExprKind::Unary: {
    if (E->UOp == UnaryOp::Neg)
      return DisVarAbs::numeric(evalImpl(E->Lhs, S).Num.neg());
    return DisVarAbs::numeric(triToDis(triNot(truth(E->Lhs, S))));
  }
  case ExprKind::Binary: {
    switch (E->BOp) {
    case BinaryOp::Add:
      return DisVarAbs::numeric(
          evalImpl(E->Lhs, S).Num.add(evalImpl(E->Rhs, S).Num));
    case BinaryOp::Sub:
      return DisVarAbs::numeric(
          evalImpl(E->Lhs, S).Num.sub(evalImpl(E->Rhs, S).Num));
    case BinaryOp::Mul:
      return DisVarAbs::numeric(
          evalImpl(E->Lhs, S).Num.mul(evalImpl(E->Rhs, S).Num));
    case BinaryOp::Div:
      return DisVarAbs::numeric(
          evalImpl(E->Lhs, S).Num.div(evalImpl(E->Rhs, S).Num));
    case BinaryOp::Mod:
      return DisVarAbs::numeric(
          evalImpl(E->Lhs, S).Num.mod(evalImpl(E->Rhs, S).Num));
    default:
      return DisVarAbs::numeric(triToDis(truth(E, S)));
    }
  }
  case ExprKind::ArrayLit: {
    DisVarAbs V;
    V.Num = DisInterval::top();
    V.Len = Interval::constant(static_cast<int64_t>(E->Elems.size()));
    Interval Summary = Interval::empty();
    for (const auto &Elem : E->Elems)
      Summary = Summary.join(evalImpl(Elem, S).Num.hull());
    V.Elems = Summary;
    return V;
  }
  case ExprKind::Index:
    return DisVarAbs::numeric(
        DisInterval::fromInterval(evalImpl(E->Lhs, S).Elems));
  case ExprKind::FieldRead:
    if (E->Name == "length")
      return DisVarAbs::numeric(
          DisInterval::fromInterval(evalImpl(E->Lhs, S).Len));
    return DisVarAbs::top();
  }
  return DisVarAbs::top();
}

TriBool truth(const ExprPtr &E, const DisIntervalState &S) {
  if (!E)
    return TriBool::Unknown;
  switch (E->Kind) {
  case ExprKind::BoolLit:
    return E->BoolVal ? TriBool::True : TriBool::False;
  case ExprKind::IntLit:
    return E->IntVal != 0 ? TriBool::True : TriBool::False;
  case ExprKind::NullLit:
    return TriBool::False;
  case ExprKind::Var: {
    DisInterval I = S.get(E->Name).Num;
    if (I.isConstant())
      return I.contains(0) ? TriBool::False : TriBool::True;
    // A gap over 0 decides truthiness where the hull cannot.
    if (!I.contains(0) && !I.isEmpty() && !I.isTop())
      return TriBool::True;
    return TriBool::Unknown;
  }
  case ExprKind::Unary:
    if (E->UOp == UnaryOp::Not)
      return triNot(truth(E->Lhs, S));
    return TriBool::Unknown;
  case ExprKind::Binary: {
    if ((E->Lhs && E->Lhs->Kind == ExprKind::NullLit) ||
        (E->Rhs && E->Rhs->Kind == ExprKind::NullLit))
      return TriBool::Unknown;
    DisInterval L = evalImpl(E->Lhs, S).Num;
    DisInterval R = evalImpl(E->Rhs, S).Num;
    switch (E->BOp) {
    case BinaryOp::Lt: return L.cmpLt(R);
    case BinaryOp::Le: return L.cmpLe(R);
    case BinaryOp::Gt: return R.cmpLt(L);
    case BinaryOp::Ge: return R.cmpLe(L);
    case BinaryOp::Eq: return L.cmpEq(R);
    case BinaryOp::Ne: return triNot(L.cmpEq(R));
    case BinaryOp::And: return triAnd(truth(E->Lhs, S), truth(E->Rhs, S));
    case BinaryOp::Or: return triOr(truth(E->Lhs, S), truth(E->Rhs, S));
    default: return TriBool::Unknown;
    }
  }
  default:
    return TriBool::Unknown;
  }
}

/// Clamps the refinable atom \p Target (a variable or `a.length`) against
/// \p Other under comparison \p Op. Returns false if the refinement empties
/// the value (state becomes ⊥). Mirrors interval.cpp's refineSide; the Num
/// side uses disjunctive refinements (Eq meets the full partition list, Ne
/// splits interiors).
bool refineSide(DisIntervalState &S, BinaryOp Op, const ExprPtr &Target,
                const DisInterval &Other) {
  if (!Target)
    return true;
  std::string Var;
  bool IsLen = false;
  if (Target->Kind == ExprKind::Var) {
    Var = Target->Name;
  } else if (Target->Kind == ExprKind::FieldRead && Target->Name == "length" &&
             Target->Lhs && Target->Lhs->Kind == ExprKind::Var) {
    Var = Target->Lhs->Name;
    IsLen = true;
  } else {
    return true;
  }
  DisVarAbs V = S.get(Var);
  Interval OtherHull = Other.hull();
  if (IsLen) {
    Interval &I = V.Len;
    switch (Op) {
    case BinaryOp::Lt: I = I.clampLt(OtherHull.hi()); break;
    case BinaryOp::Le: I = I.clampLe(OtherHull.hi()); break;
    case BinaryOp::Gt: I = I.clampGt(OtherHull.lo()); break;
    case BinaryOp::Ge: I = I.clampGe(OtherHull.lo()); break;
    case BinaryOp::Eq: I = I.meet(OtherHull); break;
    case BinaryOp::Ne:
      if (OtherHull.isConstant())
        I = I.clampNe(OtherHull.lo());
      break;
    default:
      return true;
    }
    if (I.isEmpty())
      return false;
  } else {
    DisInterval &I = V.Num;
    switch (Op) {
    case BinaryOp::Lt: I = I.clampLt(OtherHull.hi()); break;
    case BinaryOp::Le: I = I.clampLe(OtherHull.hi()); break;
    case BinaryOp::Gt: I = I.clampGt(OtherHull.lo()); break;
    case BinaryOp::Ge: I = I.clampGe(OtherHull.lo()); break;
    case BinaryOp::Eq: I = I.meet(Other); break;
    case BinaryOp::Ne:
      if (Other.isConstant())
        I = I.clampNe(OtherHull.lo());
      break;
    default:
      return true;
    }
    if (I.isEmpty())
      return false;
  }
  S.set(Var, V);
  return true;
}

BinaryOp flipCmp(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Lt: return BinaryOp::Gt;
  case BinaryOp::Le: return BinaryOp::Ge;
  case BinaryOp::Gt: return BinaryOp::Lt;
  case BinaryOp::Ge: return BinaryOp::Le;
  default: return Op; // Eq/Ne are symmetric
  }
}

} // namespace

IntervalState DisIntervalState::hullState() const {
  IntervalState S;
  S.Bottom = Bottom;
  if (Bottom)
    return S;
  for (const auto &[Var, V] : Env) {
    VarAbs H;
    H.Num = V.Num.hull();
    H.Len = V.Len;
    H.Elems = V.Elems;
    S.set(Var, H);
  }
  return S;
}

DisIntervalState DisIntervalDomain::bottom() { return disBottomState(); }

DisIntervalState
DisIntervalDomain::initialEntry(const std::vector<std::string> &Params) {
  (void)Params; // Parameters are unknown (⊤) at an uncalled entry.
  return DisIntervalState();
}

DisVarAbs DisIntervalDomain::eval(const ExprPtr &E,
                                  const DisIntervalState &S) {
  if (S.Bottom)
    return DisVarAbs::numeric(DisInterval::empty());
  return evalImpl(E, S);
}

DisIntervalState DisIntervalDomain::assume(const DisIntervalState &In,
                                           const ExprPtr &Cond) {
  if (In.Bottom || !Cond)
    return In;
  switch (Cond->Kind) {
  case ExprKind::BoolLit:
    return Cond->BoolVal ? In : disBottomState();
  case ExprKind::IntLit:
    return Cond->IntVal != 0 ? In : disBottomState();
  case ExprKind::Unary:
    if (Cond->UOp == UnaryOp::Not)
      return assume(In, negate(Cond->Lhs));
    return In;
  case ExprKind::Var:
    return assume(In, Expr::mkBinary(BinaryOp::Ne, Cond, Expr::mkInt(0)));
  case ExprKind::Binary: {
    if (Cond->BOp == BinaryOp::And)
      return assume(assume(In, Cond->Lhs), Cond->Rhs);
    if (Cond->BOp == BinaryOp::Or)
      // The payoff join: each disjunct's refinement survives as its own
      // partition (up to K) instead of being hulled away.
      return join(assume(In, Cond->Lhs), assume(In, Cond->Rhs));
    if (!isComparison(Cond->BOp))
      return In;
    if (truth(Cond, In) == TriBool::False)
      return disBottomState();
    if ((Cond->Lhs && Cond->Lhs->Kind == ExprKind::NullLit) ||
        (Cond->Rhs && Cond->Rhs->Kind == ExprKind::NullLit))
      return In;
    DisIntervalState Out = In;
    DisInterval L = evalImpl(Cond->Lhs, In).Num;
    DisInterval R = evalImpl(Cond->Rhs, In).Num;
    if (!refineSide(Out, Cond->BOp, Cond->Lhs, R))
      return disBottomState();
    if (!refineSide(Out, flipCmp(Cond->BOp), Cond->Rhs, L))
      return disBottomState();
    return Out;
  }
  default:
    return In;
  }
}

DisIntervalState DisIntervalDomain::transfer(const Stmt &S,
                                             const DisIntervalState &In) {
  if (In.Bottom)
    return In;
  DisIntervalState Out = In;
  switch (S.Kind) {
  case StmtKind::Skip:
  case StmtKind::Print:
  case StmtKind::FieldWrite: // Heap mutation: no numeric effect.
    return Out;
  case StmtKind::Alloc:
    Out.set(S.Lhs, DisVarAbs::top());
    return Out;
  case StmtKind::Assign:
    Out.set(S.Lhs, evalImpl(S.Rhs, In));
    return Out;
  case StmtKind::Assume:
  case StmtKind::Assert: // Execution aborts on failure, so e holds after.
    return assume(In, S.Rhs);
  case StmtKind::ArrayWrite: {
    DisVarAbs A = In.get(S.Lhs);
    A.Elems = A.Elems.join(evalImpl(S.Rhs, In).Num.hull());
    Out.set(S.Lhs, A);
    return Out;
  }
  case StmtKind::Call:
    // Intraprocedural default: havoc the result. The interprocedural engine
    // replaces this with a demanded callee summary.
    Out.set(S.Lhs, DisVarAbs::top());
    return Out;
  }
  return Out;
}

DisIntervalState DisIntervalDomain::join(const DisIntervalState &A,
                                         const DisIntervalState &B) {
  if (A.Bottom)
    return B;
  if (B.Bottom)
    return A;
  DisIntervalState R;
  // Absent = ⊤, so only variables bound in both sides stay bound.
  for (const auto &[Var, VA] : A.Env) {
    auto It = B.Env.find(Var);
    if (It != B.Env.end())
      R.set(Var, joinVar(VA, It->second));
  }
  return R;
}

DisIntervalState DisIntervalDomain::widen(const DisIntervalState &Prev,
                                          const DisIntervalState &Next) {
  if (Prev.Bottom)
    return Next;
  if (Next.Bottom)
    return Prev;
  DisIntervalState R;
  for (const auto &[Var, VP] : Prev.Env) {
    auto It = Next.Env.find(Var);
    if (It != Next.Env.end())
      R.set(Var, widenVar(VP, It->second));
  }
  return R;
}

bool DisIntervalDomain::leq(const DisIntervalState &A,
                            const DisIntervalState &B) {
  if (A.Bottom)
    return true;
  if (B.Bottom)
    return false;
  for (const auto &[Var, VB] : B.Env)
    if (!leqVar(A.get(Var), VB))
      return false;
  return true;
}

bool DisIntervalDomain::equal(const DisIntervalState &A,
                              const DisIntervalState &B) {
  if (A.Bottom || B.Bottom)
    return A.Bottom == B.Bottom;
  return A.Env == B.Env;
}

uint64_t DisIntervalDomain::hash(const DisIntervalState &A) {
  if (A.Bottom)
    return 0xd15b0770a1b2c3d4ULL;
  uint64_t H = 0x5eedface90217f3bULL;
  for (const auto &[Var, V] : A.Env) {
    H = hashCombine(H, static_cast<uint64_t>(Var));
    H = hashCombine(H, V.Num.hash());
    H = hashCombine(H, V.Len.hash());
    H = hashCombine(H, V.Elems.hash());
  }
  return H;
}

std::string DisIntervalDomain::toString(const DisIntervalState &A) {
  if (A.Bottom)
    return "⊥";
  std::ostringstream OS;
  OS << "{";
  bool First = true;
  for (const auto &[Var, V] : A.Env) {
    if (!First)
      OS << ", ";
    First = false;
    OS << symbolName(Var) << ": " << V.Num.toString();
    if (!V.Len.isTop())
      OS << " len" << V.Len.toString();
    if (!V.Elems.isTop())
      OS << " elems" << V.Elems.toString();
  }
  OS << "}";
  return OS.str();
}

DisIntervalState
DisIntervalDomain::enterCall(const DisIntervalState &Caller,
                             const Stmt &CallSite,
                             const std::vector<std::string> &CalleeParams) {
  if (Caller.Bottom)
    return Caller;
  assert(CallSite.Kind == StmtKind::Call && "enterCall requires a call site");
  DisIntervalState Entry;
  for (size_t I = 0, E = CalleeParams.size(); I != E; ++I) {
    if (I < CallSite.Args.size())
      Entry.set(CalleeParams[I], evalImpl(CallSite.Args[I], Caller));
  }
  return Entry;
}

DisIntervalState DisIntervalDomain::exitCall(const DisIntervalState &Caller,
                                             const DisIntervalState &CalleeExit,
                                             const Stmt &CallSite) {
  if (Caller.Bottom)
    return Caller;
  if (CalleeExit.Bottom)
    return disBottomState(); // The call never returns.
  assert(CallSite.Kind == StmtKind::Call && "exitCall requires a call site");
  DisIntervalState Out = Caller;
  // Arrays are passed by reference: the callee may have written elements,
  // but can never change a length (the statement language has no resize).
  for (const auto &Arg : CallSite.Args) {
    if (Arg && Arg->Kind == ExprKind::Var) {
      DisVarAbs V = Out.get(Arg->Name);
      if (!V.Elems.isTop()) {
        V.Elems = Interval::top();
        Out.set(Arg->Name, V);
      }
    }
  }
  Out.set(CallSite.Lhs, CalleeExit.get(RetVar));
  return Out;
}
