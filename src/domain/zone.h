//===-- domain/zone.h - Sparse split-DBM zone domain ------------*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The zone (difference-bound) abstract domain over a SPARSE weighted
/// digraph, after Gange et al., "Exploiting Sparsity in Difference-Bound
/// Matrices" (SAS'16) and its crab `split_dbm` engineering, with closure
/// maintenance following Cotton & Maler's incremental difference-constraint
/// propagation — rather than Miné-style dense O(n²)/O(n³) matrix sweeps.
/// This is the codebase's first non-matrix relational domain: where the
/// octagon pays for every tracked dimension on every closure, the zone's
/// transfer/query cost scales with the number of LIVE constraints, which is
/// exactly what the paper's demanded-evaluation model rewards on mostly-⊤
/// states (ROADMAP: "Truly sparse DBM rows").
///
/// Representation:
///  - Constraints are x − y ≤ c (differences) and ±x ≤ c (bounds via the
///    distinguished ZERO VERTEX 0, whose value is the constant 0). An edge
///    u → v with weight w encodes  x_v − x_u ≤ w  (the octagon file's
///    "entry (i,j) bounds V_j − V_i" read graph-wise), so edge (0,v,c) is
///    the upper bound x_v ≤ c and edge (v,0,c) the lower bound −x_v ≤ c.
///  - The graph is adjacency-list: per-vertex out-edge vectors sorted by
///    destination, plus predecessor lists for reverse sweeps. Vertices are
///    allocated per tracked variable (interned SymbolId, domain/symbol.h)
///    and recycled through a free list; absent edge = +∞, never stored.
///  - A POTENTIAL FUNCTION π (one value per vertex, maintained separately
///    from the graph, split-DBM style) certifies feasibility: π is a
///    concrete model, π(v) − π(u) ≤ w for every edge. Adding a constraint
///    repairs π with a Bellman–Ford relaxation from the edge head; repair
///    failure (the relaxation wraps back to the tail) is a negative cycle,
///    i.e. ⊥ — so emptiness is detected eagerly at constraint addition and
///    a non-⊥ zone always carries a feasibility certificate. ⊥ is explicit
///    (a flag), and every reader is ⊥-safe (boundsOf returns the empty
///    interval rather than leaking sentinels).
///  - π also makes all closure work Dijkstra-able: reduced costs
///    w + π(u) − π(v) are non-negative, so single-source sweeps need no
///    Bellman–Ford re-scans.
///
/// Closure discipline (mirrors domain/octagon.h, sparse kernels):
///  - The canonical closed form materializes exactly the FINITE
///    shortest-path entries as edges; unconstrained pairs stay absent.
///    Closed zones are canonical (equal concretizations ⟺ identical
///    closed graphs), which hash()/equal() rely on.
///  - Constraint addition on a closed value restores closure INCREMENTALLY
///    (Cotton–Maler / crab close_over_edge): only predecessors of the new
///    edge's tail and successors of its head participate, so the cost is
///    O(in-degree · out-degree) of the touched vertices — the number of
///    live constraints, not the dimension count.
///  - Full close() (for widening iterates of unknown provenance) is
///    DEMAND-DRIVEN RESTRICTED: closeEdgesFrom(s) runs one reduced-cost
///    Dijkstra from s touching only vertices reachable through non-⊤
///    edges, and close() sweeps only sources that have out-edges. A
///    mostly-⊤ zone closes in time proportional to its constrained part.
///  - widen keeps its result UNCLOSED (the classic DBM widening caveat) and
///    works by EDGE DROPPING: an edge whose bound did not stabilize is
///    removed outright, so widening also physically sparsifies.
///  - An unclosed value caches its closed form on first demand (closedView),
///    shared across copies — same contract as the octagon's.
///  - Every mutating entry point re-validates the potential certificate
///    under !NDEBUG (assertPotentialValid).
///
/// The value type is copy-on-write like the octagon's: DAIG cells, memo
/// stores, and closed views copy zones far more often than they mutate
/// them, so the graph buffer (and the caches derived from it) is shared
/// until a mutation un-shares it.
///
//===----------------------------------------------------------------------===//

#ifndef DAI_DOMAIN_ZONE_H
#define DAI_DOMAIN_ZONE_H

#include "domain/abstract_domain.h"
#include "domain/interval.h"
#include "domain/symbol.h"
#include "support/statistics.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dai {

/// A zone abstract value: ⊥, or a sparse difference-bound graph over
/// interned variable symbols plus the zero vertex.
///
/// \invariant POTENTIAL FUNCTION: every non-⊥ zone carries a potential π
///   with π(v) − π(u) ≤ w for every stored edge u→v — a concrete model of
///   the constraint system, i.e. a *feasibility certificate*. It is
///   repaired at every constraint addition (Bellman–Ford from the edge
///   head); repair failure IS ⊥, so emptiness is detected eagerly and no
///   closure ever discovers it later. It also makes all closure sweeps
///   Dijkstra-able via non-negative reduced costs w + π(u) − π(v).
/// \invariant ⊥-SAFETY: every reader is total on ⊥ (boundsOf returns the
///   EMPTY interval, constraintOn returns +∞, vars() is empty) — no
///   npos-style sentinels leak out of degenerate states.
/// \invariant COPY-ON-WRITE: the graph buffer (including the cached closure
///   and normalized hash) is shared across copies until a mutation
///   un-shares it; derived caches are invalidated by any mutation.
class Zone {
public:
  static constexpr int64_t kPosInf = INT64_MAX;
  /// Vertex id of the distinguished zero vertex.
  static constexpr uint32_t kZeroVert = 0;

  /// Constructs ⊤ over the empty variable set.
  Zone() = default;

  static Zone top() { return Zone(); }
  static Zone bottomValue() {
    Zone Z;
    Z.Bottom = true;
    return Z;
  }

  /// ⊥ is explicit and eager: a non-⊥ zone carries a valid potential
  /// (feasibility certificate), so no closure can discover emptiness later.
  bool isBottom() const { return Bottom; }

  /// The tracked dimensions, sorted ascending by SymbolId.
  const std::vector<SymbolId> &vars() const;
  size_t numVars() const { return vars().size(); }

  /// Index of \p Sym in vars(), or npos.
  size_t varIndex(SymbolId Sym) const;
  /// String convenience: probes the intern table WITHOUT interning.
  size_t varIndex(const std::string &Var) const;

  /// Adds an unconstrained dimension for \p Sym if absent (keeps closure).
  void addVar(SymbolId Sym);
  void addVar(const std::string &Var) { addVar(internSymbol(Var)); }

  /// Removes every constraint involving \p Sym and drops its dimension
  /// (closes first for precision).
  void forgetAndRemove(SymbolId Sym);
  void forgetAndRemove(const std::string &Var);

  /// Removes every constraint involving \p Sym IN PLACE (the dimension
  /// stays, unconstrained). Closes first for precision; stripping a closed
  /// vertex preserves closure.
  void forgetInPlace(SymbolId Sym);

  /// Projects onto \p Keep (every other dimension is dropped), closing
  /// first for precision. No-op when nothing would be dropped.
  void restrictTo(const std::vector<SymbolId> &Keep);

  /// Projects onto \p Keep WITHOUT closing first (sound only where
  /// imprecision is acceptable — widening, which must not close its left
  /// argument). Preserves the Closed flag as-is.
  void projectRawTo(const std::vector<SymbolId> &Keep);

  /// Renames variable \p From to \p To (To must be absent). Pure symbol
  /// surgery: the graph is untouched (a sparse-representation win — the
  /// matrix layouts permute rows and columns here).
  void rename(SymbolId From, SymbolId To);
  void rename(const std::string &From, const std::string &To) {
    rename(internSymbol(From), internSymbol(To));
  }

  /// Tightens with  x ≤ C  /  x ≥ C  /  x − y ≤ C. The variables must be
  /// tracked (addVar first). On a closed receiver closure is restored
  /// incrementally (close_over_edge); on an unclosed one the value stays
  /// unclosed. Infeasibility collapses to ⊥ immediately. Bounds with |C|
  /// beyond kPosInf/4 are treated as unconstraining no-ops (overflow
  /// headroom for closure sums, as in the octagon's addConstraint guard).
  void addUpperBound(SymbolId X, int64_t C);
  void addLowerBound(SymbolId X, int64_t C);
  void addDifference(SymbolId X, SymbolId Y, int64_t C);

  /// Demand-driven restricted closure: materializes every finite
  /// shortest-path entry by running closeEdgesFrom over the vertices that
  /// have out-edges. Idempotent; cost ∝ constrained subgraph.
  /// \post isClosed() (or isBottom() was already true): every derivable
  ///       difference/unary bound is stored as a direct edge, so readers
  ///       (boundsOf, constraintOn, entails) see tight values.
  void close();

  /// Single-source restricted closure: one reduced-cost Dijkstra from
  /// \p Vert touching only reachable non-⊤ vertices, materializing the
  /// finite distances as edges. Building block of close(); exposed for
  /// tests and the bench.
  void closeEdgesFrom(uint32_t Vert);

  bool isClosed() const { return Closed; }

  /// Read-only access to the strongly closed form of this value: *this when
  /// already closed (or ⊥), otherwise a closure computed at most once and
  /// cached, shared across copies. Invalidated by any mutation.
  const Zone &closedView() const;

  /// Interval of \p Sym implied by this zone. ⊥-SAFE: returns the empty
  /// interval on ⊥ (the pre-PR-2 octagon leaked npos-style sentinels from
  /// readers on degenerate states; zone readers are total). Requires a
  /// closed (or ⊥) receiver for tight bounds.
  Interval boundsOf(SymbolId Sym) const;
  Interval boundsOf(const std::string &Var) const;

  /// Closed-graph weight between two endpoints (kNoSymbol = zero vertex),
  /// kPosInf when unconstrained. The lockstep test oracle's probe.
  int64_t constraintOn(SymbolId U, SymbolId V) const;

  /// Visits every stored constraint as (U, V, W) meaning x_V − x_U ≤ W,
  /// where kNoSymbol stands for the zero vertex — so (kNoSymbol, v, c) is
  /// the upper bound x_v ≤ c and (u, kNoSymbol, c) the lower bound
  /// −x_u ≤ c. Visitation order is unspecified. This is the escalation
  /// seeding surface of domain/staged.h: a closed receiver enumerates its
  /// canonical (all-pairs shortest-path) constraint set, which is exactly
  /// what an octagon seeded from this zone must entail.
  /// \pre Callback is invocable as void(SymbolId, SymbolId, int64_t).
  template <typename Callback> void forEachConstraint(Callback &&CB) const {
    if (Bottom || !B)
      return;
    const GraphBuf &G = buf();
    for (uint32_t U = 0; U < static_cast<uint32_t>(G.Out.size()); ++U)
      for (const Edge &E : G.Out[U])
        CB(G.SymOf[U], G.SymOf[E.Dst], E.W);
  }

  /// The tracked symbols carrying at least one constraint (an incident
  /// edge) — normalize()'s keep-predicate, one sweep over the adjacency.
  std::vector<SymbolId> constrainedVars() const;

  /// Entailment check: every edge (constraint) of \p O is implied by this
  /// (closed) receiver. Variables absent here are unconstrained.
  bool entails(const Zone &O) const;

  /// this := this ⊔ O over identical variable sets, both sides closed: an
  /// edge survives iff the pair is constrained in BOTH inputs, with the
  /// looser (max) bound — per-edge max over the union of edge sets, where
  /// one-sided pairs are ∞. Result is closed (entrywise max of closed DBMs
  /// is closed) and only ever loosens, so the potential stays valid.
  void joinWith(const Zone &O);

  /// Classic DBM widening kernel over identical variable sets, by edge
  /// DROPPING: an edge whose bound in \p O (closed) exceeds this one's is
  /// removed outright. Result is marked unclosed.
  void widenWith(const Zone &O);

  uint64_t hash() const;

  /// Hash of the normalized form (unconstrained dimensions ignored),
  /// canonical in symbol space. Requires a closed (or ⊥) receiver.
  uint64_t hashNormalized() const;

  std::string toString() const;

  /// Live edge count (introspection for tests/bench).
  size_t edgeCount() const;

  /// Validates the potential certificate: π(v) − π(u) ≤ w for every edge.
  /// Always true for non-⊥ values; asserted by every mutating entry point
  /// under !NDEBUG.
  bool potentialValid() const;

  bool Bottom = false;
  bool Closed = true; ///< The empty graph is trivially closed.

private:
  struct Edge {
    uint32_t Dst;
    int64_t W;
  };

  /// The shared graph buffer: everything derived from the constraint set
  /// (including the cached closure and normalized hash) lives inside, so
  /// the first consumer to close or hash any copy fills the cache for every
  /// sharer — the octagon's MatBuf scheme, graph-shaped.
  struct GraphBuf {
    std::vector<SymbolId> Vars;      ///< Tracked symbols, sorted ascending.
    std::vector<uint32_t> VertOf;    ///< Vars[i] lives at vertex VertOf[i].
    std::vector<SymbolId> SymOf;     ///< Vertex → symbol (kNoSymbol for the
                                     ///< zero vertex and freed slots).
    std::vector<std::vector<Edge>> Out; ///< Out-edges, sorted by Dst.
    std::vector<std::vector<uint32_t>> In; ///< Predecessor ids, sorted.
    std::vector<int64_t> Pot;        ///< The potential function π.
    std::vector<uint32_t> FreeVerts; ///< Recycled vertex slots.
    size_t NumEdges = 0;

    std::shared_ptr<const Zone> ClosedCache; ///< See closedView().
    uint64_t NormHash = 0;
    bool NormHashValid = false;
  };
  /// Null encodes the empty (zero-variable, zero-edge) value.
  std::shared_ptr<GraphBuf> B;

  const GraphBuf &buf() const;
  /// Mutable buffer access with copy-on-write: clones the graph iff shared;
  /// the clone starts with empty caches.
  GraphBuf &bufMut();
  /// Un-shares the buffer and drops caches derived from the old contents.
  void invalidateDerived();

  uint32_t vertOf(SymbolId Sym) const; ///< ~0u when untracked.
  uint32_t ensureVert(SymbolId Sym);

  /// Stored weight of edge U→V, kPosInf when absent.
  int64_t weightOf(uint32_t U, uint32_t V) const;
  /// Inserts or lowers edge U→V; counts materializations. Pure storage —
  /// no potential repair, no closure.
  void storeEdge(uint32_t U, uint32_t V, int64_t W);
  void eraseEdge(uint32_t U, uint32_t V);
  /// Removes every edge incident to \p Vert (the vertex stays allocated).
  void stripVertex(uint32_t Vert);
  /// stripVertex + returns the slot to the free list and drops the symbol.
  void freeVertex(uint32_t Vert);

  /// Canonical-order graph hash shared by hash() and hashNormalized():
  /// sources in (zero-vertex, then symbol-ascending) order, destinations by
  /// symbol key — vertex ids are an allocation artifact and must not leak
  /// in. When \p NormalizedVars, dimensions without an incident edge are
  /// skipped in the variable prefix (normalize()'s predicate); the edge
  /// sweep is identical either way, since edge-free rows hash nothing.
  uint64_t hashGraph(bool NormalizedVars) const;

  /// Vertex-translation table for binary kernels: my vertex id → \p O's
  /// vertex id of the same symbol (~0u when untracked there; identity for
  /// the zero vertex). Built once so the per-edge hop is two array loads.
  std::vector<uint32_t> vertMapTo(const Zone &O) const;

  /// Tracked symbols NOT in \p Keep (the projection helpers' drop set).
  std::vector<SymbolId> varsNotIn(const std::vector<SymbolId> &Keep) const;
  /// Frees every vertex in \p Drop (invalidating derived caches first).
  void dropVars(const std::vector<SymbolId> &Drop);

  /// Shared implementation of the three add* entry points: tightens edge
  /// U→V to min(current, W), repairs the potential (⊥ on negative cycle),
  /// and restores closure incrementally when the receiver was closed.
  void tightenAndClose(uint32_t U, uint32_t V, int64_t W);

  /// Bellman–Ford potential repair after edge U→V tightened to W. Returns
  /// false on a negative cycle (the relaxation wraps back to U).
  bool repairPotential(uint32_t U, uint32_t V, int64_t W);

  /// Cotton–Maler incremental closure after edge U→V was tightened on a
  /// previously-closed graph: tightens s→V for improved predecessors s of
  /// U, U→t for improved successors t of V, and the s×t cross product.
  void closeOverEdge(uint32_t U, uint32_t V);

  void assertPotentialValid() const;
};

/// The zone abstract domain policy (satisfies AbstractDomain).
struct ZoneDomain {
  using Elem = Zone;

  static Elem bottom() { return Zone::bottomValue(); }
  static Elem initialEntry(const std::vector<std::string> &Params);
  static Elem transfer(const Stmt &S, const Elem &In);
  static Elem join(const Elem &A, const Elem &B);
  static Elem widen(const Elem &Prev, const Elem &Next);
  static bool leq(const Elem &A, const Elem &B);
  static bool equal(const Elem &A, const Elem &B);
  static uint64_t hash(const Elem &A);
  static std::string toString(const Elem &A);
  static const char *name() { return "zone"; }
  static bool isBottom(const Elem &A);

  static Elem enterCall(const Elem &Caller, const Stmt &CallSite,
                        const std::vector<std::string> &CalleeParams);
  static Elem exitCall(const Elem &Caller, const Elem &CalleeExit,
                       const Stmt &CallSite);

  /// Refines \p In under the assumption \p Cond (difference/bound atoms are
  /// tightened exactly; others fall back to interval reasoning).
  static Elem assume(const Elem &In, const ExprPtr &Cond);
};

} // namespace dai

#endif // DAI_DOMAIN_ZONE_H
