//===-- domain/staged.h - Staged zone→octagon domain ------------*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The staged zone→octagon abstract domain: runs the cheap sparse zone
/// (domain/zone.h) everywhere and materializes the dense octagon
/// (domain/octagon.h) only where ±x±y (sum-constraint) precision is
/// demanded — amortizing the octagon's O(n²) closure sweeps onto exactly
/// the locations whose queries pay for them. The paper's demanded-
/// evaluation model makes the escalation point a natural query boundary:
/// escalation is "re-demand this query's slice with the octagon tier
/// enabled", and the DAIG recomputes only what the query transitively
/// needs.
///
/// Value shape: a `Staged` is a zone plus an OPTIONAL octagon tier
/// (`Oct == nullptr` ⇔ zone-only). Every transfer/assume/join/widen runs
/// on the zone; the octagon tier runs in lockstep only on ESCALATED values
/// (and is created by one of the three escalation triggers below).
///
/// Escalation triggers:
///  1. An `assume` whose guard is octagonal-but-not-zone (a ±x±y sum atom):
///     the octagon tier is seeded on the spot from the zone's closed
///     difference bounds plus residual intervals (seedOctagonFromZone), so
///     the guard refines a relation the zone could not even store.
///  2. Escalation mode (`StagedDomain::setEscalation` /
///     `StagedEscalationScope`): while enabled, initialEntry produces
///     escalated states and every transfer keeps both tiers — the mode the
///     demand-driven re-evaluation of a precision query runs under.
///  3. An explicit precision demand through `queryEscalatedMain`: if the
///     cached value at the queried location is zone-only (or was escalated
///     only through a mid-path seeding), the engine's instances are reset
///     and the query's slice is re-demanded under escalation mode.
///
/// Reduction discipline (who flows into whom):
///  - octagon → zone: at every dual-tier transfer boundary the octagon's
///    implied UNARY bounds are imported into the zone (cheap: one
///    incremental zone tightening per refined bound), and an octagon-⊥
///    collapses the whole value to ⊥. Escalated locations therefore keep
///    the zone tier at least as tight as the octagon's interval projection.
///  - zone → octagon: DELIBERATELY OMITTED. The octagon tier is seeded
///    from the zone once (at escalation) and then evolves independently,
///    so under the full-escalation query protocol its values are equal to
///    a pure-octagon analysis of the same slice — which is what lets the
///    bench lockstep-verify staged sum-constraint answers against a pure
///    octagon run, and what keeps reduction off the dense n² path.
///
/// Exactness contract: values computed entirely under escalation mode
/// (initialEntry onward — the queryEscalatedMain reset protocol) carry an
/// octagon tier equal to a pure-octagon demanded evaluation of the same
/// query; sum-form queries on them are octagon-exact. Values escalated
/// MID-PATH (trigger 1, or a zone-only cached cell feeding a dual-tier
/// transfer under mode) are marked `Seeded`: sound, typically tight, but
/// not guaranteed pure-octagon-equal — queryEscalatedMain re-demands them.
///
//===----------------------------------------------------------------------===//

#ifndef DAI_DOMAIN_STAGED_H
#define DAI_DOMAIN_STAGED_H

#include "cfg/cfg.h"
#include "domain/abstract_domain.h"
#include "domain/octagon.h"
#include "domain/zone.h"
#include "support/budget.h"
#include "support/observe.h"
#include "support/statistics.h"

#include <cassert>
#include <memory>
#include <string>
#include <vector>

namespace dai {

/// A staged abstract value: a zone tier plus an optional octagon tier.
///
/// \invariant ⊥ is canonical: Z.isBottom() ⇒ Oct == nullptr. Every domain
///   operation routes through reduction, which collapses an octagon-⊥ into
///   the canonical form, so `Z.isBottom()` is the whole bottom test.
/// \invariant Both tiers are independently sound over-approximations of
///   the same concrete states; readers may intersect them.
/// \invariant The octagon tier is shared copy-on-write (shared_ptr): DAIG
///   cells and memo stores copy staged values far more often than they
///   mutate them, and the tiers' own buffers are copy-on-write underneath.
class Staged {
public:
  Zone Z;                             ///< The always-on cheap tier.
  std::shared_ptr<const Octagon> Oct; ///< Escalated tier; null = zone-only.
  /// True when the octagon tier (of this value or an ancestor) was seeded
  /// mid-path rather than evaluated from an escalated entry state — see
  /// the exactness contract in the file header. Part of equal()/hash()
  /// like the escalation status: a pure and a seeded value must not share
  /// a memo entry, or a post-reset re-evaluation could resurrect a stale
  /// Seeded flag and make queryEscalatedMain re-demand the slice forever.
  /// Propagation is monotone (once true in a chain, stays true), so fix
  /// iterates still converge.
  bool Seeded = false;

  Staged() = default;

  bool escalated() const { return Oct != nullptr; }
  const Octagon &octagon() const {
    assert(Oct && "octagon() on a zone-only value");
    return *Oct;
  }

  /// Interval of \p Sym: the zone tier's bounds, intersected with the
  /// octagon tier's when escalated. ⊥-safe (empty interval on ⊥).
  Interval boundsOf(SymbolId Sym) const;
  Interval boundsOf(const std::string &Var) const;

  /// Interval of the SUM x + y — the query the zone cannot answer
  /// relationally. On an escalated value this is the octagon tier's answer
  /// (octagon-exact under the full-escalation protocol); on a zone-only
  /// value it degrades to the interval sum of the zone's unary bounds.
  /// Counted in StagedCounters::SumQueries. ⊥-safe.
  Interval sumBounds(SymbolId X, SymbolId Y) const;

  /// Interval of the DIFFERENCE x − y: the zone answers this natively; the
  /// octagon tier tightens it further when escalated. ⊥-safe.
  Interval diffBounds(SymbolId X, SymbolId Y) const;

  std::string toString() const;
};

/// Seeds a strongly-closed octagon from \p Zv: the zone's closed difference
/// bounds plus residual (unary) intervals, batch-added and re-closed with
/// one k-pivot sweep. The seed entails exactly the zone's bounds — no
/// precision lost (every zone constraint is an octagon constraint), no
/// unsound tightening (strong closure over zone-representable constraints
/// derives nothing beyond the zone's own closure; lockstep-tested).
/// Counted in StagedCounters::OctSeeds.
Octagon seedOctagonFromZone(const Zone &Zv);

/// True when \p Cond contains a comparison atom that is octagonal but not
/// zone-representable — a unit-coefficient SUM like x + y ≤ c (both
/// coefficients of the normalized L − R form carry the same sign). These
/// are the guards that trigger on-the-spot escalation.
bool guardNeedsOctagon(const ExprPtr &Cond);

/// The staged zone→octagon abstract domain policy (satisfies
/// AbstractDomain). All operations act componentwise on the tiers present,
/// with octagon→zone reduction at transfer/join/call boundaries (never
/// after widening — re-tightening a widened iterate would re-grow dropped
/// edges and defeat convergence).
struct StagedDomain {
  using Elem = Staged;

  static Elem bottom();
  static Elem initialEntry(const std::vector<std::string> &Params);
  static Elem transfer(const Stmt &S, const Elem &In);
  static Elem join(const Elem &A, const Elem &B);
  static Elem widen(const Elem &Prev, const Elem &Next);
  static bool leq(const Elem &A, const Elem &B);
  static bool equal(const Elem &A, const Elem &B);
  static uint64_t hash(const Elem &A);
  static std::string toString(const Elem &A);
  static const char *name() { return "staged"; }
  static bool isBottom(const Elem &A);

  static Elem enterCall(const Elem &Caller, const Stmt &CallSite,
                        const std::vector<std::string> &CalleeParams);
  static Elem exitCall(const Elem &Caller, const Elem &CalleeExit,
                       const Stmt &CallSite);

  /// Refines \p In under \p Cond on both tiers; an octagonal-not-zone
  /// guard escalates a zone-only input first (trigger 1).
  static Elem assume(const Elem &In, const ExprPtr &Cond);

  /// Escalation mode (trigger 2): while true, initialEntry is escalated
  /// and every transfer/join/call keeps both tiers. Thread-local, like the
  /// counters — one analysis engine per thread.
  static bool escalationEnabled();
  static void setEscalation(bool On);
};

/// RAII escalation-mode scope for query-time precision demands.
class StagedEscalationScope {
public:
  StagedEscalationScope() : Prev(StagedDomain::escalationEnabled()) {
    StagedDomain::setEscalation(true);
  }
  ~StagedEscalationScope() { StagedDomain::setEscalation(Prev); }
  StagedEscalationScope(const StagedEscalationScope &) = delete;
  StagedEscalationScope &operator=(const StagedEscalationScope &) = delete;

private:
  bool Prev;
};

/// Precision-demand query (trigger 3): demands the state at \p L in the
/// root instance of \p E (an InterprocEngine<StagedDomain>) with the
/// octagon tier materialized. If the cached value is zone-only or only
/// mid-path-seeded, the engine's instances are reset and the query's slice
/// is re-demanded under escalation mode — the demanded-evaluation model
/// recomputes exactly the slice the query needs, dual-tier, from escalated
/// entry states, making the returned octagon tier pure-octagon-exact.
/// Counted in StagedCounters::Escalations when a re-demand happens.
template <typename EngineT>
Staged queryEscalatedMain(EngineT &E, Loc L) {
  Staged V = E.queryMain(L);
  if (StagedDomain::isBottom(V) || (V.escalated() && !V.Seeded))
    return V;
  // Under a degraded budget NEW escalation re-demands are suppressed: the
  // reset-and-re-demand would recompute the whole slice dual-tier, exactly
  // the work the budget is shedding. The zone-tier answer stays sound; the
  // budget taint gives the caller's cell degraded provenance so the loss
  // of octagon precision is auditable rather than silent.
  if (budgetDegraded()) {
    budgetState().TaintPending = true;
    return V;
  }
  ++stagedCounters().Escalations;
  TraceSpan Sp("staged.escalation", L);
  StagedEscalationScope Scope;
  E.resetAllInstances();
  return E.queryMain(L);
}

} // namespace dai

#endif // DAI_DOMAIN_STAGED_H
