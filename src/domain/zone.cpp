//===-- domain/zone.cpp - Sparse split-DBM zone domain --------------------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "domain/zone.h"

#include "cfg/program.h"
#include "domain/linear.h"
#include "support/fault_injection.h"
#include "support/hashing.h"
#include "support/observe.h"
#include "support/statistics.h"

#include <algorithm>
#include <cassert>
#include <queue>
#include <sstream>

using namespace dai;

namespace {

constexpr int64_t Inf = Zone::kPosInf;
constexpr size_t npos = static_cast<size_t>(-1);
constexpr uint32_t NoVert = ~0u;

/// Bound addition with +∞ absorption (same clamp discipline as the
/// octagon's bAdd: negative overflow errs toward ⊥ detection).
int64_t bAdd(int64_t A, int64_t B) {
  if (A == Inf || B == Inf)
    return Inf;
  int64_t R;
  if (__builtin_add_overflow(A, B, &R))
    return (A > 0) ? Inf : INT64_MIN / 4;
  return R;
}

/// Bounds with magnitude beyond this are unconstraining no-ops: closure
/// sums up to three stored weights, so Inf/4 of headroom keeps every
/// candidate finite-arithmetic clean.
constexpr int64_t kMaxBound = Inf / 4;

} // namespace

//===----------------------------------------------------------------------===//
// Buffer management (copy-on-write, octagon MatBuf scheme)
//===----------------------------------------------------------------------===//

const Zone::GraphBuf &Zone::buf() const {
  static const GraphBuf Empty{{}, {}, {kNoSymbol}, {{}}, {{}}, {0},
                              {},  0,  nullptr,    0,    false};
  return B ? *B : Empty;
}

Zone::GraphBuf &Zone::bufMut() {
  if (!B) {
    B = std::make_shared<GraphBuf>();
    B->SymOf.push_back(kNoSymbol); // the zero vertex
    B->Out.emplace_back();
    B->In.emplace_back();
    B->Pot.push_back(0);
  } else if (B.use_count() > 1) {
    auto Fresh = std::make_shared<GraphBuf>(*B);
    Fresh->ClosedCache.reset();
    Fresh->NormHashValid = false;
    B = std::move(Fresh);
  }
  return *B;
}

void Zone::invalidateDerived() {
  if (!B)
    return;
  GraphBuf &G = bufMut();
  G.ClosedCache.reset();
  G.NormHashValid = false;
}

const std::vector<SymbolId> &Zone::vars() const { return buf().Vars; }

size_t Zone::varIndex(SymbolId Sym) const {
  const std::vector<SymbolId> &V = vars();
  auto It = std::lower_bound(V.begin(), V.end(), Sym);
  if (It == V.end() || *It != Sym)
    return npos;
  return static_cast<size_t>(It - V.begin());
}

size_t Zone::varIndex(const std::string &Var) const {
  SymbolId Sym = lookupSymbol(Var);
  return Sym == kNoSymbol ? npos : varIndex(Sym);
}

uint32_t Zone::vertOf(SymbolId Sym) const {
  size_t Idx = varIndex(Sym);
  return Idx == npos ? NoVert : buf().VertOf[Idx];
}

uint32_t Zone::ensureVert(SymbolId Sym) {
  uint32_t V = vertOf(Sym);
  if (V != NoVert)
    return V;
  GraphBuf &G = bufMut();
  if (!G.FreeVerts.empty()) {
    V = G.FreeVerts.back();
    G.FreeVerts.pop_back();
    assert(G.Out[V].empty() && G.In[V].empty() && "freed vertex has edges");
  } else {
    V = static_cast<uint32_t>(G.SymOf.size());
    G.SymOf.push_back(kNoSymbol);
    G.Out.emplace_back();
    G.In.emplace_back();
    G.Pot.push_back(0);
  }
  G.SymOf[V] = Sym;
  // A fresh vertex has no edges, so any potential value is valid for it.
  G.Pot[V] = 0;
  auto It = std::lower_bound(G.Vars.begin(), G.Vars.end(), Sym);
  size_t Idx = static_cast<size_t>(It - G.Vars.begin());
  G.Vars.insert(It, Sym);
  G.VertOf.insert(G.VertOf.begin() + static_cast<ptrdiff_t>(Idx), V);
  return V;
}

void Zone::addVar(SymbolId Sym) {
  if (varIndex(Sym) != npos)
    return;
  invalidateDerived();
  ensureVert(Sym);
  // A fresh unconstrained dimension keeps closedness.
  assertPotentialValid();
}

//===----------------------------------------------------------------------===//
// Edge storage
//===----------------------------------------------------------------------===//

int64_t Zone::weightOf(uint32_t U, uint32_t V) const {
  const std::vector<Edge> &Row = buf().Out[U];
  auto It = std::lower_bound(
      Row.begin(), Row.end(), V,
      [](const Edge &E, uint32_t Dst) { return E.Dst < Dst; });
  return (It != Row.end() && It->Dst == V) ? It->W : Inf;
}

void Zone::storeEdge(uint32_t U, uint32_t V, int64_t W) {
  assert(U != V && "no self loops: the diagonal is implicitly 0");
  GraphBuf &G = bufMut();
  std::vector<Edge> &Row = G.Out[U];
  auto It = std::lower_bound(
      Row.begin(), Row.end(), V,
      [](const Edge &E, uint32_t Dst) { return E.Dst < Dst; });
  if (It != Row.end() && It->Dst == V) {
    It->W = W;
    return;
  }
  Row.insert(It, Edge{V, W});
  std::vector<uint32_t> &Preds = G.In[V];
  Preds.insert(std::lower_bound(Preds.begin(), Preds.end(), U), U);
  ++G.NumEdges;
  ++zoneCounters().EdgesStored;
}

void Zone::eraseEdge(uint32_t U, uint32_t V) {
  GraphBuf &G = bufMut();
  std::vector<Edge> &Row = G.Out[U];
  auto It = std::lower_bound(
      Row.begin(), Row.end(), V,
      [](const Edge &E, uint32_t Dst) { return E.Dst < Dst; });
  if (It == Row.end() || It->Dst != V)
    return;
  Row.erase(It);
  std::vector<uint32_t> &Preds = G.In[V];
  auto PIt = std::lower_bound(Preds.begin(), Preds.end(), U);
  assert(PIt != Preds.end() && *PIt == U && "In/Out desynchronized");
  Preds.erase(PIt);
  --G.NumEdges;
}

void Zone::stripVertex(uint32_t Vert) {
  GraphBuf &G = bufMut();
  // Detach from successors' predecessor lists…
  for (const Edge &E : G.Out[Vert]) {
    std::vector<uint32_t> &Preds = G.In[E.Dst];
    auto PIt = std::lower_bound(Preds.begin(), Preds.end(), Vert);
    assert(PIt != Preds.end() && *PIt == Vert && "In/Out desynchronized");
    Preds.erase(PIt);
  }
  G.NumEdges -= G.Out[Vert].size();
  G.Out[Vert].clear();
  // …and remove incoming edges from predecessors' out-rows.
  for (uint32_t P : G.In[Vert]) {
    std::vector<Edge> &Row = G.Out[P];
    auto It = std::lower_bound(
        Row.begin(), Row.end(), Vert,
        [](const Edge &E, uint32_t Dst) { return E.Dst < Dst; });
    assert(It != Row.end() && It->Dst == Vert && "In/Out desynchronized");
    Row.erase(It);
    --G.NumEdges;
  }
  G.In[Vert].clear();
}

void Zone::freeVertex(uint32_t Vert) {
  assert(Vert != kZeroVert && "the zero vertex is permanent");
  stripVertex(Vert);
  GraphBuf &G = bufMut();
  SymbolId Sym = G.SymOf[Vert];
  G.SymOf[Vert] = kNoSymbol;
  G.FreeVerts.push_back(Vert);
  size_t Idx = varIndex(Sym);
  assert(Idx != npos && "freeing an untracked vertex");
  G.Vars.erase(G.Vars.begin() + static_cast<ptrdiff_t>(Idx));
  G.VertOf.erase(G.VertOf.begin() + static_cast<ptrdiff_t>(Idx));
}

size_t Zone::edgeCount() const { return buf().NumEdges; }

//===----------------------------------------------------------------------===//
// Potential maintenance (the feasibility certificate)
//===----------------------------------------------------------------------===//

bool Zone::potentialValid() const {
  if (Bottom || !B)
    return true;
  const GraphBuf &G = buf();
  for (uint32_t U = 0; U < G.Out.size(); ++U)
    for (const Edge &E : G.Out[U])
      if (bAdd(G.Pot[U], E.W) < G.Pot[E.Dst])
        return false;
  return true;
}

void Zone::assertPotentialValid() const {
  assert(potentialValid() && "potential certificate violated");
}

bool Zone::repairPotential(uint32_t U, uint32_t V, int64_t W) {
  GraphBuf &G = bufMut();
  if (bAdd(G.Pot[U], W) >= G.Pot[V])
    return true; // still a model, nothing to repair
  ++zoneCounters().PotentialRepairs;
  // Bellman–Ford relaxation restricted to vertices whose potential the new
  // edge actually lowers. Any negative cycle must pass through U→V (the
  // graph without it was feasible), so the relaxation wrapping back to U is
  // the complete infeasibility test, and absent such a cycle the descent
  // terminates (each vertex settles at its true shortest-path-adjusted
  // value).
  G.Pot[V] = bAdd(G.Pot[U], W);
  static thread_local std::vector<uint32_t> Queue;
  static thread_local std::vector<uint8_t> Queued;
  Queue.clear();
  Queued.assign(G.SymOf.size(), 0);
  Queue.push_back(V);
  Queued[V] = 1;
  for (size_t Head = 0; Head < Queue.size(); ++Head) {
    uint32_t X = Queue[Head];
    Queued[X] = 0;
    for (const Edge &E : G.Out[X]) {
      int64_t Cand = bAdd(G.Pot[X], E.W);
      if (Cand >= G.Pot[E.Dst])
        continue;
      if (E.Dst == U)
        return false; // negative cycle through the new edge: infeasible
      G.Pot[E.Dst] = Cand;
      if (!Queued[E.Dst]) {
        Queued[E.Dst] = 1;
        Queue.push_back(E.Dst);
      }
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Closure kernels (restricted, demand-driven)
//===----------------------------------------------------------------------===//

void Zone::closeOverEdge(uint32_t U, uint32_t V) {
  DAI_FAULT_POINT(Closure); // at entry: unwind leaves the graph unclosed
                            // (Closed already false) but sound
  GraphBuf &G = bufMut();
  int64_t W = weightOf(U, V);
  assert(W != Inf && "closeOverEdge requires the edge to exist");
  ++zoneCounters().IncrementalCloses;
  TraceSpan Sp("zone.close_edge", U, V);
  uint64_t Visited = 2; // U and V themselves
  // Improved predecessors of U: s with s→U stored and s→U→V shorter than
  // the current s→V. On a previously-closed graph every newly-finite pair
  // factors through the new edge with STORED prefix/suffix weights, so
  // these two scans plus their cross product restore exact closure
  // (Cotton–Maler; crab's close_over_edge).
  static thread_local std::vector<std::pair<uint32_t, int64_t>> SrcDec;
  static thread_local std::vector<std::pair<uint32_t, int64_t>> DstDec;
  SrcDec.clear();
  DstDec.clear();
  Visited += G.In[U].size();
  for (uint32_t S : G.In[U]) {
    if (S == V)
      continue; // a V→U→V cycle is ≥ 0; the diagonal stays implicit
    int64_t Cand = bAdd(weightOf(S, U), W);
    if (Cand < weightOf(S, V))
      SrcDec.emplace_back(S, Cand);
  }
  Visited += G.Out[V].size();
  for (const Edge &E : G.Out[V]) {
    if (E.Dst == U)
      continue;
    int64_t Cand = bAdd(W, E.W);
    if (Cand < weightOf(U, E.Dst))
      DstDec.emplace_back(E.Dst, Cand);
  }
  for (const auto &[S, WS] : SrcDec)
    storeEdge(S, V, WS);
  for (const auto &[T, WT] : DstDec)
    storeEdge(U, T, WT);
  Visited += SrcDec.size() * DstDec.size();
  for (const auto &[S, WS] : SrcDec) {
    // WS = w(S,U) + W, so WS + w(V,T) = w(S,U) + W + w(V,T).
    for (const auto &[T, WT] : DstDec) {
      if (S == T)
        continue;
      int64_t Cand = bAdd(WS, bAdd(WT, -W));
      if (Cand < weightOf(S, T))
        storeEdge(S, T, Cand);
    }
  }
  zoneCounters().ClosureVerticesVisited += Visited;
}

void Zone::closeEdgesFrom(uint32_t Vert) {
  DAI_FAULT_POINT(Closure); // at entry: unwind leaves the graph unclosed
                            // (Closed already false) but sound
  GraphBuf &G = bufMut();
  if (G.Out[Vert].empty())
    return;
  TraceSpan Sp("zone.close_from", Vert);
  // Reduced-cost Dijkstra: rc(u→v) = π(u) + w − π(v) ≥ 0 by the potential
  // certificate, so one heap sweep settles exact distances while touching
  // only vertices reachable through stored (non-⊤) edges — a mostly-⊤ zone
  // pays for its constrained part only.
  static thread_local std::vector<int64_t> DistRc;
  static thread_local std::vector<uint8_t> Settled;
  static thread_local std::vector<uint32_t> Touched;
  DistRc.assign(G.SymOf.size(), Inf);
  Settled.assign(G.SymOf.size(), 0);
  Touched.clear();
  using QE = std::pair<int64_t, uint32_t>;
  std::priority_queue<QE, std::vector<QE>, std::greater<QE>> Heap;
  DistRc[Vert] = 0;
  Heap.emplace(0, Vert);
  uint64_t Visited = 0;
  while (!Heap.empty()) {
    auto [D, X] = Heap.top();
    Heap.pop();
    if (Settled[X])
      continue;
    Settled[X] = 1;
    ++Visited;
    if (X != Vert)
      Touched.push_back(X);
    for (const Edge &E : G.Out[X]) {
      if (Settled[E.Dst])
        continue;
      // All accumulation goes through bAdd: a path whose sum leaves the
      // finite range saturates to +∞ and is simply not materialized —
      // sound (the closure stays an over-approximation) where raw int64
      // sums would wrap into spuriously tight bounds. The workload's small
      // constants never get near this; it guards adversarial weights.
      int64_t Rc = bAdd(bAdd(E.W, G.Pot[X]), -G.Pot[E.Dst]);
      assert(Rc >= 0 && "negative reduced cost: potential invalid");
      int64_t Cand = bAdd(D, Rc);
      if (Cand < DistRc[E.Dst]) {
        DistRc[E.Dst] = Cand;
        Heap.emplace(Cand, E.Dst);
      }
    }
  }
  zoneCounters().ClosureVerticesVisited += Visited;
  // Materialize the finite shortest paths: dist(s,t) = rc-dist + π(t) − π(s).
  for (uint32_t T : Touched) {
    int64_t Dist = bAdd(bAdd(DistRc[T], G.Pot[T]), -G.Pot[Vert]);
    if (Dist < weightOf(Vert, T))
      storeEdge(Vert, T, Dist);
  }
}

void Zone::close() {
  DAI_FAULT_POINT(Closure); // at entry: graph and Closed flag untouched
  if (Bottom)
    return;
  if (Closed) {
    ++zoneCounters().ClosesSkipped;
    return;
  }
  if (!B || B->NumEdges == 0) {
    Closed = true;
    return;
  }
  if (B->ClosedCache) {
    // Another consumer already closed this graph: adopt its result.
    std::shared_ptr<const Zone> Cache = B->ClosedCache; // keep alive
    ++zoneCounters().CachedCloses;
    *this = *Cache;
    return;
  }
  invalidateDerived();
  ++zoneCounters().FullCloses;
  TraceSpan Sp("zone.close_full", B->NumEdges);
  // Restricted all-sources sweep: only vertices that constrain something
  // (have out-edges) can be shortest-path sources. NOTE closeEdgesFrom may
  // add edges to a previously edge-free row, so snapshot the source list
  // up front — a vertex with no out-edges before closure cannot gain a
  // finite distance to anything it could not already reach, so the
  // snapshot loses nothing.
  GraphBuf &G = bufMut();
  static thread_local std::vector<uint32_t> Sources;
  Sources.clear();
  for (uint32_t U = 0; U < G.Out.size(); ++U)
    if (!G.Out[U].empty())
      Sources.push_back(U);
  for (uint32_t U : Sources)
    closeEdgesFrom(U);
  Closed = true;
  assertPotentialValid();
}

const Zone &Zone::closedView() const {
  if (Bottom || Closed)
    return *this;
  if (!B || B->NumEdges == 0) {
    // Unclosed but edge-free: the closure is this value with the flag set —
    // but caching a copy of *this inside our own buffer would form a
    // GraphBuf→Zone→GraphBuf cycle (a leak; the octagon's closedView has
    // the same guard). Return a static empty ⊤ instead: an edge-free zone
    // differs from it only in tracked-but-unconstrained dimensions, which
    // every consumer treats as absent-means-⊤ (and normalize() actively
    // drops), so the two are semantically interchangeable.
    static const Zone EmptyClosed;
    return EmptyClosed;
  }
  if (!B->ClosedCache) {
    auto C = std::make_shared<Zone>(*this); // close() un-shares C's buffer
    C->close();
    B->ClosedCache = std::move(C);
  } else {
    ++zoneCounters().CachedCloses;
  }
  return *B->ClosedCache;
}

//===----------------------------------------------------------------------===//
// Constraint addition
//===----------------------------------------------------------------------===//

void Zone::tightenAndClose(uint32_t U, uint32_t V, int64_t W) {
  if (W >= kMaxBound)
    return; // effectively unconstraining (and keeps closure sums exact)
  if (W < -kMaxBound)
    W = -kMaxBound; // sound weakening that keeps all arithmetic exact
  if (W >= weightOf(U, V))
    return; // no-op: graph, caches, and Closed all stay valid
  invalidateDerived();
  storeEdge(U, V, W);
  if (!repairPotential(U, V, W)) {
    *this = bottomValue();
    return;
  }
  if (Closed)
    closeOverEdge(U, V); // incremental: closure is preserved
  assertPotentialValid();
}

void Zone::addUpperBound(SymbolId X, int64_t C) {
  if (Bottom)
    return;
  uint32_t VX = vertOf(X);
  assert(VX != NoVert && "addUpperBound on an untracked variable");
  tightenAndClose(kZeroVert, VX, C); // x − 0 ≤ C
}

void Zone::addLowerBound(SymbolId X, int64_t C) {
  if (Bottom)
    return;
  uint32_t VX = vertOf(X);
  assert(VX != NoVert && "addLowerBound on an untracked variable");
  if (C <= -kMaxBound)
    return; // −C would be unconstraining anyway; avoid negating INT64_MIN
  tightenAndClose(VX, kZeroVert, -C); // 0 − x ≤ −C
}

void Zone::addDifference(SymbolId X, SymbolId Y, int64_t C) {
  if (Bottom)
    return;
  assert(X != Y && "difference constraints need distinct variables");
  uint32_t VX = vertOf(X), VY = vertOf(Y);
  assert(VX != NoVert && VY != NoVert &&
         "addDifference on untracked variables");
  // x − y ≤ c  ⟺  edge y → x with weight c (x_v − x_u ≤ w convention).
  tightenAndClose(VY, VX, C);
}

//===----------------------------------------------------------------------===//
// Projection, forgetting, renaming
//===----------------------------------------------------------------------===//

void Zone::forgetInPlace(SymbolId Sym) {
  uint32_t V = vertOf(Sym);
  if (V == NoVert || Bottom)
    return;
  // Propagate Sym's constraints before dropping them (precision).
  close();
  if (Bottom)
    return;
  invalidateDerived();
  stripVertex(V);
  // Removing constraints from a closed graph keeps closure (every
  // remaining shortest path avoided the stripped vertex already — closure
  // materialized it as a direct edge).
  assertPotentialValid();
}

void Zone::forgetAndRemove(SymbolId Sym) {
  uint32_t V = vertOf(Sym);
  if (V == NoVert)
    return;
  if (Bottom)
    return;
  close();
  if (Bottom)
    return;
  invalidateDerived();
  freeVertex(V);
  assertPotentialValid();
}

void Zone::forgetAndRemove(const std::string &Var) {
  // Probing only: forgetting a never-interned name is a no-op and must not
  // grow the intern table.
  SymbolId Sym = lookupSymbol(Var);
  if (Sym != kNoSymbol)
    forgetAndRemove(Sym);
}

std::vector<SymbolId> Zone::varsNotIn(const std::vector<SymbolId> &Keep) const {
  std::vector<SymbolId> Drop;
  for (SymbolId V : vars())
    if (std::find(Keep.begin(), Keep.end(), V) == Keep.end())
      Drop.push_back(V);
  return Drop;
}

void Zone::dropVars(const std::vector<SymbolId> &Drop) {
  if (Drop.empty())
    return;
  invalidateDerived();
  for (SymbolId V : Drop)
    freeVertex(vertOf(V));
  assertPotentialValid();
}

void Zone::restrictTo(const std::vector<SymbolId> &Keep) {
  std::vector<SymbolId> Drop = varsNotIn(Keep);
  if (Drop.empty())
    return; // nothing dropped: projection is the identity
  // Precision requires propagating the dropped variables' constraints first.
  close();
  if (Bottom)
    return;
  dropVars(Drop);
}

void Zone::projectRawTo(const std::vector<SymbolId> &Keep) {
  if (Bottom)
    return;
  // No closing (widening-only escape hatch); Closed is preserved as-is —
  // dropping dimensions of a closed graph keeps it closed, and an unclosed
  // one stays unclosed.
  dropVars(varsNotIn(Keep));
}

void Zone::rename(SymbolId From, SymbolId To) {
  uint32_t V = vertOf(From);
  assert(V != NoVert && "rename source must exist");
  assert(varIndex(To) == npos && "rename target must be absent");
  invalidateDerived();
  GraphBuf &G = bufMut();
  size_t FromIdx = varIndex(From);
  G.Vars.erase(G.Vars.begin() + static_cast<ptrdiff_t>(FromIdx));
  G.VertOf.erase(G.VertOf.begin() + static_cast<ptrdiff_t>(FromIdx));
  auto It = std::lower_bound(G.Vars.begin(), G.Vars.end(), To);
  size_t ToIdx = static_cast<size_t>(It - G.Vars.begin());
  G.Vars.insert(It, To);
  G.VertOf.insert(G.VertOf.begin() + static_cast<ptrdiff_t>(ToIdx), V);
  G.SymOf[V] = To;
  // The graph (and therefore closure and the potential) is untouched.
}

//===----------------------------------------------------------------------===//
// Lattice kernels
//===----------------------------------------------------------------------===//

std::vector<uint32_t> Zone::vertMapTo(const Zone &O) const {
  const GraphBuf &G = buf();
  std::vector<uint32_t> Trans(G.SymOf.size(), NoVert);
  Trans[kZeroVert] = kZeroVert;
  for (size_t I = 0; I < G.Vars.size(); ++I)
    Trans[G.VertOf[I]] = O.vertOf(G.Vars[I]);
  return Trans;
}

void Zone::joinWith(const Zone &O) {
  assert(vars() == O.vars() && "joinWith requires equal variable sets");
  assert(Closed && O.Closed && "joinWith requires both sides closed");
  if (!B)
    return; // no edges on this side: already the join
  std::vector<uint32_t> Trans = vertMapTo(O);
  invalidateDerived();
  GraphBuf &G = bufMut();
  // Per-edge max over the union of edge sets: my edges are the union's
  // only candidates (an edge absent here is ∞ and cannot survive a max).
  static thread_local std::vector<std::pair<uint32_t, uint32_t>> ToErase;
  ToErase.clear();
  for (uint32_t U = 0; U < G.Out.size(); ++U) {
    for (Edge &E : G.Out[U]) {
      int64_t Theirs = O.weightOf(Trans[U], Trans[E.Dst]);
      if (Theirs == Inf)
        ToErase.emplace_back(U, E.Dst);
      else if (Theirs > E.W)
        E.W = Theirs; // loosening only: the potential stays a model
    }
  }
  for (const auto &[U, V] : ToErase)
    eraseEdge(U, V);
  // Entrywise max of two closed DBMs remains closed; Closed stays true.
  assertPotentialValid();
}

void Zone::widenWith(const Zone &O) {
  assert(vars() == O.vars() && "widenWith requires equal variable sets");
  if (!B) {
    Closed = false;
    return;
  }
  std::vector<uint32_t> Trans = vertMapTo(O);
  invalidateDerived();
  GraphBuf &G = bufMut();
  // Edge dropping: a bound that did not stabilize (O exceeds it) is
  // deleted outright — the sparse analogue of the matrix kernel's "unstable
  // entries go to +∞", and it physically shrinks the graph, so widened
  // chains both converge AND get cheaper to close.
  static thread_local std::vector<std::pair<uint32_t, uint32_t>> ToErase;
  ToErase.clear();
  for (uint32_t U = 0; U < G.Out.size(); ++U)
    for (const Edge &E : G.Out[U])
      if (O.weightOf(Trans[U], Trans[E.Dst]) > E.W)
        ToErase.emplace_back(U, E.Dst);
  for (const auto &[U, V] : ToErase)
    eraseEdge(U, V);
  Closed = false;
  assertPotentialValid();
}

bool Zone::entails(const Zone &O) const {
  assert((Closed || Bottom) && "entails requires a closed receiver");
  // Every stored constraint of O must be implied by this closed receiver:
  // γ(O) is defined by O's stored edges (closed or not), and closure
  // materialized this side's tightest derivable bound for every pair.
  const GraphBuf &OG = O.buf();
  std::vector<uint32_t> Trans = O.vertMapTo(*this);
  for (uint32_t U = 0; U < OG.Out.size(); ++U) {
    for (const Edge &E : OG.Out[U]) {
      uint32_t MyU = Trans[U], MyV = Trans[E.Dst];
      if (MyU == NoVert || MyV == NoVert)
        return false; // untracked here ⇒ unconstrained ⇒ ∞ > E.W
      if (weightOf(MyU, MyV) > E.W)
        return false;
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Readers
//===----------------------------------------------------------------------===//

Interval Zone::boundsOf(SymbolId Sym) const {
  if (Bottom)
    return Interval::empty(); // ⊥-safe: no sentinel leaks out of ⊥
  uint32_t V = vertOf(Sym);
  if (V == NoVert)
    return Interval::top();
  int64_t Upper = weightOf(kZeroVert, V); // x ≤ Upper
  int64_t NegLower = weightOf(V, kZeroVert); // −x ≤ NegLower
  int64_t Hi = (Upper == Inf) ? Interval::kPosInf : Upper;
  int64_t Lo = (NegLower == Inf) ? Interval::kNegInf : -NegLower;
  return Interval::range(Lo, Hi);
}

Interval Zone::boundsOf(const std::string &Var) const {
  SymbolId Sym = lookupSymbol(Var);
  return Sym == kNoSymbol ? (Bottom ? Interval::empty() : Interval::top())
                          : boundsOf(Sym);
}

int64_t Zone::constraintOn(SymbolId U, SymbolId V) const {
  if (Bottom)
    return Inf;
  uint32_t VU = (U == kNoSymbol) ? kZeroVert : vertOf(U);
  uint32_t VV = (V == kNoSymbol) ? kZeroVert : vertOf(V);
  if (VU == NoVert || VV == NoVert)
    return Inf;
  if (VU == VV)
    return 0;
  return weightOf(VU, VV);
}

std::vector<SymbolId> Zone::constrainedVars() const {
  std::vector<SymbolId> Keep;
  if (Bottom || !B)
    return Keep;
  const GraphBuf &G = buf();
  for (size_t I = 0; I < G.Vars.size(); ++I) {
    uint32_t V = G.VertOf[I];
    if (!G.Out[V].empty() || !G.In[V].empty())
      Keep.push_back(G.Vars[I]);
  }
  return Keep;
}

uint64_t Zone::hashGraph(bool NormalizedVars) const {
  const GraphBuf &G = buf();
  uint64_t H = 0x51bbcdc87654321ULL;
  for (size_t I = 0; I < G.Vars.size(); ++I) {
    uint32_t V = G.VertOf[I];
    if (!NormalizedVars || !G.Out[V].empty() || !G.In[V].empty())
      H = hashCombine(H, static_cast<uint64_t>(G.Vars[I]));
  }
  auto symKey = [&](uint32_t Vert) -> uint64_t {
    return Vert == kZeroVert ? 0
                             : 1 + static_cast<uint64_t>(G.SymOf[Vert]);
  };
  static thread_local std::vector<std::pair<uint64_t, int64_t>> Row;
  auto hashRow = [&](uint32_t U) {
    if (G.Out[U].empty())
      return;
    Row.clear();
    for (const Edge &E : G.Out[U])
      Row.emplace_back(symKey(E.Dst), E.W);
    std::sort(Row.begin(), Row.end());
    H = hashCombine(H, symKey(U));
    for (const auto &[K, W] : Row) {
      H = hashCombine(H, K);
      H = hashCombine(H, static_cast<uint64_t>(W));
    }
  };
  hashRow(kZeroVert);
  for (uint32_t V : G.VertOf)
    hashRow(V);
  return H;
}

uint64_t Zone::hash() const {
  if (Bottom)
    return 0x20e50b07700ULL;
  return hashGraph(/*NormalizedVars=*/false);
}

uint64_t Zone::hashNormalized() const {
  assert((Bottom || Closed) && "hashNormalized requires a closed receiver");
  if (Bottom)
    return 0x20e50b07700ULL;
  if (B && B->NormHashValid)
    return B->NormHash;
  // Equivalent to restrictTo(constrained vars) + hash(), computed in place:
  // the edge sweep is identical (edge-free rows hash nothing); only the
  // variable prefix filters to normalize()'s keep-predicate.
  uint64_t H = hashGraph(/*NormalizedVars=*/true);
  if (B) {
    B->NormHash = H;
    B->NormHashValid = true;
  }
  return H;
}

std::string Zone::toString() const {
  if (Bottom)
    return "⊥";
  std::ostringstream OS;
  OS << "{";
  bool First = true;
  auto emit = [&](const std::string &Text) {
    if (!First)
      OS << ", ";
    First = false;
    OS << Text;
  };
  const GraphBuf &G = buf();
  for (size_t I = 0; I < G.Vars.size(); ++I) {
    const std::string &NameI = symbolName(G.Vars[I]);
    Interval Bnd = boundsOf(G.Vars[I]);
    if (!Bnd.isTop())
      emit(NameI + " in " + Bnd.toString());
    // Differences x_J − x_I ≤ c, in symbol order.
    for (size_t J = 0; J < G.Vars.size(); ++J) {
      if (I == J)
        continue;
      int64_t W = weightOf(G.VertOf[I], G.VertOf[J]);
      if (W != Inf)
        emit(symbolName(G.Vars[J]) + " - " + NameI +
             " <= " + std::to_string(W));
    }
  }
  OS << "}";
  return OS.str();
}

//===----------------------------------------------------------------------===//
// ZoneDomain
//===----------------------------------------------------------------------===//

static_assert(AbstractDomain<ZoneDomain>,
              "ZoneDomain must satisfy the Section 3 domain concept");

namespace {

/// A symbol guaranteed absent from \p Z, derived from \p Base (same
/// contract as the octagon's freshSymbol: '$' names are unspellable as
/// source identifiers, and candidates are reused process-wide).
SymbolId freshSymbol(const Zone &Z, const std::string &Base) {
  SymbolId S = internSymbol(Base);
  for (unsigned K = 0; Z.varIndex(S) != npos; ++K)
    S = internSymbol(Base + "$" + std::to_string(K));
  return S;
}

/// Projects the zone onto per-variable intervals (for the interval fallback
/// on non-zone expressions). Requires \p Z closed.
IntervalState toIntervalState(const Zone &Z) {
  IntervalState S;
  if (Z.isBottom()) {
    S.Bottom = true;
    return S;
  }
  for (SymbolId V : Z.vars())
    S.set(V, VarAbs::numeric(Z.boundsOf(V)));
  return S;
}

/// Interval of the linear form Σ cᵢ·vᵢ + C over the zone's per-variable
/// bounds — the residual-interval evaluator of the zone-native affine
/// assignment transformers (crab's diffcsts_of_assign). Requires \p Z
/// closed (boundsOf needs tight unary edges). All arithmetic saturates
/// through the Interval kernels.
Interval intervalOfLin(const Zone &Z, const LinForm &F) {
  Interval Acc = Interval::constant(F.Const);
  for (const auto &[V, C] : F.Coeffs)
    Acc = Acc.add(Z.boundsOf(V).mul(Interval::constant(C)));
  return Acc;
}

/// Drops unconstrained dimensions so structurally distinct but equal values
/// share a representation (memo-table reuse; equality itself is semantic).
void normalize(Zone &Z) {
  Z.close();
  if (Z.isBottom())
    return;
  std::vector<SymbolId> Keep = Z.constrainedVars();
  if (Keep.size() != Z.numVars())
    Z.restrictTo(Keep);
}

/// Assigns x := e precisely for zone-representable right-hand sides
/// (x := c, x := y + c), with an interval fallback otherwise. \p Z must be
/// closed on entry; closed on exit.
void evalAssign(Zone &Z, SymbolId X, const ExprPtr &E) {
  LinForm F = linearize(E);
  // Zone-exact shapes: a constant, or a single +1-coefficient variable
  // plus a constant (x := −y + c is OCTAGONAL, not a zone form — it falls
  // through to the interval fallback).
  bool ZoneExact =
      F.Ok && (F.Coeffs.empty() ||
               (F.Coeffs.size() == 1 && F.Coeffs.begin()->second == 1));
  auto havocOrAdd = [&Z](SymbolId V) {
    if (Z.varIndex(V) == npos)
      Z.addVar(V);
    else
      Z.forgetInPlace(V);
  };
  if (ZoneExact && F.Coeffs.empty()) {
    // x := c — two bounds on a havocked dimension; addUpper/LowerBound
    // restore closure incrementally.
    havocOrAdd(X);
    Z.addUpperBound(X, F.Const);
    if (!Z.isBottom())
      Z.addLowerBound(X, F.Const);
    return;
  }
  if (ZoneExact) {
    SymbolId Y = F.Coeffs.begin()->first;
    if (Y != X) {
      if (Z.varIndex(Y) == npos)
        Z.addVar(Y);
      havocOrAdd(X);
      // x − y ≤ c and y − x ≤ −c.
      Z.addDifference(X, Y, F.Const);
      if (!Z.isBottom())
        Z.addDifference(Y, X, -F.Const);
      return;
    }
    // x := x + c via a temporary dimension (same discipline as the
    // octagon: the gensym'd '$' name cannot collide with a program
    // variable, and freshSymbol guards against any other occupant).
    if (Z.varIndex(X) == npos)
      Z.addVar(X); // untracked x: x + c is then unconstrained, but the
                   // temp still must NOT read as a bound on a missing dim
    SymbolId Tmp = freshSymbol(Z, "__zone_tmp");
    Z.addVar(Tmp);
    Z.addDifference(Tmp, X, F.Const);
    if (!Z.isBottom())
      Z.addDifference(X, Tmp, -F.Const);
    if (Z.isBottom())
      return;
    Z.forgetAndRemove(X);
    Z.rename(Tmp, X);
    return;
  }
  // Affine-but-not-zone-exact RHS (x := −y + c, x := y + z, …): the pure
  // interval fallback used to havoc every relation here. Following crab's
  // diffcsts_of_assign, derive DIFFERENCE bounds from residual intervals
  // instead — for each variable y of e,  x − y ≤ ub(e − y)  and
  // y − x ≤ ub(y − e), every residual evaluated in the PRE-state (the
  // assigned x reads e's pre-state value; x := −x + 1 must read the old x,
  // which is why residuals containing x use its OLD bounds and derived
  // differences are restricted to y ≠ x). The zone keeps relational
  // information exactly where it previously kept none, so the staged
  // domain escalates to the octagon less often.
  if (F.Ok) {
    Interval I = intervalOfLin(Z, F);
    if (I.isEmpty()) {
      Z = Zone::bottomValue();
      return;
    }
    struct DiffBound {
      SymbolId Y;
      int64_t Ub;
      bool XMinusY; ///< true: x − Y ≤ Ub; false: Y − x ≤ Ub.
    };
    std::vector<DiffBound> Diffs;
    for (const auto &[Y, CY] : F.Coeffs) {
      (void)CY;
      if (Y == X)
        continue;
      LinForm YF;
      YF.Ok = true;
      YF.Coeffs[Y] = 1;
      Interval XmY = intervalOfLin(Z, F.plus(YF, -1)); // e − y
      Interval YmX = intervalOfLin(Z, YF.plus(F, -1)); // y − e
      if (!XmY.isEmpty() && XmY.hi() != Interval::kPosInf)
        Diffs.push_back({Y, XmY.hi(), /*XMinusY=*/true});
      if (!YmX.isEmpty() && YmX.hi() != Interval::kPosInf)
        Diffs.push_back({Y, YmX.hi(), /*XMinusY=*/false});
    }
    if (I.isTop() && Diffs.empty()) {
      Z.forgetAndRemove(X); // nothing derivable: drop the dimension
      return;
    }
    for (const DiffBound &D : Diffs)
      if (Z.varIndex(D.Y) == npos)
        Z.addVar(D.Y);
    havocOrAdd(X);
    if (I.hi() != Interval::kPosInf)
      Z.addUpperBound(X, I.hi());
    if (!Z.isBottom() && I.lo() != Interval::kNegInf)
      Z.addLowerBound(X, I.lo());
    for (const DiffBound &D : Diffs) {
      if (Z.isBottom())
        return;
      if (D.XMinusY)
        Z.addDifference(X, D.Y, D.Ub);
      else
        Z.addDifference(D.Y, X, D.Ub);
    }
    return;
  }
  // Non-linear interval fallback: bound x by the interval of e (evaluated
  // in the PRE-state).
  Interval I = IntervalDomain::eval(E, toIntervalState(Z)).Num;
  if (I.isEmpty()) {
    // e has NO possible value (e.g. a division by exactly zero): the
    // assignment cannot execute — the opposite of havocking x.
    Z = Zone::bottomValue();
    return;
  }
  if (!I.isTop()) {
    havocOrAdd(X);
    if (I.hi() != Interval::kPosInf)
      Z.addUpperBound(X, I.hi());
    if (!Z.isBottom() && I.lo() != Interval::kNegInf)
      Z.addLowerBound(X, I.lo());
  } else {
    Z.forgetAndRemove(X); // unconstrained: drop the dimension entirely
  }
}

/// Adds the linear inequality F ≤ 0 when it is zone-representable; returns
/// false if not (caller falls back to intervals). Zone shapes: constants,
/// ±x ≤ c, and proper differences x − y ≤ c (one +1 and one −1
/// coefficient — sums like x + y ≤ c are octagonal, NOT zone forms).
bool addLinearLeqZero(Zone &Z, const LinForm &F) {
  if (!F.Ok || F.Coeffs.size() > 2)
    return false;
  for (const auto &[V, C] : F.Coeffs)
    if (C != 1 && C != -1)
      return false;
  int64_t Bound = -F.Const; // Σ ±v ≤ −Const.
  if (F.Coeffs.empty()) {
    if (0 > Bound)
      Z = Zone::bottomValue();
    return true;
  }
  if (F.Coeffs.size() == 1) {
    auto It = F.Coeffs.begin();
    if (Z.varIndex(It->first) == npos)
      Z.addVar(It->first);
    if (It->second > 0)
      Z.addUpperBound(It->first, Bound); // x ≤ Bound
    else
      Z.addLowerBound(It->first, -Bound); // −x ≤ Bound ⟺ x ≥ −Bound
    return true;
  }
  auto It = F.Coeffs.begin();
  auto It2 = std::next(It);
  if (It->second == It2->second)
    return false; // x + y ≤ c or −x − y ≤ c: octagonal, not zone
  SymbolId Pos = It->second > 0 ? It->first : It2->first;
  SymbolId Neg = It->second > 0 ? It2->first : It->first;
  if (Z.varIndex(Pos) == npos)
    Z.addVar(Pos);
  if (Z.varIndex(Neg) == npos)
    Z.addVar(Neg);
  Z.addDifference(Pos, Neg, Bound); // Pos − Neg ≤ Bound
  return true;
}

} // namespace

bool ZoneDomain::isBottom(const Elem &A) {
  // ⊥ is eager (potential repair fails at constraint addition), so the
  // flag is the whole answer — no closure needed, unlike the octagon.
  return A.Bottom;
}

Zone ZoneDomain::initialEntry(const std::vector<std::string> &) {
  return Zone::top();
}

Zone ZoneDomain::assume(const Elem &In, const ExprPtr &Cond) {
  if (In.Bottom || !Cond)
    return In;
  switch (Cond->Kind) {
  case ExprKind::BoolLit:
    return Cond->BoolVal ? In : bottom();
  case ExprKind::IntLit:
    return Cond->IntVal != 0 ? In : bottom();
  case ExprKind::Unary:
    if (Cond->UOp == UnaryOp::Not)
      return assume(In, negate(Cond->Lhs));
    return In;
  case ExprKind::Var:
    return assume(In, Expr::mkBinary(BinaryOp::Ne, Cond, Expr::mkInt(0)));
  case ExprKind::Binary: {
    if (Cond->BOp == BinaryOp::And)
      return assume(assume(In, Cond->Lhs), Cond->Rhs);
    if (Cond->BOp == BinaryOp::Or)
      return join(assume(In, Cond->Lhs), assume(In, Cond->Rhs));
    if (!isComparison(Cond->BOp))
      return In;
    Zone Out = In.closedView();
    if (Out.isBottom())
      return Out;
    // Null comparisons carry no zone content.
    if ((Cond->Lhs && Cond->Lhs->Kind == ExprKind::NullLit) ||
        (Cond->Rhs && Cond->Rhs->Kind == ExprKind::NullLit))
      return Out;
    LinForm L = linearize(Cond->Lhs), R = linearize(Cond->Rhs);
    if (L.Ok && R.Ok) {
      LinForm Diff = L.plus(R, -1); // L − R
      bool Handled = true;
      switch (Cond->BOp) {
      case BinaryOp::Le:
        Handled = addLinearLeqZero(Out, Diff);
        break;
      case BinaryOp::Lt:
        Handled = addLinearLeqZero(Out, Diff.plus(LinForm::constant(1), 1));
        break;
      case BinaryOp::Ge:
        Handled = addLinearLeqZero(Out, Diff.scaled(-1));
        break;
      case BinaryOp::Gt:
        Handled = addLinearLeqZero(
            Out, Diff.scaled(-1).plus(LinForm::constant(1), 1));
        break;
      case BinaryOp::Eq:
        Handled = addLinearLeqZero(Out, Diff) &&
                  (Out.isBottom() || addLinearLeqZero(Out, Diff.scaled(-1)));
        break;
      case BinaryOp::Ne:
        Handled = false; // disequality: fall through to interval check
        break;
      default:
        Handled = false;
      }
      if (Handled)
        return Out;
    }
    // Fallback: consult the interval projection; import refined unary
    // bounds (each add restores closure incrementally — cost per bound is
    // the touched vertex's degree, so a k-bound refinement is O(k · live)
    // rather than a dense O(k·n²) batch pass) and detect definite falsity.
    IntervalState Proj = toIntervalState(Out);
    IntervalState Refined = IntervalDomain::assume(Proj, Cond);
    if (Refined.Bottom)
      return bottom();
    for (const auto &[Var, V] : Refined.Env) {
      if (Out.isBottom())
        break;
      if (Out.varIndex(Var) == npos)
        continue;
      if (V.Num.hi() != Interval::kPosInf)
        Out.addUpperBound(Var, V.Num.hi());
      if (!Out.isBottom() && V.Num.lo() != Interval::kNegInf)
        Out.addLowerBound(Var, V.Num.lo());
    }
    return Out;
  }
  default:
    return In;
  }
}

Zone ZoneDomain::transfer(const Stmt &S, const Elem &In) {
  if (In.Bottom)
    return In;
  Zone Out = In.closedView();
  if (Out.isBottom())
    return Out;
  switch (S.Kind) {
  case StmtKind::Skip:
  case StmtKind::Print:
  case StmtKind::FieldWrite:
  case StmtKind::ArrayWrite: // array contents are not tracked relationally
    return Out;
  case StmtKind::Alloc:
  case StmtKind::Call:
    Out.forgetAndRemove(S.Lhs);
    normalize(Out);
    return Out;
  case StmtKind::Assign:
    evalAssign(Out, internSymbol(S.Lhs), S.Rhs);
    normalize(Out);
    return Out;
  case StmtKind::Assume:
  case StmtKind::Assert: { // Aborts on failure: the condition holds after.
    Zone R = assume(Out, S.Rhs);
    normalize(R);
    return R;
  }
  }
  return Out;
}

Zone ZoneDomain::join(const Elem &A, const Elem &B) {
  Zone CA = A.closedView();
  if (CA.isBottom())
    return B;
  const Zone &CB = B.closedView();
  if (CB.isBottom())
    return CA;
  // Fast path: identical variable sets (the steady state under normalize).
  if (CA.vars() == CB.vars()) {
    CA.joinWith(CB);
    normalize(CA);
    return CA;
  }
  // Join over the common variable set (absent = unconstrained).
  std::vector<SymbolId> Common;
  for (SymbolId V : CA.vars())
    if (CB.varIndex(V) != npos)
      Common.push_back(V);
  CA.restrictTo(Common);
  Zone CBR = CB;
  CBR.restrictTo(Common);
  CA.joinWith(CBR);
  normalize(CA);
  return CA;
}

Zone ZoneDomain::widen(const Elem &Prev, const Elem &Next) {
  if (Prev.Bottom)
    return Next;
  Zone NC = Next.closedView();
  if (NC.isBottom())
    return Prev;
  // The previous iterate must stay UNCLOSED on the left of ∇ for
  // convergence; projectRawTo drops dimensions without closing.
  Zone P = Prev;
  std::vector<SymbolId> Common;
  for (SymbolId V : P.vars())
    if (NC.varIndex(V) != npos)
      Common.push_back(V);
  P.projectRawTo(Common);
  NC.restrictTo(Common);
  P.widenWith(NC);
  return P;
}

bool ZoneDomain::leq(const Elem &A, const Elem &B) {
  const Zone &CA = A.closedView();
  if (CA.isBottom())
    return true;
  if (isBottom(B))
    return false;
  return CA.entails(B);
}

bool ZoneDomain::equal(const Elem &A, const Elem &B) {
  return leq(A, B) && leq(B, A);
}

uint64_t ZoneDomain::hash(const Elem &A) {
  // Equivalent to normalize-then-hash without copying: closedView shares
  // the cached closure, hashNormalized skips unconstrained dims in place.
  return A.closedView().hashNormalized();
}

std::string ZoneDomain::toString(const Elem &A) {
  return A.closedView().toString();
}

Zone ZoneDomain::enterCall(const Elem &Caller, const Stmt &CallSite,
                           const std::vector<std::string> &CalleeParams) {
  if (isBottom(Caller))
    return bottom();
  assert(CallSite.Kind == StmtKind::Call && "enterCall requires a call site");
  // Bind temporaries to the actuals inside the caller state, project onto
  // them, then rename to the formals — preserving relations *among*
  // parameters (f(i, i+1) enters with p1 − p0 = 1, a difference a zone
  // represents exactly).
  Zone Tmp = Caller.closedView();
  if (Tmp.isBottom())
    return bottom();
  std::vector<SymbolId> TmpSyms;
  for (size_t I = 0, E = CalleeParams.size(); I != E; ++I) {
    SymbolId TmpSym = freshSymbol(Tmp, "__arg$" + std::to_string(I));
    TmpSyms.push_back(TmpSym);
    if (I < CallSite.Args.size())
      evalAssign(Tmp, TmpSym, CallSite.Args[I]);
  }
  Tmp.restrictTo(TmpSyms);
  for (size_t I = 0, E = CalleeParams.size(); I != E; ++I)
    if (Tmp.varIndex(TmpSyms[I]) != npos)
      Tmp.rename(TmpSyms[I], internSymbol(CalleeParams[I]));
  normalize(Tmp);
  return Tmp;
}

Zone ZoneDomain::exitCall(const Elem &Caller, const Elem &CalleeExit,
                          const Stmt &CallSite) {
  if (isBottom(Caller))
    return bottom();
  if (isBottom(CalleeExit))
    return bottom(); // the call never returns
  assert(CallSite.Kind == StmtKind::Call && "exitCall requires a call site");
  Zone Out = Caller.closedView();
  const Zone &CE = CalleeExit.closedView();
  // Import the return value's interval (relations between callee locals
  // and caller locals are not representable without a combined frame).
  Interval Ret = CE.boundsOf(RetVar);
  Out.forgetAndRemove(CallSite.Lhs);
  if (!Ret.isTop() && !Ret.isEmpty()) {
    Out.addVar(CallSite.Lhs);
    SymbolId Lhs = internSymbol(CallSite.Lhs);
    if (Ret.hi() != Interval::kPosInf)
      Out.addUpperBound(Lhs, Ret.hi());
    if (!Out.isBottom() && Ret.lo() != Interval::kNegInf)
      Out.addLowerBound(Lhs, Ret.lo());
  }
  normalize(Out);
  return Out;
}
