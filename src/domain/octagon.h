//===-- domain/octagon.h - Octagon abstract domain --------------*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The octagon abstract domain (Miné 2006): relational invariants of the
/// form ±x ± y ≤ c, represented as a difference-bound matrix (DBM) over the
/// doubled variable set {+v, −v} with strong closure as the canonical form.
/// This is the domain the paper uses for its scalability study (Section 7.3,
/// Fig. 10), there provided by APRON; here implemented from scratch (see
/// DESIGN.md, substitutions). Its deliberately expensive O(n³) closure makes
/// domain operations dominate analysis latency, as in the paper.
///
/// Representation notes (coherent half-matrix + interned symbols):
///  - Logical DBM entry (i, j) bounds V_j − V_i ≤ M[i][j], where V_{2k} = +v_k
///    and V_{2k+1} = −v_k; kPosInf encodes +∞. Writing ī for i^1 (the sign
///    flip of a doubled index), every octagon DBM is *coherent*:
///    m[i][j] = m[j̄][ī] — the same constraint read through both sign
///    orientations. A dense (2n)² matrix therefore stores every constraint
///    twice.
///  - Storage keeps exactly one representative per coherence orbit: the
///    entries with j ≤ (i|1) (APRON's triangular layout), 2n²+2n cells for n
///    variables instead of 4n². Row i holds columns 0..(i|1), so
///      matPos(i, j)  = j + (i+1)²/2            (valid when j ≤ (i|1))
///      matPos2(i, j) = j > i ? matPos(j̄, ī) : matPos(i, j)
///    canonicalizes any logical index pair onto its stored representative.
///    The only j > i stored case is the self-coherent cell (i, i^1) for even
///    i, which matPos2 maps onto itself. Coherence is structural: a write
///    through set()/at() can never desynchronize the two orientations,
///    because they are the same cell.
///  - All closure kernels sweep stored cells only and run Miné's *pair*
///    pivot step (both doubled indices 2k, 2k+1 of a variable per step, with
///    the four path candidates i→k→j, i→k̄→j, i→k→k̄→j, i→k̄→k→j): on a
///    coherent half-matrix a single-index Floyd–Warshall sweep would apply
///    each pivot to only one orientation of each stored cell, so the pair
///    step is what makes the triangular sweep equal the dense closure
///    entrywise.
///  - Dimensions are interned SymbolIds (domain/symbol.h), kept sorted by
///    id: varIndex is an integer binary search, variable-set comparisons are
///    integer compares, and the copy-on-write variable list is a vector of
///    trivially-copyable ids (copying an octagon never touches a string).
///    String-based entry points intern (mutators) or probe without
///    interning (readers) at the boundary.
///  - The variable set is dynamic: join/widen/leq unify to the common
///    variable set (absent variables are unconstrained).
///
/// Closure discipline (who closes, who may observe unclosed values):
///  - Strong closure (pairwise path closure + unary strengthening +
///    emptiness check) is the canonical form; `Closed` tracks whether the
///    matrix is in it. All OctagonDomain operations RETURN closed values,
///    with one deliberate exception: `widen` results must stay unclosed to
///    guarantee convergence (the classic octagon widening caveat), so the
///    only unclosed values flowing through an analysis are widening iterates.
///  - `addConstraint` clears `Closed` and performs no propagation itself.
///    A caller that held a *closed* value re-establishes closure in O(n²)
///    with `closeIncremental(x, y)` — sound because every DBM edge the
///    constraint tightened is incident to the doubled indices of x (and y),
///    so running the pair pivot step for just those variables restores exact
///    shortest paths (Miné 2006, §4.3). Full O(n³) `close()` is reserved
///    for values of unknown provenance: widening iterates entering
///    transfer/join/leq, and batches of constraints over many variables.
///  - `set()` is the raw escape hatch and must stay honest about the flag:
///    any write that changes an entry clears `Closed` (a no-op write keeps
///    it). Both directions break the canonical form — raising an entry
///    leaves it looser than the shortest path the rest of the matrix
///    implies, and tightening one leaves the rest of the matrix
///    unpropagated, which can even hide ⊥ — so `Closed` survives only
///    writes that change nothing.
///  - Structural edits preserve closure: `addVar` adds an unconstrained
///    (hence neutral) dimension, and `restrictTo`/`forgetAndRemove` close
///    first and then drop rows/columns of a closed matrix. `projectRawTo`
///    is the widening-only escape hatch that drops dimensions WITHOUT
///    closing (closing the previous iterate would defeat convergence).
///  - Readers that need tight entries (`boundsOf`, `entailsEntrywise` on
///    the left argument, `normalize`, `toString`) require a closed receiver;
///    `isClosed()` is the cheap query, and `close()` on an already-closed
///    value is a counted no-op (see ClosureCounters in support/statistics.h).
///  - An unclosed value caches its closed form on first demand
///    (`closedView`): a widening iterate is typically consumed by several
///    readers (convergence check, hash, every successor transfer), and the
///    cache — shared across copies, invalidated by any mutation — collapses
///    those repeated O(n³) closures into one. Single-threaded by design.
///
//===----------------------------------------------------------------------===//

#ifndef DAI_DOMAIN_OCTAGON_H
#define DAI_DOMAIN_OCTAGON_H

#include "domain/abstract_domain.h"
#include "domain/interval.h"
#include "domain/symbol.h"
#include "support/statistics.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dai {

/// An octagon abstract value: ⊥, or a coherent half-matrix DBM over a
/// variable list sorted by SymbolId.
///
/// \invariant COHERENCE INVOLUTION: logically m[i][j] = m[j̄][ī] (writing
///   ī for i^1, the sign flip of a doubled index) — the same ±x±y
///   constraint read through both sign orientations. Storage keeps exactly
///   one representative per coherence orbit (the cells with j ≤ i|1), so
///   coherence is STRUCTURAL: no write through set()/at() can ever
///   desynchronize the two orientations, because they are one stored cell.
///   matPos2 is the canonicalizing index map.
/// \invariant CLOSURE FLAG HONESTY: `Closed` is true only when the matrix
///   is strongly closed (pairwise path closure + unary strengthening +
///   emptiness check). Every value-changing write clears it; see the
///   closure-discipline notes above for who may re-establish it and how.
/// \invariant COPY-ON-WRITE: the matrix buffer (with its derived caches —
///   cached closure, normalized hash) is shared across copies until a
///   mutation un-shares it; the first sharer to close or hash fills the
///   cache for every other sharer.
class Octagon {
public:
  static constexpr int64_t kPosInf = INT64_MAX;

  /// Constructs ⊤ over the empty variable set.
  Octagon() = default;

  static Octagon top() { return Octagon(); }
  static Octagon bottomValue() {
    Octagon O;
    O.Bottom = true;
    return O;
  }

  bool isBottom() const { return Bottom; }

  /// The tracked dimensions, sorted ascending by SymbolId.
  const std::vector<SymbolId> &vars() const { return varList(); }

  /// Number of tracked variables.
  size_t numVars() const { return varList().size(); }

  /// Index of \p Sym in vars(), or npos.
  size_t varIndex(SymbolId Sym) const;
  /// String convenience: probes the intern table WITHOUT interning (a name
  /// never interned is certainly absent from every octagon).
  size_t varIndex(const std::string &Var) const;

  /// Adds a dimension for \p Sym (unconstrained) if absent.
  void addVar(SymbolId Sym);
  void addVar(const std::string &Var) { addVar(internSymbol(Var)); }

  /// Removes every constraint involving \p Sym and drops its dimension.
  void forgetAndRemove(SymbolId Sym);
  void forgetAndRemove(const std::string &Var);

  /// Removes every constraint involving dimension \p Idx IN PLACE (the
  /// dimension stays, unconstrained) — the cheap form of forget-then-re-add
  /// used by assignments. Closes first for precision; clearing the rows and
  /// columns of a closed matrix preserves closure, so no re-closure is
  /// needed afterwards.
  void forgetInPlace(size_t Idx);

  /// Projects onto \p Keep (every other dimension is dropped), closing
  /// first for precision. No-op when nothing would be dropped.
  void restrictTo(const std::vector<SymbolId> &Keep);

  /// Projects onto \p Keep WITHOUT closing first (sound only where
  /// imprecision is acceptable — widening, which must not close its left
  /// argument). Preserves the Closed flag as-is.
  void projectRawTo(const std::vector<SymbolId> &Keep);

  /// Renames variable \p From to \p To (To must be absent).
  void rename(SymbolId From, SymbolId To);
  void rename(const std::string &From, const std::string &To) {
    rename(internSymbol(From), internSymbol(To));
  }

  /// Half-matrix index algebra. matPos addresses a stored cell and requires
  /// J ≤ (I|1); matPos2 canonicalizes an arbitrary logical pair onto its
  /// stored representative via the coherence involution (i,j) ↦ (j̄,ī).
  static constexpr size_t matPos(size_t I, size_t J) {
    return J + ((I + 1) * (I + 1)) / 2;
  }
  static constexpr size_t matPos2(size_t I, size_t J) {
    return J > I ? matPos(J ^ 1, I ^ 1) : matPos(I, J);
  }
  /// Stored cells for a doubled dimension: Dim·(Dim+2)/2 = 2n²+2n.
  static constexpr size_t matSize(size_t Dim) { return Dim * (Dim + 2) / 2; }

  /// Logical matrix read; I, J < 2*numVars(). Coherent by construction:
  /// at(I, J) == at(J^1, I^1) address the same stored cell.
  int64_t at(size_t I, size_t J) const { return mat()[matPos2(I, J)]; }

  /// Logical matrix write, mirrored through coherence (one stored cell
  /// backs both orientations). Clears `Closed` iff the entry changes; see
  /// the closure-discipline notes above.
  void set(size_t I, size_t J, int64_t V);

  /// Tightens with constraint  ±x ± y ≤ C  (PosX: +x else −x; likewise
  /// PosY). Pass YIdx == npos for the unary constraint ±x ≤ C.
  void addConstraint(size_t XIdx, bool PosX, size_t YIdx, bool PosY,
                     int64_t C);

  /// this[i][j] := max(this[i][j], O[i][j]) over identical variable sets —
  /// the join kernel. One copy-on-write un-share for the whole sweep
  /// (per-cell set() would pay it once per cell). Leaves Closed untouched;
  /// the caller asserts closedness of the result (max of closed is closed).
  void elementwiseMax(const Octagon &O);

  /// Classic octagon widening kernel over identical variable sets: entries
  /// where \p O exceeds this go to +∞, the diagonal is pinned to 0, and the
  /// result is marked unclosed.
  void widenWith(const Octagon &O);

  /// Strong closure (pairwise Floyd–Warshall + unary strengthening);
  /// detects emptiness and collapses to ⊥. Idempotent. O(n³).
  /// \post isClosed() or isBottom(): every entry is the tightest bound the
  ///       constraint system implies, so readers see exact values.
  void close();

  /// Incremental strong closure after addConstraint on a value that was
  /// strongly closed beforehand: restores closure in O(n²) by running the
  /// pair pivot step only for \p XIdx (and \p YIdx when not npos — pass the
  /// same variable indices that were passed to addConstraint). Produces a
  /// matrix entrywise-identical to full close(), including ⊥ detection.
  /// Precondition: the receiver was closed before the constraint(s) on
  /// {XIdx, YIdx} were added.
  void closeIncremental(size_t XIdx, size_t YIdx = static_cast<size_t>(-1));

  /// k-pivot batch form of closeIncremental: restores strong closure after
  /// constraints touching the variables in \p Idxs were added to a value
  /// that was strongly closed beforehand, in ONE pass — a pair-pivot step
  /// per touched variable plus a single strengthening sweep, O(k·n²) for k
  /// touched variables instead of k separate O(n²) re-closures each paying
  /// its own strengthening and, worse, re-pivoting over already-tight rows.
  /// Exact for the same reason the single-constraint form is: every
  /// tightened edge is incident to the doubled indices of Idxs, so improved
  /// paths decompose into old shortest-path segments joined at those
  /// vertices, and one Floyd–Warshall pass over exactly that vertex set (any
  /// order) restores all-pairs shortest paths. Entrywise-identical to full
  /// close(), including ⊥ detection (randomized-tested).
  /// Duplicate indices are tolerated (deduplicated internally).
  void closeIncrementalMulti(const std::vector<size_t> &Idxs);

  bool isClosed() const { return Closed; }

  /// Read-only access to the strongly closed form of this value: returns
  /// *this when already closed (or ⊥), otherwise a closure computed at most
  /// once and cached — copies of this value share the cache, so a widening
  /// iterate consumed by many readers is fully closed only once. The
  /// returned reference is invalidated by any mutation of this value.
  const Octagon &closedView() const;

  /// Interval of variable \p Sym implied by this octagon.
  /// \pre !isBottom() and isClosed() (use closedView() first otherwise) —
  ///      unclosed receivers return bounds looser than the stored
  ///      constraints imply.
  Interval boundsOf(SymbolId Sym) const;
  Interval boundsOf(const std::string &Var) const;

  /// Interval of the SUM x + y implied by this octagon — the ±x±y query the
  /// zone tier cannot answer relationally (domain/staged.h escalates to this
  /// reader). Reads the two sum cells directly: x + y ≤ at(2j+1, 2i) and
  /// −x − y ≤ at(2j, 2i+1). Untracked operands contribute ⊤; X == Y returns
  /// the doubled unary bound 2x.
  /// \pre !isBottom() and isClosed().
  Interval sumBounds(SymbolId X, SymbolId Y) const;

  /// Interval of the DIFFERENCE x − y implied by this octagon; the octagon
  /// analogue of composing Zone::constraintOn(Y, X) with its mirror.
  /// \pre !isBottom() and isClosed().
  Interval diffBounds(SymbolId X, SymbolId Y) const;

  /// Structural helpers used by the domain policy.
  bool entailsEntrywise(const Octagon &O) const;
  uint64_t hash() const;

  /// Hash of the normalized form (unconstrained dimensions ignored) without
  /// materializing the restriction — equals hash() of the normalize()d
  /// value. Requires a closed (or ⊥) receiver.
  uint64_t hashNormalized() const;

  std::string toString() const;

  bool Bottom = false;
  bool Closed = true; ///< The empty DBM is trivially closed.

private:
  /// Sorted variable list, shared copy-on-write: copying an Octagon (every
  /// transfer does) must not reallocate the list. Null encodes the empty
  /// list; all mutations go through setVars().
  std::shared_ptr<const std::vector<SymbolId>> VarsPtr;

  /// The shared matrix buffer: the half-matrix DBM (see matPos) plus
  /// everything derived from it (cached closure, cached normalized hash).
  /// Octagon values are copied far more often than they are mutated (DAIG
  /// cell reads, memo stores, closed views), so the buffer is copy-on-write
  /// — and because the derived caches live INSIDE the shared buffer, the
  /// first consumer to close or hash any copy fills the cache for every
  /// other sharer, including the persistent cell value it was copied from.
  struct MatBuf {
    std::vector<int64_t> M;
    /// Closed form of M (see closedView()); itself closed, so its own
    /// buffer carries no further cache (no recursion).
    std::shared_ptr<const Octagon> ClosedCache;
    uint64_t NormHash = 0; ///< Cached hashNormalized() of a closed M.
    bool NormHashValid = false;
  };
  /// Null encodes the empty (zero-variable) matrix.
  std::shared_ptr<MatBuf> MPtr;

  const std::vector<SymbolId> &varList() const {
    static const std::vector<SymbolId> Empty;
    return VarsPtr ? *VarsPtr : Empty;
  }
  void setVars(std::vector<SymbolId> V) {
    VarsPtr = std::make_shared<const std::vector<SymbolId>>(std::move(V));
  }

  const std::vector<int64_t> &mat() const {
    static const std::vector<int64_t> Empty;
    return MPtr ? MPtr->M : Empty;
  }
  /// Mutable buffer access with copy-on-write: clones the matrix iff the
  /// buffer is shared with another value; the clone starts with empty
  /// caches, and the sharers keep theirs.
  MatBuf &bufMut() {
    if (!MPtr) {
      MPtr = std::make_shared<MatBuf>();
    } else if (MPtr.use_count() > 1) {
      auto Fresh = std::make_shared<MatBuf>();
      Fresh->M = MPtr->M;
      recordDbmAlloc(Fresh->M.size());
      MPtr = std::move(Fresh);
    }
    return *MPtr;
  }
  std::vector<int64_t> &matMut() { return bufMut().M; }
  void setMat(std::vector<int64_t> V);

  /// Prepares this value's buffer for mutation: un-shares it and drops the
  /// caches derived from the old matrix contents.
  void invalidateDerived() {
    if (!MPtr)
      return;
    MatBuf &B = bufMut();
    B.ClosedCache.reset();
    B.NormHashValid = false;
  }

  void resizeFor(size_t NewN, const std::vector<size_t> &OldIndexOfNew);

  /// One pairwise Floyd–Warshall pivot step on the doubled indices
  /// (2·\p Var, 2·\p Var+1), sweeping all stored cells. Shared by close()
  /// and closeIncremental().
  void pairPivot(size_t Var, uint64_t &CellsTouched);

  /// Unary strengthening + emptiness check shared by close() and
  /// closeIncremental(). Returns false when the octagon collapsed to ⊥.
  bool strengthenAndCheckEmpty(uint64_t &CellsTouched);
};

/// The octagon abstract domain policy (satisfies AbstractDomain).
struct OctagonDomain {
  using Elem = Octagon;

  static Elem bottom() { return Octagon::bottomValue(); }
  static Elem initialEntry(const std::vector<std::string> &Params);
  static Elem transfer(const Stmt &S, const Elem &In);
  static Elem join(const Elem &A, const Elem &B);
  static Elem widen(const Elem &Prev, const Elem &Next);
  static bool leq(const Elem &A, const Elem &B);
  static bool equal(const Elem &A, const Elem &B);
  static uint64_t hash(const Elem &A);
  static std::string toString(const Elem &A);
  static const char *name() { return "octagon"; }
  static bool isBottom(const Elem &A);

  static Elem enterCall(const Elem &Caller, const Stmt &CallSite,
                        const std::vector<std::string> &CalleeParams);
  static Elem exitCall(const Elem &Caller, const Elem &CalleeExit,
                       const Stmt &CallSite);

  /// Refines \p In under the assumption \p Cond (octagonal atoms are
  /// tightened exactly; others fall back to interval reasoning).
  static Elem assume(const Elem &In, const ExprPtr &Cond);
};

} // namespace dai

#endif // DAI_DOMAIN_OCTAGON_H
