//===-- domain/octagon.h - Octagon abstract domain --------------*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The octagon abstract domain (Miné 2006): relational invariants of the
/// form ±x ± y ≤ c, represented as a difference-bound matrix (DBM) over the
/// doubled variable set {+v, −v} with strong closure as the canonical form.
/// This is the domain the paper uses for its scalability study (Section 7.3,
/// Fig. 10), there provided by APRON; here implemented from scratch (see
/// DESIGN.md, substitutions). Its deliberately expensive O(n³) closure makes
/// domain operations dominate analysis latency, as in the paper.
///
/// Representation notes:
///  - Matrix entry (i, j) bounds V_j − V_i ≤ M[i][j], where V_{2k} = +v_k and
///    V_{2k+1} = −v_k; kPosInf encodes +∞.
///  - The variable set is dynamic: join/widen/leq unify to the common
///    variable set (absent variables are unconstrained).
///  - Values are kept strongly closed except widening results, which must
///    stay unclosed to guarantee convergence (the classic octagon widening
///    caveat); closure is re-established lazily by consumers.
///
//===----------------------------------------------------------------------===//

#ifndef DAI_DOMAIN_OCTAGON_H
#define DAI_DOMAIN_OCTAGON_H

#include "domain/abstract_domain.h"
#include "domain/interval.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dai {

/// An octagon abstract value: ⊥, or a DBM over a sorted variable list.
class Octagon {
public:
  static constexpr int64_t kPosInf = INT64_MAX;

  /// Constructs ⊤ over the empty variable set.
  Octagon() = default;

  static Octagon top() { return Octagon(); }
  static Octagon bottomValue() {
    Octagon O;
    O.Bottom = true;
    return O;
  }

  bool isBottom() const { return Bottom; }
  const std::vector<std::string> &vars() const { return Vars; }

  /// Number of tracked variables.
  size_t numVars() const { return Vars.size(); }

  /// Index of \p Var in Vars, or npos.
  size_t varIndex(const std::string &Var) const;

  /// Adds a dimension for \p Var (unconstrained) if absent.
  void addVar(const std::string &Var);

  /// Removes every constraint involving \p Var and drops its dimension.
  void forgetAndRemove(const std::string &Var);

  /// Projects onto \p Keep (every other dimension is dropped). Requires a
  /// closed receiver for precision; callers should close() first.
  void restrictTo(const std::vector<std::string> &Keep);

  /// Renames variable \p From to \p To (To must be absent).
  void rename(const std::string &From, const std::string &To);

  /// Raw matrix access; I, J < 2*numVars().
  int64_t at(size_t I, size_t J) const { return M[I * 2 * Vars.size() + J]; }
  void set(size_t I, size_t J, int64_t V) { M[I * 2 * Vars.size() + J] = V; }

  /// Tightens with constraint  ±x ± y ≤ C  (PosX: +x else −x; likewise
  /// PosY). Pass YIdx == npos for the unary constraint ±x ≤ C.
  void addConstraint(size_t XIdx, bool PosX, size_t YIdx, bool PosY,
                     int64_t C);

  /// Strong closure (Floyd–Warshall + unary strengthening); detects
  /// emptiness and collapses to ⊥. Idempotent.
  void close();
  bool isClosed() const { return Closed; }

  /// Interval of variable \p Var implied by this octagon (requires closed).
  Interval boundsOf(const std::string &Var) const;

  /// Structural helpers used by the domain policy.
  bool entailsEntrywise(const Octagon &O) const;
  uint64_t hash() const;
  std::string toString() const;

  bool Bottom = false;
  bool Closed = true; ///< The empty DBM is trivially closed.

private:
  std::vector<std::string> Vars; ///< Sorted.
  std::vector<int64_t> M;        ///< (2n)² row-major.

  void resizeFor(size_t NewN, const std::vector<size_t> &OldIndexOfNew);
};

/// The octagon abstract domain policy (satisfies AbstractDomain).
struct OctagonDomain {
  using Elem = Octagon;

  static Elem bottom() { return Octagon::bottomValue(); }
  static Elem initialEntry(const std::vector<std::string> &Params);
  static Elem transfer(const Stmt &S, const Elem &In);
  static Elem join(const Elem &A, const Elem &B);
  static Elem widen(const Elem &Prev, const Elem &Next);
  static bool leq(const Elem &A, const Elem &B);
  static bool equal(const Elem &A, const Elem &B);
  static uint64_t hash(const Elem &A);
  static std::string toString(const Elem &A);
  static const char *name() { return "octagon"; }
  static bool isBottom(const Elem &A);

  static Elem enterCall(const Elem &Caller, const Stmt &CallSite,
                        const std::vector<std::string> &CalleeParams);
  static Elem exitCall(const Elem &Caller, const Elem &CalleeExit,
                       const Stmt &CallSite);

  /// Refines \p In under the assumption \p Cond (octagonal atoms are
  /// tightened exactly; others fall back to interval reasoning).
  static Elem assume(const Elem &In, const ExprPtr &Cond);
};

} // namespace dai

#endif // DAI_DOMAIN_OCTAGON_H
