//===-- domain/staged.cpp - Staged zone→octagon domain --------------------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "domain/staged.h"

#include "domain/linear.h"
#include "support/budget.h"
#include "support/hashing.h"

#include <sstream>

using namespace dai;

namespace {

constexpr size_t npos = static_cast<size_t>(-1);

bool &escalationFlag() {
  static thread_local bool On = false;
  return On;
}

/// Budget degradation gate for NEW escalations: while the active budget is
/// soft- or hard-degraded, zone-only values stay zone-only even when
/// escalation mode or an octagonal guard asks for the octagon tier — the
/// staged domain drops to its cheap tier. Values that ALREADY carry an
/// octagon tier keep it (dropping committed precision saves nothing and
/// would break the dual-tier lockstep of escalated slices). A suppressed
/// escalation raises the budget taint so the evaluating DAIG cell is
/// recorded with degraded provenance — queries over it report as degraded
/// rather than silently answering with zone precision.
bool suppressEscalation(bool WantDual, bool HaveTier) {
  if (!WantDual || HaveTier || !budgetDegraded())
    return false;
  budgetState().TaintPending = true;
  return true;
}

/// The octagon tier of \p V, materializing a seed from the zone when the
/// value is zone-only. \p Storage keeps a materialized seed alive for the
/// caller's scope. Sets \p WasSeeded when a seed was materialized.
const Octagon &effectiveOct(const Staged &V, Octagon &Storage,
                            bool &WasSeeded) {
  if (V.escalated())
    return *V.Oct;
  Storage = seedOctagonFromZone(V.Z);
  WasSeeded = true;
  return Storage;
}

/// Octagon-⊥ collapse + octagon→zone unary reduction (see the reduction
/// discipline in staged.h). Keeps the ⊥ canonical-form invariant. Must NOT
/// run on widening results.
void reduce(Staged &V) {
  if (V.Z.isBottom()) {
    V = StagedDomain::bottom();
    return;
  }
  if (!V.Oct)
    return;
  if (OctagonDomain::isBottom(*V.Oct)) {
    V = StagedDomain::bottom();
    return;
  }
  const Octagon &OC = V.Oct->closedView();
  for (SymbolId S : OC.vars()) {
    Interval B = OC.boundsOf(S);
    if (B.isTop())
      continue;
    if (V.Z.varIndex(S) == npos)
      V.Z.addVar(S);
    if (B.hi() != Interval::kPosInf)
      V.Z.addUpperBound(S, B.hi());
    if (!V.Z.isBottom() && B.lo() != Interval::kNegInf)
      V.Z.addLowerBound(S, B.lo());
    if (V.Z.isBottom()) {
      // The tiers' facts are jointly infeasible: each over-approximates
      // the same concrete set, so that set is empty.
      V = StagedDomain::bottom();
      return;
    }
  }
}

/// Shared dual-tier application core of transfer() and assume(): runs the
/// per-tier functions, seeding the octagon when a zone-only input must
/// escalate, and OWNS the work counters and the reduction — every
/// octagon-tier evaluation is visible to the gate metric
/// (StagedCounters::EscalatedTransfers) no matter which entry point ran
/// it, and the two paths cannot drift.
template <typename ZoneFn, typename OctFn>
Staged applyTiered(const Staged &In, bool Dual, ZoneFn &&ZF, OctFn &&OF) {
  Staged Out;
  Out.Z = ZF(In.Z);
  if (!Dual) {
    ++stagedCounters().ZoneTransfers;
    return Out;
  }
  ++stagedCounters().EscalatedTransfers;
  TraceSpan Tsp("staged.escalated_transfer");
  Octagon SeedStorage;
  bool WasSeeded = false;
  const Octagon &OctIn = effectiveOct(In, SeedStorage, WasSeeded);
  Out.Oct = std::make_shared<Octagon>(OF(OctIn));
  Out.Seeded = In.Seeded || WasSeeded;
  reduce(Out);
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Seeding and guard classification
//===----------------------------------------------------------------------===//

Octagon dai::seedOctagonFromZone(const Zone &Zv) {
  if (Zv.isBottom())
    return Octagon::bottomValue();
  ++stagedCounters().OctSeeds;
  TraceSpan Sp("staged.seed_octagon");
  const Zone &C = Zv.closedView();
  Octagon O;
  for (SymbolId V : C.vars())
    O.addVar(V); // unconstrained dimensions keep the fresh ⊤ closed
  std::vector<size_t> Touched;
  auto touch = [&Touched](size_t Idx) {
    Touched.push_back(Idx); // closeIncrementalMulti deduplicates
  };
  C.forEachConstraint([&](SymbolId U, SymbolId V, int64_t W) {
    // Edge u→v encodes x_v − x_u ≤ W; kNoSymbol is the zero vertex.
    if (U == kNoSymbol) { // x_v ≤ W
      size_t I = O.varIndex(V);
      O.addConstraint(I, /*PosX=*/true, npos, true, W);
      touch(I);
    } else if (V == kNoSymbol) { // −x_u ≤ W
      size_t I = O.varIndex(U);
      O.addConstraint(I, /*PosX=*/false, npos, true, W);
      touch(I);
    } else { // x_v − x_u ≤ W
      size_t I = O.varIndex(V), J = O.varIndex(U);
      O.addConstraint(I, /*PosX=*/true, J, /*PosY=*/false, W);
      touch(I);
      touch(J);
    }
  });
  // The seed started closed (⊤ plus neutral dimensions) and every added
  // constraint touched a variable in Touched, so one k-pivot batch sweep
  // restores strong closure exactly. A feasible zone cannot seed ⊥.
  O.closeIncrementalMulti(Touched);
  assert(!O.isBottom() && "feasible zone seeded an empty octagon");
  return O;
}

bool dai::guardNeedsOctagon(const ExprPtr &Cond) {
  if (!Cond)
    return false;
  switch (Cond->Kind) {
  case ExprKind::Unary:
    // Classify the NEGATED guard, exactly as both tiers' assume() will
    // evaluate it: ¬(x + y == c) becomes a Ne atom, which falls back to
    // intervals in BOTH tiers and must not escalate, while ¬(x + y ≤ c)
    // becomes an octagonal Gt.
    return Cond->UOp == UnaryOp::Not && guardNeedsOctagon(negate(Cond->Lhs));
  case ExprKind::Binary: {
    if (Cond->BOp == BinaryOp::And || Cond->BOp == BinaryOp::Or)
      return guardNeedsOctagon(Cond->Lhs) || guardNeedsOctagon(Cond->Rhs);
    if (!isComparison(Cond->BOp) || Cond->BOp == BinaryOp::Ne)
      return false; // Ne falls back to intervals in BOTH tiers
    LinForm L = linearize(Cond->Lhs), R = linearize(Cond->Rhs);
    if (!L.Ok || !R.Ok)
      return false;
    LinForm Diff = L.plus(R, -1);
    if (Diff.Coeffs.size() != 2)
      return false;
    auto It = Diff.Coeffs.begin();
    auto It2 = std::next(It);
    // Unit coefficients of the SAME sign: ±(x + y) ≤ c — octagonal, and
    // exactly the shape zone's addLinearLeqZero rejects.
    if (It->second != It2->second)
      return false;
    return It->second == 1 || It->second == -1;
  }
  default:
    return false;
  }
}

//===----------------------------------------------------------------------===//
// Readers
//===----------------------------------------------------------------------===//

Interval Staged::boundsOf(SymbolId Sym) const {
  if (Z.isBottom())
    return Interval::empty();
  Interval B = Z.closedView().boundsOf(Sym);
  if (!escalated())
    return B;
  const Octagon &OC = Oct->closedView();
  if (OC.isBottom())
    return Interval::empty();
  return B.meet(OC.boundsOf(Sym));
}

Interval Staged::boundsOf(const std::string &Var) const {
  SymbolId Sym = lookupSymbol(Var);
  return Sym == kNoSymbol
             ? (Z.isBottom() ? Interval::empty() : Interval::top())
             : boundsOf(Sym);
}

Interval Staged::sumBounds(SymbolId X, SymbolId Y) const {
  ++stagedCounters().SumQueries;
  if (Z.isBottom())
    return Interval::empty();
  if (escalated()) {
    const Octagon &OC = Oct->closedView();
    if (OC.isBottom())
      return Interval::empty();
    // The octagon tier alone: under the full-escalation protocol this is
    // the pure-octagon answer (meeting in the zone's interval sum could
    // only return something TIGHTER than a pure octagon run, which the
    // bench's lockstep verification would flag as divergence).
    return OC.sumBounds(X, Y);
  }
  const Zone &CZ = Z.closedView();
  return CZ.boundsOf(X).add(CZ.boundsOf(Y)); // zone-tier degraded answer
}

Interval Staged::diffBounds(SymbolId X, SymbolId Y) const {
  if (Z.isBottom())
    return Interval::empty();
  const Zone &CZ = Z.closedView();
  int64_t Up = CZ.constraintOn(Y, X); // x − y ≤ Up
  int64_t Dn = CZ.constraintOn(X, Y); // y − x ≤ Dn
  Interval B = Interval::range(
      Dn == Zone::kPosInf ? Interval::kNegInf : -Dn,
      Up == Zone::kPosInf ? Interval::kPosInf : Up);
  if (!escalated())
    return B;
  const Octagon &OC = Oct->closedView();
  if (OC.isBottom())
    return Interval::empty();
  return B.meet(OC.diffBounds(X, Y));
}

std::string Staged::toString() const {
  if (Z.isBottom())
    return "⊥";
  std::ostringstream OS;
  OS << "zone:" << ZoneDomain::toString(Z);
  if (escalated())
    OS << " ⋉ oct:" << OctagonDomain::toString(*Oct);
  return OS.str();
}

//===----------------------------------------------------------------------===//
// StagedDomain
//===----------------------------------------------------------------------===//

static_assert(AbstractDomain<StagedDomain>,
              "StagedDomain must satisfy the Section 3 domain concept");

bool StagedDomain::escalationEnabled() { return escalationFlag(); }
void StagedDomain::setEscalation(bool On) { escalationFlag() = On; }

Staged StagedDomain::bottom() {
  Staged V;
  V.Z = Zone::bottomValue();
  return V;
}

bool StagedDomain::isBottom(const Elem &A) {
  // ⊥ is canonical (see Staged's invariant): the zone flag is the answer.
  return A.Z.isBottom();
}

Staged StagedDomain::initialEntry(const std::vector<std::string> &Params) {
  Staged V;
  V.Z = ZoneDomain::initialEntry(Params);
  if (escalationEnabled() &&
      !suppressEscalation(/*WantDual=*/true, /*HaveTier=*/false))
    V.Oct =
        std::make_shared<Octagon>(OctagonDomain::initialEntry(Params));
  return V;
}

Staged StagedDomain::transfer(const Stmt &S, const Elem &In) {
  if (In.Z.isBottom())
    return bottom();
  bool Dual = In.escalated() || escalationEnabled() ||
              ((S.Kind == StmtKind::Assume || S.Kind == StmtKind::Assert) &&
               guardNeedsOctagon(S.Rhs));
  if (suppressEscalation(Dual, In.escalated()))
    Dual = false;
  return applyTiered(
      In, Dual, [&](const Zone &Z) { return ZoneDomain::transfer(S, Z); },
      [&](const Octagon &O) { return OctagonDomain::transfer(S, O); });
}

Staged StagedDomain::assume(const Elem &In, const ExprPtr &Cond) {
  if (In.Z.isBottom())
    return bottom();
  bool Dual =
      In.escalated() || escalationEnabled() || guardNeedsOctagon(Cond);
  if (suppressEscalation(Dual, In.escalated()))
    Dual = false;
  return applyTiered(
      In, Dual, [&](const Zone &Z) { return ZoneDomain::assume(Z, Cond); },
      [&](const Octagon &O) { return OctagonDomain::assume(O, Cond); });
}

Staged StagedDomain::join(const Elem &A, const Elem &B) {
  if (A.Z.isBottom())
    return B;
  if (B.Z.isBottom())
    return A;
  Staged Out;
  Out.Z = ZoneDomain::join(A.Z, B.Z);
  bool Dual = A.escalated() || B.escalated() || escalationEnabled();
  if (suppressEscalation(Dual, A.escalated() || B.escalated()))
    Dual = false;
  if (!Dual)
    return Out;
  Octagon SA, SB;
  bool SeededA = false, SeededB = false;
  const Octagon &OA = effectiveOct(A, SA, SeededA);
  const Octagon &OB = effectiveOct(B, SB, SeededB);
  Out.Oct = std::make_shared<Octagon>(OctagonDomain::join(OA, OB));
  Out.Seeded = A.Seeded || B.Seeded || SeededA || SeededB;
  reduce(Out);
  return Out;
}

Staged StagedDomain::widen(const Elem &Prev, const Elem &Next) {
  if (Prev.Z.isBottom())
    return Next;
  if (Next.Z.isBottom())
    return Prev;
  Staged Out;
  Out.Z = ZoneDomain::widen(Prev.Z, Next.Z);
  bool Dual = Prev.escalated() || Next.escalated() || escalationEnabled();
  if (suppressEscalation(Dual, Prev.escalated() || Next.escalated()))
    Dual = false;
  if (!Dual) {
    Out.Seeded = false;
    return Out;
  }
  Octagon SP, SN;
  bool SeededP = false, SeededN = false;
  const Octagon &OP = effectiveOct(Prev, SP, SeededP);
  const Octagon &ON = effectiveOct(Next, SN, SeededN);
  Out.Oct = std::make_shared<Octagon>(OctagonDomain::widen(OP, ON));
  Out.Seeded = Prev.Seeded || Next.Seeded || SeededP || SeededN;
  // NO reduction on widening results: importing octagon bounds back into
  // the freshly widened zone would re-tighten edges the widening just
  // dropped and defeat convergence (and widening of non-⊥ arguments
  // cannot produce ⊥, so no collapse is needed either).
  return Out;
}

bool StagedDomain::leq(const Elem &A, const Elem &B) {
  if (A.Z.isBottom())
    return true;
  if (B.Z.isBottom())
    return false;
  if (!ZoneDomain::leq(A.Z, B.Z))
    return false;
  if (!B.escalated())
    return true; // γ(B) is its zone tier; γ(A) ⊆ γ(A.Z) ⊆ γ(B.Z)
  Octagon SA;
  bool SeededA = false;
  const Octagon &OA = effectiveOct(A, SA, SeededA);
  return OctagonDomain::leq(OA, *B.Oct);
}

bool StagedDomain::equal(const Elem &A, const Elem &B) {
  // Escalation status AND seeding provenance are part of the value's
  // identity (finer than pure semantic equality, which keeps hash()
  // consistent and costs at most a few extra fix iterations while a
  // loop's status stabilizes — both flags propagate monotonically).
  //
  // Like every D::equal, this must stay reflexive on copies: the escalated
  // tier shares its Octagon behind a copy-on-write pointer, so a value and
  // its copy may alias the same Oct — the dereference below is only safe
  // because escalated() implies Oct is non-null on BOTH sides, which the
  // flag check above guarantees for same-origin values. Cross-domain
  // comparisons never reach here: the type-erased AnyDomain::equal returns
  // false before dispatching when the operands' domains differ.
  if (A.escalated() != B.escalated() || A.Seeded != B.Seeded)
    return false;
  if (!ZoneDomain::equal(A.Z, B.Z))
    return false;
  return !A.escalated() || OctagonDomain::equal(*A.Oct, *B.Oct);
}

uint64_t StagedDomain::hash(const Elem &A) {
  uint64_t H = ZoneDomain::hash(A.Z);
  if (A.escalated())
    H = hashCombine(hashCombine(H, 0x57a6edULL),
                    OctagonDomain::hash(*A.Oct));
  if (A.Seeded)
    H = hashCombine(H, 0x5eededULL);
  return H;
}

std::string StagedDomain::toString(const Elem &A) { return A.toString(); }

Staged StagedDomain::enterCall(const Elem &Caller, const Stmt &CallSite,
                               const std::vector<std::string> &CalleeParams) {
  if (Caller.Z.isBottom())
    return bottom();
  Staged Out;
  Out.Z = ZoneDomain::enterCall(Caller.Z, CallSite, CalleeParams);
  bool Dual = Caller.escalated() || escalationEnabled();
  if (suppressEscalation(Dual, Caller.escalated()))
    Dual = false;
  if (!Dual)
    return Out;
  Octagon SC;
  bool WasSeeded = false;
  const Octagon &OC = effectiveOct(Caller, SC, WasSeeded);
  Out.Oct = std::make_shared<Octagon>(
      OctagonDomain::enterCall(OC, CallSite, CalleeParams));
  Out.Seeded = Caller.Seeded || WasSeeded;
  reduce(Out);
  return Out;
}

Staged StagedDomain::exitCall(const Elem &Caller, const Elem &CalleeExit,
                              const Stmt &CallSite) {
  if (Caller.Z.isBottom() || CalleeExit.Z.isBottom())
    return bottom();
  Staged Out;
  Out.Z = ZoneDomain::exitCall(Caller.Z, CalleeExit.Z, CallSite);
  bool Dual = Caller.escalated() || CalleeExit.escalated() ||
              escalationEnabled();
  if (suppressEscalation(Dual, Caller.escalated() || CalleeExit.escalated()))
    Dual = false;
  if (!Dual)
    return Out;
  Octagon SC, SE;
  bool SeededC = false, SeededE = false;
  const Octagon &OC = effectiveOct(Caller, SC, SeededC);
  const Octagon &OE = effectiveOct(CalleeExit, SE, SeededE);
  Out.Oct = std::make_shared<Octagon>(
      OctagonDomain::exitCall(OC, OE, CallSite));
  Out.Seeded =
      Caller.Seeded || CalleeExit.Seeded || SeededC || SeededE;
  reduce(Out);
  return Out;
}
