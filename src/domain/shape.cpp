//===-- domain/shape.cpp - Separation-logic list shape domain -------------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "domain/shape.h"

#include "support/hashing.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <sstream>

using namespace dai;

bool SymHeap::operator<(const SymHeap &O) const {
  if (Env != O.Env)
    return Env < O.Env;
  if (Atoms != O.Atoms)
    return Atoms < O.Atoms;
  return Diseqs < O.Diseqs;
}

Sym SymHeap::symOf(const std::string &Var) {
  auto It = Env.find(Var);
  if (It != Env.end())
    return It->second;
  Sym S = fresh();
  Env[Var] = S;
  return S;
}

const HeapAtom *SymHeap::atomAt(Sym S) const {
  for (const auto &A : Atoms)
    if (A.Src == S)
      return &A;
  return nullptr;
}

std::string SymHeap::toString() const {
  std::ostringstream OS;
  bool First = true;
  auto sep = [&]() {
    if (!First)
      OS << " * ";
    First = false;
  };
  auto symName = [](Sym S) {
    return S == NilSym ? std::string("nil") : "a" + std::to_string(S);
  };
  for (const auto &[Var, S] : Env) {
    sep();
    OS << Var << "=" << symName(S);
  }
  for (const auto &A : Atoms) {
    sep();
    if (A.K == HeapAtom::PtsTo)
      OS << symName(A.Src) << ".next->" << symName(A.Dst);
    else
      OS << "lseg(" << symName(A.Src) << ", " << symName(A.Dst) << ")";
  }
  for (const auto &[A, B] : Diseqs) {
    sep();
    OS << symName(A) << " != " << symName(B);
  }
  if (First)
    OS << "emp";
  return OS.str();
}

namespace {

void eraseAtomAt(SymHeap &H, Sym S) {
  std::erase_if(H.Atoms, [&](const HeapAtom &A) { return A.Src == S; });
}

void insertAtom(SymHeap &H, HeapAtom A) {
  H.Atoms.push_back(A);
  std::sort(H.Atoms.begin(), H.Atoms.end());
}

/// Resolves structural inconsistencies after a substitution: nil-sourced
/// atoms and colliding sources. May case-split (two lsegs at one source).
/// Returns every consistent resolution.
std::vector<SymHeap> normalizeHeap(SymHeap H);

/// Applies the equality A = B: substitutes and re-normalizes. Returns every
/// consistent outcome (empty: the disjunct is contradictory).
std::vector<SymHeap> substUnify(SymHeap H, Sym A, Sym B) {
  if (A == B)
    return {std::move(H)};
  if (H.distinct(A, B))
    return {};
  Sym Keep = std::min(A, B), Drop = std::max(A, B);
  for (auto &[Var, S] : H.Env)
    if (S == Drop)
      S = Keep;
  for (auto &Atom : H.Atoms) {
    if (Atom.Src == Drop)
      Atom.Src = Keep;
    if (Atom.Dst == Drop)
      Atom.Dst = Keep;
  }
  std::set<std::pair<Sym, Sym>> NewDiseqs;
  for (auto [X, Y] : H.Diseqs) {
    if (X == Drop)
      X = Keep;
    if (Y == Drop)
      Y = Keep;
    if (X == Y)
      return {}; // x != x: contradiction
    NewDiseqs.insert(X < Y ? std::make_pair(X, Y) : std::make_pair(Y, X));
  }
  H.Diseqs = std::move(NewDiseqs);
  std::sort(H.Atoms.begin(), H.Atoms.end());
  return normalizeHeap(std::move(H));
}

std::vector<SymHeap> normalizeHeap(SymHeap H) {
  // Nil-sourced atoms: nil.next ↦ _ is false; lseg(nil, d) forces d = nil.
  for (size_t I = 0; I < H.Atoms.size(); ++I) {
    const HeapAtom &A = H.Atoms[I];
    if (A.Src != NilSym)
      continue;
    if (A.K == HeapAtom::PtsTo)
      return {}; // the nil cell cannot be allocated
    Sym Dst = A.Dst;
    H.Atoms.erase(H.Atoms.begin() + static_cast<ptrdiff_t>(I));
    return substUnify(std::move(H), NilSym, Dst);
  }
  // Colliding sources: separation allows one cell owner per address.
  for (size_t I = 0; I + 1 < H.Atoms.size(); ++I) {
    if (H.Atoms[I].Src != H.Atoms[I + 1].Src)
      continue;
    HeapAtom A = H.Atoms[I], B = H.Atoms[I + 1];
    if (A.K == HeapAtom::PtsTo && B.K == HeapAtom::PtsTo)
      return {}; // s ↦ x ∗ s ↦ y is unsatisfiable
    if (A.K == HeapAtom::PtsTo || B.K == HeapAtom::PtsTo) {
      // PtsTo ∗ lseg at one source: the lseg must be empty.
      const HeapAtom &Seg = (A.K == HeapAtom::Lseg) ? A : B;
      SymHeap H2 = H;
      std::erase_if(H2.Atoms, [&](const HeapAtom &X) { return X == Seg; });
      return substUnify(std::move(H2), Seg.Src, Seg.Dst);
    }
    // lseg ∗ lseg at one source: one of them is empty — case split.
    std::vector<SymHeap> Out;
    for (const HeapAtom &Empty : {A, B}) {
      SymHeap H2 = H;
      auto It = std::find(H2.Atoms.begin(), H2.Atoms.end(), Empty);
      H2.Atoms.erase(It);
      for (auto &R : substUnify(std::move(H2), Empty.Src, Empty.Dst))
        Out.push_back(std::move(R));
    }
    return Out;
  }
  return {std::move(H)};
}

/// Result of materializing a points-to at a symbol: the consistent cases,
/// plus whether some case could not be proven safe.
struct MatCases {
  std::vector<std::pair<SymHeap, Sym>> Cases; ///< (heap with S ↦ dst, dst)
  bool MayErr = false;
};

void materializeInto(const SymHeap &H, Sym S, MatCases &Out, int Depth = 0) {
  if (S == NilSym || Depth > 64) {
    Out.MayErr = true; // null dereference (or pathological nesting)
    return;
  }
  const HeapAtom *A = H.atomAt(S);
  if (!A) {
    Out.MayErr = true; // dereference of unknown memory
    return;
  }
  if (A->K == HeapAtom::PtsTo) {
    Out.Cases.emplace_back(H, A->Dst);
    return;
  }
  // lseg(S, D): empty (S = D, retry) or nonempty (unfold one cell).
  Sym D = A->Dst;
  {
    SymHeap Empty = H;
    eraseAtomAt(Empty, S);
    for (auto &R : substUnify(std::move(Empty), S, D)) {
      Sym Target = std::min(S, D);
      materializeInto(R, Target, Out, Depth + 1);
    }
  }
  {
    SymHeap NonEmpty = H;
    Sym Mid = NonEmpty.fresh();
    eraseAtomAt(NonEmpty, S);
    insertAtom(NonEmpty, HeapAtom{HeapAtom::PtsTo, S, Mid});
    insertAtom(NonEmpty, HeapAtom{HeapAtom::Lseg, Mid, D});
    Out.Cases.emplace_back(std::move(NonEmpty), Mid);
  }
}

/// Is \p E a pointer-valued expression this domain can evaluate?
bool isPointerExpr(const ExprPtr &E) {
  if (!E)
    return false;
  switch (E->Kind) {
  case ExprKind::NullLit:
  case ExprKind::Var:
    return true;
  case ExprKind::FieldRead:
    return E->Name == "next" && isPointerExpr(E->Lhs);
  default:
    return false;
  }
}

/// Evaluation of a pointer expression: like materialization, produces cases.
struct EvalCases {
  std::vector<std::pair<SymHeap, Sym>> Cases;
  bool MayErr = false;
};

void evalPtrInto(const SymHeap &H, const ExprPtr &E, EvalCases &Out) {
  assert(isPointerExpr(E) && "evalPtrInto requires a pointer expression");
  switch (E->Kind) {
  case ExprKind::NullLit:
    Out.Cases.emplace_back(H, NilSym);
    return;
  case ExprKind::Var: {
    SymHeap H2 = H;
    Sym S = H2.symOf(E->Name);
    Out.Cases.emplace_back(std::move(H2), S);
    return;
  }
  case ExprKind::FieldRead: {
    EvalCases Base;
    evalPtrInto(H, E->Lhs, Base);
    Out.MayErr |= Base.MayErr;
    for (auto &[BH, BS] : Base.Cases) {
      MatCases Mat;
      materializeInto(BH, BS, Mat);
      Out.MayErr |= Mat.MayErr;
      for (auto &[MH, MDst] : Mat.Cases)
        Out.Cases.emplace_back(std::move(MH), MDst);
    }
    return;
  }
  default:
    assert(false && "not a pointer expression");
  }
}

/// Assume evaluation for one disjunct: every heap consistent with Cond.
/// Sets MayErr when a dereference inside Cond cannot be proven safe.
void assumeInto(const SymHeap &H, const ExprPtr &Cond,
                std::vector<SymHeap> &Out, bool &MayErr) {
  if (!Cond) {
    Out.push_back(H);
    return;
  }
  switch (Cond->Kind) {
  case ExprKind::BoolLit:
    if (Cond->BoolVal)
      Out.push_back(H);
    return;
  case ExprKind::IntLit:
    if (Cond->IntVal != 0)
      Out.push_back(H);
    return;
  case ExprKind::Unary:
    if (Cond->UOp == UnaryOp::Not) {
      assumeInto(H, negate(Cond->Lhs), Out, MayErr);
      return;
    }
    Out.push_back(H);
    return;
  case ExprKind::Binary: {
    if (Cond->BOp == BinaryOp::And) {
      std::vector<SymHeap> Mid;
      assumeInto(H, Cond->Lhs, Mid, MayErr);
      for (const auto &M : Mid)
        assumeInto(M, Cond->Rhs, Out, MayErr);
      return;
    }
    if (Cond->BOp == BinaryOp::Or) {
      assumeInto(H, Cond->Lhs, Out, MayErr);
      assumeInto(H, Cond->Rhs, Out, MayErr);
      return;
    }
    bool PtrCmp = (Cond->BOp == BinaryOp::Eq || Cond->BOp == BinaryOp::Ne) &&
                  isPointerExpr(Cond->Lhs) && isPointerExpr(Cond->Rhs);
    if (!PtrCmp) {
      Out.push_back(H); // numeric conditions: no shape content
      return;
    }
    EvalCases L;
    evalPtrInto(H, Cond->Lhs, L);
    MayErr |= L.MayErr;
    for (auto &[LH, LS] : L.Cases) {
      EvalCases R;
      evalPtrInto(LH, Cond->Rhs, R);
      MayErr |= R.MayErr;
      for (auto &[RH, RS] : R.Cases) {
        if (Cond->BOp == BinaryOp::Eq) {
          for (auto &U : substUnify(RH, LS, RS))
            Out.push_back(std::move(U));
        } else {
          if (LS == RS)
            continue; // definitely equal: Ne is false here
          SymHeap H2 = RH;
          H2.addDiseq(LS, RS);
          Out.push_back(std::move(H2));
        }
      }
    }
    return;
  }
  default:
    Out.push_back(H);
    return;
  }
}

/// Canonicalizes, deduplicates, and caps a disjunct set into \p S. When the
/// cap is exceeded, disjuncts are first *folded* (abstracted) — which often
/// collapses case-split families back together — before giving up to ⊤.
void finalize(ShapeState &S) {
  if (S.Top) {
    S.Disjuncts.clear();
    return;
  }
  auto dedup = [&] {
    std::sort(S.Disjuncts.begin(), S.Disjuncts.end());
    S.Disjuncts.erase(std::unique(S.Disjuncts.begin(), S.Disjuncts.end()),
                      S.Disjuncts.end());
  };
  for (auto &H : S.Disjuncts)
    H = ShapeDomain::canonicalize(H);
  dedup();
  if (S.Disjuncts.size() > ShapeDomain::MaxDisjuncts) {
    for (auto &H : S.Disjuncts)
      H = ShapeDomain::fold(H);
    dedup();
  }
  if (S.Disjuncts.size() > ShapeDomain::MaxDisjuncts) {
    S.Top = true;
    S.Disjuncts.clear();
  }
}

} // namespace

SymHeap ShapeDomain::canonicalize(const SymHeap &H) {
  // Reachability from the environment (and nil).
  std::set<Sym> Reachable = {NilSym};
  std::deque<Sym> Work;
  for (const auto &[Var, S] : H.Env) {
    if (Reachable.insert(S).second)
      Work.push_back(S);
  }
  // Seed order is deterministic (Env is sorted by variable).
  std::vector<Sym> Order;
  Order.push_back(NilSym);
  for (const auto &[Var, S] : H.Env)
    if (std::find(Order.begin(), Order.end(), S) == Order.end())
      Order.push_back(S);
  // Discover chain symbols in deterministic BFS order.
  for (size_t I = 0; I < Order.size(); ++I) {
    const HeapAtom *A = H.atomAt(Order[I]);
    if (!A)
      continue;
    if (std::find(Order.begin(), Order.end(), A->Dst) == Order.end())
      Order.push_back(A->Dst);
  }
  std::set<Sym> Kept(Order.begin(), Order.end());
  // Renumber.
  std::map<Sym, Sym> Renaming;
  Sym Next = 0;
  for (Sym S : Order)
    Renaming[S] = Next++;
  assert(Renaming[NilSym] == NilSym && "nil must stay symbol 0");

  SymHeap Out;
  Out.NextSym = Next;
  for (const auto &[Var, S] : H.Env)
    Out.Env[Var] = Renaming[S];
  for (const auto &A : H.Atoms) {
    if (!Kept.count(A.Src) || !Kept.count(A.Dst))
      continue; // garbage (unreachable) heap: sound to drop
    Out.Atoms.push_back(HeapAtom{A.K, Renaming[A.Src], Renaming[A.Dst]});
  }
  std::sort(Out.Atoms.begin(), Out.Atoms.end());
  for (const auto &[A, B] : H.Diseqs) {
    if (!Kept.count(A) || !Kept.count(B))
      continue;
    Out.addDiseq(Renaming[A], Renaming[B]);
  }
  return Out;
}

SymHeap ShapeDomain::fold(const SymHeap &In) {
  SymHeap H = In;
  // Generalize every points-to into a (possibly longer) segment: the
  // re-summarization step of the Chang et al. rewrite rules. Sound
  // (x ↦ y entails lseg(x, y)) and key to convergence in few unrollings:
  // loop invariants become lseg-shaped after one widen.
  for (auto &A : H.Atoms)
    A.K = HeapAtom::Lseg;
  std::set<Sym> Named = {NilSym};
  for (const auto &[Var, S] : H.Env)
    Named.insert(S);
  // Abstraction drops pure facts about anonymous symbols (needed so folded
  // heaps range over a finite space).
  std::erase_if(H.Diseqs, [&](const std::pair<Sym, Sym> &D) {
    return !Named.count(D.first) || !Named.count(D.second);
  });
  // Fold a ↦/lseg m ∗ m ↦/lseg c into lseg(a, c) for anonymous mid-points m
  // with in-degree one.
  for (bool Changed = true; Changed;) {
    Changed = false;
    for (const auto &A : H.Atoms) {
      Sym M = A.Dst;
      if (Named.count(M) || M == A.Src)
        continue;
      unsigned InDeg = 0;
      for (const auto &X : H.Atoms)
        if (X.Dst == M)
          ++InDeg;
      if (InDeg != 1)
        continue;
      const HeapAtom *B = H.atomAt(M);
      if (!B || B->Dst == M)
        continue;
      HeapAtom Folded{HeapAtom::Lseg, A.Src, B->Dst};
      HeapAtom ACopy = A, BCopy = *B;
      std::erase_if(H.Atoms,
                    [&](const HeapAtom &X) { return X == ACopy || X == BCopy; });
      insertAtom(H, Folded);
      Changed = true;
      break; // iterators invalidated; rescan
    }
  }
  return canonicalize(H);
}

ShapeState ShapeDomain::initialEntry(const std::vector<std::string> &Params) {
  ShapeState S;
  SymHeap H;
  for (const auto &P : Params) {
    Sym A = H.fresh();
    H.Env[P] = A;
    insertAtom(H, HeapAtom{HeapAtom::Lseg, A, NilSym});
  }
  S.Disjuncts.push_back(canonicalize(H));
  return S;
}

ShapeState ShapeDomain::transfer(const Stmt &St, const Elem &In) {
  if (In.isBottom())
    return In;
  ShapeState Out;
  Out.Error = In.Error;
  if (In.Top) {
    Out.Top = true;
    // Under an unknown heap, any dereference may fail.
    auto derefs = [&](const ExprPtr &E) {
      for (ExprPtr Cur = E; Cur; Cur = Cur->Lhs)
        if (Cur->Kind == ExprKind::FieldRead && Cur->Name == "next")
          return true;
      return false;
    };
    if (St.Kind == StmtKind::FieldWrite || derefs(St.Rhs) || derefs(St.Index))
      Out.Error = true;
    return Out;
  }

  bool MayErr = false;
  for (const SymHeap &H : In.Disjuncts) {
    switch (St.Kind) {
    case StmtKind::Skip:
    case StmtKind::Print:
    case StmtKind::ArrayWrite: // arrays and the .next heap are disjoint
      Out.Disjuncts.push_back(H);
      break;
    case StmtKind::Alloc: {
      SymHeap H2 = H;
      Sym S = H2.fresh();
      H2.Env[St.Lhs] = S;
      insertAtom(H2, HeapAtom{HeapAtom::PtsTo, S, NilSym});
      H2.addDiseq(S, NilSym);
      Out.Disjuncts.push_back(std::move(H2));
      break;
    }
    case StmtKind::Assign: {
      if (isPointerExpr(St.Rhs)) {
        EvalCases E;
        evalPtrInto(H, St.Rhs, E);
        MayErr |= E.MayErr;
        for (auto &[EH, ES] : E.Cases) {
          SymHeap H2 = std::move(EH);
          H2.Env[St.Lhs] = ES;
          Out.Disjuncts.push_back(std::move(H2));
        }
      } else {
        SymHeap H2 = H;
        H2.Env[St.Lhs] = H2.fresh(); // non-pointer: unconstrained symbol
        Out.Disjuncts.push_back(std::move(H2));
      }
      break;
    }
    case StmtKind::FieldWrite: {
      // x.next = e: evaluate e, then materialize x's cell and overwrite.
      EvalCases Val;
      if (isPointerExpr(St.Rhs)) {
        evalPtrInto(H, St.Rhs, Val);
        MayErr |= Val.MayErr;
      } else {
        SymHeap H2 = H;
        Sym S = H2.fresh();
        Val.Cases.emplace_back(std::move(H2), S);
      }
      for (auto &[VH, VS] : Val.Cases) {
        SymHeap H2 = std::move(VH);
        Sym X = H2.symOf(St.Lhs);
        MatCases Mat;
        materializeInto(H2, X, Mat);
        MayErr |= Mat.MayErr;
        for (auto &[MH, MDst] : Mat.Cases) {
          (void)MDst;
          SymHeap H3 = std::move(MH);
          // The materialized atom at X (= min-rewritten symbol) is PtsTo.
          Sym XNow = H3.symOf(St.Lhs);
          eraseAtomAt(H3, XNow);
          insertAtom(H3, HeapAtom{HeapAtom::PtsTo, XNow, VS});
          Out.Disjuncts.push_back(std::move(H3));
        }
      }
      break;
    }
    case StmtKind::Assume:
    case StmtKind::Assert: { // Aborts on failure: the condition holds after.
      assumeInto(H, St.Rhs, Out.Disjuncts, MayErr);
      break;
    }
    case StmtKind::Call: {
      // Intraprocedural default: the callee may mutate reachable heap
      // arbitrarily. (The interprocedural engine replaces this hook.)
      Out.Top = true;
      break;
    }
    }
    if (Out.Top)
      break;
  }
  Out.Error |= MayErr;
  finalize(Out);
  return Out;
}

ShapeState ShapeDomain::join(const Elem &A, const Elem &B) {
  ShapeState Out;
  Out.Error = A.Error || B.Error;
  Out.Top = A.Top || B.Top;
  if (!Out.Top) {
    Out.Disjuncts = A.Disjuncts;
    Out.Disjuncts.insert(Out.Disjuncts.end(), B.Disjuncts.begin(),
                         B.Disjuncts.end());
  }
  finalize(Out);
  return Out;
}

ShapeState ShapeDomain::widen(const Elem &Prev, const Elem &Next) {
  ShapeState Joined = join(Prev, Next);
  if (Joined.Top)
    return Joined;
  for (auto &H : Joined.Disjuncts)
    H = fold(H);
  finalize(Joined);
  return Joined;
}

bool ShapeDomain::leq(const Elem &A, const Elem &B) {
  if (A.Error && !B.Error)
    return false;
  if (A.isBottom())
    return true;
  if (B.Top)
    return true;
  if (A.Top)
    return false;
  // Inclusion of canonical disjuncts, additionally recognizing widening's
  // abstraction: γ(H) ⊆ γ(fold(H)), so a disjunct whose fold matches is
  // entailed. Sound and sufficient for ∇-upper-bound reasoning; still
  // incomplete in general.
  for (const auto &HA : A.Disjuncts) {
    SymHeap CA = canonicalize(HA);
    SymHeap FA = fold(HA);
    bool Found = false;
    for (const auto &HB : B.Disjuncts) {
      SymHeap CB = canonicalize(HB);
      if (CA == CB || FA == CB) {
        Found = true;
        break;
      }
    }
    if (!Found)
      return false;
  }
  return true;
}

bool ShapeDomain::equal(const Elem &A, const Elem &B) {
  if (A.Top != B.Top || A.Error != B.Error)
    return false;
  if (A.Top)
    return true;
  if (A.Disjuncts.size() != B.Disjuncts.size())
    return false;
  auto Canon = [](const Elem &S) {
    std::vector<SymHeap> V;
    V.reserve(S.Disjuncts.size());
    for (const auto &H : S.Disjuncts)
      V.push_back(canonicalize(H));
    std::sort(V.begin(), V.end());
    return V;
  };
  return Canon(A) == Canon(B);
}

uint64_t ShapeDomain::hash(const Elem &A) {
  uint64_t H = hashValues(A.Top ? 1u : 0u, A.Error ? 1u : 0u);
  std::vector<SymHeap> V;
  V.reserve(A.Disjuncts.size());
  for (const auto &D : A.Disjuncts)
    V.push_back(canonicalize(D));
  std::sort(V.begin(), V.end());
  for (const auto &D : V) {
    for (const auto &[Var, S] : D.Env)
      H = hashCombine(hashCombine(H, hashString(Var)), S);
    for (const auto &Atom : D.Atoms)
      H = hashCombine(H, hashValues(static_cast<uint64_t>(Atom.K), Atom.Src,
                                    Atom.Dst));
    for (const auto &[X, Y] : D.Diseqs)
      H = hashCombine(H, hashValues(X, Y, 0xd15e9ULL));
  }
  return H;
}

std::string ShapeDomain::toString(const Elem &A) {
  if (A.isBottom())
    return "⊥";
  std::ostringstream OS;
  if (A.Error)
    OS << "[ERR] ";
  if (A.Top) {
    OS << "⊤";
    return OS.str();
  }
  bool First = true;
  for (const auto &H : A.Disjuncts) {
    if (!First)
      OS << "  ∨  ";
    First = false;
    OS << "(" << H.toString() << ")";
  }
  return OS.str();
}

ShapeState ShapeDomain::enterCall(const Elem &Caller, const Stmt &,
                                  const std::vector<std::string> &Params) {
  if (Caller.isBottom())
    return bottom();
  // Documented assumption (as in the paper's study): callees receive
  // well-formed, separated lists.
  return initialEntry(Params);
}

ShapeState ShapeDomain::exitCall(const Elem &Caller, const Elem &CalleeExit,
                                 const Stmt &) {
  if (Caller.isBottom())
    return Caller;
  if (CalleeExit.isBottom())
    return bottom();
  ShapeState Out;
  Out.Top = true; // the callee may have mutated any reachable cell
  Out.Error = Caller.Error || CalleeExit.Error;
  return Out;
}

bool ShapeDomain::provesListInvariant(const Elem &S, const std::string &Var) {
  if (S.Top)
    return false;
  for (const auto &H : S.Disjuncts) {
    auto It = H.Env.find(Var);
    if (It == H.Env.end())
      return false;
    Sym Cur = It->second;
    std::set<Sym> Visited;
    while (Cur != NilSym) {
      if (!Visited.insert(Cur).second)
        return false; // cycle
      const HeapAtom *A = H.atomAt(Cur);
      if (!A)
        return false; // dangling tail
      Cur = A->Dst;
    }
  }
  return true;
}
