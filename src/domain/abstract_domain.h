//===-- domain/abstract_domain.h - Abstract interpreter interface -*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The generic abstract interpreter interface of Section 3: a domain is the
/// 6-tuple ⟨Σ♯, φ0, ⟦·⟧♯, ⊑, ⊔, ∇⟩, here expressed as a C++20 concept over a
/// stateless policy type (the analogue of the paper's OCaml functor
/// argument). Everything downstream — the batch interpreter, the DAIG, and
/// the interprocedural engine — is parameterized by a type satisfying
/// AbstractDomain.
///
/// Contract (mirrors Section 3):
///  - Elem is a value type forming a semi-lattice under leq/join with
///    bottom() as least element.
///  - transfer(s, φ) interprets statement s as a monotone function; it must
///    map bottom to bottom.
///  - widen(a, b) is an upper bound of {a, b} and enforces convergence of
///    widened increasing chains (Section 3's ∇ contract); for finite-height
///    domains join itself qualifies.
///  - equal is semantic equality (used for fix-edge convergence, Fig. 8);
///    hash must agree with equal (used for memo-table names).
///  - initialEntry(params) is φ0 for a procedure entry whose parameters are
///    unknown (used for `main` and for context-insensitive callee analysis).
///
/// Interprocedural hooks (Section 7.1): enterCall projects a caller state
/// into a callee entry state binding actuals to formals; exitCall combines
/// the caller's pre-call state with the callee's exit state, binding the
/// call's left-hand side from the callee's __ret.
///
//===----------------------------------------------------------------------===//

#ifndef DAI_DOMAIN_ABSTRACT_DOMAIN_H
#define DAI_DOMAIN_ABSTRACT_DOMAIN_H

#include "lang/stmt.h"

#include <concepts>
#include <cstdint>
#include <string>
#include <vector>

namespace dai {

// clang-format off
template <typename D>
concept AbstractDomain = requires(const typename D::Elem &A,
                                  const typename D::Elem &B, const Stmt &S,
                                  const std::vector<std::string> &Params) {
  typename D::Elem;
  { D::bottom() } -> std::same_as<typename D::Elem>;
  { D::initialEntry(Params) } -> std::same_as<typename D::Elem>;
  { D::transfer(S, A) } -> std::same_as<typename D::Elem>;
  { D::join(A, B) } -> std::same_as<typename D::Elem>;
  { D::widen(A, B) } -> std::same_as<typename D::Elem>;
  { D::leq(A, B) } -> std::same_as<bool>;
  { D::equal(A, B) } -> std::same_as<bool>;
  { D::hash(A) } -> std::same_as<uint64_t>;
  { D::toString(A) } -> std::same_as<std::string>;
  { D::name() } -> std::convertible_to<const char *>;
  { D::isBottom(A) } -> std::same_as<bool>;
  { D::enterCall(A, S, Params) } -> std::same_as<typename D::Elem>;
  { D::exitCall(A, B, S) } -> std::same_as<typename D::Elem>;
};
// clang-format on

/// Three-valued truth used by assume-refinement in several domains.
enum class TriBool : uint8_t { False, True, Unknown };

inline TriBool triNot(TriBool B) {
  switch (B) {
  case TriBool::False: return TriBool::True;
  case TriBool::True: return TriBool::False;
  case TriBool::Unknown: return TriBool::Unknown;
  }
  return TriBool::Unknown;
}

inline TriBool triAnd(TriBool A, TriBool B) {
  if (A == TriBool::False || B == TriBool::False)
    return TriBool::False;
  if (A == TriBool::True && B == TriBool::True)
    return TriBool::True;
  return TriBool::Unknown;
}

inline TriBool triOr(TriBool A, TriBool B) {
  if (A == TriBool::True || B == TriBool::True)
    return TriBool::True;
  if (A == TriBool::False && B == TriBool::False)
    return TriBool::False;
  return TriBool::Unknown;
}

} // namespace dai

#endif // DAI_DOMAIN_ABSTRACT_DOMAIN_H
