//===-- domain/shape.h - Separation-logic list shape domain -----*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A separation-logic shape domain for singly-linked lists, the paper's
/// third instantiation (Section 7.2): abstract states are finite disjunctions
/// of symbolic heaps, each consisting of
///   - an environment mapping variables to symbolic addresses,
///   - a *separating* conjunction of points-to (α.next ↦ α') and list-segment
///     (lseg(α, α')) atoms, and
///   - pure constraints (dis-equalities; equalities are applied eagerly by
///     substitution),
/// specialized — like the paper's instantiation — to the fixed inductive
/// definition lseg(x,y) ≡ x = y ∧ emp ∨ ∃z. x.next ↦ z ∗ lseg(z,y).
///
/// Dereferences *materialize* lseg atoms (case-splitting on emptiness);
/// widening *folds* anonymous chains back into lseg atoms and caps the
/// disjunct count, giving a finite abstraction over the program's variables
/// and hence convergence. A sticky Error bit records dereferences that could
/// not be proven safe (the memory-safety verification client); per the
/// paper's concrete semantics, the failing execution itself is ⊥ and
/// contributes no disjunct.
///
//===----------------------------------------------------------------------===//

#ifndef DAI_DOMAIN_SHAPE_H
#define DAI_DOMAIN_SHAPE_H

#include "domain/abstract_domain.h"
#include "lang/stmt.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace dai {

/// A symbolic address. Symbol 0 is the distinguished nil.
using Sym = uint32_t;
inline constexpr Sym NilSym = 0;

/// One spatial atom: Src.next ↦ Dst, or lseg(Src, Dst).
struct HeapAtom {
  enum Kind : uint8_t { PtsTo, Lseg } K;
  Sym Src;
  Sym Dst;

  bool operator==(const HeapAtom &O) const {
    return K == O.K && Src == O.Src && Dst == O.Dst;
  }
  bool operator<(const HeapAtom &O) const {
    if (Src != O.Src)
      return Src < O.Src;
    if (K != O.K)
      return K < O.K;
    return Dst < O.Dst;
  }
};

/// One disjunct: environment ∗ spatial formula ∧ pure dis-equalities.
struct SymHeap {
  std::map<std::string, Sym> Env;
  std::vector<HeapAtom> Atoms;                ///< Sorted by Src (unique Srcs).
  std::set<std::pair<Sym, Sym>> Diseqs;       ///< Normalized (lo, hi) pairs.
  Sym NextSym = 1;

  bool operator==(const SymHeap &O) const {
    return Env == O.Env && Atoms == O.Atoms && Diseqs == O.Diseqs;
  }
  bool operator<(const SymHeap &O) const;

  Sym fresh() { return NextSym++; }
  /// Returns the symbol bound to \p Var, binding a fresh one if absent.
  Sym symOf(const std::string &Var);
  /// Returns the atom whose Src is \p S, or nullptr.
  const HeapAtom *atomAt(Sym S) const;

  bool distinct(Sym A, Sym B) const {
    if (A == B)
      return false;
    auto P = A < B ? std::make_pair(A, B) : std::make_pair(B, A);
    return Diseqs.count(P) != 0;
  }
  void addDiseq(Sym A, Sym B) {
    if (A != B)
      Diseqs.insert(A < B ? std::make_pair(A, B) : std::make_pair(B, A));
  }

  std::string toString() const;
};

/// A shape abstract value: ⊥, ⊤ (unknown heap), or a set of disjuncts — plus
/// the sticky memory-safety Error bit.
struct ShapeState {
  bool Top = false;
  bool Error = false;
  std::vector<SymHeap> Disjuncts; ///< Empty ∧ !Top ⇒ ⊥.

  bool isBottom() const { return !Top && Disjuncts.empty() && !Error; }
};

/// The shape abstract domain policy (satisfies AbstractDomain).
struct ShapeDomain {
  /// Disjunct cap: beyond this, the state widens to ⊤ (unknown heap).
  static constexpr size_t MaxDisjuncts = 24;

  using Elem = ShapeState;

  static Elem bottom() { return ShapeState(); }
  /// Entry assumption (as in the paper's example): every parameter is a
  /// well-formed, pairwise-separated null-terminated list: ∗_i lseg(p_i, nil).
  static Elem initialEntry(const std::vector<std::string> &Params);
  static Elem transfer(const Stmt &S, const Elem &In);
  static Elem join(const Elem &A, const Elem &B);
  static Elem widen(const Elem &Prev, const Elem &Next);
  static bool leq(const Elem &A, const Elem &B);
  static bool equal(const Elem &A, const Elem &B);
  static uint64_t hash(const Elem &A);
  static std::string toString(const Elem &A);
  static const char *name() { return "shape"; }
  static bool isBottom(const Elem &A) { return A.isBottom(); }

  // Interprocedural hooks. The paper's shape study is intraprocedural; the
  // conservative hooks below assume callees receive well-formed lists and
  // havoc the caller's heap on return.
  static Elem enterCall(const Elem &Caller, const Stmt &CallSite,
                        const std::vector<std::string> &CalleeParams);
  static Elem exitCall(const Elem &Caller, const Elem &CalleeExit,
                       const Stmt &CallSite);

  /// Canonicalizes one disjunct: garbage-collects atoms unreachable from the
  /// environment and renumbers symbols deterministically. Exposed for tests.
  static SymHeap canonicalize(const SymHeap &H);

  /// Folds anonymous chains into lseg atoms (the widening abstraction).
  static SymHeap fold(const SymHeap &H);

  /// Verification clients (Section 7.2):
  /// true iff \p Var provably holds a well-formed (null-terminated, acyclic)
  /// list in every disjunct of \p S.
  static bool provesListInvariant(const Elem &S, const std::string &Var);
  /// true iff no dereference along any path into \p S could have failed.
  static bool provesMemorySafety(const Elem &S) { return !S.Error; }
};

} // namespace dai

#endif // DAI_DOMAIN_SHAPE_H
