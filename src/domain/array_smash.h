//===-- domain/array_smash.h - Array-smashing functor domain ----*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Array smashing as a *functor* domain (crab's `array_smashing<Dom>`
/// lineage): wraps any base AbstractDomain and folds every array into one
/// summary cell per array — a ghost length variable `a#len` and a ghost
/// element-summary variable `a#elem` tracked *in the base domain itself*.
/// Array reads are rewritten into ghost-variable reads before the base sees
/// them (`a[i]` becomes `a#elem`, `a.length` becomes `a#len`), and array
/// writes are weak updates: the post-state joins "summary := written value"
/// with the unchanged pre-state, because a single smashed cell stands for
/// every element at once.
///
/// The payoff is that *relational* base domains get array reasoning for
/// free: `arr_zone` can discharge `i < a.length` bounds obligations via a
/// difference constraint on `i` and `a#len`, which the native interval
/// array tracking cannot express. The `#` in ghost names cannot appear in
/// source identifiers, so ghosts never collide with program variables.
///
/// Because the wrapper reuses the base's Elem unchanged, every lattice
/// operation (join/widen/leq/equal/hash) delegates verbatim — the functor
/// only intercepts transfer, enterCall, and exitCall. Ghost bindings flow
/// through calls by extending the callee's parameter list with ghost
/// formals bound from ghost actuals, so the base's own enterCall machinery
/// does the binding.
///
//===----------------------------------------------------------------------===//

#ifndef DAI_DOMAIN_ARRAY_SMASH_H
#define DAI_DOMAIN_ARRAY_SMASH_H

#include "domain/abstract_domain.h"
#include "lang/stmt.h"

#include <string>
#include <vector>

namespace dai {

namespace array_smash_detail {

inline std::string ghostLen(const std::string &Array) {
  return Array + "#len";
}
inline std::string ghostElem(const std::string &Array) {
  return Array + "#elem";
}

/// A variable that is never bound anywhere: reading it is ⊤ in every base
/// domain (absent-means-top), so assigning it to a ghost havocs the ghost.
inline ExprPtr unknownVar() { return Expr::mkVar("#unknown"); }

/// Rewrites array accesses into ghost-variable reads so the base domain
/// (which knows nothing about arrays) sees plain numeric expressions.
inline ExprPtr rewriteExpr(const ExprPtr &E) {
  if (!E)
    return E;
  switch (E->Kind) {
  case ExprKind::IntLit:
  case ExprKind::BoolLit:
  case ExprKind::NullLit:
  case ExprKind::Var:
    return E;
  case ExprKind::Unary:
    return Expr::mkUnary(E->UOp, rewriteExpr(E->Lhs));
  case ExprKind::Binary:
    return Expr::mkBinary(E->BOp, rewriteExpr(E->Lhs), rewriteExpr(E->Rhs));
  case ExprKind::ArrayLit: {
    std::vector<ExprPtr> Elems;
    Elems.reserve(E->Elems.size());
    for (const auto &Elem : E->Elems)
      Elems.push_back(rewriteExpr(Elem));
    return Expr::mkArray(std::move(Elems));
  }
  case ExprKind::Index:
    // a[i] reads the smashed summary cell; the index is irrelevant to the
    // value read (every element is the summary).
    if (E->Lhs && E->Lhs->Kind == ExprKind::Var)
      return Expr::mkVar(ghostElem(E->Lhs->Name));
    return unknownVar();
  case ExprKind::FieldRead:
    if (E->Name == "length") {
      if (E->Lhs && E->Lhs->Kind == ExprKind::Var)
        return Expr::mkVar(ghostLen(E->Lhs->Name));
      if (E->Lhs && E->Lhs->Kind == ExprKind::ArrayLit)
        return Expr::mkInt(static_cast<int64_t>(E->Lhs->Elems.size()));
      return unknownVar();
    }
    return Expr::mkField(rewriteExpr(E->Lhs), E->Name);
  }
  return E;
}

} // namespace array_smash_detail

/// The array-smashing functor domain over \p Base (satisfies
/// AbstractDomain). Registry keys: arr_interval, arr_zone, arr_dis_interval.
template <typename Base>
  requires AbstractDomain<Base>
struct ArraySmashDomain {
  using Elem = typename Base::Elem;

  static Elem bottom() { return Base::bottom(); }
  static Elem initialEntry(const std::vector<std::string> &Params) {
    // Ghosts of parameters are unbound (⊤) at an uncalled entry, matching
    // the base's treatment of the parameters themselves.
    return Base::initialEntry(Params);
  }
  static Elem join(const Elem &A, const Elem &B) { return Base::join(A, B); }
  static Elem widen(const Elem &P, const Elem &N) { return Base::widen(P, N); }
  static bool leq(const Elem &A, const Elem &B) { return Base::leq(A, B); }
  static bool equal(const Elem &A, const Elem &B) { return Base::equal(A, B); }
  static uint64_t hash(const Elem &A) { return Base::hash(A); }
  static std::string toString(const Elem &A) { return Base::toString(A); }
  static bool isBottom(const Elem &A) { return Base::isBottom(A); }

  static const char *name() {
    static const std::string N = std::string("arr_") + Base::name();
    return N.c_str();
  }

  static Elem transfer(const Stmt &S, const Elem &In) {
    namespace d = array_smash_detail;
    if (Base::isBottom(In))
      return In;
    switch (S.Kind) {
    case StmtKind::Skip:
    case StmtKind::Print:
    case StmtKind::FieldWrite:
      return Base::transfer(S, In);
    case StmtKind::Assume:
      return Base::transfer(Stmt::mkAssume(d::rewriteExpr(S.Rhs)), In);
    case StmtKind::Assert:
      return Base::transfer(Stmt::mkAssert(d::rewriteExpr(S.Rhs)), In);
    case StmtKind::Alloc:
      return havocGhosts(S.Lhs, Base::transfer(S, In));
    case StmtKind::Assign: {
      if (S.Rhs && S.Rhs->Kind == ExprKind::ArrayLit) {
        // A fresh array: the length is exact and the summary cell is a
        // strong update — the join over the element expressions.
        Elem Out = Base::transfer(
            Stmt::mkAssign(S.Lhs, d::rewriteExpr(S.Rhs)), In);
        Out = Base::transfer(
            Stmt::mkAssign(d::ghostLen(S.Lhs),
                           Expr::mkInt(static_cast<int64_t>(
                               S.Rhs->Elems.size()))),
            Out);
        if (S.Rhs->Elems.empty())
          return Base::transfer(
              Stmt::mkAssign(d::ghostElem(S.Lhs), d::unknownVar()), Out);
        Out = Base::transfer(
            Stmt::mkAssign(d::ghostElem(S.Lhs), d::rewriteExpr(S.Rhs->Elems[0])),
            Out);
        for (size_t I = 1, E = S.Rhs->Elems.size(); I != E; ++I)
          Out = Base::join(
              Base::transfer(Stmt::mkAssign(d::ghostElem(S.Lhs),
                                            d::rewriteExpr(S.Rhs->Elems[I])),
                             Out),
              Out);
        return Out;
      }
      if (S.Rhs && S.Rhs->Kind == ExprKind::Var) {
        // Array aliasing via copy: ghosts copy along with the variable
        // (scalar copies havoc the ghosts, since the source ghosts are ⊤).
        Elem Out = Base::transfer(S, In);
        Out = Base::transfer(
            Stmt::mkAssign(d::ghostLen(S.Lhs),
                           Expr::mkVar(d::ghostLen(S.Rhs->Name))),
            Out);
        return Base::transfer(
            Stmt::mkAssign(d::ghostElem(S.Lhs),
                           Expr::mkVar(d::ghostElem(S.Rhs->Name))),
            Out);
      }
      return havocGhosts(
          S.Lhs, Base::transfer(Stmt::mkAssign(S.Lhs, d::rewriteExpr(S.Rhs)),
                                In));
    }
    case StmtKind::ArrayWrite: {
      // Weak update: one summary cell stands for every element, so the
      // post-state must admit "this element was overwritten" AND "some
      // other element kept its old value".
      Elem Pre = Base::transfer(
          Stmt::mkArrayWrite(S.Lhs, d::rewriteExpr(S.Index),
                             d::rewriteExpr(S.Rhs)),
          In);
      Elem Written = Base::transfer(
          Stmt::mkAssign(d::ghostElem(S.Lhs), d::rewriteExpr(S.Rhs)), Pre);
      return Base::join(Written, Pre);
    }
    case StmtKind::Call: {
      std::vector<ExprPtr> Args;
      Args.reserve(S.Args.size());
      for (const auto &A : S.Args)
        Args.push_back(d::rewriteExpr(A));
      Elem Out = Base::transfer(
          Stmt::mkCall(S.Lhs, S.Callee, std::move(Args)), In);
      // Intraprocedural default: the result's ghosts are unknown. The
      // interprocedural engine replaces this path with enterCall/exitCall.
      return havocGhosts(S.Lhs, Out);
    }
    }
    return Base::transfer(S, In);
  }

  static Elem enterCall(const Elem &Caller, const Stmt &CallSite,
                        const std::vector<std::string> &CalleeParams) {
    namespace d = array_smash_detail;
    if (Base::isBottom(Caller))
      return Caller;
    // Extend the formal list with ghost formals and the actual list with
    // ghost actuals, so the base's own enterCall binds array metadata
    // across the call boundary (p#len := a#len, p#elem := a#elem).
    std::vector<std::string> Params;
    std::vector<ExprPtr> Args;
    Params.reserve(CalleeParams.size() * 3);
    Args.reserve(CalleeParams.size() * 3);
    for (size_t I = 0, E = CalleeParams.size(); I != E; ++I) {
      const ExprPtr *Arg =
          I < CallSite.Args.size() ? &CallSite.Args[I] : nullptr;
      Params.push_back(CalleeParams[I]);
      Args.push_back(Arg ? d::rewriteExpr(*Arg) : d::unknownVar());
      Params.push_back(d::ghostLen(CalleeParams[I]));
      Params.push_back(d::ghostElem(CalleeParams[I]));
      if (Arg && *Arg && (*Arg)->Kind == ExprKind::Var) {
        Args.push_back(Expr::mkVar(d::ghostLen((*Arg)->Name)));
        Args.push_back(Expr::mkVar(d::ghostElem((*Arg)->Name)));
      } else if (Arg && *Arg && (*Arg)->Kind == ExprKind::ArrayLit) {
        Args.push_back(
            Expr::mkInt(static_cast<int64_t>((*Arg)->Elems.size())));
        Args.push_back(d::unknownVar());
      } else {
        Args.push_back(d::unknownVar());
        Args.push_back(d::unknownVar());
      }
    }
    Stmt Extended =
        Stmt::mkCall(CallSite.Lhs, CallSite.Callee, std::move(Args));
    return Base::enterCall(Caller, Extended, Params);
  }

  static Elem exitCall(const Elem &Caller, const Elem &CalleeExit,
                       const Stmt &CallSite) {
    namespace d = array_smash_detail;
    if (Base::isBottom(Caller))
      return Caller;
    std::vector<ExprPtr> Args;
    Args.reserve(CallSite.Args.size());
    for (const auto &A : CallSite.Args)
      Args.push_back(d::rewriteExpr(A));
    Stmt Rewritten =
        Stmt::mkCall(CallSite.Lhs, CallSite.Callee, std::move(Args));
    Elem Out = Base::exitCall(Caller, CalleeExit, Rewritten);
    if (Base::isBottom(Out))
      return Out;
    // Arrays are passed by reference: the callee may have written elements
    // (summaries havoc) but can never change a length (no resize in the
    // language) — mirroring the interval domain's native exitCall.
    for (const auto &A : CallSite.Args)
      if (A && A->Kind == ExprKind::Var)
        Out = Base::transfer(
            Stmt::mkAssign(d::ghostElem(A->Name), d::unknownVar()), Out);
    // A returned array's metadata is not tracked through the summary.
    return havocGhosts(CallSite.Lhs, Out);
  }

private:
  static Elem havocGhosts(const std::string &Var, Elem In) {
    namespace d = array_smash_detail;
    if (Base::isBottom(In))
      return In;
    In = Base::transfer(Stmt::mkAssign(d::ghostLen(Var), d::unknownVar()),
                        std::move(In));
    return Base::transfer(Stmt::mkAssign(d::ghostElem(Var), d::unknownVar()),
                          std::move(In));
  }
};

} // namespace dai

#endif // DAI_DOMAIN_ARRAY_SMASH_H
