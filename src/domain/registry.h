//===-- domain/registry.h - Type-erased domain registry ---------*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime domain selection for the demanded-evaluation stack (clam's
/// `DomainRegistry` / `clam_abstract_domain` lineage). Three pieces:
///
///  - DomainVTable / DomainRegistry: one vtable per registered domain
///    (string key → erased operation table), built once at first use. Every
///    compile-time AbstractDomain policy is adapted by registry.cpp.
///
///  - AnyDomain: a stateless policy (satisfies AbstractDomain, so `Daig`,
///    `InterprocEngine`, and the checker instantiate against it like any
///    other domain) whose Elem is a type-erased value: a vtable pointer
///    plus a shared_ptr to the concrete immutable state. Operations on
///    same-domain values delegate 1:1 — with a bound default and no
///    per-function policy, an AnyDomain run is bit-identical (states,
///    hashes, memo hit patterns, counters, verdicts) to the direct
///    template instantiation; the erasure-transparency test pins this.
///
///  - FunctionDomainPolicy: per-function domain choice (function symbol →
///    domain key, with a cost-policy default), resolved at enterCall /
///    instance creation. Cross-domain boundaries convert through an
///    IntervalState "box" (each domain's sound convex projection), so a
///    zone caller can invoke a shape callee and back without UB.
///
/// Erasure contract (pinned by regression tests):
///  - equal() on values of different concrete domains is FALSE — even for
///    two bottoms — never UB. Convergence loops only ever compare values
///    produced by the same instance, so the type tag costs nothing.
///  - hash() mixes the registry key's hash into the concrete hash, so memo
///    keys are type-tagged (no cross-domain Q-Match confusion) while the
///    remap stays injective per domain (hit/miss patterns are preserved).
///  - join/widen convert the right operand into the LEFT operand's domain
///    via the box (over-approximating, hence sound); leq converts the left
///    operand into the RIGHT's (over(A) ⊑ B implies A ⊑ B).
///
//===----------------------------------------------------------------------===//

#ifndef DAI_DOMAIN_REGISTRY_H
#define DAI_DOMAIN_REGISTRY_H

#include "domain/abstract_domain.h"
#include "domain/interval.h"
#include "domain/symbol.h"
#include "lang/stmt.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace dai {

/// The erased operation table for one registered domain. Concrete states
/// are held behind shared_ptr<const void> (domain values are immutable once
/// built, so sharing is safe and copies are O(1)).
struct DomainVTable {
  using Ptr = std::shared_ptr<const void>;

  const char *Key;        ///< Registry key ("zone", "arr_interval", ...).
  const char *DomainName; ///< The adapted policy's D::name().
  uint64_t KeyHash;       ///< Mixed into AnyDomain::hash (type tag).

  Ptr (*MakeBottom)();
  Ptr (*MakeInitialEntry)(const std::vector<std::string> &Params);
  Ptr (*Transfer)(const Stmt &S, const Ptr &In);
  Ptr (*Join)(const Ptr &A, const Ptr &B);
  Ptr (*Widen)(const Ptr &Prev, const Ptr &Next);
  bool (*Leq)(const Ptr &A, const Ptr &B);
  bool (*Equal)(const Ptr &A, const Ptr &B);
  uint64_t (*Hash)(const Ptr &A);
  std::string (*ToString)(const Ptr &A);
  bool (*IsBottom)(const Ptr &A);
  Ptr (*EnterCall)(const Ptr &Caller, const Stmt &CallSite,
                   const std::vector<std::string> &CalleeParams);
  Ptr (*ExitCall)(const Ptr &Caller, const Ptr &CalleeExit,
                  const Stmt &CallSite);
  /// Sound convex projection into the interval "box" (the cross-domain
  /// interchange format); ⊥ maps to the ⊥ box.
  IntervalState (*ToBox)(const Ptr &A);
  /// Sound embedding of a box (⊒ the box's concretization); exact for the
  /// interval-shaped domains, assume-chain refinement for the rest.
  Ptr (*FromBox)(const IntervalState &Box);
};

/// String key → vtable. Built-in domains register in the constructor, so
/// enumeration is deterministic and no static-initialization-order games
/// are needed; instance() is cheap after first use.
class DomainRegistry {
public:
  static DomainRegistry &instance();

  /// nullptr if \p Key is not registered.
  const DomainVTable *find(const std::string &Key) const;

  /// All registered keys, sorted (the conformance harness enumerates this).
  std::vector<std::string> keys() const;

private:
  DomainRegistry();
  std::map<std::string, const DomainVTable *> Table;
};

/// A type-erased abstract value: the vtable of its concrete domain plus the
/// concrete state. Default-constructed values carry no vtable and behave as
/// ⊥ of the bound default domain (every AnyDomain operation normalizes
/// them before dispatch).
struct AnyVal {
  const DomainVTable *Ops = nullptr;
  DomainVTable::Ptr V;
};

/// Per-function domain choice: function symbol → vtable, plus a cost-policy
/// default for unmapped functions. Resolved by AnyDomain::enterCall and by
/// the interprocedural engine's instance creation (initialEntryFor).
class FunctionDomainPolicy {
public:
  /// Maps \p Fn to registered domain \p Key. Returns false (and changes
  /// nothing) if the key is unknown.
  bool set(const std::string &Fn, const std::string &Key);
  /// The default for functions not in the map; unset falls through to the
  /// process-wide bound default.
  bool setDefault(const std::string &Key);

  /// The vtable for \p Fn under this policy, or \p Fallback when neither a
  /// mapping nor a policy default applies.
  const DomainVTable *resolve(SymbolId Fn, const DomainVTable *Fallback) const;

private:
  std::map<SymbolId, const DomainVTable *> PerFn;
  const DomainVTable *Default = nullptr;
};

/// Installs \p P as the process-global policy consulted by AnyDomain
/// (nullptr uninstalls). The caller keeps ownership; install before the
/// engine runs — the policy is read concurrently by parallel workers.
void installFunctionDomainPolicy(const FunctionDomainPolicy *P);
const FunctionDomainPolicy *installedFunctionDomainPolicy();

/// RAII policy installation for tests and benches.
class FunctionDomainPolicyScope {
public:
  explicit FunctionDomainPolicyScope(const FunctionDomainPolicy *P)
      : Saved(installedFunctionDomainPolicy()) {
    installFunctionDomainPolicy(P);
  }
  ~FunctionDomainPolicyScope() { installFunctionDomainPolicy(Saved); }
  FunctionDomainPolicyScope(const FunctionDomainPolicyScope &) = delete;
  FunctionDomainPolicyScope &operator=(const FunctionDomainPolicyScope &) =
      delete;

private:
  const FunctionDomainPolicy *Saved;
};

/// The runtime-selectable domain policy (satisfies AbstractDomain). All
/// values materialized by bottom()/initialEntry() are typed with the bound
/// default domain ("interval" until bindDefault is called); per-function
/// typing comes from the installed FunctionDomainPolicy at call boundaries.
struct AnyDomain {
  using Elem = AnyVal;

  static Elem bottom();
  static Elem initialEntry(const std::vector<std::string> &Params);
  /// Policy-aware entry seed: the interprocedural engine prefers this
  /// overload at instance creation, so per-function domain choice applies
  /// to root/seeded instances too, not only to demanded callees.
  static Elem initialEntryFor(SymbolId Fn,
                              const std::vector<std::string> &Params);
  static Elem transfer(const Stmt &S, const Elem &In);
  static Elem join(const Elem &A, const Elem &B);
  static Elem widen(const Elem &Prev, const Elem &Next);
  static bool leq(const Elem &A, const Elem &B);
  static bool equal(const Elem &A, const Elem &B);
  static uint64_t hash(const Elem &A);
  static std::string toString(const Elem &A);
  /// The bound default's registry key (what bench rows report).
  static const char *name();
  static bool isBottom(const Elem &A);

  static Elem enterCall(const Elem &Caller, const Stmt &CallSite,
                        const std::vector<std::string> &CalleeParams);
  static Elem exitCall(const Elem &Caller, const Elem &CalleeExit,
                       const Stmt &CallSite);

  /// Binds the process-wide default domain (false if \p Key is unknown).
  /// Bind before analysis threads start; parallel workers only read it.
  static bool bindDefault(const std::string &Key);
  static const DomainVTable *boundDefault();

  /// Wraps a concrete state of registered domain \p Key (test helper;
  /// nullptr vtable — i.e. unknown key — is the caller's bug).
  static Elem wrap(const DomainVTable *VT, DomainVTable::Ptr V) {
    return {VT, std::move(V)};
  }
};

static_assert(true); // AnyDomain's AbstractDomain conformance is asserted in
                     // registry.cpp, after the policy is complete.

/// RAII default-domain binding for tests and benches.
class AnyDomainDefaultScope {
public:
  explicit AnyDomainDefaultScope(const std::string &Key)
      : Saved(AnyDomain::boundDefault()) {
    Ok = AnyDomain::bindDefault(Key);
  }
  ~AnyDomainDefaultScope() {
    if (Saved)
      AnyDomain::bindDefault(Saved->Key);
  }
  bool ok() const { return Ok; }
  AnyDomainDefaultScope(const AnyDomainDefaultScope &) = delete;
  AnyDomainDefaultScope &operator=(const AnyDomainDefaultScope &) = delete;

private:
  const DomainVTable *Saved;
  bool Ok = false;
};

} // namespace dai

#endif // DAI_DOMAIN_REGISTRY_H
