//===-- interproc/context.h - Context-sensitivity policies ------*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// k-call-string context sensitivity (Sharir–Pnueli call strings, as used by
/// the paper's implementation: functors for context-insensitivity and 1-/2-
/// call-site sensitivity, Section 7.1). A context is the suffix of the call
/// stack truncated to the most recent k call sites; call sites are
/// identified by the interned SymbolId of the calling function plus the hash
/// of the call statement within it (two textually identical call statements
/// in one function share a context, a sound merge). Interning makes context
/// comparison — performed on every engine-map probe — a pure integer
/// compare; spellings are recovered from the symbol table only for display.
///
//===----------------------------------------------------------------------===//

#ifndef DAI_INTERPROC_CONTEXT_H
#define DAI_INTERPROC_CONTEXT_H

#include "domain/symbol.h"

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace dai {

/// A call-site identifier within a known function.
struct CallSite {
  SymbolId Caller = kNoSymbol;
  uint64_t StmtHash = 0;

  bool operator==(const CallSite &O) const {
    return Caller == O.Caller && StmtHash == O.StmtHash;
  }
  bool operator<(const CallSite &O) const {
    if (Caller != O.Caller)
      return Caller < O.Caller;
    return StmtHash < O.StmtHash;
  }
};

/// A k-truncated call string (most recent call site last).
struct Context {
  std::vector<CallSite> Sites;

  bool operator==(const Context &O) const { return Sites == O.Sites; }
  bool operator<(const Context &O) const { return Sites < O.Sites; }

  /// Extends this context with \p Site, truncated to depth \p K.
  Context extend(const CallSite &Site, unsigned K) const {
    Context Out;
    if (K == 0)
      return Out; // context-insensitive: a single shared context
    Out.Sites = Sites;
    Out.Sites.push_back(Site);
    if (Out.Sites.size() > K)
      Out.Sites.erase(Out.Sites.begin(),
                      Out.Sites.end() - static_cast<ptrdiff_t>(K));
    return Out;
  }

  std::string toString() const {
    if (Sites.empty())
      return "[]";
    std::ostringstream OS;
    OS << "[";
    for (size_t I = 0; I < Sites.size(); ++I) {
      if (I)
        OS << ", ";
      OS << symbolName(Sites[I].Caller) << "#" << std::hex
         << (Sites[I].StmtHash & 0xffff);
    }
    OS << "]";
    return OS.str();
  }
};

} // namespace dai

#endif // DAI_INTERPROC_CONTEXT_H
