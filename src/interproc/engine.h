//===-- interproc/engine.h - Demanded interprocedural analysis --*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The demanded interprocedural engine of Section 7.1 (and Section 2.3,
/// "Interprocedural Demand"): per-(function, context) DAIGs constructed on
/// demand, parameterized by a k-call-string context policy (k ∈ {0, 1, 2}).
///
/// When query evaluation inside a caller's DAIG reaches a call statement
/// `x = f(ys)`, the engine's transfer hook
///   1. projects the caller state into a callee entry contribution
///      (D::enterCall), recording it keyed by (caller instance, call site);
///   2. sets the callee instance's entry to the join of all current
///      contributions (constructing the callee DAIG on demand);
///   3. demands the callee's exit cell (its summary); and
///   4. combines it into the caller's post-state (D::exitCall).
///
/// Incremental edits propagate across DAIGs: when an instance's exit cell is
/// dirtied, every caller that consumed its summary has the corresponding
/// call-edge outputs dirtied, cascading up the (acyclic) call graph; edited
/// instances also drop their outgoing entry contributions so callee entries
/// never serve stale values (a conservative, function-boundary-granular
/// variant of the paper's cross-DAIG dependencies; reuse *within* each DAIG
/// remains fine-grained, and the shared memo table recovers most of the
/// dropped work).
///
/// Parallel execution (setParallelism): (function, context) instances are
/// independent except at summary boundaries, so analyzeAllFromMain can run
/// the not-yet-quiesced instances of each pass concurrently on a
/// work-stealing TaskPool. Each parallel pass is Jacobi-style: workers
/// analyze against a FROZEN snapshot of callee exit summaries and buffer
/// the entry contributions they discover per instance; the main thread then
/// merges buffers in deterministic (instance-key, discovery) order,
/// broadcasts changed exits through the usual dirty-exit path, and repeats
/// until quiescent. During a pass no shared engine state is written — the
/// transfer hook reads the snapshot and appends to its own instance's
/// buffer — so instances need no locks, and pass content is independent of
/// thread schedule (the shared memo table is bypassed for the pass's
/// duration for the same reason). See docs/architecture.md, "Parallel
/// execution model".
///
//===----------------------------------------------------------------------===//

#ifndef DAI_INTERPROC_ENGINE_H
#define DAI_INTERPROC_ENGINE_H

#include "daig/daig.h"
#include "interproc/call_graph.h"
#include "interproc/context.h"
#include "support/task_pool.h"

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace dai {

/// Interprocedural demanded abstract interpretation over domain \p D.
template <typename D>
  requires AbstractDomain<D>
class InterprocEngine {
public:
  using Elem = typename D::Elem;

  /// Identifies one analyzed (function, context) instance. The function is
  /// an interned SymbolId (domain/symbol.h) and the context holds interned
  /// call sites, so the per-context instance/consumer tables below compare
  /// keys with integer compares only — no string traffic on engine-map
  /// probes.
  struct InstanceKey {
    SymbolId Fn = kNoSymbol;
    Context Ctx;

    InstanceKey() = default;
    InstanceKey(SymbolId Fn, Context Ctx) : Fn(Fn), Ctx(std::move(Ctx)) {}
    InstanceKey(std::string_view FnName, Context Ctx)
        : Fn(internSymbol(FnName)), Ctx(std::move(Ctx)) {}

    bool operator==(const InstanceKey &O) const {
      return Fn == O.Fn && Ctx == O.Ctx;
    }
    bool operator<(const InstanceKey &O) const {
      if (Fn != O.Fn)
        return Fn < O.Fn;
      return Ctx < O.Ctx;
    }
    std::string toString() const { return symbolName(Fn) + Ctx.toString(); }
  };

  /// \p K is the call-string depth (0 = context-insensitive).
  InterprocEngine(Program Prog, std::string MainName, unsigned K = 0)
      : Prog(std::move(Prog)), MainName(std::move(MainName)),
        MainId(internSymbol(this->MainName)), K(K) {
    Memo.attachStatistics(&Stats);
    CG = buildCallGraph(this->Prog);
    if (CG.valid() && !this->Prog.find(this->MainName))
      CG.Error = "no function named '" + this->MainName + "'";
  }

  bool valid() const { return CG.valid(); }
  const std::string &error() const { return CG.Error; }
  Program &program() { return Prog; }
  Statistics &statistics() { return Stats; }
  MemoTable<D> &memoTable() { return Memo; }

  /// Sets the number of threads analyzeAllFromMain may use (0 = hardware
  /// concurrency). At 1 (the default) every path is the serial engine,
  /// bit-identical counters included. At N ≥ 2 batch analysis runs
  /// pass-parallel (see the file header); query answers are identical to
  /// serial whenever entry widening does not fire mid-quiescence, and the
  /// parallel-vs-serial equivalence suite plus the bench cross-checks
  /// assert answer/verdict equality empirically. Budgeted analyses
  /// (budgetActive()) always take the serial path: budget state is
  /// thread_local and degradation order is part of the audit contract.
  void setParallelism(unsigned N) {
    Threads = N == 0 ? TaskPool::hardwareParallelism() : N;
    if (Threads <= 1)
      Pool.reset();
  }
  unsigned parallelism() const { return Threads; }

  /// Demands the abstract state at \p L in the root (main) instance.
  ///
  /// Queries iterate to quiescence: a pass may grow a callee's entry (a new
  /// call site contributing), which invalidates consumers of its summary;
  /// passes repeat until no summary is invalidated. Entry growth is widened,
  /// so the pass count is finite even in infinite-height domains.
  Elem queryMain(Loc L) {
    budgetState().TaintPending = false; // top-level query: fresh frame
    Instance &Root = instanceFor(rootKey(), /*Seed=*/true);
    uint64_t Passes = 0;
    for (;;) {
      TraceSpan Sp("interproc.quiescence_pass", Passes);
      Elem V = Root.G->queryLocation(L);
      if (!drainDirtyExits())
        return V;
      budgetCheckpoint("interprocedural quiescence pass");
      if (++Passes >= analysisLimits().MaxQuiescencePasses)
        throw AnalysisDivergence("interprocedural quiescence (queryMain)",
                                 Passes);
    }
  }

  /// Demands the exit summary of instance \p Key (⊥ if never called).
  Elem querySummary(const InstanceKey &Key) {
    budgetState().TaintPending = false; // top-level query: fresh frame
    Instance &I = instanceFor(Key, Key == rootKey());
    uint64_t Passes = 0;
    for (;;) {
      TraceSpan Sp("interproc.quiescence_pass", Passes);
      Elem V = I.G->queryLocation(cfgOf(Key.Fn)->exit());
      if (!drainDirtyExits())
        return V;
      budgetCheckpoint("interprocedural quiescence pass");
      if (++Passes >= analysisLimits().MaxQuiescencePasses)
        throw AnalysisDivergence("interprocedural quiescence (querySummary)",
                                 Passes);
    }
  }

  /// Demands every location of every instance reachable from main. Returns
  /// the number of instances analyzed.
  size_t analyzeAllFromMain() {
    if (Threads > 1 && !budgetActive())
      return analyzeAllFromMainParallel();
    budgetState().TaintPending = false; // top-level query: fresh frame
    Instance &Root = instanceFor(rootKey(), /*Seed=*/true);
    Root.G->queryAllLocations();
    // Demanding main may create callee instances, whose full analysis may
    // create more; iterate to a fixed point over the instance set.
    size_t Analyzed = 1;
    uint64_t Passes = 0;
    bool Progress = true;
    while (Progress) {
      TraceSpan Sp("interproc.quiescence_pass", Passes);
      budgetCheckpoint("interprocedural analyze-all pass");
      if (++Passes >= analysisLimits().MaxQuiescencePasses)
        throw AnalysisDivergence(
            "interprocedural quiescence (analyzeAllFromMain)", Passes);
      Progress = false;
      std::vector<InstanceKey> Keys;
      Keys.reserve(Instances.size());
      for (const auto &[Key, Inst] : Instances)
        Keys.push_back(Key);
      for (const auto &Key : Keys) {
        Instance &I = *Instances.at(Key);
        if (I.FullyQueried)
          continue;
        I.FullyQueried = true;
        I.G->queryAllLocations();
        ++Analyzed;
        Progress = true;
      }
      if (drainDirtyExits())
        Progress = true;
    }
    return Instances.size();
  }

  /// In-place statement replacement in every instance of \p Fn. If the old
  /// statement was a call, its call-site contributions are dropped (the site
  /// key changes with the statement); other contributions persist and are
  /// re-validated by subsequent queries (entries only grow between explicit
  /// re-seeds, a sound monotone approximation).
  bool applyStatementEdit(const std::string &Fn, EdgeId Id, Stmt NewStmt) {
    Function *F = Prog.find(Fn);
    if (!F || !F->Body.findEdge(Id))
      return false;
    SymbolId FnId = internSymbol(Fn);
    Stmt OldStmt = F->Body.findEdge(Id)->Label;
    bool StructureRelevant =
        NewStmt.Kind == StmtKind::Call || OldStmt.Kind == StmtKind::Call;
    for (auto &[Key, Inst] : Instances) {
      if (Key.Fn != FnId)
        continue;
      Inst->G->applyStatementEdit(Id, NewStmt);
      Inst->FullyQueried = false;
    }
    if (Instances.empty() || !anyInstanceOf(FnId))
      F->Body.replaceStmt(Id, NewStmt); // no instance carried the CFG update
    if (StructureRelevant)
      CG = buildCallGraph(Prog); // the call graph may have changed
    if (OldStmt.Kind == StmtKind::Call)
      dropContributionsForSite(FnId, OldStmt.hash());
    drainDirtyExits();
    return true;
  }

  /// Surgical statement insertion in every instance of \p Fn: the caller
  /// has already spliced the CFG via cfg/edits.h insertStmtAt(At, ·), whose
  /// result is \p Splice.
  void applyInsertedStatementEdit(const std::string &Fn, Loc At,
                                  const InsertResult &Splice) {
    const Function *F = Prog.find(Fn);
    assert(F && "edit in unknown function");
    if (F->Body.findEdge(Splice.FirstNewEdge)->Label.Kind == StmtKind::Call)
      CG = buildCallGraph(Prog);
    SymbolId FnId = internSymbol(Fn);
    for (auto &[Key, Inst] : Instances) {
      if (Key.Fn != FnId)
        continue;
      Inst->G->applyInsertedStatement(At, Splice);
      Inst->FullyQueried = false;
    }
    drainDirtyExits();
  }

  /// Rebuilds every instance of \p Fn after the caller mutated its CFG
  /// structurally (via program().find(Fn)->Body and cfg/edits.h).
  void applyStructuralEdit(const std::string &Fn) {
    CG = buildCallGraph(Prog);
    SymbolId FnId = internSymbol(Fn);
    for (auto &[Key, Inst] : Instances) {
      if (Key.Fn != FnId)
        continue;
      Inst->G->rebuild();
      Inst->FullyQueried = false;
    }
    drainDirtyExits();
  }

  /// Drops every entry contribution and re-seeds callee entries from ⊥,
  /// restoring full precision after long edit sequences (entries otherwise
  /// only grow). Subsequent queries recompute contributions on demand.
  void reseedAllEntries() {
    for (auto &[Key, Inst] : Instances) {
      if (Key == rootKey())
        continue;
      Inst->Contributions.clear();
      refreshEntry(Key, *Inst, /*AllowShrink=*/true);
    }
    drainDirtyExits();
  }

  /// Discards every instance (all DAIG cells and contributions) while
  /// keeping the program and the auxiliary memo table — the
  /// demand-driven-only configuration's "dirty the full DAIG after each
  /// edit" (Section 7.3).
  void resetAllInstances() {
    Instances.clear();
    SummaryConsumers.clear();
    PendingDirtyExits.clear();
    SnapshotExits.clear();
    LastBroadcastExit.clear();
  }

  /// Invokes \p Fn(key, daig) for every constructed instance.
  template <typename Callback> void forEachInstance(Callback &&Fn) {
    for (auto &[Key, Inst] : Instances)
      Fn(Key, *Inst->G);
  }

  size_t instanceCount() const { return Instances.size(); }

  InstanceKey rootKey() const { return InstanceKey{MainId, Context{}}; }

  //===--------------------------------------------------------------------===//
  // Degraded provenance and self-audit (support/budget.h)
  //===--------------------------------------------------------------------===//

  /// True when the answer queryMain(\p L) returns carries budget-degraded
  /// provenance. Degradation inside callees surfaces here too: the taint
  /// frames are thread-local, so a caller cell consuming a degraded callee
  /// summary is itself marked in the root DAIG.
  bool mainLocationDegraded(Loc L) const {
    auto It = Instances.find(rootKey());
    return It != Instances.end() && It->second->G->locationDegraded(L);
  }

  /// Total degraded-cell marks across all instances.
  size_t degradedCellCount() const {
    size_t N = 0;
    for (const auto &[Key, Inst] : Instances)
      N += Inst->G->degradedCellCount();
    return N;
  }

  /// Empties every degraded cell in every instance and re-seeds callee
  /// entries from scratch (budget-tightened widening coarsens entries, so
  /// dropping contributions is the only way back to full precision).
  /// Re-demanding afterwards, outside the exhausted budget, reproduces the
  /// unbudgeted analysis. Returns the number of marks cleared.
  size_t invalidateDegraded() {
    size_t N = 0;
    for (auto &[Key, Inst] : Instances)
      N += Inst->G->invalidateDegraded();
    if (N)
      reseedAllEntries();
    drainDirtyExits();
    return N;
  }

  /// Structural self-audit: per-instance Daig::auditInvariants plus the
  /// cross-DAIG index invariants (no dangling contributions or consumer
  /// edges) and entry monotonicity (every callee entry covers the join of
  /// its recorded contributions — resolveCall's record-then-refresh pairing
  /// is exception-guarded to keep this true across mid-analysis faults).
  /// Returns "" when clean.
  std::string auditInvariants() const {
    for (const auto &[Key, Inst] : Instances) {
      std::string S = Inst->G->auditInvariants();
      if (!S.empty())
        return Key.toString() + ": " + S;
    }
    for (const auto &[Key, Inst] : Instances)
      for (const auto &[Site, Contribution] : Inst->Contributions)
        if (!Instances.count(Site.first))
          return "dangling contribution into " + Key.toString() +
                 " from " + Site.first.toString();
    for (const auto &[Callee, Consumers] : SummaryConsumers) {
      if (!Instances.count(Callee))
        return "summary consumers recorded for missing instance " +
               Callee.toString();
      for (const InstanceKey &Caller : Consumers)
        if (!Instances.count(Caller))
          return "missing summary consumer " + Caller.toString() + " of " +
                 Callee.toString();
    }
    for (const InstanceKey &Key : PendingDirtyExits)
      if (!Instances.count(Key))
        return "pending dirty exit for missing instance " + Key.toString();
    for (const auto &[Key, Inst] : Instances) {
      if (Inst->Contributions.empty())
        continue;
      Elem Joined = D::bottom();
      for (const auto &[Site, Contribution] : Inst->Contributions)
        Joined = D::join(Joined, Contribution);
      if (!D::leq(Joined, Inst->G->entryValue()))
        return "entry of " + Key.toString() +
               " does not cover its contributions";
    }
    return "";
  }

  const Cfg *cfgOf(const std::string &Fn) const {
    const Function *F = Prog.find(Fn);
    assert(F && "unknown function");
    return &F->Body;
  }
  const Cfg *cfgOf(SymbolId Fn) const { return cfgOf(symbolName(Fn)); }

private:
  Program Prog;
  std::string MainName;
  SymbolId MainId; ///< Interned MainName: rootKey() without a table probe.
  unsigned K;
  CallGraph CG;
  Statistics Stats;
  MemoTable<D> Memo{};

  struct Instance {
    std::unique_ptr<Daig<D>> G;
    /// Entry contributions: (caller instance, call-site hash) → entry state.
    std::map<std::pair<InstanceKey, uint64_t>, Elem> Contributions;
    bool Seeded = false;       ///< True for the root or once contributed-to.
    bool FullyQueried = false; ///< analyzeAllFromMain bookkeeping.
    unsigned EntryGrowths = 0; ///< Widening-delay counter for entry updates.

    /// One call-site evaluation buffered during a parallel pass; applied
    /// (record + refreshEntry, in discovery order) at the merge barrier.
    struct PendingCall {
      InstanceKey Callee;
      uint64_t SiteHash;
      Elem Contribution;
    };
    /// Parallel-pass scratch, owned exclusively by the one worker
    /// analyzing this instance during a pass (instances never share a
    /// worker mid-task), merged and cleared on the main thread after the
    /// pass barrier.
    std::vector<PendingCall> ParallelCalls;
    Statistics ParallelStats; ///< Per-pass private sink (no shared Stats).
  };
  std::map<InstanceKey, std::unique_ptr<Instance>> Instances;

  /// Summary-consumption edges for cross-DAIG dirtying: callee instance →
  /// caller instances that demanded its exit.
  std::map<InstanceKey, std::set<InstanceKey>> SummaryConsumers;

  /// Exit cells dirtied during an edit, processed by drainDirtyExits.
  std::vector<InstanceKey> PendingDirtyExits;
  bool InDirtyDrain = false;

  //===--------------------------------------------------------------------===//
  // Parallel execution mode (setParallelism; see the file header)
  //===--------------------------------------------------------------------===//

  unsigned Threads = 1;
  std::unique_ptr<TaskPool> Pool;
  /// True exactly while a parallel pass's workers run; flips the transfer
  /// hook to the snapshot-reading, buffer-appending resolveCallParallel.
  std::atomic<bool> InParallelPhase{false};
  /// The frozen callee-summary view served to every worker of the current
  /// pass: a copy of LastBroadcastExit taken at the pass start.
  std::map<InstanceKey, Elem> SnapshotExits;
  /// The last exit value each instance BROADCAST (i.e. the newest value any
  /// parallel consumer can have read). A recomputed exit is compared to
  /// this — not to the currently materialized cell — before invalidating
  /// consumers: an instance whose exit was dirtied and then recomputed to
  /// the same value must NOT re-invalidate (convergence), while a consumer
  /// that read the stale broadcast of a since-changed exit MUST be
  /// invalidated even if the cell was momentarily unmaterialized.
  std::map<InstanceKey, Elem> LastBroadcastExit;

  /// Pass-parallel analyzeAllFromMain: per pass, analyze every
  /// not-yet-quiesced instance concurrently against the frozen summary
  /// snapshot, then merge deterministically and broadcast changed exits.
  size_t analyzeAllFromMainParallel() {
    budgetState().TaintPending = false; // top-level query: fresh frame
    instanceFor(rootKey(), /*Seed=*/true);
    if (!Pool || Pool->parallelism() != Threads)
      Pool = std::make_unique<TaskPool>(Threads);
    uint64_t Passes = 0;
    for (;;) {
      if (++Passes >= analysisLimits().MaxQuiescencePasses)
        throw AnalysisDivergence(
            "interprocedural quiescence (analyzeAllFromMain parallel)",
            Passes);
      // Deterministic worklist: Instances is key-sorted.
      std::vector<InstanceKey> Work;
      for (const auto &[Key, Inst] : Instances)
        if (!Inst->FullyQueried)
          Work.push_back(Key);
      if (Work.empty()) {
        if (!drainDirtyExits())
          break;
        continue;
      }
      runParallelPass(Work);
      mergeParallelPass(Work);
    }
    SnapshotExits.clear();
    return Instances.size();
  }

  /// The worker half of one pass: freeze the snapshot, point each instance
  /// at a private Statistics sink, and run one task per instance on the
  /// pool. No shared engine state is mutated until the barrier returns.
  void runParallelPass(const std::vector<InstanceKey> &Work) {
    TraceSpan Sp("interproc.parallel_pass", Work.size(), Threads);
    SnapshotExits = LastBroadcastExit;
    std::vector<TaskPool::Task> Tasks;
    Tasks.reserve(Work.size());
    for (const InstanceKey &Key : Work) {
      Instance *I = Instances.at(Key).get();
      I->FullyQueried = true;
      I->ParallelCalls.clear();
      I->ParallelStats.reset();
      I->G->setStatistics(&I->ParallelStats);
      Tasks.push_back([I] { I->G->queryAllLocations(); });
    }
    // Bypass (not lock) the shared memo for the pass: a locked shared LRU
    // would make hit/miss — and hence which evaluations are skipped —
    // depend on thread schedule; bypassing keeps the pass deterministic.
    Memo.setBypassed(true);
    InParallelPhase.store(true, std::memory_order_release);
    try {
      Pool->run(std::move(Tasks));
    } catch (...) {
      // A task threw (fault injection on the calling thread is the only
      // expected source — budgets force the serial path). Every task still
      // ran once; discard the pass's buffers so no partial merge can break
      // the entry-covers-contributions audit, and leave the worklist
      // instances re-analyzable.
      InParallelPhase.store(false, std::memory_order_release);
      Memo.setBypassed(false);
      for (const InstanceKey &Key : Work) {
        Instance &I = *Instances.at(Key);
        I.G->setStatistics(&Stats);
        Stats.mergeFrom(I.ParallelStats);
        I.ParallelStats.reset();
        I.ParallelCalls.clear();
        I.FullyQueried = false;
      }
      throw;
    }
    InParallelPhase.store(false, std::memory_order_release);
    Memo.setBypassed(false);
  }

  /// The barrier half: fold per-instance sinks into the engine Statistics,
  /// apply buffered contributions (both in deterministic order), and
  /// broadcast exits that changed since their last broadcast.
  void mergeParallelPass(const std::vector<InstanceKey> &Work) {
    TraceSpan Sp("interproc.parallel_merge", Work.size());
    for (const InstanceKey &Key : Work) {
      Instance &I = *Instances.at(Key);
      I.G->setStatistics(&Stats);
      Stats.mergeFrom(I.ParallelStats);
      I.ParallelStats.reset();
    }
    for (const InstanceKey &Key : Work) {
      Instance &CallerInst = *Instances.at(Key);
      for (auto &PC : CallerInst.ParallelCalls) {
        // Replays the serial resolveCall bookkeeping, one buffered call at
        // a time: record the contribution, grow the callee entry, register
        // the consumer edge.
        Instance &CalleeInst = instanceFor(PC.Callee, /*Seed=*/false);
        auto SiteKey = std::make_pair(Key, PC.SiteHash);
        auto CIt = CalleeInst.Contributions.find(SiteKey);
        bool Changed = CIt == CalleeInst.Contributions.end() ||
                       !D::equal(CIt->second, PC.Contribution);
        if (Changed) {
          // Same exception guard as resolveCall: never leave a recorded
          // contribution the entry does not cover.
          bool HadOld = CIt != CalleeInst.Contributions.end();
          Elem Old = HadOld ? CIt->second : D::bottom();
          CalleeInst.Contributions[SiteKey] = std::move(PC.Contribution);
          try {
            refreshEntry(PC.Callee, CalleeInst, /*AllowShrink=*/false);
          } catch (...) {
            if (HadOld)
              CalleeInst.Contributions[SiteKey] = std::move(Old);
            else
              CalleeInst.Contributions.erase(SiteKey);
            throw;
          }
        }
        SummaryConsumers[PC.Callee].insert(Key);
      }
      CallerInst.ParallelCalls.clear();
    }
    // Broadcast: any materialized exit that differs from its last
    // broadcast invalidates its consumers through the normal dirty-exit
    // path. Exits left unmaterialized (dirtied by an entry refresh above)
    // broadcast after their owner re-quiesces in a later pass.
    for (auto &[Key, Inst] : Instances) {
      std::optional<Elem> V = Inst->G->peekLocation(cfgOf(Key.Fn)->exit());
      if (!V)
        continue;
      auto LIt = LastBroadcastExit.find(Key);
      if (LIt != LastBroadcastExit.end() && D::equal(LIt->second, *V))
        continue;
      if (LIt != LastBroadcastExit.end())
        LIt->second = std::move(*V);
      else
        LastBroadcastExit.emplace(Key, std::move(*V));
      PendingDirtyExits.push_back(Key);
    }
    drainDirtyExits();
  }

  /// The transfer hook while InParallelPhase: reads the frozen snapshot
  /// and appends to the caller instance's private buffer — no shared maps
  /// are touched, no instances created, nothing demanded across DAIGs.
  Elem resolveCallParallel(const InstanceKey &Caller, const Stmt &S,
                           const Elem &In) {
    Instance &CallerInst = *Instances.at(Caller); // read-only map probe
    Statistics &WS = CallerInst.ParallelStats;
    if (WS.CallSummaries != UINT64_MAX)
      ++WS.CallSummaries;
    if (D::isBottom(In))
      return D::bottom();
    const Function *Callee = Prog.find(S.Callee);
    if (!Callee) // undefined callee: havoc via the domain's default
      return D::transfer(S, In);
    InstanceKey CalleeKey{internSymbol(S.Callee),
                          Caller.Ctx.extend(CallSite{Caller.Fn, S.hash()}, K)};
    CallerInst.ParallelCalls.push_back(
        {CalleeKey, S.hash(), D::enterCall(In, S, Callee->Params)});
    auto It = SnapshotExits.find(CalleeKey);
    Elem Summary = It != SnapshotExits.end() ? It->second : D::bottom();
    return D::exitCall(In, Summary, S);
  }

  /// The entry seed for a (function, context) instance. Domains that
  /// support per-function selection (the registry's AnyDomain with an
  /// installed FunctionDomainPolicy) expose initialEntryFor, so the policy
  /// applies at instance creation — root/seeded instances included, not
  /// only demanded callees routed through enterCall.
  Elem initialEntryOf(const InstanceKey &Key, const Function &F) {
    if constexpr (requires { D::initialEntryFor(Key.Fn, F.Params); })
      return D::initialEntryFor(Key.Fn, F.Params);
    else
      return D::initialEntry(F.Params);
  }

  Instance &instanceFor(const InstanceKey &Key, bool Seed) {
    auto It = Instances.find(Key);
    if (It == Instances.end()) {
      Function *F = Prog.find(symbolName(Key.Fn));
      assert(F && "instance for unknown function");
      auto Inst = std::make_unique<Instance>();
      Elem Entry =
          Seed ? initialEntryOf(Key, *F) : D::bottom(); // unseeded: no calls
      Inst->G = std::make_unique<Daig<D>>(&F->Body, std::move(Entry), &Stats,
                                          &Memo);
      Inst->Seeded = Seed;
      InstanceKey KeyCopy = Key;
      Inst->G->setTransferHook([this, KeyCopy](const Stmt &S, const Elem &In) {
        return resolveCall(KeyCopy, S, In);
      });
      Inst->G->setOnCellEmptied(
          [this, KeyCopy](Name N) { onCellEmptied(KeyCopy, N); });
      It = Instances.emplace(Key, std::move(Inst)).first;
    } else if (Seed && !It->second->Seeded) {
      It->second->Seeded = true;
      Function *F = Prog.find(symbolName(Key.Fn));
      It->second->G->updateEntry(initialEntryOf(Key, *F));
    }
    return *It->second;
  }

  /// The transfer hook: demanded callee summaries (Section 2.3).
  Elem resolveCall(const InstanceKey &Caller, const Stmt &S, const Elem &In) {
    if (InParallelPhase.load(std::memory_order_relaxed))
      return resolveCallParallel(Caller, S, In);
    if (Stats.CallSummaries != UINT64_MAX)
      ++Stats.CallSummaries;
    if (D::isBottom(In))
      return D::bottom();
    Function *Callee = Prog.find(S.Callee);
    if (!Callee) // undefined callee: havoc via the domain's default
      return D::transfer(S, In);
    InstanceKey CalleeKey{internSymbol(S.Callee),
                          Caller.Ctx.extend(CallSite{Caller.Fn, S.hash()}, K)};
    Instance &CalleeInst = instanceFor(CalleeKey, /*Seed=*/false);

    // Record/update this call site's entry contribution.
    Elem Contribution = D::enterCall(In, S, Callee->Params);
    auto SiteKey = std::make_pair(Caller, S.hash());
    auto CIt = CalleeInst.Contributions.find(SiteKey);
    bool ContributionChanged =
        CIt == CalleeInst.Contributions.end() ||
        !D::equal(CIt->second, Contribution);
    if (ContributionChanged) {
      // Exception guard: a fault/cancel inside refreshEntry's domain ops
      // must not leave a recorded contribution the entry does not cover
      // (the auditInvariants monotonicity check).
      bool HadOld = CIt != CalleeInst.Contributions.end();
      Elem Old = HadOld ? CIt->second : D::bottom();
      CalleeInst.Contributions[SiteKey] = Contribution;
      try {
        refreshEntry(CalleeKey, CalleeInst, /*AllowShrink=*/false);
      } catch (...) {
        if (HadOld)
          CalleeInst.Contributions[SiteKey] = std::move(Old);
        else
          CalleeInst.Contributions.erase(SiteKey);
        throw;
      }
    }

    SummaryConsumers[CalleeKey].insert(Caller);
    Elem Summary =
        CalleeInst.G->queryLocation(Prog.find(S.Callee)->Body.exit());
    return D::exitCall(In, Summary, S);
  }

  /// Entry := join of all contributions (⊥ when none). When \p AllowShrink
  /// is false (query-time updates) the entry is only ever *grown*, widened
  /// past the current value — shrinking mid-query would ping-pong with
  /// summary invalidation; growth widening bounds the number of entry
  /// updates even in infinite-height domains. Edit paths pass true to
  /// regain precision once stale contributions have been dropped.
  void refreshEntry(const InstanceKey &Key, Instance &Inst, bool AllowShrink) {
    Elem Joined = D::bottom();
    for (const auto &[Site, Contribution] : Inst.Contributions)
      Joined = D::join(Joined, Contribution);
    const Elem &Cur = Inst.G->entryValue();
    Elem Entry = std::move(Joined);
    bool Tightened = false;
    if (!AllowShrink) {
      if (D::leq(Entry, Cur))
        return; // already covered: keep the (possibly larger) entry
      // Widening delay: plain joins for the first few growths keep
      // precision (e.g. loop-carried call arguments); widening afterwards
      // bounds the number of entry updates in infinite-height domains.
      // Under a soft-degraded budget the delay drops to zero — widen
      // immediately to cap further entry-update work — and entries
      // coarsened by that tightening are flagged with degraded provenance.
      constexpr unsigned WideningDelay = 4;
      unsigned Delay = budgetDegraded() ? 0 : WideningDelay;
      if (!D::isBottom(Cur)) {
        unsigned Growth = Inst.EntryGrowths++;
        if (Growth < Delay) {
          Entry = D::join(Cur, Entry);
        } else {
          Entry = D::widen(Cur, D::join(Cur, Entry));
          // Degraded provenance only when the un-degraded policy would
          // still have joined (Growth below the normal delay).
          Tightened = budgetDegraded() && Growth < WideningDelay;
        }
      }
    } else {
      Inst.EntryGrowths = 0;
    }
    if (!D::equal(Entry, Cur)) {
      bool NowBottom = D::isBottom(Entry);
      Inst.G->updateEntry(std::move(Entry));
      if (Tightened)
        Inst.G->markEntryDegraded();
      Inst.FullyQueried = false;
      // A dead instance (entry ⊥ after an edit) can no longer vouch for its
      // own outgoing contributions: cascade the drop down the call DAG.
      if (AllowShrink && NowBottom)
        dropAllOutgoingOf(Key);
    }
  }

  /// Removes every contribution made by \p Caller (any call site),
  /// re-seeding affected callee entries; recursion bottoms out on the
  /// acyclic call graph.
  void dropAllOutgoingOf(const InstanceKey &Caller) {
    for (auto &[CalleeKey, CalleeInst] : Instances) {
      bool Removed = false;
      for (auto It = CalleeInst->Contributions.begin();
           It != CalleeInst->Contributions.end();) {
        if (It->first.first == Caller) {
          It = CalleeInst->Contributions.erase(It);
          Removed = true;
        } else {
          ++It;
        }
      }
      if (Removed)
        refreshEntry(CalleeKey, *CalleeInst, /*AllowShrink=*/true);
    }
  }

  void onCellEmptied(const InstanceKey &Key, Name N) {
    auto It = Instances.find(Key);
    if (It == Instances.end())
      return;
    It->second->FullyQueried = false;
    if (N == It->second->G->exitCellName())
      PendingDirtyExits.push_back(Key);
  }

  /// Processes summary invalidations until quiescent. Returns true if any
  /// consumer was invalidated.
  bool drainDirtyExits() {
    if (InDirtyDrain)
      return false;
    InDirtyDrain = true;
    bool AnyWork = false;
    std::set<InstanceKey> Done;
    while (!PendingDirtyExits.empty()) {
      InstanceKey Key = PendingDirtyExits.back();
      PendingDirtyExits.pop_back();
      if (!Done.insert(Key).second)
        continue;
      auto CIt = SummaryConsumers.find(Key);
      if (CIt == SummaryConsumers.end())
        continue;
      for (const InstanceKey &Caller : CIt->second) {
        auto InstIt = Instances.find(Caller);
        if (InstIt == Instances.end())
          continue;
        AnyWork = true;
        // Dirty the outputs of every call edge targeting Key's function.
        // Contributions are NOT dropped here: query passes re-validate
        // them, and monotone entry growth guarantees convergence.
        for (const CallEdge &CE : CG.Edges) {
          if (CE.Caller != Caller.Fn || CE.Callee != Key.Fn)
            continue; // interned ids: two integer compares per edge
          InstIt->second->G->invalidateEdgeOutputs(CE.Edge);
        }
      }
    }
    InDirtyDrain = false;
    return AnyWork;
  }

  /// Drops contributions recorded for call site \p SiteHash inside \p Fn
  /// (used when the call statement itself is replaced: the site key dies).
  void dropContributionsForSite(SymbolId Fn, uint64_t SiteHash) {
    for (auto &[CalleeKey, CalleeInst] : Instances) {
      bool Removed = false;
      for (auto It = CalleeInst->Contributions.begin();
           It != CalleeInst->Contributions.end();) {
        if (It->first.first.Fn == Fn && It->first.second == SiteHash) {
          It = CalleeInst->Contributions.erase(It);
          Removed = true;
        } else {
          ++It;
        }
      }
      if (Removed)
        refreshEntry(CalleeKey, *CalleeInst, /*AllowShrink=*/true);
    }
  }

  bool anyInstanceOf(SymbolId Fn) const {
    for (const auto &[Key, Inst] : Instances)
      if (Key.Fn == Fn)
        return true;
    return false;
  }
};

} // namespace dai

#endif // DAI_INTERPROC_ENGINE_H
