//===-- interproc/call_graph.h - Static call graph --------------*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static call graph over a Program's `x = f(ys)` statements (the
/// paper's implementation supports static calling semantics: no virtual
/// dispatch or higher-order functions, Section 7.1). Used to reject
/// recursive programs up front — the paper's interprocedural scheme targets
/// non-recursive programs — and to enumerate call edges for cross-DAIG
/// invalidation.
///
//===----------------------------------------------------------------------===//

#ifndef DAI_INTERPROC_CALL_GRAPH_H
#define DAI_INTERPROC_CALL_GRAPH_H

#include "cfg/program.h"
#include "domain/symbol.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace dai {

/// One call edge: caller function, CFG edge, callee name. Endpoints are
/// interned SymbolIds so the engine's cross-DAIG invalidation sweep
/// (drainDirtyExits) filters edges with integer compares.
struct CallEdge {
  SymbolId Caller = kNoSymbol;
  EdgeId Edge = InvalidEdgeId;
  SymbolId Callee = kNoSymbol;
};

/// Static call graph of a whole program.
struct CallGraph {
  std::vector<CallEdge> Edges;
  std::map<std::string, std::set<std::string>> Callees; ///< fn → callee names
  std::string Error; ///< Non-empty on recursion or missing callees.

  bool valid() const { return Error.empty(); }
};

/// Builds the call graph of \p P; detects recursion (including mutual) and
/// calls to undefined functions.
inline CallGraph buildCallGraph(const Program &P) {
  CallGraph CG;
  for (const auto &[Name, F] : P.Functions) {
    CG.Callees[Name]; // ensure every function has a node
    for (const auto &[Id, E] : F.Body.edges()) {
      if (E.Label.Kind != StmtKind::Call)
        continue;
      if (!P.find(E.Label.Callee)) {
        CG.Error = "call to undefined function '" + E.Label.Callee +
                   "' in '" + Name + "'";
        return CG;
      }
      CG.Edges.push_back(
          CallEdge{internSymbol(Name), Id, internSymbol(E.Label.Callee)});
      CG.Callees[Name].insert(E.Label.Callee);
    }
  }
  // Recursion check: DFS three-coloring over the callee relation.
  enum Color { White, Grey, Black };
  std::map<std::string, Color> Colors;
  for (const auto &[Name, Ignored] : CG.Callees)
    Colors[Name] = White;
  // Iterative DFS with an explicit stack of (node, next-callee iterator).
  for (const auto &[Root, Ignored] : CG.Callees) {
    (void)Ignored;
    if (Colors[Root] != White)
      continue;
    std::vector<std::pair<std::string, std::set<std::string>::const_iterator>>
        Stack;
    Colors[Root] = Grey;
    Stack.emplace_back(Root, CG.Callees[Root].begin());
    while (!Stack.empty()) {
      auto &[Node, It] = Stack.back();
      if (It == CG.Callees[Node].end()) {
        Colors[Node] = Black;
        Stack.pop_back();
        continue;
      }
      const std::string &Next = *It++;
      if (Colors[Next] == Grey) {
        CG.Error = "recursive call cycle through '" + Next +
                   "' (the demanded interprocedural scheme requires "
                   "non-recursive programs)";
        return CG;
      }
      if (Colors[Next] == White) {
        Colors[Next] = Grey;
        Stack.emplace_back(Next, CG.Callees[Next].begin());
      }
    }
  }
  return CG;
}

} // namespace dai

#endif // DAI_INTERPROC_CALL_GRAPH_H
