//===-- analysis/checks_db.h - Alarm database -------------------*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The alarm database filled by the checker pass (analysis/checker.h): one
/// CheckResult per evaluated obligation, keyed by program location, with
/// per-check provenance (which check, which edge, which domain answered, and
/// whether the answering pre-state carried degraded budget provenance).
///
/// The degraded-provenance rule lives here as defense in depth: a result
/// whose pre-state was ⊤-substituted by a resource budget (support/budget.h)
/// can never be recorded as SAFE — the proof may hold only of the coarsened
/// state, so add() clamps it to WARNING even if a caller forgot to.
///
//===----------------------------------------------------------------------===//

#ifndef DAI_ANALYSIS_CHECKS_DB_H
#define DAI_ANALYSIS_CHECKS_DB_H

#include "cfg/cfg.h"
#include "support/statistics.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dai {

/// Property-check families the checker pass knows how to derive.
enum class CheckKind : uint8_t {
  UserAssertion, ///< `assert(e)` statements.
  DivByZero,     ///< Divisor of every `/` and `%` is nonzero.
  ArrayBounds,   ///< Every `a[i]` read/write has 0 <= i < a.length.
  Overflow,      ///< Every `+`/`-`/`*` stays within 32-bit signed range.
};

const char *checkKindName(CheckKind K);

/// Bit masks selecting check families (checker collection is maskable so a
/// corpus phase can, e.g., skip the noisy overflow battery).
inline constexpr uint32_t checkMask(CheckKind K) {
  return 1u << static_cast<uint32_t>(K);
}
inline constexpr uint32_t kAllChecks =
    checkMask(CheckKind::UserAssertion) | checkMask(CheckKind::DivByZero) |
    checkMask(CheckKind::ArrayBounds) | checkMask(CheckKind::Overflow);

/// The verdict lattice. Ordered by "alarm severity" for reporting; the
/// checker's evaluation rules are:
///  - Unreachable: the queried pre-state is ⊥ — no execution reaches the
///    check, so it holds vacuously (and is not an alarm).
///  - Safe: the pre-state entails the property (meet with its negation is ⊥).
///  - Error: the pre-state refutes the property (meet with the property
///    itself is ⊥) — every state that reaches the check violates it.
///  - Warning: neither provable nor refutable at this precision (includes
///    every would-be Safe whose pre-state carries degraded provenance).
enum class Verdict : uint8_t { Safe, Warning, Error, Unreachable };

const char *verdictName(Verdict V);

/// One evaluated check obligation with its provenance.
struct CheckResult {
  CheckKind Kind = CheckKind::UserAssertion;
  Verdict V = Verdict::Warning;
  EdgeId Edge = InvalidEdgeId; ///< The CFG edge carrying the obligation.
  Loc At = InvalidLoc;         ///< The edge source (the checked pre-state).
  uint32_t SubIndex = 0;       ///< Obligation ordinal within the edge.
  std::string Text;            ///< Human-readable property, e.g. "i < a.length".
  std::string DomainName;      ///< Domain that answered (D::name()).
  bool DegradedPre = false;    ///< Pre-state carried degraded provenance.
};

/// Aggregate verdict tallies (the batch bench's summary unit).
struct VerdictCounts {
  uint64_t Safe = 0;
  uint64_t Warning = 0;
  uint64_t Error = 0;
  uint64_t Unreachable = 0;

  uint64_t total() const { return Safe + Warning + Error + Unreachable; }
  uint64_t alarms() const { return Warning + Error; }

  VerdictCounts &operator+=(const VerdictCounts &O) {
    Safe += O.Safe;
    Warning += O.Warning;
    Error += O.Error;
    Unreachable += O.Unreachable;
    return *this;
  }
  bool operator==(const VerdictCounts &O) const {
    return Safe == O.Safe && Warning == O.Warning && Error == O.Error &&
           Unreachable == O.Unreachable;
  }
};

/// Location-keyed alarm database. Deterministic: iteration is by (Loc,
/// insertion order), and the checker inserts in (EdgeId, SubIndex) order.
class ChecksDb {
public:
  /// Records \p R, clamping Safe to Warning when the pre-state was degraded
  /// (a ⊤-substituted cell can prove nothing). Bumps \p Stats — per-verdict
  /// counts plus AlarmsRaised for post-clamp Warning/Error — when non-null.
  void add(CheckResult R, Statistics *Stats = nullptr);

  void clear();

  size_t size() const { return Total.total(); }
  bool empty() const { return size() == 0; }
  const VerdictCounts &counts() const { return Total; }
  bool hasAlarms() const { return Total.alarms() != 0; }

  /// Results recorded at location \p L (empty if none).
  const std::vector<CheckResult> &at(Loc L) const;

  /// All locations holding at least one result, ascending.
  std::vector<Loc> locations() const;

  /// Worst verdict recorded at \p L: Error > Warning > Safe > Unreachable.
  /// Returns Unreachable when no result is recorded at \p L.
  Verdict worstAt(Loc L) const;

  /// Multi-line text report: one line per result, grouped by location, plus
  /// a summary tally line. Stable across runs on identical inputs.
  std::string report() const;

private:
  std::map<Loc, std::vector<CheckResult>> ByLoc;
  VerdictCounts Total;
};

} // namespace dai

#endif // DAI_ANALYSIS_CHECKS_DB_H
