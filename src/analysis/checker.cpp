//===-- analysis/checker.cpp - Obligation collection ----------------------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/checker.h"

#include "lang/expr.h"

using namespace dai;

namespace {

/// The mini-language's nominal machine-integer range (32-bit signed). The
/// symmetric lower bound keeps `-x` of any in-range x in range, matching
/// the usual "no INT_MIN edge case" checker convention.
constexpr int64_t kIntMin = -2147483647;
constexpr int64_t kIntMax = 2147483647;

/// `lo <= e && e <= hi` — the overflow-containment property for node e.
ExprPtr containedIn(const ExprPtr &E, int64_t Lo, int64_t Hi) {
  return Expr::mkBinary(BinaryOp::And,
                        Expr::mkBinary(BinaryOp::Ge, E, Expr::mkInt(Lo)),
                        Expr::mkBinary(BinaryOp::Le, E, Expr::mkInt(Hi)));
}

/// `0 <= i && i < base.length` — the bounds property for base[i].
ExprPtr inBounds(const ExprPtr &Base, const ExprPtr &Idx) {
  return Expr::mkBinary(
      BinaryOp::And,
      Expr::mkBinary(BinaryOp::Ge, Idx, Expr::mkInt(0)),
      Expr::mkBinary(BinaryOp::Lt, Idx, Expr::mkField(Base, "length")));
}

struct Collector {
  EdgeId Edge;
  Loc At;
  uint32_t Mask;
  std::vector<Obligation> &Out;
  uint32_t Next = 0; ///< SubIndex allocator (running, collection order).

  void emit(CheckKind K, ExprPtr Prop, std::string Text) {
    Out.push_back(Obligation{K, Edge, At, Next++, std::move(Prop),
                             std::move(Text)});
  }

  bool wants(CheckKind K) const { return (Mask & checkMask(K)) != 0; }

  /// Walks \p E post-order (operand obligations precede the operator's own,
  /// matching evaluation order) emitting derived obligations.
  void walk(const ExprPtr &E) {
    if (!E)
      return;
    switch (E->Kind) {
    case ExprKind::IntLit:
    case ExprKind::BoolLit:
    case ExprKind::NullLit:
    case ExprKind::Var:
      return;
    case ExprKind::Unary:
      walk(E->Lhs);
      return;
    case ExprKind::Binary:
      walk(E->Lhs);
      walk(E->Rhs);
      switch (E->BOp) {
      case BinaryOp::Div:
      case BinaryOp::Mod:
        if (wants(CheckKind::DivByZero))
          emit(CheckKind::DivByZero,
               Expr::mkBinary(BinaryOp::Ne, E->Rhs, Expr::mkInt(0)),
               exprToString(E->Rhs) + " != 0");
        break;
      case BinaryOp::Add:
      case BinaryOp::Sub:
      case BinaryOp::Mul:
        if (wants(CheckKind::Overflow))
          emit(CheckKind::Overflow, containedIn(E, kIntMin, kIntMax),
               exprToString(E) + " in int32 range");
        break;
      default:
        break;
      }
      return;
    case ExprKind::ArrayLit:
      for (const ExprPtr &Elem : E->Elems)
        walk(Elem);
      return;
    case ExprKind::Index:
      walk(E->Lhs);
      walk(E->Rhs);
      if (wants(CheckKind::ArrayBounds))
        emit(CheckKind::ArrayBounds, inBounds(E->Lhs, E->Rhs),
             "0 <= " + exprToString(E->Rhs) + " < " + exprToString(E->Lhs) +
                 ".length");
      return;
    case ExprKind::FieldRead:
      walk(E->Lhs);
      return;
    }
  }
};

} // namespace

void dai::collectObligations(const Stmt &S, EdgeId Edge, Loc At,
                             std::vector<Obligation> &Out, uint32_t Mask) {
  Collector C{Edge, At, Mask, Out};
  // Sub-expression obligations first (evaluation order), in the statement's
  // operand order: Index, then Rhs, then Args.
  C.walk(S.Index);
  C.walk(S.Rhs);
  for (const ExprPtr &A : S.Args)
    C.walk(A);
  switch (S.Kind) {
  case StmtKind::Assert:
    if (C.wants(CheckKind::UserAssertion))
      C.emit(CheckKind::UserAssertion, S.Rhs,
             "assert(" + exprToString(S.Rhs) + ")");
    break;
  case StmtKind::ArrayWrite:
    if (C.wants(CheckKind::ArrayBounds))
      C.emit(CheckKind::ArrayBounds,
             inBounds(Expr::mkVar(S.Lhs), S.Index),
             "0 <= " + exprToString(S.Index) + " < " + S.Lhs + ".length");
    break;
  default:
    break;
  }
}

std::vector<Obligation> dai::collectObligations(const Cfg &G, uint32_t Mask) {
  std::vector<Obligation> Out;
  for (auto [Id, E] : G.edges())
    collectObligations(E.Label, Id, E.Src, Out, Mask);
  return Out;
}
