//===-- analysis/checks_db.cpp - Alarm database ---------------------------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/checks_db.h"

#include <cassert>
#include <sstream>

using namespace dai;

const char *dai::checkKindName(CheckKind K) {
  switch (K) {
  case CheckKind::UserAssertion: return "assertion";
  case CheckKind::DivByZero: return "div-by-zero";
  case CheckKind::ArrayBounds: return "array-bounds";
  case CheckKind::Overflow: return "overflow";
  }
  assert(false && "unknown check kind");
  return "?";
}

const char *dai::verdictName(Verdict V) {
  switch (V) {
  case Verdict::Safe: return "SAFE";
  case Verdict::Warning: return "WARNING";
  case Verdict::Error: return "ERROR";
  case Verdict::Unreachable: return "UNREACHABLE";
  }
  assert(false && "unknown verdict");
  return "?";
}

void ChecksDb::add(CheckResult R, Statistics *Stats) {
  if (R.DegradedPre && R.V == Verdict::Safe)
    R.V = Verdict::Warning; // a coarsened pre-state proves nothing
  switch (R.V) {
  case Verdict::Safe: ++Total.Safe; break;
  case Verdict::Warning: ++Total.Warning; break;
  case Verdict::Error: ++Total.Error; break;
  case Verdict::Unreachable: ++Total.Unreachable; break;
  }
  if (Stats && (R.V == Verdict::Warning || R.V == Verdict::Error))
    ++Stats->AlarmsRaised;
  ByLoc[R.At].push_back(std::move(R));
}

void ChecksDb::clear() {
  ByLoc.clear();
  Total = VerdictCounts();
}

const std::vector<CheckResult> &ChecksDb::at(Loc L) const {
  static const std::vector<CheckResult> Empty;
  auto It = ByLoc.find(L);
  return It == ByLoc.end() ? Empty : It->second;
}

std::vector<Loc> ChecksDb::locations() const {
  std::vector<Loc> Out;
  Out.reserve(ByLoc.size());
  for (const auto &[L, Results] : ByLoc) {
    (void)Results;
    Out.push_back(L);
  }
  return Out;
}

Verdict ChecksDb::worstAt(Loc L) const {
  auto It = ByLoc.find(L);
  Verdict Worst = Verdict::Unreachable;
  auto rank = [](Verdict V) {
    switch (V) {
    case Verdict::Error: return 3;
    case Verdict::Warning: return 2;
    case Verdict::Safe: return 1;
    case Verdict::Unreachable: return 0;
    }
    return 0;
  };
  if (It != ByLoc.end())
    for (const CheckResult &R : It->second)
      if (rank(R.V) > rank(Worst))
        Worst = R.V;
  return Worst;
}

std::string ChecksDb::report() const {
  std::ostringstream OS;
  for (const auto &[L, Results] : ByLoc) {
    OS << "L" << L << ":\n";
    for (const CheckResult &R : Results) {
      OS << "  [" << verdictName(R.V) << "] " << checkKindName(R.Kind) << " "
         << R.Text << " (edge " << R.Edge << ", " << R.DomainName;
      if (R.DegradedPre)
        OS << ", degraded pre-state";
      OS << ")\n";
    }
  }
  OS << "checks: " << Total.total() << " total, " << Total.Safe << " safe, "
     << Total.Warning << " warning, " << Total.Error << " error, "
     << Total.Unreachable << " unreachable\n";
  return OS.str();
}
