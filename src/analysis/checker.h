//===-- analysis/checker.h - Property checker pass --------------*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The checker pass: derives check obligations from CFG statements (user
/// assertions, division-by-zero, array bounds, arithmetic overflow), then
/// evaluates each against the queried abstract pre-state of ANY domain
/// satisfying AbstractDomain, producing the SAFE / WARNING / ERROR /
/// UNREACHABLE verdicts of analysis/checks_db.h.
///
/// Evaluation is domain-generic via ⊥-probes: a property φ over pre-state Φ
/// is entailed (SAFE) when ⟦assume ¬φ⟧♯(Φ) = ⊥, refuted (ERROR) when
/// ⟦assume φ⟧♯(Φ) = ⊥, and otherwise unproven (WARNING) at this precision.
/// A ⊥ pre-state is UNREACHABLE; a pre-state with degraded budget
/// provenance can never yield SAFE (clamped to WARNING).
///
/// IncrementalChecker is the DAIG-native part: after an edit, Fig. 9
/// dirtying has emptied exactly the cells of the affected slice, so a cached
/// verdict is reusable iff its edge's statement is unchanged AND the DAIG
/// still holds the materialized pre-state (Daig::locationValueReady) with
/// the same degraded status. Everything else — the demanded slice — is
/// re-evaluated and counted in Statistics::ChecksRechecked.
///
//===----------------------------------------------------------------------===//

#ifndef DAI_ANALYSIS_CHECKER_H
#define DAI_ANALYSIS_CHECKER_H

#include "analysis/checks_db.h"
#include "daig/daig.h"
#include "domain/abstract_domain.h"
#include "lang/stmt.h"
#include "support/observe.h"
#include "support/statistics.h"

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace dai {

/// An unevaluated check obligation: property \p Prop must hold of the
/// abstract state entering edge \p Edge (i.e., at location \p At).
struct Obligation {
  CheckKind Kind = CheckKind::UserAssertion;
  EdgeId Edge = InvalidEdgeId;
  Loc At = InvalidLoc;    ///< Edge source: the pre-state to check against.
  uint32_t SubIndex = 0;  ///< Ordinal within the edge (collection order).
  ExprPtr Prop;           ///< The property, as a boolean expression.
  std::string Text;       ///< Human-readable rendering of Prop.
};

/// Appends the obligations of statement \p S (labelling edge \p Edge with
/// source \p At) to \p Out, in deterministic sub-expression order, filtered
/// by \p Mask (a bitwise-or of checkMask values):
///  - UserAssertion: `assert(e)` contributes e.
///  - DivByZero: every `/` or `%` contributes `divisor != 0`.
///  - ArrayBounds: every `a[i]` read and every `a[i] = e` write contributes
///    `i >= 0 && i < a.length`.
///  - Overflow: every `+`, `-`, `*` contributes containment of the result
///    in the 32-bit signed range (the mini-language's nominal int width).
void collectObligations(const Stmt &S, EdgeId Edge, Loc At,
                        std::vector<Obligation> &Out,
                        uint32_t Mask = kAllChecks);

/// Collects every obligation of \p G in ascending (EdgeId, SubIndex) order.
std::vector<Obligation> collectObligations(const Cfg &G,
                                           uint32_t Mask = kAllChecks);

/// Evaluates one obligation against pre-state \p Pre via ⊥-probes (see file
/// header). Counts into Stats->ChecksEvaluated when \p Stats is non-null.
template <typename D>
  requires AbstractDomain<D>
Verdict evaluateObligation(const Obligation &Ob, const typename D::Elem &Pre,
                           bool DegradedPre, Statistics *Stats = nullptr) {
  if (Stats)
    ++Stats->ChecksEvaluated;
  TraceSpan Sp("check.obligation", Ob.Edge, Ob.SubIndex);
  if (D::isBottom(Pre))
    return Verdict::Unreachable;
  // Entailment probe: no state of γ(Pre) satisfies ¬φ ⇒ φ holds on entry.
  if (D::isBottom(D::transfer(Stmt::mkAssume(negate(Ob.Prop)), Pre)))
    return DegradedPre ? Verdict::Warning : Verdict::Safe;
  // Refutation probe: no state of γ(Pre) satisfies φ ⇒ every execution
  // reaching the check violates it. (Sound under over-approximation: the
  // transfer over-approximates the meet, so ⊥ means the set is empty.)
  if (D::isBottom(D::transfer(Stmt::mkAssume(Ob.Prop), Pre)))
    return Verdict::Error;
  return Verdict::Warning;
}

/// Evaluates \p Obs against pre-states supplied by \p Query (with degraded
/// provenance from \p DegradedAt), recording every result into \p Db.
/// Engine- and DAIG-agnostic: callers bind Query to Daig::queryLocation,
/// InterprocEngine::queryMain, or a batch-interpreter state map.
template <typename D>
  requires AbstractDomain<D>
VerdictCounts
runChecks(const std::vector<Obligation> &Obs,
          const std::function<typename D::Elem(Loc)> &Query,
          const std::function<bool(Loc)> &DegradedAt, ChecksDb &Db,
          Statistics *Stats = nullptr) {
  VerdictCounts Counts;
  for (const Obligation &Ob : Obs) {
    typename D::Elem Pre = Query(Ob.At);
    bool Degraded = DegradedAt && DegradedAt(Ob.At);
    Verdict V = evaluateObligation<D>(Ob, Pre, Degraded, Stats);
    Db.add(CheckResult{Ob.Kind, V, Ob.Edge, Ob.At, Ob.SubIndex, Ob.Text,
                       D::name(), Degraded},
           Stats);
    switch (V) {
    case Verdict::Safe: ++Counts.Safe; break;
    case Verdict::Warning: ++Counts.Warning; break;
    case Verdict::Error: ++Counts.Error; break;
    case Verdict::Unreachable: ++Counts.Unreachable; break;
    }
  }
  return Counts;
}

/// Incremental re-checking bound to one Daig. Each recheck() pass rebuilds
/// \p Db from a per-edge cache of (statement hash, pre-state, verdicts),
/// re-evaluating only the obligations whose answers an edit could have
/// changed. Two reuse tiers, both exact:
///
///  1. Slice reuse: the edge's statement hash is unchanged AND the DAIG
///     still holds the materialized pre-state at the edge source
///     (locationValueReady — Fig. 9 dirtying empties exactly the affected
///     slice's cells, so "still filled" proves "untouched by every edit
///     since the last pass") with the same degraded status. No query, no
///     evaluation.
///  2. Pre-state match: the cells were dirtied, so the pre-state is
///     re-demanded (queryLocation — this is the DAIG's incremental
///     analysis work, counted as Transfers/Joins as usual), but the
///     re-demanded value is D::equal to the cached one. A verdict is a
///     pure function of (property, pre-state, degraded flag), so the
///     cached verdicts replay without re-running the ⊥-probes — the
///     checking analogue of the DAIG's memo-table Q-Match.
///
/// Only obligations failing both tiers are re-evaluated, counted in
/// Statistics::ChecksRechecked — the deterministic "how much of the
/// program's checking did this edit actually cost" metric.
///
/// Readiness is snapshotted for every edge BEFORE any query runs: queries
/// fill cells (never empty them), so the snapshot taken at pass start
/// remains valid while re-evaluation proceeds, and a location filled as a
/// side effect of re-checking some earlier edge does not leak tier-1 reuse.
///
/// Structural edits that rebuild the DAIG salvage unchanged cells by name;
/// whatever they cannot salvage reads un-ready and falls through to tier 2
/// or full re-evaluation — conservative, never unsound.
template <typename D>
  requires AbstractDomain<D>
class IncrementalChecker {
public:
  /// Binds to \p G (a DAIG over \p C). \p C must outlive the checker and be
  /// the same CFG the DAIG analyzes. \p Mask selects check families.
  IncrementalChecker(Daig<D> &G, const Cfg &C, Statistics *Stats = nullptr,
                     uint32_t Mask = kAllChecks)
      : G(G), C(C), Stats(Stats), Mask(Mask) {}

  /// Runs one full or incremental pass, rebuilding db(). Returns the pass's
  /// verdict tallies (covering reused and re-evaluated obligations alike).
  VerdictCounts recheck() {
    // Phase 1: collect the current obligations and snapshot readiness
    // before any query can fill cells.
    struct EdgeWork {
      const Stmt *S;
      Loc Src;
      bool Ready;
      bool Degraded;
      std::vector<Obligation> Obs;
    };
    std::map<EdgeId, EdgeWork> Work;
    for (auto [Id, E] : C.edges()) {
      std::vector<Obligation> Obs;
      collectObligations(E.Label, Id, E.Src, Obs, Mask);
      if (Obs.empty())
        continue;
      bool Ready = G.locationValueReady(E.Src);
      bool Degraded = Ready && G.locationDegraded(E.Src);
      Work.emplace(Id, EdgeWork{&E.Label, E.Src, Ready, Degraded,
                                std::move(Obs)});
    }

    // Phase 2: evaluate in ascending-EdgeId order, reusing where proven
    // safe to.
    Db.clear();
    VerdictCounts Counts;
    std::map<EdgeId, EdgeCache> NewCache;
    for (auto &[Id, W] : Work) {
      uint64_t H = W.S->hash();
      auto CIt = Cache.find(Id);
      bool HasCache = !FirstPass && CIt != Cache.end() &&
                      CIt->second.StmtHash == H &&
                      CIt->second.Verdicts.size() == W.Obs.size();
      // Tier 1: the materialized pre-state survived every edit.
      bool Reuse = HasCache && W.Ready && CIt->second.Degraded == W.Degraded;
      EdgeCache Entry;
      Entry.StmtHash = H;
      if (Reuse) {
        Entry.Degraded = CIt->second.Degraded;
        Entry.Pre = CIt->second.Pre;
        Entry.Verdicts = CIt->second.Verdicts;
      } else {
        typename D::Elem Pre = G.queryLocation(W.Src);
        bool DegradedNow = G.locationDegraded(W.Src);
        Entry.Degraded = DegradedNow;
        // Tier 2: dirtied, but the re-demanded pre-state is unchanged —
        // the cached verdicts are a pure function of it, replay them.
        if (HasCache && CIt->second.Degraded == DegradedNow &&
            D::equal(CIt->second.Pre, Pre)) {
          Entry.Pre = std::move(Pre);
          Entry.Verdicts = CIt->second.Verdicts;
        } else {
          Entry.Verdicts.reserve(W.Obs.size());
          for (const Obligation &Ob : W.Obs) {
            Entry.Verdicts.push_back(
                evaluateObligation<D>(Ob, Pre, DegradedNow, Stats));
            if (Stats && !FirstPass)
              ++Stats->ChecksRechecked;
          }
          Entry.Pre = std::move(Pre);
        }
      }
      for (size_t I = 0, N = W.Obs.size(); I != N; ++I) {
        const Obligation &Ob = W.Obs[I];
        Verdict V = Entry.Verdicts[I];
        Db.add(CheckResult{Ob.Kind, V, Ob.Edge, Ob.At, Ob.SubIndex, Ob.Text,
                           D::name(), Entry.Degraded},
               Stats);
        switch (V) {
        case Verdict::Safe: ++Counts.Safe; break;
        case Verdict::Warning: ++Counts.Warning; break;
        case Verdict::Error: ++Counts.Error; break;
        case Verdict::Unreachable: ++Counts.Unreachable; break;
        }
      }
      NewCache.emplace(Id, std::move(Entry));
    }
    Cache = std::move(NewCache); // drops entries for deleted edges
    FirstPass = false;
    return Counts;
  }

  /// The database rebuilt by the last recheck() pass.
  const ChecksDb &db() const { return Db; }

  /// Total obligations the last pass covered (reused + re-evaluated).
  size_t obligationCount() const { return Db.size(); }

private:
  struct EdgeCache {
    uint64_t StmtHash = 0;
    bool Degraded = false;
    typename D::Elem Pre{}; ///< The pre-state the verdicts were computed of.
    std::vector<Verdict> Verdicts;
  };

  Daig<D> &G;
  const Cfg &C;
  Statistics *Stats;
  uint32_t Mask;
  ChecksDb Db;
  std::map<EdgeId, EdgeCache> Cache;
  bool FirstPass = true;
};

} // namespace dai

#endif // DAI_ANALYSIS_CHECKER_H
