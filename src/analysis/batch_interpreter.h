//===-- analysis/batch_interpreter.h - Classical batch AI ------*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A classical (batch) abstract interpreter: computes the global fixed-point
/// invariant map ⟦·⟧♯∗ : Loc → Σ♯ by structured chaotic iteration with
/// widening at loop heads. This is both the paper's "Batch" evaluation
/// configuration (Section 7.3) and the reference implementation against
/// which DAIG from-scratch consistency (Theorem 6.1) is property-tested.
///
/// The iteration strategy deliberately mirrors the DAIG's demanded-unrolling
/// semantics so results agree *exactly*, not just up to precision:
///   - the 0th iterate at a loop head is the join of transfers over its
///     forward in-edges (which, by reducibility, all come from outside the
///     natural loop);
///   - iterate k+1 = iterate k ∇ ⟦back-edge stmt⟧(body value at the latch),
///     where the body is re-analyzed per iteration with nested loops solved
///     recursively from scratch (as demanded unrolling resets them);
///   - the loop converges when two consecutive iterates are equal (D::equal),
///     and loop exits read the converged value.
///
//===----------------------------------------------------------------------===//

#ifndef DAI_ANALYSIS_BATCH_INTERPRETER_H
#define DAI_ANALYSIS_BATCH_INTERPRETER_H

#include "cfg/cfg_analysis.h"
#include "cfg/program.h"
#include "domain/abstract_domain.h"
#include "support/statistics.h"

#include <cassert>

#include <functional>
#include <map>

namespace dai {

/// Batch abstract interpretation of one CFG over domain \p D.
template <typename D>
  requires AbstractDomain<D>
class BatchInterpreter {
public:
  using Elem = typename D::Elem;
  /// Optional override for statement interpretation (the interprocedural
  /// engine resolves Call statements through this hook).
  using TransferFn = std::function<Elem(const Stmt &, const Elem &)>;

  BatchInterpreter(const Cfg &G, const CfgInfo &Info,
                   Statistics *Stats = nullptr, TransferFn Hook = nullptr)
      : G(G), Info(Info), Stats(Stats), Hook(std::move(Hook)) {
    assert(Info.valid() && "batch analysis requires a well-formed CFG");
  }

  /// Runs to the global fixed point from \p Entry at the CFG entry location.
  /// Unreachable locations are mapped to ⊥.
  std::map<Loc, Elem> run(const Elem &Entry) {
    Values.clear();
    for (Loc L = 0; L < G.numLocs(); ++L)
      Values[L] = D::bottom();
    Values[G.entry()] = Entry;
    for (Loc L : Info.Rpo) {
      if (L == G.entry())
        continue;
      if (Info.inAnyLoop(L)) {
        if (isOutermostHead(L))
          solveLoop(L, joinIncoming(L, nullptr));
        continue; // loop-body locations are handled inside solveLoop
      }
      Values[L] = joinIncoming(L, nullptr);
    }
    return Values;
  }

private:
  const Cfg &G;
  const CfgInfo &Info;
  Statistics *Stats;
  TransferFn Hook;
  std::map<Loc, Elem> Values;

  Elem applyTransfer(const Stmt &S, const Elem &In) {
    if (Stats)
      ++Stats->Transfers;
    return Hook ? Hook(S, In) : D::transfer(S, In);
  }

  bool isOutermostHead(Loc L) const {
    const auto &Nest = Info.LoopNestOf[L];
    return !Nest.empty() && Nest.size() == 1 && Nest[0] == L;
  }

  /// True if \p L is a loop head whose loop is *directly* nested in
  /// \p Enclosing (i.e. solving Enclosing's body must recurse at L).
  bool isHeadDirectlyWithin(Loc L, Loc Enclosing) const {
    const auto &Nest = Info.LoopNestOf[L];
    if (Nest.empty() || Nest.back() != L)
      return false;
    return Nest.size() >= 2 && Nest[Nest.size() - 2] == Enclosing;
  }

  /// Join of transfers over the forward in-edges of \p L (in fwd-edges-to
  /// index order, matching the DAIG's k-ary join cell). When \p Within is
  /// non-null, only edges from inside that natural loop are considered.
  Elem joinIncoming(Loc L, const std::set<Loc> *Within) {
    auto It = Info.FwdEdgesTo.find(L);
    if (It == Info.FwdEdgesTo.end())
      return D::bottom();
    Elem Acc = D::bottom();
    bool FirstIn = true;
    unsigned Considered = 0;
    for (EdgeId Id : It->second) {
      const CfgEdge *E = G.findEdge(Id);
      if (Within && !Within->count(E->Src))
        continue;
      ++Considered;
      Elem V = applyTransfer(E->Label, Values[E->Src]);
      if (FirstIn) {
        Acc = std::move(V);
        FirstIn = false;
      } else {
        if (Stats)
          ++Stats->Joins;
        Acc = D::join(Acc, V);
      }
    }
    (void)Considered;
    return Acc;
  }

  /// Computes the widened fixed point at head \p H starting from iterate
  /// \p X0 and publishes converged values for the whole natural loop.
  void solveLoop(Loc H, Elem X0) {
    const std::set<Loc> &Body = Info.NaturalLoops.at(H);
    const CfgEdge *Back = G.findEdge(Info.LoopBackEdge.at(H));
    Elem X = std::move(X0);
    for (;;) {
      Values[H] = X;
      analyzeBody(H, Body);
      Elem PreWiden = applyTransfer(Back->Label, Values[Back->Src]);
      if (Stats)
        ++Stats->Widens;
      Elem XNext = D::widen(X, PreWiden);
      if (Stats)
        ++Stats->FixChecks;
      if (D::equal(X, XNext)) {
        Values[H] = X;
        return;
      }
      X = std::move(XNext);
    }
  }

  /// One abstract iteration of a loop body: forward propagation inside the
  /// natural loop, solving directly nested loops recursively.
  void analyzeBody(Loc H, const std::set<Loc> &Body) {
    for (Loc L : Info.Rpo) {
      if (L == H || !Body.count(L))
        continue;
      const auto &Nest = Info.LoopNestOf[L];
      assert(!Nest.empty() && "loop-body locations have a loop nest");
      if (Nest.back() == H) {
        // Innermost enclosing loop is H: plain body location.
        Values[L] = joinIncoming(L, &Body);
        continue;
      }
      if (isHeadDirectlyWithin(L, H)) {
        solveLoop(L, joinIncoming(L, &Body));
        continue;
      }
      // Deeper location: handled inside the directly nested solveLoop.
    }
  }
};

/// Convenience wrapper: analyze \p F from its domain-defined entry state.
template <typename D>
  requires AbstractDomain<D>
std::map<Loc, typename D::Elem>
batchAnalyze(const Function &F, const CfgInfo &Info,
             Statistics *Stats = nullptr) {
  BatchInterpreter<D> Interp(F.Body, Info, Stats);
  return Interp.run(D::initialEntry(F.Params));
}

} // namespace dai

#endif // DAI_ANALYSIS_BATCH_INTERPRETER_H
