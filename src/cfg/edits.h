//===-- cfg/edits.h - Structured CFG edit operations ------------*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The program-edit operations of the paper's evaluation (Section 7.3): an
/// edit is an in-place statement replacement, or the insertion of a
/// statement, if-then-else, or while loop at a program location. Insertions
/// splice a single-entry hammock after the location: existing outgoing edges
/// are redirected (keeping their EdgeIds, hence their join indices) to the
/// hammock's exit, so all pre-existing DAIG cell names remain meaningful.
///
//===----------------------------------------------------------------------===//

#ifndef DAI_CFG_EDITS_H
#define DAI_CFG_EDITS_H

#include "cfg/cfg.h"

namespace dai {

/// Description of a performed insertion, for logging and tests.
struct InsertResult {
  Loc HammockExit = InvalidLoc;  ///< Where the original successors now hang.
  EdgeId FirstNewEdge = InvalidEdgeId;
};

/// Replaces the statement on edge \p Id. Returns false if no such edge.
bool replaceEdgeStmt(Cfg &G, EdgeId Id, Stmt NewStmt);

/// Inserts `S` immediately after \p L: L —[S]→ m, with L's previous outgoing
/// edges re-sourced at m. \p L must not be the CFG exit.
InsertResult insertStmtAt(Cfg &G, Loc L, Stmt S);

/// Inserts `if (Cond) { Then } else { Else }` immediately after \p L.
InsertResult insertIfAt(Cfg &G, Loc L, ExprPtr Cond, Stmt Then, Stmt Else);

/// Inserts `while (Cond) { Body }` immediately after \p L. A fresh header is
/// created (so \p L never acquires a second back edge).
InsertResult insertWhileAt(Cfg &G, Loc L, ExprPtr Cond, Stmt Body);

} // namespace dai

#endif // DAI_CFG_EDITS_H
