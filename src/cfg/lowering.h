//===-- cfg/lowering.h - AST → CFG lowering ---------------------*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers structured ASTs to edge-labelled CFGs, decomposing `if` and `while`
/// guards into `assume cond` / `assume !cond` edges exactly as in Fig. 2 of
/// the paper. `return e` lowers to `__ret = e` targeting the CFG exit; code
/// following a return within a block is dead and dropped.
///
/// Loops are lowered with a dedicated latch edge so that every loop header
/// has exactly one back edge (the paper's reducibility footnote assumes at
/// most one back edge per vertex).
///
//===----------------------------------------------------------------------===//

#ifndef DAI_CFG_LOWERING_H
#define DAI_CFG_LOWERING_H

#include "cfg/program.h"
#include "lang/ast.h"

#include <string>

namespace dai {

/// Result of lowering: a program plus an empty error, or a message.
struct LowerResult {
  Program Prog;
  std::string Error;

  bool ok() const { return Error.empty(); }
};

/// Lowers every function of \p Ast. Fails on duplicate function names.
LowerResult lowerProgram(const ProgramAst &Ast);

/// Lowers a single function (convenience for tests).
Function lowerFunction(const FunctionAst &Ast);

/// Parses and lowers \p Source in one step; Error is set on either failure.
LowerResult frontend(std::string_view Source);

} // namespace dai

#endif // DAI_CFG_LOWERING_H
