//===-- cfg/cfg.cpp - Control-flow graph implementation -------------------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cfg/cfg.h"

#include <cassert>
#include <sstream>

using namespace dai;

Cfg::Cfg() {
  Entry = addLoc();
  Exit = addLoc();
}

Loc Cfg::addLoc() {
  ++Version;
  return NextLoc++;
}

EdgeId Cfg::addEdge(Loc Src, Loc Dst, Stmt Label) {
  assert(Src < NextLoc && Dst < NextLoc && "edge endpoints must be allocated");
  ++Version;
  EdgeId Id = NextEdge++;
  Edges[Id] = CfgEdge{Id, Src, Dst, std::move(Label)};
  return Id;
}

bool Cfg::replaceStmt(EdgeId Id, Stmt NewLabel) {
  auto It = Edges.find(Id);
  if (It == Edges.end())
    return false;
  ++Version;
  It->second.Label = std::move(NewLabel);
  return true;
}

bool Cfg::redirectSrc(EdgeId Id, Loc NewSrc) {
  auto It = Edges.find(Id);
  if (It == Edges.end())
    return false;
  assert(NewSrc < NextLoc && "edge endpoints must be allocated");
  ++Version;
  It->second.Src = NewSrc;
  return true;
}

bool Cfg::removeEdge(EdgeId Id) {
  if (Edges.erase(Id) == 0)
    return false;
  ++Version;
  return true;
}

bool Cfg::redirectDst(EdgeId Id, Loc NewDst) {
  auto It = Edges.find(Id);
  if (It == Edges.end())
    return false;
  assert(NewDst < NextLoc && "edge endpoints must be allocated");
  ++Version;
  It->second.Dst = NewDst;
  return true;
}

const CfgEdge *Cfg::findEdge(EdgeId Id) const {
  auto It = Edges.find(Id);
  return It == Edges.end() ? nullptr : &It->second;
}

std::vector<EdgeId> Cfg::succEdges(Loc L) const {
  std::vector<EdgeId> Out;
  for (const auto &[Id, E] : Edges)
    if (E.Src == L)
      Out.push_back(Id);
  return Out;
}

std::vector<EdgeId> Cfg::predEdges(Loc L) const {
  std::vector<EdgeId> Out;
  for (const auto &[Id, E] : Edges)
    if (E.Dst == L)
      Out.push_back(Id);
  return Out;
}

std::string Cfg::toString() const {
  std::ostringstream OS;
  OS << "entry=l" << Entry << " exit=l" << Exit << "\n";
  for (const auto &[Id, E] : Edges)
    OS << "  [e" << Id << "] l" << E.Src << " --{" << E.Label.toString()
       << "}--> l" << E.Dst << "\n";
  return OS.str();
}

std::string Cfg::toDot(const std::string &Title) const {
  std::ostringstream OS;
  OS << "digraph \"" << Title << "\" {\n";
  OS << "  l" << Entry << " [shape=doublecircle];\n";
  OS << "  l" << Exit << " [shape=doubleoctagon];\n";
  for (const auto &[Id, E] : Edges)
    OS << "  l" << E.Src << " -> l" << E.Dst << " [label=\""
       << E.Label.toString() << "\"];\n";
  OS << "}\n";
  return OS.str();
}
