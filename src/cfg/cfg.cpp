//===-- cfg/cfg.cpp - Control-flow graph implementation -------------------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cfg/cfg.h"

#include <cassert>
#include <sstream>

using namespace dai;

Cfg::Cfg() {
  Entry = addLoc();
  Exit = addLoc();
}

Loc Cfg::addLoc() {
  ++Version;
  ++StructVersion;
  return NextLoc++;
}

EdgeId Cfg::addEdge(Loc Src, Loc Dst, Stmt Label) {
  assert(Src < NextLoc && Dst < NextLoc && "edge endpoints must be allocated");
  ++Version;
  ++StructVersion;
  EdgeId Id = NextEdge++;
  assert(Id == EdgesById.size() && "edge ids are allocated densely");
  EdgesById.push_back(CfgEdge{Id, Src, Dst, std::move(Label)});
  ++LiveEdges;
  return Id;
}

bool Cfg::replaceStmt(EdgeId Id, Stmt NewLabel) {
  CfgEdge *E = liveEdge(Id);
  if (!E)
    return false;
  // Statement-only edit: the shape is untouched, so StructVersion (and the
  // cached CfgInfo keyed by it) survives.
  ++Version;
  E->Label = std::move(NewLabel);
  return true;
}

bool Cfg::redirectSrc(EdgeId Id, Loc NewSrc) {
  CfgEdge *E = liveEdge(Id);
  if (!E)
    return false;
  assert(NewSrc < NextLoc && "edge endpoints must be allocated");
  ++Version;
  ++StructVersion;
  E->Src = NewSrc;
  return true;
}

bool Cfg::removeEdge(EdgeId Id) {
  CfgEdge *E = liveEdge(Id);
  if (!E)
    return false;
  ++Version;
  ++StructVersion;
  // Tombstone the slot: ids are never reused, so the dense index stays
  // valid for every surviving edge.
  *E = CfgEdge{};
  --LiveEdges;
  return true;
}

bool Cfg::redirectDst(EdgeId Id, Loc NewDst) {
  CfgEdge *E = liveEdge(Id);
  if (!E)
    return false;
  assert(NewDst < NextLoc && "edge endpoints must be allocated");
  ++Version;
  ++StructVersion;
  E->Dst = NewDst;
  return true;
}

std::vector<EdgeId> Cfg::succEdges(Loc L) const {
  std::vector<EdgeId> Out;
  for (const auto &[Id, E] : edges())
    if (E.Src == L)
      Out.push_back(Id);
  return Out;
}

std::vector<EdgeId> Cfg::predEdges(Loc L) const {
  std::vector<EdgeId> Out;
  for (const auto &[Id, E] : edges())
    if (E.Dst == L)
      Out.push_back(Id);
  return Out;
}

std::string Cfg::toString() const {
  std::ostringstream OS;
  OS << "entry=l" << Entry << " exit=l" << Exit << "\n";
  for (const auto &[Id, E] : edges())
    OS << "  [e" << Id << "] l" << E.Src << " --{" << E.Label.toString()
       << "}--> l" << E.Dst << "\n";
  return OS.str();
}

std::string Cfg::toDot(const std::string &Title) const {
  std::ostringstream OS;
  OS << "digraph \"" << Title << "\" {\n";
  OS << "  l" << Entry << " [shape=doublecircle];\n";
  OS << "  l" << Exit << " [shape=doubleoctagon];\n";
  for (const auto &[Id, E] : edges()) {
    (void)Id;
    OS << "  l" << E.Src << " -> l" << E.Dst << " [label=\""
       << E.Label.toString() << "\"];\n";
  }
  OS << "}\n";
  return OS.str();
}
