//===-- cfg/edits.cpp - Structured CFG edit operations --------------------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cfg/edits.h"

#include "cfg/cfg_analysis.h"

#include <cassert>

using namespace dai;

bool dai::replaceEdgeStmt(Cfg &G, EdgeId Id, Stmt NewStmt) {
  return G.replaceStmt(Id, std::move(NewStmt));
}

namespace {

/// Splices a fresh location after L (the hammock's exit): L's outgoing edges
/// are re-sourced at the fresh location. For loop headers the splice is
/// performed *before* the loop instead (re-targeting incoming forward edges),
/// because moving a header's exit edges onto a body location would create
/// loop exits from non-header locations, which the DAIG naming scheme (and
/// the paper's, footnote 5) does not support. Returns {hammockEnd,
/// hammockStart}: new code goes between hammockStart and hammockEnd.
std::pair<Loc, Loc> spliceAt(Cfg &G, Loc L) {
  assert(L != G.exit() && "cannot insert code after the procedure exit");
  // Loop headers are identified by genuine (dominance-based) back edges —
  // merely sitting on a cycle does not make a location a header. The cached
  // snapshot is pinned BEFORE the mutations below invalidate it: pre-edit
  // facts are exactly what the splice decision needs, and between edits the
  // probe is a version compare, not a fresh analyzeCfg.
  std::shared_ptr<const CfgInfo> Info = G.infoShared();
  assert(Info->valid() && "edits require a well-formed CFG");
  Loc M = G.addLoc();
  if (Info->isLoopHead(L)) {
    // Splice before the header: forward in-edges now enter M; the new code
    // runs once, before the loop. The back edge keeps targeting L.
    for (EdgeId Id : G.predEdges(L))
      if (!Info->BackEdges.count(Id))
        G.redirectDst(Id, M);
    return {L, M}; // code goes M → ... → L
  }
  for (EdgeId Id : G.succEdges(L))
    G.redirectSrc(Id, M);
  return {M, L}; // code goes L → ... → M
}

} // namespace

InsertResult dai::insertStmtAt(Cfg &G, Loc L, Stmt S) {
  InsertResult R;
  auto [End, Start] = spliceAt(G, L);
  R.HammockExit = End;
  R.FirstNewEdge = G.addEdge(Start, End, std::move(S));
  return R;
}

InsertResult dai::insertIfAt(Cfg &G, Loc L, ExprPtr Cond, Stmt Then,
                             Stmt Else) {
  InsertResult R;
  auto [End, Start] = spliceAt(G, L);
  R.HammockExit = End;
  Loc ThenEntry = G.addLoc();
  Loc ElseEntry = G.addLoc();
  R.FirstNewEdge = G.addEdge(Start, ThenEntry, Stmt::mkAssume(Cond));
  G.addEdge(Start, ElseEntry, Stmt::mkAssume(negate(Cond)));
  G.addEdge(ThenEntry, End, std::move(Then));
  G.addEdge(ElseEntry, End, std::move(Else));
  return R;
}

InsertResult dai::insertWhileAt(Cfg &G, Loc L, ExprPtr Cond, Stmt Body) {
  InsertResult R;
  auto [End, Start] = spliceAt(G, L);
  R.HammockExit = End;
  Loc Head = G.addLoc();
  Loc BodyEntry = G.addLoc();
  R.FirstNewEdge = G.addEdge(Start, Head, Stmt::mkSkip());
  G.addEdge(Head, BodyEntry, Stmt::mkAssume(Cond));
  G.addEdge(Head, End, Stmt::mkAssume(negate(Cond)));
  G.addEdge(BodyEntry, Head, std::move(Body)); // single back edge
  return R;
}
