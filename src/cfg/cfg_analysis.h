//===-- cfg/cfg_analysis.h - Dominators, loops, reducibility ----*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural analysis of a CFG: dominators, back edges, natural loops, loop
/// nesting, forward-edge indexing, and join points — all the ingredients of
/// DAIG construction (Definition A.2 of the paper) and of the paper's
/// well-formedness requirement that programs be reducible flow graphs.
///
/// Definitions follow Appendix A: edges partition into forward edges E_f and
/// back edges E_b (Dst dominates Src); each back edge determines a natural
/// loop; join points are locations with *forward* in-degree ≥ 2 (a loop head
/// with a single non-loop predecessor is not a join).
///
//===----------------------------------------------------------------------===//

#ifndef DAI_CFG_CFG_ANALYSIS_H
#define DAI_CFG_CFG_ANALYSIS_H

#include "cfg/cfg.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace dai {

/// Immutable structural facts about one CFG snapshot.
///
/// Produced by analyzeCfg; check valid() before use. An invalid CfgInfo
/// carries a diagnostic in Error (e.g. irreducible control flow, multiple
/// back edges into one header), matching the paper's well-formedness
/// preconditions rather than silently misanalyzing.
struct CfgInfo {
  uint64_t CfgVersion = 0;     ///< Cfg::version() this was computed from.
  std::string Error;           ///< Empty iff the CFG is well-formed.

  std::vector<bool> Reachable; ///< Per-location reachability from entry.
  std::vector<Loc> Rpo;        ///< Reverse postorder of reachable locations.
  std::vector<uint32_t> RpoIndex; ///< Loc → index in Rpo (or ~0u).
  std::vector<Loc> Idom;       ///< Immediate dominator (entry maps to itself).

  std::set<EdgeId> BackEdges;  ///< E_b: edges whose Dst dominates their Src.
  std::map<Loc, EdgeId> LoopBackEdge;   ///< Loop head → its unique back edge.
  std::map<Loc, std::set<Loc>> NaturalLoops; ///< Head → body (incl. head).
  /// Loc → enclosing loop heads, outermost first. A loop head's own loop is
  /// included (last element).
  std::vector<std::vector<Loc>> LoopNestOf;

  /// Loc → forward in-edges, ordered by EdgeId; the 1-based position in this
  /// vector is the paper's fwd-edges-to index.
  std::map<Loc, std::vector<EdgeId>> FwdEdgesTo;
  std::set<Loc> JoinPoints;    ///< L⊔: forward in-degree ≥ 2.

  bool valid() const { return Error.empty(); }

  bool isLoopHead(Loc L) const { return LoopBackEdge.count(L) != 0; }
  bool inAnyLoop(Loc L) const {
    return L < LoopNestOf.size() && !LoopNestOf[L].empty();
  }
  /// Nesting depth (number of enclosing loops, counting a head's own loop).
  size_t loopDepth(Loc L) const {
    return L < LoopNestOf.size() ? LoopNestOf[L].size() : 0;
  }
  bool isJoin(Loc L) const { return JoinPoints.count(L) != 0; }
  bool dominates(Loc A, Loc B) const;

  /// 1-based fwd-edges-to index of edge \p Id into its destination, or 0 if
  /// \p Id is a back edge.
  unsigned fwdIndexOf(const Cfg &G, EdgeId Id) const;
};

/// Computes structural facts for \p G. Never fails hard: inspect valid().
CfgInfo analyzeCfg(const Cfg &G);

} // namespace dai

#endif // DAI_CFG_CFG_ANALYSIS_H
