//===-- cfg/cfg_analysis.cpp - Dominators, loops, reducibility ------------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cfg/cfg_analysis.h"

#include <algorithm>
#include <cassert>

using namespace dai;

bool CfgInfo::dominates(Loc A, Loc B) const {
  // Walk the dominator tree upward from B. The entry dominates everything,
  // and Idom[entry] == entry terminates the walk.
  if (B >= Idom.size() || !Reachable[B] || !Reachable[A])
    return false;
  Loc Cur = B;
  for (;;) {
    if (Cur == A)
      return true;
    Loc Up = Idom[Cur];
    if (Up == Cur)
      return false;
    Cur = Up;
  }
}

unsigned CfgInfo::fwdIndexOf(const Cfg &G, EdgeId Id) const {
  const CfgEdge *E = G.findEdge(Id);
  if (!E || BackEdges.count(Id))
    return 0;
  auto It = FwdEdgesTo.find(E->Dst);
  if (It == FwdEdgesTo.end())
    return 0;
  const auto &Vec = It->second;
  auto Pos = std::find(Vec.begin(), Vec.end(), Id);
  return Pos == Vec.end() ? 0 : static_cast<unsigned>(Pos - Vec.begin()) + 1;
}

namespace {

/// Builds per-location successor/predecessor edge-id lists (EdgeId order).
struct Adjacency {
  std::vector<std::vector<EdgeId>> Succ, Pred;

  Adjacency(const Cfg &G) {
    Succ.resize(G.numLocs());
    Pred.resize(G.numLocs());
    for (const auto &[Id, E] : G.edges()) {
      Succ[E.Src].push_back(Id);
      Pred[E.Dst].push_back(Id);
    }
  }
};

/// Iterative DFS computing postorder over reachable locations.
void computePostorder(const Cfg &G, const Adjacency &Adj,
                      std::vector<Loc> &Post, std::vector<bool> &Reachable) {
  Reachable.assign(G.numLocs(), false);
  std::vector<std::pair<Loc, size_t>> Stack;
  Stack.emplace_back(G.entry(), 0);
  Reachable[G.entry()] = true;
  while (!Stack.empty()) {
    auto &[L, NextIdx] = Stack.back();
    if (NextIdx < Adj.Succ[L].size()) {
      EdgeId Id = Adj.Succ[L][NextIdx++];
      Loc To = G.findEdge(Id)->Dst;
      if (!Reachable[To]) {
        Reachable[To] = true;
        Stack.emplace_back(To, 0);
      }
      continue;
    }
    Post.push_back(L);
    Stack.pop_back();
  }
}

} // namespace

CfgInfo dai::analyzeCfg(const Cfg &G) {
  CfgInfo Info;
  Info.CfgVersion = G.version();

  Adjacency Adj(G);

  // Reverse postorder and reachability.
  std::vector<Loc> Post;
  computePostorder(G, Adj, Post, Info.Reachable);
  Info.Rpo.assign(Post.rbegin(), Post.rend());
  Info.RpoIndex.assign(G.numLocs(), ~0u);
  for (uint32_t I = 0; I < Info.Rpo.size(); ++I)
    Info.RpoIndex[Info.Rpo[I]] = I;

  // Dominators: Cooper-Harvey-Kennedy iterative algorithm over RPO.
  Info.Idom.assign(G.numLocs(), InvalidLoc);
  Info.Idom[G.entry()] = G.entry();
  auto intersect = [&](Loc A, Loc B) {
    while (A != B) {
      while (Info.RpoIndex[A] > Info.RpoIndex[B])
        A = Info.Idom[A];
      while (Info.RpoIndex[B] > Info.RpoIndex[A])
        B = Info.Idom[B];
    }
    return A;
  };
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (Loc L : Info.Rpo) {
      if (L == G.entry())
        continue;
      Loc NewIdom = InvalidLoc;
      for (EdgeId Id : Adj.Pred[L]) {
        Loc P = G.findEdge(Id)->Src;
        if (!Info.Reachable[P] || Info.Idom[P] == InvalidLoc)
          continue;
        NewIdom = (NewIdom == InvalidLoc) ? P : intersect(NewIdom, P);
      }
      if (NewIdom != InvalidLoc && Info.Idom[L] != NewIdom) {
        Info.Idom[L] = NewIdom;
        Changed = true;
      }
    }
  }

  // Back edges: Dst dominates Src. The paper (footnote 7) assumes at most
  // one back edge per header, which structured lowering guarantees.
  for (const auto &[Id, E] : G.edges()) {
    if (!Info.Reachable[E.Src])
      continue;
    if (Info.dominates(E.Dst, E.Src)) {
      Info.BackEdges.insert(Id);
      auto [It, Inserted] = Info.LoopBackEdge.emplace(E.Dst, Id);
      (void)It;
      if (!Inserted) {
        Info.Error = "multiple back edges into location l" +
                     std::to_string(E.Dst) +
                     " (unsupported; merge them with a structured loop)";
        return Info;
      }
    }
  }

  // Reducibility: the graph without back edges must be acyclic. Detect via
  // Kahn's algorithm restricted to reachable locations and forward edges.
  {
    std::vector<uint32_t> InDeg(G.numLocs(), 0);
    uint32_t NumReachable = 0;
    for (Loc L = 0; L < G.numLocs(); ++L)
      if (Info.Reachable[L])
        ++NumReachable;
    for (const auto &[Id, E] : G.edges())
      if (!Info.BackEdges.count(Id) && Info.Reachable[E.Src])
        ++InDeg[E.Dst];
    std::vector<Loc> Work;
    for (Loc L = 0; L < G.numLocs(); ++L)
      if (Info.Reachable[L] && InDeg[L] == 0)
        Work.push_back(L);
    uint32_t Seen = 0;
    while (!Work.empty()) {
      Loc L = Work.back();
      Work.pop_back();
      ++Seen;
      for (EdgeId Id : Adj.Succ[L]) {
        if (Info.BackEdges.count(Id))
          continue;
        Loc To = G.findEdge(Id)->Dst;
        if (--InDeg[To] == 0)
          Work.push_back(To);
      }
    }
    if (Seen != NumReachable) {
      Info.Error = "irreducible control flow: a cycle remains after removing "
                   "back edges";
      return Info;
    }
  }

  // Natural loops: body of back edge Src→Head is {Head} ∪ all locations that
  // reach Src without passing through Head (reverse traversal from Src).
  for (const auto &[Head, BackId] : Info.LoopBackEdge) {
    const CfgEdge *Back = G.findEdge(BackId);
    std::set<Loc> Body = {Head};
    std::vector<Loc> Work;
    if (Back->Src != Head) {
      Body.insert(Back->Src);
      Work.push_back(Back->Src);
    }
    while (!Work.empty()) {
      Loc L = Work.back();
      Work.pop_back();
      for (EdgeId Id : Adj.Pred[L]) {
        Loc P = G.findEdge(Id)->Src;
        if (!Info.Reachable[P] || Body.count(P))
          continue;
        Body.insert(P);
        Work.push_back(P);
      }
    }
    Info.NaturalLoops[Head] = std::move(Body);
  }

  // Loop nesting per location, outermost first. Nested loop bodies are
  // strictly contained in their enclosing bodies, so ordering by decreasing
  // body size is a correct outermost-first order.
  Info.LoopNestOf.assign(G.numLocs(), {});
  for (Loc L = 0; L < G.numLocs(); ++L) {
    if (!Info.Reachable[L])
      continue;
    std::vector<Loc> Heads;
    for (const auto &[Head, Body] : Info.NaturalLoops)
      if (Body.count(L))
        Heads.push_back(Head);
    std::sort(Heads.begin(), Heads.end(), [&](Loc A, Loc B) {
      size_t SA = Info.NaturalLoops[A].size(), SB = Info.NaturalLoops[B].size();
      if (SA != SB)
        return SA > SB;
      return A < B;
    });
    Info.LoopNestOf[L] = std::move(Heads);
  }

  // Forward-edge indexing and join points.
  for (const auto &[Id, E] : G.edges()) {
    if (Info.BackEdges.count(Id) || !Info.Reachable[E.Src])
      continue;
    Info.FwdEdgesTo[E.Dst].push_back(Id); // edges() iteration is EdgeId-ordered
  }
  for (const auto &[L, Ids] : Info.FwdEdgesTo)
    if (Ids.size() >= 2)
      Info.JoinPoints.insert(L);

  return Info;
}

//===----------------------------------------------------------------------===//
// Cached structural facts (Cfg::info)
//===----------------------------------------------------------------------===//

// Defined here rather than in cfg.cpp because they need CfgInfo complete.
// The cache key is structuralVersion(): statement-only edits (replaceStmt)
// keep it, so between two structural edits every consumer — DAIG
// construction across all engine instances, edits.cpp's splice-point probe,
// the workload generator's reachability sampling — shares ONE derivation of
// dominators, loops, and RPO instead of each re-running analyzeCfg.

std::shared_ptr<const CfgInfo> Cfg::infoShared() const {
  if (!InfoCache || InfoCacheVersion != StructVersion) {
    InfoCache = std::make_shared<const CfgInfo>(analyzeCfg(*this));
    InfoCacheVersion = StructVersion;
  }
  return InfoCache;
}

const CfgInfo &Cfg::info() const { return *infoShared(); }
