//===-- cfg/program.h - Functions and whole programs ------------*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Function is a named CFG with parameters; a Program is an ordered map of
/// functions. Return statements lower to an assignment of the distinguished
/// return variable (RetVar) followed by a jump to the CFG exit, so a
/// function's "summary" is the abstract value of RetVar at its exit cell.
///
//===----------------------------------------------------------------------===//

#ifndef DAI_CFG_PROGRAM_H
#define DAI_CFG_PROGRAM_H

#include "cfg/cfg.h"

#include <map>
#include <string>
#include <vector>

namespace dai {

/// The distinguished variable receiving `return e;` values.
inline const std::string RetVar = "__ret";

/// A named procedure: parameters plus a control-flow graph.
struct Function {
  std::string Name;
  std::vector<std::string> Params;
  Cfg Body;
};

/// A whole program: functions by name (deterministic iteration order).
struct Program {
  std::map<std::string, Function> Functions;

  Function *find(const std::string &Name) {
    auto It = Functions.find(Name);
    return It == Functions.end() ? nullptr : &It->second;
  }
  const Function *find(const std::string &Name) const {
    auto It = Functions.find(Name);
    return It == Functions.end() ? nullptr : &It->second;
  }
};

} // namespace dai

#endif // DAI_CFG_PROGRAM_H
