//===-- cfg/cfg.h - Control-flow graphs -------------------------*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Control-flow graphs per Fig. 5 of the paper: a program is ⟨L, E, ℓ0⟩ — a
/// set of locations, statement-labelled directed edges, and an initial
/// location. We additionally carry a distinguished exit location (procedure
/// return point), which the paper's examples use implicitly (ℓret).
///
/// Edges carry stable unique identities (EdgeId) so that program edits can
/// address "the statement on edge #k" across CFG mutations, and so that join
/// input indices (fwd-edges-to) are deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef DAI_CFG_CFG_H
#define DAI_CFG_CFG_H

#include "lang/stmt.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dai {

/// A program location (ℓ ∈ Loc). Dense small integers, unique per Cfg.
using Loc = uint32_t;
inline constexpr Loc InvalidLoc = ~0u;

/// Stable identity of a control-flow edge across edits.
using EdgeId = uint32_t;
inline constexpr EdgeId InvalidEdgeId = ~0u;

/// A statement-labelled control-flow edge ℓ —[s]→ ℓ'.
struct CfgEdge {
  EdgeId Id = InvalidEdgeId;
  Loc Src = InvalidLoc;
  Loc Dst = InvalidLoc;
  Stmt Label;
};

/// A mutable control-flow graph with stable location and edge identities.
///
/// Invariants maintained by the mutation API:
///   - Entry and Exit are allocated locations.
///   - Edge endpoints are allocated locations.
/// Well-formedness beyond that (reachability, reducibility) is checked by
/// CfgInfo (cfg/cfg_analysis.h), since arbitrary edit sequences are validated
/// rather than prevented.
class Cfg {
public:
  Cfg();

  Loc entry() const { return Entry; }
  Loc exit() const { return Exit; }

  /// Allocates a fresh location.
  Loc addLoc();

  /// Adds an edge Src —[Label]→ Dst and returns its stable id.
  EdgeId addEdge(Loc Src, Loc Dst, Stmt Label);

  /// Replaces the statement labelling edge \p Id. Returns false if no such
  /// edge exists.
  bool replaceStmt(EdgeId Id, Stmt NewLabel);

  /// Redirects the source of edge \p Id to \p NewSrc (used by structured
  /// statement insertion, which splices a fresh location into a path).
  bool redirectSrc(EdgeId Id, Loc NewSrc);

  /// Redirects the destination of edge \p Id to \p NewDst (used when
  /// splicing a hammock *before* a loop header).
  bool redirectDst(EdgeId Id, Loc NewDst);

  /// Removes edge \p Id entirely. Returns false if no such edge exists.
  bool removeEdge(EdgeId Id);

  const CfgEdge *findEdge(EdgeId Id) const;

  /// All edges, ordered by EdgeId (deterministic).
  const std::map<EdgeId, CfgEdge> &edges() const { return Edges; }

  /// Number of allocated locations (locations are 0..numLocs()-1).
  uint32_t numLocs() const { return NextLoc; }

  /// Outgoing edge ids of \p L, ordered by EdgeId.
  std::vector<EdgeId> succEdges(Loc L) const;
  /// Incoming edge ids of \p L, ordered by EdgeId.
  std::vector<EdgeId> predEdges(Loc L) const;

  /// Monotonically increasing counter bumped on every mutation; lets cached
  /// analyses (CfgInfo) detect staleness.
  uint64_t version() const { return Version; }

  /// Renders the CFG as readable text (one edge per line).
  std::string toString() const;

  /// Renders the CFG in Graphviz dot format.
  std::string toDot(const std::string &Title = "cfg") const;

private:
  Loc Entry;
  Loc Exit;
  uint32_t NextLoc = 0;
  EdgeId NextEdge = 0;
  uint64_t Version = 0;
  std::map<EdgeId, CfgEdge> Edges;
};

} // namespace dai

#endif // DAI_CFG_CFG_H
