//===-- cfg/cfg.h - Control-flow graphs -------------------------*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Control-flow graphs per Fig. 5 of the paper: a program is ⟨L, E, ℓ0⟩ — a
/// set of locations, statement-labelled directed edges, and an initial
/// location. We additionally carry a distinguished exit location (procedure
/// return point), which the paper's examples use implicitly (ℓret).
///
/// Edges carry stable unique identities (EdgeId) so that program edits can
/// address "the statement on edge #k" across CFG mutations, and so that join
/// input indices (fwd-edges-to) are deterministic.
///
/// Storage: edges live in a dense vector indexed by EdgeId (ids are
/// allocated 0, 1, 2, … and never reused), so findEdge — the single hottest
/// CFG query in the Fig. 10 profile, called per statement-cell naming and
/// per DAIG construction edge — is one bounds check plus one array load
/// instead of a red-black-tree probe. removeEdge tombstones its slot
/// (Id == InvalidEdgeId); edges() is a skipping view over live slots that
/// still iterates in ascending-EdgeId order and yields the same
/// (id, edge) structured bindings the old map did. Tombstones are bounded by
/// deletions, and the structured-edit API only ever adds edges, so the
/// vector stays effectively dense in practice.
///
/// Structural facts (dominators, loops, RPO — see cfg/cfg_analysis.h) are
/// cached on the graph keyed by structuralVersion(), which statement-only
/// edits do NOT bump: replaceStmt changes a label, never the shape, so every
/// analyzeCfg consumer between two structural edits shares one derivation
/// (the generator's location sampling, edits.cpp's splice-point probe, and
/// each per-instance DAIG used to re-derive it independently).
///
//===----------------------------------------------------------------------===//

#ifndef DAI_CFG_CFG_H
#define DAI_CFG_CFG_H

#include "lang/stmt.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dai {

/// A program location (ℓ ∈ Loc). Dense small integers, unique per Cfg.
using Loc = uint32_t;
inline constexpr Loc InvalidLoc = ~0u;

/// Stable identity of a control-flow edge across edits.
using EdgeId = uint32_t;
inline constexpr EdgeId InvalidEdgeId = ~0u;

/// A statement-labelled control-flow edge ℓ —[s]→ ℓ'.
struct CfgEdge {
  EdgeId Id = InvalidEdgeId;
  Loc Src = InvalidLoc;
  Loc Dst = InvalidLoc;
  Stmt Label;
};

struct CfgInfo; // cfg/cfg_analysis.h

/// A mutable control-flow graph with stable location and edge identities.
///
/// Invariants maintained by the mutation API:
///   - Entry and Exit are allocated locations.
///   - Edge endpoints are allocated locations.
/// Well-formedness beyond that (reachability, reducibility) is checked by
/// CfgInfo (cfg/cfg_analysis.h), since arbitrary edit sequences are validated
/// rather than prevented.
class Cfg {
public:
  /// Read-only view over the live edges, in ascending-EdgeId order. Yields
  /// (EdgeId, const CfgEdge &) pairs so range-for destructuring matches the
  /// old map interface; size() is the live-edge count (tombstones excluded).
  class EdgeRange {
  public:
    class iterator {
    public:
      using value_type = std::pair<EdgeId, const CfgEdge &>;

      iterator(const std::vector<CfgEdge> *Vec, size_t I) : Vec(Vec), I(I) {
        skipDead();
      }
      value_type operator*() const { return {(*Vec)[I].Id, (*Vec)[I]}; }
      iterator &operator++() {
        ++I;
        skipDead();
        return *this;
      }
      bool operator==(const iterator &O) const { return I == O.I; }
      bool operator!=(const iterator &O) const { return I != O.I; }

    private:
      void skipDead() {
        while (I < Vec->size() && (*Vec)[I].Id == InvalidEdgeId)
          ++I;
      }
      const std::vector<CfgEdge> *Vec;
      size_t I;
    };

    EdgeRange(const std::vector<CfgEdge> *Vec, size_t Live)
        : Vec(Vec), Live(Live) {}
    iterator begin() const { return iterator(Vec, 0); }
    iterator end() const { return iterator(Vec, Vec->size()); }
    size_t size() const { return Live; }
    bool empty() const { return Live == 0; }

  private:
    const std::vector<CfgEdge> *Vec;
    size_t Live;
  };

  Cfg();

  Loc entry() const { return Entry; }
  Loc exit() const { return Exit; }

  /// Allocates a fresh location.
  Loc addLoc();

  /// Adds an edge Src —[Label]→ Dst and returns its stable id.
  EdgeId addEdge(Loc Src, Loc Dst, Stmt Label);

  /// Replaces the statement labelling edge \p Id. Returns false if no such
  /// edge exists. A statement-only edit: bumps version() but NOT
  /// structuralVersion(), so the cached CfgInfo survives.
  bool replaceStmt(EdgeId Id, Stmt NewLabel);

  /// Redirects the source of edge \p Id to \p NewSrc (used by structured
  /// statement insertion, which splices a fresh location into a path).
  bool redirectSrc(EdgeId Id, Loc NewSrc);

  /// Redirects the destination of edge \p Id to \p NewDst (used when
  /// splicing a hammock *before* a loop header).
  bool redirectDst(EdgeId Id, Loc NewDst);

  /// Removes edge \p Id entirely. Returns false if no such edge exists.
  bool removeEdge(EdgeId Id);

  /// O(1): one bounds check plus one dense array load (the ROADMAP's top
  /// non-closure cost was this as a map probe).
  const CfgEdge *findEdge(EdgeId Id) const {
    if (Id >= EdgesById.size() || EdgesById[Id].Id == InvalidEdgeId)
      return nullptr;
    return &EdgesById[Id];
  }

  /// All live edges, ordered by EdgeId (deterministic).
  EdgeRange edges() const { return EdgeRange(&EdgesById, LiveEdges); }

  /// Number of allocated locations (locations are 0..numLocs()-1).
  uint32_t numLocs() const { return NextLoc; }

  /// Outgoing edge ids of \p L, ordered by EdgeId.
  std::vector<EdgeId> succEdges(Loc L) const;
  /// Incoming edge ids of \p L, ordered by EdgeId.
  std::vector<EdgeId> predEdges(Loc L) const;

  /// Monotonically increasing counter bumped on every mutation; lets cached
  /// analyses detect staleness.
  uint64_t version() const { return Version; }

  /// Like version(), but bumped only by mutations that change the graph
  /// SHAPE (locations, edges, endpoints) — statement replacement keeps it.
  /// Structural facts (CfgInfo) depend only on the shape, so this is the
  /// cache key for info().
  uint64_t structuralVersion() const { return StructVersion; }

  /// Structural facts for the current shape, computed at most once per
  /// structuralVersion() and shared by every consumer (DAIG construction,
  /// splice-point probes, workload sampling). The reference is valid until
  /// the next structural mutation + info() call; use infoShared() to hold
  /// the snapshot across further edits.
  const CfgInfo &info() const;

  /// Shared-ownership form of info(): keeps this snapshot alive even after
  /// the graph mutates and recomputes (the DAIG pins its pre-edit facts
  /// this way until it explicitly refreshes).
  std::shared_ptr<const CfgInfo> infoShared() const;

  /// Renders the CFG as readable text (one edge per line).
  std::string toString() const;

  /// Renders the CFG in Graphviz dot format.
  std::string toDot(const std::string &Title = "cfg") const;

private:
  Loc Entry;
  Loc Exit;
  uint32_t NextLoc = 0;
  EdgeId NextEdge = 0;
  uint64_t Version = 0;
  uint64_t StructVersion = 0;
  /// Dense by EdgeId; removed edges are tombstoned (Id == InvalidEdgeId).
  std::vector<CfgEdge> EdgesById;
  size_t LiveEdges = 0;

  /// Lazily computed structural facts for StructVersion (see info()).
  /// shared_ptr so copies of the graph share the snapshot until either side
  /// mutates, and so consumers can pin a snapshot across recomputation.
  mutable std::shared_ptr<const CfgInfo> InfoCache;
  mutable uint64_t InfoCacheVersion = ~0ull;

  CfgEdge *liveEdge(EdgeId Id) {
    if (Id >= EdgesById.size() || EdgesById[Id].Id == InvalidEdgeId)
      return nullptr;
    return &EdgesById[Id];
  }
};

} // namespace dai

#endif // DAI_CFG_CFG_H
