//===-- cfg/lowering.cpp - AST → CFG lowering implementation --------------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cfg/lowering.h"

#include "lang/parser.h"

#include <cassert>

using namespace dai;

namespace {

/// Stateful lowering of one function body.
class Lowerer {
public:
  explicit Lowerer(Cfg &G) : G(G) {}

  /// Lowers \p S so control flows from \p From to \p To. Returns false when
  /// the statement never falls through (it returned), in which case nothing
  /// was connected to \p To by this statement.
  bool lower(const AstStmtPtr &S, Loc From, Loc To) {
    assert(S && "cannot lower a missing statement");
    switch (S->Kind) {
    case AstKind::Block:
      return lowerBlock(S->Children, From, To);
    case AstKind::Simple:
      G.addEdge(From, To, S->Atomic);
      return true;
    case AstKind::Return:
      G.addEdge(From, G.exit(), Stmt::mkAssign(RetVar, S->Cond));
      return false;
    case AstKind::If: {
      Loc ThenEntry = G.addLoc();
      Loc ElseEntry = G.addLoc();
      G.addEdge(From, ThenEntry, Stmt::mkAssume(S->Cond));
      G.addEdge(From, ElseEntry, Stmt::mkAssume(negate(S->Cond)));
      bool ThenFalls = lower(S->Children[0], ThenEntry, To);
      bool ElseFalls = lower(S->Children[1], ElseEntry, To);
      return ThenFalls || ElseFalls;
    }
    case AstKind::While: {
      // From becomes the loop head; a dedicated latch edge guarantees the
      // header has exactly one back edge even when the body branches.
      Loc Head = From;
      Loc BodyEntry = G.addLoc();
      Loc Latch = G.addLoc();
      G.addEdge(Head, BodyEntry, Stmt::mkAssume(S->Cond));
      G.addEdge(Head, To, Stmt::mkAssume(negate(S->Cond)));
      if (lower(S->Children[0], BodyEntry, Latch))
        G.addEdge(Latch, Head, Stmt::mkSkip());
      return true;
    }
    }
    assert(false && "unknown AST statement kind");
    return true;
  }

private:
  Cfg &G;

  bool lowerBlock(const std::vector<AstStmtPtr> &Stmts, Loc From, Loc To) {
    if (Stmts.empty()) {
      G.addEdge(From, To, Stmt::mkSkip());
      return true;
    }
    Loc Cur = From;
    for (size_t I = 0, E = Stmts.size(); I != E; ++I) {
      Loc Next = (I + 1 == E) ? To : G.addLoc();
      if (!lower(Stmts[I], Cur, Next))
        return false; // Code after a return is dead: drop it.
      Cur = Next;
    }
    return true;
  }
};

} // namespace

Function dai::lowerFunction(const FunctionAst &Ast) {
  Function F;
  F.Name = Ast.Name;
  F.Params = Ast.Params;
  Lowerer L(F.Body);
  if (L.lower(Ast.Body, F.Body.entry(), F.Body.exit())) {
    // The body fell through without an explicit return: return 0, so that
    // the exit location always carries a defined __ret.
    // (The fall-through edge into exit() already exists; nothing to add —
    // lower() connected the last statement to exit directly.)
  }
  return F;
}

LowerResult dai::lowerProgram(const ProgramAst &Ast) {
  LowerResult R;
  for (const auto &FAst : Ast.Functions) {
    if (R.Prog.Functions.count(FAst.Name)) {
      R.Error = "duplicate function definition: " + FAst.Name;
      return R;
    }
    R.Prog.Functions.emplace(FAst.Name, lowerFunction(FAst));
  }
  return R;
}

LowerResult dai::frontend(std::string_view Source) {
  ParseResult P = parseProgram(Source);
  if (!P.ok()) {
    LowerResult R;
    R.Error = P.Error;
    return R;
  }
  return lowerProgram(P.Program);
}
