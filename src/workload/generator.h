//===-- workload/generator.h - Synthetic edit workloads ---------*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The synthetic workload of the paper's scalability study (Section 7.3):
/// random edits to an initially-empty program, where an edit inserts a
/// randomly generated statement (85%), if-then-else conditional (10%), or
/// while loop (5%) at a randomly sampled program location, with statements
/// and expressions generated probabilistically from their grammars; five
/// randomly sampled query locations between edits. Programs are drawn from
/// the same JavaScript subset: assignment, arrays, conditional branching,
/// while loops, and non-recursive first-order calls `x = f(y)`.
///
/// Everything is driven by the deterministic Rng (support/rng.h), so a fixed
/// seed reproduces the identical edit/query sequence across configurations —
/// exactly how the paper compares its four configurations.
///
//===----------------------------------------------------------------------===//

#ifndef DAI_WORKLOAD_GENERATOR_H
#define DAI_WORKLOAD_GENERATOR_H

#include "cfg/cfg_analysis.h"
#include "cfg/edits.h"
#include "cfg/program.h"
#include "support/rng.h"

#include <string>
#include <vector>

namespace dai {

/// Tunables for workload generation (defaults follow Section 7.3).
struct WorkloadOptions {
  uint64_t Seed = 1;
  unsigned NumVars = 8;        ///< Variable pool size.
  unsigned PctStmt = 85;       ///< Statement-insertion probability.
  unsigned PctIf = 10;         ///< If-insertion probability.
  unsigned PctWhile = 5;       ///< While-insertion probability (remainder).
  unsigned PctCallStmt = 8;    ///< Within statements: x = f(y) probability.
  unsigned PctArrayStmt = 10;  ///< Within statements: array ops probability.
  unsigned PctAssertStmt = 0;  ///< Within statements: assert(c) probability.
                               ///< Default 0 keeps the historical Section
                               ///< 7.3 edit sequences bit-identical; the
                               ///< checker workloads opt in.
  unsigned QueriesPerEdit = 5; ///< Random queries between edits.
  unsigned HelperCount = 3;    ///< Callable helper functions.
};

/// Kinds of edits the generator produces (Section 7.3's mix).
enum class EditKind : uint8_t { InsertStmt, InsertIf, InsertWhile };

/// A record of one applied edit, for logging, replay, and surgical DAIG
/// splicing (statement insertions carry the CFG splice description).
struct EditRecord {
  EditKind Kind;
  Loc At = InvalidLoc;
  InsertResult Splice;
};

/// Deterministic random program/edit/query generator.
class WorkloadGenerator {
public:
  explicit WorkloadGenerator(WorkloadOptions Opts);

  /// Builds the initial program: an (empty) `main` plus HelperCount callable
  /// helpers with simple bodies.
  Program makeInitialProgram();

  /// Applies one random edit to `main` of \p P (insertion of a statement,
  /// conditional, or loop at a random location). Structural by construction,
  /// mirroring the paper's workload.
  EditRecord applyRandomEdit(Program &P);

  /// Samples \p N random reachable query locations in `main`.
  std::vector<Loc> sampleQueryLocations(const Program &P, unsigned N);

  /// Random statement / condition from the grammar (exposed for tests).
  Stmt randomStmt();
  ExprPtr randomCondition();

  Rng &rng() { return R; }

  /// The variable pool the generator draws from ("v0" … "vN−1") — exposed
  /// so benches and tests can issue queries over the same names (e.g. the
  /// staged domain's sum-constraint query set).
  const std::vector<std::string> &varPool() const { return Vars; }

private:
  WorkloadOptions Opts;
  Rng R;
  std::vector<std::string> Vars;
  std::vector<std::string> Helpers;

  const std::string &randomVar();
  ExprPtr randomArithExpr(unsigned Depth);
  Loc sampleEditLocation(const Cfg &G);
};

} // namespace dai

#endif // DAI_WORKLOAD_GENERATOR_H
