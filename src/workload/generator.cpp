//===-- workload/generator.cpp - Synthetic edit workloads -----------------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "workload/generator.h"

#include "cfg/lowering.h"
#include "lang/parser.h"

#include <cassert>

using namespace dai;

WorkloadGenerator::WorkloadGenerator(WorkloadOptions Options)
    : Opts(Options), R(Options.Seed) {
  assert(Opts.NumVars > 0 && "need at least one variable");
  for (unsigned I = 0; I < Opts.NumVars; ++I)
    Vars.push_back("v" + std::to_string(I));
  for (unsigned I = 0; I < Opts.HelperCount; ++I)
    Helpers.push_back("h" + std::to_string(I));
}

const std::string &WorkloadGenerator::randomVar() {
  return Vars[R.below(Vars.size())];
}

ExprPtr WorkloadGenerator::randomArithExpr(unsigned Depth) {
  // Leaning toward octagon-representable forms (±x ± y + c) with occasional
  // nonlinear subterms, mirroring "generated probabilistically from their
  // respective grammars".
  if (Depth == 0 || R.percent(40)) {
    if (R.percent(50))
      return Expr::mkVar(randomVar());
    return Expr::mkInt(R.range(-10, 10));
  }
  unsigned Pick = static_cast<unsigned>(R.below(100));
  if (Pick < 40)
    return Expr::mkBinary(BinaryOp::Add, randomArithExpr(Depth - 1),
                          randomArithExpr(Depth - 1));
  if (Pick < 70)
    return Expr::mkBinary(BinaryOp::Sub, randomArithExpr(Depth - 1),
                          randomArithExpr(Depth - 1));
  if (Pick < 80)
    return Expr::mkBinary(BinaryOp::Mul, Expr::mkInt(R.range(-3, 3)),
                          randomArithExpr(Depth - 1));
  if (Pick < 90)
    return Expr::mkUnary(UnaryOp::Neg, randomArithExpr(Depth - 1));
  return Expr::mkBinary(BinaryOp::Mul, randomArithExpr(Depth - 1),
                        randomArithExpr(Depth - 1));
}

ExprPtr WorkloadGenerator::randomCondition() {
  BinaryOp Cmp;
  switch (R.below(6)) {
  case 0: Cmp = BinaryOp::Lt; break;
  case 1: Cmp = BinaryOp::Le; break;
  case 2: Cmp = BinaryOp::Gt; break;
  case 3: Cmp = BinaryOp::Ge; break;
  case 4: Cmp = BinaryOp::Eq; break;
  default: Cmp = BinaryOp::Ne; break;
  }
  ExprPtr Lhs = Expr::mkVar(randomVar());
  ExprPtr Rhs = R.percent(60) ? Expr::mkInt(R.range(-20, 20))
                              : Expr::mkVar(randomVar());
  ExprPtr Atom = Expr::mkBinary(Cmp, Lhs, Rhs);
  if (R.percent(15))
    return Expr::mkBinary(R.percent(50) ? BinaryOp::And : BinaryOp::Or, Atom,
                          Expr::mkBinary(BinaryOp::Lt,
                                         Expr::mkVar(randomVar()),
                                         Expr::mkInt(R.range(-20, 20))));
  return Atom;
}

Stmt WorkloadGenerator::randomStmt() {
  unsigned Pick = static_cast<unsigned>(R.below(100));
  // Assert first so enabling it shifts (not reshuffles) the other bands;
  // at the default PctAssertStmt=0 the draw sequence is unchanged.
  if (Pick < Opts.PctAssertStmt)
    return Stmt::mkAssert(randomCondition());
  Pick -= Opts.PctAssertStmt;
  if (Pick < Opts.PctCallStmt && !Helpers.empty()) {
    std::vector<ExprPtr> Args = {Expr::mkVar(randomVar())};
    return Stmt::mkCall(randomVar(), Helpers[R.below(Helpers.size())],
                        std::move(Args));
  }
  if (Pick < Opts.PctCallStmt + Opts.PctArrayStmt) {
    if (R.percent(40)) {
      // Fresh small array literal.
      std::vector<ExprPtr> Elems;
      unsigned N = static_cast<unsigned>(R.range(1, 4));
      for (unsigned I = 0; I < N; ++I)
        Elems.push_back(Expr::mkInt(R.range(-10, 10)));
      return Stmt::mkAssign(randomVar(), Expr::mkArray(std::move(Elems)));
    }
    if (R.percent(50))
      return Stmt::mkArrayWrite(randomVar(), randomArithExpr(1),
                                randomArithExpr(1));
    return Stmt::mkAssign(randomVar(),
                          Expr::mkIndex(Expr::mkVar(randomVar()),
                                        randomArithExpr(1)));
  }
  return Stmt::mkAssign(randomVar(), randomArithExpr(2));
}

Program WorkloadGenerator::makeInitialProgram() {
  // Helpers have small, loop-free numeric bodies; main starts (nearly)
  // empty, matching the paper's "initially-empty program".
  std::string Src;
  for (unsigned I = 0; I < Opts.HelperCount; ++I) {
    Src += "function h" + std::to_string(I) + "(x) {\n";
    switch (I % 3) {
    case 0:
      Src += "  return x + " + std::to_string(I + 1) + ";\n";
      break;
    case 1:
      Src += "  var y = x * 2;\n  if (y > 10) { y = 10; }\n  return y;\n";
      break;
    default:
      Src += "  var y = 0;\n  if (x > 0) { y = x; } else { y = 0 - x; }\n"
             "  return y;\n";
      break;
    }
    Src += "}\n";
  }
  Src += "function main() {\n  var v0 = 0;\n  return v0;\n}\n";
  LowerResult LR = frontend(Src);
  assert(LR.ok() && "initial workload program must lower");
  return std::move(LR.Prog);
}

Loc WorkloadGenerator::sampleEditLocation(const Cfg &G) {
  const CfgInfo &Info = G.info();
  std::vector<Loc> Candidates;
  for (Loc L = 0; L < G.numLocs(); ++L)
    if (Info.Reachable[L] && L != G.exit())
      Candidates.push_back(L);
  assert(!Candidates.empty() && "no insertable location");
  return Candidates[R.below(Candidates.size())];
}

EditRecord WorkloadGenerator::applyRandomEdit(Program &P) {
  Function *Main = P.find("main");
  assert(Main && "workload programs have a main");
  Cfg &G = Main->Body;
  EditRecord Rec;
  Rec.At = sampleEditLocation(G);
  unsigned Pick = static_cast<unsigned>(R.below(100));
  if (Pick < Opts.PctStmt) {
    Rec.Kind = EditKind::InsertStmt;
    Rec.Splice = insertStmtAt(G, Rec.At, randomStmt());
  } else if (Pick < Opts.PctStmt + Opts.PctIf) {
    Rec.Kind = EditKind::InsertIf;
    Rec.Splice = insertIfAt(G, Rec.At, randomCondition(), randomStmt(),
                            randomStmt());
  } else {
    Rec.Kind = EditKind::InsertWhile;
    // A bounded counting loop: guard `v < c` with a body that advances v,
    // so octagon analysis converges after a demanded unrolling or two.
    std::string V = randomVar();
    ExprPtr Guard = Expr::mkBinary(BinaryOp::Lt, Expr::mkVar(V),
                                   Expr::mkInt(R.range(1, 30)));
    Stmt Body = Stmt::mkAssign(
        V, Expr::mkBinary(BinaryOp::Add, Expr::mkVar(V),
                          Expr::mkInt(R.range(1, 3))));
    Rec.Splice = insertWhileAt(G, Rec.At, Guard, Body);
  }
  return Rec;
}

std::vector<Loc> WorkloadGenerator::sampleQueryLocations(const Program &P,
                                                         unsigned N) {
  const Function *Main = P.find("main");
  assert(Main && "workload programs have a main");
  const CfgInfo &Info = Main->Body.info();
  std::vector<Loc> Reachable;
  for (Loc L = 0; L < Main->Body.numLocs(); ++L)
    if (Info.Reachable[L])
      Reachable.push_back(L);
  std::vector<Loc> Out;
  for (unsigned I = 0; I < N && !Reachable.empty(); ++I)
    Out.push_back(Reachable[R.below(Reachable.size())]);
  return Out;
}
