//===-- lang/lexer.h - Tokenizer for the mini-language ----------*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written tokenizer. Produces a token stream with source positions for
/// diagnostics; unknown characters produce an Error token rather than
/// aborting, so the parser can report a located message.
///
//===----------------------------------------------------------------------===//

#ifndef DAI_LANG_LEXER_H
#define DAI_LANG_LEXER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dai {

enum class TokenKind : uint8_t {
  Eof, Error,
  Ident, IntLit,
  // Keywords.
  KwFunction, KwVar, KwIf, KwElse, KwWhile, KwReturn, KwPrint, KwNew,
  KwNull, KwTrue, KwFalse, KwList, KwAssert,
  // Punctuation and operators.
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Comma, Semi, Dot,
  Assign,                           // =
  Plus, Minus, Star, Slash, Percent,
  Lt, Le, Gt, Ge, EqEq, NotEq,
  AndAnd, OrOr, Not,
};

/// Returns a human-readable description of \p Kind for diagnostics.
const char *tokenKindName(TokenKind Kind);

struct Token {
  TokenKind Kind;
  std::string Text;  ///< Identifier spelling / integer digits / error message.
  int Line = 0;
  int Col = 0;
};

/// Tokenizes \p Source completely. The final token is always Eof (or Error,
/// in which case its Text explains the problem).
std::vector<Token> tokenize(std::string_view Source);

} // namespace dai

#endif // DAI_LANG_LEXER_H
