//===-- lang/expr.cpp - Expression language implementation ----------------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/expr.h"

#include "support/hashing.h"

#include <cassert>
#include <sstream>

using namespace dai;

const char *dai::spelling(UnaryOp Op) {
  switch (Op) {
  case UnaryOp::Neg: return "-";
  case UnaryOp::Not: return "!";
  }
  assert(false && "unknown unary operator");
  return "?";
}

const char *dai::spelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add: return "+";
  case BinaryOp::Sub: return "-";
  case BinaryOp::Mul: return "*";
  case BinaryOp::Div: return "/";
  case BinaryOp::Mod: return "%";
  case BinaryOp::Lt: return "<";
  case BinaryOp::Le: return "<=";
  case BinaryOp::Gt: return ">";
  case BinaryOp::Ge: return ">=";
  case BinaryOp::Eq: return "==";
  case BinaryOp::Ne: return "!=";
  case BinaryOp::And: return "&&";
  case BinaryOp::Or: return "||";
  }
  assert(false && "unknown binary operator");
  return "?";
}

bool dai::isComparison(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Lt:
  case BinaryOp::Le:
  case BinaryOp::Gt:
  case BinaryOp::Ge:
  case BinaryOp::Eq:
  case BinaryOp::Ne:
    return true;
  default:
    return false;
  }
}

ExprPtr Expr::mkInt(int64_t V) {
  auto E = std::make_shared<Expr>();
  E->Kind = ExprKind::IntLit;
  E->IntVal = V;
  return E;
}

ExprPtr Expr::mkBool(bool V) {
  auto E = std::make_shared<Expr>();
  E->Kind = ExprKind::BoolLit;
  E->BoolVal = V;
  return E;
}

ExprPtr Expr::mkNull() {
  auto E = std::make_shared<Expr>();
  E->Kind = ExprKind::NullLit;
  return E;
}

ExprPtr Expr::mkVar(std::string Name) {
  auto E = std::make_shared<Expr>();
  E->Kind = ExprKind::Var;
  E->Name = std::move(Name);
  return E;
}

ExprPtr Expr::mkUnary(UnaryOp Op, ExprPtr Sub) {
  auto E = std::make_shared<Expr>();
  E->Kind = ExprKind::Unary;
  E->UOp = Op;
  E->Lhs = std::move(Sub);
  return E;
}

ExprPtr Expr::mkBinary(BinaryOp Op, ExprPtr L, ExprPtr R) {
  auto E = std::make_shared<Expr>();
  E->Kind = ExprKind::Binary;
  E->BOp = Op;
  E->Lhs = std::move(L);
  E->Rhs = std::move(R);
  return E;
}

ExprPtr Expr::mkArray(std::vector<ExprPtr> Elems) {
  auto E = std::make_shared<Expr>();
  E->Kind = ExprKind::ArrayLit;
  E->Elems = std::move(Elems);
  return E;
}

ExprPtr Expr::mkIndex(ExprPtr Base, ExprPtr Idx) {
  auto E = std::make_shared<Expr>();
  E->Kind = ExprKind::Index;
  E->Lhs = std::move(Base);
  E->Rhs = std::move(Idx);
  return E;
}

ExprPtr Expr::mkField(ExprPtr Base, std::string Field) {
  auto E = std::make_shared<Expr>();
  E->Kind = ExprKind::FieldRead;
  E->Lhs = std::move(Base);
  E->Name = std::move(Field);
  return E;
}

bool dai::exprEquals(const ExprPtr &A, const ExprPtr &B) {
  if (A == B)
    return true;
  if (!A || !B)
    return false;
  if (A->Kind != B->Kind)
    return false;
  switch (A->Kind) {
  case ExprKind::IntLit:
    return A->IntVal == B->IntVal;
  case ExprKind::BoolLit:
    return A->BoolVal == B->BoolVal;
  case ExprKind::NullLit:
    return true;
  case ExprKind::Var:
    return A->Name == B->Name;
  case ExprKind::Unary:
    return A->UOp == B->UOp && exprEquals(A->Lhs, B->Lhs);
  case ExprKind::Binary:
    return A->BOp == B->BOp && exprEquals(A->Lhs, B->Lhs) &&
           exprEquals(A->Rhs, B->Rhs);
  case ExprKind::ArrayLit: {
    if (A->Elems.size() != B->Elems.size())
      return false;
    for (size_t I = 0, E = A->Elems.size(); I != E; ++I)
      if (!exprEquals(A->Elems[I], B->Elems[I]))
        return false;
    return true;
  }
  case ExprKind::Index:
    return exprEquals(A->Lhs, B->Lhs) && exprEquals(A->Rhs, B->Rhs);
  case ExprKind::FieldRead:
    return A->Name == B->Name && exprEquals(A->Lhs, B->Lhs);
  }
  assert(false && "unknown expression kind");
  return false;
}

uint64_t dai::exprHash(const ExprPtr &E) {
  if (!E)
    return 0x517cc1b727220a95ULL;
  uint64_t H = hashValues(static_cast<uint64_t>(E->Kind));
  switch (E->Kind) {
  case ExprKind::IntLit:
    return hashCombine(H, static_cast<uint64_t>(E->IntVal));
  case ExprKind::BoolLit:
    return hashCombine(H, E->BoolVal ? 1 : 2);
  case ExprKind::NullLit:
    return H;
  case ExprKind::Var:
    return hashCombine(H, hashString(E->Name));
  case ExprKind::Unary:
    H = hashCombine(H, static_cast<uint64_t>(E->UOp));
    return hashCombine(H, exprHash(E->Lhs));
  case ExprKind::Binary:
    H = hashCombine(H, static_cast<uint64_t>(E->BOp));
    H = hashCombine(H, exprHash(E->Lhs));
    return hashCombine(H, exprHash(E->Rhs));
  case ExprKind::ArrayLit:
    for (const auto &Elem : E->Elems)
      H = hashCombine(H, exprHash(Elem));
    return hashCombine(H, E->Elems.size());
  case ExprKind::Index:
    H = hashCombine(H, exprHash(E->Lhs));
    return hashCombine(H, hashCombine(exprHash(E->Rhs), 0xaaULL));
  case ExprKind::FieldRead:
    H = hashCombine(H, hashString(E->Name));
    return hashCombine(H, exprHash(E->Lhs));
  }
  assert(false && "unknown expression kind");
  return H;
}

namespace {

/// Precedence levels for printing with minimal parentheses.
int precedence(const Expr &E) {
  if (E.Kind != ExprKind::Binary)
    return 100;
  switch (E.BOp) {
  case BinaryOp::Or: return 1;
  case BinaryOp::And: return 2;
  case BinaryOp::Eq:
  case BinaryOp::Ne: return 3;
  case BinaryOp::Lt:
  case BinaryOp::Le:
  case BinaryOp::Gt:
  case BinaryOp::Ge: return 4;
  case BinaryOp::Add:
  case BinaryOp::Sub: return 5;
  case BinaryOp::Mul:
  case BinaryOp::Div:
  case BinaryOp::Mod: return 6;
  }
  return 100;
}

void print(const ExprPtr &E, std::ostringstream &OS, int ParentPrec) {
  if (!E) {
    OS << "<null-expr>";
    return;
  }
  switch (E->Kind) {
  case ExprKind::IntLit:
    OS << E->IntVal;
    return;
  case ExprKind::BoolLit:
    OS << (E->BoolVal ? "true" : "false");
    return;
  case ExprKind::NullLit:
    OS << "null";
    return;
  case ExprKind::Var:
    OS << E->Name;
    return;
  case ExprKind::Unary:
    OS << spelling(E->UOp);
    print(E->Lhs, OS, 99);
    return;
  case ExprKind::Binary: {
    int P = precedence(*E);
    bool Paren = P < ParentPrec;
    if (Paren)
      OS << "(";
    print(E->Lhs, OS, P);
    OS << " " << spelling(E->BOp) << " ";
    print(E->Rhs, OS, P + 1);
    if (Paren)
      OS << ")";
    return;
  }
  case ExprKind::ArrayLit: {
    OS << "[";
    bool First = true;
    for (const auto &Elem : E->Elems) {
      if (!First)
        OS << ", ";
      First = false;
      print(Elem, OS, 0);
    }
    OS << "]";
    return;
  }
  case ExprKind::Index:
    print(E->Lhs, OS, 100);
    OS << "[";
    print(E->Rhs, OS, 0);
    OS << "]";
    return;
  case ExprKind::FieldRead:
    print(E->Lhs, OS, 100);
    OS << "." << E->Name;
    return;
  }
}

} // namespace

std::string dai::exprToString(const ExprPtr &E) {
  std::ostringstream OS;
  print(E, OS, 0);
  return OS.str();
}

void dai::collectVars(const ExprPtr &E, std::set<std::string> &Out) {
  if (!E)
    return;
  if (E->Kind == ExprKind::Var)
    Out.insert(E->Name);
  collectVars(E->Lhs, Out);
  collectVars(E->Rhs, Out);
  for (const auto &Elem : E->Elems)
    collectVars(Elem, Out);
}

ExprPtr dai::negate(const ExprPtr &E) {
  assert(E && "cannot negate a missing expression");
  if (E->Kind == ExprKind::BoolLit)
    return Expr::mkBool(!E->BoolVal);
  if (E->Kind == ExprKind::Unary && E->UOp == UnaryOp::Not)
    return E->Lhs;
  if (E->Kind == ExprKind::Binary) {
    switch (E->BOp) {
    case BinaryOp::Lt: return Expr::mkBinary(BinaryOp::Ge, E->Lhs, E->Rhs);
    case BinaryOp::Le: return Expr::mkBinary(BinaryOp::Gt, E->Lhs, E->Rhs);
    case BinaryOp::Gt: return Expr::mkBinary(BinaryOp::Le, E->Lhs, E->Rhs);
    case BinaryOp::Ge: return Expr::mkBinary(BinaryOp::Lt, E->Lhs, E->Rhs);
    case BinaryOp::Eq: return Expr::mkBinary(BinaryOp::Ne, E->Lhs, E->Rhs);
    case BinaryOp::Ne: return Expr::mkBinary(BinaryOp::Eq, E->Lhs, E->Rhs);
    // De Morgan: !(a && b) == !a || !b.
    case BinaryOp::And:
      return Expr::mkBinary(BinaryOp::Or, negate(E->Lhs), negate(E->Rhs));
    case BinaryOp::Or:
      return Expr::mkBinary(BinaryOp::And, negate(E->Lhs), negate(E->Rhs));
    default:
      break;
    }
  }
  return Expr::mkUnary(UnaryOp::Not, E);
}
