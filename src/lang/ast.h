//===-- lang/ast.h - Structured AST for the mini-language -------*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured abstract syntax for the surface mini-language (the JavaScript
/// subset of the paper's evaluation: assignment, arrays, conditionals, while
/// loops, and non-recursive first-order calls `x = f(y)`).
///
/// The AST is produced by the parser (lang/parser.h) and consumed by the
/// AST→CFG lowering (cfg/lowering.h), which decomposes structured control
/// flow into assume-guarded CFG edges as in Fig. 2 of the paper.
///
//===----------------------------------------------------------------------===//

#ifndef DAI_LANG_AST_H
#define DAI_LANG_AST_H

#include "lang/expr.h"
#include "lang/stmt.h"

#include <memory>
#include <string>
#include <vector>

namespace dai {

struct AstStmt;
using AstStmtPtr = std::shared_ptr<const AstStmt>;

/// Structured statement kinds.
enum class AstKind : uint8_t {
  Block,      ///< Sequence of statements.
  Simple,     ///< An atomic statement (Assign/ArrayWrite/FieldWrite/...).
  If,         ///< `if (Cond) Then else Else` (Else may be empty Block).
  While,      ///< `while (Cond) Body`.
  Return,     ///< `return e;` — lowers to `__ret = e` + jump to exit.
};

/// A structured statement node.
struct AstStmt {
  AstKind Kind;
  Stmt Atomic;                       ///< Simple payload.
  ExprPtr Cond;                      ///< If/While condition; Return value.
  std::vector<AstStmtPtr> Children;  ///< Block members; If: {Then, Else};
                                     ///< While: {Body}.

  static AstStmtPtr mkBlock(std::vector<AstStmtPtr> Stmts);
  static AstStmtPtr mkSimple(Stmt S);
  static AstStmtPtr mkIf(ExprPtr Cond, AstStmtPtr Then, AstStmtPtr Else);
  static AstStmtPtr mkWhile(ExprPtr Cond, AstStmtPtr Body);
  static AstStmtPtr mkReturn(ExprPtr Value);
};

/// A function definition: `function Name(Params) Body`.
struct FunctionAst {
  std::string Name;
  std::vector<std::string> Params;
  AstStmtPtr Body;
};

/// A whole program: an ordered list of function definitions.
struct ProgramAst {
  std::vector<FunctionAst> Functions;

  /// Returns the function named \p Name, or nullptr if absent.
  const FunctionAst *find(const std::string &Name) const {
    for (const auto &F : Functions)
      if (F.Name == Name)
        return &F;
    return nullptr;
  }
};

/// Renders \p Prog as source text (round-trips through the parser).
std::string astToString(const ProgramAst &Prog);

} // namespace dai

#endif // DAI_LANG_AST_H
