//===-- lang/stmt.h - Atomic CFG statement language -------------*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The atomic statement language labelling CFG edges (the `Stmt` of Fig. 5).
/// Structured control flow (if/while) is lowered to `assume` edges by the
/// AST→CFG lowering pass, exactly as in Fig. 2 of the paper.
///
/// Statements support structural equality, hashing, and printing: DAIG names
/// and the auxiliary memo table key computations by statement content
/// (Section 5, names of the form ⟦·⟧♯·s·φ).
///
//===----------------------------------------------------------------------===//

#ifndef DAI_LANG_STMT_H
#define DAI_LANG_STMT_H

#include "lang/expr.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dai {

/// Atomic statement kinds.
enum class StmtKind : uint8_t {
  Skip,       ///< No-op (also used for deleted statements).
  Assign,     ///< `x = e` (e may contain field/array reads).
  Assume,     ///< `assume e` — branch guard edge.
  ArrayWrite, ///< `x[i] = e`.
  FieldWrite, ///< `x.next = y` (heap mutation; Rhs is a var or null).
  Alloc,      ///< `x = new List` — fresh list node with `next = null`.
  Call,       ///< `x = f(e1, ..., ek)` — static, non-virtual call.
  Print,      ///< `print(e)` — analysis no-op with a data dependence on e.
  Assert,     ///< `assert(e)` — checkable obligation; transfers refine like
              ///< `assume e` (execution aborts on failure), and the checker
              ///< pass evaluates e against the pre-state to raise alarms.
};

/// An atomic program statement. Value-type with structural semantics.
struct Stmt {
  StmtKind Kind = StmtKind::Skip;
  std::string Lhs;            ///< Assign/ArrayWrite/FieldWrite/Alloc/Call target.
  ExprPtr Index;              ///< ArrayWrite index.
  ExprPtr Rhs;                ///< Assign/ArrayWrite/FieldWrite/Print payload.
  std::string Callee;         ///< Call target function name.
  std::vector<ExprPtr> Args;  ///< Call arguments.

  static Stmt mkSkip();
  static Stmt mkAssign(std::string Lhs, ExprPtr Rhs);
  static Stmt mkAssume(ExprPtr Cond);
  static Stmt mkArrayWrite(std::string Lhs, ExprPtr Index, ExprPtr Rhs);
  static Stmt mkFieldWrite(std::string Lhs, ExprPtr Rhs);
  static Stmt mkAlloc(std::string Lhs);
  static Stmt mkCall(std::string Lhs, std::string Callee,
                     std::vector<ExprPtr> Args);
  static Stmt mkPrint(ExprPtr Arg);
  static Stmt mkAssert(ExprPtr Cond);

  bool operator==(const Stmt &O) const;
  bool operator!=(const Stmt &O) const { return !(*this == O); }

  /// Deterministic structural hash (stable across runs).
  uint64_t hash() const;

  /// Renders this statement as source text.
  std::string toString() const;

  /// Inserts every variable read by this statement into \p Out. For
  /// ArrayWrite/FieldWrite the written base variable is also a read (the
  /// heap/array object is consulted).
  void collectUses(std::set<std::string> &Out) const;

  /// Returns the variable written by this statement, or empty if none.
  const std::string &def() const { return Lhs; }
};

} // namespace dai

#endif // DAI_LANG_STMT_H
