//===-- lang/stmt.cpp - Atomic CFG statement language ---------------------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/stmt.h"

#include "support/hashing.h"

#include <cassert>
#include <sstream>

using namespace dai;

Stmt Stmt::mkSkip() { return Stmt(); }

Stmt Stmt::mkAssign(std::string Lhs, ExprPtr Rhs) {
  Stmt S;
  S.Kind = StmtKind::Assign;
  S.Lhs = std::move(Lhs);
  S.Rhs = std::move(Rhs);
  return S;
}

Stmt Stmt::mkAssume(ExprPtr Cond) {
  Stmt S;
  S.Kind = StmtKind::Assume;
  S.Rhs = std::move(Cond);
  return S;
}

Stmt Stmt::mkArrayWrite(std::string Lhs, ExprPtr Index, ExprPtr Rhs) {
  Stmt S;
  S.Kind = StmtKind::ArrayWrite;
  S.Lhs = std::move(Lhs);
  S.Index = std::move(Index);
  S.Rhs = std::move(Rhs);
  return S;
}

Stmt Stmt::mkFieldWrite(std::string Lhs, ExprPtr Rhs) {
  Stmt S;
  S.Kind = StmtKind::FieldWrite;
  S.Lhs = std::move(Lhs);
  S.Rhs = std::move(Rhs);
  return S;
}

Stmt Stmt::mkAlloc(std::string Lhs) {
  Stmt S;
  S.Kind = StmtKind::Alloc;
  S.Lhs = std::move(Lhs);
  return S;
}

Stmt Stmt::mkCall(std::string Lhs, std::string Callee,
                  std::vector<ExprPtr> Args) {
  Stmt S;
  S.Kind = StmtKind::Call;
  S.Lhs = std::move(Lhs);
  S.Callee = std::move(Callee);
  S.Args = std::move(Args);
  return S;
}

Stmt Stmt::mkPrint(ExprPtr Arg) {
  Stmt S;
  S.Kind = StmtKind::Print;
  S.Rhs = std::move(Arg);
  return S;
}

Stmt Stmt::mkAssert(ExprPtr Cond) {
  Stmt S;
  S.Kind = StmtKind::Assert;
  S.Rhs = std::move(Cond);
  return S;
}

bool Stmt::operator==(const Stmt &O) const {
  if (Kind != O.Kind || Lhs != O.Lhs || Callee != O.Callee)
    return false;
  if (!exprEquals(Index, O.Index) || !exprEquals(Rhs, O.Rhs))
    return false;
  if (Args.size() != O.Args.size())
    return false;
  for (size_t I = 0, E = Args.size(); I != E; ++I)
    if (!exprEquals(Args[I], O.Args[I]))
      return false;
  return true;
}

uint64_t Stmt::hash() const {
  uint64_t H = hashValues(static_cast<uint64_t>(Kind));
  H = hashCombine(H, hashString(Lhs));
  H = hashCombine(H, hashString(Callee));
  H = hashCombine(H, exprHash(Index));
  H = hashCombine(H, exprHash(Rhs));
  for (const auto &A : Args)
    H = hashCombine(H, exprHash(A));
  return hashCombine(H, Args.size());
}

std::string Stmt::toString() const {
  std::ostringstream OS;
  switch (Kind) {
  case StmtKind::Skip:
    OS << "skip";
    break;
  case StmtKind::Assign:
    OS << Lhs << " = " << exprToString(Rhs);
    break;
  case StmtKind::Assume:
    OS << "assume " << exprToString(Rhs);
    break;
  case StmtKind::ArrayWrite:
    OS << Lhs << "[" << exprToString(Index) << "] = " << exprToString(Rhs);
    break;
  case StmtKind::FieldWrite:
    OS << Lhs << ".next = " << exprToString(Rhs);
    break;
  case StmtKind::Alloc:
    OS << Lhs << " = new List";
    break;
  case StmtKind::Call: {
    OS << Lhs << " = " << Callee << "(";
    bool First = true;
    for (const auto &A : Args) {
      if (!First)
        OS << ", ";
      First = false;
      OS << exprToString(A);
    }
    OS << ")";
    break;
  }
  case StmtKind::Print:
    OS << "print(" << exprToString(Rhs) << ")";
    break;
  case StmtKind::Assert:
    OS << "assert(" << exprToString(Rhs) << ")";
    break;
  }
  return OS.str();
}

void Stmt::collectUses(std::set<std::string> &Out) const {
  collectVars(Index, Out);
  collectVars(Rhs, Out);
  for (const auto &A : Args)
    collectVars(A, Out);
  // Partial updates read the written object as well.
  if (Kind == StmtKind::ArrayWrite || Kind == StmtKind::FieldWrite)
    Out.insert(Lhs);
}
