//===-- lang/parser.cpp - Recursive-descent parser implementation ---------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/parser.h"

#include "lang/lexer.h"

#include <cassert>
#include <optional>
#include <sstream>

using namespace dai;

namespace {

/// Recursive-descent parser over the token stream. Reports at most one error
/// (the first), recorded in Err; once Err is set, all productions bail out.
class Parser {
public:
  explicit Parser(std::vector<Token> Tokens) : Toks(std::move(Tokens)) {}

  ParseResult run() {
    ParseResult R;
    while (!Err.has_value() && peek().Kind != TokenKind::Eof) {
      FunctionAst F = parseFunction();
      if (Err)
        break;
      R.Program.Functions.push_back(std::move(F));
    }
    if (Err)
      R.Error = *Err;
    else if (R.Program.Functions.empty())
      R.Error = "input contains no functions";
    return R;
  }

private:
  std::vector<Token> Toks;
  size_t Pos = 0;
  std::optional<std::string> Err;

  /// Recursion ceiling across the mutually recursive productions. The
  /// recursive-descent frames are large enough (larger still under ASan)
  /// that pathological nesting — thousands of parens, unary operators, or
  /// statement blocks — would overflow the stack instead of producing a
  /// diagnostic without this bound.
  static constexpr unsigned MaxDepth = 400;
  unsigned Depth = 0;

  struct DepthGuard {
    unsigned &D;
    explicit DepthGuard(unsigned &Depth) : D(Depth) { ++D; }
    ~DepthGuard() { --D; }
  };

  bool tooDeep() {
    if (Depth <= MaxDepth)
      return false;
    error("nesting exceeds the parser depth limit");
    return true;
  }

  const Token &peek(size_t Ahead = 0) const {
    size_t I = Pos + Ahead;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }

  bool at(TokenKind K) const { return peek().Kind == K; }

  Token consume() {
    Token T = peek();
    if (Pos + 1 < Toks.size())
      ++Pos;
    return T;
  }

  void error(const std::string &Msg) {
    if (Err)
      return;
    const Token &T = peek();
    std::ostringstream OS;
    OS << "parse error at line " << T.Line << ", col " << T.Col << ": " << Msg;
    if (T.Kind == TokenKind::Error)
      OS << " (" << T.Text << ")";
    Err = OS.str();
  }

  Token expect(TokenKind K, const char *Context) {
    if (!at(K)) {
      error(std::string("expected ") + tokenKindName(K) + " " + Context +
            ", found " + tokenKindName(peek().Kind));
      return Token{K, "", peek().Line, peek().Col};
    }
    return consume();
  }

  FunctionAst parseFunction() {
    FunctionAst F;
    expect(TokenKind::KwFunction, "to begin a function definition");
    F.Name = expect(TokenKind::Ident, "as the function name").Text;
    expect(TokenKind::LParen, "after the function name");
    if (!at(TokenKind::RParen)) {
      F.Params.push_back(expect(TokenKind::Ident, "as a parameter").Text);
      while (!Err && at(TokenKind::Comma)) {
        consume();
        F.Params.push_back(expect(TokenKind::Ident, "as a parameter").Text);
      }
    }
    expect(TokenKind::RParen, "after the parameter list");
    F.Body = parseBlock();
    return F;
  }

  AstStmtPtr parseBlock() {
    expect(TokenKind::LBrace, "to open a block");
    std::vector<AstStmtPtr> Stmts;
    while (!Err && !at(TokenKind::RBrace) && !at(TokenKind::Eof)) {
      if (AstStmtPtr S = parseStmt())
        Stmts.push_back(std::move(S));
    }
    expect(TokenKind::RBrace, "to close a block");
    return AstStmt::mkBlock(std::move(Stmts));
  }

  AstStmtPtr parseStmt() {
    DepthGuard G(Depth);
    if (Err || tooDeep())
      return nullptr;
    switch (peek().Kind) {
    case TokenKind::Semi:
      consume();
      return AstStmt::mkSimple(Stmt::mkSkip());
    case TokenKind::KwVar: {
      consume();
      std::string Name = expect(TokenKind::Ident, "after 'var'").Text;
      expect(TokenKind::Assign, "in a variable declaration");
      AstStmtPtr S = parseAssignRhs(Name);
      expect(TokenKind::Semi, "after a declaration");
      return S;
    }
    case TokenKind::KwReturn: {
      consume();
      ExprPtr Value;
      if (!at(TokenKind::Semi))
        Value = parseExpr();
      expect(TokenKind::Semi, "after 'return'");
      return AstStmt::mkReturn(Value ? Value : Expr::mkInt(0));
    }
    case TokenKind::KwIf: {
      consume();
      expect(TokenKind::LParen, "after 'if'");
      ExprPtr Cond = parseExpr();
      expect(TokenKind::RParen, "after the if condition");
      AstStmtPtr Then = parseBlock();
      AstStmtPtr Else = AstStmt::mkBlock({});
      if (at(TokenKind::KwElse)) {
        consume();
        if (at(TokenKind::KwIf)) {
          Else = parseStmt(); // else-if chain
          if (!Else)          // bailed (depth limit) — keep mkIf's contract
            Else = AstStmt::mkBlock({});
        } else {
          Else = parseBlock();
        }
      }
      return AstStmt::mkIf(std::move(Cond), std::move(Then), std::move(Else));
    }
    case TokenKind::KwWhile: {
      consume();
      expect(TokenKind::LParen, "after 'while'");
      ExprPtr Cond = parseExpr();
      expect(TokenKind::RParen, "after the while condition");
      AstStmtPtr Body = parseBlock();
      return AstStmt::mkWhile(std::move(Cond), std::move(Body));
    }
    case TokenKind::KwPrint: {
      consume();
      expect(TokenKind::LParen, "after 'print'");
      ExprPtr Arg = parseExpr();
      expect(TokenKind::RParen, "after the print argument");
      expect(TokenKind::Semi, "after 'print(...)'");
      return AstStmt::mkSimple(Stmt::mkPrint(std::move(Arg)));
    }
    case TokenKind::KwAssert: {
      consume();
      expect(TokenKind::LParen, "after 'assert'");
      ExprPtr Cond = parseExpr();
      expect(TokenKind::RParen, "after the assert condition");
      expect(TokenKind::Semi, "after 'assert(...)'");
      return AstStmt::mkSimple(Stmt::mkAssert(std::move(Cond)));
    }
    case TokenKind::Ident: {
      std::string Name = consume().Text;
      if (at(TokenKind::Assign)) {
        consume();
        AstStmtPtr S = parseAssignRhs(Name);
        expect(TokenKind::Semi, "after an assignment");
        return S;
      }
      if (at(TokenKind::LBracket)) {
        consume();
        ExprPtr Idx = parseExpr();
        expect(TokenKind::RBracket, "after an array index");
        expect(TokenKind::Assign, "in an array store");
        ExprPtr Rhs = parseExpr();
        expect(TokenKind::Semi, "after an array store");
        return AstStmt::mkSimple(
            Stmt::mkArrayWrite(Name, std::move(Idx), std::move(Rhs)));
      }
      if (at(TokenKind::Dot)) {
        consume();
        std::string Field = expect(TokenKind::Ident, "as a field name").Text;
        if (Field != "next") {
          error("only the 'next' field may be written");
          return nullptr;
        }
        expect(TokenKind::Assign, "in a field store");
        ExprPtr Rhs = parseExpr();
        expect(TokenKind::Semi, "after a field store");
        return AstStmt::mkSimple(Stmt::mkFieldWrite(Name, std::move(Rhs)));
      }
      error("expected '=', '[', or '.' after an identifier statement");
      return nullptr;
    }
    default:
      error("expected a statement");
      consume(); // Ensure progress even on malformed input.
      return nullptr;
    }
  }

  /// Parses the right-hand side of `Name = ...`, which may be an allocation,
  /// a call, or an expression.
  AstStmtPtr parseAssignRhs(const std::string &Name) {
    if (at(TokenKind::KwNew)) {
      consume();
      expect(TokenKind::KwList, "after 'new'");
      if (at(TokenKind::LParen)) {
        consume();
        expect(TokenKind::RParen, "after 'new List('");
      }
      return AstStmt::mkSimple(Stmt::mkAlloc(Name));
    }
    // Call syntax: IDENT '(' — calls are statements, not expressions.
    if (at(TokenKind::Ident) && peek(1).Kind == TokenKind::LParen) {
      std::string Callee = consume().Text;
      consume(); // '('
      std::vector<ExprPtr> Args;
      if (!at(TokenKind::RParen)) {
        Args.push_back(parseExpr());
        while (!Err && at(TokenKind::Comma)) {
          consume();
          Args.push_back(parseExpr());
        }
      }
      expect(TokenKind::RParen, "after call arguments");
      return AstStmt::mkSimple(Stmt::mkCall(Name, Callee, std::move(Args)));
    }
    return AstStmt::mkSimple(Stmt::mkAssign(Name, parseExpr()));
  }

  // Expression parsing: precedence climbing.
  ExprPtr parseExpr() {
    DepthGuard G(Depth);
    if (tooDeep())
      return Expr::mkInt(0);
    return parseOr();
  }

  ExprPtr parseOr() {
    ExprPtr L = parseAnd();
    while (!Err && at(TokenKind::OrOr)) {
      consume();
      L = Expr::mkBinary(BinaryOp::Or, L, parseAnd());
    }
    return L;
  }

  ExprPtr parseAnd() {
    ExprPtr L = parseEquality();
    while (!Err && at(TokenKind::AndAnd)) {
      consume();
      L = Expr::mkBinary(BinaryOp::And, L, parseEquality());
    }
    return L;
  }

  ExprPtr parseEquality() {
    ExprPtr L = parseRelational();
    while (!Err && (at(TokenKind::EqEq) || at(TokenKind::NotEq))) {
      BinaryOp Op = at(TokenKind::EqEq) ? BinaryOp::Eq : BinaryOp::Ne;
      consume();
      L = Expr::mkBinary(Op, L, parseRelational());
    }
    return L;
  }

  ExprPtr parseRelational() {
    ExprPtr L = parseAdditive();
    while (!Err && (at(TokenKind::Lt) || at(TokenKind::Le) ||
                    at(TokenKind::Gt) || at(TokenKind::Ge))) {
      BinaryOp Op = at(TokenKind::Lt)   ? BinaryOp::Lt
                    : at(TokenKind::Le) ? BinaryOp::Le
                    : at(TokenKind::Gt) ? BinaryOp::Gt
                                        : BinaryOp::Ge;
      consume();
      L = Expr::mkBinary(Op, L, parseAdditive());
    }
    return L;
  }

  ExprPtr parseAdditive() {
    ExprPtr L = parseMultiplicative();
    while (!Err && (at(TokenKind::Plus) || at(TokenKind::Minus))) {
      BinaryOp Op = at(TokenKind::Plus) ? BinaryOp::Add : BinaryOp::Sub;
      consume();
      L = Expr::mkBinary(Op, L, parseMultiplicative());
    }
    return L;
  }

  ExprPtr parseMultiplicative() {
    ExprPtr L = parseUnary();
    while (!Err && (at(TokenKind::Star) || at(TokenKind::Slash) ||
                    at(TokenKind::Percent))) {
      BinaryOp Op = at(TokenKind::Star)    ? BinaryOp::Mul
                    : at(TokenKind::Slash) ? BinaryOp::Div
                                           : BinaryOp::Mod;
      consume();
      L = Expr::mkBinary(Op, L, parseUnary());
    }
    return L;
  }

  ExprPtr parseUnary() {
    // Guarded separately from parseExpr: `-` / `!` chains recurse here
    // without passing through parseExpr.
    DepthGuard G(Depth);
    if (tooDeep())
      return Expr::mkInt(0);
    if (at(TokenKind::Minus)) {
      consume();
      return Expr::mkUnary(UnaryOp::Neg, parseUnary());
    }
    if (at(TokenKind::Not)) {
      consume();
      return Expr::mkUnary(UnaryOp::Not, parseUnary());
    }
    return parsePostfix();
  }

  ExprPtr parsePostfix() {
    ExprPtr E = parsePrimary();
    for (;;) {
      if (Err)
        return E;
      if (at(TokenKind::LBracket)) {
        consume();
        ExprPtr Idx = parseExpr();
        expect(TokenKind::RBracket, "after an array index");
        E = Expr::mkIndex(E, Idx);
        continue;
      }
      if (at(TokenKind::Dot)) {
        consume();
        std::string Field = expect(TokenKind::Ident, "as a field name").Text;
        E = Expr::mkField(E, Field);
        continue;
      }
      return E;
    }
  }

  ExprPtr parsePrimary() {
    switch (peek().Kind) {
    case TokenKind::IntLit: {
      Token T = consume();
      // stoll throws out_of_range on literals past int64; report it as a
      // located diagnostic like every other malformed input.
      try {
        return Expr::mkInt(std::stoll(T.Text));
      } catch (const std::exception &) {
        error("integer literal '" + T.Text + "' does not fit in 64 bits");
        return Expr::mkInt(0);
      }
    }
    case TokenKind::KwTrue:
      consume();
      return Expr::mkBool(true);
    case TokenKind::KwFalse:
      consume();
      return Expr::mkBool(false);
    case TokenKind::KwNull:
      consume();
      return Expr::mkNull();
    case TokenKind::Ident:
      return Expr::mkVar(consume().Text);
    case TokenKind::LParen: {
      consume();
      ExprPtr E = parseExpr();
      expect(TokenKind::RParen, "to close a parenthesized expression");
      return E;
    }
    case TokenKind::LBracket: {
      consume();
      std::vector<ExprPtr> Elems;
      if (!at(TokenKind::RBracket)) {
        Elems.push_back(parseExpr());
        while (!Err && at(TokenKind::Comma)) {
          consume();
          Elems.push_back(parseExpr());
        }
      }
      expect(TokenKind::RBracket, "to close an array literal");
      return Expr::mkArray(std::move(Elems));
    }
    default:
      error("expected an expression");
      consume();
      return Expr::mkInt(0);
    }
  }
};

} // namespace

ParseResult dai::parseProgram(std::string_view Source) {
  return Parser(tokenize(Source)).run();
}

ParseResult dai::parseSnippet(std::string_view Source) {
  std::string Wrapped = "function main() {\n";
  Wrapped.append(Source);
  Wrapped.append("\n}\n");
  return parseProgram(Wrapped);
}
