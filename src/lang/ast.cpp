//===-- lang/ast.cpp - Structured AST implementation ----------------------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/ast.h"

#include <cassert>
#include <sstream>

using namespace dai;

AstStmtPtr AstStmt::mkBlock(std::vector<AstStmtPtr> Stmts) {
  auto S = std::make_shared<AstStmt>();
  S->Kind = AstKind::Block;
  S->Children = std::move(Stmts);
  return S;
}

AstStmtPtr AstStmt::mkSimple(Stmt Atomic) {
  auto S = std::make_shared<AstStmt>();
  S->Kind = AstKind::Simple;
  S->Atomic = std::move(Atomic);
  return S;
}

AstStmtPtr AstStmt::mkIf(ExprPtr Cond, AstStmtPtr Then, AstStmtPtr Else) {
  assert(Then && Else && "if statements require both branches (Else may be "
                         "an empty block)");
  auto S = std::make_shared<AstStmt>();
  S->Kind = AstKind::If;
  S->Cond = std::move(Cond);
  S->Children = {std::move(Then), std::move(Else)};
  return S;
}

AstStmtPtr AstStmt::mkWhile(ExprPtr Cond, AstStmtPtr Body) {
  assert(Body && "while statements require a body");
  auto S = std::make_shared<AstStmt>();
  S->Kind = AstKind::While;
  S->Cond = std::move(Cond);
  S->Children = {std::move(Body)};
  return S;
}

AstStmtPtr AstStmt::mkReturn(ExprPtr Value) {
  auto S = std::make_shared<AstStmt>();
  S->Kind = AstKind::Return;
  S->Cond = std::move(Value);
  return S;
}

namespace {

void indent(std::ostringstream &OS, int Depth) {
  for (int I = 0; I < Depth; ++I)
    OS << "  ";
}

void printStmt(const AstStmtPtr &S, std::ostringstream &OS, int Depth) {
  if (!S)
    return;
  switch (S->Kind) {
  case AstKind::Block:
    for (const auto &Child : S->Children)
      printStmt(Child, OS, Depth);
    return;
  case AstKind::Simple:
    indent(OS, Depth);
    OS << S->Atomic.toString() << ";\n";
    return;
  case AstKind::If:
    indent(OS, Depth);
    OS << "if (" << exprToString(S->Cond) << ") {\n";
    printStmt(S->Children[0], OS, Depth + 1);
    indent(OS, Depth);
    OS << "} else {\n";
    printStmt(S->Children[1], OS, Depth + 1);
    indent(OS, Depth);
    OS << "}\n";
    return;
  case AstKind::While:
    indent(OS, Depth);
    OS << "while (" << exprToString(S->Cond) << ") {\n";
    printStmt(S->Children[0], OS, Depth + 1);
    indent(OS, Depth);
    OS << "}\n";
    return;
  case AstKind::Return:
    indent(OS, Depth);
    OS << "return " << exprToString(S->Cond) << ";\n";
    return;
  }
}

} // namespace

std::string dai::astToString(const ProgramAst &Prog) {
  std::ostringstream OS;
  for (const auto &F : Prog.Functions) {
    OS << "function " << F.Name << "(";
    bool First = true;
    for (const auto &P : F.Params) {
      if (!First)
        OS << ", ";
      First = false;
      OS << P;
    }
    OS << ") {\n";
    printStmt(F.Body, OS, 1);
    OS << "}\n\n";
  }
  return OS.str();
}
