//===-- lang/expr.h - Expression language -----------------------*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The expression language shared by the structured AST and the atomic CFG
/// statement language (Fig. 5 of the paper leaves the statement language
/// unspecified; this is our concrete instantiation, chosen to match the
/// JavaScript subset of the paper's evaluation: integers, booleans, arrays,
/// null, and `next`-field reads on heap lists).
///
/// Expressions are immutable trees shared via shared_ptr; they support
/// structural equality, hashing (for DAIG names and memo-table keys), and
/// printing.
///
//===----------------------------------------------------------------------===//

#ifndef DAI_LANG_EXPR_H
#define DAI_LANG_EXPR_H

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace dai {

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Expression node kinds.
enum class ExprKind : uint8_t {
  IntLit,    ///< Integer literal.
  BoolLit,   ///< Boolean literal.
  NullLit,   ///< The `null` constant.
  Var,       ///< Variable reference.
  Unary,     ///< Unary operation (negation, logical not).
  Binary,    ///< Binary operation.
  ArrayLit,  ///< Array literal `[e1, ..., ek]`.
  Index,     ///< Array read `a[i]`.
  FieldRead, ///< Field read `x.f` (`next` for lists, `length` for arrays).
};

enum class UnaryOp : uint8_t { Neg, Not };

enum class BinaryOp : uint8_t {
  Add, Sub, Mul, Div, Mod,
  Lt, Le, Gt, Ge, Eq, Ne,
  And, Or,
};

/// Returns the source spelling of \p Op.
const char *spelling(UnaryOp Op);
const char *spelling(BinaryOp Op);

/// Returns true if \p Op is a comparison producing a boolean.
bool isComparison(BinaryOp Op);

/// An immutable expression tree node.
///
/// All fields are populated according to Kind; unused fields hold default
/// values and participate in neither equality nor hashing.
struct Expr {
  ExprKind Kind;
  int64_t IntVal = 0;        ///< IntLit.
  bool BoolVal = false;      ///< BoolLit.
  std::string Name;          ///< Var name or FieldRead field name.
  UnaryOp UOp = UnaryOp::Neg;
  BinaryOp BOp = BinaryOp::Add;
  ExprPtr Lhs, Rhs;                ///< Unary uses Lhs; Index uses Lhs[Rhs].
  std::vector<ExprPtr> Elems;      ///< ArrayLit elements.

  // Factory functions. Expressions must be built through these.
  static ExprPtr mkInt(int64_t V);
  static ExprPtr mkBool(bool V);
  static ExprPtr mkNull();
  static ExprPtr mkVar(std::string Name);
  static ExprPtr mkUnary(UnaryOp Op, ExprPtr E);
  static ExprPtr mkBinary(BinaryOp Op, ExprPtr L, ExprPtr R);
  static ExprPtr mkArray(std::vector<ExprPtr> Elems);
  static ExprPtr mkIndex(ExprPtr Base, ExprPtr Idx);
  static ExprPtr mkField(ExprPtr Base, std::string Field);
};

/// Structural equality on expression trees (null pointers compare equal).
bool exprEquals(const ExprPtr &A, const ExprPtr &B);

/// Deterministic structural hash.
uint64_t exprHash(const ExprPtr &E);

/// Renders \p E as source text.
std::string exprToString(const ExprPtr &E);

/// Inserts every variable referenced by \p E into \p Out.
void collectVars(const ExprPtr &E, std::set<std::string> &Out);

/// Builds the logical negation of a boolean expression, pushing the negation
/// through comparisons (e.g. `!(x < y)` becomes `x >= y`) so that abstract
/// domains see refinable atoms on both branch edges.
ExprPtr negate(const ExprPtr &E);

} // namespace dai

#endif // DAI_LANG_EXPR_H
