//===-- lang/lexer.cpp - Tokenizer implementation -------------------------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/lexer.h"

#include <cassert>
#include <cctype>
#include <unordered_map>

using namespace dai;

const char *dai::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof: return "end of input";
  case TokenKind::Error: return "error";
  case TokenKind::Ident: return "identifier";
  case TokenKind::IntLit: return "integer literal";
  case TokenKind::KwFunction: return "'function'";
  case TokenKind::KwVar: return "'var'";
  case TokenKind::KwIf: return "'if'";
  case TokenKind::KwElse: return "'else'";
  case TokenKind::KwWhile: return "'while'";
  case TokenKind::KwReturn: return "'return'";
  case TokenKind::KwPrint: return "'print'";
  case TokenKind::KwNew: return "'new'";
  case TokenKind::KwNull: return "'null'";
  case TokenKind::KwTrue: return "'true'";
  case TokenKind::KwFalse: return "'false'";
  case TokenKind::KwList: return "'List'";
  case TokenKind::KwAssert: return "'assert'";
  case TokenKind::LParen: return "'('";
  case TokenKind::RParen: return "')'";
  case TokenKind::LBrace: return "'{'";
  case TokenKind::RBrace: return "'}'";
  case TokenKind::LBracket: return "'['";
  case TokenKind::RBracket: return "']'";
  case TokenKind::Comma: return "','";
  case TokenKind::Semi: return "';'";
  case TokenKind::Dot: return "'.'";
  case TokenKind::Assign: return "'='";
  case TokenKind::Plus: return "'+'";
  case TokenKind::Minus: return "'-'";
  case TokenKind::Star: return "'*'";
  case TokenKind::Slash: return "'/'";
  case TokenKind::Percent: return "'%'";
  case TokenKind::Lt: return "'<'";
  case TokenKind::Le: return "'<='";
  case TokenKind::Gt: return "'>'";
  case TokenKind::Ge: return "'>='";
  case TokenKind::EqEq: return "'=='";
  case TokenKind::NotEq: return "'!='";
  case TokenKind::AndAnd: return "'&&'";
  case TokenKind::OrOr: return "'||'";
  case TokenKind::Not: return "'!'";
  }
  assert(false && "unknown token kind");
  return "?";
}

namespace {

TokenKind keywordKind(const std::string &Text) {
  static const std::unordered_map<std::string, TokenKind> Keywords = {
      {"function", TokenKind::KwFunction}, {"var", TokenKind::KwVar},
      {"if", TokenKind::KwIf},             {"else", TokenKind::KwElse},
      {"while", TokenKind::KwWhile},       {"return", TokenKind::KwReturn},
      {"print", TokenKind::KwPrint},       {"new", TokenKind::KwNew},
      {"null", TokenKind::KwNull},         {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},       {"List", TokenKind::KwList},
      {"assert", TokenKind::KwAssert},
  };
  auto It = Keywords.find(Text);
  return It == Keywords.end() ? TokenKind::Ident : It->second;
}

} // namespace

std::vector<Token> dai::tokenize(std::string_view Src) {
  std::vector<Token> Out;
  size_t I = 0, N = Src.size();
  int Line = 1, Col = 1;

  auto emit = [&](TokenKind K, std::string Text, int L, int C) {
    Out.push_back(Token{K, std::move(Text), L, C});
  };
  auto advance = [&]() {
    if (Src[I] == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    ++I;
  };

  while (I < N) {
    char C = Src[I];
    int TokLine = Line, TokCol = Col;
    // Whitespace.
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    // Line comments: // ... and string-free block comments /* ... */.
    if (C == '/' && I + 1 < N && Src[I + 1] == '/') {
      while (I < N && Src[I] != '\n')
        advance();
      continue;
    }
    if (C == '/' && I + 1 < N && Src[I + 1] == '*') {
      advance();
      advance();
      while (I + 1 < N && !(Src[I] == '*' && Src[I + 1] == '/'))
        advance();
      if (I + 1 >= N) {
        emit(TokenKind::Error, "unterminated block comment", TokLine, TokCol);
        return Out;
      }
      advance();
      advance();
      continue;
    }
    // String literals appear only in print(...) payloads; their content is
    // irrelevant to analysis, so we tokenize them as the integer literal 0.
    if (C == '"') {
      advance();
      while (I < N && Src[I] != '"')
        advance();
      if (I >= N) {
        emit(TokenKind::Error, "unterminated string literal", TokLine, TokCol);
        return Out;
      }
      advance();
      emit(TokenKind::IntLit, "0", TokLine, TokCol);
      continue;
    }
    // Identifiers and keywords.
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      std::string Text;
      while (I < N && (std::isalnum(static_cast<unsigned char>(Src[I])) ||
                       Src[I] == '_')) {
        Text.push_back(Src[I]);
        advance();
      }
      TokenKind Kind = keywordKind(Text);
      emit(Kind, std::move(Text), TokLine, TokCol);
      continue;
    }
    // Integer literals.
    if (std::isdigit(static_cast<unsigned char>(C))) {
      std::string Text;
      while (I < N && std::isdigit(static_cast<unsigned char>(Src[I]))) {
        Text.push_back(Src[I]);
        advance();
      }
      emit(TokenKind::IntLit, std::move(Text), TokLine, TokCol);
      continue;
    }
    // Operators and punctuation.
    auto twoChar = [&](char Next, TokenKind Two, TokenKind One) {
      advance();
      if (I < N && Src[I] == Next) {
        advance();
        emit(Two, "", TokLine, TokCol);
      } else {
        emit(One, "", TokLine, TokCol);
      }
    };
    switch (C) {
    case '(': advance(); emit(TokenKind::LParen, "", TokLine, TokCol); break;
    case ')': advance(); emit(TokenKind::RParen, "", TokLine, TokCol); break;
    case '{': advance(); emit(TokenKind::LBrace, "", TokLine, TokCol); break;
    case '}': advance(); emit(TokenKind::RBrace, "", TokLine, TokCol); break;
    case '[': advance(); emit(TokenKind::LBracket, "", TokLine, TokCol); break;
    case ']': advance(); emit(TokenKind::RBracket, "", TokLine, TokCol); break;
    case ',': advance(); emit(TokenKind::Comma, "", TokLine, TokCol); break;
    case ';': advance(); emit(TokenKind::Semi, "", TokLine, TokCol); break;
    case '.': advance(); emit(TokenKind::Dot, "", TokLine, TokCol); break;
    case '+': advance(); emit(TokenKind::Plus, "", TokLine, TokCol); break;
    case '-': advance(); emit(TokenKind::Minus, "", TokLine, TokCol); break;
    case '*': advance(); emit(TokenKind::Star, "", TokLine, TokCol); break;
    case '/': advance(); emit(TokenKind::Slash, "", TokLine, TokCol); break;
    case '%': advance(); emit(TokenKind::Percent, "", TokLine, TokCol); break;
    case '=': twoChar('=', TokenKind::EqEq, TokenKind::Assign); break;
    case '<': twoChar('=', TokenKind::Le, TokenKind::Lt); break;
    case '>': twoChar('=', TokenKind::Ge, TokenKind::Gt); break;
    case '!': twoChar('=', TokenKind::NotEq, TokenKind::Not); break;
    case '&':
      advance();
      if (I < N && Src[I] == '&') {
        advance();
        emit(TokenKind::AndAnd, "", TokLine, TokCol);
      } else {
        emit(TokenKind::Error, "expected '&&'", TokLine, TokCol);
        return Out;
      }
      break;
    case '|':
      advance();
      if (I < N && Src[I] == '|') {
        advance();
        emit(TokenKind::OrOr, "", TokLine, TokCol);
      } else {
        emit(TokenKind::Error, "expected '||'", TokLine, TokCol);
        return Out;
      }
      break;
    default:
      emit(TokenKind::Error,
           std::string("unexpected character '") + C + "'", TokLine, TokCol);
      return Out;
    }
  }
  emit(TokenKind::Eof, "", Line, Col);
  return Out;
}
