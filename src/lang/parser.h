//===-- lang/parser.h - Recursive-descent parser ----------------*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the mini-language. Grammar (EBNF):
///
/// \code
///   program   := function*
///   function  := "function" ID "(" [ID ("," ID)*] ")" block
///   block     := "{" stmt* "}"
///   stmt      := "var" ID "=" rhs ";"
///              | ID "=" rhs ";"
///              | ID "[" expr "]" "=" expr ";"
///              | ID "." ID "=" expr ";"
///              | "if" "(" expr ")" block ["else" (block | ifstmt)]
///              | "while" "(" expr ")" block
///              | "return" [expr] ";"
///              | "print" "(" expr ")" ";"
///              | ";"
///   rhs       := "new" "List" ["(" ")"]
///              | ID "(" [expr ("," expr)*] ")"   // first-order call
///              | expr
///   expr      := or-expr with C precedence; postfix [e], .field
/// \endcode
///
/// Errors are reported by position without exceptions: parse() returns a
/// ParseResult whose Error is empty on success.
///
//===----------------------------------------------------------------------===//

#ifndef DAI_LANG_PARSER_H
#define DAI_LANG_PARSER_H

#include "lang/ast.h"

#include <string>
#include <string_view>

namespace dai {

/// Outcome of a parse: a program plus an empty error, or a located message.
struct ParseResult {
  ProgramAst Program;
  std::string Error;

  bool ok() const { return Error.empty(); }
};

/// Parses a whole program.
ParseResult parseProgram(std::string_view Source);

/// Parses a single function body given as a bare block or statement list
/// (convenience for tests): wraps \p Source in `function main() { ... }`.
ParseResult parseSnippet(std::string_view Source);

} // namespace dai

#endif // DAI_LANG_PARSER_H
