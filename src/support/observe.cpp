//===-- support/observe.cpp - Tracing, metrics & provenance ---------------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/observe.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace dai {

//===----------------------------------------------------------------------===//
// Ring registry
//===----------------------------------------------------------------------===//

namespace {

/// Process-global tracing state. Rings are heap-allocated, registered
/// once, and never freed: a TaskPool worker's events stay exportable after
/// the worker exits (the thread_local cache dies with the thread; the ring
/// does not).
struct TraceGlobals {
  std::mutex M;
  std::vector<TraceRing *> Rings; // guarded by M
  std::atomic<bool> Enabled{false};
  std::atomic<uint64_t> Recorded{0};
  std::atomic<uint64_t> Dropped{0};
};

TraceGlobals &traceGlobals() {
  // Immortal: never destroyed, so Rings keeps every registered ring
  // reachable through process exit — a plain function-local static would
  // run ~vector at exit and strand the intentionally-unfreed rings,
  // tripping leak checkers depending on teardown order.
  static TraceGlobals *G = new TraceGlobals();
  return *G;
}

} // namespace

/// Exporter-side access to TraceRing internals (friend of TraceRing).
class TraceRegistryAccess {
public:
  static void setOn(TraceRing &R, bool On) {
    R.On.store(On, std::memory_order_relaxed);
  }
  static void resetHead(TraceRing &R) {
    R.Head.store(0, std::memory_order_release);
  }
  static void assignTid(TraceRing &R, uint32_t Tid) { R.Tid = Tid; }
  /// Appends every published event of \p R to \p Out, tagged with its tid.
  static void collect(const TraceRing &R, std::vector<TaggedTraceEvent> &Out) {
    uint32_t H = R.Head.load(std::memory_order_acquire);
    const TraceEvent *B = R.Buf.load(std::memory_order_acquire);
    if (!B || H == 0)
      return;
    if (H > TraceRing::kCapacity)
      H = TraceRing::kCapacity;
    for (uint32_t I = 0; I < H; ++I)
      Out.push_back({B[I], R.Tid});
  }
};

void TraceRing::record(const TraceEvent &E) {
  TraceGlobals &G = traceGlobals();
  TraceEvent *B = Buf.load(std::memory_order_relaxed);
  if (!B) {
    // Owner-thread lazy allocation, release-published so a concurrent
    // exporter that acquires Head also sees the buffer pointer.
    B = new TraceEvent[kCapacity];
    Buf.store(B, std::memory_order_release);
  }
  uint32_t H = Head.load(std::memory_order_relaxed);
  if (H >= kCapacity) {
    // Drop-on-full: wrapping would overwrite slots a concurrent exporter
    // may be reading. The drop is counted, never silent.
    G.Dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  B[H] = E;
  Head.store(H + 1, std::memory_order_release);
  G.Recorded.fetch_add(1, std::memory_order_relaxed);
}

namespace observe_detail {

TraceRing *initThreadRing() {
  TraceGlobals &G = traceGlobals();
  TraceRing *R = new TraceRing();
  {
    std::lock_guard<std::mutex> L(G.M);
    TraceRegistryAccess::assignTid(*R, uint32_t(G.Rings.size()) + 1);
    TraceRegistryAccess::setOn(*R,
                               G.Enabled.load(std::memory_order_relaxed));
    G.Rings.push_back(R);
  }
  TlsRing = R;
  return R;
}

} // namespace observe_detail

uint64_t traceNowNs() {
  static const std::chrono::steady_clock::time_point Origin =
      std::chrono::steady_clock::now();
  return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - Origin)
                      .count());
}

void setTracingEnabled(bool Enable) {
  TraceGlobals &G = traceGlobals();
  std::lock_guard<std::mutex> L(G.M);
  G.Enabled.store(Enable, std::memory_order_relaxed);
  for (TraceRing *R : G.Rings)
    TraceRegistryAccess::setOn(*R, Enable);
}

bool tracingEnabled() {
  return traceGlobals().Enabled.load(std::memory_order_relaxed);
}

void resetTrace() {
  TraceGlobals &G = traceGlobals();
  std::lock_guard<std::mutex> L(G.M);
  for (TraceRing *R : G.Rings)
    TraceRegistryAccess::resetHead(*R);
  G.Recorded.store(0, std::memory_order_relaxed);
  G.Dropped.store(0, std::memory_order_relaxed);
}

TraceStats traceStats() {
  TraceGlobals &G = traceGlobals();
  return {G.Recorded.load(std::memory_order_relaxed),
          G.Dropped.load(std::memory_order_relaxed)};
}

std::vector<TaggedTraceEvent> collectTrace() {
  TraceGlobals &G = traceGlobals();
  std::vector<TaggedTraceEvent> Out;
  {
    std::lock_guard<std::mutex> L(G.M);
    for (const TraceRing *R : G.Rings)
      TraceRegistryAccess::collect(*R, Out);
  }
  // Rings record spans at END time, so raw order is not start order. Sort
  // by (tid, start, depth): ts becomes monotone per tid and a parent span
  // precedes children that share its start timestamp.
  std::stable_sort(Out.begin(), Out.end(),
                   [](const TaggedTraceEvent &A, const TaggedTraceEvent &B) {
                     if (A.Tid != B.Tid)
                       return A.Tid < B.Tid;
                     if (A.E.TsNs != B.E.TsNs)
                       return A.E.TsNs < B.E.TsNs;
                     return A.E.Depth < B.E.Depth;
                   });
  return Out;
}

//===----------------------------------------------------------------------===//
// Exporters
//===----------------------------------------------------------------------===//

bool writeChromeTrace(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::vector<TaggedTraceEvent> Evs = collectTrace();
  std::fputs("{\"traceEvents\": [\n", F);
  bool First = true;
  for (const TaggedTraceEvent &T : Evs) {
    const TraceEvent &E = T.E;
    if (!First)
      std::fputs(",\n", F);
    First = false;
    // ts/dur are microseconds in the trace_event format; emit at ns
    // precision so the per-tid sort order survives the unit change.
    if (E.Ph == 0)
      std::fprintf(F,
                   "{\"name\": \"%s\", \"ph\": \"X\", \"ts\": %.3f, "
                   "\"dur\": %.3f, \"pid\": 1, \"tid\": %u, "
                   "\"args\": {\"a0\": %llu, \"a1\": %llu}}",
                   E.Nm, double(E.TsNs) / 1000.0, double(E.DurNs) / 1000.0,
                   T.Tid, (unsigned long long)E.A0, (unsigned long long)E.A1);
    else
      std::fprintf(F,
                   "{\"name\": \"%s\", \"ph\": \"i\", \"s\": \"t\", "
                   "\"ts\": %.3f, \"pid\": 1, \"tid\": %u, "
                   "\"args\": {\"a0\": %llu, \"a1\": %llu}}",
                   E.Nm, double(E.TsNs) / 1000.0, T.Tid,
                   (unsigned long long)E.A0, (unsigned long long)E.A1);
  }
  std::fputs("\n]}\n", F);
  std::fclose(F);
  return true;
}

bool writeCollapsedStack(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::vector<TaggedTraceEvent> Evs = collectTrace();
  // Per tid, sweep spans in start order keeping the open-span stack;
  // attribute each span's SELF time (duration minus enclosed children) to
  // its semicolon-joined stack. Instants are skipped (no duration).
  std::map<std::string, uint64_t> Folded;
  size_t I = 0;
  while (I < Evs.size()) {
    uint32_t Tid = Evs[I].Tid;
    struct Open {
      const char *Nm;
      uint64_t EndNs;
      uint64_t DurNs;
      uint64_t ChildNs;
      std::string Stack;
    };
    std::vector<Open> Opens;
    auto close = [&](uint64_t UpToTs) {
      while (!Opens.empty() && UpToTs >= Opens.back().EndNs) {
        Open Top = Opens.back();
        Opens.pop_back();
        uint64_t Self =
            Top.DurNs >= Top.ChildNs ? Top.DurNs - Top.ChildNs : 0;
        Folded[Top.Stack] += Self;
        if (!Opens.empty())
          Opens.back().ChildNs += Top.DurNs;
      }
    };
    for (; I < Evs.size() && Evs[I].Tid == Tid; ++I) {
      const TraceEvent &E = Evs[I].E;
      if (E.Ph != 0)
        continue;
      close(E.TsNs);
      std::string Stk =
          Opens.empty() ? std::string(E.Nm) : Opens.back().Stack + ";" + E.Nm;
      Opens.push_back({E.Nm, E.TsNs + E.DurNs, E.DurNs, 0, std::move(Stk)});
    }
    close(~uint64_t(0));
  }
  for (const auto &[Stk, Ns] : Folded)
    std::fprintf(F, "%s %llu\n", Stk.c_str(), (unsigned long long)Ns);
  std::fclose(F);
  return true;
}

//===----------------------------------------------------------------------===//
// DAI_TRACE environment hook
//===----------------------------------------------------------------------===//

namespace {

std::string &envTracePath() {
  static std::string P;
  return P;
}
std::string &envFoldedPath() {
  static std::string P;
  return P;
}

extern "C" void daiFlushEnvTrace() {
  if (!envTracePath().empty())
    writeChromeTrace(envTracePath());
  if (!envFoldedPath().empty())
    writeCollapsedStack(envFoldedPath());
}

/// Reads DAI_TRACE / DAI_TRACE_FOLDED once at static init: either enables
/// tracing for the whole process and flushes the files at exit.
struct EnvTraceInit {
  EnvTraceInit() {
    const char *Chrome = std::getenv("DAI_TRACE");
    const char *Folded = std::getenv("DAI_TRACE_FOLDED");
    if (!Chrome && !Folded)
      return;
    if (Chrome)
      envTracePath() = Chrome;
    if (Folded)
      envFoldedPath() = Folded;
    setTracingEnabled(true);
    std::atexit(daiFlushEnvTrace);
  }
};
EnvTraceInit EnvTraceInitInstance;

} // namespace

//===----------------------------------------------------------------------===//
// Histogram / MetricsRegistry
//===----------------------------------------------------------------------===//

const std::vector<uint64_t> &Histogram::defaultLatencyBoundsNs() {
  // 1us .. 1s in 1-2-5 steps. Fixed forever: changing these would silently
  // re-bucket every recorded distribution.
  static const std::vector<uint64_t> Bounds = {
      1'000,       2'000,       5'000,       10'000,      20'000,
      50'000,      100'000,     200'000,     500'000,     1'000'000,
      2'000'000,   5'000'000,   10'000'000,  20'000'000,  50'000'000,
      100'000'000, 200'000'000, 500'000'000, 1'000'000'000};
  return Bounds;
}

MetricsRegistry MetricsRegistry::deltaSince(
    const MetricsRegistry &Before) const {
  MetricsRegistry Out;
  for (const auto &[Nm, Cur] : M) {
    auto BIt = Before.M.find(Nm);
    Metric D = Cur;
    if (BIt != Before.M.end() && BIt->second.K == Cur.K) {
      switch (Cur.K) {
      case Kind::Counter:
        D.V = Cur.V - BIt->second.V;
        break;
      case Kind::Gauge:
        // Gauges carry the current (peak) value: max-merge on the
        // receiving side makes repatriation idempotent.
        break;
      case Kind::Hist:
        D.H.subtract(BIt->second.H);
        break;
      }
    }
    bool Empty = D.K == Kind::Hist ? D.H.total() == 0 : D.V == 0;
    if (!Empty)
      Out.M.emplace(Nm, std::move(D));
  }
  return Out;
}

void MetricsRegistry::mergeFrom(const MetricsRegistry &O) {
  for (const auto &[Nm, In] : O.M) {
    Metric &Mine = slot(Nm, In.K);
    switch (In.K) {
    case Kind::Counter:
      Mine.V += In.V;
      break;
    case Kind::Gauge:
      if (In.V > Mine.V)
        Mine.V = In.V;
      break;
    case Kind::Hist:
      Mine.H.merge(In.H);
      break;
    }
  }
}

std::string MetricsRegistry::toJson() const {
  std::string Out = "{";
  bool First = true;
  auto appendNum = [&Out](uint64_t V) { Out += std::to_string(V); };
  for (const auto &[Nm, Mt] : M) {
    if (!First)
      Out += ", ";
    First = false;
    Out += "\"" + Nm + "\": ";
    if (Mt.K == Kind::Hist) {
      Out += "{\"bounds\": [";
      for (size_t I = 0; I < Mt.H.bounds().size(); ++I) {
        if (I)
          Out += ", ";
        appendNum(Mt.H.bounds()[I]);
      }
      Out += "], \"counts\": [";
      for (size_t I = 0; I < Mt.H.counts().size(); ++I) {
        if (I)
          Out += ", ";
        appendNum(Mt.H.counts()[I]);
      }
      Out += "], \"total\": ";
      appendNum(Mt.H.total());
      Out += "}";
    } else {
      appendNum(Mt.V);
    }
  }
  Out += "}";
  return Out;
}

MetricsRegistry &metricsRegistry() {
  static thread_local MetricsRegistry R;
  return R;
}

//===----------------------------------------------------------------------===//
// Export bridges
//===----------------------------------------------------------------------===//

void exportStatistics(const Statistics &S, MetricsRegistry &R,
                      const char *Prefix) {
  std::string P = Prefix;
  auto C = [&](const char *Nm, uint64_t V) {
    if (V)
      R.add(P + Nm, V);
  };
  C("transfers", S.Transfers);
  C("joins", S.Joins);
  C("widens", S.Widens);
  C("fix_checks", S.FixChecks);
  C("unrollings", S.Unrollings);
  C("cell_reuses", S.CellReuses);
  C("memo_hits", S.MemoHits);
  C("memo_misses", S.MemoMisses);
  C("cells_dirtied", S.CellsDirtied);
  C("call_summaries", S.CallSummaries);
  C("memo_evictions", S.MemoEvictions);
  C("cells_degraded", S.CellsDegraded);
  C("checks_evaluated", S.ChecksEvaluated);
  C("checks_rechecked", S.ChecksRechecked);
  C("alarms_raised", S.AlarmsRaised);
}

void exportDomainCounters(MetricsRegistry &R) {
  // Octagon closure family: the fig10 octagon rows' historical, unprefixed
  // names.
  const ClosureCounters &CC = closureCounters();
  R.add("full_closes", CC.FullCloses);
  R.add("incremental_closes", CC.IncrementalCloses);
  R.add("closes_skipped", CC.ClosesSkipped);
  R.add("cached_closes", CC.CachedCloses);
  R.add("dbm_cells_touched", CC.CellsTouched);
  R.add("dbm_cells_stored", CC.CellsStored);
  R.gaugeMax("dbm_peak_bytes", CC.PeakDbmBytes);
  // Zone family: zone_*-prefixed (fig10 zone rows).
  const ZoneCounters &ZC = zoneCounters();
  R.add("zone_edges_stored", ZC.EdgesStored);
  R.add("zone_potential_repairs", ZC.PotentialRepairs);
  R.add("zone_closure_vertices_visited", ZC.ClosureVerticesVisited);
  R.add("zone_full_closes", ZC.FullCloses);
  R.add("zone_incremental_closes", ZC.IncrementalCloses);
  R.add("zone_closes_skipped", ZC.ClosesSkipped);
  R.add("zone_cached_closes", ZC.CachedCloses);
  R.add("zone_budget_exhaustions", ZC.BudgetExhaustions);
  R.add("zone_degraded_cells", ZC.DegradedCells);
  R.add("zone_cancellations_honored", ZC.CancellationsHonored);
  // Staged family: staged_*-prefixed (fig10 staged rows).
  const StagedCounters &SC = stagedCounters();
  R.add("staged_escalations", SC.Escalations);
  R.add("staged_oct_seeds", SC.OctSeeds);
  R.add("staged_escalated_transfers", SC.EscalatedTransfers);
  R.add("staged_zone_transfers", SC.ZoneTransfers);
  R.add("staged_sum_queries", SC.SumQueries);
  R.add("staged_budget_exhaustions", SC.BudgetExhaustions);
  R.add("staged_degraded_cells", SC.DegradedCells);
  R.add("staged_cancellations_honored", SC.CancellationsHonored);
  // Name-table family (process-global atomic sink).
  NameTableCounters NC = nameTableCounters();
  R.add("names_interned", NC.NamesInterned);
  R.add("intern_hits", NC.InternHits);
  R.gaugeMax("name_table_bytes", NC.NameTableBytes);
}

void exportTraceStats(MetricsRegistry &R) {
  TraceStats T = traceStats();
  R.add("dai_trace_events_recorded", T.EventsRecorded);
  R.add("dai_trace_events_dropped", T.EventsDropped);
}

} // namespace dai
