//===-- support/rng.h - Deterministic random number generator --*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, explicitly specified PRNG (splitmix64 + xoshiro-style mixing)
/// so that synthetic workloads (Section 7.3 of the paper) are reproducible
/// bit-for-bit across platforms, independent of libstdc++'s distributions.
///
//===----------------------------------------------------------------------===//

#ifndef DAI_SUPPORT_RNG_H
#define DAI_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace dai {

/// Deterministic 64-bit PRNG with convenience sampling helpers.
///
/// The generator is splitmix64: tiny state, excellent statistical quality for
/// workload-generation purposes, and trivially reproducible.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// Returns the next raw 64-bit value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a uniformly distributed integer in [0, Bound).
  uint64_t below(uint64_t Bound) {
    assert(Bound > 0 && "below() requires a positive bound");
    // Rejection sampling to avoid modulo bias; the loop nearly never repeats.
    uint64_t Threshold = (0 - Bound) % Bound;
    for (;;) {
      uint64_t R = next();
      if (R >= Threshold)
        return R % Bound;
    }
  }

  /// Returns an integer in the inclusive range [Lo, Hi].
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "range() requires Lo <= Hi");
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Returns true with probability Percent/100.
  bool percent(unsigned Percent) { return below(100) < Percent; }

  /// Returns a double uniformly distributed in [0, 1).
  double unit() { return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0); }

private:
  uint64_t State;
};

} // namespace dai

#endif // DAI_SUPPORT_RNG_H
