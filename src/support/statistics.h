//===-- support/statistics.h - Analysis operation counters -----*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counters for abstract-interpretation work performed by the framework.
/// The paper's evaluation (Section 7.3) compares analysis configurations by
/// latency; these counters additionally let tests assert *exact* reuse
/// behavior (e.g., the Section 2 example: a re-query after the Fig. 4b edit
/// executes exactly two transfers and one join).
///
//===----------------------------------------------------------------------===//

#ifndef DAI_SUPPORT_STATISTICS_H
#define DAI_SUPPORT_STATISTICS_H

#include <cstdint>
#include <ostream>

namespace dai {

/// Work counters shared by the DAIG, memo table, and batch interpreter.
struct Statistics {
  uint64_t Transfers = 0;     ///< Abstract transfer-function applications.
  uint64_t Joins = 0;         ///< Join (⊔) applications.
  uint64_t Widens = 0;        ///< Widen (∇) applications.
  uint64_t FixChecks = 0;     ///< Convergence checks at fix edges.
  uint64_t Unrollings = 0;    ///< Demanded loop unrollings (Q-Loop-Unroll).
  uint64_t CellReuses = 0;    ///< Q-Reuse hits (value already in DAIG).
  uint64_t MemoHits = 0;      ///< Q-Match hits (auxiliary memo table).
  uint64_t MemoMisses = 0;    ///< Q-Miss events (computed and memoized).
  uint64_t CellsDirtied = 0;  ///< Reference cells emptied by edits.
  uint64_t CallSummaries = 0; ///< Interprocedural callee-summary demands.

  void reset() { *this = Statistics(); }

  /// Total domain operations (the expensive work in rich domains).
  uint64_t domainOps() const { return Transfers + Joins + Widens; }

  Statistics operator-(const Statistics &O) const {
    Statistics R;
    R.Transfers = Transfers - O.Transfers;
    R.Joins = Joins - O.Joins;
    R.Widens = Widens - O.Widens;
    R.FixChecks = FixChecks - O.FixChecks;
    R.Unrollings = Unrollings - O.Unrollings;
    R.CellReuses = CellReuses - O.CellReuses;
    R.MemoHits = MemoHits - O.MemoHits;
    R.MemoMisses = MemoMisses - O.MemoMisses;
    R.CellsDirtied = CellsDirtied - O.CellsDirtied;
    R.CallSummaries = CallSummaries - O.CallSummaries;
    return R;
  }
};

inline std::ostream &operator<<(std::ostream &OS, const Statistics &S) {
  OS << "{transfers=" << S.Transfers << " joins=" << S.Joins
     << " widens=" << S.Widens << " unrollings=" << S.Unrollings
     << " cellReuses=" << S.CellReuses << " memoHits=" << S.MemoHits
     << " memoMisses=" << S.MemoMisses << " dirtied=" << S.CellsDirtied
     << " callSummaries=" << S.CallSummaries << "}";
  return OS;
}

} // namespace dai

#endif // DAI_SUPPORT_STATISTICS_H
