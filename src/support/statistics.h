//===-- support/statistics.h - Analysis operation counters -----*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counters for abstract-interpretation work performed by the framework.
/// The paper's evaluation (Section 7.3) compares analysis configurations by
/// latency; these counters additionally let tests assert *exact* reuse
/// behavior (e.g., the Section 2 example: a re-query after the Fig. 4b edit
/// executes exactly two transfers and one join).
///
//===----------------------------------------------------------------------===//

#ifndef DAI_SUPPORT_STATISTICS_H
#define DAI_SUPPORT_STATISTICS_H

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <ostream>

namespace dai {

/// Work counters shared by the DAIG, memo table, and batch interpreter.
struct Statistics {
  uint64_t Transfers = 0;     ///< Abstract transfer-function applications.
  uint64_t Joins = 0;         ///< Join (⊔) applications.
  uint64_t Widens = 0;        ///< Widen (∇) applications.
  uint64_t FixChecks = 0;     ///< Convergence checks at fix edges.
  uint64_t Unrollings = 0;    ///< Demanded loop unrollings (Q-Loop-Unroll).
  uint64_t CellReuses = 0;    ///< Q-Reuse hits (value already in DAIG).
  uint64_t MemoHits = 0;      ///< Q-Match hits (auxiliary memo table).
  uint64_t MemoMisses = 0;    ///< Q-Miss events (computed and memoized).
  uint64_t CellsDirtied = 0;  ///< Reference cells emptied by edits.
  uint64_t CallSummaries = 0; ///< Interprocedural callee-summary demands.
  uint64_t MemoEvictions = 0; ///< Memo-table entries dropped by the LRU cap.
  uint64_t CellsDegraded = 0; ///< Cells ⊤-substituted or taint-marked by a
                              ///< budget (support/budget.h) — nonzero means
                              ///< some answers carry degraded provenance.
  uint64_t ChecksEvaluated = 0; ///< Check obligations evaluated against an
                                ///< abstract pre-state (analysis/checker.h).
  uint64_t ChecksRechecked = 0; ///< Obligations re-evaluated by an
                                ///< incremental re-check pass (the demanded
                                ///< slice; cache hits are not counted).
  uint64_t AlarmsRaised = 0;    ///< WARNING/ERROR verdicts recorded in a
                                ///< ChecksDb (post degraded-clamping).

  void reset() { *this = Statistics(); }

  /// Total domain operations (the expensive work in rich domains).
  uint64_t domainOps() const { return Transfers + Joins + Widens; }

  /// Accumulates another counter set into this one (all fields are monotone
  /// counters, so addition is the correct merge). This is the cross-thread
  /// aggregation primitive: the parallel engine gives each (function,
  /// context) instance a private Statistics sink for the duration of a
  /// parallel pass and folds them back into the engine's sink, in
  /// deterministic key order, at the pass barrier.
  void mergeFrom(const Statistics &O) {
    Transfers += O.Transfers;
    Joins += O.Joins;
    Widens += O.Widens;
    FixChecks += O.FixChecks;
    Unrollings += O.Unrollings;
    CellReuses += O.CellReuses;
    MemoHits += O.MemoHits;
    MemoMisses += O.MemoMisses;
    CellsDirtied += O.CellsDirtied;
    CallSummaries += O.CallSummaries;
    MemoEvictions += O.MemoEvictions;
    CellsDegraded += O.CellsDegraded;
    ChecksEvaluated += O.ChecksEvaluated;
    ChecksRechecked += O.ChecksRechecked;
    AlarmsRaised += O.AlarmsRaised;
  }

  Statistics operator-(const Statistics &O) const {
    Statistics R;
    R.Transfers = Transfers - O.Transfers;
    R.Joins = Joins - O.Joins;
    R.Widens = Widens - O.Widens;
    R.FixChecks = FixChecks - O.FixChecks;
    R.Unrollings = Unrollings - O.Unrollings;
    R.CellReuses = CellReuses - O.CellReuses;
    R.MemoHits = MemoHits - O.MemoHits;
    R.MemoMisses = MemoMisses - O.MemoMisses;
    R.CellsDirtied = CellsDirtied - O.CellsDirtied;
    R.CallSummaries = CallSummaries - O.CallSummaries;
    R.MemoEvictions = MemoEvictions - O.MemoEvictions;
    R.CellsDegraded = CellsDegraded - O.CellsDegraded;
    R.ChecksEvaluated = ChecksEvaluated - O.ChecksEvaluated;
    R.ChecksRechecked = ChecksRechecked - O.ChecksRechecked;
    R.AlarmsRaised = AlarmsRaised - O.AlarmsRaised;
    return R;
  }
};

inline std::ostream &operator<<(std::ostream &OS, const Statistics &S) {
  OS << "{transfers=" << S.Transfers << " joins=" << S.Joins
     << " widens=" << S.Widens << " unrollings=" << S.Unrollings
     << " cellReuses=" << S.CellReuses << " memoHits=" << S.MemoHits
     << " memoMisses=" << S.MemoMisses << " dirtied=" << S.CellsDirtied
     << " callSummaries=" << S.CallSummaries
     << " memoEvictions=" << S.MemoEvictions
     << " cellsDegraded=" << S.CellsDegraded
     << " checksEvaluated=" << S.ChecksEvaluated
     << " checksRechecked=" << S.ChecksRechecked
     << " alarmsRaised=" << S.AlarmsRaised << "}";
  return OS;
}

/// Counters for DBM strong-closure work in relational domains (octagon).
/// Closure is the dominant cost of the Fig. 10 workload, so benches report
/// these alongside wall time to explain *why* latency moved: a healthy
/// incremental pipeline shows IncrementalCloses ≫ FullCloses.
///
/// Kept process-global (per thread) rather than inside Statistics because
/// domain values are plain data with no back-pointer to an engine; benches
/// snapshot-and-subtract around the region of interest.
struct ClosureCounters {
  uint64_t FullCloses = 0;        ///< O(n³) Floyd–Warshall closures run.
  uint64_t IncrementalCloses = 0; ///< O(n²) single-constraint re-closures.
  uint64_t ClosesSkipped = 0;     ///< close() calls on already-closed values.
  uint64_t CachedCloses = 0;      ///< Closures answered by a closedView cache.
  uint64_t CellsTouched = 0;      ///< DBM cells tightened during closure.
  uint64_t CellsStored = 0;       ///< Cumulative DBM cells allocated; the
                                  ///< half-matrix layout shows up here as a
                                  ///< ~2× drop vs. the dense (2n)² layout.
  uint64_t PeakDbmBytes = 0;      ///< High-water bytes of a single DBM
                                  ///< allocation (gauge, not a counter).

  void reset() { *this = ClosureCounters(); }

  /// Cross-thread merge: counters add; the PeakDbmBytes gauge merges via
  /// max (the process-wide peak is the max of the per-thread peaks).
  void mergeFrom(const ClosureCounters &O) {
    FullCloses += O.FullCloses;
    IncrementalCloses += O.IncrementalCloses;
    ClosesSkipped += O.ClosesSkipped;
    CachedCloses += O.CachedCloses;
    CellsTouched += O.CellsTouched;
    CellsStored += O.CellsStored;
    PeakDbmBytes = std::max(PeakDbmBytes, O.PeakDbmBytes);
  }

  ClosureCounters operator-(const ClosureCounters &O) const {
    ClosureCounters R;
    R.FullCloses = FullCloses - O.FullCloses;
    R.IncrementalCloses = IncrementalCloses - O.IncrementalCloses;
    R.ClosesSkipped = ClosesSkipped - O.ClosesSkipped;
    R.CachedCloses = CachedCloses - O.CachedCloses;
    R.CellsTouched = CellsTouched - O.CellsTouched;
    R.CellsStored = CellsStored - O.CellsStored;
    // A gauge, not subtractable: the delta carries the later snapshot's
    // peak, which covers the whole process history. A region that wants its
    // OWN peak (the bench's per-size sweep does) must zero the gauge at the
    // start of the region: `closureCounters().PeakDbmBytes = 0`.
    R.PeakDbmBytes = PeakDbmBytes;
    return R;
  }
};

inline std::ostream &operator<<(std::ostream &OS, const ClosureCounters &C) {
  OS << "{fullCloses=" << C.FullCloses
     << " incrementalCloses=" << C.IncrementalCloses
     << " closesSkipped=" << C.ClosesSkipped
     << " cachedCloses=" << C.CachedCloses
     << " cellsTouched=" << C.CellsTouched
     << " cellsStored=" << C.CellsStored
     << " peakDbmBytes=" << C.PeakDbmBytes << "}";
  return OS;
}

/// The thread's closure-counter sink (see ClosureCounters).
inline ClosureCounters &closureCounters() {
  static thread_local ClosureCounters Counters;
  return Counters;
}

/// Counters for the sparse zone domain (domain/zone.h). The zone subsystem's
/// whole point is that transfer/query cost scales with the number of LIVE
/// constraints, not the dimension count — these counters let benches and the
/// CI gate verify that claim deterministically: on the mostly-⊤ Fig. 10
/// workload, ClosureVerticesVisited should grow sub-quadratically in the
/// variable-pool size while the octagon's CellsTouched stays ~n².
///
/// thread_local like ClosureCounters (one analysis engine per thread).
struct ZoneCounters {
  uint64_t EdgesStored = 0;     ///< Cumulative graph edges materialized
                                ///< (inserts, not weight updates) — the
                                ///< sparse analogue of CellsStored.
  uint64_t PotentialRepairs = 0; ///< Bellman–Ford potential-repair runs
                                 ///< triggered by constraint additions.
  uint64_t ClosureVerticesVisited = 0; ///< Vertices scanned by the closure
                                       ///< kernels (restricted single-source
                                       ///< sweeps + incremental cross
                                       ///< products). Deterministic on a
                                       ///< seeded workload; the CI gate
                                       ///< metric.
  uint64_t FullCloses = 0;        ///< Restricted all-sources closures run.
  uint64_t IncrementalCloses = 0; ///< Single-edge close_over_edge runs.
  uint64_t ClosesSkipped = 0;     ///< close() calls on already-closed values.
  uint64_t CachedCloses = 0;      ///< Closures answered by a closedView cache.
  // Budget events (support/budget.h), mirrored here so the bench reports
  // them per sweep size; the regression gate asserts all three stay zero
  // on the default, un-budgeted workload.
  uint64_t BudgetExhaustions = 0;     ///< Hard budget-limit latches.
  uint64_t DegradedCells = 0;         ///< Cells ⊤-substituted/taint-marked.
  uint64_t CancellationsHonored = 0;  ///< Cancellation tokens honored.

  void reset() { *this = ZoneCounters(); }

  /// Cross-thread merge: all fields are monotone counters, so they add.
  void mergeFrom(const ZoneCounters &O) {
    EdgesStored += O.EdgesStored;
    PotentialRepairs += O.PotentialRepairs;
    ClosureVerticesVisited += O.ClosureVerticesVisited;
    FullCloses += O.FullCloses;
    IncrementalCloses += O.IncrementalCloses;
    ClosesSkipped += O.ClosesSkipped;
    CachedCloses += O.CachedCloses;
    BudgetExhaustions += O.BudgetExhaustions;
    DegradedCells += O.DegradedCells;
    CancellationsHonored += O.CancellationsHonored;
  }

  ZoneCounters operator-(const ZoneCounters &O) const {
    ZoneCounters R;
    R.EdgesStored = EdgesStored - O.EdgesStored;
    R.PotentialRepairs = PotentialRepairs - O.PotentialRepairs;
    R.ClosureVerticesVisited =
        ClosureVerticesVisited - O.ClosureVerticesVisited;
    R.FullCloses = FullCloses - O.FullCloses;
    R.IncrementalCloses = IncrementalCloses - O.IncrementalCloses;
    R.ClosesSkipped = ClosesSkipped - O.ClosesSkipped;
    R.CachedCloses = CachedCloses - O.CachedCloses;
    R.BudgetExhaustions = BudgetExhaustions - O.BudgetExhaustions;
    R.DegradedCells = DegradedCells - O.DegradedCells;
    R.CancellationsHonored = CancellationsHonored - O.CancellationsHonored;
    return R;
  }
};

inline std::ostream &operator<<(std::ostream &OS, const ZoneCounters &C) {
  OS << "{edgesStored=" << C.EdgesStored
     << " potentialRepairs=" << C.PotentialRepairs
     << " closureVerticesVisited=" << C.ClosureVerticesVisited
     << " fullCloses=" << C.FullCloses
     << " incrementalCloses=" << C.IncrementalCloses
     << " closesSkipped=" << C.ClosesSkipped
     << " cachedCloses=" << C.CachedCloses
     << " budgetExhaustions=" << C.BudgetExhaustions
     << " degradedCells=" << C.DegradedCells
     << " cancellationsHonored=" << C.CancellationsHonored << "}";
  return OS;
}

/// The thread's zone-counter sink (see ZoneCounters).
inline ZoneCounters &zoneCounters() {
  static thread_local ZoneCounters Counters;
  return Counters;
}

/// Counters for the staged zone→octagon domain (domain/staged.h). The
/// staged subsystem's claim is that octagon work is paid only where a query
/// demands ±x±y precision: ZoneTransfers counts the transfers that skipped
/// the octagon tier entirely (the avoided dense work), EscalatedTransfers
/// the ones that ran both tiers, and Escalations the demand-driven slice
/// re-evaluations triggered by precision queries. All deterministic on a
/// seeded workload; EscalatedTransfers is the CI gate metric.
///
/// thread_local like ClosureCounters (one analysis engine per thread).
struct StagedCounters {
  uint64_t Escalations = 0;         ///< Demand-driven escalations: full
                                    ///< re-demands of a query's slice with
                                    ///< the octagon tier enabled.
  uint64_t OctSeeds = 0;            ///< Octagon tiers seeded from a closed
                                    ///< zone value (mid-path escalation).
  uint64_t EscalatedTransfers = 0;  ///< Tier evaluations (transfer/assume)
                                    ///< that ran BOTH tiers.
  uint64_t ZoneTransfers = 0;       ///< Zone-only tier evaluations — each
                                    ///< one is a dense octagon evaluation
                                    ///< avoided.
  uint64_t SumQueries = 0;          ///< ±x±y (sum-form) bounds queries.
  // Budget events (support/budget.h) — see the ZoneCounters note.
  uint64_t BudgetExhaustions = 0;     ///< Hard budget-limit latches.
  uint64_t DegradedCells = 0;         ///< Cells ⊤-substituted/taint-marked.
  uint64_t CancellationsHonored = 0;  ///< Cancellation tokens honored.

  void reset() { *this = StagedCounters(); }

  /// Cross-thread merge: all fields are monotone counters, so they add.
  void mergeFrom(const StagedCounters &O) {
    Escalations += O.Escalations;
    OctSeeds += O.OctSeeds;
    EscalatedTransfers += O.EscalatedTransfers;
    ZoneTransfers += O.ZoneTransfers;
    SumQueries += O.SumQueries;
    BudgetExhaustions += O.BudgetExhaustions;
    DegradedCells += O.DegradedCells;
    CancellationsHonored += O.CancellationsHonored;
  }

  StagedCounters operator-(const StagedCounters &O) const {
    StagedCounters R;
    R.Escalations = Escalations - O.Escalations;
    R.OctSeeds = OctSeeds - O.OctSeeds;
    R.EscalatedTransfers = EscalatedTransfers - O.EscalatedTransfers;
    R.ZoneTransfers = ZoneTransfers - O.ZoneTransfers;
    R.SumQueries = SumQueries - O.SumQueries;
    R.BudgetExhaustions = BudgetExhaustions - O.BudgetExhaustions;
    R.DegradedCells = DegradedCells - O.DegradedCells;
    R.CancellationsHonored = CancellationsHonored - O.CancellationsHonored;
    return R;
  }
};

inline std::ostream &operator<<(std::ostream &OS, const StagedCounters &C) {
  OS << "{escalations=" << C.Escalations << " octSeeds=" << C.OctSeeds
     << " escalatedTransfers=" << C.EscalatedTransfers
     << " zoneTransfers=" << C.ZoneTransfers
     << " sumQueries=" << C.SumQueries
     << " budgetExhaustions=" << C.BudgetExhaustions
     << " degradedCells=" << C.DegradedCells
     << " cancellationsHonored=" << C.CancellationsHonored << "}";
  return OS;
}

/// The thread's staged-domain counter sink (see StagedCounters).
inline StagedCounters &stagedCounters() {
  static thread_local StagedCounters Counters;
  return Counters;
}

/// Counters for the disjunctive-interval domain (domain/dis_interval.h).
/// The domain's defining cost knob is the per-variable partition bound K:
/// joins and ≠-refinements grow the partition list, and normalization merges
/// the closest pair whenever the list would exceed K. PartitionsCollapsed
/// counts those forced merges — the precision actually *paid* for the bound —
/// and is deterministic on a seeded workload, so it is the CI gate metric
/// for the dis_interval bench rows.
///
/// thread_local like ClosureCounters (one analysis engine per thread).
struct DisIntervalCounters {
  uint64_t PartitionsCollapsed = 0; ///< Closest-pair merges forced by the
                                    ///< partition bound K (precision lost to
                                    ///< the bound). The CI gate metric.
  uint64_t PartitionSplits = 0;     ///< Partitions split by a ≠-refinement
                                    ///< (the path-sensitivity win).
  uint64_t DisjunctiveJoins = 0;    ///< Variable joins whose result kept ≥ 2
                                    ///< partitions (a plain interval would
                                    ///< have taken the convex hull here).

  void reset() { *this = DisIntervalCounters(); }

  /// Cross-thread merge: all fields are monotone counters, so they add.
  void mergeFrom(const DisIntervalCounters &O) {
    PartitionsCollapsed += O.PartitionsCollapsed;
    PartitionSplits += O.PartitionSplits;
    DisjunctiveJoins += O.DisjunctiveJoins;
  }

  DisIntervalCounters operator-(const DisIntervalCounters &O) const {
    DisIntervalCounters R;
    R.PartitionsCollapsed = PartitionsCollapsed - O.PartitionsCollapsed;
    R.PartitionSplits = PartitionSplits - O.PartitionSplits;
    R.DisjunctiveJoins = DisjunctiveJoins - O.DisjunctiveJoins;
    return R;
  }
};

inline std::ostream &operator<<(std::ostream &OS,
                                const DisIntervalCounters &C) {
  OS << "{partitionsCollapsed=" << C.PartitionsCollapsed
     << " partitionSplits=" << C.PartitionSplits
     << " disjunctiveJoins=" << C.DisjunctiveJoins << "}";
  return OS;
}

/// The thread's dis_interval counter sink (see DisIntervalCounters).
inline DisIntervalCounters &disIntervalCounters() {
  static thread_local DisIntervalCounters Counters;
  return Counters;
}

/// Counters for the global hash-consed NameTable (daig/name.h). Name
/// construction sits on the hot path of every edit and query (Fig. 6 names
/// resolve DAIG cells and memo entries), so benches report these alongside
/// wall time: a healthy interned name layer shows InternHits ≫ NamesInterned
/// — construction is overwhelmingly table lookups, where the pre-interning
/// shared_ptr trees paid a heap allocation plus refcount traffic per node.
///
/// Process-global (not thread_local) because the NameTable itself is a
/// process-global singleton. Since the table accepts concurrent interning,
/// the live sink is a set of relaxed atomics (nameTableCountersAtomic());
/// this struct is the plain snapshot handed to callers by
/// nameTableCounters(), preserving the snapshot-and-subtract idiom.
struct NameTableCounters {
  uint64_t NamesInterned = 0; ///< Distinct names created (table growth).
  uint64_t InternHits = 0;    ///< Constructions answered by an existing node.
  uint64_t NameTableBytes = 0; ///< Approx. resident table bytes (gauge).

  void reset() { *this = NameTableCounters(); }

  NameTableCounters operator-(const NameTableCounters &O) const {
    NameTableCounters R;
    R.NamesInterned = NamesInterned - O.NamesInterned;
    R.InternHits = InternHits - O.InternHits;
    // A gauge, like PeakDbmBytes: the delta reports the later snapshot's
    // absolute footprint (the table never shrinks).
    R.NameTableBytes = NameTableBytes;
    return R;
  }
};

inline std::ostream &operator<<(std::ostream &OS, const NameTableCounters &C) {
  OS << "{namesInterned=" << C.NamesInterned << " internHits=" << C.InternHits
     << " nameTableBytes=" << C.NameTableBytes << "}";
  return OS;
}

/// The live, concurrently-updated name-table counter sink. All updates use
/// relaxed ordering: these are monotone statistics, not synchronization.
struct AtomicNameTableCounters {
  std::atomic<uint64_t> NamesInterned{0};
  std::atomic<uint64_t> InternHits{0};
  std::atomic<uint64_t> NameTableBytes{0}; ///< Gauge; stored, not added.

  void reset() {
    NamesInterned.store(0, std::memory_order_relaxed);
    InternHits.store(0, std::memory_order_relaxed);
    NameTableBytes.store(0, std::memory_order_relaxed);
  }
};

/// The process's name-table counter sink (see AtomicNameTableCounters).
inline AtomicNameTableCounters &nameTableCountersAtomic() {
  static AtomicNameTableCounters Counters;
  return Counters;
}

/// A point-in-time snapshot of the process-global name-table counters.
/// Unlike the thread_local sinks this returns BY VALUE: the live sink is
/// atomic (concurrent interning), and callers only ever want a consistent
/// plain-struct copy to subtract against.
inline NameTableCounters nameTableCounters() {
  const AtomicNameTableCounters &A = nameTableCountersAtomic();
  NameTableCounters S;
  S.NamesInterned = A.NamesInterned.load(std::memory_order_relaxed);
  S.InternHits = A.InternHits.load(std::memory_order_relaxed);
  S.NameTableBytes = A.NameTableBytes.load(std::memory_order_relaxed);
  return S;
}

/// A bundle of every thread_local counter sink, used to carry counter
/// deltas across threads. The domain/closure sinks are thread_local by
/// design (one analysis engine per thread); when a TaskPool worker runs
/// analysis work, its deltas land in the WORKER's sinks and would be
/// invisible to bench reporting on the main thread. The pool snapshots the
/// worker sinks around each task and merges the deltas back into the
/// calling thread's sinks, so "read the current thread's counters" stays
/// correct whether or not work was farmed out.
///
/// NameTableCounters are deliberately absent: that sink is process-global
/// and atomic (nameTableCountersAtomic()), so worker-thread interning is
/// already counted without any merge step.
struct ThreadCounters {
  ClosureCounters Closure;
  ZoneCounters Zone;
  StagedCounters Staged;
  DisIntervalCounters DisInterval;

  /// Copies the calling thread's live sinks.
  static ThreadCounters snapshot() {
    return {closureCounters(), zoneCounters(), stagedCounters(),
            disIntervalCounters()};
  }

  /// The work performed since \p Base (both taken on the same thread).
  /// Gauges follow the operator- convention: the delta carries this
  /// snapshot's absolute gauge value.
  ThreadCounters deltaSince(const ThreadCounters &Base) const {
    return {Closure - Base.Closure, Zone - Base.Zone, Staged - Base.Staged,
            DisInterval - Base.DisInterval};
  }

  /// Accumulates a delta into this bundle (counters add, gauges max).
  void addDelta(const ThreadCounters &D) {
    Closure.mergeFrom(D.Closure);
    Zone.mergeFrom(D.Zone);
    Staged.mergeFrom(D.Staged);
    DisInterval.mergeFrom(D.DisInterval);
  }

  /// Folds this bundle into the calling thread's live sinks.
  void mergeIntoCurrentThread() const {
    closureCounters().mergeFrom(Closure);
    zoneCounters().mergeFrom(Zone);
    stagedCounters().mergeFrom(Staged);
    disIntervalCounters().mergeFrom(DisInterval);
  }

  void reset() { *this = ThreadCounters(); }
};

/// Records a DBM matrix allocation of \p Cells entries (fresh buffers and
/// copy-on-write clones alike): bumps CellsStored and the PeakDbmBytes
/// high-water mark.
inline void recordDbmAlloc(size_t Cells) {
  ClosureCounters &C = closureCounters();
  C.CellsStored += Cells;
  uint64_t Bytes = static_cast<uint64_t>(Cells) * sizeof(int64_t);
  if (Bytes > C.PeakDbmBytes)
    C.PeakDbmBytes = Bytes;
}

} // namespace dai

#endif // DAI_SUPPORT_STATISTICS_H
