//===-- support/fault_injection.h - Deterministic fault injection -*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection for robustness tests: trigger points at the
/// cell-evaluation, closure-kernel, and memo-table boundaries fire a planned
/// fault on every Nth trigger (stride + seed-derived offset), letting tests
/// prove that a cancellation or allocation failure at ANY analysis boundary
/// leaves the DAIG audit-clean and re-demandable.
///
/// Two fault kinds:
///  - Cancel: requests the plan's CancellationToken; the next budget
///    checkpoint honors it (the cooperative path users actually hit).
///  - AllocFail: throws SimulatedAllocFailure (a std::bad_alloc) directly at
///    the trigger point — the hard path. Trigger points sit at kernel ENTRY,
///    before any mutation of shared copy-on-write state, so the unwind
///    cannot leave a half-closed DBM or half-inserted memo entry behind.
///
/// Compiled in under the DAI_FAULT_INJECTION CMake option (default ON: a
/// disarmed trigger is one thread_local load and compare, off the measured
/// counter paths). With the option OFF the macro expands to nothing.
///
/// Everything is deterministic: the Nth-trigger schedule depends only on
/// (Stride, Offset) and the analysis's own evaluation order — no clocks, no
/// randomness — so a failing seed/stride pair replays exactly.
///
//===----------------------------------------------------------------------===//

#ifndef DAI_SUPPORT_FAULT_INJECTION_H
#define DAI_SUPPORT_FAULT_INJECTION_H

#ifdef DAI_FAULT_INJECTION

#include "support/budget.h"

#include <cstdint>
#include <new>

namespace dai::fi {

/// Instrumented analysis boundaries (bit positions for Plan::SiteMask).
enum class Site : uint8_t {
  CellEval = 0, ///< Daig::queryState demand-miss entry.
  Fix = 1,      ///< Daig::queryFix iteration entry.
  Closure = 2,  ///< Octagon/zone closure-kernel entries.
  Memo = 3,     ///< MemoTable lookup/store entries.
};

enum class Kind : uint8_t { Cancel, AllocFail };

/// Thrown by an armed AllocFail trigger. Derives from std::bad_alloc so
/// code paths treating allocation failure generically are exercised.
class SimulatedAllocFailure : public std::bad_alloc {
public:
  const char *what() const noexcept override {
    return "simulated allocation failure (fault injection)";
  }
};

/// One deterministic fault schedule: fire Kind on every Stride-th trigger
/// (counted across all unmasked sites), phase-shifted by Offset.
struct Plan {
  Kind FaultKind = Kind::Cancel;
  uint64_t Stride = 0; ///< 0 = disarmed.
  uint64_t Offset = 0; ///< Seed-derived phase: varies WHICH trigger fires.
  uint32_t SiteMask = ~0u;          ///< Participating sites (1 << Site).
  CancellationToken *Token = nullptr; ///< Cancel target; not owned.
  uint64_t Count = 0;               ///< Triggers observed (mutable state).
  uint64_t Fired = 0;               ///< Faults delivered.
};

inline Plan &plan() {
  static thread_local Plan P;
  return P;
}

inline void arm(const Plan &P) { plan() = P; }
inline void disarm() { plan().Stride = 0; }

inline void triggerPoint(Site S) {
  Plan &P = plan();
  if (P.Stride == 0)
    return;
  if (!(P.SiteMask & (1u << static_cast<unsigned>(S))))
    return;
  uint64_t N = ++P.Count;
  if ((N + P.Offset) % P.Stride != 0)
    return;
  ++P.Fired;
  if (P.FaultKind == Kind::Cancel) {
    if (P.Token)
      P.Token->requestCancel(); // honored at the next budget checkpoint
    return;
  }
  throw SimulatedAllocFailure();
}

} // namespace dai::fi

#define DAI_FAULT_POINT(site) ::dai::fi::triggerPoint(::dai::fi::Site::site)

#else // !DAI_FAULT_INJECTION

#define DAI_FAULT_POINT(site) ((void)0)

#endif // DAI_FAULT_INJECTION

#endif // DAI_SUPPORT_FAULT_INJECTION_H
