//===-- support/task_pool.h - Work-stealing task pool ----------*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing thread pool for running batches of independent
/// analysis tasks — the scheduler behind InterprocEngine's parallel mode
/// (one task per (function, context) instance within a quiescence pass)
/// and the batch-verification bench (one task per corpus program).
///
/// Design:
///  - Per-worker deques. run() deals the batch round-robin across all
///    workers; each worker pops its own deque from the back (LIFO, cache
///    warm) and, when empty, steals from a victim's FRONT — taking half of
///    the victim's queue in one lock acquisition ("steal-half"), which
///    bounds the number of steal operations at O(P log N) per batch.
///  - Idle parking. Workers with no local work and no victim to rob park
///    on a condition variable; run() wakes them by crediting the queued
///    count under the same mutex (no lost wakeups, no idle spinning).
///  - Caller participation. The thread calling run() is worker 0: it
///    executes tasks alongside the spawned threads and only blocks once
///    the batch has no runnable task left for it.
///  - Counter repatriation. The analysis counters (closure/zone/staged)
///    are thread_local sinks; work executed on a spawned worker would be
///    invisible to the caller's sinks. The pool snapshots each worker's
///    sinks around task execution and folds the deltas into the CALLING
///    thread's sinks before run() returns, so bench totals include
///    worker-thread work (the name-table sink is process-global and
///    atomic, and needs no repatriation).
///
/// Exceptions thrown by tasks are captured; the batch still runs to
/// completion (every task executes exactly once) and the first captured
/// exception is rethrown from run() after the counter merge.
///
/// run() is a barrier and is NOT reentrant: tasks must not call run() on
/// the pool executing them.
///
//===----------------------------------------------------------------------===//

#ifndef DAI_SUPPORT_TASK_POOL_H
#define DAI_SUPPORT_TASK_POOL_H

#include "support/observe.h"
#include "support/statistics.h"

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dai {

class TaskPool {
public:
  using Task = std::function<void()>;

  /// Creates a pool with \p Threads total workers (including the caller of
  /// run()); 0 means hardwareParallelism(). A pool of 1 spawns no threads
  /// and run() degrades to executing the batch inline, in order.
  explicit TaskPool(unsigned Threads = 0);
  ~TaskPool();

  TaskPool(const TaskPool &) = delete;
  TaskPool &operator=(const TaskPool &) = delete;

  /// Total workers, caller included.
  unsigned parallelism() const { return NumWorkers; }

  /// The hardware concurrency hint, clamped to at least 1.
  static unsigned hardwareParallelism() {
    unsigned N = std::thread::hardware_concurrency();
    return N == 0 ? 1u : N;
  }

  /// Runs \p Tasks to completion. Barrier: returns only when every task
  /// has executed. Worker-thread counter deltas are merged into the
  /// calling thread's sinks before returning; the first task exception
  /// (if any) is rethrown after that merge.
  void run(std::vector<Task> Tasks);

private:
  struct WorkerDeque {
    std::mutex M;
    std::deque<Task> Q;
  };

  void workerLoop(unsigned Id);
  /// Pops a task for worker \p Id: own deque from the back, else steal
  /// half of a victim's deque from the front. Returns an empty function
  /// when no work is available anywhere.
  Task grabTask(unsigned Id);
  void recordError();
  void finishTask();

  unsigned NumWorkers;
  std::vector<std::unique_ptr<WorkerDeque>> Deques; ///< [0] = caller.
  std::vector<std::thread> Workers;                 ///< NumWorkers - 1.

  std::mutex WakeM;
  std::condition_variable WakeCv; ///< Parked workers wait here.
  std::condition_variable DoneCv; ///< run() waits for Remaining == 0 here.
  bool Stop = false;              ///< Guarded by WakeM.
  std::atomic<size_t> Remaining{0}; ///< Tasks not yet finished executing.
  std::atomic<size_t> Queued{0};    ///< Tasks sitting in deques (or in a
                                    ///< thief's hands, pre-banking) — the
                                    ///< park/rescan signal.

  std::mutex AggM;
  ThreadCounters Agg;          ///< Worker-side counter deltas for the batch.
  MetricsRegistry AggMetrics;  ///< Worker-side metric deltas (same barrier).

  std::mutex ErrM;
  std::exception_ptr FirstError;
};

} // namespace dai

#endif // DAI_SUPPORT_TASK_POOL_H
