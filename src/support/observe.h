//===-- support/observe.h - Tracing, metrics & provenance -------*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unified observability layer: structured tracing, a metrics registry,
/// and the export bridges that publish the ad-hoc counter families of
/// support/statistics.h under their established (bench JSON) names.
///
/// Tracing. Every interesting boundary of the stack — DAIG cell evaluation
/// and fix iterations, memo hit/miss/eviction, octagon/zone closure
/// kernels, staged escalations, budget checkpoints and degradations,
/// checker obligation evaluation, interprocedural quiescence passes, and
/// TaskPool task execution — carries a hook (RAII TraceSpan for regions,
/// traceInstant for points). Hooks record into a lock-free per-thread ring:
/// the owning thread is the ONLY writer (plain slot store, then a release
/// publish of the head index); exporters acquire the head and read only
/// published slots, so enabled runs are schedule-safe and clean under the
/// tsan lane. A full ring DROPS further events (counted in traceStats())
/// rather than wrapping — overwriting a slot a concurrent exporter may be
/// reading would be a race. Rings have process lifetime (like the
/// NameTable), so events recorded by TaskPool workers survive thread exit.
///
/// Overhead contract: with tracing disabled every hook costs one
/// thread_local pointer load + branch plus a relaxed load of the ring's
/// owner-local enable flag — no clock read, no slot write, no counter
/// update. The bench regression gate enforces this observably: the
/// *_trace_* overhead counters emitted by the benches must be zero in
/// un-traced gate runs, and all gate counter families are bit-identical to
/// the pre-observability baselines.
///
/// Export: Chrome trace_event JSON (load in Perfetto / chrome://tracing)
/// via writeChromeTrace() or the DAI_TRACE=<file> environment variable
/// (flushed at process exit; DAI_TRACE_FOLDED=<file> additionally writes
/// the collapsed-stack form), and collapsed-stack text for flame graphs
/// via writeCollapsedStack(). Events are sorted by timestamp per thread at
/// export, so ts is monotone per tid (scripts/check_trace_json.sh checks
/// this plus the required-key schema).
///
/// Metrics. MetricsRegistry holds named counters (merge: add), gauges
/// (merge: max) and fixed-bucket histograms (deterministic, explicit
/// boundaries; merge: bucket-wise add) in a sorted map, so toJson() is
/// deterministic. metricsRegistry() is the thread_local sink; TaskPool
/// repatriates worker deltas alongside ThreadCounters (snapshot/deltaSince/
/// mergeFrom), and at threads=1 the inline path leaves counters
/// bit-identical to a serial run. The exportStatistics/
/// exportDomainCounters/exportTraceStats bridges migrate the Statistics and
/// thread_local counter families onto the registry WITHOUT changing their
/// emitted names: the keys are exactly the fig10 bench JSON field names
/// (dbm_cells_touched, zone_closure_vertices_visited, ...), so a bench that
/// emits a registry snapshot cannot drift from the gate schema.
///
/// Demand provenance lives in daig/daig.h (Daig::explainQuery), built on
/// the same disabled-means-one-branch discipline: a per-DAIG recorder
/// pointer is null except inside explainQuery.
///
//===----------------------------------------------------------------------===//

#ifndef DAI_SUPPORT_OBSERVE_H
#define DAI_SUPPORT_OBSERVE_H

#include "support/statistics.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace dai {

//===----------------------------------------------------------------------===//
// Structured tracing
//===----------------------------------------------------------------------===//

/// One recorded event. Nm must be a string literal (static duration): the
/// ring stores the pointer, never a copy.
struct TraceEvent {
  const char *Nm = nullptr;
  uint64_t TsNs = 0;  ///< Start time, ns since the process trace origin.
  uint64_t DurNs = 0; ///< Span duration; 0 for instants.
  uint64_t A0 = 0, A1 = 0; ///< Small numeric payloads (NameId, iteration..).
  uint32_t Depth = 0;      ///< Span nesting depth at record time.
  uint8_t Ph = 0;          ///< 0 = complete span ("X"), 1 = instant ("i").
};

/// The per-thread event ring. Single-writer (the owning thread), multi-
/// reader (exporters): slots below the published Head are immutable once
/// the release store of Head makes them visible. Registered globally on
/// first use and never freed (process lifetime).
class TraceRing {
public:
  /// Events per ring. 64Ki events ≈ 3 MiB, allocated lazily on the first
  /// enabled record — a never-traced thread pays one cache line.
  static constexpr uint32_t kCapacity = 1u << 16;

  /// The owner-side enable check: relaxed load of a flag only
  /// setTracingEnabled writes.
  bool on() const { return On.load(std::memory_order_relaxed); }

  /// Owner thread only. Records \p E (with the ring's current depth
  /// already filled in by the caller) or counts a drop when full.
  void record(const TraceEvent &E);

  /// Owner thread only: span nesting depth bookkeeping.
  uint32_t enterSpan() { return Depth++; }
  uint32_t exitSpan() { return --Depth; }

  uint32_t tid() const { return Tid; }

private:
  friend class TraceRegistryAccess;
  std::atomic<bool> On{false};
  std::atomic<uint32_t> Head{0};
  std::atomic<TraceEvent *> Buf{nullptr};
  uint32_t Depth = 0; ///< Owner-only; recorded into events, never shared.
  uint32_t Tid = 0;   ///< Dense, assigned at registration (1-based).
};

namespace observe_detail {
/// The hook-side cache. Null until the thread's first hook fires.
inline thread_local TraceRing *TlsRing = nullptr;
/// Creates + registers this thread's ring (seeding its enable flag from
/// the global tracing state) and caches it in TlsRing.
TraceRing *initThreadRing();
} // namespace observe_detail

/// The per-hook gate: one thread_local load + branch (plus a relaxed load
/// of the owner-local enable flag). Returns the thread's ring when tracing
/// is enabled, else nullptr.
inline TraceRing *traceActive() {
  TraceRing *R = observe_detail::TlsRing;
  if (R == nullptr)
    R = observe_detail::initThreadRing();
  return R->on() ? R : nullptr;
}

/// Monotonic ns since the process trace origin (first use).
uint64_t traceNowNs();

/// RAII region marker. Construct at the top of the instrumented scope;
/// the event is recorded at scope exit (with start + duration), so a
/// disabled run never touches the clock.
class TraceSpan {
public:
  explicit TraceSpan(const char *Nm, uint64_t A0 = 0, uint64_t A1 = 0)
      : R(traceActive()) {
    if (!R)
      return;
    this->Nm = Nm;
    this->A0 = A0;
    this->A1 = A1;
    Start = traceNowNs();
    Depth = R->enterSpan();
  }
  ~TraceSpan() {
    if (!R)
      return;
    R->exitSpan();
    R->record({Nm, Start, traceNowNs() - Start, A0, A1, Depth, /*Ph=*/0});
  }
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

private:
  TraceRing *R;
  const char *Nm = nullptr;
  uint64_t Start = 0, A0 = 0, A1 = 0;
  uint32_t Depth = 0;
};

/// Point event (memo hit, budget checkpoint, ...).
inline void traceInstant(const char *Nm, uint64_t A0 = 0, uint64_t A1 = 0) {
  if (TraceRing *R = traceActive()) {
    TraceEvent E{Nm, traceNowNs(), 0, A0, A1, 0, /*Ph=*/1};
    E.Depth = R->enterSpan(); // read current depth...
    R->exitSpan();            // ...without changing it
    R->record(E);
  }
}

/// Flips tracing for every registered ring (and seeds rings created
/// later). Call from quiescent points only — i.e. not while another
/// thread is mid-workload — which every in-tree caller (tests, examples,
/// env-var init, TaskPool barriers) satisfies.
void setTracingEnabled(bool Enable);
bool tracingEnabled();

/// Drops all recorded events and zeroes traceStats(). Quiescent points
/// only (same contract as setTracingEnabled).
void resetTrace();

/// Process-global tracing overhead counters. The benches emit these as
/// dai_trace_events_recorded / dai_trace_events_dropped; the bench gate
/// asserts both are zero in un-traced runs.
struct TraceStats {
  uint64_t EventsRecorded = 0;
  uint64_t EventsDropped = 0;
};
TraceStats traceStats();

/// A published event together with its thread id (for tests/exporters).
struct TaggedTraceEvent {
  TraceEvent E;
  uint32_t Tid = 0;
};

/// Snapshot of every published event across all rings, sorted by
/// (Tid, TsNs, Depth) — the exact order the exporters emit.
std::vector<TaggedTraceEvent> collectTrace();

/// Writes the Chrome trace_event JSON ({"traceEvents": [...]}, one event
/// per line, ts monotone per tid). Returns false when the file cannot be
/// opened.
bool writeChromeTrace(const std::string &Path);

/// Writes collapsed-stack lines ("outer;inner <self-time-ns>") suitable
/// for flamegraph.pl. Deterministically sorted. Returns false when the
/// file cannot be opened.
bool writeCollapsedStack(const std::string &Path);

//===----------------------------------------------------------------------===//
// Metrics registry
//===----------------------------------------------------------------------===//

/// Fixed-bucket histogram with explicit, deterministic upper bounds: value
/// v lands in the first bucket with v <= bound, or the overflow bucket.
/// Two histograms recorded from the same value sequence are bit-identical
/// regardless of platform or schedule.
class Histogram {
public:
  Histogram() = default;
  explicit Histogram(std::vector<uint64_t> UpperBounds)
      : Bounds(std::move(UpperBounds)), Counts(Bounds.size() + 1, 0) {}

  void record(uint64_t V) {
    size_t I = 0;
    while (I < Bounds.size() && V > Bounds[I])
      ++I;
    ++Counts[I];
    ++Total;
  }

  /// Bucket-wise add; bounds must match (they come from the same static
  /// table in every in-tree use).
  void merge(const Histogram &O) {
    if (Counts.size() != O.Counts.size()) {
      *this = O; // adopting an incompatible (default-empty) side
      return;
    }
    for (size_t I = 0; I < Counts.size(); ++I)
      Counts[I] += O.Counts[I];
    Total += O.Total;
  }

  /// Bucket-wise subtract (for worker-delta repatriation).
  void subtract(const Histogram &O) {
    if (Counts.size() != O.Counts.size())
      return;
    for (size_t I = 0; I < Counts.size(); ++I)
      Counts[I] -= O.Counts[I];
    Total -= O.Total;
  }

  const std::vector<uint64_t> &bounds() const { return Bounds; }
  const std::vector<uint64_t> &counts() const { return Counts; }
  uint64_t total() const { return Total; }

  /// The default latency boundaries (ns): 1us..1s in 1-2-5 steps — fixed
  /// forever so recorded distributions are comparable across runs.
  static const std::vector<uint64_t> &defaultLatencyBoundsNs();

private:
  std::vector<uint64_t> Bounds;
  std::vector<uint64_t> Counts; ///< Bounds.size() + 1 (overflow last).
  uint64_t Total = 0;
};

/// Named counters / gauges / histograms in one sorted map (deterministic
/// iteration ⇒ deterministic JSON). Not thread-safe by itself: each thread
/// owns metricsRegistry(); cross-thread movement goes through snapshot /
/// deltaSince / mergeFrom at TaskPool barriers, mirroring ThreadCounters.
class MetricsRegistry {
public:
  enum class Kind : uint8_t { Counter, Gauge, Hist };

  struct Metric {
    Kind K = Kind::Counter;
    uint64_t V = 0;
    Histogram H;
  };

  /// Counter: merge adds.
  void add(std::string_view Nm, uint64_t Delta = 1) {
    slot(Nm, Kind::Counter).V += Delta;
  }
  /// Gauge: merge takes the max (peak semantics, like PeakDbmBytes).
  void gaugeMax(std::string_view Nm, uint64_t V) {
    Metric &M = slot(Nm, Kind::Gauge);
    if (V > M.V)
      M.V = V;
  }
  /// Histogram with explicit bounds; returns the named instance (creating
  /// it on first use).
  Histogram &histogram(std::string_view Nm,
                       const std::vector<uint64_t> &UpperBounds) {
    Metric &M = slot(Nm, Kind::Hist);
    if (M.H.counts().empty())
      M.H = Histogram(UpperBounds);
    return M.H;
  }
  /// Latency convenience: default-bounds histogram of ns values.
  void recordLatencyNs(std::string_view Nm, uint64_t Ns) {
    histogram(Nm, Histogram::defaultLatencyBoundsNs()).record(Ns);
  }

  uint64_t value(std::string_view Nm) const {
    auto It = M.find(Nm);
    return It == M.end() ? 0 : It->second.V;
  }
  const Metric *find(std::string_view Nm) const {
    auto It = M.find(Nm);
    return It == M.end() ? nullptr : &It->second;
  }
  const std::map<std::string, Metric, std::less<>> &metrics() const {
    return M;
  }
  bool empty() const { return M.empty(); }
  void clear() { M.clear(); }

  MetricsRegistry snapshot() const { return *this; }

  /// The since-\p Before delta: counters and histogram buckets subtract;
  /// gauges carry the CURRENT value (max-merge makes that idempotent).
  MetricsRegistry deltaSince(const MetricsRegistry &Before) const;

  /// Counters add, gauges max, histogram buckets add.
  void mergeFrom(const MetricsRegistry &O);

  /// Deterministic one-object JSON: counters/gauges as numbers, histograms
  /// as {"bounds": [...], "counts": [...], "total": N}.
  std::string toJson() const;

private:
  Metric &slot(std::string_view Nm, Kind K) {
    auto It = M.find(Nm);
    if (It == M.end())
      It = M.emplace(std::string(Nm), Metric{K, 0, {}}).first;
    return It->second;
  }

  std::map<std::string, Metric, std::less<>> M;
};

/// The thread's metric sink (one per thread, like the counter sinks in
/// support/statistics.h). TaskPool repatriates worker deltas at batch
/// barriers.
MetricsRegistry &metricsRegistry();

//===----------------------------------------------------------------------===//
// Export bridges: established counter families → registry names
//===----------------------------------------------------------------------===//

/// Publishes \p S onto \p R under the checker/engine bench field names
/// (transfers, joins, widens, fix_checks, unrollings, cell_reuses,
/// memo_hits, memo_misses, cells_dirtied, call_summaries, memo_evictions,
/// cells_degraded, checks_evaluated, checks_rechecked, alarms_raised),
/// optionally prefixed.
void exportStatistics(const Statistics &S, MetricsRegistry &R,
                      const char *Prefix = "");

/// Publishes the calling thread's domain counter families under the fig10
/// bench JSON schema names: octagon closure counters unprefixed
/// (full_closes .. dbm_peak_bytes), zone_*-prefixed zone counters,
/// staged_*-prefixed staged counters, and the name-table family
/// (names_interned, intern_hits, name_table_bytes). Gauges publish as
/// gauges (merge: max), everything else as counters.
void exportDomainCounters(MetricsRegistry &R);

/// Publishes traceStats() as dai_trace_events_recorded /
/// dai_trace_events_dropped — the *_trace_* fields the bench gate asserts
/// are zero in un-traced runs.
void exportTraceStats(MetricsRegistry &R);

} // namespace dai

#endif // DAI_SUPPORT_OBSERVE_H
