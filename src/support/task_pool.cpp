//===-- support/task_pool.cpp - Work-stealing task pool -------------------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/task_pool.h"

#include <cassert>

namespace dai {

TaskPool::TaskPool(unsigned Threads) {
  NumWorkers = Threads == 0 ? hardwareParallelism() : Threads;
  Deques.reserve(NumWorkers);
  for (unsigned I = 0; I < NumWorkers; ++I)
    Deques.push_back(std::make_unique<WorkerDeque>());
  Workers.reserve(NumWorkers > 0 ? NumWorkers - 1 : 0);
  for (unsigned I = 1; I < NumWorkers; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> G(WakeM);
    Stop = true;
  }
  WakeCv.notify_all();
  for (std::thread &T : Workers)
    T.join();
}

TaskPool::Task TaskPool::grabTask(unsigned Id) {
  // Own deque first: back pop keeps the most recently dealt work local.
  {
    WorkerDeque &Own = *Deques[Id];
    std::lock_guard<std::mutex> G(Own.M);
    if (!Own.Q.empty()) {
      Task T = std::move(Own.Q.back());
      Own.Q.pop_back();
      Queued.fetch_sub(1, std::memory_order_acq_rel);
      return T;
    }
  }
  // Steal-half from the first non-empty victim, scanning round-robin from
  // our right neighbor. The stolen run comes off the victim's FRONT (the
  // oldest work, minimizing contention with the victim's back pops); we
  // keep one task to run and bank the rest in our own deque.
  for (unsigned Off = 1; Off < NumWorkers; ++Off) {
    WorkerDeque &Victim = *Deques[(Id + Off) % NumWorkers];
    Task T;
    std::vector<Task> Loot;
    {
      std::lock_guard<std::mutex> G(Victim.M);
      size_t N = Victim.Q.size();
      if (N == 0)
        continue;
      size_t Take = (N + 1) / 2;
      for (size_t I = 0; I < Take; ++I) {
        Loot.push_back(std::move(Victim.Q.front()));
        Victim.Q.pop_front();
      }
    }
    // Only the task we run ourselves leaves the queued population; the
    // banked remainder stays counted (it is stealable again once pushed).
    // Between the pop above and the push below the banked tasks are
    // invisible to scans but still counted in Queued, which keeps other
    // workers rescanning instead of parking across the window.
    Queued.fetch_sub(1, std::memory_order_acq_rel);
    T = std::move(Loot.front());
    if (Loot.size() > 1) {
      WorkerDeque &Own = *Deques[Id];
      std::lock_guard<std::mutex> G(Own.M);
      for (size_t I = 1; I < Loot.size(); ++I)
        Own.Q.push_back(std::move(Loot[I]));
    }
    return T;
  }
  return Task();
}

void TaskPool::recordError() {
  std::lock_guard<std::mutex> G(ErrM);
  if (!FirstError)
    FirstError = std::current_exception();
}

void TaskPool::finishTask() {
  if (Remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last task of the batch: release the caller blocked in run().
    std::lock_guard<std::mutex> G(WakeM);
    DoneCv.notify_all();
  }
}

void TaskPool::workerLoop(unsigned Id) {
  for (;;) {
    Task T = grabTask(Id);
    if (T) {
      // Bracket the task with counter + metric snapshots so its
      // thread_local deltas can be repatriated to the caller after the
      // batch.
      ThreadCounters Before = ThreadCounters::snapshot();
      MetricsRegistry MBefore = metricsRegistry().snapshot();
      {
        TraceSpan Sp("taskpool.task", Id);
        try {
          T();
        } catch (...) {
          recordError();
        }
      }
      ThreadCounters Delta = ThreadCounters::snapshot().deltaSince(Before);
      MetricsRegistry MDelta = metricsRegistry().deltaSince(MBefore);
      {
        std::lock_guard<std::mutex> G(AggM);
        Agg.addDelta(Delta);
        AggMetrics.mergeFrom(MDelta);
      }
      finishTask();
      continue;
    }
    // Nothing to run or steal: park until work appears. Queued > 0 with an
    // empty scan means a thief is mid-bank — rescan instead of sleeping.
    // Taking WakeM before the re-check closes the race where run() deals
    // work and bumps the epoch between our failed scan and the wait.
    std::unique_lock<std::mutex> G(WakeM);
    if (Stop)
      return;
    if (Queued.load(std::memory_order_acquire) > 0) {
      G.unlock();
      std::this_thread::yield();
      continue;
    }
    WakeCv.wait(G, [&] {
      return Stop || Queued.load(std::memory_order_acquire) > 0;
    });
    if (Stop)
      return;
  }
}

void TaskPool::run(std::vector<Task> Tasks) {
  if (Tasks.empty())
    return;
  if (NumWorkers <= 1 || Tasks.size() == 1) {
    // Inline fast path: deterministic order, counters and metrics already
    // land in the caller's sinks (bit-identical to a serial run). Still
    // capture-and-rethrow so error behavior matches the threaded path
    // (every task runs once).
    for (Task &T : Tasks) {
      TraceSpan Sp("taskpool.task", 0);
      try {
        T();
      } catch (...) {
        recordError();
      }
    }
    std::exception_ptr E;
    {
      std::lock_guard<std::mutex> G(ErrM);
      E = FirstError;
      FirstError = nullptr;
    }
    if (E)
      std::rethrow_exception(E);
    return;
  }

  assert(Remaining.load(std::memory_order_relaxed) == 0 &&
         "TaskPool::run is not reentrant");
  Remaining.store(Tasks.size(), std::memory_order_release);
  {
    // Credit Queued BEFORE dealing (a worker popping a freshly dealt task
    // must never drive the counter below zero), under WakeM so a worker
    // cannot check the park predicate between the store and the notify.
    std::lock_guard<std::mutex> G(WakeM);
    Queued.fetch_add(Tasks.size(), std::memory_order_acq_rel);
  }
  // Deal round-robin so every worker starts with a local share.
  for (size_t I = 0; I < Tasks.size(); ++I) {
    WorkerDeque &D = *Deques[I % NumWorkers];
    std::lock_guard<std::mutex> G(D.M);
    D.Q.push_back(std::move(Tasks[I]));
  }
  WakeCv.notify_all();

  // The caller is worker 0: run tasks until none are reachable, then wait
  // for stragglers executing on other workers.
  for (;;) {
    Task T = grabTask(0);
    if (!T)
      break;
    {
      TraceSpan Sp("taskpool.task", 0);
      try {
        T();
      } catch (...) {
        recordError();
      }
    }
    finishTask();
  }
  {
    std::unique_lock<std::mutex> G(WakeM);
    DoneCv.wait(G, [&] {
      return Remaining.load(std::memory_order_acquire) == 0;
    });
  }

  // Repatriate worker-side counter and metric deltas into the caller's
  // sinks. The caller's own task executions already landed there directly.
  ThreadCounters Batch;
  MetricsRegistry BatchMetrics;
  {
    std::lock_guard<std::mutex> G(AggM);
    Batch = Agg;
    Agg.reset();
    BatchMetrics = std::move(AggMetrics);
    AggMetrics.clear();
  }
  Batch.mergeIntoCurrentThread();
  metricsRegistry().mergeFrom(BatchMetrics);

  std::exception_ptr E;
  {
    std::lock_guard<std::mutex> G(ErrM);
    E = FirstError;
    FirstError = nullptr;
  }
  if (E)
    std::rethrow_exception(E);
}

} // namespace dai
