//===-- support/budget.h - Analysis resource governance ---------*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Resource governance for demanded analyses: step/wall/byte budgets, a
/// cooperative cancellation token, and hard iteration ceilings, checked at
/// DAIG cell-evaluation and engine fixpoint boundaries (budgetCheckpoint).
///
/// The contract is degrade-don't-die. Budgets have two thresholds:
///  - SOFT (a configurable fraction of any limit): the analysis keeps
///    producing exact answers for work already in flight but stops paying
///    for precision — the staged domain suppresses NEW octagon escalations
///    and the interprocedural entry widening delay drops to zero. Cells
///    whose value was coarsened this way are flagged `degraded`.
///  - HARD (the limit itself): demand-misses stop evaluating; the affected
///    cell resolves to ⊤ (D::initialEntry({}), an over-approximation of
///    every reachable state, hence sound) and is flagged `degraded`. The
///    flag propagates to every cell computed from a degraded input, so a
///    query answer is either bit-identical to an unbudgeted run or
///    verifiably marked (Daig::cellDegraded / locationDegraded).
///
/// Cancellation is exception-based and cooperative: a requested token makes
/// the next checkpoint throw AnalysisCancelled. Checkpoints sit BEFORE any
/// structure or cell mutation, so unwinding leaves the DAIG audit-clean
/// (Daig::auditInvariants) and a later re-demand — with the token reset —
/// reproduces the uninterrupted run bit for bit: cells completed before the
/// cancel hold exactly the values the clean run computes, and evaluation
/// order is deterministic.
///
/// All state is thread_local (one analysis engine per thread, like the
/// counter sinks in support/statistics.h); budgets nest via BudgetScope.
///
//===----------------------------------------------------------------------===//

#ifndef DAI_SUPPORT_BUDGET_H
#define DAI_SUPPORT_BUDGET_H

#include "support/observe.h"
#include "support/statistics.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace dai {

/// Cooperative cancellation: the owner requests, the analysis honors the
/// request at its next checkpoint by throwing AnalysisCancelled. atomic so
/// a watchdog/UI thread may request while the analysis thread runs.
class CancellationToken {
public:
  void requestCancel() { Flag.store(true, std::memory_order_relaxed); }
  void reset() { Flag.store(false, std::memory_order_relaxed); }
  bool cancelled() const { return Flag.load(std::memory_order_relaxed); }

private:
  std::atomic<bool> Flag{false};
};

/// Resource limits for one analysis region. A zero limit means unlimited;
/// a default-constructed budget governs nothing but still honors a token.
struct AnalysisBudget {
  uint64_t MaxSteps = 0;    ///< Checkpoint count (≈ cell evaluations).
  double MaxWallMs = 0;     ///< Wall-clock deadline in milliseconds.
  uint64_t MaxPeakBytes = 0; ///< Ceiling on the tracked allocation gauges
                             ///< (peak DBM bytes + name-table bytes — the
                             ///< two dominant, instrumented footprints).
  unsigned SoftPct = 75;    ///< Percent of any limit at which soft
                            ///< degradation starts (see file header).
  CancellationToken *Cancel = nullptr; ///< Optional; not owned.
};

/// Thrown by budgetCheckpoint when a cancellation token is honored. The
/// DAIG guarantees no partial values are stored across the unwind.
class AnalysisCancelled : public std::runtime_error {
public:
  explicit AnalysisCancelled(const std::string &Site)
      : std::runtime_error("analysis cancelled (cooperative token) at " +
                           Site) {}
};

/// Thrown when a fixpoint loop exceeds its hard iteration ceiling — the
/// diagnostic of last resort against a non-converging (e.g. widening-free)
/// domain or a transfer-function bug. Never thrown under an active budget:
/// budgeted loops degrade to ⊤ instead.
class AnalysisDivergence : public std::runtime_error {
public:
  AnalysisDivergence(const std::string &What, uint64_t Iterations)
      : std::runtime_error(What + " exceeded the iteration ceiling (" +
                           std::to_string(Iterations) +
                           " iterations without convergence); the domain's "
                           "widening is not stabilizing") {}
};

/// Hard ceilings on the two unbounded analysis loops. Defaults are far
/// beyond what any widened domain needs (octagon/zone/interval converge in
/// < 10 fix checks on this repo's workloads) yet turn a hang into a
/// diagnostic in bounded time.
struct AnalysisLimits {
  uint64_t MaxFixUnrollings = 4096;   ///< Per queryFix call (DAIG loops).
  uint64_t MaxQuiescencePasses = 4096; ///< Interproc summary re-passes.
  uint64_t DegradedFixUnrollings = 32; ///< Tightened fix ceiling once a
                                       ///< budget is in soft degradation.
};

/// The thread's ceiling configuration (tests tighten it and restore).
inline AnalysisLimits &analysisLimits() {
  static thread_local AnalysisLimits Limits;
  return Limits;
}

/// Per-thread budget state installed by BudgetScope.
struct BudgetState {
  bool Active = false;
  AnalysisBudget B;
  uint64_t Steps = 0;
  std::chrono::steady_clock::time_point Start;
  bool Soft = false; ///< Latched: soft threshold crossed.
  bool Hard = false; ///< Latched: a hard limit crossed (⊤-degradation on).
  /// Degradation-provenance taint: set when an evaluation consumes a
  /// degraded value (or suppresses precision work); consumed by the DAIG's
  /// per-cell taint scope to mark the cell being computed.
  bool TaintPending = false;
};

inline BudgetState &budgetState() {
  static thread_local BudgetState State;
  return State;
}

inline bool budgetActive() { return budgetState().Active; }

/// Soft-or-hard degraded: precision-sacrificing fallbacks are in effect.
inline bool budgetDegraded() {
  const BudgetState &S = budgetState();
  return S.Active && (S.Soft || S.Hard);
}

/// Hard-exhausted: demand-misses must resolve to ⊤ instead of evaluating.
inline bool budgetExhausted() {
  const BudgetState &S = budgetState();
  return S.Active && S.Hard;
}

/// Mirror the budget events into the per-domain bench counter sinks (the
/// bench emits them per sweep size; the regression gate asserts they stay
/// zero on the default, un-budgeted workload).
inline void recordBudgetExhaustion() {
  traceInstant("budget.exhausted");
  ++zoneCounters().BudgetExhaustions;
  ++stagedCounters().BudgetExhaustions;
}
inline void recordDegradedCell() {
  traceInstant("budget.degraded_cell");
  ++zoneCounters().DegradedCells;
  ++stagedCounters().DegradedCells;
}
inline void recordCancellationHonored() {
  traceInstant("budget.cancelled");
  ++zoneCounters().CancellationsHonored;
  ++stagedCounters().CancellationsHonored;
}

/// The checkpoint: called at DAIG cell evaluation, fix iteration, and
/// engine quiescence boundaries. Counts a step, honors a pending
/// cancellation (throws AnalysisCancelled), and latches the soft/hard
/// thresholds. Wall and byte gauges are polled on a small stride — they
/// cost a clock read / two thread_local reads, not worth paying per cell.
inline void budgetCheckpoint(const char *Site) {
  BudgetState &S = budgetState();
  if (!S.Active)
    return;
  traceInstant("budget.checkpoint", S.Steps);
  if (S.B.Cancel && S.B.Cancel->cancelled()) {
    recordCancellationHonored();
    throw AnalysisCancelled(Site);
  }
  ++S.Steps;
  if (S.Hard)
    return; // already latched; nothing more to learn
  bool SoftNow = false, HardNow = false;
  auto classify = [&](uint64_t Used, uint64_t Limit) {
    if (!Limit)
      return;
    if (Used > Limit)
      HardNow = true;
    else if (Used * 100 > Limit * S.B.SoftPct)
      SoftNow = true;
  };
  classify(S.Steps, S.B.MaxSteps);
  bool PollGauges = S.Steps == 1 || (S.Steps & 15) == 0;
  if (S.B.MaxWallMs > 0 && PollGauges) {
    double Ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - S.Start)
                    .count();
    if (Ms > S.B.MaxWallMs)
      HardNow = true;
    else if (Ms * 100 > S.B.MaxWallMs * S.B.SoftPct)
      SoftNow = true;
  }
  if (S.B.MaxPeakBytes && PollGauges)
    classify(closureCounters().PeakDbmBytes +
                 nameTableCounters().NameTableBytes,
             S.B.MaxPeakBytes);
  if (HardNow) {
    S.Hard = S.Soft = true;
    recordBudgetExhaustion();
  } else if (SoftNow && !S.Soft) {
    S.Soft = true;
  }
}

/// Installs \p B as the thread's active budget for the scope's lifetime;
/// restores the previous budget state (nesting-safe) on exit.
class BudgetScope {
public:
  explicit BudgetScope(AnalysisBudget B) : Saved(budgetState()) {
    BudgetState &S = budgetState();
    S.Active = true;
    S.B = B;
    S.Steps = 0;
    S.Soft = S.Hard = false;
    S.TaintPending = false;
    S.Start = std::chrono::steady_clock::now();
  }
  ~BudgetScope() { budgetState() = Saved; }
  BudgetScope(const BudgetScope &) = delete;
  BudgetScope &operator=(const BudgetScope &) = delete;

private:
  BudgetState Saved;
};

/// Per-evaluation taint frame (used by Daig::queryState): captures whether
/// THIS evaluation consumed a degraded input, while re-propagating the
/// taint outward on destruction — including across exception unwinds — so
/// a parent evaluation consuming this cell's (marked) result also marks.
class BudgetTaintScope {
public:
  BudgetTaintScope() : Saved(budgetState().TaintPending) {
    budgetState().TaintPending = false;
  }
  /// True when the scoped evaluation consumed a degraded value.
  bool consumed() const { return budgetState().TaintPending; }
  ~BudgetTaintScope() { budgetState().TaintPending |= Saved; }
  BudgetTaintScope(const BudgetTaintScope &) = delete;
  BudgetTaintScope &operator=(const BudgetTaintScope &) = delete;

private:
  bool Saved;
};

} // namespace dai

#endif // DAI_SUPPORT_BUDGET_H
