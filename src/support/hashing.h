//===-- support/hashing.h - Hash combination utilities ---------*- C++ -*-===//
//
// Part of dai-cpp, a C++ reproduction of "Demanded Abstract Interpretation"
// (Stein, Chang, Sridharan; PLDI 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small deterministic hash-combination helpers used for DAIG names and
/// memo-table keys. Determinism across runs matters because benchmark
/// workloads are seeded and results must be reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef DAI_SUPPORT_HASHING_H
#define DAI_SUPPORT_HASHING_H

#include <cstdint>
#include <string_view>

namespace dai {

/// 64-bit FNV-1a hash of a byte range; stable across runs and platforms
/// (unlike std::hash, which libstdc++ seeds per-type but is stable enough;
/// we still prefer an explicitly specified function).
inline uint64_t fnv1a(const void *Data, size_t Len) {
  const auto *Bytes = static_cast<const unsigned char *>(Data);
  uint64_t H = 0xcbf29ce484222325ULL;
  for (size_t I = 0; I < Len; ++I) {
    H ^= Bytes[I];
    H *= 0x100000001b3ULL;
  }
  return H;
}

inline uint64_t hashString(std::string_view S) { return fnv1a(S.data(), S.size()); }

/// Combines two 64-bit hashes (boost::hash_combine-style, widened to 64 bit).
inline uint64_t hashCombine(uint64_t Seed, uint64_t V) {
  Seed ^= V + 0x9e3779b97f4a7c15ULL + (Seed << 12) + (Seed >> 4);
  return Seed;
}

/// Variadic convenience wrapper around hashCombine.
template <typename... Ts> uint64_t hashValues(Ts... Vs) {
  uint64_t H = 0x9e3779b97f4a7c15ULL;
  ((H = hashCombine(H, static_cast<uint64_t>(Vs))), ...);
  return H;
}

} // namespace dai

#endif // DAI_SUPPORT_HASHING_H
