//===-- tests/budget_test.cpp - Resource-governance tests -----------------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analysis budget layer (support/budget.h): checkpoint latching,
/// cooperative cancellation, graceful degradation to sound ⊤ answers with
/// per-cell degraded provenance, recovery via invalidateDegraded, the
/// staged domain's escalation suppression, and the hard iteration ceilings
/// on the DAIG fix loop and the interprocedural quiescence loop (including
/// a crafted widening-disabled non-converging input).
///
//===----------------------------------------------------------------------===//

#include "support/budget.h"

#include "cfg/cfg_analysis.h"
#include "domain/interval.h"
#include "domain/staged.h"
#include "interproc/engine.h"
#include "tests/test_util.h"

#include <gtest/gtest.h>

using namespace dai;
using namespace dai::test;

namespace {

/// Restores the thread's iteration ceilings on scope exit (tests tighten
/// them to provoke the divergence diagnostics in milliseconds).
struct LimitsGuard {
  AnalysisLimits Saved = analysisLimits();
  ~LimitsGuard() { analysisLimits() = Saved; }
};

/// Interval domain with widening DISABLED (widen = join): iterates of an
/// unbounded counting loop grow forever — the crafted non-converging input
/// the iteration ceiling must turn into a diagnostic rather than a hang.
struct NoWidenInterval : IntervalDomain {
  static Elem widen(const Elem &Prev, const Elem &Next) {
    return join(Prev, Next);
  }
  static const char *name() { return "interval-nowiden"; }
};

//===----------------------------------------------------------------------===//
// Checkpoint mechanics
//===----------------------------------------------------------------------===//

TEST(BudgetCheckpoint, InactiveBudgetIsFree) {
  // No scope installed: checkpoints neither count nor throw.
  budgetCheckpoint("test");
  EXPECT_FALSE(budgetActive());
  EXPECT_FALSE(budgetDegraded());
  EXPECT_FALSE(budgetExhausted());
}

TEST(BudgetCheckpoint, StepLimitLatchesSoftThenHard) {
  AnalysisBudget B;
  B.MaxSteps = 100;
  B.SoftPct = 50;
  BudgetScope Scope(B);
  for (unsigned I = 0; I < 50; ++I)
    budgetCheckpoint("test");
  EXPECT_FALSE(budgetDegraded()) << "soft latched below the soft threshold";
  for (unsigned I = 0; I < 25; ++I)
    budgetCheckpoint("test");
  EXPECT_TRUE(budgetDegraded()) << "soft threshold (50% of 100 steps) passed";
  EXPECT_FALSE(budgetExhausted());
  for (unsigned I = 0; I < 50; ++I)
    budgetCheckpoint("test");
  EXPECT_TRUE(budgetExhausted()) << "hard limit (100 steps) passed";
}

TEST(BudgetCheckpoint, ScopeRestoresOuterState) {
  EXPECT_FALSE(budgetActive());
  {
    AnalysisBudget B;
    B.MaxSteps = 1;
    BudgetScope Scope(B);
    EXPECT_TRUE(budgetActive());
    budgetCheckpoint("test");
    budgetCheckpoint("test");
    EXPECT_TRUE(budgetExhausted());
  }
  EXPECT_FALSE(budgetActive());
  EXPECT_FALSE(budgetExhausted());
}

TEST(BudgetCheckpoint, CancellationHonoredAndCounted) {
  CancellationToken Tok;
  AnalysisBudget B;
  B.Cancel = &Tok;
  BudgetScope Scope(B);
  budgetCheckpoint("test"); // not yet requested: no throw
  uint64_t Before = zoneCounters().CancellationsHonored;
  Tok.requestCancel();
  EXPECT_THROW(budgetCheckpoint("test-site"), AnalysisCancelled);
  EXPECT_EQ(zoneCounters().CancellationsHonored, Before + 1);
  Tok.reset();
  budgetCheckpoint("test"); // reset token: checkpoints pass again
}

TEST(BudgetTaint, ScopeCapturesAndRepropagates) {
  budgetState().TaintPending = false;
  {
    BudgetTaintScope Outer;
    {
      BudgetTaintScope Inner;
      EXPECT_FALSE(Inner.consumed());
      budgetState().TaintPending = true;
      EXPECT_TRUE(Inner.consumed());
    }
    // The inner evaluation's taint re-propagates to the outer frame.
    EXPECT_TRUE(Outer.consumed());
  }
  EXPECT_TRUE(budgetState().TaintPending);
  budgetState().TaintPending = false;
}

//===----------------------------------------------------------------------===//
// Degradation: sound ⊤ answers with provenance, and recovery
//===----------------------------------------------------------------------===//

constexpr const char *LoopSource = R"(
    function main(n) {
      var i = 0;
      var s = 0;
      while (i < n) {
        s = s + 2;
        i = i + 1;
      }
      return s;
    })";

TEST(BudgetDegradation, HardExhaustionYieldsSoundFlaggedTop) {
  Function Oracle = mustLowerFn(LoopSource, "main");
  Daig<IntervalDomain> GOracle(&Oracle.Body,
                               IntervalDomain::initialEntry(Oracle.Params));
  ASSERT_TRUE(GOracle.valid());
  CfgInfo Info = analyzeCfg(Oracle.Body);
  ASSERT_TRUE(Info.valid());
  IntervalState Exact = GOracle.queryLocation(Oracle.Body.exit());

  Function F = mustLowerFn(LoopSource, "main");
  Daig<IntervalDomain> G(&F.Body, IntervalDomain::initialEntry(F.Params));
  ASSERT_TRUE(G.valid());
  IntervalState Got;
  {
    AnalysisBudget B;
    B.MaxSteps = 2; // exhausts almost immediately
    BudgetScope Scope(B);
    Got = G.queryLocation(F.Body.exit());
  }
  // Sound: the degraded answer over-approximates the exact one.
  EXPECT_TRUE(IntervalDomain::leq(Exact, Got))
      << "degraded=" << IntervalDomain::toString(Got)
      << " exact=" << IntervalDomain::toString(Exact);
  // Audited: the loss of precision is flagged, not silent.
  EXPECT_GT(G.degradedCellCount(), 0u);
  EXPECT_TRUE(G.locationDegraded(F.Body.exit()));
  EXPECT_EQ(G.auditInvariants(), "");
  EXPECT_EQ(G.checkWellFormed(), "");

  // Non-degraded locations answer bit-identically to the clean run (the
  // budget has expired above, so fresh demands evaluate unbudgeted but
  // still consume — and propagate — degraded provenance).
  for (Loc L : Info.Rpo) {
    if (G.locationDegraded(L))
      continue;
    IntervalState V = G.queryLocation(L);
    EXPECT_TRUE(IntervalDomain::equal(V, GOracle.queryLocation(L)))
        << "non-degraded location l" << L << " diverged";
  }

  // Recovery: dropping the degraded cells and re-demanding converges back
  // to the exact fixpoint.
  EXPECT_GT(G.invalidateDegraded(), 0u);
  EXPECT_EQ(G.degradedCellCount(), 0u);
  IntervalState Recovered = G.queryLocation(F.Body.exit());
  EXPECT_TRUE(IntervalDomain::equal(Recovered, Exact))
      << "recovered=" << IntervalDomain::toString(Recovered)
      << " exact=" << IntervalDomain::toString(Exact);
  EXPECT_EQ(G.auditInvariants(), "");
  EXPECT_EQ(G.checkAiConsistency(), "");
}

TEST(BudgetDegradation, DeadlineExhaustionIsSound) {
  Function Oracle = mustLowerFn(LoopSource, "main");
  Daig<IntervalDomain> GOracle(&Oracle.Body,
                               IntervalDomain::initialEntry(Oracle.Params));
  IntervalState Exact = GOracle.queryLocation(Oracle.Body.exit());

  Function F = mustLowerFn(LoopSource, "main");
  Daig<IntervalDomain> G(&F.Body, IntervalDomain::initialEntry(F.Params));
  IntervalState Got;
  {
    AnalysisBudget B;
    B.MaxWallMs = 1e-6; // already expired at the first gauge poll
    BudgetScope Scope(B);
    Got = G.queryLocation(F.Body.exit());
  }
  EXPECT_TRUE(IntervalDomain::leq(Exact, Got));
  EXPECT_TRUE(G.locationDegraded(F.Body.exit()));
  EXPECT_EQ(G.auditInvariants(), "");
}

TEST(BudgetDegradation, CancellationLeavesResumableGraph) {
  Function Oracle = mustLowerFn(LoopSource, "main");
  Daig<IntervalDomain> GOracle(&Oracle.Body,
                               IntervalDomain::initialEntry(Oracle.Params));
  IntervalState Exact = GOracle.queryLocation(Oracle.Body.exit());

  Function F = mustLowerFn(LoopSource, "main");
  Daig<IntervalDomain> G(&F.Body, IntervalDomain::initialEntry(F.Params));
  CancellationToken Tok;
  AnalysisBudget B;
  B.Cancel = &Tok;
  BudgetScope Scope(B);
  Tok.requestCancel();
  EXPECT_THROW(G.queryLocation(F.Body.exit()), AnalysisCancelled);
  EXPECT_EQ(G.auditInvariants(), "") << "cancel unwind corrupted the graph";
  Tok.reset();
  // Re-demand with the token reset: bit-identical to the clean run.
  IntervalState V = G.queryLocation(F.Body.exit());
  EXPECT_TRUE(IntervalDomain::equal(V, Exact));
  EXPECT_EQ(G.degradedCellCount(), 0u) << "cancellation must not degrade";
  EXPECT_EQ(G.checkAiConsistency(), "");
}

TEST(BudgetDegradation, EngineDegradesAndRecovers) {
  const char *Src = R"(
    function inc(x) { return x + 1; }
    function main(n) {
      var a = inc(n);
      var i = 0;
      while (i < a) { i = i + 1; }
      var b = inc(i);
      return b;
    })";
  InterprocEngine<IntervalDomain> Oracle(mustLower(Src), "main", 1);
  ASSERT_TRUE(Oracle.valid()) << Oracle.error();
  Loc Exit = Oracle.cfgOf("main")->exit();
  IntervalState Exact = Oracle.queryMain(Exit);

  InterprocEngine<IntervalDomain> E(mustLower(Src), "main", 1);
  ASSERT_TRUE(E.valid());
  IntervalState Got;
  {
    AnalysisBudget B;
    B.MaxSteps = 3;
    BudgetScope Scope(B);
    Got = E.queryMain(Exit);
  }
  EXPECT_TRUE(IntervalDomain::leq(Exact, Got));
  EXPECT_TRUE(E.mainLocationDegraded(Exit));
  EXPECT_GT(E.degradedCellCount(), 0u);
  EXPECT_EQ(E.auditInvariants(), "");

  EXPECT_GT(E.invalidateDegraded(), 0u);
  EXPECT_EQ(E.degradedCellCount(), 0u);
  IntervalState Recovered = E.queryMain(Exit);
  EXPECT_TRUE(IntervalDomain::equal(Recovered, Exact))
      << "recovered=" << IntervalDomain::toString(Recovered)
      << " exact=" << IntervalDomain::toString(Exact);
  EXPECT_FALSE(E.mainLocationDegraded(Exit));
  EXPECT_EQ(E.auditInvariants(), "");
}

//===----------------------------------------------------------------------===//
// Staged domain: escalation suppression under degradation
//===----------------------------------------------------------------------===//

TEST(BudgetStaged, SoftDegradationSuppressesEscalation) {
  const char *Src = R"(
    function main(a, b) {
      var x = a;
      var y = b;
      if (x + y <= 10) {
        var z = x;
        return z;
      }
      return 0;
    })";
  InterprocEngine<StagedDomain> Oracle(mustLower(Src), "main", 1);
  ASSERT_TRUE(Oracle.valid()) << Oracle.error();
  Loc Exit = Oracle.cfgOf("main")->exit();
  Staged Exact = queryEscalatedMain(Oracle, Exit);
  ASSERT_TRUE(Exact.escalated()) << "oracle must escalate on the sum guard";

  InterprocEngine<StagedDomain> E(mustLower(Src), "main", 1);
  ASSERT_TRUE(E.valid());
  uint64_t EscBefore = stagedCounters().Escalations;
  Staged Got;
  {
    AnalysisBudget B;
    B.MaxSteps = 1u << 30;
    B.SoftPct = 0; // soft-degraded from the very first checkpoint
    BudgetScope Scope(B);
    Got = queryEscalatedMain(E, Exit);
  }
  // No re-demand happened and no octagon tier was materialized: the
  // analysis shed the escalation work rather than paying for it.
  EXPECT_EQ(stagedCounters().Escalations, EscBefore);
  EXPECT_FALSE(Got.escalated());
  // The zone tier is still sound: it over-approximates the oracle's.
  EXPECT_TRUE(ZoneDomain::leq(Exact.Z, Got.Z));
  EXPECT_EQ(E.auditInvariants(), "");

  // With the budget gone, the same precision demand escalates exactly.
  Staged Clean = queryEscalatedMain(E, Exit);
  ASSERT_TRUE(Clean.escalated());
  EXPECT_TRUE(StagedDomain::equal(Clean, Exact));
}

TEST(BudgetStaged, NonDegradedLocationsMatchOracleUnderBudget) {
  const char *Src = R"(
    function main(a) {
      var x = a;
      var y = 3;
      var i = 0;
      while (i < x) {
        y = y + 1;
        i = i + 1;
      }
      return y;
    })";
  InterprocEngine<StagedDomain> Oracle(mustLower(Src), "main", 1);
  ASSERT_TRUE(Oracle.valid()) << Oracle.error();
  CfgInfo Info = analyzeCfg(*Oracle.cfgOf("main"));
  ASSERT_TRUE(Info.valid());

  InterprocEngine<StagedDomain> E(mustLower(Src), "main", 1);
  {
    AnalysisBudget B;
    B.MaxSteps = 4;
    BudgetScope Scope(B);
    (void)E.queryMain(Oracle.cfgOf("main")->exit());
  }
  EXPECT_EQ(E.auditInvariants(), "");
  // Zero mismatches against the unbudgeted oracle on every location NOT
  // flagged degraded (the acceptance contract: answers are either exact or
  // verifiably marked).
  for (Loc L : Info.Rpo) {
    if (E.mainLocationDegraded(L))
      continue;
    Staged Got = E.queryMain(L);
    if (E.mainLocationDegraded(L))
      continue; // this very demand consumed a degraded input
    EXPECT_TRUE(StagedDomain::equal(Got, Oracle.queryMain(L)))
        << "unflagged location l" << L << " diverged from the oracle";
  }
}

//===----------------------------------------------------------------------===//
// Iteration ceilings: diagnostics for non-converging inputs
//===----------------------------------------------------------------------===//

constexpr const char *DivergingSource = R"(
    function main() {
      var i = 0;
      while (i >= 0) {
        i = i + 1;
      }
      return i;
    })";

TEST(IterationCeiling, NonConvergingFixThrowsDiagnostic) {
  LimitsGuard Guard;
  analysisLimits().MaxFixUnrollings = 48;
  Function F = mustLowerFn(DivergingSource, "main");
  Daig<NoWidenInterval> G(&F.Body, NoWidenInterval::initialEntry(F.Params));
  ASSERT_TRUE(G.valid());
  try {
    (void)G.queryLocation(F.Body.exit());
    FAIL() << "widening-disabled unbounded loop must not converge";
  } catch (const AnalysisDivergence &E) {
    EXPECT_NE(std::string(E.what()).find("iteration ceiling"),
              std::string::npos)
        << E.what();
  }
  EXPECT_EQ(G.checkWellFormed(), "") << "divergence unwind corrupted graph";
  EXPECT_EQ(G.auditInvariants(), "");
}

TEST(IterationCeiling, WideningConvergesBelowCeiling) {
  // The same program under the REAL interval domain converges fine with the
  // default ceilings — the diagnostic is for broken domains only.
  Function F = mustLowerFn(DivergingSource, "main");
  Daig<IntervalDomain> G(&F.Body, IntervalDomain::initialEntry(F.Params));
  EXPECT_NO_THROW((void)G.queryLocation(F.Body.exit()));
}

TEST(IterationCeiling, BudgetedNonConvergingLoopDegradesInstead) {
  LimitsGuard Guard;
  analysisLimits().MaxFixUnrollings = 48;
  Function F = mustLowerFn(DivergingSource, "main");
  Daig<NoWidenInterval> G(&F.Body, NoWidenInterval::initialEntry(F.Params));
  AnalysisBudget B; // active but unlimited: degrade, don't throw
  BudgetScope Scope(B);
  IntervalState V;
  EXPECT_NO_THROW(V = G.queryLocation(F.Body.exit()));
  EXPECT_TRUE(G.locationDegraded(F.Body.exit()));
  EXPECT_EQ(G.auditInvariants(), "");
}

TEST(IterationCeiling, QuiescenceCeilingThrowsDiagnostic) {
  // Two call sites of the same callee under a context-insensitive (k=0)
  // engine: the second site's contribution grows the shared entry, forcing
  // at least one summary-invalidation pass — which a ceiling of 1 turns
  // into the diagnostic.
  const char *Src = R"(
    function f(x) { return x + 1; }
    function main() {
      var a = f(1);
      var b = f(2);
      return a + b;
    })";
  LimitsGuard Guard;
  analysisLimits().MaxQuiescencePasses = 1;
  InterprocEngine<IntervalDomain> E(mustLower(Src), "main", 0);
  ASSERT_TRUE(E.valid()) << E.error();
  try {
    (void)E.queryMain(E.cfgOf("main")->exit());
    FAIL() << "expected the quiescence ceiling to trip at 1 pass";
  } catch (const AnalysisDivergence &Ex) {
    EXPECT_NE(std::string(Ex.what()).find("quiescence"), std::string::npos)
        << Ex.what();
  }
  EXPECT_EQ(E.auditInvariants(), "");
  // With sane limits the same program converges in a couple of passes.
  analysisLimits().MaxQuiescencePasses = 4096;
  InterprocEngine<IntervalDomain> E2(mustLower(Src), "main", 0);
  EXPECT_NO_THROW((void)E2.queryMain(E2.cfgOf("main")->exit()));
}

} // namespace
