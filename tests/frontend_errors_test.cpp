//===-- tests/frontend_errors_test.cpp - Front-end error paths ------------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Error-path coverage for the lexer/parser/lowering pipeline: malformed
/// programs must come back as ParseResult/LowerResult diagnostics — never an
/// assert, crash, or unbounded loop. Includes a fuzz-lite pass: a seeded
/// corpus of workload programs run through every truncation prefix and
/// through deterministic byte mutations, all fed to the full frontend.
///
//===----------------------------------------------------------------------===//

#include "cfg/lowering.h"

#include "lang/parser.h"
#include "support/rng.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace dai;

namespace {

/// Runs \p Source through the whole frontend and asserts the only two legal
/// outcomes: a valid program, or a non-empty diagnostic. (The EXPECTs run
/// inside the test process — an assert/crash fails the whole binary, which
/// is exactly the regression this suite exists to catch.)
void expectGracefulFrontend(const std::string &Source,
                            const std::string &Context) {
  LowerResult R = frontend(Source);
  if (!R.ok())
    EXPECT_FALSE(R.Error.empty())
        << Context << ": failed parse must carry a diagnostic";
}

/// Corpus: realistic source programs covering the whole grammar surface —
/// loops, branches, calls, arrays, heap fields — so truncations and byte
/// mutations explore every lexer/parser state, not just the happy path.
std::vector<std::string> corpus() {
  return {
      R"(function helper0(a, b) {
        var t = a + b;
        if (t > 10) { t = t - 1; } else { t = t + 1; }
        return t;
      }
      function main(n) {
        var i = 0;
        var s = 0;
        while (i < n) {
          s = helper0(s, i);
          i = i + 1;
        }
        return s;
      })",
      R"(function main(p, q) {
        var r = p;
        while (r.next != null) {
          r = r.next;
        }
        r.next = q;
        var xs = [1, 2, 3];
        xs[0] = xs[1] + xs[2];
        if (!(p == null) && q != null || true) {
          return xs[0];
        }
        return 0;
      })",
      R"(function f(x) { return x + 1; }
      function g(x) { var a = f(x); return a * 2 - -3; }
      function main() {
        var l = new List;
        var v = g(21);
        print(v);
        ;
        return v;
      })",
  };
}

TEST(FrontendErrors, TruncationNeverCrashes) {
  // Every prefix of every corpus program: the lexer/parser must diagnose
  // the missing tail, not read past the buffer or assert.
  for (const std::string &Src : corpus()) {
    for (size_t Cut = 0; Cut < Src.size(); Cut += 7) {
      std::string Truncated = Src.substr(0, Cut);
      expectGracefulFrontend(Truncated,
                             "truncation at byte " + std::to_string(Cut));
    }
    // The exact one-byte-short prefix, the classic EOF-in-token case.
    if (!Src.empty())
      expectGracefulFrontend(Src.substr(0, Src.size() - 1),
                             "one byte short");
  }
}

TEST(FrontendErrors, ByteMutationsNeverCrash) {
  // Deterministic byte mutations (overwrite / delete / duplicate) at seeded
  // positions: mostly invalid programs, occasionally still-valid ones —
  // both must come back as a ParseResult, not a crash.
  for (const std::string &Src : corpus()) {
    Rng R(0xfa57f00dULL ^ Src.size());
    for (unsigned I = 0; I < 200; ++I) {
      std::string Mutated = Src;
      size_t Pos = static_cast<size_t>(R.below(Mutated.size()));
      switch (R.below(3)) {
      case 0: // overwrite with an arbitrary byte (incl. NUL and high bytes)
        Mutated[Pos] = static_cast<char>(R.below(256));
        break;
      case 1: // delete
        Mutated.erase(Pos, 1);
        break;
      default: // duplicate
        Mutated.insert(Pos, 1, Mutated[Pos]);
        break;
      }
      expectGracefulFrontend(Mutated, "mutation " + std::to_string(I));
    }
  }
}

TEST(FrontendErrors, MalformedProgramsReturnDiagnostics) {
  // Targeted malformations: each must FAIL with a non-empty, located error.
  const char *Cases[] = {
      "",                                      // empty input
      "function",                              // EOF mid-declaration
      "function f(",                           // EOF in parameter list
      "function f() {",                        // unterminated body
      "function f() { var x = ; }",            // missing initializer
      "function f() { var x = 1 }",            // missing semicolon
      "function f() { x = (1 + ; }",           // broken expression
      "function f() { if (x { } }",            // unbalanced condition paren
      "function f() { while }",                // while without condition
      "function f() { return 1; } }",          // stray closing brace
      "function f() { var 1x = 2; }",          // identifier starts with digit
      "function f() { x = y[; }",              // unterminated index
      "function f(a, ) { return a; }",         // trailing comma in params
      "function f() { x = g(1, ; }",           // unterminated call args
      "garbage tokens outside any function",   // no declaration at all
      "function f() { \"unterminated",         // bad token (no string lit)
      "function f() { x = 99999999999999999999999999; }", // literal overflow
  };
  for (const char *Src : Cases) {
    ParseResult P = parseProgram(Src);
    EXPECT_FALSE(P.ok()) << "expected a parse error for: " << Src;
    EXPECT_FALSE(P.Error.empty());
  }
}

TEST(FrontendErrors, LoweringRejectsDuplicateFunctions) {
  LowerResult R = frontend(R"(
    function f() { return 1; }
    function f() { return 2; }
  )");
  EXPECT_FALSE(R.ok());
  EXPECT_FALSE(R.Error.empty());
}

TEST(FrontendErrors, SnippetWrapperDiagnosesErrors) {
  ParseResult P = parseSnippet("var x = ;");
  EXPECT_FALSE(P.ok());
  EXPECT_FALSE(P.Error.empty());
  ParseResult Good = parseSnippet("var x = 1; return x;");
  EXPECT_TRUE(Good.ok()) << Good.Error;
}

TEST(FrontendErrors, DeepNestingIsBounded) {
  // Pathological nesting on every recursive-descent path must hit the
  // parser's depth ceiling and come back as a diagnostic — under ASan the
  // unguarded parser overflowed the stack on exactly these inputs.
  std::string Parens = "function f() { x = ";
  for (int I = 0; I < 2000; ++I)
    Parens += "(";
  Parens += "1";
  for (int I = 0; I < 2000; ++I)
    Parens += ")";
  Parens += "; }";
  // Unary chains recurse through parseUnary without touching parseExpr.
  std::string Unary =
      "function f() { x = " + std::string(5000, '-') + "1; }";
  // Nested if-blocks recurse through parseStmt/parseBlock.
  std::string Stmts = "function f() { ";
  for (int I = 0; I < 2000; ++I)
    Stmts += "if (x) { ";
  Stmts += "x = 1; ";
  for (int I = 0; I < 2000; ++I)
    Stmts += "} ";
  Stmts += "}";
  // else-if chains recurse through parseStmt without an enclosing block.
  std::string ElseIf = "function f() { if (x) { x = 1; } ";
  for (int I = 0; I < 2000; ++I)
    ElseIf += "else if (x) { x = 1; } ";
  ElseIf += "}";
  for (const std::string &Deep : {Parens, Unary, Stmts, ElseIf}) {
    ParseResult P = parseProgram(Deep);
    EXPECT_FALSE(P.ok()) << "depth limit should reject pathological nesting";
    EXPECT_NE(P.Error.find("depth"), std::string::npos) << P.Error;
  }
}

} // namespace
