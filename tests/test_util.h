//===-- tests/test_util.h - Shared test helpers -----------------*- C++ -*-===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared fixtures: canned programs (including the paper's `append` from
/// Fig. 1), frontend helpers, and cross-checking of DAIG query results
/// against the batch interpreter (Theorem 6.1, from-scratch consistency).
///
//===----------------------------------------------------------------------===//

#ifndef DAI_TESTS_TEST_UTIL_H
#define DAI_TESTS_TEST_UTIL_H

#include "analysis/batch_interpreter.h"
#include "cfg/lowering.h"
#include "daig/daig.h"

#include <gtest/gtest.h>

namespace dai::test {

/// The paper's Fig. 1 running example.
inline constexpr const char *AppendSource = R"(
function append(p, q) {
  if (p == null) {
    return q;
  }
  var r = p;
  while (r.next != null) {
    r = r.next;
  }
  r.next = q;
  return p;
}
)";

/// Parses and lowers \p Source, expecting success.
inline Program mustLower(std::string_view Source) {
  LowerResult R = frontend(Source);
  EXPECT_TRUE(R.ok()) << R.Error;
  return std::move(R.Prog);
}

inline Function mustLowerFn(std::string_view Source, const std::string &Name) {
  Program P = mustLower(Source);
  Function *F = P.find(Name);
  EXPECT_NE(F, nullptr) << "no function named " << Name;
  return std::move(*F);
}

/// Asserts that DAIG queries agree with the batch interpreter at every
/// reachable location of \p F (from-scratch consistency, Theorem 6.1).
template <typename D>
void expectFromScratchConsistent(Function &F, Daig<D> &Graph,
                                 const std::string &Context = "") {
  CfgInfo Info = analyzeCfg(F.Body);
  ASSERT_TRUE(Info.valid()) << Info.Error;
  BatchInterpreter<D> Batch(F.Body, Info);
  auto Expected = Batch.run(D::initialEntry(F.Params));
  for (Loc L : Info.Rpo) {
    typename D::Elem Got = Graph.queryLocation(L);
    EXPECT_TRUE(D::equal(Got, Expected.at(L)))
        << Context << " location l" << L << ": demanded=" << D::toString(Got)
        << " batch=" << D::toString(Expected.at(L));
  }
  EXPECT_EQ(Graph.checkWellFormed(), "") << Context;
  EXPECT_EQ(Graph.checkAiConsistency(), "") << Context;
}

} // namespace dai::test

#endif // DAI_TESTS_TEST_UTIL_H
