//===-- tests/domain_properties_test.cpp - Lattice property tests ---------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-based tests of the Section 3 abstract-interpreter contract, over
/// randomized elements of every domain (seed-parameterized TEST_P sweeps):
///   - partial order: reflexivity, bottom-least, antisymmetry via equal;
///   - join: upper bound, commutativity (semantic), idempotence;
///   - widen: upper bound of both arguments (the ∇ contract);
///   - widening convergence: iterated widening of a growing chain
///     stabilizes in finitely many steps;
///   - transfer: ⊥ ↦ ⊥ and (spot-checked) monotonicity;
///   - hash/equal agreement.
///
//===----------------------------------------------------------------------===//

#include "domain/constprop.h"
#include "domain/interval.h"
#include "domain/octagon.h"
#include "domain/registry.h"
#include "domain/shape.h"
#include "support/rng.h"

#include <gtest/gtest.h>

#include <tuple>

using namespace dai;

namespace {

//===----------------------------------------------------------------------===//
// Random element generators
//===----------------------------------------------------------------------===//

Interval randomInterval(Rng &R) {
  switch (R.below(6)) {
  case 0: return Interval::top();
  case 1: return Interval::empty();
  case 2: return Interval::constant(R.range(-20, 20));
  case 3: return Interval::atLeast(R.range(-20, 20));
  case 4: return Interval::atMost(R.range(-20, 20));
  default: {
    int64_t A = R.range(-20, 20), B = R.range(-20, 20);
    return Interval::range(std::min(A, B), std::max(A, B));
  }
  }
}

IntervalState randomIntervalState(Rng &R) {
  if (R.percent(10))
    return IntervalDomain::bottom();
  IntervalState S;
  unsigned N = static_cast<unsigned>(R.below(4));
  for (unsigned I = 0; I < N; ++I) {
    VarAbs V;
    V.Num = randomInterval(R);
    if (R.percent(30))
      V.Len = Interval::range(0, R.range(0, 10));
    S.set("v" + std::to_string(R.below(4)), V);
  }
  return S;
}

Octagon randomOctagon(Rng &R) {
  if (R.percent(10))
    return OctagonDomain::bottom();
  Octagon O;
  unsigned N = 2 + static_cast<unsigned>(R.below(3));
  for (unsigned I = 0; I < N; ++I)
    O.addVar("v" + std::to_string(I));
  unsigned Constraints = static_cast<unsigned>(R.below(5));
  for (unsigned I = 0; I < Constraints; ++I) {
    size_t X = R.below(N);
    size_t Y = R.below(N);
    if (X == Y)
      O.addConstraint(X, R.percent(50), static_cast<size_t>(-1), true,
                      R.range(-15, 15));
    else
      O.addConstraint(X, R.percent(50), Y, R.percent(50), R.range(-15, 15));
  }
  O.close();
  return O;
}

ShapeState randomShape(Rng &R) {
  if (R.percent(10))
    return ShapeDomain::bottom();
  ShapeState S;
  unsigned Disjuncts = 1 + static_cast<unsigned>(R.below(2));
  for (unsigned D = 0; D < Disjuncts; ++D) {
    SymHeap H;
    Sym Prev = NilSym;
    unsigned Chain = static_cast<unsigned>(R.below(3));
    for (unsigned I = 0; I < Chain; ++I) {
      Sym Cur = H.fresh();
      H.Atoms.push_back(HeapAtom{
          R.percent(50) ? HeapAtom::PtsTo : HeapAtom::Lseg, Cur, Prev});
      Prev = Cur;
    }
    std::sort(H.Atoms.begin(), H.Atoms.end());
    H.Env["p"] = Prev;
    if (R.percent(30) && Prev != NilSym)
      H.addDiseq(Prev, NilSym);
    S.Disjuncts.push_back(ShapeDomain::canonicalize(H));
  }
  // States must be canonical (deduplicated) as the domain operations
  // produce them.
  std::sort(S.Disjuncts.begin(), S.Disjuncts.end());
  S.Disjuncts.erase(std::unique(S.Disjuncts.begin(), S.Disjuncts.end()),
                    S.Disjuncts.end());
  return S;
}

ConstState randomConst(Rng &R) {
  if (R.percent(10))
    return ConstPropDomain::bottom();
  ConstState S;
  unsigned N = static_cast<unsigned>(R.below(4));
  for (unsigned I = 0; I < N; ++I)
    S.setVar("v" + std::to_string(R.below(4)), R.range(-9, 9));
  return S;
}

Stmt randomNumericStmt(Rng &R) {
  std::string X = "v" + std::to_string(R.below(4));
  std::string Y = "v" + std::to_string(R.below(4));
  switch (R.below(4)) {
  case 0:
    return Stmt::mkAssign(X, Expr::mkInt(R.range(-9, 9)));
  case 1:
    return Stmt::mkAssign(X, Expr::mkBinary(BinaryOp::Add, Expr::mkVar(Y),
                                            Expr::mkInt(R.range(-5, 5))));
  case 2:
    return Stmt::mkAssume(Expr::mkBinary(BinaryOp::Lt, Expr::mkVar(X),
                                         Expr::mkInt(R.range(-9, 9))));
  default:
    return Stmt::mkAssign(X, Expr::mkBinary(BinaryOp::Mul, Expr::mkVar(Y),
                                            Expr::mkVar(X)));
  }
}

//===----------------------------------------------------------------------===//
// Generic property harness (instantiated per domain via a small adapter)
//===----------------------------------------------------------------------===//

template <typename D, typename Gen>
void checkLatticeProperties(uint64_t Seed, Gen &&Random, unsigned Iters) {
  Rng R(Seed);
  for (unsigned I = 0; I < Iters; ++I) {
    auto A = Random(R);
    auto B = Random(R);
    auto C = Random(R);
    // Reflexivity and bottom-least.
    EXPECT_TRUE(D::leq(A, A));
    EXPECT_TRUE(D::leq(D::bottom(), A));
    EXPECT_TRUE(D::isBottom(D::bottom()));
    // equal agrees with two-sided leq on identical values.
    EXPECT_TRUE(D::equal(A, A));
    EXPECT_EQ(D::hash(A), D::hash(A)) << "hash must be deterministic";
    // Join is an upper bound and idempotent.
    auto J = D::join(A, B);
    EXPECT_TRUE(D::leq(A, J)) << D::toString(A) << " vs " << D::toString(J);
    EXPECT_TRUE(D::leq(B, J)) << D::toString(B) << " vs " << D::toString(J);
    EXPECT_TRUE(D::equal(D::join(A, A), A))
        << "join idempotence: " << D::toString(A);
    // Join is commutative up to semantic equality.
    EXPECT_TRUE(D::equal(J, D::join(B, A)));
    // Widen is an upper bound of both arguments.
    auto W = D::widen(A, B);
    EXPECT_TRUE(D::leq(A, W));
    EXPECT_TRUE(D::leq(B, W));
    // Transfer maps bottom to bottom.
    Stmt S = randomNumericStmt(R);
    EXPECT_TRUE(D::isBottom(D::transfer(S, D::bottom())));
    (void)C;
  }
}

/// Iterated widening of an increasing chain must stabilize.
template <typename D, typename Gen>
void checkWideningConvergence(uint64_t Seed, Gen &&Random, unsigned Chains) {
  Rng R(Seed);
  for (unsigned I = 0; I < Chains; ++I) {
    auto Acc = Random(R);
    unsigned Steps = 0;
    for (; Steps < 300; ++Steps) {
      auto Next = D::join(Acc, Random(R));
      auto Widened = D::widen(Acc, Next);
      if (D::equal(Widened, Acc))
        break;
      Acc = Widened;
    }
    EXPECT_LT(Steps, 300u) << "widening chain failed to converge";
  }
}

class DomainPropertySeed : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DomainPropertySeed, IntervalLattice) {
  checkLatticeProperties<IntervalDomain>(GetParam(), randomIntervalState, 60);
}
TEST_P(DomainPropertySeed, IntervalWideningConverges) {
  checkWideningConvergence<IntervalDomain>(GetParam(), randomIntervalState,
                                           20);
}
TEST_P(DomainPropertySeed, OctagonLattice) {
  checkLatticeProperties<OctagonDomain>(GetParam(), randomOctagon, 40);
}
TEST_P(DomainPropertySeed, OctagonWideningConverges) {
  checkWideningConvergence<OctagonDomain>(GetParam(), randomOctagon, 12);
}
TEST_P(DomainPropertySeed, ShapeLattice) {
  checkLatticeProperties<ShapeDomain>(GetParam(), randomShape, 40);
}
TEST_P(DomainPropertySeed, ShapeWideningConverges) {
  checkWideningConvergence<ShapeDomain>(GetParam(), randomShape, 12);
}
TEST_P(DomainPropertySeed, ConstPropLattice) {
  checkLatticeProperties<ConstPropDomain>(GetParam(), randomConst, 60);
}
TEST_P(DomainPropertySeed, ConstPropWideningConverges) {
  checkWideningConvergence<ConstPropDomain>(GetParam(), randomConst, 20);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DomainPropertySeed,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

//===----------------------------------------------------------------------===//
// Interval arithmetic unit properties
//===----------------------------------------------------------------------===//

class IntervalArithSeed : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntervalArithSeed, ArithmeticSoundOnSamples) {
  // Concrete-sampling soundness: for values drawn from the operand
  // intervals, the concrete result must lie in the abstract result.
  Rng R(GetParam());
  for (int I = 0; I < 200; ++I) {
    int64_t A = R.range(-10, 10), B = R.range(-10, 10);
    int64_t C = R.range(-10, 10), D = R.range(-10, 10);
    Interval X = Interval::range(std::min(A, B), std::max(A, B));
    Interval Y = Interval::range(std::min(C, D), std::max(C, D));
    int64_t VX = R.range(X.lo(), X.hi());
    int64_t VY = R.range(Y.lo(), Y.hi());
    EXPECT_TRUE(X.add(Y).contains(VX + VY));
    EXPECT_TRUE(X.sub(Y).contains(VX - VY));
    EXPECT_TRUE(X.mul(Y).contains(VX * VY));
    if (VY != 0)
      EXPECT_TRUE(X.div(Y).contains(VX / VY))
          << X.toString() << " / " << Y.toString() << " ∌ " << VX / VY;
    if (VY != 0)
      EXPECT_TRUE(X.mod(Y).contains(VX % VY));
    EXPECT_TRUE(X.neg().contains(-VX));
    // Meet/join sanity on memberships.
    EXPECT_TRUE(X.join(Y).contains(VX));
    EXPECT_TRUE(X.join(Y).contains(VY));
    if (X.meet(Y).contains(VX))
      EXPECT_TRUE(Y.contains(VX));
  }
}

TEST_P(IntervalArithSeed, ComparisonTruthsSound) {
  Rng R(GetParam());
  for (int I = 0; I < 200; ++I) {
    int64_t A = R.range(-10, 10), B = R.range(-10, 10);
    int64_t C = R.range(-10, 10), D = R.range(-10, 10);
    Interval X = Interval::range(std::min(A, B), std::max(A, B));
    Interval Y = Interval::range(std::min(C, D), std::max(C, D));
    int64_t VX = R.range(X.lo(), X.hi());
    int64_t VY = R.range(Y.lo(), Y.hi());
    TriBool Lt = X.cmpLt(Y);
    if (Lt == TriBool::True)
      EXPECT_LT(VX, VY);
    if (Lt == TriBool::False)
      EXPECT_GE(VX, VY);
    TriBool Eq = X.cmpEq(Y);
    if (Eq == TriBool::True)
      EXPECT_EQ(VX, VY);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalArithSeed,
                         ::testing::Values(11u, 22u, 33u, 44u));

//===----------------------------------------------------------------------===//
// Octagon-specific checks
//===----------------------------------------------------------------------===//

TEST(OctagonDomainTest, RelationalAssignExact) {
  Octagon O;
  Stmt S1 = Stmt::mkAssign("x", Expr::mkInt(5));
  Octagon A = OctagonDomain::transfer(S1, O);
  EXPECT_EQ(A.boundsOf("x"), Interval::constant(5));
  Stmt S2 = Stmt::mkAssign("y", Expr::mkBinary(BinaryOp::Add,
                                               Expr::mkVar("x"),
                                               Expr::mkInt(2)));
  Octagon B = OctagonDomain::transfer(S2, A);
  EXPECT_EQ(B.boundsOf("y"), Interval::constant(7));
  // The relation y − x = 2 must survive forgetting the constant: havoc x.
  Octagon C = OctagonDomain::transfer(Stmt::mkCall("x", "unknown", {}), B);
  EXPECT_EQ(C.boundsOf("y"), Interval::constant(7));
}

TEST(OctagonDomainTest, AssumeRelational) {
  Octagon O;
  O.addVar("x");
  O.addVar("y");
  Octagon A = OctagonDomain::assume(
      O, Expr::mkBinary(BinaryOp::Le, Expr::mkVar("x"), Expr::mkVar("y")));
  Octagon B = OctagonDomain::assume(
      A, Expr::mkBinary(BinaryOp::Le, Expr::mkVar("y"), Expr::mkInt(10)));
  B.close();
  EXPECT_EQ(B.boundsOf("x").hi(), 10);
}

TEST(OctagonDomainTest, ContradictionIsBottom) {
  Octagon O;
  Octagon A = OctagonDomain::assume(
      O, Expr::mkBinary(BinaryOp::Lt, Expr::mkVar("x"), Expr::mkInt(0)));
  Octagon B = OctagonDomain::assume(
      A, Expr::mkBinary(BinaryOp::Gt, Expr::mkVar("x"), Expr::mkInt(0)));
  EXPECT_TRUE(OctagonDomain::isBottom(B));
}

TEST(OctagonDomainTest, SelfIncrementShifts) {
  Octagon O;
  Octagon A = OctagonDomain::transfer(Stmt::mkAssign("i", Expr::mkInt(0)), O);
  Stmt Inc = Stmt::mkAssign("i", Expr::mkBinary(BinaryOp::Add,
                                                Expr::mkVar("i"),
                                                Expr::mkInt(1)));
  Octagon B = OctagonDomain::transfer(Inc, A);
  EXPECT_EQ(B.boundsOf("i"), Interval::constant(1));
  Octagon C = OctagonDomain::transfer(Inc, B);
  EXPECT_EQ(C.boundsOf("i"), Interval::constant(2));
}

//===----------------------------------------------------------------------===//
// Registry-driven conformance suite
//
// Enumerates every key in DomainRegistry and re-checks the AbstractDomain
// contract through the erased AnyDomain interface, so a domain cannot be
// selectable at runtime without passing the same laws the compile-time
// domains pass above. Values are grown by random transfer/assume chains
// (the statement pool covers numeric, disjunctive-guard, heap, and array
// forms so every domain's transfer actually fires), and all order-theoretic
// laws are stated via mutual leq — robust to representation differences
// (e.g. closed vs. unclosed zones) that semantic equality must tolerate.
//===----------------------------------------------------------------------===//

/// Statements that exercise every registered domain: numeric assignments
/// and guards (interval/zone/octagon/constprop), disjunctive guards
/// (dis_interval partitions), alloc/field/null forms (shape), and array
/// literals/writes/reads (the arr_* smashing functors).
Stmt randomConformanceStmt(Rng &R) {
  std::string X = "v" + std::to_string(R.below(4));
  std::string Y = "v" + std::to_string(R.below(4));
  auto CmpOp = [&R] {
    switch (R.below(6)) {
    case 0: return BinaryOp::Lt;
    case 1: return BinaryOp::Le;
    case 2: return BinaryOp::Gt;
    case 3: return BinaryOp::Ge;
    case 4: return BinaryOp::Eq;
    default: return BinaryOp::Ne;
    }
  };
  switch (R.below(12)) {
  case 0:
    return Stmt::mkAssign(X, Expr::mkInt(R.range(-9, 9)));
  case 1:
    return Stmt::mkAssign(X, Expr::mkBinary(BinaryOp::Add, Expr::mkVar(Y),
                                            Expr::mkInt(R.range(-5, 5))));
  case 2:
    return Stmt::mkAssign(X, Expr::mkBinary(BinaryOp::Mul, Expr::mkVar(Y),
                                            Expr::mkVar(X)));
  case 3:
    return Stmt::mkAssume(Expr::mkBinary(CmpOp(), Expr::mkVar(X),
                                         Expr::mkInt(R.range(-9, 9))));
  case 4:
    // Disjunctive guard: the partition source for dis_interval, a plain
    // join for the convex domains.
    return Stmt::mkAssume(Expr::mkBinary(
        BinaryOp::Or,
        Expr::mkBinary(BinaryOp::Le, Expr::mkVar(X),
                       Expr::mkInt(R.range(-9, -1))),
        Expr::mkBinary(BinaryOp::Ge, Expr::mkVar(X),
                       Expr::mkInt(R.range(1, 9)))));
  case 5:
    return Stmt::mkAssume(
        Expr::mkBinary(CmpOp(), Expr::mkVar(X), Expr::mkVar(Y)));
  case 6:
    return Stmt::mkAlloc(X);
  case 7:
    return Stmt::mkFieldWrite(X, R.percent(50) ? Expr::mkNull()
                                               : Expr::mkVar(Y));
  case 8:
    return Stmt::mkAssume(Expr::mkBinary(R.percent(50) ? BinaryOp::Eq
                                                       : BinaryOp::Ne,
                                         Expr::mkVar(X), Expr::mkNull()));
  case 9: {
    std::vector<ExprPtr> Elems;
    unsigned N = 1 + static_cast<unsigned>(R.below(3));
    for (unsigned I = 0; I < N; ++I)
      Elems.push_back(Expr::mkInt(R.range(-9, 9)));
    return Stmt::mkAssign(X, Expr::mkArray(std::move(Elems)));
  }
  case 10:
    return Stmt::mkArrayWrite(X, Expr::mkInt(R.range(0, 3)),
                              Expr::mkInt(R.range(-9, 9)));
  default:
    return Stmt::mkAssign(Y, R.percent(50)
                                 ? Expr::mkIndex(Expr::mkVar(X),
                                                 Expr::mkInt(R.range(0, 3)))
                                 : Expr::mkField(Expr::mkVar(X), "length"));
  }
}

/// A random erased value of the currently bound default domain: a chain of
/// random transfers from the entry state, with occasional joins of short
/// sibling chains (so non-chain-shaped elements appear too).
AnyVal randomErasedValue(Rng &R) {
  if (R.percent(8))
    return AnyDomain::bottom();
  AnyVal S = AnyDomain::initialEntry({});
  unsigned N = static_cast<unsigned>(R.below(7));
  for (unsigned I = 0; I < N; ++I) {
    if (R.percent(20)) {
      AnyVal T = AnyDomain::initialEntry({});
      unsigned M = static_cast<unsigned>(R.below(3));
      for (unsigned J = 0; J < M; ++J)
        T = AnyDomain::transfer(randomConformanceStmt(R), T);
      S = AnyDomain::join(S, T);
    } else {
      S = AnyDomain::transfer(randomConformanceStmt(R), S);
    }
  }
  return S;
}

/// Semantic equality: mutual leq (tolerates representation differences).
bool semEq(const AnyVal &A, const AnyVal &B) {
  return AnyDomain::leq(A, B) && AnyDomain::leq(B, A);
}

class DomainConformance
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {};

TEST_P(DomainConformance, LatticeLaws) {
  const auto &[Key, Seed] = GetParam();
  AnyDomainDefaultScope Bind(Key);
  ASSERT_TRUE(Bind.ok()) << "unregistered key: " << Key;
  EXPECT_STREQ(AnyDomain::name(), Key.c_str());
  Rng R(Seed);
  for (unsigned I = 0; I < 25; ++I) {
    AnyVal A = randomErasedValue(R);
    AnyVal B = randomErasedValue(R);
    AnyVal C = randomErasedValue(R);
    // Partial order: reflexivity, bottom-least.
    EXPECT_TRUE(AnyDomain::leq(A, A));
    EXPECT_TRUE(AnyDomain::leq(AnyDomain::bottom(), A));
    // Join: upper bound of both arguments and idempotent.
    AnyVal J = AnyDomain::join(A, B);
    EXPECT_TRUE(AnyDomain::leq(A, J))
        << AnyDomain::toString(A) << " !<= " << AnyDomain::toString(J);
    EXPECT_TRUE(AnyDomain::leq(B, J))
        << AnyDomain::toString(B) << " !<= " << AnyDomain::toString(J);
    EXPECT_TRUE(semEq(AnyDomain::join(A, A), A));
    // Join: commutative and associative (semantically).
    EXPECT_TRUE(semEq(J, AnyDomain::join(B, A)));
    EXPECT_TRUE(semEq(AnyDomain::join(J, C),
                      AnyDomain::join(A, AnyDomain::join(B, C))));
    // Join is the LEAST upper bound: it sits below every other upper
    // bound we can construct, in particular widen(A, B).
    AnyVal W = AnyDomain::widen(A, B);
    EXPECT_TRUE(AnyDomain::leq(A, W));
    EXPECT_TRUE(AnyDomain::leq(B, W));
    EXPECT_TRUE(AnyDomain::leq(J, W))
        << "widen must cover join: " << AnyDomain::toString(J) << " !<= "
        << AnyDomain::toString(W);
    // Bottom identities: ⊥ ⊔ x ≡ x, and ⊥ stays ⊥ under transfer.
    EXPECT_TRUE(semEq(AnyDomain::join(AnyDomain::bottom(), A), A));
    EXPECT_TRUE(AnyDomain::isBottom(AnyDomain::bottom()));
    EXPECT_TRUE(AnyDomain::isBottom(
        AnyDomain::transfer(randomConformanceStmt(R), AnyDomain::bottom())));
  }
}

TEST_P(DomainConformance, EqualHashCoherence) {
  const auto &[Key, Seed] = GetParam();
  AnyDomainDefaultScope Bind(Key);
  ASSERT_TRUE(Bind.ok()) << "unregistered key: " << Key;
  Rng R(Seed);
  // A default-constructed erased value (no vtable yet) must behave exactly
  // as ⊥ of the bound domain — the normalization half of the erasure
  // contract.
  EXPECT_TRUE(AnyDomain::isBottom(AnyVal{}));
  EXPECT_TRUE(AnyDomain::equal(AnyVal{}, AnyDomain::bottom()));
  EXPECT_EQ(AnyDomain::hash(AnyVal{}), AnyDomain::hash(AnyDomain::bottom()));
  for (unsigned I = 0; I < 25; ++I) {
    AnyVal A = randomErasedValue(R);
    AnyVal B = randomErasedValue(R);
    // equal is an equivalence on identical values and implies equal hashes.
    AnyVal ACopy = A;
    EXPECT_TRUE(AnyDomain::equal(A, ACopy));
    EXPECT_EQ(AnyDomain::hash(A), AnyDomain::hash(ACopy));
    // equal implies mutual leq and hash agreement wherever it fires.
    if (AnyDomain::equal(A, B)) {
      EXPECT_TRUE(semEq(A, B));
      EXPECT_EQ(AnyDomain::hash(A), AnyDomain::hash(B));
    }
    // Reconstructing a value (x ⊔ x) must stay equal-and-equal-hash: the
    // memo layer keys on hash and confirms with equal, so either failing
    // here would break Q-Match.
    AnyVal Rejoined = AnyDomain::join(A, A);
    if (AnyDomain::equal(Rejoined, A))
      EXPECT_EQ(AnyDomain::hash(Rejoined), AnyDomain::hash(A));
    EXPECT_EQ(AnyDomain::hash(A), AnyDomain::hash(A))
        << "hash must be deterministic";
  }
}

TEST_P(DomainConformance, TransferMonotone) {
  const auto &[Key, Seed] = GetParam();
  AnyDomainDefaultScope Bind(Key);
  ASSERT_TRUE(Bind.ok()) << "unregistered key: " << Key;
  Rng R(Seed);
  for (unsigned I = 0; I < 15; ++I) {
    AnyVal A = randomErasedValue(R);
    AnyVal C = randomErasedValue(R);
    AnyVal B = AnyDomain::join(A, C); // A <= B by construction.
    Stmt S = randomConformanceStmt(R);
    EXPECT_TRUE(
        AnyDomain::leq(AnyDomain::transfer(S, A), AnyDomain::transfer(S, B)))
        << "transfer not monotone on " << S.toString() << "\n  at   "
        << AnyDomain::toString(A) << "\n  vs   " << AnyDomain::toString(B);
  }
}

TEST_P(DomainConformance, WideningConverges) {
  const auto &[Key, Seed] = GetParam();
  AnyDomainDefaultScope Bind(Key);
  ASSERT_TRUE(Bind.ok()) << "unregistered key: " << Key;
  Rng R(Seed);
  for (unsigned I = 0; I < 8; ++I) {
    AnyVal Acc = randomErasedValue(R);
    unsigned Steps = 0;
    for (; Steps < 300; ++Steps) {
      AnyVal Next = AnyDomain::join(Acc, randomErasedValue(R));
      AnyVal Widened = AnyDomain::widen(Acc, Next);
      if (AnyDomain::equal(Widened, Acc))
        break;
      Acc = Widened;
    }
    EXPECT_LT(Steps, 300u) << "widening chain failed to converge for " << Key;
  }
}

/// The registered universe itself: every key the rest of this PR depends on
/// must be present (the conformance sweep above enumerates this same list).
TEST(DomainRegistryConformance, RegisteredKeys) {
  auto Keys = DomainRegistry::instance().keys();
  EXPECT_GE(Keys.size(), 8u);
  for (const char *Expected :
       {"interval", "dis_interval", "constprop", "zone", "octagon", "staged",
        "shape", "arr_interval", "arr_zone", "arr_dis_interval"}) {
    EXPECT_NE(std::find(Keys.begin(), Keys.end(), Expected), Keys.end())
        << "missing registry key: " << Expected;
    const DomainVTable *VT = DomainRegistry::instance().find(Expected);
    ASSERT_NE(VT, nullptr);
    EXPECT_STREQ(VT->Key, Expected);
  }
  EXPECT_EQ(DomainRegistry::instance().find("no_such_domain"), nullptr);
}

std::vector<std::string> conformanceKeys() {
  return DomainRegistry::instance().keys();
}

INSTANTIATE_TEST_SUITE_P(
    Registry, DomainConformance,
    ::testing::Combine(::testing::ValuesIn(conformanceKeys()),
                       ::testing::Values(1u, 2u, 3u, 5u, 8u)),
    [](const ::testing::TestParamInfo<DomainConformance::ParamType> &Info) {
      return std::get<0>(Info.param) + "_s" +
             std::to_string(std::get<1>(Info.param));
    });

} // namespace
