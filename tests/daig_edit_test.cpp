//===-- tests/daig_edit_test.cpp - Incremental edit semantics tests -------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The edit semantics of Fig. 9: in-place statement replacement dirties
/// forward (E-Commit/E-Propagate), dirtying a loop rolls its fix edge back
/// (E-Loop), structural insertions preserve unaffected values (the Fig. 4b
/// scenario), and after every edit, query results remain from-scratch
/// consistent with batch analysis of the edited program.
///
//===----------------------------------------------------------------------===//

#include "cfg/edits.h"
#include "daig/daig.h"
#include "domain/constprop.h"
#include "domain/interval.h"
#include "tests/test_util.h"

#include <gtest/gtest.h>

using namespace dai;
using namespace dai::test;

namespace {

/// Finds the unique edge whose statement prints as \p Text.
EdgeId edgeWithStmt(const Cfg &G, const std::string &Text) {
  EdgeId Found = InvalidEdgeId;
  for (const auto &[Id, E] : G.edges()) {
    if (E.Label.toString() == Text) {
      EXPECT_EQ(Found, InvalidEdgeId) << "ambiguous statement: " << Text;
      Found = Id;
    }
  }
  EXPECT_NE(Found, InvalidEdgeId) << "no edge labelled: " << Text;
  return Found;
}

TEST(DaigEdit, StatementReplacementChangesResult) {
  Function F = mustLowerFn(R"(
    function main() {
      var x = 1;
      var y = x + 2;
      return y;
    })",
                           "main");
  Daig<ConstPropDomain> G(&F.Body, ConstPropDomain::initialEntry(F.Params));
  EXPECT_EQ(G.queryLocation(F.Body.exit()).get(RetVar),
            std::optional<int64_t>(3));

  EdgeId Id = edgeWithStmt(F.Body, "x = 1");
  ASSERT_TRUE(G.applyStatementEdit(Id, Stmt::mkAssign("x", Expr::mkInt(40))));
  EXPECT_EQ(G.queryLocation(F.Body.exit()).get(RetVar),
            std::optional<int64_t>(42));
  expectFromScratchConsistent<ConstPropDomain>(F, G, "after replacement");
}

TEST(DaigEdit, DirtyingIsMinimal) {
  // Editing the else-branch must not dirty then-branch cells.
  Function F = mustLowerFn(R"(
    function main(c) {
      var x = 0;
      if (c > 0) { x = 1; } else { x = 2; }
      return x;
    })",
                           "main");
  Statistics Stats;
  Daig<ConstPropDomain> G(&F.Body, ConstPropDomain::initialEntry(F.Params),
                          &Stats);
  (void)G.queryLocation(F.Body.exit());
  uint64_t Transfers = Stats.Transfers, Joins = Stats.Joins;

  EdgeId Id = edgeWithStmt(F.Body, "x = 2");
  ASSERT_TRUE(G.applyStatementEdit(Id, Stmt::mkAssign("x", Expr::mkInt(9))));
  (void)G.queryLocation(F.Body.exit());
  // Exactly the Fig. 4b shape: the edited statement's transfer, the join at
  // the merge point, and the downstream `__ret = x` transfer — everything
  // else is reused from cells.
  EXPECT_EQ(Stats.Transfers - Transfers, 2u);
  EXPECT_EQ(Stats.Joins - Joins, 1u);
  expectFromScratchConsistent<ConstPropDomain>(F, G, "after branch edit");
}

TEST(DaigEdit, EditInsideLoopRollsBackFix) {
  Function F = mustLowerFn(R"(
    function main(n) {
      var i = 0;
      while (i < n) {
        i = i + 1;
      }
      return i;
    })",
                           "main");
  Daig<IntervalDomain> G(&F.Body, IntervalDomain::initialEntry(F.Params));
  (void)G.queryLocation(F.Body.exit());
  EXPECT_GT(G.unrolledLoopCount(), 0u);

  EdgeId Id = edgeWithStmt(F.Body, "i = i + 1");
  ASSERT_TRUE(G.applyStatementEdit(Id, Stmt::mkAssign(
                                           "i", Expr::mkBinary(
                                                    BinaryOp::Add,
                                                    Expr::mkVar("i"),
                                                    Expr::mkInt(2)))));
  // E-Loop: the loop must have been rolled back to its initial iterates.
  EXPECT_EQ(G.unrolledLoopCount(), 0u);
  EXPECT_EQ(G.checkWellFormed(), "");
  expectFromScratchConsistent<IntervalDomain>(F, G, "after loop-body edit");
}

TEST(DaigEdit, EditBeforeLoopPreservesNothingDownstream) {
  Function F = mustLowerFn(R"(
    function main(n) {
      var i = 0;
      while (i < n) {
        i = i + 1;
      }
      return i;
    })",
                           "main");
  Daig<IntervalDomain> G(&F.Body, IntervalDomain::initialEntry(F.Params));
  (void)G.queryLocation(F.Body.exit());
  EdgeId Id = edgeWithStmt(F.Body, "i = 0");
  ASSERT_TRUE(G.applyStatementEdit(Id, Stmt::mkAssign("i", Expr::mkInt(5))));
  expectFromScratchConsistent<IntervalDomain>(F, G, "after pre-loop edit");
}

TEST(DaigEdit, EditAfterLoopPreservesFixpoint) {
  // The Fig. 4b scenario: editing below the loop must not roll it back.
  Function F = mustLowerFn(R"(
    function main(n) {
      var i = 0;
      while (i < n) {
        i = i + 1;
      }
      var z = 1;
      return z;
    })",
                           "main");
  Statistics Stats;
  Daig<IntervalDomain> G(&F.Body, IntervalDomain::initialEntry(F.Params),
                         &Stats);
  (void)G.queryLocation(F.Body.exit());
  uint64_t WidensBefore = Stats.Widens;
  uint64_t UnrollsBefore = Stats.Unrollings;
  EXPECT_GT(G.unrolledLoopCount(), 0u);

  EdgeId Id = edgeWithStmt(F.Body, "z = 1");
  ASSERT_TRUE(G.applyStatementEdit(Id, Stmt::mkAssign("z", Expr::mkInt(7))));
  EXPECT_GT(G.unrolledLoopCount(), 0u) << "loop must stay unrolled";
  (void)G.queryLocation(F.Body.exit());
  EXPECT_EQ(Stats.Widens, WidensBefore) << "fixpoint must be fully reused";
  EXPECT_EQ(Stats.Unrollings, UnrollsBefore);
  expectFromScratchConsistent<IntervalDomain>(F, G, "after post-loop edit");
}

TEST(DaigEdit, InsertStatementPreservesUnaffectedValues) {
  Function F = mustLowerFn(R"(
    function main(n) {
      var i = 0;
      while (i < n) {
        i = i + 1;
      }
      var z = 1;
      return z;
    })",
                           "main");
  Statistics Stats;
  Daig<IntervalDomain> G(&F.Body, IntervalDomain::initialEntry(F.Params),
                         &Stats);
  (void)G.queryLocation(F.Body.exit());
  uint64_t WidensBefore = Stats.Widens;

  // Insert `print(z)`-ish statement after the loop (at the source of z=1).
  const CfgEdge *ZEdge = F.Body.findEdge(edgeWithStmt(F.Body, "z = 1"));
  insertStmtAt(F.Body, ZEdge->Src, Stmt::mkPrint(Expr::mkVar("i")));
  G.rebuild();
  EXPECT_EQ(G.checkWellFormed(), "");
  EXPECT_GT(G.unrolledLoopCount(), 0u)
      << "structural edit outside the loop must re-adopt its unrollings";
  (void)G.queryLocation(F.Body.exit());
  EXPECT_EQ(Stats.Widens, WidensBefore)
      << "the loop fixpoint must not be recomputed (Fig. 4b)";
  expectFromScratchConsistent<IntervalDomain>(F, G, "after insertion");
}

TEST(DaigEdit, InsertWhileCreatesAnalyzableLoop) {
  Function F = mustLowerFn(R"(
    function main() {
      var a = 3;
      return a;
    })",
                           "main");
  Daig<IntervalDomain> G(&F.Body, IntervalDomain::initialEntry(F.Params));
  (void)G.queryLocation(F.Body.exit());

  const CfgEdge *AEdge = F.Body.findEdge(edgeWithStmt(F.Body, "a = 3"));
  insertWhileAt(F.Body, AEdge->Dst,
                Expr::mkBinary(BinaryOp::Lt, Expr::mkVar("a"), Expr::mkInt(9)),
                Stmt::mkAssign("a", Expr::mkBinary(BinaryOp::Add,
                                                   Expr::mkVar("a"),
                                                   Expr::mkInt(1))));
  G.rebuild();
  EXPECT_EQ(G.checkWellFormed(), "");
  IntervalState Exit = G.queryLocation(F.Body.exit());
  EXPECT_EQ(Exit.get("a").Num, Interval::atLeast(9));
  expectFromScratchConsistent<IntervalDomain>(F, G, "after while insertion");
}

TEST(DaigEdit, InsertIfInsideLoopBody) {
  Function F = mustLowerFn(R"(
    function main(n) {
      var i = 0;
      var s = 0;
      while (i < n) {
        i = i + 1;
      }
      return s;
    })",
                           "main");
  Daig<IntervalDomain> G(&F.Body, IntervalDomain::initialEntry(F.Params));
  (void)G.queryLocation(F.Body.exit());

  // Insert an if-then-else inside the loop body (after `i = i + 1`).
  const CfgEdge *Inc = F.Body.findEdge(edgeWithStmt(F.Body, "i = i + 1"));
  insertIfAt(F.Body, Inc->Dst,
             Expr::mkBinary(BinaryOp::Gt, Expr::mkVar("i"), Expr::mkInt(2)),
             Stmt::mkAssign("s", Expr::mkInt(1)),
             Stmt::mkAssign("s", Expr::mkInt(2)));
  G.rebuild();
  EXPECT_EQ(G.checkWellFormed(), "");
  expectFromScratchConsistent<IntervalDomain>(F, G, "after if-in-loop");
}

TEST(DaigEdit, RandomizedEditSequenceStaysConsistent) {
  Function F = mustLowerFn(R"(
    function main(n) {
      var a = 1;
      var b = 2;
      while (a < n) {
        a = a + b;
      }
      if (b > a) { b = b - 1; } else { a = a - 1; }
      return a + b;
    })",
                           "main");
  Daig<IntervalDomain> G(&F.Body, IntervalDomain::initialEntry(F.Params));
  expectFromScratchConsistent<IntervalDomain>(F, G, "initial");

  // A fixed mixed sequence of edits, checking consistency after each.
  struct EditStep {
    const char *Before;
    Stmt After;
  };
  std::vector<EditStep> Steps = {
      {"a = 1", Stmt::mkAssign("a", Expr::mkInt(0))},
      {"a = a + b", Stmt::mkAssign("a", Expr::mkBinary(BinaryOp::Add,
                                                       Expr::mkVar("a"),
                                                       Expr::mkInt(3)))},
      {"b = 2", Stmt::mkAssign("b", Expr::mkInt(10))},
      {"b = b - 1", Stmt::mkSkip()},
  };
  int StepIdx = 0;
  for (auto &Step : Steps) {
    EdgeId Id = edgeWithStmt(F.Body, Step.Before);
    ASSERT_TRUE(G.applyStatementEdit(Id, Step.After));
    expectFromScratchConsistent<IntervalDomain>(
        F, G, "step " + std::to_string(StepIdx++));
  }
}

} // namespace
