//===-- tests/engine_stress_test.cpp - Interprocedural stress tests -------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Randomized interprocedural stress: the Section 7.3 workload (including
/// call statements) driven through a *persistent* InterprocEngine, checked
/// after every few edits against a from-scratch engine on the same program.
/// The persistent engine's monotone entry approximation (entries only grow
/// between explicit re-seeds) means its results must *over-approximate* the
/// fresh engine's — never under-approximate (soundness under edits) — and
/// after reseedAllEntries() they must match exactly.
///
//===----------------------------------------------------------------------===//

#include "interproc/engine.h"

#include "domain/interval.h"
#include "tests/test_util.h"
#include "workload/generator.h"

#include <gtest/gtest.h>

using namespace dai;
using namespace dai::test;

namespace {

class EngineStressSeed : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineStressSeed, PersistentEngineStaysSoundUnderEdits) {
  WorkloadOptions Opts;
  Opts.Seed = GetParam();
  WorkloadGenerator Gen(Opts);
  Program Initial = Gen.makeInitialProgram();
  InterprocEngine<IntervalDomain> Engine(Initial, "main", /*K=*/1);
  ASSERT_TRUE(Engine.valid()) << Engine.error();

  for (unsigned Edit = 0; Edit < 30; ++Edit) {
    EditRecord R = Gen.applyRandomEdit(Engine.program());
    if (R.Kind == EditKind::InsertStmt)
      Engine.applyInsertedStatementEdit("main", R.At, R.Splice);
    else
      Engine.applyStructuralEdit("main");
    for (Loc Q : Gen.sampleQueryLocations(Engine.program(), 3))
      (void)Engine.queryMain(Q);

    if (Edit % 6 != 5)
      continue;
    // Oracle: a fresh engine on a copy of the current program.
    InterprocEngine<IntervalDomain> Fresh(Engine.program(), "main", 1);
    ASSERT_TRUE(Fresh.valid()) << Fresh.error();
    const Cfg *MainCfg = Engine.cfgOf("main");
    CfgInfo Info = analyzeCfg(*MainCfg);
    ASSERT_TRUE(Info.valid());
    for (Loc L : Info.Rpo) {
      IntervalState Incr = Engine.queryMain(L);
      IntervalState Scratch = Fresh.queryMain(L);
      EXPECT_TRUE(IntervalDomain::leq(Scratch, Incr))
          << "edit " << Edit << " loc l" << L
          << ": incremental result must over-approximate from-scratch\n"
          << "  incremental: " << IntervalDomain::toString(Incr) << "\n"
          << "  from-scratch: " << IntervalDomain::toString(Scratch);
    }
  }

  // Explicit re-seeding restores full precision: results now match a fresh
  // engine exactly.
  Engine.reseedAllEntries();
  InterprocEngine<IntervalDomain> Fresh(Engine.program(), "main", 1);
  const Cfg *MainCfg = Engine.cfgOf("main");
  CfgInfo Info = analyzeCfg(*MainCfg);
  for (Loc L : Info.Rpo) {
    IntervalState Incr = Engine.queryMain(L);
    IntervalState Scratch = Fresh.queryMain(L);
    EXPECT_TRUE(IntervalDomain::equal(Incr, Scratch))
        << "post-reseed mismatch at l" << L << "\n  incremental: "
        << IntervalDomain::toString(Incr)
        << "\n  from-scratch: " << IntervalDomain::toString(Scratch);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineStressSeed,
                         ::testing::Values(11u, 23u, 47u));

TEST(EngineStress, ResetMatchesFreshEngine) {
  // The demand-driven-only configuration's reset must behave like a fresh
  // engine (modulo the shared memo table).
  WorkloadOptions Opts;
  Opts.Seed = 77;
  WorkloadGenerator Gen(Opts);
  Program Initial = Gen.makeInitialProgram();
  InterprocEngine<IntervalDomain> Engine(Initial, "main", 0);
  ASSERT_TRUE(Engine.valid());
  for (unsigned Edit = 0; Edit < 15; ++Edit) {
    Gen.applyRandomEdit(Engine.program());
    Engine.resetAllInstances();
    for (Loc Q : Gen.sampleQueryLocations(Engine.program(), 2))
      (void)Engine.queryMain(Q);
  }
  InterprocEngine<IntervalDomain> Fresh(Engine.program(), "main", 0);
  Loc Exit = Engine.cfgOf("main")->exit();
  EXPECT_TRUE(IntervalDomain::equal(Engine.queryMain(Exit),
                                    Fresh.queryMain(Exit)));
}

} // namespace
