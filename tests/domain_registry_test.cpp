//===-- tests/domain_registry_test.cpp - Erasure & policy tests -----------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The domain registry's two load-bearing guarantees:
///
///  - Erasure transparency: an end-to-end InterprocEngine workload (seeded
///    edits, per-location queries, checker obligations) run through
///    AnyDomain bound to "zone" is bit-identical — rendered states, every
///    deterministic Statistics counter, zone work counters, and checker
///    verdicts — to the same workload on the direct ZoneDomain template
///    instantiation. Runtime domain selection must cost zero precision and
///    zero behavioral drift.
///
///  - Mixed-type safety: operations on values of different concrete
///    domains are defined (boxed conversion), never UB; equal() between
///    them is pinned FALSE — even for two bottoms — and their hashes are
///    type-tagged apart. The CoW tiers in staged.cpp and the memo Q-Match
///    path in daig.h rely on D::equal being cheap and exact on same-origin
///    values; these regressions pin what happens when origins differ.
///
/// Plus the per-function FunctionDomainPolicy: callee instances adopt the
/// mapped domain at enterCall / instance creation, and policy choices that
/// resolve to the same key leave results untouched.
///
//===----------------------------------------------------------------------===//

#include "domain/registry.h"

#include "analysis/checker.h"
#include "domain/dis_interval.h"
#include "domain/interval.h"
#include "domain/zone.h"
#include "interproc/engine.h"
#include "support/statistics.h"
#include "tests/test_util.h"
#include "workload/generator.h"

#include <gtest/gtest.h>

using namespace dai;
using namespace dai::test;

namespace {

//===----------------------------------------------------------------------===//
// Erasure transparency: AnyDomain("zone") ≡ ZoneDomain, end to end
//===----------------------------------------------------------------------===//

/// Every deterministic field of Statistics (all of them are).
void expectStatsEqual(const Statistics &A, const Statistics &B) {
  EXPECT_EQ(A.Transfers, B.Transfers);
  EXPECT_EQ(A.Joins, B.Joins);
  EXPECT_EQ(A.Widens, B.Widens);
  EXPECT_EQ(A.FixChecks, B.FixChecks);
  EXPECT_EQ(A.Unrollings, B.Unrollings);
  EXPECT_EQ(A.CellReuses, B.CellReuses);
  EXPECT_EQ(A.MemoHits, B.MemoHits);
  EXPECT_EQ(A.MemoMisses, B.MemoMisses);
  EXPECT_EQ(A.CellsDirtied, B.CellsDirtied);
  EXPECT_EQ(A.CallSummaries, B.CallSummaries);
  EXPECT_EQ(A.MemoEvictions, B.MemoEvictions);
  EXPECT_EQ(A.CellsDegraded, B.CellsDegraded);
  EXPECT_EQ(A.ChecksEvaluated, B.ChecksEvaluated);
  EXPECT_EQ(A.AlarmsRaised, B.AlarmsRaised);
}

class ErasureTransparencySeed : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ErasureTransparencySeed, ZoneWorkloadBitIdentical) {
  AnyDomainDefaultScope Bind("zone");
  ASSERT_TRUE(Bind.ok());

  // Two identically-seeded generators so both engines see the same edit
  // and query streams on their own program copies.
  WorkloadOptions Opts;
  Opts.Seed = GetParam();
  WorkloadGenerator GenD(Opts), GenE(Opts);
  Program ProgD = GenD.makeInitialProgram();
  Program ProgE = GenE.makeInitialProgram();

  InterprocEngine<ZoneDomain> Direct(ProgD, "main", /*K=*/1);
  InterprocEngine<AnyDomain> Erased(ProgE, "main", /*K=*/1);
  ASSERT_TRUE(Direct.valid()) << Direct.error();
  ASSERT_TRUE(Erased.valid()) << Erased.error();

  for (unsigned Edit = 0; Edit < 20; ++Edit) {
    EditRecord RD = GenD.applyRandomEdit(Direct.program());
    EditRecord RE = GenE.applyRandomEdit(Erased.program());
    ASSERT_EQ(RD.Kind, RE.Kind) << "generator streams diverged";
    if (RD.Kind == EditKind::InsertStmt) {
      Direct.applyInsertedStatementEdit("main", RD.At, RD.Splice);
      Erased.applyInsertedStatementEdit("main", RE.At, RE.Splice);
    } else {
      Direct.applyStructuralEdit("main");
      Erased.applyStructuralEdit("main");
    }

    std::vector<Loc> QsD = GenD.sampleQueryLocations(Direct.program(), 3);
    std::vector<Loc> QsE = GenE.sampleQueryLocations(Erased.program(), 3);
    ASSERT_EQ(QsD, QsE);
    for (size_t I = 0; I < QsD.size(); ++I) {
      // The zone work performed per query must be identical op-for-op.
      ZoneCounters BeforeD = zoneCounters();
      Zone SD = Direct.queryMain(QsD[I]);
      ZoneCounters DeltaD = zoneCounters() - BeforeD;
      ZoneCounters BeforeE = zoneCounters();
      AnyVal SE = Erased.queryMain(QsE[I]);
      ZoneCounters DeltaE = zoneCounters() - BeforeE;
      EXPECT_EQ(ZoneDomain::toString(SD), AnyDomain::toString(SE))
          << "state drift at edit " << Edit << " loc l" << QsD[I];
      std::ostringstream OSD, OSE;
      OSD << DeltaD;
      OSE << DeltaE;
      EXPECT_EQ(OSD.str(), OSE.str())
          << "zone counter drift at edit " << Edit << " loc l" << QsD[I];
    }
  }

  // The engines' deterministic counters (memo hits/misses, dirtied cells,
  // call summaries, ...) must agree exactly: the type-tagged hash remap is
  // injective, so every Q-Reuse / Q-Match / Q-Miss falls the same way.
  expectStatsEqual(Direct.statistics(), Erased.statistics());

  // Checker verdicts obligation-by-obligation on the final programs.
  std::vector<Obligation> ObsD = collectObligations(*Direct.cfgOf("main"));
  std::vector<Obligation> ObsE = collectObligations(*Erased.cfgOf("main"));
  ASSERT_EQ(ObsD.size(), ObsE.size());
  for (size_t I = 0; I < ObsD.size(); ++I) {
    Verdict VD = evaluateObligation<ZoneDomain>(
        ObsD[I], Direct.queryMain(ObsD[I].At), false);
    Verdict VE = evaluateObligation<AnyDomain>(
        ObsE[I], Erased.queryMain(ObsE[I].At), false);
    EXPECT_EQ(VD, VE) << "verdict drift on " << ObsD[I].Text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ErasureTransparencySeed,
                         ::testing::Values(3u, 17u, 101u));

//===----------------------------------------------------------------------===//
// Mixed-type regressions (the satellite-4 equal/hash audit)
//===----------------------------------------------------------------------===//

AnyVal valueOf(const std::string &Key, int64_t X) {
  AnyDomainDefaultScope Bind(Key);
  EXPECT_TRUE(Bind.ok());
  return AnyDomain::transfer(Stmt::mkAssign("x", Expr::mkInt(X)),
                             AnyDomain::initialEntry({}));
}

TEST(MixedDomainValues, EqualIsFalseAcrossDomainsNeverUB) {
  AnyVal ZoneV = valueOf("zone", 5);
  AnyVal IntV = valueOf("interval", 5);
  // Same abstract meaning (x = 5), different concrete domains: equal is
  // pinned FALSE in both directions. Anything else would require equal()
  // to reinterpret one representation as the other — the exact UB this
  // contract exists to rule out. Consumers that rely on equal() for
  // convergence (Daig fix edges, staged.cpp's CoW tier promotion, the memo
  // Q-Match confirm in daig.h) only ever compare same-instance values, so
  // the type tag never fires for them.
  EXPECT_FALSE(AnyDomain::equal(ZoneV, IntV));
  EXPECT_FALSE(AnyDomain::equal(IntV, ZoneV));
  EXPECT_NE(AnyDomain::hash(ZoneV), AnyDomain::hash(IntV));
}

TEST(MixedDomainValues, TwoBottomsOfDifferentDomainsAreNotEqual) {
  AnyDomainDefaultScope BindZ("zone");
  AnyVal BotZone = AnyDomain::bottom();
  AnyVal BotInt;
  {
    AnyDomainDefaultScope BindI("interval");
    BotInt = AnyDomain::bottom();
  }
  ASSERT_TRUE(AnyDomain::isBottom(BotZone));
  ASSERT_TRUE(AnyDomain::isBottom(BotInt));
  // Both are ⊥ semantically, but equal() stays representation-honest:
  // cross-domain is false, full stop. (leq is semantic and may hold.)
  EXPECT_FALSE(AnyDomain::equal(BotZone, BotInt));
  EXPECT_FALSE(AnyDomain::equal(BotInt, BotZone));
  EXPECT_NE(AnyDomain::hash(BotZone), AnyDomain::hash(BotInt));
}

TEST(MixedDomainValues, CrossDomainLatticeOpsAreSoundViaBox) {
  for (const std::string &LKey : {"zone", "interval", "dis_interval",
                                  "octagon", "constprop"}) {
    for (const std::string &RKey : {"interval", "shape", "zone"}) {
      AnyVal L = valueOf(LKey, 3);
      AnyVal R = valueOf(RKey, 9);
      // join/widen land in the LEFT operand's domain and stay upper
      // bounds; leq converts the left operand and never crashes.
      AnyVal J = AnyDomain::join(L, R);
      EXPECT_EQ(J.Ops, L.Ops) << LKey << " vs " << RKey;
      EXPECT_TRUE(AnyDomain::leq(L, J)) << LKey << " vs " << RKey;
      AnyVal W = AnyDomain::widen(L, R);
      EXPECT_EQ(W.Ops, L.Ops);
      EXPECT_TRUE(AnyDomain::leq(L, W));
      (void)AnyDomain::leq(R, L); // defined, whatever it answers
      // ⊥ absorbs correctly across the boundary.
      AnyDomainDefaultScope BindR(RKey);
      AnyVal BotR = AnyDomain::bottom();
      AnyVal JB = AnyDomain::join(L, BotR);
      EXPECT_TRUE(AnyDomain::equal(JB, L))
          << LKey << " ⊔ ⊥(" << RKey << ") must be the left value";
    }
  }
}

TEST(MixedDomainValues, HashIsTypeTaggedButInjectivePerDomain) {
  // Same concrete zone value wrapped erased vs. hashed directly: the
  // erased hash differs from the raw hash (type tag mixed in) but is a
  // function of it — two runs over the same value agree, and distinct
  // zone values keep distinct erased hashes (injective remap, so memo
  // hit/miss patterns are preserved exactly).
  AnyVal A5 = valueOf("zone", 5);
  AnyVal B5 = valueOf("zone", 5);
  AnyVal A7 = valueOf("zone", 7);
  EXPECT_EQ(AnyDomain::hash(A5), AnyDomain::hash(B5));
  EXPECT_TRUE(AnyDomain::equal(A5, B5));
  EXPECT_NE(AnyDomain::hash(A5), AnyDomain::hash(A7));
}

//===----------------------------------------------------------------------===//
// Per-function domain policy
//===----------------------------------------------------------------------===//

constexpr const char *CallSource = R"(
function helper(a) {
  var h = a + 2;
  return h;
}
function main(n) {
  var x = helper(5);
  return x;
})";

/// x at main's exit, read back through the value's own ToBox projection.
Interval exitXOf(InterprocEngine<AnyDomain> &Engine) {
  AnyVal Exit = Engine.queryMain(Engine.cfgOf("main")->exit());
  if (!Exit.Ops)
    return Interval::top();
  IntervalState Box = Exit.Ops->ToBox(Exit.V);
  return Box.get("x").Num;
}

TEST(FunctionDomainPolicy, CalleeAdoptsMappedDomainExactly) {
  AnyDomainDefaultScope Bind("zone");
  ASSERT_TRUE(Bind.ok());
  // helper(5) = 7 must come back exact under every numeric caller/callee
  // domain mix: the callee instance runs in the mapped domain and the
  // constant survives both box crossings.
  for (const std::string &CalleeKey :
       {"interval", "constprop", "zone", "octagon", "dis_interval"}) {
    FunctionDomainPolicy Policy;
    ASSERT_TRUE(Policy.set("helper", CalleeKey));
    FunctionDomainPolicyScope Install(&Policy);
    Program P = mustLower(CallSource);
    InterprocEngine<AnyDomain> Engine(P, "main", /*K=*/1);
    ASSERT_TRUE(Engine.valid()) << Engine.error();
    EXPECT_EQ(exitXOf(Engine), Interval::constant(7))
        << "callee domain " << CalleeKey;
  }
}

TEST(FunctionDomainPolicy, SameKeyPolicyIsIdentity) {
  AnyDomainDefaultScope Bind("zone");
  ASSERT_TRUE(Bind.ok());
  // A policy that maps every function to the already-bound key must not
  // change a single rendered state relative to no policy at all.
  Program P1 = mustLower(CallSource);
  InterprocEngine<AnyDomain> Plain(P1, "main", /*K=*/1);
  ASSERT_TRUE(Plain.valid());
  std::string PlainExit =
      AnyDomain::toString(Plain.queryMain(Plain.cfgOf("main")->exit()));

  FunctionDomainPolicy Policy;
  ASSERT_TRUE(Policy.set("helper", "zone"));
  ASSERT_TRUE(Policy.set("main", "zone"));
  ASSERT_TRUE(Policy.setDefault("zone"));
  FunctionDomainPolicyScope Install(&Policy);
  Program P2 = mustLower(CallSource);
  InterprocEngine<AnyDomain> Mapped(P2, "main", /*K=*/1);
  ASSERT_TRUE(Mapped.valid());
  EXPECT_EQ(PlainExit, AnyDomain::toString(
                           Mapped.queryMain(Mapped.cfgOf("main")->exit())));
}

TEST(FunctionDomainPolicy, UnknownKeyIsRejected) {
  FunctionDomainPolicy Policy;
  EXPECT_FALSE(Policy.set("helper", "no_such_domain"));
  EXPECT_FALSE(Policy.setDefault("no_such_domain"));
  EXPECT_TRUE(Policy.set("helper", "interval"));
}

TEST(FunctionDomainPolicy, MixedPolicyStaysSoundOnWorkload) {
  // A deliberately heterogeneous policy over the random interprocedural
  // workload: results must stay sound (never tighter than the from-scratch
  // answer in the same configuration) and the engine must never crash on
  // the cross-domain call boundaries.
  AnyDomainDefaultScope Bind("interval");
  ASSERT_TRUE(Bind.ok());
  FunctionDomainPolicy Policy;
  // The workload generator names its helpers h0, h1, h2, ...
  ASSERT_TRUE(Policy.set("h0", "zone"));
  ASSERT_TRUE(Policy.set("h1", "constprop"));
  ASSERT_TRUE(Policy.set("h2", "dis_interval"));
  FunctionDomainPolicyScope Install(&Policy);

  WorkloadOptions Opts;
  Opts.Seed = 29;
  WorkloadGenerator Gen(Opts);
  Program Initial = Gen.makeInitialProgram();
  InterprocEngine<AnyDomain> Engine(Initial, "main", /*K=*/1);
  ASSERT_TRUE(Engine.valid()) << Engine.error();
  for (unsigned Edit = 0; Edit < 10; ++Edit) {
    EditRecord R = Gen.applyRandomEdit(Engine.program());
    if (R.Kind == EditKind::InsertStmt)
      Engine.applyInsertedStatementEdit("main", R.At, R.Splice);
    else
      Engine.applyStructuralEdit("main");
    for (Loc Q : Gen.sampleQueryLocations(Engine.program(), 3))
      (void)Engine.queryMain(Q);
  }
  InterprocEngine<AnyDomain> Fresh(Engine.program(), "main", /*K=*/1);
  ASSERT_TRUE(Fresh.valid());
  Loc Exit = Engine.cfgOf("main")->exit();
  AnyVal Incr = Engine.queryMain(Exit);
  AnyVal Scratch = Fresh.queryMain(Exit);
  EXPECT_TRUE(AnyDomain::leq(Scratch, Incr))
      << "incremental must over-approximate from-scratch under a mixed "
         "policy\n  incremental: "
      << AnyDomain::toString(Incr)
      << "\n  from-scratch: " << AnyDomain::toString(Scratch);
}

} // namespace
