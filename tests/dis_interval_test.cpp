//===-- tests/dis_interval_test.cpp - Disjunctive interval oracle ---------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential lockstep oracle for DisIntervalDomain against its
/// specification, IntervalDomain:
///
///  - Soundness-with-precision: after any identical chain of transfer /
///    assume / join steps, the disjunctive state's convex hull is ≤ the
///    interval state (never less precise). Raw widening is deliberately
///    excluded from these chains at K > 1 — pairwise widening of partition
///    lists is incomparable step-by-step with hull widening; its own
///    containment law (hull of the disjunctive widen ⊑ interval widen of
///    the hulls) is pinned separately below.
///
///  - Degeneration: at K = 1 (DisIntervalPartitionScope), every operation
///    INCLUDING widening produces exactly the interval result.
///
///  - Strict wins: targeted path-sensitive cases where the partition list
///    refutes what the convex hull cannot.
///
//===----------------------------------------------------------------------===//

#include "domain/dis_interval.h"
#include "domain/interval.h"
#include "support/rng.h"
#include "support/statistics.h"

#include <gtest/gtest.h>

using namespace dai;

namespace {

ExprPtr var(const std::string &N) { return Expr::mkVar(N); }
ExprPtr lit(int64_t V) { return Expr::mkInt(V); }
ExprPtr bin(BinaryOp Op, ExprPtr L, ExprPtr R) {
  return Expr::mkBinary(Op, std::move(L), std::move(R));
}

/// Numeric statements only — both domains implement the identical transfer
/// on them, so lockstep comparison is meaningful. The Or-guard is the
/// partition source (case 4) and the Ne-guard the partition splitter.
Stmt randomLockstepStmt(Rng &R) {
  std::string X = "v" + std::to_string(R.below(4));
  std::string Y = "v" + std::to_string(R.below(4));
  auto CmpOp = [&R] {
    switch (R.below(6)) {
    case 0: return BinaryOp::Lt;
    case 1: return BinaryOp::Le;
    case 2: return BinaryOp::Gt;
    case 3: return BinaryOp::Ge;
    case 4: return BinaryOp::Eq;
    default: return BinaryOp::Ne;
    }
  };
  switch (R.below(8)) {
  case 0:
    return Stmt::mkAssign(X, lit(R.range(-9, 9)));
  case 1:
    return Stmt::mkAssign(X, bin(BinaryOp::Add, var(Y), lit(R.range(-5, 5))));
  case 2:
    return Stmt::mkAssign(X, bin(BinaryOp::Sub, var(Y), var(X)));
  case 3:
    return Stmt::mkAssign(X, bin(BinaryOp::Mul, var(Y), lit(R.range(-3, 3))));
  case 4: {
    int64_t Lo = R.range(-9, -1), Hi = R.range(1, 9);
    return Stmt::mkAssume(bin(BinaryOp::Or,
                              bin(BinaryOp::Le, var(X), lit(Lo)),
                              bin(BinaryOp::Ge, var(X), lit(Hi))));
  }
  case 5:
    return Stmt::mkAssume(bin(CmpOp(), var(X), lit(R.range(-9, 9))));
  case 6:
    return Stmt::mkAssume(bin(CmpOp(), var(X), var(Y)));
  default: {
    std::vector<ExprPtr> Elems;
    unsigned N = 1 + static_cast<unsigned>(R.below(3));
    for (unsigned I = 0; I < N; ++I)
      Elems.push_back(lit(R.range(-9, 9)));
    return Stmt::mkAssign(X, Expr::mkArray(std::move(Elems)));
  }
  }
}

/// hull(D) ⊑ I — the disjunctive run is never less precise than the
/// interval run over the same program.
void expectHullLeq(const DisIntervalState &D, const IntervalState &I,
                   const std::string &Ctx) {
  EXPECT_TRUE(IntervalDomain::leq(D.hullState(), I))
      << Ctx << "\n  dis hull: " << IntervalDomain::toString(D.hullState())
      << "\n  interval: " << IntervalDomain::toString(I);
}

//===----------------------------------------------------------------------===//
// Lockstep sweeps
//===----------------------------------------------------------------------===//

class DisIntervalLockstep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DisIntervalLockstep, HullNeverLessPreciseThanInterval) {
  // K = 4 (the default): partitions survive, so the disjunctive state may
  // be strictly tighter but must stay contained. No raw widen here — see
  // the file comment; WidenContainedInIntervalWiden covers it.
  DisIntervalPartitionScope K(4);
  Rng R(GetParam());
  for (unsigned Run = 0; Run < 30; ++Run) {
    DisIntervalState D = DisIntervalDomain::initialEntry({});
    IntervalState I = IntervalDomain::initialEntry({});
    unsigned Steps = 2 + static_cast<unsigned>(R.below(10));
    for (unsigned S = 0; S < Steps; ++S) {
      if (R.percent(20)) {
        // Join with a sibling chain, applied identically on both sides.
        DisIntervalState DS = DisIntervalDomain::initialEntry({});
        IntervalState IS = IntervalDomain::initialEntry({});
        unsigned M = static_cast<unsigned>(R.below(4));
        for (unsigned J = 0; J < M; ++J) {
          Stmt St = randomLockstepStmt(R);
          DS = DisIntervalDomain::transfer(St, DS);
          IS = IntervalDomain::transfer(St, IS);
        }
        D = DisIntervalDomain::join(D, DS);
        I = IntervalDomain::join(I, IS);
      } else {
        Stmt St = randomLockstepStmt(R);
        D = DisIntervalDomain::transfer(St, D);
        I = IntervalDomain::transfer(St, I);
      }
      expectHullLeq(D, I, "after step " + std::to_string(S));
    }
    // Precision refinement: if the interval run proves ⊥, the (tighter)
    // disjunctive run must have proven it too.
    if (IntervalDomain::isBottom(I))
      EXPECT_TRUE(DisIntervalDomain::isBottom(D));
  }
}

TEST_P(DisIntervalLockstep, DegeneratesToIntervalAtK1) {
  // At K = 1 every partition list collapses to its hull, and ALL
  // operations — widening included — must agree with the interval domain
  // bit-for-bit (same states, so same hashes and memo behavior).
  DisIntervalPartitionScope K(1);
  Rng R(GetParam());
  for (unsigned Run = 0; Run < 30; ++Run) {
    DisIntervalState D = DisIntervalDomain::initialEntry({});
    IntervalState I = IntervalDomain::initialEntry({});
    unsigned Steps = 2 + static_cast<unsigned>(R.below(10));
    for (unsigned S = 0; S < Steps; ++S) {
      switch (R.below(4)) {
      case 0: { // widen against a sibling chain
        DisIntervalState DS = DisIntervalDomain::initialEntry({});
        IntervalState IS = IntervalDomain::initialEntry({});
        unsigned M = static_cast<unsigned>(R.below(3));
        for (unsigned J = 0; J < M; ++J) {
          Stmt St = randomLockstepStmt(R);
          DS = DisIntervalDomain::transfer(St, DS);
          IS = IntervalDomain::transfer(St, IS);
        }
        D = DisIntervalDomain::widen(D, DisIntervalDomain::join(D, DS));
        I = IntervalDomain::widen(I, IntervalDomain::join(I, IS));
        break;
      }
      case 1: { // join
        Stmt St = randomLockstepStmt(R);
        D = DisIntervalDomain::join(D, DisIntervalDomain::transfer(St, D));
        I = IntervalDomain::join(I, IntervalDomain::transfer(St, I));
        break;
      }
      default: {
        Stmt St = randomLockstepStmt(R);
        D = DisIntervalDomain::transfer(St, D);
        I = IntervalDomain::transfer(St, I);
      }
      }
      EXPECT_TRUE(IntervalDomain::equal(D.hullState(), I))
          << "K=1 divergence at step " << S
          << "\n  dis:      " << DisIntervalDomain::toString(D)
          << "\n  interval: " << IntervalDomain::toString(I);
      EXPECT_EQ(DisIntervalDomain::isBottom(D), IntervalDomain::isBottom(I));
    }
  }
}

TEST_P(DisIntervalLockstep, WidenContainedInIntervalWiden) {
  // The K > 1 widening law: hull(P ∇ N) ⊑ hull(P) ∇ hull(N). The pairwise
  // partition widening is meet-clamped by the hull widening exactly so this
  // holds — the disjunctive domain can never report a wider post-widening
  // range than the plain interval domain would.
  DisIntervalPartitionScope K(4);
  Rng R(GetParam());
  for (unsigned Run = 0; Run < 60; ++Run) {
    DisIntervalState P = DisIntervalDomain::initialEntry({});
    DisIntervalState Step = DisIntervalDomain::initialEntry({});
    unsigned M = 1 + static_cast<unsigned>(R.below(5));
    for (unsigned J = 0; J < M; ++J)
      P = DisIntervalDomain::transfer(randomLockstepStmt(R), P);
    for (unsigned J = 0; J < M; ++J)
      Step = DisIntervalDomain::transfer(randomLockstepStmt(R), Step);
    DisIntervalState N = DisIntervalDomain::join(P, Step);
    DisIntervalState W = DisIntervalDomain::widen(P, N);
    // Widening is an upper bound of both arguments...
    EXPECT_TRUE(DisIntervalDomain::leq(P, W));
    EXPECT_TRUE(DisIntervalDomain::leq(N, W));
    // ...and its hull is inside the interval-widened hulls.
    IntervalState IW = IntervalDomain::widen(P.hullState(), N.hullState());
    expectHullLeq(W, IW, "widen containment");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DisIntervalLockstep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u));

//===----------------------------------------------------------------------===//
// Targeted strict-precision wins
//===----------------------------------------------------------------------===//

TEST(DisIntervalTest, BranchJoinStaysExact) {
  // x == 0 or x == 10, then x == 5: the partition list {0, 10} refutes 5;
  // the convex hull [0, 10] cannot.
  Stmt B0 = Stmt::mkAssume(bin(BinaryOp::Eq, var("x"), lit(0)));
  Stmt B1 = Stmt::mkAssume(bin(BinaryOp::Eq, var("x"), lit(10)));
  Stmt Probe = Stmt::mkAssume(bin(BinaryOp::Eq, var("x"), lit(5)));

  DisIntervalState D = DisIntervalDomain::join(
      DisIntervalDomain::transfer(B0, DisIntervalDomain::initialEntry({})),
      DisIntervalDomain::transfer(B1, DisIntervalDomain::initialEntry({})));
  EXPECT_EQ(D.get("x").Num.numParts(), 2u);
  EXPECT_FALSE(D.get("x").Num.contains(5));
  EXPECT_TRUE(
      DisIntervalDomain::isBottom(DisIntervalDomain::transfer(Probe, D)));

  IntervalState I = IntervalDomain::join(
      IntervalDomain::transfer(B0, IntervalDomain::initialEntry({})),
      IntervalDomain::transfer(B1, IntervalDomain::initialEntry({})));
  EXPECT_FALSE(IntervalDomain::isBottom(IntervalDomain::transfer(Probe, I)));
}

TEST(DisIntervalTest, GuardPrunesWholePartitions) {
  // x ∈ [0,1] ∪ [9,10], then x >= 2: the disjunctive state drops the low
  // partition entirely ([9,10]); the interval state only trims to [2,10].
  Stmt Disj = Stmt::mkAssume(
      bin(BinaryOp::Or,
          bin(BinaryOp::And, bin(BinaryOp::Ge, var("x"), lit(0)),
              bin(BinaryOp::Le, var("x"), lit(1))),
          bin(BinaryOp::And, bin(BinaryOp::Ge, var("x"), lit(9)),
              bin(BinaryOp::Le, var("x"), lit(10)))));
  Stmt Guard = Stmt::mkAssume(bin(BinaryOp::Ge, var("x"), lit(2)));

  DisIntervalState D = DisIntervalDomain::transfer(
      Guard,
      DisIntervalDomain::transfer(Disj, DisIntervalDomain::initialEntry({})));
  EXPECT_EQ(D.get("x").Num.hull(), Interval::range(9, 10));

  IntervalState I = IntervalDomain::transfer(
      Guard, IntervalDomain::transfer(Disj, IntervalDomain::initialEntry({})));
  EXPECT_EQ(I.get("x").Num, Interval::range(2, 10));
  // Strictly tighter, and still contained (the lockstep invariant).
  EXPECT_TRUE(IntervalDomain::leq(D.hullState(), I));
  EXPECT_FALSE(IntervalDomain::leq(I, D.hullState()));
}

TEST(DisIntervalTest, NeSplitsInteriorPartition) {
  // x ∈ [0,10], then x != 5: a convex interval cannot remove an interior
  // point; the disjunctive domain splits into [0,4] ∪ [6,10].
  uint64_t SplitsBefore = disIntervalCounters().PartitionSplits;
  DisIntervalState D = DisIntervalDomain::initialEntry({});
  D = DisIntervalDomain::transfer(
      Stmt::mkAssume(bin(BinaryOp::And, bin(BinaryOp::Ge, var("x"), lit(0)),
                         bin(BinaryOp::Le, var("x"), lit(10)))),
      D);
  D = DisIntervalDomain::transfer(
      Stmt::mkAssume(bin(BinaryOp::Ne, var("x"), lit(5))), D);
  ASSERT_EQ(D.get("x").Num.numParts(), 2u);
  EXPECT_EQ(D.get("x").Num.parts()[0], Interval::range(0, 4));
  EXPECT_EQ(D.get("x").Num.parts()[1], Interval::range(6, 10));
  EXPECT_FALSE(D.get("x").Num.contains(5));
  EXPECT_GT(disIntervalCounters().PartitionSplits, SplitsBefore);
}

TEST(DisIntervalTest, GapRefutesEqualityHullCannot) {
  DisInterval A = DisInterval::fromInterval(Interval::range(0, 1))
                      .join(DisInterval::fromInterval(Interval::range(9, 10)));
  DisInterval B = DisInterval::constant(5);
  // The hulls overlap ([0,10] vs {5}), so hull-based equality is unknown —
  // but 5 falls in the gap, so the partition list refutes it.
  EXPECT_EQ(A.hull().cmpEq(Interval::constant(5)), TriBool::Unknown);
  EXPECT_EQ(A.cmpEq(B), TriBool::False);
  // Lt/Le stay hull-based (deliberately identical to the interval domain).
  EXPECT_EQ(A.cmpLt(B), A.hull().cmpLt(Interval::constant(5)));
}

//===----------------------------------------------------------------------===//
// Partition bound K and its counters
//===----------------------------------------------------------------------===//

TEST(DisIntervalTest, PartitionCapForcesCountedCollapse) {
  DisIntervalPartitionScope K(2);
  uint64_t Before = disIntervalCounters().PartitionsCollapsed;
  // Three well-separated constants under K = 2: normalization must merge
  // the closest pair ({0,10,100} → {[0,10],[100,100]}) and count it.
  DisInterval D = DisInterval::constant(0)
                      .join(DisInterval::constant(10))
                      .join(DisInterval::constant(100));
  EXPECT_EQ(D.numParts(), 2u);
  EXPECT_GT(disIntervalCounters().PartitionsCollapsed, Before);
  // The closest-gap heuristic merged 0 and 10, not 10 and 100.
  EXPECT_EQ(D.parts()[0], Interval::range(0, 10));
  EXPECT_EQ(D.parts()[1], Interval::constant(100));
  // Still sound: every original point is covered.
  for (int64_t V : {0, 10, 100})
    EXPECT_TRUE(D.contains(V));
  EXPECT_FALSE(D.contains(50));
}

TEST(DisIntervalTest, DisjunctiveJoinCounterFires) {
  uint64_t Before = disIntervalCounters().DisjunctiveJoins;
  DisInterval D = DisInterval::constant(0).join(DisInterval::constant(10));
  EXPECT_EQ(D.numParts(), 2u);
  EXPECT_GT(disIntervalCounters().DisjunctiveJoins, Before);
}

TEST(DisIntervalTest, AdjacentPartsCoalesceWithoutCollapseCount) {
  uint64_t Before = disIntervalCounters().PartitionsCollapsed;
  // [0,4] ∪ [5,9] is contiguous — coalescing it is normalization, not a
  // precision-losing K-collapse, so the gate counter must NOT move.
  DisInterval D = DisInterval::fromInterval(Interval::range(0, 4))
                      .join(DisInterval::fromInterval(Interval::range(5, 9)));
  EXPECT_EQ(D.numParts(), 1u);
  EXPECT_EQ(D.hull(), Interval::range(0, 9));
  EXPECT_EQ(disIntervalCounters().PartitionsCollapsed, Before);
}

TEST(DisIntervalTest, CountersAggregateAcrossThreads) {
  // The DisInterval counter family must ride the same ThreadCounters
  // snapshot/delta plumbing the zone and staged counters use — the bench
  // gate reads the aggregated numbers.
  ThreadCounters Snap = ThreadCounters::snapshot();
  {
    DisIntervalPartitionScope K(2);
    (void)DisInterval::constant(0)
        .join(DisInterval::constant(10))
        .join(DisInterval::constant(100));
  }
  ThreadCounters Delta = ThreadCounters::snapshot().deltaSince(Snap);
  EXPECT_GT(Delta.DisInterval.PartitionsCollapsed, 0u);
  EXPECT_GT(Delta.DisInterval.DisjunctiveJoins, 0u);
}

} // namespace
