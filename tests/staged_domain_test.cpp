//===-- tests/staged_domain_test.cpp - Staged zone→octagon tests ----------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the staged zone→octagon domain (domain/staged.h):
///  - escalation SEEDING: an octagon seeded from a closed zone entails the
///    zone's bounds EXACTLY — every unary and difference bound equal, no
///    precision lost, no unsound tightening (randomized over constraint
///    chains);
///  - escalation TRIGGERS: octagonal-not-zone assume guards escalate,
///    zone-representable guards do not, and escalation persists through
///    subsequent transfers with the tiers reduced (octagon-implied unary
///    bounds visible in the zone tier);
///  - the EXACTNESS contract: on generated workload programs, escalated
///    sum-constraint queries through the demanded interprocedural engine
///    match a pure-octagon engine's answers (the Fig. 10 bench's lockstep
///    claim, exercised here deterministically).
///
//===----------------------------------------------------------------------===//

#include "domain/staged.h"

#include "interproc/engine.h"
#include "support/rng.h"
#include "workload/generator.h"

#include <gtest/gtest.h>

using namespace dai;

namespace {

constexpr size_t npos = static_cast<size_t>(-1);
constexpr int64_t Inf = Zone::kPosInf;

static_assert(AbstractDomain<StagedDomain>,
              "StagedDomain must satisfy the Section 3 domain concept");

std::vector<SymbolId> universe() {
  std::vector<SymbolId> U;
  for (const char *N : {"a", "b", "c", "d", "e"})
    U.push_back(internSymbol(N));
  return U;
}

ExprPtr var(const std::string &N) { return Expr::mkVar(N); }
ExprPtr lit(int64_t C) { return Expr::mkInt(C); }

/// x + y ≤ c — the octagonal-not-zone guard shape.
ExprPtr sumLe(const std::string &X, const std::string &Y, int64_t C) {
  return Expr::mkBinary(BinaryOp::Le,
                        Expr::mkBinary(BinaryOp::Add, var(X), var(Y)),
                        lit(C));
}

/// x − y ≤ c — zone-representable.
ExprPtr diffLe(const std::string &X, const std::string &Y, int64_t C) {
  return Expr::mkBinary(BinaryOp::Le,
                        Expr::mkBinary(BinaryOp::Sub, var(X), var(Y)),
                        lit(C));
}

} // namespace

//===----------------------------------------------------------------------===//
// Seeding: zone → octagon with zero precision drift
//===----------------------------------------------------------------------===//

class SeedLockstepSeed : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedLockstepSeed, SeededOctagonEntailsZoneBoundsExactly) {
  Rng R(GetParam());
  std::vector<SymbolId> U = universe();
  auto randSym = [&] { return U[R.below(U.size())]; };
  auto randC = [&] { return static_cast<int64_t>(R.below(41)) - 20; };

  Zone Z = Zone::top();
  for (unsigned Step = 0; Step < 120; ++Step) {
    if (Z.isBottom())
      Z = Zone::top();
    SymbolId X = randSym(), Y = randSym();
    if (Z.varIndex(X) == npos)
      Z.addVar(X);
    if (Z.varIndex(Y) == npos)
      Z.addVar(Y);
    switch (R.below(3)) {
    case 0:
      Z.addUpperBound(X, randC());
      break;
    case 1:
      Z.addLowerBound(X, randC());
      break;
    default:
      if (X != Y)
        Z.addDifference(X, Y, randC());
      break;
    }
    if (Z.isBottom())
      continue;
    const Zone &C = Z.closedView();
    Octagon O = seedOctagonFromZone(Z);
    ASSERT_FALSE(O.isBottom()) << "feasible zone seeded ⊥ at step " << Step;
    ASSERT_TRUE(O.isClosed());
    for (SymbolId V : C.vars()) {
      // Unary bounds: equal, not merely entailed — seeding must not lose
      // precision, and strong closure over zone-representable constraints
      // must not manufacture tighter unary bounds than the zone's own
      // closure (every cross-sign octagon path factors through the zero
      // vertex the zone already closed over).
      EXPECT_EQ(O.boundsOf(V), C.boundsOf(V))
          << "unary drift on " << symbolName(V) << " at step " << Step;
      for (SymbolId W : C.vars()) {
        if (V == W)
          continue;
        int64_t ZUb = C.constraintOn(W, V); // v − w ≤ ZUb
        Interval OD = O.diffBounds(V, W);
        int64_t OUb = OD.hi() == Interval::kPosInf ? Inf : OD.hi();
        EXPECT_EQ(OUb, ZUb) << "difference drift on " << symbolName(V)
                            << " - " << symbolName(W) << " at step " << Step;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedLockstepSeed,
                         ::testing::Values(3u, 17u, 42u, 20260728u));

TEST(StagedSeedTest, SeedOfBottomAndTop) {
  EXPECT_TRUE(seedOctagonFromZone(Zone::bottomValue()).isBottom());
  Octagon O = seedOctagonFromZone(Zone::top());
  EXPECT_FALSE(O.isBottom());
  EXPECT_TRUE(O.isClosed());
  EXPECT_EQ(O.numVars(), 0u);
}

//===----------------------------------------------------------------------===//
// Escalation triggers and reduction
//===----------------------------------------------------------------------===//

TEST(StagedDomainTest, GuardClassification) {
  EXPECT_TRUE(guardNeedsOctagon(sumLe("x", "y", 3)));
  EXPECT_FALSE(guardNeedsOctagon(diffLe("x", "y", 3)));
  EXPECT_FALSE(guardNeedsOctagon(
      Expr::mkBinary(BinaryOp::Le, var("x"), lit(3))));
  // −x − y ≤ c is the same-sign shape with negative units.
  EXPECT_TRUE(guardNeedsOctagon(Expr::mkBinary(
      BinaryOp::Ge, Expr::mkBinary(BinaryOp::Add, var("x"), var("y")),
      lit(0))));
  // Nested under And/Or/Not.
  EXPECT_TRUE(guardNeedsOctagon(Expr::mkBinary(
      BinaryOp::And, diffLe("x", "y", 1), sumLe("x", "y", 3))));
  EXPECT_TRUE(guardNeedsOctagon(
      Expr::mkUnary(UnaryOp::Not, sumLe("x", "y", 3))));
  // Disequality falls back to intervals in both tiers: no escalation —
  // including the negated-equality spelling, which assume() evaluates as
  // a Ne atom.
  EXPECT_FALSE(guardNeedsOctagon(Expr::mkBinary(
      BinaryOp::Ne, Expr::mkBinary(BinaryOp::Add, var("x"), var("y")),
      lit(3))));
  EXPECT_FALSE(guardNeedsOctagon(Expr::mkUnary(
      UnaryOp::Not,
      Expr::mkBinary(BinaryOp::Eq,
                     Expr::mkBinary(BinaryOp::Add, var("x"), var("y")),
                     lit(3)))));
}

TEST(StagedDomainTest, OctagonalGuardEscalatesAndAnswersSum) {
  Staged V = StagedDomain::initialEntry({});
  ASSERT_FALSE(V.escalated());
  V = StagedDomain::assume(V, Expr::mkBinary(BinaryOp::Ge, var("x"), lit(0)));
  V = StagedDomain::assume(V, Expr::mkBinary(BinaryOp::Ge, var("y"), lit(0)));
  EXPECT_FALSE(V.escalated()) << "zone-representable guards must not escalate";
  Staged E = StagedDomain::assume(V, sumLe("x", "y", 3));
  ASSERT_TRUE(E.escalated());
  EXPECT_TRUE(E.Seeded) << "mid-path escalation must be marked Seeded";
  SymbolId X = internSymbol("x"), Y = internSymbol("y");
  EXPECT_EQ(E.sumBounds(X, Y), Interval::range(0, 3));
  // The zone tier alone cannot store x + y ≤ 3: its degraded sum answer on
  // the un-escalated input stays unbounded above.
  EXPECT_EQ(V.sumBounds(X, Y).hi(), Interval::kPosInf);
}

TEST(StagedDomainTest, ReductionImportsOctagonUnaryBoundsIntoZone) {
  // x − y ≤ 0 is zone-knowledge; x + y ≤ 4 is octagon-only. Together they
  // imply 2x ≤ 4. After the escalating assume, the octagon→zone reduction
  // must make x ≤ 2 visible in the ZONE tier.
  Staged V = StagedDomain::initialEntry({});
  V = StagedDomain::assume(V, diffLe("x", "y", 0));
  ASSERT_FALSE(V.escalated());
  Staged E = StagedDomain::assume(V, sumLe("x", "y", 4));
  ASSERT_TRUE(E.escalated());
  EXPECT_EQ(E.Z.closedView().boundsOf(std::string("x")).hi(), 2);
}

TEST(StagedDomainTest, EscalationPersistsThroughTransfers) {
  Staged E = StagedDomain::assume(StagedDomain::initialEntry({}),
                                  sumLe("x", "y", 5));
  ASSERT_TRUE(E.escalated());
  // An octagonal assignment (z := −x + 1) on an escalated state keeps both
  // tiers: the octagon tracks z + x = 1 exactly.
  Staged T = StagedDomain::transfer(
      Stmt::mkAssign("z", Expr::mkBinary(BinaryOp::Add,
                                         Expr::mkUnary(UnaryOp::Neg,
                                                       var("x")),
                                         lit(1))),
      E);
  ASSERT_TRUE(T.escalated());
  SymbolId Z = internSymbol("z"), X = internSymbol("x");
  EXPECT_EQ(T.sumBounds(Z, X), Interval::constant(1));
  // A zone-only value stays zone-only through the same transfer.
  Staged P = StagedDomain::transfer(Stmt::mkSkip(),
                                    StagedDomain::initialEntry({}));
  EXPECT_FALSE(P.escalated());
}

TEST(StagedDomainTest, BottomIsCanonicalAndOperationsAreBottomSafe) {
  Staged Bot = StagedDomain::bottom();
  EXPECT_TRUE(StagedDomain::isBottom(Bot));
  EXPECT_FALSE(Bot.escalated());
  EXPECT_TRUE(Bot.sumBounds(internSymbol("x"), internSymbol("y")).isEmpty());
  EXPECT_TRUE(Bot.boundsOf(std::string("x")).isEmpty());
  // A contradicting octagonal guard collapses the WHOLE value (the zone
  // tier cannot see the contradiction itself).
  Staged V = StagedDomain::initialEntry({});
  V = StagedDomain::assume(V, Expr::mkBinary(BinaryOp::Ge, var("x"), lit(3)));
  V = StagedDomain::assume(V, Expr::mkBinary(BinaryOp::Ge, var("y"), lit(3)));
  Staged E = StagedDomain::assume(V, sumLe("x", "y", 5));
  EXPECT_TRUE(StagedDomain::isBottom(E));
  EXPECT_FALSE(E.escalated()) << "⊥ must collapse to the canonical form";
  // Lattice ops respect ⊥.
  EXPECT_TRUE(StagedDomain::leq(Bot, V));
  EXPECT_FALSE(StagedDomain::leq(V, Bot));
  EXPECT_TRUE(StagedDomain::equal(StagedDomain::join(Bot, V), V));
}

TEST(StagedDomainTest, HashAgreesWithEqualAcrossEscalationStatus) {
  Staged A = StagedDomain::assume(StagedDomain::initialEntry({}),
                                  diffLe("x", "y", 2));
  Staged B = StagedDomain::assume(StagedDomain::initialEntry({}),
                                  diffLe("x", "y", 2));
  EXPECT_TRUE(StagedDomain::equal(A, B));
  EXPECT_EQ(StagedDomain::hash(A), StagedDomain::hash(B));
  // Escalating one side changes its identity (status is part of equality),
  // so the unequal pair may — and here must — hash apart.
  Staged AE = StagedDomain::assume(A, sumLe("x", "y", 100));
  ASSERT_TRUE(AE.escalated());
  EXPECT_FALSE(StagedDomain::equal(AE, B));
  Staged AE2 = StagedDomain::assume(B, sumLe("x", "y", 100));
  EXPECT_TRUE(StagedDomain::equal(AE, AE2));
  EXPECT_EQ(StagedDomain::hash(AE), StagedDomain::hash(AE2));
}

//===----------------------------------------------------------------------===//
// Demanded escalation through the interprocedural engine: the exactness
// contract (the bench's lockstep claim, deterministic here)
//===----------------------------------------------------------------------===//

class EscalatedQuerySeed : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EscalatedQuerySeed, EscalatedSumQueriesMatchPureOctagonRun) {
  WorkloadOptions WOpts;
  WOpts.Seed = GetParam();
  WOpts.NumVars = 6;
  WorkloadGenerator Gen(WOpts);
  Program P = Gen.makeInitialProgram();
  for (unsigned Edit = 0; Edit < 40; ++Edit)
    Gen.applyRandomEdit(P);

  InterprocEngine<StagedDomain> SE(P, "main", 0);
  InterprocEngine<OctagonDomain> OE(P, "main", 0);
  ASSERT_TRUE(SE.valid());
  ASSERT_TRUE(OE.valid());

  std::vector<Loc> Locs = Gen.sampleQueryLocations(P, 8);
  const std::vector<std::string> &Pool = Gen.varPool();
  StagedEscalationScope Scope; // keep escalated cells warm across queries
  for (Loc L : Locs) {
    Staged SV = queryEscalatedMain(SE, L);
    Octagon OV = OE.queryMain(L);
    for (size_t I = 0; I + 1 < Pool.size(); I += 2) {
      SymbolId A = internSymbol(Pool[I]), B = internSymbol(Pool[I + 1]);
      Interval S1 = SV.sumBounds(A, B);
      Interval S2 = OV.isBottom() ? Interval::empty()
                                  : OV.closedView().sumBounds(A, B);
      if (StagedDomain::isBottom(SV)) {
        // The zone tier may prove infeasibility the octagon misses (its
        // affine assignment transformers track relations the octagon's
        // interval fallback drops) — a sound improvement, never a drift.
        EXPECT_TRUE(S1.isEmpty());
        continue;
      }
      ASSERT_TRUE(SV.escalated())
          << "escalated query returned a zone-only value at loc " << L;
      EXPECT_FALSE(SV.Seeded)
          << "escalated query returned a mid-path-seeded value at loc " << L;
      if (S1 == S2)
        continue;
      // The one permitted divergence (same classification as the bench's
      // staged_sum_tighter): the zone's affine transformers can prove a
      // branch infeasible that the octagon's interval fallback cannot, and
      // the staged join then soundly drops it — strictly TIGHTER answers
      // are allowed, looser or incomparable ones never are.
      EXPECT_TRUE(S2.subsumes(S1))
          << "sum(" << Pool[I] << ", " << Pool[I + 1]
          << ") diverged non-soundly from the pure octagon at loc " << L
          << ": staged " << S1.toString() << " vs octagon " << S2.toString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EscalatedQuerySeed,
                         ::testing::Values(1u, 7u, 42u, 1234u));

TEST(StagedEngineTest, QueryEscalatedMainEscalatesOnlyOnDemand) {
  // A straight-line program whose sum information comes from an octagonal
  // assignment (b := −a + 10): the zone loses a + b = 10, the escalated
  // query recovers it exactly.
  WorkloadOptions WOpts;
  WOpts.Seed = 5;
  WorkloadGenerator Gen(WOpts); // only used for program scaffolding
  Program P = Gen.makeInitialProgram();
  Function *Main = P.find("main");
  ASSERT_NE(Main, nullptr);
  Loc Cur = Main->Body.entry();
  auto append = [&](Stmt S) {
    InsertResult R = insertStmtAt(Main->Body, Cur, std::move(S));
    Cur = R.HammockExit;
  };
  append(Stmt::mkAssign("a", lit(4)));
  append(Stmt::mkAssign("b", Expr::mkBinary(
                                  BinaryOp::Add,
                                  Expr::mkUnary(UnaryOp::Neg, var("a")),
                                  lit(10))));

  InterprocEngine<StagedDomain> SE(P, "main", 0);
  ASSERT_TRUE(SE.valid());
  StagedCounters Before = stagedCounters();
  Staged Plain = SE.queryMain(Cur);
  EXPECT_FALSE(Plain.escalated()) << "plain queries must stay zone-only";
  // a is constant, so even the zone pins the sum here; the point is the
  // octagon tier is NOT materialized until demanded.
  Staged E = queryEscalatedMain(SE, Cur);
  ASSERT_TRUE(E.escalated());
  EXPECT_EQ(E.sumBounds(internSymbol("a"), internSymbol("b")),
            Interval::constant(10));
  StagedCounters Delta = stagedCounters() - Before;
  EXPECT_EQ(Delta.Escalations, 1u);
  EXPECT_GT(Delta.ZoneTransfers, 0u);
  // A second demand on the same location reuses the escalated cell.
  StagedCounters Before2 = stagedCounters();
  Staged E2 = queryEscalatedMain(SE, Cur);
  EXPECT_TRUE(E2.escalated());
  EXPECT_EQ((stagedCounters() - Before2).Escalations, 0u);
}
