//===-- tests/octagon_halfmatrix_test.cpp - Half-matrix DBM tests ---------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The safety net for the coherent half-matrix representation: a dense
/// (2n)² reference implementation of the octagon kernels (the pre-refactor
/// algorithms, verbatim in spirit) is driven through long random sequences
/// of mutating operations — addConstraint / close / closeIncremental /
/// elementwiseMax (join kernel) / widenWith / addVar / forgetInPlace /
/// forgetAndRemove / rename — in lockstep with the half-matrix Octagon,
/// asserting after every step that (a) all logical entries agree entrywise
/// and (b) the logical matrix is coherent: at(i,j) == at(j̄,ī).
///
/// Also the regression tests for the soundness fixes that shipped with the
/// representation change:
///  - an assignment whose RHS interval is EMPTY collapses to ⊥ (it used to
///    havoc the target like a ⊤ RHS),
///  - raw set() clears the Closed flag whenever the entry changes,
///  - the `x := ±x + c` path survives a program variable named "__oct_tmp".
///
//===----------------------------------------------------------------------===//

#include "domain/octagon.h"

#include "lang/stmt.h"
#include "support/rng.h"
#include "support/statistics.h"

#include <algorithm>
#include <gtest/gtest.h>

using namespace dai;

namespace {

constexpr int64_t Inf = Octagon::kPosInf;
constexpr size_t npos = static_cast<size_t>(-1);

int64_t refAdd(int64_t A, int64_t B) {
  if (A == Inf || B == Inf)
    return Inf;
  int64_t R;
  if (__builtin_add_overflow(A, B, &R))
    return (A > 0) ? Inf : INT64_MIN / 4;
  return R;
}

int64_t refDiv2(int64_t A) {
  if (A == Inf)
    return Inf;
  return A >= 0 ? A / 2 : (A - 1) / 2;
}

/// Dense (2n)² reference octagon: the pre-half-matrix algorithms, kept as
/// the oracle. Dimensions are SymbolIds sorted ascending, exactly like the
/// production representation, so logical indices line up one-to-one.
struct DenseOct {
  bool Bottom = false;
  std::vector<SymbolId> Vars;
  std::vector<int64_t> M;

  size_t n() const { return Vars.size(); }
  size_t dim() const { return 2 * Vars.size(); }
  int64_t at(size_t I, size_t J) const { return M[I * dim() + J]; }

  size_t varIndex(SymbolId S) const {
    auto It = std::lower_bound(Vars.begin(), Vars.end(), S);
    if (It == Vars.end() || *It != S)
      return npos;
    return static_cast<size_t>(It - Vars.begin());
  }

  void resizeFor(const std::vector<SymbolId> &NewVars,
                 const std::vector<size_t> &OldIdx) {
    size_t NewN = NewVars.size();
    size_t NewDim = 2 * NewN;
    size_t OldDim = dim();
    std::vector<int64_t> NewM(NewDim * NewDim, Inf);
    for (size_t I = 0; I < NewDim; ++I)
      NewM[I * NewDim + I] = 0;
    for (size_t A = 0; A < NewN; ++A) {
      if (OldIdx[A] == npos)
        continue;
      for (size_t B = 0; B < NewN; ++B) {
        if (OldIdx[B] == npos)
          continue;
        for (int SA = 0; SA < 2; ++SA)
          for (int SB = 0; SB < 2; ++SB)
            NewM[(2 * A + SA) * NewDim + (2 * B + SB)] =
                M[(2 * OldIdx[A] + SA) * OldDim + (2 * OldIdx[B] + SB)];
      }
    }
    Vars = NewVars;
    M = std::move(NewM);
  }

  void addVar(SymbolId S) {
    if (varIndex(S) != npos)
      return;
    std::vector<SymbolId> NewVars = Vars;
    NewVars.insert(std::lower_bound(NewVars.begin(), NewVars.end(), S), S);
    std::vector<size_t> OldIdx(NewVars.size());
    for (size_t K = 0; K < NewVars.size(); ++K)
      OldIdx[K] = (NewVars[K] == S) ? npos : varIndex(NewVars[K]);
    resizeFor(NewVars, OldIdx);
  }

  void addConstraint(size_t XIdx, bool PosX, size_t YIdx, bool PosY,
                     int64_t C) {
    size_t Dim = dim();
    auto tighten = [&](size_t I, size_t J, int64_t Bound) {
      int64_t &Slot = M[I * Dim + J];
      if (Bound < Slot)
        Slot = Bound;
    };
    if (YIdx == npos) {
      size_t Pos = 2 * XIdx, Neg = 2 * XIdx + 1;
      if (C >= Inf / 2)
        return;
      if (PosX)
        tighten(Neg, Pos, 2 * C);
      else
        tighten(Pos, Neg, 2 * C);
      return;
    }
    size_t A = 2 * XIdx + (PosX ? 0 : 1);
    size_t B = 2 * YIdx + (PosY ? 1 : 0);
    tighten(B, A, C);
    tighten(A ^ 1, B ^ 1, C); // coherence, written out explicitly
  }

  /// The original dense strong closure: single-pivot Floyd–Warshall over
  /// all doubled indices, then unary strengthening, then emptiness.
  void close() {
    if (Bottom)
      return;
    size_t Dim = dim();
    for (size_t K = 0; K < Dim; ++K)
      for (size_t I = 0; I < Dim; ++I) {
        int64_t IK = M[I * Dim + K];
        if (IK == Inf)
          continue;
        for (size_t J = 0; J < Dim; ++J) {
          int64_t Cand = refAdd(IK, M[K * Dim + J]);
          if (Cand < M[I * Dim + J])
            M[I * Dim + J] = Cand;
        }
      }
    for (size_t I = 0; I < Dim; ++I)
      for (size_t J = 0; J < Dim; ++J) {
        int64_t Cand =
            refAdd(refDiv2(M[I * Dim + (I ^ 1)]), refDiv2(M[(J ^ 1) * Dim + J]));
        if (Cand < M[I * Dim + J])
          M[I * Dim + J] = Cand;
      }
    for (size_t I = 0; I < Dim; ++I) {
      if (M[I * Dim + I] < 0) {
        Bottom = true;
        Vars.clear();
        M.clear();
        return;
      }
      M[I * Dim + I] = 0;
    }
  }

  void forgetInPlace(size_t Idx) {
    close();
    if (Bottom)
      return;
    size_t Dim = dim();
    for (int S = 0; S < 2; ++S) {
      size_t I = 2 * Idx + S;
      for (size_t J = 0; J < Dim; ++J) {
        M[I * Dim + J] = Inf;
        M[J * Dim + I] = Inf;
      }
      M[I * Dim + I] = 0;
    }
  }

  void forgetAndRemove(SymbolId S) {
    size_t Idx = varIndex(S);
    if (Idx == npos)
      return;
    close();
    if (Bottom)
      return;
    std::vector<SymbolId> NewVars;
    std::vector<size_t> OldIdx;
    for (size_t K = 0; K < n(); ++K) {
      if (K == Idx)
        continue;
      NewVars.push_back(Vars[K]);
      OldIdx.push_back(K);
    }
    resizeFor(NewVars, OldIdx);
  }

  void rename(SymbolId From, SymbolId To) {
    size_t FromIdx = varIndex(From);
    std::vector<SymbolId> NewVars = Vars;
    NewVars[FromIdx] = To;
    std::sort(NewVars.begin(), NewVars.end());
    std::vector<size_t> OldIdx(NewVars.size());
    for (size_t K = 0; K < NewVars.size(); ++K)
      OldIdx[K] = (NewVars[K] == To) ? FromIdx : varIndex(NewVars[K]);
    resizeFor(NewVars, OldIdx);
  }

  void elementwiseMax(const DenseOct &O) {
    for (size_t I = 0; I < M.size(); ++I)
      if (O.M[I] > M[I])
        M[I] = O.M[I];
  }

  void widenWith(const DenseOct &O) {
    size_t Dim = dim();
    for (size_t I = 0; I < Dim; ++I)
      for (size_t J = 0; J < Dim; ++J) {
        int64_t &Slot = M[I * Dim + J];
        if (I == J)
          Slot = 0;
        else if (O.M[I * Dim + J] > Slot)
          Slot = Inf;
      }
  }
};

/// Entrywise + coherence comparison; empty string means agreement.
std::string diffAgainstDense(const Octagon &Oct, const DenseOct &Ref) {
  if (Oct.isBottom() != Ref.Bottom)
    return std::string("bottom mismatch: half=") +
           (Oct.isBottom() ? "bot" : "nonbot") +
           " dense=" + (Ref.Bottom ? "bot" : "nonbot");
  if (Oct.isBottom())
    return "";
  if (Oct.vars() != Ref.Vars)
    return "variable-set mismatch";
  size_t Dim = 2 * Oct.numVars();
  for (size_t I = 0; I < Dim; ++I)
    for (size_t J = 0; J < Dim; ++J) {
      if (Oct.at(I, J) != Oct.at(J ^ 1, I ^ 1))
        return "coherence violation at (" + std::to_string(I) + "," +
               std::to_string(J) + ")";
      if (Oct.at(I, J) != Ref.at(I, J))
        return "entry (" + std::to_string(I) + "," + std::to_string(J) +
               "): half=" + std::to_string(Oct.at(I, J)) +
               " dense=" + std::to_string(Ref.at(I, J));
    }
  return "";
}

SymbolId testSym(const std::string &Base, unsigned K) {
  return internSymbol("hm_" + Base + std::to_string(K));
}

void freshPair(unsigned NumVars, unsigned &VarCounter, Octagon &Oct,
               DenseOct &Ref) {
  Oct = Octagon();
  Ref = DenseOct();
  for (unsigned I = 0; I < NumVars; ++I) {
    SymbolId S = testSym("v", VarCounter++);
    Oct.addVar(S);
    Ref.addVar(S);
  }
  Oct.close();
  Ref.close();
}

TEST(OctagonHalfMatrix, IndexAlgebra) {
  // Storage size: 2n² + 2n cells for n variables — half of dense + O(n).
  static_assert(Octagon::matSize(2) == 4);
  static_assert(Octagon::matSize(8) == 40);   // n=4: dense would be 64
  static_assert(Octagon::matSize(96) == 4704); // n=48: dense would be 9216
  // matPos2 respects the coherence involution and lands inside storage.
  // Off-diagonal, the two orientations are literally the same slot; the
  // diagonal's mirror (i,i) ↦ (ī,ī) is a distinct slot whose coherence is
  // semantic (both pinned to 0 by closure), exactly as in the dense layout.
  for (size_t I = 0; I < 96; ++I)
    for (size_t J = 0; J < 96; ++J) {
      if (I != J)
        ASSERT_EQ(Octagon::matPos2(I, J), Octagon::matPos2(J ^ 1, I ^ 1))
            << I << "," << J;
      ASSERT_LT(Octagon::matPos2(I, J), Octagon::matSize(96));
    }
  // Stored cells (j ≤ i|1) are addressed directly and bijectively.
  std::vector<bool> Seen(Octagon::matSize(96), false);
  for (size_t I = 0; I < 96; ++I)
    for (size_t J = 0; J <= (I | 1); ++J) {
      size_t P = Octagon::matPos(I, J);
      ASSERT_EQ(P, Octagon::matPos2(I, J));
      ASSERT_FALSE(Seen[P]) << "slot aliasing at (" << I << "," << J << ")";
      Seen[P] = true;
    }
  ASSERT_TRUE(std::all_of(Seen.begin(), Seen.end(), [](bool B) { return B; }));
}

/// The core property: long random chains of every mutating operation keep
/// the half-matrix entrywise equal to the dense reference and coherent.
TEST(OctagonHalfMatrix, RandomOpChainsMatchDenseReference) {
  unsigned VarCounter = 0;
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    Rng R(Seed);
    unsigned NumVars = 2 + static_cast<unsigned>(R.below(5)); // 2..6
    Octagon Oct;
    DenseOct Ref;
    freshPair(NumVars, VarCounter, Oct, Ref);
    for (unsigned Step = 0; Step < 80; ++Step) {
      unsigned Op = static_cast<unsigned>(R.below(100));
      size_t N = Oct.numVars();
      if (Op < 40 && N >= 1) {
        // addConstraint + re-closure (incremental and full paths).
        size_t X = R.below(N);
        size_t Y = npos;
        bool PosX = R.percent(50), PosY = R.percent(50);
        if (N >= 2 && R.percent(67))
          do {
            Y = R.below(N);
          } while (Y == X);
        int64_t C = R.range(-12, 25);
        Oct.addConstraint(X, PosX, Y, PosY, C);
        Ref.addConstraint(X, PosX, Y, PosY, C);
        if (R.percent(50))
          Oct.closeIncremental(X, Y);
        else
          Oct.close();
        Ref.close();
      } else if (Op < 50) {
        SymbolId S = testSym("v", VarCounter++);
        Oct.addVar(S);
        Ref.addVar(S);
      } else if (Op < 60 && N >= 1) {
        size_t Idx = R.below(N);
        Oct.forgetInPlace(Idx);
        Ref.forgetInPlace(Idx);
      } else if (Op < 70 && N >= 2) {
        SymbolId S = Oct.vars()[R.below(N)];
        Oct.forgetAndRemove(S);
        Ref.forgetAndRemove(S);
      } else if (Op < 80 && N >= 1) {
        SymbolId From = Oct.vars()[R.below(N)];
        SymbolId To = testSym("r", VarCounter++);
        Oct.rename(From, To);
        Ref.rename(From, To);
      } else if (N >= 1) {
        // Join / widen kernels against a perturbed copy over the same vars.
        Octagon OctB = Oct;
        DenseOct RefB = Ref;
        for (unsigned K = 0, E = 1 + static_cast<unsigned>(R.below(3)); K < E;
             ++K) {
          size_t X = R.below(N);
          bool PosX = R.percent(50);
          int64_t C = R.range(-8, 20);
          OctB.addConstraint(X, PosX, npos, true, C);
          RefB.addConstraint(X, PosX, npos, true, C);
        }
        OctB.close();
        RefB.close();
        if (OctB.isBottom() || RefB.Bottom) {
          ASSERT_EQ(OctB.isBottom(), RefB.Bottom) << "seed " << Seed;
        } else if (R.percent(50)) {
          Oct.elementwiseMax(OctB);
          Oct.Closed = true; // max of closed is closed (as join asserts)
          Ref.elementwiseMax(RefB);
        } else {
          Oct.widenWith(OctB);
          Ref.widenWith(RefB);
          std::string WDiff = diffAgainstDense(Oct, Ref);
          ASSERT_EQ(WDiff, "") << "widen, seed " << Seed << " step " << Step;
          Oct.close(); // compare the closures of the widened iterate too
          Ref.close();
        }
      }
      std::string Diff = diffAgainstDense(Oct, Ref);
      ASSERT_EQ(Diff, "") << "seed " << Seed << " step " << Step << ": "
                          << Diff;
      if (Oct.isBottom())
        freshPair(NumVars, VarCounter, Oct, Ref);
    }
  }
}

//===----------------------------------------------------------------------===//
// Regression tests for the soundness fixes
//===----------------------------------------------------------------------===//

TEST(OctagonBugfix, EmptyRhsIntervalCollapsesToBottom) {
  // `0 % 0` has no defined value: its interval is ⊥, not ⊤. The assignment
  // therefore cannot execute — the state must collapse to ⊥, not havoc x
  // and march on with y=5.
  Octagon O;
  Octagon A = OctagonDomain::transfer(Stmt::mkAssign("y", Expr::mkInt(5)), O);
  ASSERT_FALSE(OctagonDomain::isBottom(A));
  Stmt S = Stmt::mkAssign(
      "x", Expr::mkBinary(BinaryOp::Mod, Expr::mkInt(0), Expr::mkInt(0)));
  Octagon B = OctagonDomain::transfer(S, A);
  EXPECT_TRUE(OctagonDomain::isBottom(B));
}

TEST(OctagonBugfix, TopRhsStillHavocsNotBottom) {
  // The ⊤ half of the old merged branch must keep its behavior: havoc.
  Octagon O;
  Octagon A = OctagonDomain::transfer(Stmt::mkAssign("y", Expr::mkInt(5)), O);
  Stmt S = Stmt::mkAssign(
      "x", Expr::mkBinary(BinaryOp::Div, Expr::mkInt(1), Expr::mkInt(0)));
  Octagon B = OctagonDomain::transfer(S, A); // 1/0 over-approximates to ⊤
  ASSERT_FALSE(OctagonDomain::isBottom(B));
  EXPECT_TRUE(B.closedView().boundsOf(std::string("x")).isTop());
  EXPECT_EQ(B.closedView().boundsOf(std::string("y")), Interval::constant(5));
}

TEST(OctagonBugfix, RawSetClearsClosedFlag) {
  Octagon O;
  O.addVar(std::string("bf_v0"));
  O.addVar(std::string("bf_v1"));
  O.close();
  size_t I0 = O.varIndex(std::string("bf_v0"));
  size_t I1 = O.varIndex(std::string("bf_v1"));
  O.addConstraint(I0, true, npos, true, 2);  // v0 ≤ 2
  O.closeIncremental(I0);
  O.addConstraint(I1, true, I0, false, 3); // v1 − v0 ≤ 3
  O.closeIncremental(I1, I0);
  ASSERT_TRUE(O.isClosed());
  ASSERT_EQ(O.boundsOf(std::string("bf_v1")).hi(), 5);

  // Raising v0's upper bound (2·v0 ≤ 20) must drop the Closed flag: the
  // matrix is no longer its own closure, and readers must not trust it. A
  // no-op write must keep the flag.
  int64_t Raised = 20;
  O.set(2 * I0 + 1, 2 * I0, Raised);
  EXPECT_FALSE(O.isClosed());
  // Re-closure consumes the raise on v0 itself (v1's already-derived bound
  // legitimately survives: raising one entry doesn't undo its consequences).
  EXPECT_EQ(O.closedView().boundsOf(std::string("bf_v0")).hi(), 10);
  EXPECT_EQ(O.closedView().boundsOf(std::string("bf_v1")).hi(), 5);

  Octagon C = O.closedView();
  ASSERT_TRUE(C.isClosed());
  C.set(2 * I0 + 1, 2 * I0, C.at(2 * I0 + 1, 2 * I0)); // no-op write
  EXPECT_TRUE(C.isClosed());

  // A tightening write is NOT exempt: it is unpropagated and can even hide
  // ⊥ (here 2·v0 ≤ −1 with −2·v0 ≤ −... contradiction via v0 ≥ 0).
  Octagon T;
  T.addVar(std::string("bf_t"));
  T.close();
  size_t TI = T.varIndex(std::string("bf_t"));
  T.addConstraint(TI, false, npos, true, 0); // v ≥ 0
  T.closeIncremental(TI);
  ASSERT_TRUE(T.isClosed());
  T.set(2 * TI + 1, 2 * TI, -1); // 2v ≤ −1: tightens, contradicts v ≥ 0
  EXPECT_FALSE(T.isClosed());
  EXPECT_TRUE(OctagonDomain::isBottom(T));
}

TEST(OctagonBugfix, ProgramVariableNamedOctTmpSurvivesSelfAssign) {
  // A program variable literally named "__oct_tmp" used to be silently
  // renamed away by the `x := ±x + c` path in release builds.
  Octagon O;
  Octagon A =
      OctagonDomain::transfer(Stmt::mkAssign("__oct_tmp", Expr::mkInt(7)), O);
  Octagon B = OctagonDomain::transfer(Stmt::mkAssign("x", Expr::mkInt(3)), A);
  Stmt Inc = Stmt::mkAssign(
      "x", Expr::mkBinary(BinaryOp::Add, Expr::mkVar("x"), Expr::mkInt(1)));
  Octagon C = OctagonDomain::transfer(Inc, B);
  ASSERT_FALSE(OctagonDomain::isBottom(C));
  EXPECT_EQ(C.closedView().boundsOf(std::string("x")), Interval::constant(4));
  EXPECT_EQ(C.closedView().boundsOf(std::string("__oct_tmp")),
            Interval::constant(7));
  // And the self-assign works when the temporary dimension is occupied too:
  // __oct_tmp := __oct_tmp + 1 forces a second-generation temporary.
  Stmt IncTmp = Stmt::mkAssign(
      "__oct_tmp",
      Expr::mkBinary(BinaryOp::Add, Expr::mkVar("__oct_tmp"), Expr::mkInt(1)));
  Octagon D = OctagonDomain::transfer(IncTmp, C);
  ASSERT_FALSE(OctagonDomain::isBottom(D));
  EXPECT_EQ(D.closedView().boundsOf(std::string("__oct_tmp")),
            Interval::constant(8));
  EXPECT_EQ(D.closedView().boundsOf(std::string("x")), Interval::constant(4));
}

TEST(OctagonBugfix, SelfAssignOnUntrackedVariableStaysTop) {
  // `x := x + 1` where x carries no constraints (initial ⊤ state, or after
  // normalize() dropped its dimension) must leave x unconstrained — npos
  // leaking into addConstraint used to read as a UNARY constraint on the
  // temporary, unsoundly pinning x to the constant.
  Octagon O;
  Stmt Inc = Stmt::mkAssign(
      "x", Expr::mkBinary(BinaryOp::Add, Expr::mkVar("x"), Expr::mkInt(1)));
  Octagon A = OctagonDomain::transfer(Inc, O);
  ASSERT_FALSE(OctagonDomain::isBottom(A));
  EXPECT_TRUE(A.closedView().boundsOf(std::string("x")).isTop());
}

TEST(OctagonBugfix, ProgramVariableNamedArg0SurvivesEnterCall) {
  // enterCall binds actuals to temporaries inside the caller state; those
  // temporaries must not clobber a program variable named "__arg0" that a
  // later actual still reads.
  Octagon O;
  Octagon A =
      OctagonDomain::transfer(Stmt::mkAssign("__arg0", Expr::mkInt(5)), O);
  Stmt Call =
      Stmt::mkCall("r", "f", {Expr::mkInt(1), Expr::mkVar("__arg0")});
  Octagon Entry = OctagonDomain::enterCall(A, Call, {"p0", "p1"});
  ASSERT_FALSE(OctagonDomain::isBottom(Entry));
  EXPECT_EQ(Entry.closedView().boundsOf(std::string("p0")),
            Interval::constant(1));
  EXPECT_EQ(Entry.closedView().boundsOf(std::string("p1")),
            Interval::constant(5));
}

TEST(OctagonBugfix, RawNegativeDiagonalSurvivesResize) {
  // A raw-set negative self-loop is pending ⊥ evidence; a dimension resize
  // (addVar) in between must not silently reset it to 0.
  Octagon O;
  O.addVar(std::string("rd_a"));
  O.addVar(std::string("rd_b"));
  O.close();
  O.set(0, 0, -1);
  EXPECT_FALSE(O.isClosed());
  O.addVar(std::string("rd_c"));
  EXPECT_TRUE(OctagonDomain::isBottom(O));
}

TEST(OctagonHalfMatrix, StorageCountersTrackHalfMatrix) {
  ClosureCounters Before = closureCounters();
  Octagon O;
  for (unsigned I = 0; I < 4; ++I)
    O.addVar(std::string("sc_v") + std::to_string(I));
  ClosureCounters Delta = closureCounters() - Before;
  // The final allocation holds matSize(8) = 40 cells — under the dense 64 —
  // and the peak gauge saw at least that many bytes.
  EXPECT_GE(Delta.CellsStored, Octagon::matSize(8));
  EXPECT_GE(closureCounters().PeakDbmBytes,
            Octagon::matSize(8) * sizeof(int64_t));
}

} // namespace
