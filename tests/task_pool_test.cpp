//===-- tests/task_pool_test.cpp - Work-stealing pool tests ---------------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The work-stealing TaskPool (support/task_pool.h): every task runs exactly
/// once; exceptions propagate to the caller without wedging the pool; and —
/// the cross-thread counter-aggregation contract — work a task performs
/// against the thread_local counter sinks on a WORKER thread is folded back
/// into the CALLING thread's sinks at the run() barrier, so "read the
/// current thread's counters" stays correct whether or not work was farmed
/// out. Plus unit coverage of the merge primitives themselves
/// (Statistics::mergeFrom, the per-subsystem mergeFrom overloads, and the
/// ThreadCounters snapshot/delta/merge bundle).
///
//===----------------------------------------------------------------------===//

#include "support/task_pool.h"

#include "daig/name.h"
#include "domain/symbol.h"
#include "support/statistics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace dai;

namespace {

TEST(TaskPool, RunsEveryTaskExactlyOnce) {
  TaskPool Pool(4);
  EXPECT_EQ(Pool.parallelism(), 4u);
  constexpr size_t N = 500;
  std::vector<std::atomic<int>> Ran(N);
  std::vector<TaskPool::Task> Tasks;
  for (size_t I = 0; I < N; ++I)
    Tasks.push_back([&Ran, I] { Ran[I].fetch_add(1); });
  Pool.run(std::move(Tasks));
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Ran[I].load(), 1) << "task " << I;
}

TEST(TaskPool, SerialPoolRunsInlineOnCaller) {
  TaskPool Pool(1);
  std::thread::id Caller = std::this_thread::get_id();
  std::vector<std::thread::id> Seen;
  std::vector<TaskPool::Task> Tasks;
  for (int I = 0; I < 8; ++I)
    Tasks.push_back([&Seen] { Seen.push_back(std::this_thread::get_id()); });
  Pool.run(std::move(Tasks));
  ASSERT_EQ(Seen.size(), 8u);
  for (std::thread::id Id : Seen)
    EXPECT_EQ(Id, Caller);
}

TEST(TaskPool, EmptyAndSingleTask) {
  TaskPool Pool(4);
  Pool.run({}); // no-op, must not hang
  int X = 0;
  std::vector<TaskPool::Task> One;
  One.push_back([&X] { X = 42; });
  Pool.run(std::move(One)); // single task: inline fast path
  EXPECT_EQ(X, 42);
}

TEST(TaskPool, ZeroMeansHardwareParallelism) {
  EXPECT_GE(TaskPool::hardwareParallelism(), 1u);
  TaskPool Pool(0);
  EXPECT_EQ(Pool.parallelism(), TaskPool::hardwareParallelism());
}

TEST(TaskPool, ExceptionPropagatesAndPoolSurvives) {
  TaskPool Pool(4);
  std::atomic<int> Others{0};
  std::vector<TaskPool::Task> Tasks;
  for (int I = 0; I < 32; ++I) {
    if (I == 7)
      Tasks.push_back([] { throw std::runtime_error("task 7 boom"); });
    else
      Tasks.push_back([&Others] { Others.fetch_add(1); });
  }
  EXPECT_THROW(Pool.run(std::move(Tasks)), std::runtime_error);
  // A failed task does not cancel its siblings: the barrier still waits for
  // every task, so all 31 non-throwing tasks ran.
  EXPECT_EQ(Others.load(), 31);

  // The pool stays usable after an exceptional run.
  std::atomic<int> After{0};
  std::vector<TaskPool::Task> More;
  for (int I = 0; I < 16; ++I)
    More.push_back([&After] { After.fetch_add(1); });
  Pool.run(std::move(More));
  EXPECT_EQ(After.load(), 16);
}

TEST(TaskPool, MultipleFailuresReportOne) {
  TaskPool Pool(4);
  std::vector<TaskPool::Task> Tasks;
  for (int I = 0; I < 16; ++I)
    Tasks.push_back([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(Pool.run(std::move(Tasks)), std::runtime_error);
}

TEST(TaskPool, RepeatedRoundsStress) {
  // Exercises the park/wake machinery across many barriers with varying
  // task counts (catches lost-wakeup and queue-accounting bugs).
  TaskPool Pool(4);
  for (int Round = 0; Round < 50; ++Round) {
    size_t N = 1 + static_cast<size_t>(Round % 17);
    std::atomic<size_t> Ran{0};
    std::vector<TaskPool::Task> Tasks;
    for (size_t I = 0; I < N; ++I)
      Tasks.push_back([&Ran] { Ran.fetch_add(1); });
    Pool.run(std::move(Tasks));
    EXPECT_EQ(Ran.load(), N) << "round " << Round;
  }
}

//===----------------------------------------------------------------------===//
// Cross-thread counter aggregation: the satellite contract that work done
// on worker threads is counted on the calling thread.
//===----------------------------------------------------------------------===//

TEST(TaskPool, WorkerThreadCountersRepatriateToCaller) {
  TaskPool Pool(4);
  ClosureCounters C0 = closureCounters();
  ZoneCounters Z0 = zoneCounters();
  StagedCounters S0 = stagedCounters();

  constexpr uint64_t PerTask = 7;
  constexpr size_t N = 64;
  std::vector<TaskPool::Task> Tasks;
  for (size_t I = 0; I < N; ++I)
    Tasks.push_back([] {
      // Simulated analysis work against whatever thread runs the task:
      // these sinks are thread_local, so without repatriation the caller
      // would only observe the slice it happened to run itself.
      closureCounters().CellsTouched += PerTask;
      zoneCounters().ClosureVerticesVisited += PerTask;
      stagedCounters().EscalatedTransfers += PerTask;
    });
  Pool.run(std::move(Tasks));

  EXPECT_EQ(closureCounters().CellsTouched - C0.CellsTouched, N * PerTask);
  EXPECT_EQ(zoneCounters().ClosureVerticesVisited - Z0.ClosureVerticesVisited,
            N * PerTask);
  EXPECT_EQ(stagedCounters().EscalatedTransfers - S0.EscalatedTransfers,
            N * PerTask);
}

TEST(TaskPool, PeakGaugeMergesViaMax) {
  TaskPool Pool(4);
  uint64_t Peak0 = closureCounters().PeakDbmBytes;
  uint64_t Target = Peak0 + 1000;
  std::vector<TaskPool::Task> Tasks;
  for (uint64_t I = 1; I <= 8; ++I)
    Tasks.push_back([Target, I] {
      ClosureCounters &C = closureCounters();
      if (Target + I > C.PeakDbmBytes)
        C.PeakDbmBytes = Target + I;
    });
  Pool.run(std::move(Tasks));
  // The caller sees the max of the per-thread peaks, not their sum.
  EXPECT_EQ(closureCounters().PeakDbmBytes, Target + 8);
}

TEST(TaskPool, WorkerInterningLandsInGlobalAtomicCounters) {
  // The name/symbol counters are process-global atomics, so worker-thread
  // interning needs no repatriation step — but it must be visible in the
  // caller's snapshot after the barrier.
  TaskPool Pool(4);
  NameTableCounters Before = nameTableCounters();
  std::vector<TaskPool::Task> Tasks;
  for (int I = 0; I < 8; ++I)
    Tasks.push_back([I] {
      for (int J = 0; J < 10; ++J)
        (void)Name::num(0x7a5cf001u + static_cast<uint64_t>(I) * 10 + J);
    });
  Pool.run(std::move(Tasks));
  NameTableCounters After = nameTableCounters();
  // 80 distinct payloads: first construction of each interns, reruns of the
  // suite hit. Either way the atomic sink recorded all 80 constructions.
  EXPECT_GE((After.NamesInterned - Before.NamesInterned) +
                (After.InternHits - Before.InternHits),
            80u);
}

//===----------------------------------------------------------------------===//
// Merge-primitive unit coverage.
//===----------------------------------------------------------------------===//

TEST(CounterMerge, StatisticsMergeFromAddsAllFields) {
  Statistics A, B;
  A.Transfers = 3;
  A.Joins = 1;
  A.ChecksRechecked = 10;
  B.Transfers = 7;
  B.Widens = 2;
  B.CallSummaries = 5;
  B.AlarmsRaised = 1;
  A.mergeFrom(B);
  EXPECT_EQ(A.Transfers, 10u);
  EXPECT_EQ(A.Joins, 1u);
  EXPECT_EQ(A.Widens, 2u);
  EXPECT_EQ(A.CallSummaries, 5u);
  EXPECT_EQ(A.ChecksRechecked, 10u);
  EXPECT_EQ(A.AlarmsRaised, 1u);
}

TEST(CounterMerge, ClosureMergeAddsCountersMaxesGauge) {
  ClosureCounters A, B;
  A.CellsTouched = 100;
  A.PeakDbmBytes = 4096;
  B.CellsTouched = 50;
  B.PeakDbmBytes = 1024;
  A.mergeFrom(B);
  EXPECT_EQ(A.CellsTouched, 150u);
  EXPECT_EQ(A.PeakDbmBytes, 4096u); // max, not sum
  B.PeakDbmBytes = 1u << 20;
  A.mergeFrom(B);
  EXPECT_EQ(A.PeakDbmBytes, 1u << 20);
}

TEST(CounterMerge, ThreadCountersDeltaAndMergeRoundTrip) {
  ThreadCounters Base = ThreadCounters::snapshot();
  closureCounters().FullCloses += 3;
  zoneCounters().EdgesStored += 5;
  stagedCounters().ZoneTransfers += 7;
  ThreadCounters Delta = ThreadCounters::snapshot().deltaSince(Base);
  EXPECT_EQ(Delta.Closure.FullCloses, 3u);
  EXPECT_EQ(Delta.Zone.EdgesStored, 5u);
  EXPECT_EQ(Delta.Staged.ZoneTransfers, 7u);

  ThreadCounters Agg;
  Agg.addDelta(Delta);
  Agg.addDelta(Delta);
  EXPECT_EQ(Agg.Closure.FullCloses, 6u);
  EXPECT_EQ(Agg.Zone.EdgesStored, 10u);
  EXPECT_EQ(Agg.Staged.ZoneTransfers, 14u);

  ClosureCounters Before = closureCounters();
  Agg.mergeIntoCurrentThread();
  EXPECT_EQ(closureCounters().FullCloses, Before.FullCloses + 6);
}

} // namespace
