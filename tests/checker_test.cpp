//===-- tests/checker_test.cpp - Checker & alarm subsystem tests ----------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The assertion-checking subsystem (analysis/checker.h + checks_db.h):
/// obligation collection and masking, the ⊥-probe verdict rules per check
/// family across the interval/zone/octagon/staged domains, UNREACHABLE on ⊥
/// pre-states, the degraded-provenance clamp (a ⊤-substituted cell can never
/// prove SAFE), ChecksDb bookkeeping, and the core incremental contract:
/// IncrementalChecker verdicts after every random edit are bit-identical to
/// a from-scratch batch re-verification, while re-evaluating strictly fewer
/// obligations than full coverage.
///
//===----------------------------------------------------------------------===//

#include "analysis/checker.h"

#include "domain/interval.h"
#include "domain/octagon.h"
#include "domain/staged.h"
#include "domain/zone.h"
#include "support/budget.h"
#include "tests/test_util.h"
#include "workload/generator.h"

#include <gtest/gtest.h>

#include <map>
#include <utility>

using namespace dai;
using namespace dai::test;

namespace {

//===----------------------------------------------------------------------===//
// Obligation collection
//===----------------------------------------------------------------------===//

TEST(ObligationCollection, DerivesEveryFamilyDeterministically) {
  const char *Src = R"(
    function main(n, d) {
      var a = [1, 2, 3];
      var x = a[n];
      a[x] = n / d;
      assert(x >= 0);
      return x;
    })";
  Function F = mustLowerFn(Src, "main");
  std::vector<Obligation> Obs = collectObligations(F.Body);
  // a[n] read → bounds; a[x] write → bounds; n / d → div-by-zero; assert →
  // user assertion; no +,-,* in sight → no overflow obligations.
  std::map<CheckKind, unsigned> Counts;
  for (const Obligation &Ob : Obs)
    ++Counts[Ob.Kind];
  EXPECT_EQ(Counts[CheckKind::ArrayBounds], 2u);
  EXPECT_EQ(Counts[CheckKind::DivByZero], 1u);
  EXPECT_EQ(Counts[CheckKind::UserAssertion], 1u);
  EXPECT_EQ(Counts[CheckKind::Overflow], 0u);
  // Ascending (EdgeId, SubIndex) order — the DB's determinism contract.
  for (size_t I = 1; I < Obs.size(); ++I)
    EXPECT_TRUE(Obs[I - 1].Edge < Obs[I].Edge ||
                (Obs[I - 1].Edge == Obs[I].Edge &&
                 Obs[I - 1].SubIndex < Obs[I].SubIndex));
}

TEST(ObligationCollection, MaskFiltersFamilies) {
  const char *Src = R"(
    function main(n, d) {
      var x = n / d;
      assert(x > 0);
      return x + 1;
    })";
  Function F = mustLowerFn(Src, "main");
  for (CheckKind K : {CheckKind::UserAssertion, CheckKind::DivByZero,
                      CheckKind::Overflow}) {
    std::vector<Obligation> Obs = collectObligations(F.Body, checkMask(K));
    ASSERT_FALSE(Obs.empty()) << checkKindName(K);
    for (const Obligation &Ob : Obs)
      EXPECT_EQ(Ob.Kind, K);
  }
  EXPECT_TRUE(collectObligations(F.Body, 0u).empty());
}

//===----------------------------------------------------------------------===//
// Verdict rules per domain (typed across the numeric domain stack)
//===----------------------------------------------------------------------===//

template <typename D> class CheckerDomainTest : public ::testing::Test {};
using CheckerDomains =
    ::testing::Types<IntervalDomain, ZoneDomain, OctagonDomain, StagedDomain>;
TYPED_TEST_SUITE(CheckerDomainTest, CheckerDomains, );

/// Evaluates the obligations of `main` in \p Src against a fresh DAIG and
/// returns the database (all families unless \p Mask narrows them).
template <typename D>
ChecksDb verify(const char *Src, uint32_t Mask = kAllChecks) {
  Function F = mustLowerFn(Src, "main");
  Daig<D> G(&F.Body, D::initialEntry(F.Params));
  EXPECT_TRUE(G.valid());
  ChecksDb Db;
  std::vector<Obligation> Obs = collectObligations(F.Body, Mask);
  runChecks<D>(
      Obs, [&](Loc L) { return G.queryLocation(L); },
      [&](Loc L) { return G.locationDegraded(L); }, Db);
  return Db;
}

TYPED_TEST(CheckerDomainTest, ProvenAssertionIsSafe) {
  ChecksDb Db = verify<TypeParam>(R"(
      function main() {
        var x = 5;
        assert(x > 0);
        return x;
      })",
                                  checkMask(CheckKind::UserAssertion));
  ASSERT_EQ(Db.size(), 1u);
  EXPECT_EQ(Db.counts().Safe, 1u);
  EXPECT_FALSE(Db.hasAlarms());
}

TYPED_TEST(CheckerDomainTest, RefutedAssertionIsError) {
  ChecksDb Db = verify<TypeParam>(R"(
      function main() {
        var x = 5;
        assert(x < 0);
        return x;
      })",
                                  checkMask(CheckKind::UserAssertion));
  ASSERT_EQ(Db.size(), 1u);
  EXPECT_EQ(Db.counts().Error, 1u);
  EXPECT_TRUE(Db.hasAlarms());
}

TYPED_TEST(CheckerDomainTest, UnprovenAssertionIsWarning) {
  ChecksDb Db = verify<TypeParam>(R"(
      function main(n) {
        assert(n > 0);
        return n;
      })",
                                  checkMask(CheckKind::UserAssertion));
  ASSERT_EQ(Db.size(), 1u);
  EXPECT_EQ(Db.counts().Warning, 1u);
}

TYPED_TEST(CheckerDomainTest, DeadBranchAssertionIsUnreachable) {
  ChecksDb Db = verify<TypeParam>(R"(
      function main() {
        var x = 1;
        if (x < 0) {
          assert(x == 7);
        }
        return x;
      })",
                                  checkMask(CheckKind::UserAssertion));
  ASSERT_EQ(Db.size(), 1u);
  EXPECT_EQ(Db.counts().Unreachable, 1u);
  EXPECT_FALSE(Db.hasAlarms()) << "vacuous checks are not alarms";
}

TYPED_TEST(CheckerDomainTest, DivByZeroVerdicts) {
  // Nonzero constant divisor: proven safe.
  ChecksDb Safe = verify<TypeParam>(R"(
      function main(n) {
        var x = n / 2;
        return x;
      })",
                                    checkMask(CheckKind::DivByZero));
  ASSERT_EQ(Safe.size(), 1u);
  EXPECT_EQ(Safe.counts().Safe, 1u);

  // Constant zero divisor: refuted on every reaching execution.
  ChecksDb Err = verify<TypeParam>(R"(
      function main(n) {
        var d = 0;
        var x = n / d;
        return x;
      })",
                                   checkMask(CheckKind::DivByZero));
  ASSERT_EQ(Err.size(), 1u);
  EXPECT_EQ(Err.counts().Error, 1u);

  // Unknown divisor: unproven either way.
  ChecksDb Warn = verify<TypeParam>(R"(
      function main(n, d) {
        var x = n % d;
        return x;
      })",
                                    checkMask(CheckKind::DivByZero));
  ASSERT_EQ(Warn.size(), 1u);
  EXPECT_EQ(Warn.counts().Warning, 1u);
}

TEST(CheckerInterval, ArrayBoundsVerdicts) {
  // Constant in-bounds read: proven.
  ChecksDb Safe = verify<IntervalDomain>(R"(
      function main() {
        var a = [1, 2, 3];
        var x = a[1];
        return x;
      })",
                                         checkMask(CheckKind::ArrayBounds));
  ASSERT_EQ(Safe.size(), 1u);
  EXPECT_EQ(Safe.counts().Safe, 1u);

  // Constant out-of-bounds write: refuted.
  ChecksDb Err = verify<IntervalDomain>(R"(
      function main() {
        var a = [1, 2, 3];
        a[5] = 0;
        return a[0];
      })",
                                        checkMask(CheckKind::ArrayBounds));
  EXPECT_GE(Err.counts().Error, 1u);

  // Unknown index: unproven.
  ChecksDb Warn = verify<IntervalDomain>(R"(
      function main(i) {
        var a = [1, 2, 3];
        var x = a[i];
        return x;
      })",
                                         checkMask(CheckKind::ArrayBounds));
  ASSERT_EQ(Warn.size(), 1u);
  EXPECT_EQ(Warn.counts().Warning, 1u);
}

TEST(CheckerInterval, OverflowVerdicts) {
  // Small constant arithmetic: contained in the 32-bit range.
  ChecksDb Safe = verify<IntervalDomain>(R"(
      function main() {
        var x = 1 + 2;
        return x;
      })",
                                         checkMask(CheckKind::Overflow));
  ASSERT_EQ(Safe.size(), 1u);
  EXPECT_EQ(Safe.counts().Safe, 1u);

  // Unbounded operands: unproven.
  ChecksDb Warn = verify<IntervalDomain>(R"(
      function main(n) {
        var x = n + n;
        return x;
      })",
                                         checkMask(CheckKind::Overflow));
  ASSERT_EQ(Warn.size(), 1u);
  EXPECT_EQ(Warn.counts().Warning, 1u);
}

TEST(CheckerUnit, BottomPreStateIsUnreachable) {
  Obligation Ob;
  Ob.Prop = Expr::mkBinary(BinaryOp::Gt, Expr::mkVar("x"), Expr::mkInt(0));
  Statistics Stats;
  EXPECT_EQ(evaluateObligation<IntervalDomain>(Ob, IntervalDomain::bottom(),
                                               /*DegradedPre=*/false, &Stats),
            Verdict::Unreachable);
  EXPECT_EQ(Stats.ChecksEvaluated, 1u);
}

//===----------------------------------------------------------------------===//
// Degraded provenance: a ⊤-substituted cell can never prove SAFE
//===----------------------------------------------------------------------===//

TEST(CheckerDegraded, DbClampsSafeToWarning) {
  ChecksDb Db;
  Statistics Stats;
  CheckResult R;
  R.Kind = CheckKind::UserAssertion;
  R.V = Verdict::Safe;
  R.At = 3;
  R.DegradedPre = true;
  Db.add(R, &Stats);
  EXPECT_EQ(Db.counts().Safe, 0u);
  EXPECT_EQ(Db.counts().Warning, 1u);
  EXPECT_EQ(Db.worstAt(3), Verdict::Warning);
  EXPECT_EQ(Stats.AlarmsRaised, 1u) << "the clamped verdict is an alarm";

  // Non-degraded Safe passes through untouched.
  R.DegradedPre = false;
  R.At = 4;
  Db.add(R, &Stats);
  EXPECT_EQ(Db.counts().Safe, 1u);
  EXPECT_EQ(Db.worstAt(4), Verdict::Safe);
  EXPECT_EQ(Stats.AlarmsRaised, 1u);
}

TEST(CheckerDegraded, ExhaustedBudgetYieldsWarningNotSafe) {
  // assert(0 == 0) holds of ANY state — even the budget's ⊤ substitute —
  // so the entailment probe succeeds; the degraded clamp alone must keep
  // the verdict at WARNING.
  const char *Src = R"(
    function main(n) {
      var i = 0;
      while (i < n) {
        i = i + 1;
      }
      assert(0 == 0);
      return i;
    })";
  Function F = mustLowerFn(Src, "main");
  Daig<IntervalDomain> G(&F.Body, IntervalDomain::initialEntry(F.Params));
  ASSERT_TRUE(G.valid());
  ChecksDb Db;
  Statistics Stats;
  std::vector<Obligation> Obs =
      collectObligations(F.Body, checkMask(CheckKind::UserAssertion));
  ASSERT_EQ(Obs.size(), 1u);
  {
    AnalysisBudget B;
    B.MaxSteps = 2; // exhausts almost immediately
    BudgetScope Scope(B);
    runChecks<IntervalDomain>(
        Obs, [&](Loc L) { return G.queryLocation(L); },
        [&](Loc L) { return G.locationDegraded(L); }, Db, &Stats);
  }
  ASSERT_TRUE(G.locationDegraded(Obs[0].At))
      << "budget must have degraded the checked pre-state";
  ASSERT_EQ(Db.size(), 1u);
  const CheckResult &R = Db.at(Obs[0].At)[0];
  EXPECT_EQ(R.V, Verdict::Warning) << "degraded pre-state proved SAFE";
  EXPECT_TRUE(R.DegradedPre);
  EXPECT_EQ(Stats.AlarmsRaised, 1u);

  // Recovery: dropping the degraded cells re-proves the tautology.
  EXPECT_GT(G.invalidateDegraded(), 0u);
  ChecksDb Clean;
  runChecks<IntervalDomain>(
      Obs, [&](Loc L) { return G.queryLocation(L); },
      [&](Loc L) { return G.locationDegraded(L); }, Clean);
  EXPECT_EQ(Clean.counts().Safe, 1u);
  EXPECT_FALSE(Clean.at(Obs[0].At)[0].DegradedPre);
}

//===----------------------------------------------------------------------===//
// ChecksDb bookkeeping
//===----------------------------------------------------------------------===//

TEST(ChecksDbTest, ReportAndWorstAt) {
  ChecksDb Db = verify<IntervalDomain>(R"(
      function main(i) {
        var a = [1, 2, 3];
        var x = a[i];
        assert(x >= 0);
        a[9] = 1;
        return x;
      })");
  EXPECT_TRUE(Db.hasAlarms());
  std::string Report = Db.report();
  EXPECT_NE(Report.find("[WARNING]"), std::string::npos) << Report;
  EXPECT_NE(Report.find("[ERROR]"), std::string::npos) << Report;
  EXPECT_NE(Report.find("array-bounds"), std::string::npos) << Report;
  EXPECT_NE(Report.find("checks:"), std::string::npos) << Report;
  // worstAt ranks Error over Warning over Safe.
  Verdict Worst = Verdict::Unreachable;
  for (Loc L : Db.locations())
    if (Db.worstAt(L) == Verdict::Error)
      Worst = Verdict::Error;
  EXPECT_EQ(Worst, Verdict::Error);
  // Locations are ascending and at() round-trips the totals.
  std::vector<Loc> Ls = Db.locations();
  size_t N = 0;
  for (size_t I = 0; I < Ls.size(); ++I) {
    if (I) {
      EXPECT_LT(Ls[I - 1], Ls[I]);
    }
    N += Db.at(Ls[I]).size();
  }
  EXPECT_EQ(N, Db.size());
  Db.clear();
  EXPECT_TRUE(Db.empty());
  EXPECT_FALSE(Db.hasAlarms());
}

//===----------------------------------------------------------------------===//
// Incremental-vs-batch equivalence under random edits
//===----------------------------------------------------------------------===//

using VerdictMap =
    std::map<std::pair<EdgeId, uint32_t>, std::pair<CheckKind, Verdict>>;

VerdictMap flatten(const ChecksDb &Db) {
  VerdictMap M;
  for (Loc L : Db.locations())
    for (const CheckResult &R : Db.at(L))
      M[{R.Edge, R.SubIndex}] = {R.Kind, R.V};
  return M;
}

/// From-scratch verification of `main` on a fresh DAIG (the oracle the
/// incremental checker's verdicts must be bit-identical to).
template <typename D> VerdictMap batchVerdicts(Function &Main) {
  Daig<D> Fresh(&Main.Body, D::initialEntry(Main.Params));
  ChecksDb Db;
  std::vector<Obligation> Obs = collectObligations(Main.Body);
  runChecks<D>(
      Obs, [&](Loc L) { return Fresh.queryLocation(L); },
      [&](Loc L) { return Fresh.locationDegraded(L); }, Db);
  return flatten(Db);
}

/// Random-edit equivalence: after EVERY edit the incremental checker's
/// database must match a from-scratch batch verification exactly, and over
/// the run it must re-evaluate strictly fewer obligations than the total it
/// covers (i.e., the cache tiers actually fire).
template <typename D> void runEquivalence(uint64_t Seed, unsigned Edits) {
  WorkloadOptions Opts;
  Opts.Seed = Seed;
  Opts.PctAssertStmt = 20; // workload opt-in: make user assertions common
  WorkloadGenerator Gen(Opts);
  Program P = Gen.makeInitialProgram();
  Function *Main = P.find("main");
  ASSERT_NE(Main, nullptr);
  Statistics Stats;
  Daig<D> G(&Main->Body, D::initialEntry(Main->Params), &Stats);
  ASSERT_TRUE(G.valid());
  IncrementalChecker<D> Inc(G, Main->Body, &Stats);
  Inc.recheck();
  uint64_t Covered = 0; // obligations covered by passes 2..N
  for (unsigned I = 0; I < Edits; ++I) {
    EditRecord Rec = Gen.applyRandomEdit(P);
    if (Rec.Kind == EditKind::InsertStmt)
      G.applyInsertedStatement(Rec.At, Rec.Splice);
    else
      G.rebuild();
    Inc.recheck();
    Covered += Inc.obligationCount();
    VerdictMap Batch = batchVerdicts<D>(*Main);
    ASSERT_EQ(flatten(Inc.db()), Batch)
        << D::name() << " seed " << Seed << " diverged after edit " << I;
  }
  EXPECT_GT(Covered, 0u) << "workload produced no obligations";
  EXPECT_LT(Stats.ChecksRechecked, Covered)
      << "incremental pass re-evaluated everything — no reuse at all";
}

TEST(CheckerIncremental, MatchesBatchInterval) {
  for (uint64_t Seed : {1u, 2u, 3u})
    runEquivalence<IntervalDomain>(Seed, 40);
}

TEST(CheckerIncremental, MatchesBatchZone) {
  for (uint64_t Seed : {1u, 2u, 3u})
    runEquivalence<ZoneDomain>(Seed, 40);
}

} // namespace
