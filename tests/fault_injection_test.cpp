//===-- tests/fault_injection_test.cpp - Deterministic fault tests --------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection (support/fault_injection.h): a cancellation
/// or simulated allocation failure fired at EVERY analysis boundary —
/// cell-evaluation, fix-iteration, closure-kernel, and memo trigger points,
/// across a matrix of seeds and trigger strides — must leave the engine
/// audit-clean (Daig/engine structural invariants hold) and RESUMABLE: a
/// re-demand after disarming yields results bit-identical to a clean,
/// never-faulted run over the same seeded workload program.
///
/// Only built when the DAI_FAULT_INJECTION CMake option is ON (default).
///
//===----------------------------------------------------------------------===//

#include "support/fault_injection.h"

#include "domain/interval.h"
#include "domain/staged.h"
#include "domain/zone.h"
#include "interproc/engine.h"
#include "support/budget.h"
#include "tests/test_util.h"
#include "workload/generator.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

using namespace dai;
using namespace dai::test;

namespace {

/// Disarms the thread's fault plan on scope exit — a test that fails via
/// ASSERT must not leave an armed plan behind for the next test.
struct DisarmGuard {
  ~DisarmGuard() { fi::disarm(); }
};

/// Builds the seeded workload program (a main with loops/branches/calls
/// plus helpers) the fault matrix runs against.
Program workloadProgram(uint64_t Seed, unsigned Edits) {
  WorkloadOptions Opts;
  Opts.Seed = Seed;
  WorkloadGenerator Gen(Opts);
  Program P = Gen.makeInitialProgram();
  for (unsigned I = 0; I < Edits; ++I)
    Gen.applyRandomEdit(P);
  return P;
}

/// Clean-run oracle: every reachable main location's answer, stringified
/// (string equality is the bit-identity proxy the acceptance criteria use).
template <typename D>
std::map<Loc, std::string> cleanAnswers(const Program &P,
                                        const std::vector<Loc> &Locs) {
  InterprocEngine<D> E(P, "main", 1);
  EXPECT_TRUE(E.valid()) << E.error();
  std::map<Loc, std::string> Out;
  for (Loc L : Locs)
    Out[L] = D::toString(E.queryMain(L));
  return Out;
}

/// The core protocol for one (domain, seed, stride, kind) configuration:
/// query every sampled location with the fault plan armed, catching each
/// delivered fault; then assert the structures are audit-clean, disarm,
/// re-demand everything, and compare bit-for-bit against the clean oracle.
template <typename D>
void runFaultMatrixPoint(uint64_t Seed, uint64_t Stride, fi::Kind Kind) {
  SCOPED_TRACE("domain=" + std::string(D::name()) +
               " seed=" + std::to_string(Seed) +
               " stride=" + std::to_string(Stride) +
               " kind=" + (Kind == fi::Kind::Cancel ? "cancel" : "allocfail"));
  Program P = workloadProgram(Seed, /*Edits=*/12);
  WorkloadOptions Opts;
  Opts.Seed = Seed * 977 + 1;
  WorkloadGenerator Sampler(Opts);
  std::vector<Loc> Locs = Sampler.sampleQueryLocations(P, 6);
  ASSERT_FALSE(Locs.empty());
  std::map<Loc, std::string> Oracle = cleanAnswers<D>(P, Locs);

  InterprocEngine<D> E(P, "main", 1);
  ASSERT_TRUE(E.valid()) << E.error();
  CancellationToken Tok;
  AnalysisBudget B;
  B.Cancel = &Tok; // unlimited budget: only the token matters
  BudgetScope Scope(B);
  DisarmGuard Guard;

  fi::Plan Plan;
  Plan.FaultKind = Kind;
  Plan.Stride = Stride;
  Plan.Offset = Seed % Stride;
  Plan.Token = &Tok;
  fi::arm(Plan);

  unsigned Delivered = 0;
  for (Loc L : Locs) {
    try {
      (void)E.queryMain(L);
    } catch (const AnalysisCancelled &) {
      ++Delivered;
      Tok.reset(); // acknowledge; plan stays armed for the next query
    } catch (const fi::SimulatedAllocFailure &) {
      ++Delivered;
    }
  }
  EXPECT_GT(fi::plan().Count, 0u) << "no trigger point was ever reached";

  // Audit while still armed (the audit itself must not be perturbed by and
  // must not advance the schedule — it performs no analysis work).
  EXPECT_EQ(E.auditInvariants(), "")
      << "structures not audit-clean after " << Delivered << " faults";

  fi::disarm();
  Tok.reset();
  for (Loc L : Locs) {
    std::string Got = D::toString(E.queryMain(L));
    EXPECT_EQ(Got, Oracle[L])
        << "re-demand after fault diverged from the clean run at l" << L;
  }
  EXPECT_EQ(E.auditInvariants(), "");
  EXPECT_EQ(E.degradedCellCount(), 0u)
      << "faults alone (no budget limits) must not degrade any cell";
}

/// seeds {1,2,3} × strides {1,2,3,5,7,11} — every trigger-point stride the
/// acceptance criteria call for, for at least 3 seeds.
constexpr uint64_t Seeds[] = {1, 2, 3};
constexpr uint64_t Strides[] = {1, 2, 3, 5, 7, 11};

TEST(FaultInjection, CancelMatrixInterval) {
  for (uint64_t Seed : Seeds)
    for (uint64_t Stride : Strides)
      runFaultMatrixPoint<IntervalDomain>(Seed, Stride, fi::Kind::Cancel);
}

TEST(FaultInjection, AllocFailMatrixInterval) {
  for (uint64_t Seed : Seeds)
    for (uint64_t Stride : Strides)
      runFaultMatrixPoint<IntervalDomain>(Seed, Stride, fi::Kind::AllocFail);
}

TEST(FaultInjection, CancelMatrixZone) {
  // The zone engine exercises the sparse-closure trigger points.
  for (uint64_t Seed : Seeds)
    for (uint64_t Stride : Strides)
      runFaultMatrixPoint<ZoneDomain>(Seed, Stride, fi::Kind::Cancel);
}

TEST(FaultInjection, AllocFailMatrixZone) {
  for (uint64_t Seed : Seeds)
    for (uint64_t Stride : Strides)
      runFaultMatrixPoint<ZoneDomain>(Seed, Stride, fi::Kind::AllocFail);
}

TEST(FaultInjection, AllocFailMatrixStaged) {
  // The staged engine reaches the octagon closure kernels once escalated;
  // a smaller stride set keeps the dense-tier matrix fast.
  for (uint64_t Seed : Seeds)
    for (uint64_t Stride : {1u, 3u, 7u})
      runFaultMatrixPoint<StagedDomain>(Seed, Stride, fi::Kind::AllocFail);
}

TEST(FaultInjection, SiteMaskRestrictsTriggerPoints) {
  // Masked to the memo site only: faults fire exclusively at memo
  // boundaries, proving per-site selectivity of the schedule.
  Program P = workloadProgram(/*Seed=*/1, /*Edits=*/8);
  InterprocEngine<IntervalDomain> E(P, "main", 1);
  ASSERT_TRUE(E.valid());
  DisarmGuard Guard;
  fi::Plan Plan;
  Plan.FaultKind = fi::Kind::AllocFail;
  Plan.Stride = 2;
  Plan.SiteMask = 1u << static_cast<unsigned>(fi::Site::Memo);
  fi::arm(Plan);
  try {
    (void)E.queryMain(E.cfgOf("main")->exit());
  } catch (const fi::SimulatedAllocFailure &) {
  }
  EXPECT_GT(fi::plan().Count, 0u) << "memo site never triggered";
  fi::disarm();
  EXPECT_EQ(E.auditInvariants(), "");
  EXPECT_NO_THROW((void)E.queryMain(E.cfgOf("main")->exit()));
}

TEST(FaultInjection, DisarmedPlanIsInert) {
  fi::disarm();
  // A disarmed trigger point is a no-op — the default-build guarantee that
  // keeps the instrumentation off the measured paths.
  EXPECT_NO_THROW(fi::triggerPoint(fi::Site::CellEval));
  EXPECT_NO_THROW(fi::triggerPoint(fi::Site::Closure));
}

} // namespace
