//===-- tests/shape_domain_test.cpp - Shape domain tests ------------------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The separation-logic list shape domain (Section 7.2): materialization,
/// folding, lattice sanity, and the paper's verification study — `append`
/// (Fig. 1) is memory-safe and returns a well-formed list, converging in one
/// demanded unrolling; likewise for list utilities (foreach/indexOf-style).
///
//===----------------------------------------------------------------------===//

#include "domain/shape.h"

#include "daig/daig.h"
#include "tests/test_util.h"

#include <gtest/gtest.h>

using namespace dai;
using namespace dai::test;

namespace {

ShapeState entryFor(std::initializer_list<std::string> Params) {
  return ShapeDomain::initialEntry(std::vector<std::string>(Params));
}

Stmt assumeEqNull(const std::string &Var, bool Equal) {
  return Stmt::mkAssume(Expr::mkBinary(Equal ? BinaryOp::Eq : BinaryOp::Ne,
                                       Expr::mkVar(Var), Expr::mkNull()));
}

Stmt parseStmt(const std::string &Text) {
  Function F = mustLowerFn("function f() { " + Text + " return 0; }", "f");
  for (const auto &[Id, E] : F.Body.edges())
    if (E.Label.Kind != StmtKind::Skip &&
        !(E.Label.Kind == StmtKind::Assign && E.Label.Lhs == RetVar))
      return E.Label;
  ADD_FAILURE() << "no statement in: " << Text;
  return Stmt::mkSkip();
}

TEST(ShapeDomain, EntryIsWellFormedList) {
  ShapeState S = entryFor({"p"});
  EXPECT_TRUE(ShapeDomain::provesListInvariant(S, "p"));
  EXPECT_TRUE(ShapeDomain::provesMemorySafety(S));
}

TEST(ShapeDomain, AssignNullMakesNull) {
  ShapeState S = entryFor({"p"});
  S = ShapeDomain::transfer(parseStmt("p = null;"), S);
  ASSERT_EQ(S.Disjuncts.size(), 1u);
  EXPECT_EQ(S.Disjuncts[0].Env.at("p"), NilSym);
}

TEST(ShapeDomain, AllocCreatesNonNullSingleton) {
  ShapeState S = entryFor({});
  S = ShapeDomain::transfer(parseStmt("x = new List;"), S);
  ASSERT_EQ(S.Disjuncts.size(), 1u);
  const SymHeap &H = S.Disjuncts[0];
  Sym X = H.Env.at("x");
  EXPECT_NE(X, NilSym);
  EXPECT_TRUE(H.distinct(X, NilSym));
  const HeapAtom *A = H.atomAt(X);
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(A->K, HeapAtom::PtsTo);
  EXPECT_EQ(A->Dst, NilSym);
  EXPECT_TRUE(ShapeDomain::provesListInvariant(S, "x"));
}

TEST(ShapeDomain, DerefOfNullSetsError) {
  ShapeState S = entryFor({"p"});
  S = ShapeDomain::transfer(parseStmt("p = null;"), S);
  S = ShapeDomain::transfer(parseStmt("x = p.next;"), S);
  EXPECT_TRUE(S.Error);
}

TEST(ShapeDomain, DerefOfUnknownSetsError) {
  ShapeState S;
  S.Disjuncts.push_back(SymHeap{}); // empty heap, no knowledge about q
  S = ShapeDomain::transfer(parseStmt("x = q.next;"), S);
  EXPECT_TRUE(S.Error);
}

TEST(ShapeDomain, DerefOfListMaterializes) {
  // p is a well-formed list; p.next is only safe under p != null.
  ShapeState S = entryFor({"p"});
  S = ShapeDomain::transfer(assumeEqNull("p", false), S);
  ASSERT_FALSE(S.isBottom());
  ShapeState After = ShapeDomain::transfer(parseStmt("x = p.next;"), S);
  EXPECT_FALSE(After.Error)
      << "lseg(p, nil) ∧ p ≠ nil materializes p ↦ _ safely";
  EXPECT_FALSE(After.isBottom());
}

TEST(ShapeDomain, AssumeNullPrunesNonNullDisjuncts) {
  ShapeState S = entryFor({"p"});
  ShapeState Null = ShapeDomain::transfer(assumeEqNull("p", true), S);
  ASSERT_EQ(Null.Disjuncts.size(), 1u);
  EXPECT_EQ(Null.Disjuncts[0].Env.at("p"), NilSym);
  ShapeState NonNull = ShapeDomain::transfer(assumeEqNull("p", false), S);
  for (const auto &H : NonNull.Disjuncts)
    EXPECT_TRUE(H.distinct(H.Env.at("p"), NilSym));
}

TEST(ShapeDomain, ContradictoryAssumesAreBottom) {
  ShapeState S = entryFor({"p"});
  S = ShapeDomain::transfer(assumeEqNull("p", true), S);
  S = ShapeDomain::transfer(assumeEqNull("p", false), S);
  EXPECT_TRUE(S.isBottom());
}

TEST(ShapeDomain, FieldWriteLinksCells) {
  ShapeState S = entryFor({});
  S = ShapeDomain::transfer(parseStmt("x = new List;"), S);
  S = ShapeDomain::transfer(parseStmt("y = new List;"), S);
  S = ShapeDomain::transfer(parseStmt("x.next = y;"), S);
  ASSERT_EQ(S.Disjuncts.size(), 1u);
  EXPECT_FALSE(S.Error);
  EXPECT_TRUE(ShapeDomain::provesListInvariant(S, "x"));
  const SymHeap &H = S.Disjuncts[0];
  EXPECT_EQ(H.atomAt(H.Env.at("x"))->Dst, H.Env.at("y"));
}

TEST(ShapeDomain, FoldCollapsesAnonymousChain) {
  // x ↦ m ∗ m ↦ nil with m anonymous folds to lseg(x, nil).
  SymHeap H;
  Sym X = H.fresh(), M = H.fresh();
  H.Env["x"] = X;
  H.Atoms = {HeapAtom{HeapAtom::PtsTo, X, M}, HeapAtom{HeapAtom::PtsTo, M, NilSym}};
  std::sort(H.Atoms.begin(), H.Atoms.end());
  SymHeap Folded = ShapeDomain::fold(H);
  ASSERT_EQ(Folded.Atoms.size(), 1u);
  EXPECT_EQ(Folded.Atoms[0].K, HeapAtom::Lseg);
  EXPECT_EQ(Folded.Atoms[0].Dst, NilSym);
}

TEST(ShapeDomain, FoldKeepsNamedMidpoints) {
  SymHeap H;
  Sym X = H.fresh(), Y = H.fresh();
  H.Env["x"] = X;
  H.Env["y"] = Y;
  H.Atoms = {HeapAtom{HeapAtom::PtsTo, X, Y}, HeapAtom{HeapAtom::PtsTo, Y, NilSym}};
  std::sort(H.Atoms.begin(), H.Atoms.end());
  SymHeap Folded = ShapeDomain::fold(H);
  EXPECT_EQ(Folded.Atoms.size(), 2u) << "named cells must not fold away";
}

TEST(ShapeDomain, JoinDeduplicatesCanonicalForms) {
  ShapeState A = entryFor({"p"});
  ShapeState B = entryFor({"p"});
  ShapeState J = ShapeDomain::join(A, B);
  EXPECT_EQ(J.Disjuncts.size(), 1u);
  EXPECT_TRUE(ShapeDomain::equal(J, A));
}

TEST(ShapeDomain, LatticeSanity) {
  ShapeState Bot = ShapeDomain::bottom();
  ShapeState P = entryFor({"p"});
  EXPECT_TRUE(ShapeDomain::leq(Bot, P));
  EXPECT_TRUE(ShapeDomain::leq(P, P));
  EXPECT_TRUE(ShapeDomain::equal(ShapeDomain::join(Bot, P), P));
  EXPECT_TRUE(ShapeDomain::equal(ShapeDomain::join(P, P), P));
  // Widening is an upper bound.
  ShapeState W = ShapeDomain::widen(Bot, P);
  EXPECT_TRUE(ShapeDomain::leq(P, W));
}

//===----------------------------------------------------------------------===//
// The paper's verification study (Section 7.2 / Section 2)
//===----------------------------------------------------------------------===//

TEST(ShapeAnalysis, AppendVerifiesInOneUnrolling) {
  Function F = mustLowerFn(AppendSource, "append");
  Statistics Stats;
  Daig<ShapeDomain> G(&F.Body, ShapeDomain::initialEntry(F.Params), &Stats);
  ASSERT_TRUE(G.valid());
  ShapeState Exit = G.queryLocation(F.Body.exit());
  // Memory safety: no dereference along any path may fail.
  EXPECT_TRUE(ShapeDomain::provesMemorySafety(Exit))
      << ShapeDomain::toString(Exit);
  // Functional correctness: the returned value is a well-formed list.
  EXPECT_TRUE(ShapeDomain::provesListInvariant(Exit, RetVar))
      << ShapeDomain::toString(Exit);
  // The paper: "Analysis of the ℓ3-to-ℓ4-to-ℓ3 loop ... converges in one
  // demanded unrolling with a precise result."
  EXPECT_EQ(Stats.Unrollings, 1u);
}

TEST(ShapeAnalysis, AppendFromScratchConsistent) {
  Function F = mustLowerFn(AppendSource, "append");
  Daig<ShapeDomain> G(&F.Body, ShapeDomain::initialEntry(F.Params));
  expectFromScratchConsistent<ShapeDomain>(F, G, "append");
}

TEST(ShapeAnalysis, ForeachStyleTraversalIsSafe) {
  // The Buckets.js-style `foreach` (visit every node).
  Function F = mustLowerFn(R"(
    function foreach(list) {
      var cur = list;
      while (cur != null) {
        print(cur);
        cur = cur.next;
      }
      return list;
    })",
                           "foreach");
  Daig<ShapeDomain> G(&F.Body, ShapeDomain::initialEntry(F.Params));
  ShapeState Exit = G.queryLocation(F.Body.exit());
  EXPECT_TRUE(ShapeDomain::provesMemorySafety(Exit))
      << ShapeDomain::toString(Exit);
  EXPECT_TRUE(ShapeDomain::provesListInvariant(Exit, RetVar));
}

TEST(ShapeAnalysis, IndexOfStyleSearchIsSafe) {
  // Buckets.js-style `indexOf`: walk with a counter until a sentinel.
  Function F = mustLowerFn(R"(
    function indexOf(list, key) {
      var cur = list;
      var idx = 0;
      var found = 0 - 1;
      while (cur != null) {
        if (idx == key) {
          found = idx;
        }
        cur = cur.next;
        idx = idx + 1;
      }
      return found;
    })",
                           "indexOf");
  Daig<ShapeDomain> G(&F.Body, ShapeDomain::initialEntry(F.Params));
  ShapeState Exit = G.queryLocation(F.Body.exit());
  EXPECT_TRUE(ShapeDomain::provesMemorySafety(Exit))
      << ShapeDomain::toString(Exit);
}

TEST(ShapeAnalysis, PrependBuildsWellFormedList) {
  Function F = mustLowerFn(R"(
    function prepend(list) {
      var node = new List;
      node.next = list;
      return node;
    })",
                           "prepend");
  Daig<ShapeDomain> G(&F.Body, ShapeDomain::initialEntry(F.Params));
  ShapeState Exit = G.queryLocation(F.Body.exit());
  EXPECT_TRUE(ShapeDomain::provesMemorySafety(Exit));
  EXPECT_TRUE(ShapeDomain::provesListInvariant(Exit, RetVar))
      << ShapeDomain::toString(Exit);
}

TEST(ShapeAnalysis, UnsafeDerefIsReported) {
  // Dereferencing without the null check: the domain must NOT verify it.
  Function F = mustLowerFn(R"(
    function bad(p) {
      var x = p.next;
      return x;
    })",
                           "bad");
  Daig<ShapeDomain> G(&F.Body, ShapeDomain::initialEntry(F.Params));
  ShapeState Exit = G.queryLocation(F.Body.exit());
  EXPECT_FALSE(ShapeDomain::provesMemorySafety(Exit))
      << "p may be null: the dereference must raise the error bit";
}

TEST(ShapeAnalysis, EditAppendThenReverify) {
  // The Section 2.2 interaction: edit `append` (insert a print before the
  // return) and re-verify incrementally.
  Function F = mustLowerFn(AppendSource, "append");
  Statistics Stats;
  Daig<ShapeDomain> G(&F.Body, ShapeDomain::initialEntry(F.Params), &Stats);
  ShapeState Before = G.queryLocation(F.Body.exit());
  EXPECT_TRUE(ShapeDomain::provesMemorySafety(Before));
  uint64_t WidensBefore = Stats.Widens;

  // Find the `__ret = q` edge (the early return) and insert a print above.
  Loc At = InvalidLoc;
  for (const auto &[Id, E] : F.Body.edges())
    if (E.Label.Kind == StmtKind::Assign && E.Label.Lhs == RetVar &&
        E.Label.Rhs && E.Label.Rhs->Kind == ExprKind::Var &&
        E.Label.Rhs->Name == "q")
      At = E.Src;
  ASSERT_NE(At, InvalidLoc);
  InsertResult R = insertStmtAt(F.Body, At, Stmt::mkPrint(Expr::mkVar("p")));
  G.applyInsertedStatement(At, R);
  ShapeState After = G.queryLocation(F.Body.exit());
  EXPECT_TRUE(ShapeDomain::provesMemorySafety(After));
  EXPECT_TRUE(ShapeDomain::provesListInvariant(After, RetVar));
  EXPECT_EQ(Stats.Widens, WidensBefore)
      << "editing the early-return branch must not recompute the loop "
         "fixed point (Fig. 4b)";
  expectFromScratchConsistent<ShapeDomain>(F, G, "append after edit");
}

} // namespace
