//===-- tests/interproc_test.cpp - Interprocedural engine tests -----------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The demanded interprocedural engine (Section 7.1): callee summaries on
/// demand, k-call-string context sensitivity (precision ordering k=2 ≥ k=1 ≫
/// k=0 as in the paper's Section 7.2 study), cross-DAIG invalidation on
/// edits, and recursion rejection.
///
//===----------------------------------------------------------------------===//

#include "interproc/engine.h"

#include "domain/constprop.h"
#include "domain/interval.h"
#include "tests/test_util.h"

#include <gtest/gtest.h>

using namespace dai;
using namespace dai::test;

namespace {

TEST(CallGraph, DetectsDirectRecursion) {
  Program P = mustLower(R"(
    function f(n) { var x = f(n); return x; }
    function main() { var y = f(1); return y; }
  )");
  CallGraph CG = buildCallGraph(P);
  EXPECT_FALSE(CG.valid());
  EXPECT_NE(CG.Error.find("recursive"), std::string::npos);
}

TEST(CallGraph, DetectsMutualRecursion) {
  Program P = mustLower(R"(
    function f(n) { var x = g(n); return x; }
    function g(n) { var x = f(n); return x; }
    function main() { var y = f(1); return y; }
  )");
  EXPECT_FALSE(buildCallGraph(P).valid());
}

TEST(CallGraph, DetectsUndefinedCallee) {
  Program P = mustLower(R"(
    function main() { var y = missing(1); return y; }
  )");
  CallGraph CG = buildCallGraph(P);
  EXPECT_FALSE(CG.valid());
  EXPECT_NE(CG.Error.find("undefined"), std::string::npos);
}

TEST(Interproc, SimpleSummaryFlowsBack) {
  Program P = mustLower(R"(
    function double(x) { return x + x; }
    function main() {
      var a = double(21);
      return a;
    }
  )");
  InterprocEngine<ConstPropDomain> E(std::move(P), "main", 1);
  ASSERT_TRUE(E.valid()) << E.error();
  ConstState Exit = E.queryMain(E.cfgOf("main")->exit());
  EXPECT_EQ(Exit.get(RetVar), std::optional<int64_t>(42));
}

TEST(Interproc, NestedCallsThreeDeep) {
  Program P = mustLower(R"(
    function inc(x) { return x + 1; }
    function inc2(x) { var a = inc(x); var b = inc(a); return b; }
    function main() { var r = inc2(40); return r; }
  )");
  InterprocEngine<ConstPropDomain> E(std::move(P), "main", 2);
  ASSERT_TRUE(E.valid()) << E.error();
  ConstState Exit = E.queryMain(E.cfgOf("main")->exit());
  EXPECT_EQ(Exit.get(RetVar), std::optional<int64_t>(42));
}

TEST(Interproc, ContextInsensitivityJoinsCallSites) {
  const char *Src = R"(
    function id(x) { return x; }
    function main() {
      var a = id(1);
      var b = id(2);
      return a;
    }
  )";
  {
    InterprocEngine<ConstPropDomain> E(mustLower(Src), "main", 0);
    ASSERT_TRUE(E.valid());
    ConstState Exit = E.queryMain(E.cfgOf("main")->exit());
    // k=0 merges both call sites: id's entry is x ∈ {1} ⊔ {2} = ⊤.
    EXPECT_EQ(Exit.get(RetVar), std::nullopt);
  }
  {
    InterprocEngine<ConstPropDomain> E(mustLower(Src), "main", 1);
    ASSERT_TRUE(E.valid());
    ConstState Exit = E.queryMain(E.cfgOf("main")->exit());
    EXPECT_EQ(Exit.get(RetVar), std::optional<int64_t>(1));
  }
}

TEST(Interproc, TwoCallStringsDisambiguateWrappers) {
  // Distinguishing h's value requires the *two* most recent call sites.
  const char *Src = R"(
    function h(x) { return x; }
    function wrap1(x) { var r = h(x); return r; }
    function main() {
      var a = wrap1(10);
      var b = wrap1(20);
      return a + b;
    }
  )";
  {
    InterprocEngine<ConstPropDomain> E(mustLower(Src), "main", 1);
    ASSERT_TRUE(E.valid());
    // k=1: h's context is only [wrap1's call], shared by both outer calls.
    ConstState Exit = E.queryMain(E.cfgOf("main")->exit());
    EXPECT_EQ(Exit.get(RetVar), std::nullopt);
  }
  {
    InterprocEngine<ConstPropDomain> E(mustLower(Src), "main", 2);
    ASSERT_TRUE(E.valid());
    ConstState Exit = E.queryMain(E.cfgOf("main")->exit());
    EXPECT_EQ(Exit.get(RetVar), std::optional<int64_t>(30));
  }
}

TEST(Interproc, UncalledFunctionSummaryIsBottom) {
  Program P = mustLower(R"(
    function unused(x) { return x; }
    function main() { return 1; }
  )");
  InterprocEngine<ConstPropDomain> E(std::move(P), "main", 1);
  ASSERT_TRUE(E.valid());
  (void)E.queryMain(E.cfgOf("main")->exit());
  using Key = InterprocEngine<ConstPropDomain>::InstanceKey;
  ConstState S = E.querySummary(Key{"unused", Context{}});
  EXPECT_TRUE(S.Bottom);
}

TEST(Interproc, EditInCalleeInvalidatesCaller) {
  Program P = mustLower(R"(
    function f(x) { var y = x + 1; return y; }
    function main() { var r = f(10); return r; }
  )");
  InterprocEngine<ConstPropDomain> E(std::move(P), "main", 1);
  ASSERT_TRUE(E.valid());
  EXPECT_EQ(E.queryMain(E.cfgOf("main")->exit()).get(RetVar),
            std::optional<int64_t>(11));

  // Change f's body: y = x + 5.
  EdgeId Target = InvalidEdgeId;
  for (const auto &[Id, Edge] : E.cfgOf("f")->edges())
    if (Edge.Label.toString() == "y = x + 1")
      Target = Id;
  ASSERT_NE(Target, InvalidEdgeId);
  ASSERT_TRUE(E.applyStatementEdit(
      "f", Target,
      Stmt::mkAssign("y", Expr::mkBinary(BinaryOp::Add, Expr::mkVar("x"),
                                         Expr::mkInt(5)))));
  EXPECT_EQ(E.queryMain(E.cfgOf("main")->exit()).get(RetVar),
            std::optional<int64_t>(15));
}

TEST(Interproc, EditInCallerReseedsCallee) {
  Program P = mustLower(R"(
    function f(x) { return x; }
    function main() { var r = f(10); return r; }
  )");
  InterprocEngine<ConstPropDomain> E(std::move(P), "main", 1);
  ASSERT_TRUE(E.valid());
  EXPECT_EQ(E.queryMain(E.cfgOf("main")->exit()).get(RetVar),
            std::optional<int64_t>(10));

  EdgeId Target = InvalidEdgeId;
  for (const auto &[Id, Edge] : E.cfgOf("main")->edges())
    if (Edge.Label.Kind == StmtKind::Call)
      Target = Id;
  ASSERT_NE(Target, InvalidEdgeId);
  ASSERT_TRUE(E.applyStatementEdit(
      "main", Target, Stmt::mkCall("r", "f", {Expr::mkInt(99)})));
  EXPECT_EQ(E.queryMain(E.cfgOf("main")->exit()).get(RetVar),
            std::optional<int64_t>(99));
}

TEST(Interproc, IntervalArgumentBindingKeepsArrayLengths) {
  Program P = mustLower(R"(
    function readAt(a, i) {
      var v = 0;
      if (i >= 0) {
        if (i < a.length) {
          v = a[i];
        }
      }
      return v;
    }
    function main() {
      var arr = [1, 2, 3];
      var x = readAt(arr, 1);
      return x;
    }
  )");
  InterprocEngine<IntervalDomain> E(std::move(P), "main", 1);
  ASSERT_TRUE(E.valid());
  (void)E.queryMain(E.cfgOf("main")->exit());

  // Inside readAt's context, the guarded access must be provably in bounds.
  unsigned Total = 0, Verified = 0;
  SymbolId ReadAt = internSymbol("readAt");
  E.forEachInstance([&](const auto &Key, Daig<IntervalDomain> &G) {
    if (Key.Fn != ReadAt)
      return;
    for (const auto &[Id, Edge] : E.cfgOf("readAt")->edges()) {
      if (!G.info().Reachable[Edge.Src])
        continue;
      IntervalState Pre = G.queryLocation(Edge.Src);
      ObligationSummary Sum = checkArrayObligations(Pre, Edge.Label);
      Total += Sum.Total;
      Verified += Sum.Verified;
    }
  });
  EXPECT_EQ(Total, 1u);
  EXPECT_EQ(Verified, 1u);
}

TEST(Interproc, SummariesAreReusedAcrossQueries) {
  Program P = mustLower(R"(
    function work(x) {
      var i = 0;
      while (i < x) { i = i + 1; }
      return i;
    }
    function main() {
      var a = work(100);
      var b = work(100);
      return a + b;
    }
  )");
  InterprocEngine<IntervalDomain> E(std::move(P), "main", 0);
  ASSERT_TRUE(E.valid());
  (void)E.queryMain(E.cfgOf("main")->exit());
  // With k=0 both call sites share one instance; the second call site must
  // reuse the converged summary rather than re-unrolling the loop.
  EXPECT_EQ(E.instanceCount(), 2u); // main + work
}

} // namespace
