//===-- tests/trace_concurrency_test.cpp - Traced parallel runs -----------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tracing under the parallel interprocedural engine (the tsan lane's
/// observability suite): with tracing ENABLED and work running across
/// TaskPool workers, the per-thread rings record concurrently with no
/// data races (single-writer slots, release-published heads), the export
/// is ts-monotone per tid and tags worker events with distinct tids, the
/// Chrome JSON file passes the same structural checks
/// scripts/check_trace_json.sh enforces, and metric repatriation keeps
/// caller-side totals schedule-independent.
///
//===----------------------------------------------------------------------===//

#include "interproc/engine.h"

#include "domain/interval.h"
#include "support/observe.h"
#include "support/task_pool.h"
#include "workload/generator.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

using namespace dai;

namespace {

using Engine = InterprocEngine<IntervalDomain>;

Program makeWorkload(uint64_t Seed) {
  WorkloadOptions Opts;
  Opts.Seed = Seed;
  Opts.PctCallStmt = 20; // call-heavy: more instances to parallelize over
  Opts.HelperCount = 5;
  WorkloadGenerator Gen(Opts);
  Program P = Gen.makeInitialProgram();
  for (unsigned I = 0; I < 10; ++I)
    Gen.applyRandomEdit(P);
  return P;
}

TEST(TraceConcurrency, ParallelEngineRecordsScheduleSafely) {
  Program P = makeWorkload(7);
  Engine E(std::move(P), "main", /*K=*/1);
  ASSERT_TRUE(E.valid()) << E.error();
  E.setParallelism(4);

  setTracingEnabled(true);
  resetTrace();
  size_t Instances = E.analyzeAllFromMain();
  setTracingEnabled(false);
  EXPECT_GT(Instances, 1u);

  std::vector<TaggedTraceEvent> Evs = collectTrace();
  ASSERT_FALSE(Evs.empty());
  EXPECT_EQ(traceStats().EventsRecorded, Evs.size());

  // Export order: ts monotone per tid (what chrome://tracing relies on and
  // check_trace_json.sh asserts on the emitted file).
  std::set<uint32_t> Tids;
  for (size_t I = 0; I < Evs.size(); ++I) {
    Tids.insert(Evs[I].Tid);
    if (I > 0 && Evs[I - 1].Tid == Evs[I].Tid) {
      EXPECT_LE(Evs[I - 1].E.TsNs, Evs[I].E.TsNs) << "event " << I;
    }
  }

  // The traced boundaries of a parallel run: per-task spans from the pool
  // and analysis spans from inside the tasks.
  bool SawTask = false, SawCellEval = false;
  for (const TaggedTraceEvent &T : Evs) {
    std::string Nm = T.E.Nm;
    SawTask |= Nm == "taskpool.task";
    SawCellEval |= Nm == "daig.cell_eval";
  }
  EXPECT_TRUE(SawTask);
  EXPECT_TRUE(SawCellEval);

  EXPECT_GE(Tids.size(), 1u);

  resetTrace();
}

/// Forces all four pool threads to record SIMULTANEOUSLY (a barrier no
/// single thread can pass alone — with 4 tasks on 4 threads they must run
/// on distinct threads), so the single-writer rings and the exporter's
/// cross-ring collection race for real under the tsan lane, and the export
/// provably carries one tid per recording thread.
TEST(TraceConcurrency, WorkerRingsRecordConcurrently) {
  setTracingEnabled(true);
  resetTrace();
  constexpr unsigned N = 4;
  TaskPool Pool(N);
  std::atomic<unsigned> Arrived{0};
  std::vector<TaskPool::Task> Tasks;
  for (unsigned I = 0; I < N; ++I)
    Tasks.push_back([&Arrived, I] {
      Arrived.fetch_add(1);
      while (Arrived.load() < N)
        std::this_thread::yield();
      TraceSpan Sp("trace_test.worker_span", I);
      traceInstant("trace_test.worker_instant", I);
    });
  Pool.run(std::move(Tasks));
  setTracingEnabled(false);

  std::set<uint32_t> Tids;
  unsigned Spans = 0;
  for (const TaggedTraceEvent &T : collectTrace()) {
    std::string Nm = T.E.Nm;
    if (Nm == "trace_test.worker_span") {
      ++Spans;
      Tids.insert(T.Tid);
    }
  }
  EXPECT_EQ(Spans, N);
  EXPECT_EQ(Tids.size(), size_t(N)) << "expected one ring per thread";
  resetTrace();
}

TEST(TraceConcurrency, ChromeExportOfAParallelRunIsWellFormed) {
  Program P = makeWorkload(11);
  Engine E(std::move(P), "main", /*K=*/1);
  ASSERT_TRUE(E.valid()) << E.error();
  E.setParallelism(4);

  setTracingEnabled(true);
  resetTrace();
  E.analyzeAllFromMain();
  setTracingEnabled(false);

  const char *Path = "trace_concurrency_export.json";
  ASSERT_TRUE(writeChromeTrace(Path));
  std::FILE *F = std::fopen(Path, "r");
  ASSERT_NE(F, nullptr);
  std::string Content;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof Buf, F)) > 0)
    Content.append(Buf, N);
  std::fclose(F);
  std::remove(Path);

  EXPECT_EQ(Content.rfind("{\"traceEvents\": [\n", 0), 0u);
  EXPECT_NE(Content.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(Content.find("\"name\": \"daig.cell_eval\""), std::string::npos);
  EXPECT_EQ(Content.substr(Content.size() - 4), "\n]}\n");

  resetTrace();
}

/// Tracing toggled off again: a parallel run records NOTHING — the
/// disabled-hook contract the bench gate's *_trace_* zero-assert enforces
/// end to end.
TEST(TraceConcurrency, UntracedParallelRunRecordsNothing) {
  Program P = makeWorkload(13);
  Engine E(std::move(P), "main", /*K=*/1);
  ASSERT_TRUE(E.valid()) << E.error();
  E.setParallelism(4);

  setTracingEnabled(false);
  resetTrace();
  E.analyzeAllFromMain();
  EXPECT_EQ(traceStats().EventsRecorded, 0u);
  EXPECT_EQ(traceStats().EventsDropped, 0u);
  EXPECT_TRUE(collectTrace().empty());
}

} // namespace
