//===-- tests/daig_surgical_test.cpp - Surgical insertion tests -----------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The surgical statement-insertion fast path (Daig::applyInsertedStatement):
/// 85% of the paper's workload edits are statement insertions, which must
/// splice locally — no reconstruction — while preserving well-formedness and
/// from-scratch consistency, including insertions inside loop bodies, at
/// latches, at join predecessors, and before loop headers.
///
//===----------------------------------------------------------------------===//

#include "cfg/edits.h"
#include "daig/daig.h"
#include "domain/constprop.h"
#include "support/rng.h"
#include "domain/interval.h"
#include "tests/test_util.h"

#include <gtest/gtest.h>

using namespace dai;
using namespace dai::test;

namespace {

/// Performs the CFG insertion and the surgical DAIG splice.
template <typename D>
bool spliceStmt(Function &F, Daig<D> &G, Loc At, Stmt S) {
  InsertResult R = insertStmtAt(F.Body, At, std::move(S));
  return G.applyInsertedStatement(At, R);
}

Loc destOfStmt(const Cfg &G, const std::string &Text) {
  for (const auto &[Id, E] : G.edges())
    if (E.Label.toString() == Text)
      return E.Dst;
  ADD_FAILURE() << "no edge labelled " << Text;
  return InvalidLoc;
}

TEST(DaigSurgical, InsertIntoStraightLine) {
  Function F = mustLowerFn(R"(
    function main() {
      var x = 1;
      var y = x + 1;
      return y;
    })",
                           "main");
  Daig<ConstPropDomain> G(&F.Body, ConstPropDomain::initialEntry(F.Params));
  (void)G.queryLocation(F.Body.exit());
  Loc At = destOfStmt(F.Body, "x = 1");
  EXPECT_TRUE(spliceStmt(F, G, At, Stmt::mkAssign("x", Expr::mkInt(10))));
  EXPECT_EQ(G.checkWellFormed(), "");
  EXPECT_EQ(G.queryLocation(F.Body.exit()).get(RetVar),
            std::optional<int64_t>(11));
  expectFromScratchConsistent<ConstPropDomain>(F, G, "straight-line splice");
}

TEST(DaigSurgical, InsertPreservesUpstreamValues) {
  Function F = mustLowerFn(R"(
    function main() {
      var a = 1;
      var b = 2;
      var c = 3;
      return c;
    })",
                           "main");
  Statistics Stats;
  Daig<ConstPropDomain> G(&F.Body, ConstPropDomain::initialEntry(F.Params),
                          &Stats);
  (void)G.queryLocation(F.Body.exit());
  uint64_t Before = Stats.Transfers;
  // Insert after `var c = 3` (immediately before return): upstream cells
  // must be untouched; re-query runs exactly two transfers (new statement +
  // the return).
  Loc At = destOfStmt(F.Body, "c = 3");
  EXPECT_TRUE(spliceStmt(F, G, At, Stmt::mkAssign("c", Expr::mkInt(9))));
  EXPECT_EQ(G.queryLocation(F.Body.exit()).get(RetVar),
            std::optional<int64_t>(9));
  EXPECT_EQ(Stats.Transfers - Before, 2u);
}

TEST(DaigSurgical, InsertAtJoinPredecessor) {
  Function F = mustLowerFn(R"(
    function main(n) {
      var x = 0;
      if (n > 0) { x = 1; x = x + 10; } else { x = 2; }
      return x;
    })",
                           "main");
  Daig<IntervalDomain> G(&F.Body, IntervalDomain::initialEntry(F.Params));
  (void)G.queryLocation(F.Body.exit());
  // Insert between `x = 1` and `x = x + 10`: the moved out-edge targets the
  // if-join, exercising the renaming of join-indexed statement cells.
  Loc At = destOfStmt(F.Body, "x = 1");
  EXPECT_TRUE(spliceStmt(
      F, G, At,
      Stmt::mkAssign("x", Expr::mkBinary(BinaryOp::Mul, Expr::mkVar("x"),
                                         Expr::mkInt(2)))));
  EXPECT_EQ(G.checkWellFormed(), "");
  IntervalState Exit = G.queryLocation(F.Body.exit());
  EXPECT_EQ(Exit.get(RetVar).Num, Interval::range(2, 12));
  expectFromScratchConsistent<IntervalDomain>(F, G, "join-pred splice");
}

TEST(DaigSurgical, InsertInsideLoopBodyRollsBack) {
  Function F = mustLowerFn(R"(
    function main(n) {
      var i = 0;
      var s = 0;
      while (i < n) {
        s = s + 2;
        i = i + 1;
      }
      return s;
    })",
                           "main");
  Daig<IntervalDomain> G(&F.Body, IntervalDomain::initialEntry(F.Params));
  (void)G.queryLocation(F.Body.exit());
  EXPECT_GT(G.unrolledLoopCount(), 0u);
  Loc At = destOfStmt(F.Body, "s = s + 2");
  EXPECT_TRUE(spliceStmt(F, G, At, Stmt::mkAssign("s", Expr::mkInt(0))));
  EXPECT_EQ(G.checkWellFormed(), "");
  EXPECT_EQ(G.unrolledLoopCount(), 0u) << "loop must roll back (E-Loop)";
  expectFromScratchConsistent<IntervalDomain>(F, G, "loop-body splice");
}

TEST(DaigSurgical, InsertAtLatchMovesBackEdge) {
  Function F = mustLowerFn(R"(
    function main(n) {
      var i = 0;
      while (i < n) {
        i = i + 1;
      }
      return i;
    })",
                           "main");
  Daig<IntervalDomain> G(&F.Body, IntervalDomain::initialEntry(F.Params));
  (void)G.queryLocation(F.Body.exit());
  // The latch is the destination of `i = i + 1` inside the loop; inserting
  // there re-sources the back edge.
  Loc Latch = destOfStmt(F.Body, "i = i + 1");
  EXPECT_TRUE(spliceStmt(
      F, G, Latch,
      Stmt::mkAssign("i", Expr::mkBinary(BinaryOp::Add, Expr::mkVar("i"),
                                         Expr::mkInt(1)))));
  EXPECT_EQ(G.checkWellFormed(), "");
  expectFromScratchConsistent<IntervalDomain>(F, G, "latch splice");
}

TEST(DaigSurgical, InsertBeforeLoopHeader) {
  Function F = mustLowerFn(R"(
    function main(n) {
      var i = 0;
      while (i < n) {
        i = i + 1;
      }
      return i;
    })",
                           "main");
  Daig<IntervalDomain> G(&F.Body, IntervalDomain::initialEntry(F.Params));
  (void)G.queryLocation(F.Body.exit());
  // The loop header is the destination of `i = 0`; inserting "at" a header
  // splices before the loop (see cfg/edits.h).
  Loc Head = destOfStmt(F.Body, "i = 0");
  EXPECT_TRUE(spliceStmt(F, G, Head, Stmt::mkAssign("i", Expr::mkInt(3))));
  EXPECT_EQ(G.checkWellFormed(), "");
  IntervalState Exit = G.queryLocation(F.Body.exit());
  // i enters the loop as 3; exit guard gives [n≤i] with lower bound 3.
  EXPECT_EQ(Exit.get("i").Num.lo(), 3);
  expectFromScratchConsistent<IntervalDomain>(F, G, "before-header splice");
}

TEST(DaigSurgical, RepeatedSplicesStayConsistent) {
  Function F = mustLowerFn(R"(
    function main(n) {
      var a = 0;
      var b = 1;
      while (a < n) {
        a = a + b;
      }
      if (b > 0) { b = b + a; } else { b = 0; }
      return b;
    })",
                           "main");
  Daig<IntervalDomain> G(&F.Body, IntervalDomain::initialEntry(F.Params));
  (void)G.queryLocation(F.Body.exit());
  Rng R(7);
  for (int Step = 0; Step < 12; ++Step) {
    CfgInfo Info = analyzeCfg(F.Body);
    ASSERT_TRUE(Info.valid());
    std::vector<Loc> Candidates;
    for (Loc L = 0; L < F.Body.numLocs(); ++L)
      if (Info.Reachable[L] && L != F.Body.exit())
        Candidates.push_back(L);
    Loc At = Candidates[R.below(Candidates.size())];
    std::string Var = "v" + std::to_string(R.below(3));
    Stmt S = Stmt::mkAssign(Var, Expr::mkInt(R.range(-5, 5)));
    spliceStmt(F, G, At, S); // fallback to rebuild() is also acceptable
    ASSERT_EQ(G.checkWellFormed(), "") << "step " << Step;
    expectFromScratchConsistent<IntervalDomain>(
        F, G, "random splice step " + std::to_string(Step));
  }
}

} // namespace
