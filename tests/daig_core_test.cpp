//===-- tests/daig_core_test.cpp - DAIG construction & query tests --------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Core DAIG behavior: construction well-formedness, demand-driven query
/// evaluation, demanded unrolling of loops, and from-scratch consistency
/// against the batch interpreter (Theorem 6.1) — on straight-line code,
/// branches, single loops, and nested loops, over interval and constant
/// domains.
///
//===----------------------------------------------------------------------===//

#include "daig/daig.h"

#include "domain/constprop.h"
#include "domain/interval.h"
#include "tests/test_util.h"

#include <gtest/gtest.h>

using namespace dai;
using namespace dai::test;

namespace {

TEST(DaigConstruction, StraightLineIsWellFormed) {
  Function F = mustLowerFn(R"(
    function main() {
      var x = 1;
      var y = x + 2;
      return y;
    })",
                           "main");
  Daig<IntervalDomain> G(&F.Body, IntervalDomain::initialEntry(F.Params));
  ASSERT_TRUE(G.valid());
  EXPECT_EQ(G.checkWellFormed(), "");
  EXPECT_GT(G.cellCount(), 0u);
}

TEST(DaigConstruction, BranchesCreateJoinCells) {
  Function F = mustLowerFn(R"(
    function main(c) {
      var x = 0;
      if (c > 0) { x = 1; } else { x = 2; }
      return x;
    })",
                           "main");
  Daig<IntervalDomain> G(&F.Body, IntervalDomain::initialEntry(F.Params));
  ASSERT_TRUE(G.valid());
  EXPECT_EQ(G.checkWellFormed(), "");
}

TEST(DaigQuery, StraightLineConstants) {
  Function F = mustLowerFn(R"(
    function main() {
      var x = 1;
      var y = x + 2;
      return y;
    })",
                           "main");
  Statistics Stats;
  Daig<ConstPropDomain> G(&F.Body, ConstPropDomain::initialEntry(F.Params),
                          &Stats);
  ConstState Exit = G.queryLocation(F.Body.exit());
  ASSERT_FALSE(Exit.Bottom);
  EXPECT_EQ(Exit.get(RetVar), std::optional<int64_t>(3));
  EXPECT_EQ(Stats.Transfers, 3u); // three statements on the exit path
}

TEST(DaigQuery, RepeatedQueryHitsCellReuse) {
  Function F = mustLowerFn(R"(
    function main() {
      var x = 7;
      return x;
    })",
                           "main");
  Statistics Stats;
  Daig<ConstPropDomain> G(&F.Body, ConstPropDomain::initialEntry(F.Params),
                          &Stats);
  (void)G.queryLocation(F.Body.exit());
  uint64_t TransfersAfterFirst = Stats.Transfers;
  (void)G.queryLocation(F.Body.exit());
  EXPECT_EQ(Stats.Transfers, TransfersAfterFirst)
      << "second query must be served entirely from cells (Q-Reuse)";
  EXPECT_GT(Stats.CellReuses, 0u);
}

TEST(DaigQuery, BranchJoinIntervals) {
  Function F = mustLowerFn(R"(
    function main(c) {
      var x = 0;
      if (c > 0) { x = 1; } else { x = 5; }
      return x;
    })",
                           "main");
  Daig<IntervalDomain> G(&F.Body, IntervalDomain::initialEntry(F.Params));
  IntervalState Exit = G.queryLocation(F.Body.exit());
  ASSERT_FALSE(Exit.Bottom);
  EXPECT_EQ(Exit.get(RetVar).Num, Interval::range(1, 5));
}

TEST(DaigQuery, LoopWithWideningConverges) {
  Function F = mustLowerFn(R"(
    function main() {
      var i = 0;
      while (i < 10) {
        i = i + 1;
      }
      return i;
    })",
                           "main");
  Statistics Stats;
  Daig<IntervalDomain> G(&F.Body, IntervalDomain::initialEntry(F.Params),
                         &Stats);
  IntervalState Exit = G.queryLocation(F.Body.exit());
  ASSERT_FALSE(Exit.Bottom);
  // Widening (applied every iteration, no narrowing) loses the loop's upper
  // bound; the exit guard refines i to [10, +∞).
  EXPECT_EQ(Exit.get("i").Num, Interval::atLeast(10));
  EXPECT_GT(Stats.Unrollings, 0u) << "the loop must be demanded-unrolled";
  EXPECT_EQ(G.checkWellFormed(), "");
}

TEST(DaigQuery, FromScratchConsistencyStraightAndBranch) {
  Function F = mustLowerFn(R"(
    function main(n) {
      var a = 2;
      var b = a * 3;
      if (n > b) { a = a + 1; } else { b = b - a; }
      return a + b;
    })",
                           "main");
  Daig<IntervalDomain> G(&F.Body, IntervalDomain::initialEntry(F.Params));
  expectFromScratchConsistent<IntervalDomain>(F, G);
}

TEST(DaigQuery, FromScratchConsistencyLoop) {
  Function F = mustLowerFn(R"(
    function main(n) {
      var i = 0;
      var s = 0;
      while (i < n) {
        s = s + i;
        i = i + 1;
      }
      return s;
    })",
                           "main");
  Daig<IntervalDomain> G(&F.Body, IntervalDomain::initialEntry(F.Params));
  expectFromScratchConsistent<IntervalDomain>(F, G);
}

TEST(DaigQuery, FromScratchConsistencyNestedLoops) {
  Function F = mustLowerFn(R"(
    function main(n) {
      var i = 0;
      var t = 0;
      while (i < n) {
        var j = 0;
        while (j < i) {
          t = t + 1;
          j = j + 1;
        }
        i = i + 1;
      }
      return t;
    })",
                           "main");
  Daig<IntervalDomain> G(&F.Body, IntervalDomain::initialEntry(F.Params));
  expectFromScratchConsistent<IntervalDomain>(F, G, "nested");
}

TEST(DaigQuery, UnreachableLocationIsBottom) {
  Function F = mustLowerFn(R"(
    function main() {
      return 1;
      return 2;
    })",
                           "main");
  Daig<ConstPropDomain> G(&F.Body, ConstPropDomain::initialEntry(F.Params));
  ConstState Exit = G.queryLocation(F.Body.exit());
  EXPECT_EQ(Exit.get(RetVar), std::optional<int64_t>(1));
}

TEST(DaigQuery, DemandComputesOnlyNeededCells) {
  // Two independent branches; querying a location inside one branch must
  // not force transfers in the other (Section 2.2).
  Function F = mustLowerFn(R"(
    function main(c) {
      var x = 0;
      if (c > 0) {
        x = 1;
        x = x + 1;
        x = x + 1;
      } else {
        x = 5;
        x = x * 2;
        x = x * 2;
      }
      return x;
    })",
                           "main");
  CfgInfo Info = analyzeCfg(F.Body);
  ASSERT_TRUE(Info.valid());
  // Find the location just after `x = 1` (target of the then-branch's first
  // non-assume statement).
  Loc AfterX1 = InvalidLoc;
  for (const auto &[Id, E] : F.Body.edges()) {
    if (E.Label.Kind == StmtKind::Assign && E.Label.Lhs == "x" && E.Label.Rhs &&
        E.Label.Rhs->Kind == ExprKind::IntLit && E.Label.Rhs->IntVal == 1) {
      AfterX1 = E.Dst;
      break;
    }
  }
  ASSERT_NE(AfterX1, InvalidLoc);
  Statistics Stats;
  Daig<ConstPropDomain> G(&F.Body, ConstPropDomain::initialEntry(F.Params),
                          &Stats);
  (void)G.queryLocation(AfterX1);
  // Path to AfterX1: x=0, assume(c>0), x=1 — exactly three transfers.
  EXPECT_EQ(Stats.Transfers, 3u);
}

} // namespace
