//===-- tests/name_intern_test.cpp - Hash-consed Name property suite ------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Safety net for the hash-consed NameTable (daig/name.h): a structural
/// reference oracle — the pre-interning shared_ptr tree implementation,
/// reproduced here verbatim — is driven in lockstep with the interned Name
/// through randomized construction sequences (leaves, pairs, iters, nested
/// interleavings). Equality, the total order, toString, and hashes must be
/// bit-identical to the structural semantics; interning itself must be
/// sound (structurally equal ⇒ same id) and complete (distinct ⇒ distinct
/// ids). Plus directed regressions: kind() on an invalid Name is the
/// well-defined Kind::Invalid sentinel (previously a null dereference), and
/// MemoTable LRU eviction behaves under the new NameId keys.
///
//===----------------------------------------------------------------------===//

#include "daig/name.h"

#include "daig/memo_table.h"
#include "domain/constprop.h"
#include "support/hashing.h"
#include "support/rng.h"
#include "support/statistics.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

using namespace dai;

namespace {

//===----------------------------------------------------------------------===//
// Structural reference oracle: the pre-interning Name, shared_ptr trees with
// recursive structural equality/order — semantics the interned class must
// reproduce exactly.
//===----------------------------------------------------------------------===//

class RefName {
public:
  using Kind = Name::Kind;

  RefName() = default;

  static RefName loc(Loc L) { return leaf(Kind::Loc, L); }
  static RefName fn(FnKind F) {
    return leaf(Kind::Fn, static_cast<uint64_t>(F));
  }
  static RefName num(uint64_t N) { return leaf(Kind::Num, N); }
  static RefName valHash(uint64_t H) { return leaf(Kind::ValHash, H); }
  static RefName pair(const RefName &L, const RefName &R) {
    auto N = std::make_shared<Node>();
    N->K = Kind::Pair;
    N->L = L.Ptr;
    N->R = R.Ptr;
    N->Hash = hashCombine(hashCombine(0x9a17ULL, L.hash()), R.hash());
    return RefName(std::move(N));
  }
  static RefName iter(const RefName &Base, uint32_t Count) {
    auto N = std::make_shared<Node>();
    N->K = Kind::Iter;
    N->A = Count;
    N->L = Base.Ptr;
    N->Hash = hashCombine(hashCombine(0x17e8ULL, Base.hash()), Count);
    return RefName(std::move(N));
  }

  bool valid() const { return Ptr != nullptr; }
  uint64_t hash() const { return Ptr ? Ptr->Hash : 0; }

  bool operator==(const RefName &O) const {
    return nodeEquals(Ptr.get(), O.Ptr.get());
  }
  bool operator<(const RefName &O) const {
    uint64_t HA = hash(), HB = O.hash();
    if (HA != HB)
      return HA < HB;
    return nodeCompare(Ptr.get(), O.Ptr.get()) < 0;
  }

  std::string toString() const { return nodeToString(Ptr.get()); }

private:
  struct Node {
    Kind K;
    uint64_t A = 0;
    std::shared_ptr<const Node> L, R;
    uint64_t Hash = 0;
  };
  std::shared_ptr<const Node> Ptr;

  explicit RefName(std::shared_ptr<const Node> N) : Ptr(std::move(N)) {}

  static RefName leaf(Kind K, uint64_t A) {
    auto N = std::make_shared<Node>();
    N->K = K;
    N->A = A;
    N->Hash = hashValues(static_cast<uint64_t>(K) + 0x51ULL, A);
    return RefName(std::move(N));
  }

  static bool nodeEquals(const Node *A, const Node *B) {
    if (A == B)
      return true;
    if (!A || !B)
      return false;
    if (A->Hash != B->Hash || A->K != B->K || A->A != B->A)
      return false;
    return nodeEquals(A->L.get(), B->L.get()) &&
           nodeEquals(A->R.get(), B->R.get());
  }

  static int nodeCompare(const Node *A, const Node *B) {
    if (A == B)
      return 0;
    if (!A)
      return -1;
    if (!B)
      return 1;
    if (A->K != B->K)
      return A->K < B->K ? -1 : 1;
    if (A->A != B->A)
      return A->A < B->A ? -1 : 1;
    if (int C = nodeCompare(A->L.get(), B->L.get()))
      return C;
    return nodeCompare(A->R.get(), B->R.get());
  }

  static std::string nodeToString(const Node *N) {
    if (!N)
      return "<invalid>";
    std::ostringstream OS;
    switch (N->K) {
    case Kind::Loc:
      OS << "l" << N->A;
      break;
    case Kind::Fn:
      OS << fnKindName(static_cast<FnKind>(N->A));
      break;
    case Kind::Num:
      OS << N->A;
      break;
    case Kind::ValHash:
      OS << "#" << std::hex << N->A;
      break;
    case Kind::Pair:
      OS << nodeToString(N->L.get()) << "." << nodeToString(N->R.get());
      break;
    case Kind::Iter:
      OS << nodeToString(N->L.get()) << "(" << N->A << ")";
      break;
    case Kind::Invalid:
      break; // the oracle never builds Invalid nodes
    }
    return OS.str();
  }
};

/// One lockstep-constructed pair of names.
struct Pair {
  Name N;
  RefName R;
};

/// Builds a random name through BOTH implementations with the identical
/// construction sequence, reusing earlier names as pair/iter children so
/// interleaved nesting (pairs of iters of pairs …) and cross-tree sharing
/// both occur.
Pair randomName(Rng &Rng, std::vector<Pair> &Pool) {
  uint64_t Roll = Rng.below(100);
  if (Pool.size() >= 2 && Roll < 30) {
    const Pair &L = Pool[Rng.below(Pool.size())];
    const Pair &R = Pool[Rng.below(Pool.size())];
    return Pair{Name::pair(L.N, R.N), RefName::pair(L.R, R.R)};
  }
  if (!Pool.empty() && Roll < 55) {
    const Pair &B = Pool[Rng.below(Pool.size())];
    uint32_t Count = static_cast<uint32_t>(Rng.below(4));
    return Pair{Name::iter(B.N, Count), RefName::iter(B.R, Count)};
  }
  // Leaves draw from small pools so collisions (re-interning) are common.
  switch (Rng.below(4)) {
  case 0: {
    Loc L = static_cast<Loc>(Rng.below(6));
    return Pair{Name::loc(L), RefName::loc(L)};
  }
  case 1: {
    FnKind F = static_cast<FnKind>(Rng.below(4));
    return Pair{Name::fn(F), RefName::fn(F)};
  }
  case 2: {
    uint64_t V = Rng.below(5);
    return Pair{Name::num(V), RefName::num(V)};
  }
  default: {
    uint64_t H = Rng.below(7) * 0x9e3779b9ULL;
    return Pair{Name::valHash(H), RefName::valHash(H)};
  }
  }
}

//===----------------------------------------------------------------------===//
// The lockstep property suite
//===----------------------------------------------------------------------===//

TEST(NameIntern, LockstepEqualityOrderToStringHash) {
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    Rng R(Seed);
    std::vector<Pair> Pool;
    for (unsigned Step = 0; Step < 120; ++Step)
      Pool.push_back(randomName(R, Pool));

    for (const Pair &P : Pool) {
      EXPECT_EQ(P.N.hash(), P.R.hash()) << P.R.toString();
      EXPECT_EQ(P.N.toString(), P.R.toString());
      EXPECT_TRUE(P.N.valid());
    }
    for (size_t I = 0; I < Pool.size(); ++I) {
      for (size_t J = 0; J < Pool.size(); ++J) {
        const Pair &A = Pool[I], &B = Pool[J];
        bool RefEq = A.R == B.R;
        EXPECT_EQ(A.N == B.N, RefEq)
            << A.R.toString() << " vs " << B.R.toString();
        // Hash-consing: structural equality ⟺ id equality.
        EXPECT_EQ(A.N.id() == B.N.id(), RefEq);
        EXPECT_EQ(A.N < B.N, A.R < B.R)
            << A.R.toString() << " vs " << B.R.toString();
      }
    }
  }
}

TEST(NameIntern, TotalOrderIsStrictWeak) {
  Rng R(99);
  std::vector<Pair> Pool;
  for (unsigned Step = 0; Step < 60; ++Step)
    Pool.push_back(randomName(R, Pool));
  for (size_t I = 0; I < Pool.size(); ++I) {
    EXPECT_FALSE(Pool[I].N < Pool[I].N) << "irreflexive";
    for (size_t J = 0; J < Pool.size(); ++J) {
      bool AB = Pool[I].N < Pool[J].N;
      bool BA = Pool[J].N < Pool[I].N;
      if (Pool[I].N == Pool[J].N)
        EXPECT_TRUE(!AB && !BA) << "equal names are unordered";
      else
        EXPECT_NE(AB, BA) << "distinct names are strictly ordered";
    }
  }
}

TEST(NameIntern, HashStableAcrossInterleavedNesting) {
  // The same structure reached through different construction orders (and
  // at different times) must be the same id with the same hash.
  Name A1 = Name::iter(Name::pair(Name::loc(3), Name::num(1)), 2);
  Name Deep = Name::pair(A1, Name::iter(A1, 0));
  // Rebuild from scratch, children first in a different order.
  Name NumFirst = Name::num(1);
  Name LocSecond = Name::loc(3);
  Name A2 = Name::iter(Name::pair(LocSecond, NumFirst), 2);
  Name Deep2 = Name::pair(A2, Name::iter(A2, 0));
  EXPECT_EQ(A1.id(), A2.id());
  EXPECT_EQ(Deep.id(), Deep2.id());
  EXPECT_EQ(Deep.hash(), Deep2.hash());
  EXPECT_EQ(Deep, Deep2);
  EXPECT_EQ(Deep.toString(), "l3.1(2).l3.1(2)(0)");
}

TEST(NameIntern, AccessorsRoundTrip) {
  Name L = Name::loc(7);
  EXPECT_EQ(L.kind(), Name::Kind::Loc);
  EXPECT_EQ(L.locId(), 7u);
  Name F = Name::fn(FnKind::Widen);
  EXPECT_EQ(F.kind(), Name::Kind::Fn);
  EXPECT_EQ(F.fnKind(), FnKind::Widen);
  Name N = Name::num(42);
  EXPECT_EQ(N.numValue(), 42u);
  Name V = Name::valHash(0xdead);
  EXPECT_EQ(V.hashValue(), 0xdeadu);
  Name P = Name::pair(L, N);
  EXPECT_EQ(P.kind(), Name::Kind::Pair);
  EXPECT_EQ(P.left(), L);
  EXPECT_EQ(P.right(), N);
  Name I = Name::iter(P, 3);
  EXPECT_EQ(I.kind(), Name::Kind::Iter);
  EXPECT_EQ(I.iterBase(), P);
  EXPECT_EQ(I.iterCount(), 3u);
}

/// Regression: the pre-interning kind() dereferenced a null node on a
/// default-constructed Name (undefined behavior); it now returns the
/// documented Kind::Invalid sentinel, and the other invalid-name queries
/// stay well-defined too.
TEST(NameIntern, InvalidNameIsWellDefined) {
  Name Invalid;
  EXPECT_FALSE(Invalid.valid());
  EXPECT_EQ(Invalid.kind(), Name::Kind::Invalid);
  EXPECT_EQ(Invalid.hash(), 0u);
  EXPECT_EQ(Invalid.id(), kNoName);
  EXPECT_EQ(Invalid.toString(), "<invalid>");
  EXPECT_EQ(Invalid, Name());
  // The structural order puts the invalid name below every valid one
  // whenever hashes tie (and hash 0 ties with nothing in practice).
  Name SomeName = Name::loc(0);
  EXPECT_NE(Invalid, SomeName);
  EXPECT_TRUE(Invalid < SomeName || SomeName < Invalid) << "still ordered";
}

TEST(NameIntern, CountersTrackHitsAndGrowth) {
  NameTableCounters Before = nameTableCounters();
  // A fresh, never-before-interned leaf (value chosen to be unique to this
  // test) grows the table; re-constructing it is a hit.
  Name A = Name::valHash(0x5eedf00d12345678ULL);
  NameTableCounters AfterNew = nameTableCounters();
  EXPECT_EQ(AfterNew.NamesInterned, Before.NamesInterned + 1);
  Name B = Name::valHash(0x5eedf00d12345678ULL);
  NameTableCounters AfterHit = nameTableCounters();
  EXPECT_EQ(AfterHit.NamesInterned, AfterNew.NamesInterned);
  EXPECT_EQ(AfterHit.InternHits, AfterNew.InternHits + 1);
  EXPECT_EQ(A.id(), B.id());
  EXPECT_GT(AfterHit.NameTableBytes, 0u);
}

//===----------------------------------------------------------------------===//
// MemoTable under NameId keys
//===----------------------------------------------------------------------===//

TEST(NameIntern, MemoTableLruEvictionUnderIdKeys) {
  Statistics Stats;
  MemoTable<ConstPropDomain> M(/*MaxEntries=*/3);
  M.attachStatistics(&Stats);
  // Structurally rich keys (not just leaves): separately constructed but
  // structurally equal names must alias the same entry via the same id.
  auto key = [](uint64_t I) {
    return Name::pair(Name::fn(FnKind::Transfer),
                      Name::pair(Name::valHash(I), Name::num(I % 3)));
  };
  for (uint64_t I = 0; I < 5; ++I) {
    ConstState V;
    V.setVar("x", static_cast<int64_t>(I));
    M.store(key(I), V);
  }
  EXPECT_EQ(M.size(), 3u);
  // Insertion order was recency order: 0 and 1 were evicted.
  EXPECT_FALSE(M.lookup(key(0)).has_value());
  EXPECT_FALSE(M.lookup(key(1)).has_value());
  ASSERT_TRUE(M.lookup(key(4)).has_value());
  EXPECT_EQ(M.lookup(key(4))->get("x"), std::optional<int64_t>(4));
  EXPECT_EQ(Stats.MemoEvictions, 2u);

  // Touch the oldest survivor; the next store must evict key(3) instead.
  EXPECT_TRUE(M.lookup(key(2)).has_value());
  ConstState V5;
  V5.setVar("x", 5);
  M.store(key(5), V5);
  EXPECT_TRUE(M.lookup(key(2)).has_value()) << "touched: survives";
  EXPECT_FALSE(M.lookup(key(3)).has_value()) << "LRU under id keys: evicted";
  EXPECT_EQ(M.lookup(key(5))->get("x"), std::optional<int64_t>(5));
}

} // namespace
