//===-- tests/workload_test.cpp - Workload generator & stress tests -------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 7.3 workload generator: determinism under fixed seeds
/// (configurations must see identical edit/query streams), the 85/10/5 edit
/// mix, preservation of CFG well-formedness over long edit sequences — and
/// the strongest end-to-end property test in the suite: long randomized
/// edit/query runs on a live DAIG, checking from-scratch consistency
/// against the batch oracle at every step (Theorem 6.1 under edits).
///
//===----------------------------------------------------------------------===//

#include "workload/generator.h"

#include "domain/constprop.h"
#include "domain/interval.h"
#include "domain/octagon.h"
#include "tests/test_util.h"

#include <gtest/gtest.h>

using namespace dai;
using namespace dai::test;

namespace {

TEST(Workload, DeterministicUnderSeed) {
  auto run = [](uint64_t Seed) {
    WorkloadOptions Opts;
    Opts.Seed = Seed;
    WorkloadGenerator Gen(Opts);
    Program P = Gen.makeInitialProgram();
    std::string Trace;
    for (int I = 0; I < 60; ++I) {
      EditRecord R = Gen.applyRandomEdit(P);
      Trace += std::to_string(static_cast<int>(R.Kind)) + ":" +
               std::to_string(R.At) + ";";
    }
    Trace += P.find("main")->Body.toString();
    return Trace;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(Workload, EditMixMatchesConfiguredProbabilities) {
  WorkloadOptions Opts;
  Opts.Seed = 3;
  WorkloadGenerator Gen(Opts);
  Program P = Gen.makeInitialProgram();
  unsigned Counts[3] = {0, 0, 0};
  const unsigned N = 1200;
  for (unsigned I = 0; I < N; ++I) {
    EditRecord R = Gen.applyRandomEdit(P);
    ++Counts[static_cast<int>(R.Kind)];
  }
  // 85% / 10% / 5% within generous statistical slack.
  EXPECT_NEAR(Counts[0] / double(N), 0.85, 0.04);
  EXPECT_NEAR(Counts[1] / double(N), 0.10, 0.03);
  EXPECT_NEAR(Counts[2] / double(N), 0.05, 0.03);
}

TEST(Workload, LongEditSequencePreservesWellFormedCfg) {
  WorkloadOptions Opts;
  Opts.Seed = 11;
  WorkloadGenerator Gen(Opts);
  Program P = Gen.makeInitialProgram();
  for (int I = 0; I < 400; ++I)
    Gen.applyRandomEdit(P);
  CfgInfo Info = analyzeCfg(P.find("main")->Body);
  EXPECT_TRUE(Info.valid()) << Info.Error;
  EXPECT_GT(Info.LoopBackEdge.size(), 0u) << "some whiles must have landed";
  EXPECT_GT(Info.JoinPoints.size(), 0u);
}

TEST(Workload, QueriesAreReachableLocations) {
  WorkloadOptions Opts;
  Opts.Seed = 5;
  WorkloadGenerator Gen(Opts);
  Program P = Gen.makeInitialProgram();
  for (int I = 0; I < 50; ++I)
    Gen.applyRandomEdit(P);
  CfgInfo Info = analyzeCfg(P.find("main")->Body);
  for (Loc Q : Gen.sampleQueryLocations(P, 40))
    EXPECT_TRUE(Info.Reachable[Q]);
}

//===----------------------------------------------------------------------===//
// End-to-end stress: randomized edits + from-scratch consistency
//===----------------------------------------------------------------------===//

/// Applies \p Edits generator edits to a single-function DAIG (surgical path
/// for statement insertions, rebuild otherwise), checking consistency with
/// the batch oracle after every step.
template <typename D>
void stressDaig(uint64_t Seed, unsigned Edits, unsigned CheckEvery) {
  WorkloadOptions Opts;
  Opts.Seed = Seed;
  Opts.PctCallStmt = 0; // intraprocedural: the oracle has no call resolver
  WorkloadGenerator Gen(Opts);
  Program P = Gen.makeInitialProgram();
  Function &Main = *P.find("main");
  Daig<D> G(&Main.Body, D::initialEntry(Main.Params));
  ASSERT_TRUE(G.valid());
  for (unsigned I = 0; I < Edits; ++I) {
    EditRecord R = Gen.applyRandomEdit(P);
    if (R.Kind == EditKind::InsertStmt)
      G.applyInsertedStatement(R.At, R.Splice);
    else
      G.rebuild();
    for (Loc Q : Gen.sampleQueryLocations(P, 3))
      (void)G.queryLocation(Q);
    ASSERT_EQ(G.checkWellFormed(), "") << "edit " << I;
    if (I % CheckEvery == 0) {
      ASSERT_EQ(G.checkAiConsistency(), "") << "edit " << I;
      SCOPED_TRACE("edit " + std::to_string(I));
      expectFromScratchConsistent<D>(Main, G);
      if (::testing::Test::HasFailure())
        return; // one detailed failure beats a cascade
    }
  }
}

class WorkloadStressSeed : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WorkloadStressSeed, ConstPropStaysConsistent) {
  stressDaig<ConstPropDomain>(GetParam(), 60, 5);
}

TEST_P(WorkloadStressSeed, IntervalStaysConsistent) {
  stressDaig<IntervalDomain>(GetParam(), 45, 5);
}

TEST_P(WorkloadStressSeed, OctagonStaysConsistent) {
  stressDaig<OctagonDomain>(GetParam(), 25, 6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkloadStressSeed,
                         ::testing::Values(101u, 202u, 303u, 404u));

} // namespace
