//===-- tests/parallel_engine_test.cpp - Parallel vs serial engine --------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel interprocedural engine's equivalence contract
/// (InterprocEngine::setParallelism): over randomized Section 7.3 workloads
/// and directed call-graph shapes, analyzeAllFromMain at threads ∈
/// {1, 2, 4, 8} must produce bit-identical answers to the serial engine —
/// the same instance set, D::equal states at every location of every
/// instance, and identical checker verdicts — with a clean cross-DAIG
/// invariant audit afterwards. threads=1 must additionally reproduce the
/// serial engine's Statistics counters EXACTLY (it takes the serial code
/// path by construction), and a fixed thread count must be deterministic:
/// two runs over the same program report identical counters.
///
//===----------------------------------------------------------------------===//

#include "interproc/engine.h"

#include "analysis/checker.h"
#include "analysis/checks_db.h"
#include "domain/constprop.h"
#include "domain/interval.h"
#include "tests/test_util.h"
#include "workload/generator.h"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

using namespace dai;
using namespace dai::test;

namespace {

using Engine = InterprocEngine<IntervalDomain>;
using Key = Engine::InstanceKey;

std::string statsString(const Statistics &S) {
  std::ostringstream OS;
  OS << S;
  return OS.str();
}

/// Every (instance, location) state of a fully analyzed engine, keyed
/// printably for failure messages.
std::map<std::string, IntervalState> snapshotStates(Engine &E) {
  std::map<std::string, IntervalState> Out;
  E.forEachInstance([&](const Key &K, Daig<IntervalDomain> &G) {
    const Cfg *C = E.cfgOf(K.Fn);
    CfgInfo Info = analyzeCfg(*C);
    for (Loc L : Info.Rpo)
      Out.emplace(K.toString() + "@l" + std::to_string(L),
                  G.queryLocation(L));
  });
  return Out;
}

void expectSameStates(const std::map<std::string, IntervalState> &Serial,
                      const std::map<std::string, IntervalState> &Parallel,
                      const std::string &What) {
  ASSERT_EQ(Serial.size(), Parallel.size()) << What << ": instance/location "
                                            << "set differs";
  auto SIt = Serial.begin();
  auto PIt = Parallel.begin();
  for (; SIt != Serial.end(); ++SIt, ++PIt) {
    ASSERT_EQ(SIt->first, PIt->first) << What;
    EXPECT_TRUE(IntervalDomain::equal(SIt->second, PIt->second))
        << What << " at " << SIt->first << "\n  serial:   "
        << IntervalDomain::toString(SIt->second) << "\n  parallel: "
        << IntervalDomain::toString(PIt->second);
  }
}

/// Checker verdict tallies over every obligation of every instance.
VerdictCounts verdictsOf(Engine &E) {
  std::map<SymbolId, std::vector<Obligation>> ObsByFn;
  for (const auto &[FnName, F] : E.program().Functions)
    ObsByFn[internSymbol(FnName)] = collectObligations(F.Body, kAllChecks);
  VerdictCounts Counts;
  ChecksDb Db;
  E.forEachInstance([&](const Key &K, Daig<IntervalDomain> &G) {
    const auto &Obs = ObsByFn[K.Fn];
    if (Obs.empty())
      return;
    Counts += runChecks<IntervalDomain>(
        Obs, [&](Loc L) { return G.queryLocation(L); },
        [&](Loc L) { return G.locationDegraded(L); }, Db,
        &E.statistics());
  });
  return Counts;
}

Program makeWorkload(uint64_t Seed, unsigned Edits) {
  WorkloadOptions Opts;
  Opts.Seed = Seed;
  Opts.PctCallStmt = 20; // call-heavy: more instances to parallelize over
  Opts.PctAssertStmt = 10;
  Opts.HelperCount = 5;
  WorkloadGenerator Gen(Opts);
  Program P = Gen.makeInitialProgram();
  for (unsigned I = 0; I < Edits; ++I)
    Gen.applyRandomEdit(P);
  return P;
}

class ParallelEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelEquivalence, BitIdenticalAnswersAcrossThreadCounts) {
  Program P = makeWorkload(GetParam(), /*Edits=*/25);

  // Serial oracle first — this also pre-interns every gensym/symbol the
  // program can demand, making the later parallel counter runs
  // schedule-independent.
  Engine Serial(P, "main", /*K=*/1);
  ASSERT_TRUE(Serial.valid()) << Serial.error();
  size_t SerialInstances = Serial.analyzeAllFromMain();
  auto SerialStates = snapshotStates(Serial);
  VerdictCounts SerialVerdicts = verdictsOf(Serial);
  EXPECT_EQ(Serial.auditInvariants(), "");

  for (unsigned T : {1u, 2u, 4u, 8u}) {
    Engine Par(P, "main", /*K=*/1);
    ASSERT_TRUE(Par.valid()) << Par.error();
    Par.setParallelism(T);
    EXPECT_EQ(Par.parallelism(), T);
    size_t ParInstances = Par.analyzeAllFromMain();
    EXPECT_EQ(ParInstances, SerialInstances) << "threads=" << T;
    auto ParStates = snapshotStates(Par);
    expectSameStates(SerialStates, ParStates,
                     "threads=" + std::to_string(T));
    VerdictCounts ParVerdicts = verdictsOf(Par);
    EXPECT_EQ(ParVerdicts.Safe, SerialVerdicts.Safe) << "threads=" << T;
    EXPECT_EQ(ParVerdicts.Warning, SerialVerdicts.Warning)
        << "threads=" << T;
    EXPECT_EQ(ParVerdicts.Error, SerialVerdicts.Error) << "threads=" << T;
    EXPECT_EQ(ParVerdicts.Unreachable, SerialVerdicts.Unreachable)
        << "threads=" << T;
    EXPECT_EQ(Par.auditInvariants(), "") << "threads=" << T;
  }
}

TEST_P(ParallelEquivalence, ThreadsOneCountersBitIdenticalToSerial) {
  Program P = makeWorkload(GetParam(), /*Edits=*/15);

  Engine Serial(P, "main", /*K=*/1);
  ASSERT_TRUE(Serial.valid()) << Serial.error();
  Serial.analyzeAllFromMain();

  // threads=1 dispatches to the serial path — EVERY counter must match,
  // not just the answers (this is what keeps the CI gate baselines valid).
  Engine One(P, "main", /*K=*/1);
  ASSERT_TRUE(One.valid());
  One.setParallelism(1);
  One.analyzeAllFromMain();
  EXPECT_EQ(statsString(One.statistics()), statsString(Serial.statistics()));
}

TEST_P(ParallelEquivalence, FixedThreadCountIsDeterministic) {
  Program P = makeWorkload(GetParam(), /*Edits=*/15);

  // Warm-up serial run pre-interns the vocabulary (see above), so the two
  // measured parallel runs see identical intern-table state.
  {
    Engine Warm(P, "main", /*K=*/1);
    ASSERT_TRUE(Warm.valid());
    Warm.analyzeAllFromMain();
  }

  auto runOnce = [&P](unsigned T) {
    Engine E(P, "main", /*K=*/1);
    EXPECT_TRUE(E.valid());
    E.setParallelism(T);
    E.analyzeAllFromMain();
    return statsString(E.statistics());
  };
  for (unsigned T : {2u, 4u}) {
    std::string First = runOnce(T);
    std::string Second = runOnce(T);
    EXPECT_EQ(First, Second) << "threads=" << T
                             << ": repeat run reported different counters";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelEquivalence,
                         ::testing::Values(101u, 202u, 303u, 404u));

//===----------------------------------------------------------------------===//
// Directed shapes: small programs whose exact answers are known, pushed
// through the parallel path.
//===----------------------------------------------------------------------===//

TEST(ParallelEngine, DiamondCallGraphExactAnswer) {
  // main → {f, g} → h: h's entry is the join of contributions discovered on
  // two different worker tasks in the same pass.
  Program P = mustLower(R"(
    function h(x) { return x + 1; }
    function f(x) { var a = h(x); return a + 10; }
    function g(x) { var a = h(x); return a + 20; }
    function main() {
      var u = f(1);
      var v = g(2);
      return u + v;
    }
  )");
  InterprocEngine<ConstPropDomain> E(std::move(P), "main", /*K=*/1);
  ASSERT_TRUE(E.valid()) << E.error();
  E.setParallelism(4);
  E.analyzeAllFromMain();
  // f(1) = h(1)+10 = 12; g(2) = h(2)+20 = 23; main returns 35. With K=1
  // the two h contexts stay separate, so the constants survive.
  ConstState Exit = E.queryMain(E.cfgOf("main")->exit());
  EXPECT_EQ(Exit.get(RetVar), std::optional<int64_t>(35));
  EXPECT_EQ(E.auditInvariants(), "");
}

TEST(ParallelEngine, DeepChainNeedsMultiplePasses) {
  // A four-deep chain: each pass can only push summaries one level up the
  // frozen-snapshot Jacobi scheme, so quiescence takes several passes.
  Program P = mustLower(R"(
    function d(x) { return x * 2; }
    function c(x) { var a = d(x); return a + 1; }
    function b(x) { var a = c(x); return a + 1; }
    function a(x) { var r = b(x); return r + 1; }
    function main() { var r = a(5); return r; }
  )");
  InterprocEngine<ConstPropDomain> Serial(P, "main", /*K=*/2);
  ASSERT_TRUE(Serial.valid());
  Serial.analyzeAllFromMain();
  ConstState Want = Serial.queryMain(Serial.cfgOf("main")->exit());

  InterprocEngine<ConstPropDomain> Par(std::move(P), "main", /*K=*/2);
  ASSERT_TRUE(Par.valid());
  Par.setParallelism(8);
  size_t N = Par.analyzeAllFromMain();
  EXPECT_EQ(N, 5u); // main, a, b, c, d
  ConstState Got = Par.queryMain(Par.cfgOf("main")->exit());
  EXPECT_TRUE(ConstPropDomain::equal(Got, Want));
  EXPECT_EQ(Got.get(RetVar), std::optional<int64_t>(13)); // 5*2+1+1+1
}

TEST(ParallelEngine, QueriesAndEditsAfterParallelAnalysis) {
  // The parallel batch must leave the engine in a state the serial
  // demand/edit machinery can continue from.
  Program P = makeWorkload(909u, /*Edits=*/10);
  Engine E(P, "main", /*K=*/1);
  ASSERT_TRUE(E.valid());
  E.setParallelism(4);
  E.analyzeAllFromMain();

  Engine Oracle(P, "main", /*K=*/1);
  ASSERT_TRUE(Oracle.valid());
  const Cfg *MainCfg = E.cfgOf("main");
  CfgInfo Info = analyzeCfg(*MainCfg);
  for (Loc L : Info.Rpo)
    EXPECT_TRUE(IntervalDomain::equal(E.queryMain(L), Oracle.queryMain(L)))
        << "post-parallel demand query at l" << L;

  // An edit after the parallel batch: the engine applies it, re-seeds, and
  // must match a from-scratch engine on the edited program exactly (the
  // stress suite's post-reseed guarantee, continued from a parallel batch).
  WorkloadOptions Opts;
  Opts.Seed = 909u ^ 0xA5;
  WorkloadGenerator Gen(Opts);
  Gen.applyRandomEdit(E.program());
  E.applyStructuralEdit("main");
  E.reseedAllEntries();
  Engine Fresh(E.program(), "main", /*K=*/1);
  ASSERT_TRUE(Fresh.valid());
  CfgInfo EditedInfo = analyzeCfg(*E.cfgOf("main"));
  for (Loc L : EditedInfo.Rpo)
    EXPECT_TRUE(IntervalDomain::equal(E.queryMain(L), Fresh.queryMain(L)))
        << "post-edit query at l" << L;
  EXPECT_EQ(E.auditInvariants(), "");
}

TEST(ParallelEngine, SetParallelismZeroUsesHardware) {
  Program P = mustLower(R"(
    function main() { var x = 1; return x; }
  )");
  Engine E(std::move(P), "main", 0);
  ASSERT_TRUE(E.valid());
  E.setParallelism(0);
  EXPECT_EQ(E.parallelism(), TaskPool::hardwareParallelism());
  E.analyzeAllFromMain(); // must work whatever the hardware width is
  EXPECT_EQ(E.auditInvariants(), "");
}

} // namespace
