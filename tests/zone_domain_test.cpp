//===-- tests/zone_domain_test.cpp - Sparse zone domain tests -------------===//
//
// Part of dai-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The safety net for the sparse split-DBM zone subsystem: a dense
/// (n+1)²-matrix reference implementation of the zone kernels (textbook
/// Floyd–Warshall closure over the zero-vertex-extended constraint graph)
/// is driven through long random op chains — bound/difference constraint
/// addition, assume, assign (via ZoneDomain::transfer), join, widen, leq,
/// forget — in LOCKSTEP with the sparse Zone, asserting after every step
/// that the CLOSED bounds agree entrywise over the whole symbol universe
/// (absent edge ⟺ dense +∞) and that ⊥ agrees.
///
/// Also:
///  - concept conformance (ZoneDomain satisfies AbstractDomain) and
///    from-scratch DAIG/batch consistency over a lowered program;
///  - the interval-fallback regression cases mirroring
///    octagon_halfmatrix_test.cpp: an EMPTY RHS interval collapses to ⊥
///    (not havoc), nonlinear RHS havocs, x := −y + c routes through the
///    fallback with correct bounds, and the `x := x + c` temp path
///    survives a program variable literally named "__zone_tmp";
///  - ⊥-safety: boundsOf on ⊥ returns the EMPTY interval (no sentinel
///    leaks — the analogue of the pre-PR-2 octagon npos bug), and the
///    potential certificate validates after every random chain.
///
//===----------------------------------------------------------------------===//

#include "domain/zone.h"

#include "interproc/engine.h"
#include "support/rng.h"
#include "support/statistics.h"
#include "tests/test_util.h"
#include "workload/generator.h"

#include <algorithm>
#include <gtest/gtest.h>

using namespace dai;
using namespace dai::test;

namespace {

constexpr int64_t Inf = Zone::kPosInf;
constexpr size_t npos = static_cast<size_t>(-1);

static_assert(AbstractDomain<ZoneDomain>,
              "ZoneDomain must satisfy the Section 3 domain concept");

int64_t refAdd(int64_t A, int64_t B) {
  if (A == Inf || B == Inf)
    return Inf;
  int64_t R;
  if (__builtin_add_overflow(A, B, &R))
    return (A > 0) ? Inf : INT64_MIN / 4;
  return R;
}

/// Dense (n+1)² reference zone: vertex 0 is the zero vertex, variable i
/// (sorted by SymbolId) lives at matrix index 1+i. Entry (i, j) bounds
/// x_j − x_i ≤ M[i][j] — the same convention as the sparse graph's edges.
/// Kept CLOSED after every mutation via textbook Floyd–Warshall.
struct DenseZone {
  bool Bottom = false;
  std::vector<SymbolId> Vars; // sorted ascending
  std::vector<int64_t> M;     // (n+1)², row-major

  DenseZone() : M(1, 0) {}

  size_t dim() const { return Vars.size() + 1; }
  int64_t &at(size_t I, size_t J) { return M[I * dim() + J]; }
  int64_t at(size_t I, size_t J) const { return M[I * dim() + J]; }

  size_t idxOf(SymbolId S) const {
    auto It = std::lower_bound(Vars.begin(), Vars.end(), S);
    if (It == Vars.end() || *It != S)
      return npos;
    return 1 + static_cast<size_t>(It - Vars.begin());
  }

  void addVar(SymbolId S) {
    if (idxOf(S) != npos)
      return;
    size_t OldDim = dim();
    auto It = std::lower_bound(Vars.begin(), Vars.end(), S);
    size_t NewIdx = 1 + static_cast<size_t>(It - Vars.begin());
    Vars.insert(It, S);
    size_t NewDim = dim();
    std::vector<int64_t> NewM(NewDim * NewDim, Inf);
    for (size_t I = 0; I < NewDim; ++I)
      NewM[I * NewDim + I] = 0;
    for (size_t I = 0, OI = 0; I < NewDim; ++I) {
      if (I == NewIdx)
        continue;
      for (size_t J = 0, OJ = 0; J < NewDim; ++J) {
        if (J == NewIdx)
          continue;
        NewM[I * NewDim + J] = M[OI * OldDim + OJ];
        ++OJ;
      }
      ++OI;
    }
    M = std::move(NewM);
  }

  void removeVar(SymbolId S) {
    size_t Idx = idxOf(S);
    if (Idx == npos)
      return;
    size_t OldDim = dim();
    Vars.erase(Vars.begin() + static_cast<ptrdiff_t>(Idx - 1));
    size_t NewDim = dim();
    std::vector<int64_t> NewM(NewDim * NewDim, Inf);
    for (size_t I = 0, NI = 0; I < OldDim; ++I) {
      if (I == Idx)
        continue;
      for (size_t J = 0, NJ = 0; J < OldDim; ++J) {
        if (J == Idx)
          continue;
        NewM[NI * NewDim + NJ] = M[I * OldDim + J];
        ++NJ;
      }
      ++NI;
    }
    M = std::move(NewM);
  }

  /// Tightens x_j − x_i ≤ C at matrix indices.
  void tighten(size_t I, size_t J, int64_t C) {
    if (C < at(I, J))
      at(I, J) = C;
  }

  /// Floyd–Warshall closure + emptiness check.
  void close() {
    if (Bottom)
      return;
    size_t D = dim();
    for (size_t K = 0; K < D; ++K)
      for (size_t I = 0; I < D; ++I) {
        if (at(I, K) == Inf)
          continue;
        for (size_t J = 0; J < D; ++J) {
          int64_t Cand = refAdd(at(I, K), at(K, J));
          if (Cand < at(I, J))
            at(I, J) = Cand;
        }
      }
    for (size_t I = 0; I < D; ++I)
      if (at(I, I) < 0) {
        Bottom = true;
        return;
      }
  }

  /// Clears every constraint on \p S (requires a closed receiver for the
  /// result to stay closed).
  void havoc(SymbolId S) {
    size_t Idx = idxOf(S);
    if (Idx == npos)
      return;
    size_t D = dim();
    for (size_t I = 0; I < D; ++I) {
      at(I, Idx) = Inf;
      at(Idx, I) = Inf;
    }
    at(Idx, Idx) = 0;
  }

  /// Closed-bound probe in symbol space; kNoSymbol = the zero vertex,
  /// untracked symbols are unconstrained.
  int64_t entry(SymbolId A, SymbolId B) const {
    size_t I = (A == kNoSymbol) ? 0 : idxOf(A);
    size_t J = (B == kNoSymbol) ? 0 : idxOf(B);
    if (I == npos || J == npos)
      return Inf;
    if (I == J)
      return 0;
    return at(I, J);
  }
};

/// The symbol universe of the lockstep chains.
std::vector<SymbolId> universe() {
  static std::vector<SymbolId> U = [] {
    std::vector<SymbolId> V;
    for (const char *N : {"za", "zb", "zc", "zd", "ze", "zf"})
      V.push_back(internSymbol(N));
    return V;
  }();
  return U;
}

/// Entrywise agreement of the sparse zone's CLOSED form with the dense
/// closed matrix, over every pair of the universe (plus the zero vertex).
void expectLockstep(const Zone &Z, const DenseZone &D, const char *Ctx) {
  ASSERT_EQ(Z.isBottom(), D.Bottom) << Ctx;
  if (Z.isBottom())
    return;
  EXPECT_TRUE(Z.potentialValid()) << Ctx;
  const Zone &C = Z.closedView();
  std::vector<SymbolId> Syms = universe();
  Syms.push_back(kNoSymbol);
  for (SymbolId A : Syms)
    for (SymbolId B : Syms) {
      if (A == B)
        continue;
      EXPECT_EQ(C.constraintOn(A, B), D.entry(A, B))
          << Ctx << ": closed bound mismatch on ("
          << (A == kNoSymbol ? std::string("0") : symbolName(A)) << ", "
          << (B == kNoSymbol ? std::string("0") : symbolName(B)) << ")\n  "
          << "zone: " << C.toString();
    }
}

/// leq over dense closed matrices: entrywise comparison in symbol space.
bool denseLeq(const DenseZone &A, const DenseZone &B) {
  if (A.Bottom)
    return true;
  if (B.Bottom)
    return false;
  std::vector<SymbolId> Syms = universe();
  Syms.push_back(kNoSymbol);
  for (SymbolId X : Syms)
    for (SymbolId Y : Syms) {
      if (X == Y)
        continue;
      if (A.entry(X, Y) > B.entry(X, Y))
        return false;
    }
  return true;
}

/// Mirrors ZoneDomain::join on the dense side: project both (closed)
/// operands onto the common variable set, entrywise max.
DenseZone denseJoin(const DenseZone &A, const DenseZone &B) {
  if (A.Bottom)
    return B;
  if (B.Bottom)
    return A;
  DenseZone R = A;
  for (SymbolId S : std::vector<SymbolId>(R.Vars)) // copy: removeVar mutates
    if (B.idxOf(S) == npos)
      R.removeVar(S);
  size_t D = R.dim();
  for (size_t I = 0; I < D; ++I)
    for (size_t J = 0; J < D; ++J) {
      if (I == J)
        continue;
      SymbolId SI = I == 0 ? kNoSymbol : R.Vars[I - 1];
      SymbolId SJ = J == 0 ? kNoSymbol : R.Vars[J - 1];
      int64_t Theirs = B.entry(SI, SJ);
      if (Theirs > R.at(I, J))
        R.at(I, J) = Theirs;
    }
  return R; // max of closed is closed
}

/// Mirrors ZoneDomain::widen on the dense side: project the previous
/// iterate RAW onto the common set, drop entries the (closed) next iterate
/// exceeds. The result is UNCLOSED by design.
DenseZone denseWiden(const DenseZone &Prev, const DenseZone &Next) {
  if (Prev.Bottom)
    return Next;
  if (Next.Bottom)
    return Prev;
  DenseZone R = Prev;
  for (SymbolId S : std::vector<SymbolId>(R.Vars))
    if (Next.idxOf(S) == npos)
      R.removeVar(S);
  size_t D = R.dim();
  for (size_t I = 0; I < D; ++I)
    for (size_t J = 0; J < D; ++J) {
      if (I == J)
        continue;
      SymbolId SI = I == 0 ? kNoSymbol : R.Vars[I - 1];
      SymbolId SJ = J == 0 ? kNoSymbol : R.Vars[J - 1];
      if (Next.entry(SI, SJ) > R.at(I, J))
        R.at(I, J) = Inf;
    }
  return R;
}

/// One lockstep pair: the sparse zone under test plus its dense oracle,
/// with mutators that keep BOTH sides closed (the steady state of every
/// domain operation; widening iterates are closed explicitly before the
/// chain continues).
struct Pair {
  Zone Z;
  DenseZone D;

  void ensureVar(SymbolId S) {
    if (Z.varIndex(S) == npos)
      Z.addVar(S);
    D.addVar(S);
  }

  void upper(SymbolId X, int64_t C) {
    ensureVar(X);
    Z.addUpperBound(X, C);
    D.tighten(0, D.idxOf(X), C);
    D.close();
  }

  void lower(SymbolId X, int64_t C) {
    ensureVar(X);
    Z.addLowerBound(X, C);
    D.tighten(D.idxOf(X), 0, -C);
    D.close();
  }

  void diff(SymbolId X, SymbolId Y, int64_t C) { // x − y ≤ c
    ensureVar(X);
    ensureVar(Y);
    Z.addDifference(X, Y, C);
    D.tighten(D.idxOf(Y), D.idxOf(X), C);
    D.close();
  }

  void forgetInPlace(SymbolId X) {
    if (Z.varIndex(X) != npos)
      Z.forgetInPlace(X);
    D.havoc(X); // closed: clearing a row/col of a closed matrix stays closed
  }

  void forgetRemove(SymbolId X) {
    Z.forgetAndRemove(X);
    D.removeVar(X);
  }

  /// x := c and x := y + c via the REAL transfer function, mirrored by
  /// havoc-then-tighten on the closed dense matrix.
  void assignConst(SymbolId X, int64_t C) {
    Z = ZoneDomain::transfer(
        Stmt::mkAssign(symbolName(X), Expr::mkInt(C)), Z);
    D.addVar(X);
    D.havoc(X);
    D.tighten(0, D.idxOf(X), C);
    D.tighten(D.idxOf(X), 0, -C);
    D.close();
  }

  void assignVarPlus(SymbolId X, SymbolId Y, int64_t C) { // x := y + c
    Z = ZoneDomain::transfer(
        Stmt::mkAssign(symbolName(X),
                       Expr::mkBinary(BinaryOp::Add,
                                      Expr::mkVar(symbolName(Y)),
                                      Expr::mkInt(C))),
        Z);
    D.addVar(Y);
    if (X != Y) {
      D.addVar(X);
      D.havoc(X);
      D.tighten(D.idxOf(Y), D.idxOf(X), C);
      D.tighten(D.idxOf(X), D.idxOf(Y), -C);
      D.close();
    } else {
      // x := x + c on the closed matrix: shift every bound involving x.
      size_t Idx = D.idxOf(X);
      for (size_t I = 0; I < D.dim(); ++I) {
        if (I == Idx)
          continue;
        if (D.at(I, Idx) != Inf)
          D.at(I, Idx) = refAdd(D.at(I, Idx), C);
        if (D.at(Idx, I) != Inf)
          D.at(Idx, I) = refAdd(D.at(Idx, I), -C);
      }
      D.close();
    }
  }

  /// assume(x − y ≤ c) / assume(±x ≤ c) via the REAL assume.
  void assumeDiffLe(SymbolId X, SymbolId Y, int64_t C) {
    ensureVar(X);
    ensureVar(Y);
    Z = ZoneDomain::assume(
        Z, Expr::mkBinary(BinaryOp::Le,
                          Expr::mkBinary(BinaryOp::Sub,
                                         Expr::mkVar(symbolName(X)),
                                         Expr::mkVar(symbolName(Y))),
                          Expr::mkInt(C)));
    D.tighten(D.idxOf(Y), D.idxOf(X), C);
    D.close();
  }

  void assumeUpperLt(SymbolId X, int64_t C) { // x < c
    ensureVar(X);
    Z = ZoneDomain::assume(Z, Expr::mkBinary(BinaryOp::Lt,
                                             Expr::mkVar(symbolName(X)),
                                             Expr::mkInt(C)));
    D.tighten(0, D.idxOf(X), C - 1);
    D.close();
  }

  void assumeGe(SymbolId X, int64_t C) { // x ≥ c
    ensureVar(X);
    Z = ZoneDomain::assume(Z, Expr::mkBinary(BinaryOp::Ge,
                                             Expr::mkVar(symbolName(X)),
                                             Expr::mkInt(C)));
    D.tighten(D.idxOf(X), 0, -C);
    D.close();
  }

  void closeBoth() {
    Z.close();
    D.close();
  }
};

//===----------------------------------------------------------------------===//
// Lockstep chains
//===----------------------------------------------------------------------===//

class ZoneLockstepSeed : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ZoneLockstepSeed, RandomOpChainMatchesDenseOracle) {
  Rng R(GetParam());
  std::vector<SymbolId> U = universe();
  auto randSym = [&] { return U[R.below(U.size())]; };
  auto randC = [&] { return static_cast<int64_t>(R.below(41)) - 20; };

  Pair P1, P2;
  // Periodic snapshots: widening a state against its own recent history is
  // the loop-iterate pattern — most bounds are stable (edges KEPT), the
  // recently tightened ones drop, and the follow-up close() must re-derive
  // dropped pairs through surviving paths. Widening against the unrelated
  // other pair (case 11) shares almost no stable edges and would leave the
  // restricted full-closure kernel untested.
  Pair H1 = P1, H2 = P2;
  for (unsigned Step = 0; Step < 220; ++Step) {
    Pair &P = (R.below(4) == 0) ? P2 : P1;
    if (R.below(8) == 0) {
      H1 = P1;
      H2 = P2;
    }
    // ⊥ states absorb every following constraint; restart that pair so the
    // chain keeps exercising non-trivial structure.
    if (P.Z.isBottom()) {
      P.Z = Zone::top();
      P.D = DenseZone();
    }
    switch (R.below(13)) {
    case 0:
      P.upper(randSym(), randC());
      break;
    case 1:
      P.lower(randSym(), randC());
      break;
    case 2:
    case 3: {
      SymbolId X = randSym(), Y = randSym();
      if (X != Y)
        P.diff(X, Y, randC());
      break;
    }
    case 4:
      P.assignConst(randSym(), randC());
      break;
    case 5: {
      SymbolId X = randSym(), Y = randSym();
      P.assignVarPlus(X, Y, randC());
      break;
    }
    case 6: {
      SymbolId X = randSym(), Y = randSym();
      if (X != Y)
        P.assumeDiffLe(X, Y, randC());
      break;
    }
    case 7:
      P.assumeUpperLt(randSym(), randC());
      break;
    case 8:
      P.assumeGe(randSym(), randC());
      break;
    case 9:
      P.forgetInPlace(randSym());
      break;
    case 10:
      P.forgetRemove(randSym());
      break;
    case 11: {
      // Lattice step against the OTHER pair: join, or widen-then-close.
      Pair &Q = (&P == &P1) ? P2 : P1;
      if (R.below(2) == 0) {
        P.Z = ZoneDomain::join(P.Z, Q.Z);
        P.D = denseJoin(P.D, Q.D);
      } else {
        P.Z = ZoneDomain::widen(P.Z, Q.Z);
        P.D = denseWiden(P.D, Q.D);
        P.closeBoth(); // widening iterates are unclosed; re-canonicalize
      }
      break;
    }
    case 12: {
      // Widen against own history (see the snapshot note above).
      Pair &H = (&P == &P1) ? H1 : H2;
      P.Z = ZoneDomain::widen(P.Z, H.Z);
      P.D = denseWiden(P.D, H.D);
      P.closeBoth();
      break;
    }
    }
    expectLockstep(P1.Z, P1.D, "pair 1");
    expectLockstep(P2.Z, P2.D, "pair 2");
    EXPECT_EQ(ZoneDomain::leq(P1.Z, P2.Z), denseLeq(P1.D, P2.D))
        << "leq(P1, P2) diverged at step " << Step;
    EXPECT_EQ(ZoneDomain::leq(P2.Z, P1.Z), denseLeq(P2.D, P1.D))
        << "leq(P2, P1) diverged at step " << Step;
    // hash must agree with equal.
    if (ZoneDomain::equal(P1.Z, P2.Z)) {
      EXPECT_EQ(ZoneDomain::hash(P1.Z), ZoneDomain::hash(P2.Z));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZoneLockstepSeed,
                         ::testing::Values(1u, 7u, 42u, 1234u, 987654u));

//===----------------------------------------------------------------------===//
// Interval-fallback and ⊥-safety regressions
//===----------------------------------------------------------------------===//

TEST(ZoneDomainTest, EmptyRhsIntervalCollapsesToBottom) {
  // 0 % 0 has NO value: the assignment cannot execute, so the state is
  // unreachable — the opposite of havocking the target.
  Zone Z = Zone::top();
  Z.addVar(std::string("x"));
  Z.addUpperBound(internSymbol("x"), 5);
  Zone Out = ZoneDomain::transfer(
      Stmt::mkAssign("y", Expr::mkBinary(BinaryOp::Mod, Expr::mkInt(0),
                                         Expr::mkInt(0))),
      Z);
  EXPECT_TRUE(ZoneDomain::isBottom(Out));
}

TEST(ZoneDomainTest, NonlinearRhsHavocsTarget) {
  Zone Z = Zone::top();
  Z.addVar(std::string("x"));
  Z.addUpperBound(internSymbol("x"), 3);
  Z.addLowerBound(internSymbol("x"), 3);
  Zone Out = ZoneDomain::transfer(
      Stmt::mkAssign("x", Expr::mkBinary(BinaryOp::Mul, Expr::mkVar("x"),
                                         Expr::mkVar("x"))),
      Z);
  // x*x with x = 3 evaluates to [9,9] through the interval fallback.
  EXPECT_EQ(Out.closedView().boundsOf(std::string("x")),
            Interval::constant(9));
}

TEST(ZoneDomainTest, NegatedVarRhsKeepsDerivedDifferences) {
  // x := −y + 2 is octagonal but NOT a zone form. The affine transformer
  // (crab diffcsts_of_assign) must keep the unary bounds the old interval
  // fallback derived AND the residual difference bounds it dropped:
  //   x − y ≤ ub(e − y) = ub(−2y + 2) = 2 − 2·lb(y) = 2
  //   y − x ≤ ub(y − e) = ub(2y − 2) = 2·ub(y) − 2 = 8
  Zone Z = Zone::top();
  Z.addVar(std::string("y"));
  Z.addLowerBound(internSymbol("y"), 0);
  Z.addUpperBound(internSymbol("y"), 5);
  Zone Out = ZoneDomain::transfer(
      Stmt::mkAssign("x",
                     Expr::mkBinary(BinaryOp::Add,
                                    Expr::mkUnary(UnaryOp::Neg,
                                                  Expr::mkVar("y")),
                                    Expr::mkInt(2))),
      Z);
  const Zone &C = Out.closedView();
  EXPECT_EQ(C.boundsOf(std::string("x")), Interval::range(-3, 2));
  SymbolId X = internSymbol("x"), Y = internSymbol("y");
  EXPECT_EQ(C.constraintOn(Y, X), 2); // x − y ≤ 2
  EXPECT_EQ(C.constraintOn(X, Y), 8); // y − x ≤ 8
}

TEST(ZoneDomainTest, TwoVarSumRhsKeepsDerivedDifferences) {
  // x := y + z has two unit coefficients — zone-inexact (a difference needs
  // one +1 and one −1). The derived bounds are x − y ≤ ub(z), x − z ≤ ub(y)
  // and their mirrors; the interval fallback this replaces kept NO relation.
  Zone Z = Zone::top();
  for (const char *N : {"y", "z"})
    Z.addVar(std::string(N));
  SymbolId Y = internSymbol("y"), Zs = internSymbol("z");
  Z.addLowerBound(Y, 1);
  Z.addUpperBound(Y, 3);
  Z.addLowerBound(Zs, 0);
  Z.addUpperBound(Zs, 4);
  Zone Out = ZoneDomain::transfer(
      Stmt::mkAssign("x", Expr::mkBinary(BinaryOp::Add, Expr::mkVar("y"),
                                         Expr::mkVar("z"))),
      Z);
  const Zone &C = Out.closedView();
  SymbolId X = internSymbol("x");
  EXPECT_EQ(C.boundsOf(std::string("x")), Interval::range(1, 7));
  EXPECT_EQ(C.constraintOn(Y, X), 4);   // x − y ≤ ub(z) = 4
  EXPECT_EQ(C.constraintOn(Zs, X), 3);  // x − z ≤ ub(y) = 3
  EXPECT_EQ(C.constraintOn(X, Y), 0);   // y − x ≤ −lb(z) = 0
  EXPECT_EQ(C.constraintOn(X, Zs), -1); // z − x ≤ −lb(y) = −1
}

TEST(ZoneDomainTest, SelfReferentialAffineRhsReadsPreState) {
  // x := x − y: residuals containing x must use its PRE-state bounds, and
  // derived differences relate the NEW x to the (unchanged) y only.
  Zone Z = Zone::top();
  for (const char *N : {"x", "y"})
    Z.addVar(std::string(N));
  SymbolId X = internSymbol("x"), Y = internSymbol("y");
  Z.addLowerBound(X, 0);
  Z.addUpperBound(X, 2);
  Z.addLowerBound(Y, 5);
  Z.addUpperBound(Y, 6);
  Zone Out = ZoneDomain::transfer(
      Stmt::mkAssign("x", Expr::mkBinary(BinaryOp::Sub, Expr::mkVar("x"),
                                         Expr::mkVar("y"))),
      Z);
  const Zone &C = Out.closedView();
  EXPECT_EQ(C.boundsOf(std::string("x")), Interval::range(-6, -3));
  EXPECT_EQ(C.constraintOn(Y, X), -8); // x' − y ≤ ub(x − 2y) = 2 − 10
  EXPECT_EQ(C.constraintOn(X, Y), 12); // y − x' ≤ ub(2y − x) = 12 − 0
}

TEST(ZoneDomainTest, AffineRhsWithUnboundedResidualsStillHavocsSoundly) {
  // y is ⊤ in one direction: only the finite residual bounds may be kept,
  // and a fully-⊤ derivation must still drop the dimension (the old
  // fallback's behavior).
  Zone Z = Zone::top();
  Z.addVar(std::string("y"));
  Z.addLowerBound(internSymbol("y"), 0); // y ≥ 0, unbounded above
  Zone Out = ZoneDomain::transfer(
      Stmt::mkAssign("x",
                     Expr::mkBinary(BinaryOp::Add,
                                    Expr::mkUnary(UnaryOp::Neg,
                                                  Expr::mkVar("y")),
                                    Expr::mkInt(1))),
      Z);
  const Zone &C = Out.closedView();
  SymbolId X = internSymbol("x"), Y = internSymbol("y");
  // x = 1 − y ≤ 1 and x − y ≤ 1 − 2·lb(y) = 1; the mirrors are infinite.
  EXPECT_EQ(C.boundsOf(std::string("x")), Interval::atMost(1));
  EXPECT_EQ(C.constraintOn(Y, X), 1);
  EXPECT_EQ(C.constraintOn(X, Y), Zone::kPosInf);
  // Fully-⊤ RHS over untracked variables: dimension dropped entirely.
  Zone T = Zone::top();
  T.addVar(std::string("x"));
  T.addUpperBound(internSymbol("x"), 3);
  Zone Dropped = ZoneDomain::transfer(
      Stmt::mkAssign("x",
                     Expr::mkBinary(BinaryOp::Add, Expr::mkVar("p"),
                                    Expr::mkVar("q"))),
      T);
  EXPECT_TRUE(Dropped.closedView().boundsOf(std::string("x")).isTop());
}

TEST(ZoneDomainTest, SelfIncrementSurvivesHostileTmpName) {
  // A program variable literally named "__zone_tmp" must survive the
  // x := x + c temp path unscathed (freshSymbol gensyms around it).
  Zone Z = Zone::top();
  Z.addVar(std::string("__zone_tmp"));
  Z.addUpperBound(internSymbol("__zone_tmp"), 7);
  Z.addLowerBound(internSymbol("__zone_tmp"), 7);
  Zone Out = ZoneDomain::transfer(
      Stmt::mkAssign("__zone_tmp",
                     Expr::mkBinary(BinaryOp::Add, Expr::mkVar("__zone_tmp"),
                                    Expr::mkInt(1))),
      Z);
  EXPECT_EQ(Out.closedView().boundsOf(std::string("__zone_tmp")),
            Interval::constant(8));
}

TEST(ZoneDomainTest, UntrackedSelfIncrementStaysUnconstrained) {
  // x := x + 1 with x untracked: x + 1 is unknown + 1 = unknown. The
  // octagon's pre-PR-2 analogue leaked npos into its constraint encoder
  // and pinned x to the constant; the zone path must keep x free.
  Zone Z = Zone::top();
  Z.addVar(std::string("other"));
  Z.addUpperBound(internSymbol("other"), 1);
  Zone Out = ZoneDomain::transfer(
      Stmt::mkAssign("x", Expr::mkBinary(BinaryOp::Add, Expr::mkVar("x"),
                                         Expr::mkInt(1))),
      Z);
  EXPECT_FALSE(ZoneDomain::isBottom(Out));
  EXPECT_TRUE(Out.closedView().boundsOf(std::string("x")).isTop());
}

TEST(ZoneDomainTest, BoundsOfOnBottomIsEmptyNotSentinel) {
  Zone Bot = Zone::bottomValue();
  EXPECT_TRUE(Bot.boundsOf(std::string("x")).isEmpty());
  EXPECT_TRUE(Bot.boundsOf(internSymbol("x")).isEmpty());
  // Contradiction detection is EAGER: the potential repair fails at the
  // second bound, no closure needed.
  Zone Z = Zone::top();
  Z.addVar(std::string("x"));
  Z.addUpperBound(internSymbol("x"), 3);
  Z.addLowerBound(internSymbol("x"), 5);
  EXPECT_TRUE(Z.isBottom());
  EXPECT_TRUE(Z.boundsOf(std::string("x")).isEmpty());
}

TEST(ZoneDomainTest, AssumeContradictionGoesBottom) {
  Zone Z = Zone::top();
  Zone A = ZoneDomain::assume(
      Z, Expr::mkBinary(BinaryOp::Lt, Expr::mkVar("x"), Expr::mkInt(0)));
  A = ZoneDomain::assume(
      A, Expr::mkBinary(BinaryOp::Gt, Expr::mkVar("x"), Expr::mkInt(0)));
  EXPECT_TRUE(ZoneDomain::isBottom(A));
}

TEST(ZoneDomainTest, DifferenceChainsClosePrecisely) {
  // a ≤ b ≤ c with a ≥ 10 and c ≤ 12: closure must derive a − c ≤ 0 and
  // bounds for b — through the restricted sparse kernels only.
  Zone Z = Zone::top();
  for (const char *N : {"a", "b", "c"})
    Z.addVar(std::string(N));
  SymbolId A = internSymbol("a"), B = internSymbol("b"), C = internSymbol("c");
  Z.addDifference(A, B, 0); // a − b ≤ 0
  Z.addDifference(B, C, 0); // b − c ≤ 0
  Z.addLowerBound(A, 10);
  Z.addUpperBound(C, 12);
  ASSERT_FALSE(Z.isBottom());
  const Zone &CV = Z.closedView();
  EXPECT_EQ(CV.constraintOn(C, A), 0); // a − c ≤ 0 (edge c→a)
  EXPECT_EQ(CV.constraintOn(A, C), 2); // c − a ≤ 2 (via the bounds)
  EXPECT_EQ(CV.boundsOf(B), Interval::range(10, 12));
  EXPECT_EQ(CV.boundsOf(A), Interval::range(10, 12));
  EXPECT_EQ(CV.boundsOf(C), Interval::range(10, 12));
}

TEST(ZoneDomainTest, WidenDropsEdgeAndCloseRederivesThroughSurvivors) {
  // The loop-iterate pattern the random chains reach only probabilistically,
  // pinned down: prev tightened a DIRECT bound (0→x) that next lacks, while
  // the path edges 0→y and y→x stayed stable. Widening must drop exactly
  // the direct edge, and the restricted full closure must re-derive it
  // through the surviving path — including the ZERO-VERTEX source row,
  // which a closure sweep that only visits variable vertices would miss.
  SymbolId X = internSymbol("zwx"), Y = internSymbol("zwy");
  Zone P = Zone::top();
  P.addVar(X);
  P.addVar(Y);
  P.addUpperBound(Y, 5);    // 0→y = 5
  P.addDifference(X, Y, 3); // y→x = 3; incremental closure derives 0→x = 8
  Zone H = P;               // the older iterate
  P.addUpperBound(X, 2);    // tighten the direct bound past the path
  ASSERT_EQ(P.constraintOn(kNoSymbol, X), 2);
  Zone W = ZoneDomain::widen(P, H);
  EXPECT_FALSE(W.isClosed());
  EXPECT_EQ(W.constraintOn(kNoSymbol, X), Inf) << "unstable edge must drop";
  EXPECT_EQ(W.constraintOn(kNoSymbol, Y), 5);
  EXPECT_EQ(W.constraintOn(Y, X), 3);
  W.close();
  EXPECT_EQ(W.constraintOn(kNoSymbol, X), 8)
      << "close() must re-derive 0→x through the surviving 0→y→x path";
  EXPECT_TRUE(W.potentialValid());
}

//===----------------------------------------------------------------------===//
// End-to-end: DAIG + interprocedural engine over the zone domain
//===----------------------------------------------------------------------===//

TEST(ZoneEndToEnd, DaigMatchesBatchOnLoweredProgram) {
  Function F = mustLowerFn(R"(
function main() {
  var i = 0;
  var n = 10;
  while (i < n) {
    i = i + 1;
  }
  var d = n - i;
  return d;
}
)",
                           "main");
  Daig<ZoneDomain> G(&F.Body, ZoneDomain::initialEntry(F.Params));
  ASSERT_TRUE(G.valid());
  expectFromScratchConsistent<ZoneDomain>(F, G, "zone DAIG");
  // At the exit, assume ¬(i < n) gives i ≥ n, so d = n − i ≤ 0 (the upper
  // bound of i is widened away, so the lower side of d is unbounded).
  Zone Exit = G.queryLocation(F.Body.exit());
  Interval D = Exit.closedView().boundsOf(std::string("d"));
  EXPECT_TRUE(Interval::atMost(0).subsumes(D))
      << "d should be ≤ 0, got " << D.toString();
}

TEST(ZoneEndToEnd, InterprocEngineRunsWorkloadEdits) {
  WorkloadOptions Opts;
  Opts.Seed = 20260728;
  WorkloadGenerator Gen(Opts);
  Program Initial = Gen.makeInitialProgram();
  InterprocEngine<ZoneDomain> Engine(Initial, "main", /*K=*/0);
  ASSERT_TRUE(Engine.valid()) << Engine.error();
  for (unsigned Edit = 0; Edit < 25; ++Edit) {
    EditRecord R = Gen.applyRandomEdit(Engine.program());
    if (R.Kind == EditKind::InsertStmt)
      Engine.applyInsertedStatementEdit("main", R.At, R.Splice);
    else
      Engine.applyStructuralEdit("main");
    for (Loc Q : Gen.sampleQueryLocations(Engine.program(), 3))
      (void)Engine.queryMain(Q);
  }
  // From-scratch consistency at the end of the edit session.
  InterprocEngine<ZoneDomain> Fresh(Engine.program(), "main", 0);
  Engine.reseedAllEntries();
  const CfgInfo &Info = Engine.cfgOf("main")->info();
  for (Loc L : Info.Rpo) {
    Zone Incr = Engine.queryMain(L);
    Zone Scratch = Fresh.queryMain(L);
    EXPECT_TRUE(ZoneDomain::equal(Incr, Scratch))
        << "post-reseed mismatch at l" << L
        << "\n  incremental: " << ZoneDomain::toString(Incr)
        << "\n  from-scratch: " << ZoneDomain::toString(Scratch);
  }
}

} // namespace
